package freqdedup

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"freqdedup/internal/dedup"
)

func repoData(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// repoMutate returns a copy of data with a clustered edit, so most chunks
// deduplicate against the original.
func repoMutate(data []byte, seed int64) []byte {
	out := append([]byte(nil), data...)
	copy(out[len(out)/2:], repoData(seed, 32<<10))
	return out
}

func mustBackup(t *testing.T, r *Repository, name string, data []byte) Snapshot {
	t.Helper()
	snap, err := r.Backup(context.Background(), name, bytes.NewReader(data))
	if err != nil {
		t.Fatalf("backup %q: %v", name, err)
	}
	return snap
}

func mustRestore(t *testing.T, r *Repository, name string, want []byte) {
	t.Helper()
	var out bytes.Buffer
	if err := r.Restore(context.Background(), name, &out); err != nil {
		t.Fatalf("restore %q: %v", name, err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("restore %q: bytes differ", name)
	}
}

// TestRepositoryLifecycle is the acceptance walk: create, back up, close,
// reopen, list, verify, restore, delete, GC — with the catalog carrying
// the snapshot list and refcounts across the reopen.
func TestRepositoryLifecycle(t *testing.T) {
	dir := t.TempDir()
	var key Key
	copy(key[:], "lifecycle test key")

	v1 := repoData(1, 2<<20)
	v2 := repoMutate(v1, 2)

	repo, err := CreateRepository(dir, WithRepositoryKey(key), WithContainerBytes(256<<10))
	if err != nil {
		t.Fatal(err)
	}
	s1 := mustBackup(t, repo, "mon", v1)
	s2 := mustBackup(t, repo, "tue", v2)
	if s1.LogicalBytes != uint64(len(v1)) || s1.Chunks == 0 {
		t.Fatalf("snapshot metadata wrong: %+v", s1)
	}
	if s2.LogicalBytes != uint64(len(v2)) {
		t.Fatalf("snapshot metadata wrong: %+v", s2)
	}
	if _, err := repo.Backup(context.Background(), "mon", bytes.NewReader(v1)); !errors.Is(err, ErrSnapshotExists) {
		t.Fatalf("duplicate name: err = %v, want ErrSnapshotExists", err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the full snapshot list and refcounts come back.
	repo, err = OpenRepository(dir, WithRepositoryKey(key))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	snaps := repo.Snapshots()
	if len(snaps) != 2 || snaps[0].Name != "mon" || snaps[1].Name != "tue" {
		t.Fatalf("Snapshots() after reopen = %+v", snaps)
	}
	if snaps[0].LogicalBytes != uint64(len(v1)) || snaps[0].Chunks != s1.Chunks {
		t.Fatalf("snapshot metadata lost across reopen: %+v vs %+v", snaps[0], s1)
	}
	if err := repo.Verify(context.Background()); err != nil {
		t.Fatalf("Verify after reopen: %v", err)
	}

	// The regression this API exists for: GC right after reopen must
	// reclaim nothing while every snapshot is live. (The raw Store's
	// "unregistered = unreferenced" rule would have reclaimed everything.)
	gc, err := repo.GC(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gc.ChunksReclaimed != 0 {
		t.Fatalf("GC after reopen reclaimed %d chunks with every snapshot live", gc.ChunksReclaimed)
	}
	mustRestore(t, repo, "mon", v1)
	mustRestore(t, repo, "tue", v2)

	// Delete one snapshot; GC reclaims its unique chunks and only those.
	if err := repo.Delete(context.Background(), "tue"); err != nil {
		t.Fatal(err)
	}
	if err := repo.Delete(context.Background(), "tue"); !errors.Is(err, ErrSnapshotNotFound) {
		t.Fatalf("double delete: err = %v, want ErrSnapshotNotFound", err)
	}
	gc, err = repo.GC(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gc.ChunksReclaimed == 0 {
		t.Fatal("GC reclaimed nothing after deleting a snapshot with unique chunks")
	}
	mustRestore(t, repo, "mon", v1)
	if err := repo.Verify(context.Background()); err != nil {
		t.Fatalf("Verify after GC: %v", err)
	}
}

// TestRepositoryCrashReopen is the catalog-durability acceptance test:
// create → backup×3 → delete one → crash (no Close; torn catalog tail) →
// reopen → snapshot list and refcounts intact → GC reclaims only the
// deleted snapshot's chunks → survivors restore bit-for-bit.
func TestRepositoryCrashReopen(t *testing.T) {
	dir := t.TempDir()
	base := repoData(10, 1<<20)
	versions := map[string][]byte{
		"day-1": base,
		"day-2": repoMutate(base, 11),
		"day-3": repoMutate(base, 12),
	}

	repo, err := CreateRepository(dir, WithContainerBytes(128<<10))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"day-1", "day-2", "day-3"} {
		mustBackup(t, repo, name, versions[name])
	}
	if err := repo.Delete(context.Background(), "day-2"); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon the repository without Close, then tear the catalog's
	// tail the way a mid-append power cut would — garbage bytes past the
	// last acknowledged record.
	catPath := filepath.Join(dir, dedup.CatalogName)
	f, err := os.OpenFile(catPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x31, 0x52, 0x44, 0x46, 0x01, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reopened, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	snaps := reopened.Snapshots()
	if len(snaps) != 2 || snaps[0].Name != "day-1" || snaps[1].Name != "day-3" {
		t.Fatalf("Snapshots() after crash reopen = %+v", snaps)
	}

	// Refcounts must be intact: GC reclaims day-2's unique chunks and
	// nothing referenced by the survivors.
	before := reopened.Stats().PhysicalBytes
	gc, err := reopened.GC(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gc.ChunksReclaimed == 0 {
		t.Fatal("GC reclaimed nothing; day-2's unique chunks leaked")
	}
	if after := reopened.Stats().PhysicalBytes; after != before-gc.BytesReclaimed {
		t.Fatalf("physical accounting wrong: %d != %d - %d", after, before, gc.BytesReclaimed)
	}
	mustRestore(t, reopened, "day-1", versions["day-1"])
	mustRestore(t, reopened, "day-3", versions["day-3"])
	if err := reopened.Verify(context.Background()); err != nil {
		t.Fatalf("Verify after crash reopen + GC: %v", err)
	}
}

// TestRepositoryWrongKey: opening with the wrong repository key must fail
// loudly (the sealed recipes are authenticated), not yield garbage.
func TestRepositoryWrongKey(t *testing.T) {
	dir := t.TempDir()
	var key Key
	copy(key[:], "the right key")
	repo, err := CreateRepository(dir, WithRepositoryKey(key))
	if err != nil {
		t.Fatal(err)
	}
	mustBackup(t, repo, "snap", repoData(3, 256<<10))
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}
	var wrong Key
	copy(wrong[:], "an impostor key")
	if _, err := OpenRepository(dir, WithRepositoryKey(wrong)); err == nil {
		t.Fatal("OpenRepository with the wrong key succeeded")
	}
}

// TestRepositoryInMemory: an empty path gives the same API, memory-backed.
func TestRepositoryInMemory(t *testing.T) {
	repo, err := CreateRepository("", WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	data := repoData(4, 512<<10)
	mustBackup(t, repo, "only", data)
	mustRestore(t, repo, "only", data)
	if err := repo.Verify(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := repo.Delete(context.Background(), "only"); err != nil {
		t.Fatal(err)
	}
	gc, err := repo.GC(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gc.ChunksReclaimed == 0 {
		t.Fatal("in-memory GC reclaimed nothing after deleting the only snapshot")
	}
}

// TestRepositorySnapshotsSorted: listings are sorted by name regardless of
// backup order, with per-snapshot sizes and chunk counts populated.
func TestRepositorySnapshotsSorted(t *testing.T) {
	repo, err := CreateRepository("")
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	for _, name := range []string{"zeta", "alpha", "mike"} {
		mustBackup(t, repo, name, repoData(int64(len(name)), 128<<10))
	}
	snaps := repo.Snapshots()
	if len(snaps) != 3 || snaps[0].Name != "alpha" || snaps[1].Name != "mike" || snaps[2].Name != "zeta" {
		t.Fatalf("Snapshots() not sorted: %+v", snaps)
	}
	for _, s := range snaps {
		if s.LogicalBytes != 128<<10 || s.Chunks == 0 || s.CreatedAt.IsZero() {
			t.Fatalf("snapshot %q metadata incomplete: %+v", s.Name, s)
		}
	}
}

// cancellingReader delivers data in small reads and cancels the context
// partway through the stream, so the backup pipeline is genuinely
// mid-flight when cancellation lands.
type cancellingReader struct {
	data     []byte
	off      int
	cancelAt int
	cancel   context.CancelFunc
}

func (c *cancellingReader) Read(p []byte) (int, error) {
	if c.off >= c.cancelAt && c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
	if c.off >= len(c.data) {
		return 0, nil // keep the producer running until cancellation lands
	}
	n := 64 << 10
	if n > len(p) {
		n = len(p)
	}
	if n > len(c.data)-c.off {
		n = len(c.data) - c.off
	}
	copy(p, c.data[c.off:c.off+n])
	c.off += n
	return n, nil
}

// TestRepositoryBackupCancel: cancelling mid-Backup surfaces ctx.Err()
// through the front door and records no snapshot.
func TestRepositoryBackupCancel(t *testing.T) {
	repo, err := CreateRepository(t.TempDir(), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancellingReader{data: repoData(7, 8<<20), cancelAt: 4 << 20, cancel: cancel}
	if _, err := repo.Backup(ctx, "doomed", src); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Backup err = %v, want context.Canceled", err)
	}
	if snaps := repo.Snapshots(); len(snaps) != 0 {
		t.Fatalf("cancelled backup recorded a snapshot: %+v", snaps)
	}
	// The repository remains fully usable; abandoned chunks fall to GC.
	data := repoData(8, 1<<20)
	mustBackup(t, repo, "survivor", data)
	if _, err := repo.GC(context.Background()); err != nil {
		t.Fatal(err)
	}
	mustRestore(t, repo, "survivor", data)
}

// cancelAfterWriter cancels the context once n bytes have been written.
type cancelAfterWriter struct {
	n      int
	cancel context.CancelFunc
}

func (w *cancelAfterWriter) Write(p []byte) (int, error) {
	w.n -= len(p)
	if w.n <= 0 && w.cancel != nil {
		w.cancel()
		w.cancel = nil
	}
	return len(p), nil
}

// TestRepositoryRestoreCancel: cancelling mid-Restore surfaces ctx.Err()
// through the front door.
func TestRepositoryRestoreCancel(t *testing.T) {
	repo, err := CreateRepository(t.TempDir(), WithWorkers(4), WithRestoreCache(8), WithContainerBytes(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	data := repoData(9, 4<<20)
	mustBackup(t, repo, "snap", data)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err = repo.Restore(ctx, "snap", &cancelAfterWriter{n: 1 << 20, cancel: cancel})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Restore err = %v, want context.Canceled", err)
	}
	// And an uncancelled restore still succeeds afterwards.
	mustRestore(t, repo, "snap", data)
}

// TestRepositoryGCDuringBackup: a GC racing an in-flight Backup must not
// reclaim the backup's not-yet-registered chunks — GC excludes in-flight
// backups, so the acknowledged snapshot always restores. Run under -race.
func TestRepositoryGCDuringBackup(t *testing.T) {
	repo, err := CreateRepository("", WithWorkers(2), WithContainerBytes(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	data := repoData(31, 4<<20)

	gcDone := make(chan error, 8)
	backupDone := make(chan error, 1)
	go func() {
		_, err := repo.Backup(context.Background(), "racer", bytes.NewReader(data))
		backupDone <- err
	}()
	for i := 0; i < 8; i++ {
		_, err := repo.GC(context.Background())
		gcDone <- err
	}
	if err := <-backupDone; err != nil {
		t.Fatalf("backup racing GC failed: %v", err)
	}
	for i := 0; i < 8; i++ {
		if err := <-gcDone; err != nil {
			t.Fatalf("GC racing backup failed: %v", err)
		}
	}
	mustRestore(t, repo, "racer", data)
	if err := repo.Verify(context.Background()); err != nil {
		t.Fatalf("Verify after racing GC: %v", err)
	}
}

// TestRepositoryCreateFailureLeavesNoDebris: a create that fails late
// (shard count validated against the backend ceiling) must not brick the
// directory for a retry.
func TestRepositoryCreateFailureLeavesNoDebris(t *testing.T) {
	dir := t.TempDir()
	if _, err := CreateRepository(dir, WithShards(300)); err == nil {
		t.Fatal("CreateRepository with 300 shards succeeded")
	}
	// The directory is still virgin: a corrected retry works.
	repo, err := CreateRepository(dir, WithShards(4))
	if err != nil {
		t.Fatalf("retry after failed create: %v", err)
	}
	defer repo.Close()
	data := repoData(6, 256<<10)
	mustBackup(t, repo, "snap", data)
	mustRestore(t, repo, "snap", data)
}

// TestRepositoryCustomBackend: WithBackend swaps container storage while
// the catalog stays at the path, and reopening with an equivalent backend
// setup works.
func TestRepositoryCustomBackend(t *testing.T) {
	dir := t.TempDir()
	backend, err := CreateFileStoreBackend(filepath.Join(dir, "containers"), 4, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := CreateRepository(dir, WithBackend(backend))
	if err != nil {
		t.Fatal(err)
	}
	data := repoData(5, 512<<10)
	mustBackup(t, repo, "snap", data)
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	backend2, err := OpenFileStoreBackend(filepath.Join(dir, "containers"))
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenRepository(dir, WithBackend(backend2))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	mustRestore(t, reopened, "snap", data)
	if gc, err := reopened.GC(context.Background()); err != nil || gc.ChunksReclaimed != 0 {
		t.Fatalf("GC on reopened custom-backend repo: %+v, %v", gc, err)
	}
}
