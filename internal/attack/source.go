package attack

import (
	"io"

	"freqdedup/internal/trace"
)

// ChunkReader streams chunk references in logical (upload) order. It is
// the attack-side analogue of io.Reader: Read fills buf with the next
// references of the stream and returns how many were filled. A positive
// count with a nil error means progress; io.EOF (possibly alongside a
// final positive count) ends the stream. Readers need not be safe for
// concurrent use; each counting pass uses its own reader.
type ChunkReader interface {
	Read(buf []trace.ChunkRef) (n int, err error)
	Close() error
}

// ChunkSource is a replayable chunk stream — what the attacks consume
// instead of materialized []trace.ChunkRef slices, so a trace far larger
// than RAM (a repository's .fdt adversary log) can be attacked without
// ever being loaded whole. Open may be called several times: the
// two-pass counters open the stream once per pass, and the ciphertext
// and plaintext streams of one attack are counted concurrently, so
// readers returned by separate Open calls must not share mutable state.
type ChunkSource interface {
	Open() (ChunkReader, error)
}

// ChunkCounter is optionally implemented by sources that know their
// stream length up front (in-memory slices, committed trace-log
// backups). The counters use it purely to pre-size their tables —
// results are identical with or without it.
type ChunkCounter interface {
	ChunkCount() int64
}

// sliceSource adapts an in-memory chunk slice to ChunkSource. Every Open
// returns an independent cursor over the shared backing array.
type sliceSource []trace.ChunkRef

func (s sliceSource) Open() (ChunkReader, error) { return &sliceReader{refs: s}, nil }

func (s sliceSource) ChunkCount() int64 { return int64(len(s)) }

type sliceReader struct {
	refs []trace.ChunkRef
	pos  int
}

func (r *sliceReader) Read(buf []trace.ChunkRef) (int, error) {
	n := copy(buf, r.refs[r.pos:])
	r.pos += n
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

func (r *sliceReader) Close() error { return nil }

// SliceSource returns a ChunkSource over an in-memory chunk slice. The
// slice is shared, not copied; callers must not mutate it while attacks
// run.
func SliceSource(refs []trace.ChunkRef) ChunkSource { return sliceSource(refs) }

// BackupSource returns a ChunkSource over a materialized backup stream —
// the bridge from the trace generators and the defense simulations to the
// streaming engine.
func BackupSource(b *trace.Backup) ChunkSource { return sliceSource(b.Chunks) }
