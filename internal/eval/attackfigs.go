package eval

import (
	"fmt"

	"freqdedup/internal/attack"
	"freqdedup/internal/trace"
)

// Fig1FrequencyDistribution reproduces Figure 1: the frequency distribution
// of chunks with duplicate content in the FSL and VM datasets, reported as
// the chunk frequency at selected CDF positions plus the paper's headline
// statistics (fraction of chunks occurring fewer than 100 times; count of
// chunks occurring more than the 99.99th-percentile threshold).
func Fig1FrequencyDistribution(ds Datasets) []Figure {
	var out []Figure
	for _, d := range distinct(ds.FSL, ds.VM) {
		freqs := d.FrequencyCDF() // ascending
		n := len(freqs)
		positions := []float64{0.50, 0.90, 0.99, 0.999, 0.9999, 1.0}
		fig := Figure{
			ID:     "Fig 1 (" + d.Name + ")",
			Title:  "frequency distribution of chunks with duplicate content",
			XLabel: "CDF of chunks",
		}
		var x []string
		var y []float64
		for _, p := range positions {
			x = append(x, fmt.Sprintf("%.4g", p))
			y = append(y, float64(freqs[cdfIndex(p, n)]))
		}
		fig.X = x
		fig.Series = []Series{{Name: "frequency", Y: y}}

		var under100, over int
		head := freqs[n-1] / 2 // "heavy head" threshold: half the max
		if head < 2 {
			head = 2
		}
		for _, f := range freqs {
			if f < 100 {
				under100++
			}
			if f > head {
				over++
			}
		}
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("%.2f%% of chunks occur fewer than 100 times; %d of %d chunks exceed half the max frequency %d",
				100*float64(under100)/float64(n), over, n, freqs[n-1]))
		out = append(out, fig)
	}
	return out
}

// cdfIndex maps a CDF position p in (0, 1] to an index into an ascending
// n-element frequency list: the chunk at CDF position (i+1)/n is element
// i, so p selects round(p*n)-1, clamped into range. Rounding is
// half-up — flooring would skew small-n figures badly (p=0.50 of n=3
// floored to index 0, the minimum instead of the median).
func cdfIndex(p float64, n int) int {
	idx := int(p*float64(n)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// fig4Setups returns the (dataset, aux, target) pairs Figure 4 sweeps on:
// FSL Mar 22 -> May 21 and VM week 12 -> 13.
func fig4Setups(ds Datasets) []struct {
	name        string
	aux, target *trace.Backup
} {
	// Indices are clamped so the same setups work on reduced test
	// datasets and short repository histories.
	at := func(d *trace.Dataset, i int) *trace.Backup {
		if i < 0 {
			i = 0
		}
		return d.Backups[i]
	}
	nf, nv := len(ds.FSL.Backups), len(ds.VM.Backups)
	return []struct {
		name        string
		aux, target *trace.Backup
	}{
		{"FSL", at(ds.FSL, nf-3), at(ds.FSL, nf-1)},
		{"VM", at(ds.VM, nv-2), at(ds.VM, nv-1)},
	}
}

// Fig4ParamSweep reproduces Figure 4: the impact of u, v, and w on the
// locality-based attack (ciphertext-only mode).
func Fig4ParamSweep(ds Datasets) []Figure {
	uValues := []int{1, 3, 5, 7, 10, 13, 15, 17, 20}
	vValues := []int{5, 10, 15, 20, 25, 30, 35, 40}
	// w scaled: the paper sweeps 50k..200k on ~30M-chunk backups; these
	// values sweep the same "binding -> plateau" range on our streams.
	wValues := []int{100, 250, 500, 1000, 2500, 5000, 20000}

	setups := fig4Setups(ds)
	sweep := func(id, xlabel string, xs []int, mk func(x int) attack.Config) Figure {
		fig := Figure{ID: id, Title: "locality-based attack inference rate vs " + xlabel,
			XLabel: xlabel, Percent: true}
		for _, x := range xs {
			fig.X = append(fig.X, fmt.Sprintf("%d", x))
		}
		for _, s := range setups {
			ser := Series{Name: s.name}
			for _, x := range xs {
				ser.Y = append(ser.Y, runAttack(attackLocality, s.aux, s.target, mk(x)))
			}
			fig.Series = append(fig.Series, ser)
		}
		return fig
	}

	return []Figure{
		sweep("Fig 4(a)", "u", uValues, func(u int) attack.Config {
			return attack.Config{U: u, V: 20, W: 10000}
		}),
		sweep("Fig 4(b)", "v", vValues, func(v int) attack.Config {
			return attack.Config{U: 10, V: v, W: 10000}
		}),
		sweep("Fig 4(c)", "w", wValues, func(w int) attack.Config {
			return attack.Config{U: 10, V: 20, W: w}
		}),
	}
}

// Fig5VaryAux reproduces Figure 5: inference rate in ciphertext-only mode
// with varying auxiliary backups against the fixed latest backup.
func Fig5VaryAux(ds Datasets) []Figure {
	var out []Figure
	for _, d := range ds.list() {
		n := len(d.Backups)
		target := d.Backups[n-1]
		fig := Figure{
			ID:      "Fig 5 (" + d.Name + ")",
			Title:   "inference rate, ciphertext-only, varying auxiliary backup (target = " + target.Label + ")",
			XLabel:  "auxiliary backup",
			Percent: true,
		}
		kinds := []attackKind{attackBasic, attackLocality, attackAdvanced}
		if d == ds.VM {
			// Fixed-size chunks: advanced == locality (Section 5.3.2).
			kinds = []attackKind{attackBasic, attackLocality}
			fig.Notes = append(fig.Notes, "advanced == locality for fixed-size chunks")
		}
		series := make([]Series, len(kinds))
		for i, k := range kinds {
			series[i].Name = k.String()
		}
		for a := 0; a < n-1; a++ {
			aux := d.Backups[a]
			fig.X = append(fig.X, aux.Label)
			for i, k := range kinds {
				series[i].Y = append(series[i].Y, runAttack(k, aux, target, ctOnlyConfig()))
			}
		}
		fig.Series = series
		out = append(out, fig)
	}
	return out
}

// Fig6VaryTarget reproduces Figure 6: inference rate in ciphertext-only
// mode with the first backup as auxiliary information and varying target
// backups.
func Fig6VaryTarget(ds Datasets) []Figure {
	var out []Figure
	for _, d := range ds.list() {
		aux := d.Backups[0]
		fig := Figure{
			ID:      "Fig 6 (" + d.Name + ")",
			Title:   "inference rate, ciphertext-only, varying target backup (aux = " + aux.Label + ")",
			XLabel:  "target backup",
			Percent: true,
		}
		kinds := []attackKind{attackBasic, attackLocality, attackAdvanced}
		if d == ds.VM {
			kinds = []attackKind{attackBasic, attackLocality}
			fig.Notes = append(fig.Notes, "advanced == locality for fixed-size chunks")
		}
		series := make([]Series, len(kinds))
		for i, k := range kinds {
			series[i].Name = k.String()
		}
		for t := 1; t < len(d.Backups); t++ {
			target := d.Backups[t]
			fig.X = append(fig.X, target.Label)
			for i, k := range kinds {
				series[i].Y = append(series[i].Y, runAttack(k, aux, target, ctOnlyConfig()))
			}
		}
		fig.Series = series
		out = append(out, fig)
	}
	return out
}

// Fig7SlidingWindow reproduces Figure 7: inference rate over a sliding
// window — auxiliary backup t, target backup t+s.
func Fig7SlidingWindow(ds Datasets) []Figure {
	var out []Figure
	type spec struct {
		d     *trace.Dataset
		steps []int
		adv   bool
	}
	seen := make(map[*trace.Dataset]bool)
	for _, sp := range []spec{
		{ds.FSL, []int{1, 2}, true},
		{ds.Synthetic, []int{1, 2}, true},
		{ds.VM, []int{1, 2, 3}, false},
	} {
		if seen[sp.d] {
			continue // single-dataset bundle: one figure, not three
		}
		seen[sp.d] = true
		d := sp.d
		n := len(d.Backups)
		fig := Figure{
			ID:      "Fig 7 (" + d.Name + ")",
			Title:   "inference rate over a sliding window (aux = t, target = t+s)",
			XLabel:  "auxiliary backup",
			Percent: true,
		}
		for t := 0; t < n-1; t++ {
			fig.X = append(fig.X, d.Backups[t].Label)
		}
		for _, s := range sp.steps {
			loc := Series{Name: fmt.Sprintf("s=%d", s)}
			adv := Series{Name: fmt.Sprintf("s=%d (Advanced)", s)}
			for t := 0; t < n-1; t++ {
				if t+s >= n {
					break
				}
				aux, target := d.Backups[t], d.Backups[t+s]
				loc.Y = append(loc.Y, runAttack(attackLocality, aux, target, ctOnlyConfig()))
				if sp.adv {
					adv.Y = append(adv.Y, runAttack(attackAdvanced, aux, target, ctOnlyConfig()))
				}
			}
			fig.Series = append(fig.Series, loc)
			if sp.adv {
				fig.Series = append(fig.Series, adv)
			}
		}
		if !sp.adv {
			fig.Notes = append(fig.Notes, "advanced == locality for fixed-size chunks")
		}
		out = append(out, fig)
	}
	return out
}

// fig8Setups returns the fixed (aux, target) pairs of Section 5.3.3: FSL
// Mar 22 -> May 21, synthetic 0 -> 5, VM 9 -> 13. Indices are clamped so
// the same setups work on reduced test datasets.
func fig8Setups(ds Datasets) []struct {
	name        string
	aux, target *trace.Backup
	adv         bool
} {
	at := func(d *trace.Dataset, i int) *trace.Backup {
		if i < 0 {
			i = 0
		}
		if i >= len(d.Backups) {
			i = len(d.Backups) - 1
		}
		return d.Backups[i]
	}
	return []struct {
		name        string
		aux, target *trace.Backup
		adv         bool
	}{
		{"FSL", at(ds.FSL, len(ds.FSL.Backups)-3), at(ds.FSL, len(ds.FSL.Backups)-1), true},
		{"Synthetic", at(ds.Synthetic, 0), at(ds.Synthetic, 5), true},
		{"VM", at(ds.VM, len(ds.VM.Backups)-5), at(ds.VM, len(ds.VM.Backups)-1), false},
	}
}

// LeakageRates are the leakage rates swept by Figures 8 and 10.
var LeakageRates = []float64{0, 0.0005, 0.001, 0.0015, 0.002}

// Fig8KnownPlaintext reproduces Figure 8: inference rate in
// known-plaintext mode for varying leakage rates.
func Fig8KnownPlaintext(ds Datasets) Figure {
	fig := Figure{
		ID:      "Fig 8",
		Title:   "inference rate, known-plaintext mode, varying leakage rate",
		XLabel:  "leakage rate",
		Percent: true,
	}
	for _, r := range LeakageRates {
		fig.X = append(fig.X, fmt.Sprintf("%.2f%%", r*100))
	}
	for _, s := range fig8Setups(ds) {
		loc := Series{Name: s.name + " (Locality)"}
		adv := Series{Name: s.name + " (Advanced)"}
		for _, r := range LeakageRates {
			leaked := leakFor(s.target, r)
			loc.Y = append(loc.Y, runAttack(attackLocality, s.aux, s.target, kpConfig(leaked)))
			if s.adv {
				adv.Y = append(adv.Y, runAttack(attackAdvanced, s.aux, s.target, kpConfig(leaked)))
			}
		}
		fig.Series = append(fig.Series, loc)
		if s.adv {
			fig.Series = append(fig.Series, adv)
		} else {
			fig.Notes = append(fig.Notes, s.name+": advanced == locality for fixed-size chunks")
		}
	}
	return fig
}

// Fig9KPVaryAux reproduces Figure 9: known-plaintext mode with a fixed
// 0.05% leakage rate and varying auxiliary backups.
func Fig9KPVaryAux(ds Datasets) []Figure {
	const leakRate = 0.0005
	var out []Figure
	for _, d := range ds.list() {
		n := len(d.Backups)
		target := d.Backups[n-1]
		if d == ds.Synthetic && n > 5 {
			target = d.Backups[5] // Section 5.3.3 uses the 5th snapshot
		}
		leaked := leakFor(target, leakRate)
		fig := Figure{
			ID:      "Fig 9 (" + d.Name + ")",
			Title:   fmt.Sprintf("inference rate, known-plaintext (leakage %.2f%%), varying auxiliary backup (target = %s)", leakRate*100, target.Label),
			XLabel:  "auxiliary backup",
			Percent: true,
		}
		kinds := []attackKind{attackLocality, attackAdvanced}
		if d == ds.VM {
			kinds = []attackKind{attackLocality}
			fig.Notes = append(fig.Notes, "advanced == locality for fixed-size chunks")
		}
		series := make([]Series, len(kinds))
		for i, k := range kinds {
			series[i].Name = k.String()
		}
		for a := 0; a < n; a++ {
			if d.Backups[a] == target {
				break
			}
			aux := d.Backups[a]
			fig.X = append(fig.X, aux.Label)
			for i, k := range kinds {
				series[i].Y = append(series[i].Y, runAttack(k, aux, target, kpConfig(leaked)))
			}
		}
		fig.Series = series
		out = append(out, fig)
	}
	return out
}

// AttackScaling measures the locality attack's end-to-end cost on growing
// stream lengths (Section 5.2's performance discussion).
func AttackScaling(d *trace.Dataset) Figure {
	fig := Figure{
		ID:     "Sec 5.2",
		Title:  "locality attack: inferred pairs vs stream length (aux = second-last backup)",
		XLabel: "chunks in target stream",
	}
	n := len(d.Backups)
	aux, target := d.Backups[n-2], d.Backups[n-1]
	enc := encryptMLE(target)
	for _, frac := range []float64{0.25, 0.5, 1.0} {
		cut := int(float64(len(enc.Backup.Chunks)) * frac)
		sub := &trace.Backup{Label: target.Label, Chunks: enc.Backup.Chunks[:cut]}
		res, err := attack.NewLocality(ctOnlyConfig()).Run(attack.BackupSource(sub), attack.BackupSource(aux), attack.Params{})
		if err != nil {
			panic(err)
		}
		fig.X = append(fig.X, fmt.Sprintf("%d", cut))
		if len(fig.Series) == 0 {
			fig.Series = append(fig.Series, Series{Name: "inferred pairs"})
		}
		fig.Series[0].Y = append(fig.Series[0].Y, float64(len(res.Pairs)))
	}
	return fig
}
