// Package server is the multi-tenant backup service: it exposes one
// shared deduplicating repository to many concurrent TCP clients through
// the wire protocol (see internal/wire's doc.go), with per-tenant bearer
// tokens, tenant-prefixed snapshot namespacing, the chunk-negotiation
// round that makes cross-tenant dedup work over a network ("have you seen
// these fingerprints?" → the client uploads only the misses), bounded
// in-flight windows for backpressure, per-connection byte-rate shaping,
// and graceful drain on shutdown.
//
// The package is deliberately storage-agnostic: it speaks to a Backend,
// and the root freqdedup package adapts *freqdedup.Repository to it (and
// records the negotiation transcripts the adversary model cares about).
// This keeps the dependency arrow pointing inward — the facade re-exports
// the server without an import cycle.
package server

import (
	"context"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"freqdedup/internal/dedup"
	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
	"freqdedup/internal/trace"
	"freqdedup/internal/wire"
)

// Defaults for Config's zero values.
const (
	// DefaultWindowChunks matches the in-process pipeline's upload window.
	DefaultWindowChunks = 1024
	// DefaultMaxInflight bounds unacknowledged windows per session: enough
	// pipelining to hide a round trip, small enough that per-session
	// ciphertext in flight stays bounded.
	DefaultMaxInflight = 4
	// DefaultMaxChunkBytes caps one ciphertext chunk, far above any sane
	// chunker Max but far below the frame limit.
	DefaultMaxChunkBytes = 4 << 20

	// handshakeTimeout bounds how long an accepted connection may dawdle
	// before completing the Hello exchange.
	handshakeTimeout = 30 * time.Second

	// restoreFrameBytes sizes TRestoreData frames.
	restoreFrameBytes = 256 << 10
)

// Backend is the storage surface the server drives. Snapshot names
// arriving here are fully qualified ("tenant/name"); prefixes follow the
// same convention. The root freqdedup package implements it over
// *Repository. All methods must be safe for concurrent use.
type Backend interface {
	// BeginBackup starts a backup session for a (new) qualified snapshot
	// name. It fails fast with dedup.ErrSnapshotExists for a taken name;
	// the authoritative check remains at Commit.
	BeginBackup(name string) (BackupSession, error)
	// Restore streams the qualified snapshot's plaintext to w.
	Restore(ctx context.Context, name string, w io.Writer) error
	// Snapshots lists snapshots whose qualified name starts with prefix.
	Snapshots(prefix string) []wire.SnapshotInfo
	// Delete removes the qualified snapshot durably.
	Delete(ctx context.Context, name string) error
	// TenantUsage reports one tenant's accounting.
	TenantUsage(tenant string) (wire.TenantUsage, error)
}

// BackupSession is one client's in-flight backup. Exactly one of Commit
// or Abort must be called; either finishes the session (a failed Commit
// included — do not Abort after it). A session is used by a single
// connection handler; implementations need not be safe for concurrent
// use, but different sessions run concurrently.
type BackupSession interface {
	// Negotiate records one window of the client's fingerprint queries in
	// the negotiation transcript and reports, per ref, whether the store
	// is missing the chunk (true = client must upload it). refs is only
	// borrowed for the call.
	Negotiate(refs []trace.ChunkRef) ([]bool, error)
	// PutChunks stores one window's uploaded ciphertexts. The chunk data
	// is only borrowed for the call; implementations copy what they keep.
	PutChunks(chunks []dedup.PutChunk) error
	// Commit seals and registers the snapshot from the client's recipe
	// entries (already validated against the negotiated stream) and makes
	// it durable before returning.
	Commit(entries []mle.RecipeEntry) (wire.SnapshotInfo, error)
	// Abort discards the session; uploaded chunks fall to the next GC.
	Abort()
}

// Config configures a Server.
type Config struct {
	// Backend is the storage adapter. Required.
	Backend Backend
	// Auth authenticates a session: tenant names a namespace, token is
	// the client's bearer token. Nil accepts every tenant (open server —
	// for benchmarks and tests; see TokenAuth for the production shape).
	Auth func(tenant string, token []byte) bool
	// WindowChunks is the advertised per-window ref limit
	// (DefaultWindowChunks if zero).
	WindowChunks int
	// MaxInflight is the advertised unacknowledged-window limit per
	// session (DefaultMaxInflight if zero).
	MaxInflight int
	// MaxChunkBytes is the advertised per-chunk ciphertext limit
	// (DefaultMaxChunkBytes if zero).
	MaxChunkBytes int
	// RateBytesPerSec shapes each connection's data plane (chunk uploads
	// and restore streams) to this many bytes per second; 0 is unlimited.
	RateBytesPerSec float64
	// RateBurst is the shaping bucket's capacity in bytes (a rate-derived
	// default if zero).
	RateBurst int
	// Logf, when non-nil, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// TokenAuth returns an Auth func over a static tenant→token table using
// constant-time comparison, so a token probe learns nothing from timing.
func TokenAuth(tokens map[string]string) func(tenant string, token []byte) bool {
	return func(tenant string, token []byte) bool {
		want, ok := tokens[tenant]
		if !ok {
			// Burn the comparison anyway: an unknown tenant should cost
			// the same as a wrong token.
			subtle.ConstantTimeCompare(token, []byte("freqdedup-no-such-tenant"))
			return false
		}
		return subtle.ConstantTimeCompare(token, []byte(want)) == 1
	}
}

// Server serves the wire protocol over a listener. Create with New,
// run with Serve, stop with Shutdown (graceful drain) or Close (abrupt).
type Server struct {
	cfg Config

	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*serverConn]struct{}
	draining bool
	closed   bool
	wg       sync.WaitGroup
}

// New validates cfg, applies defaults, and returns a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("server: nil backend")
	}
	if cfg.WindowChunks == 0 {
		cfg.WindowChunks = DefaultWindowChunks
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.MaxChunkBytes == 0 {
		cfg.MaxChunkBytes = DefaultMaxChunkBytes
	}
	if cfg.WindowChunks < 1 || cfg.MaxInflight < 1 || cfg.MaxChunkBytes < 1 {
		return nil, fmt.Errorf("server: non-positive limits (window %d, inflight %d, chunk bytes %d)",
			cfg.WindowChunks, cfg.MaxInflight, cfg.MaxChunkBytes)
	}
	if cfg.MaxChunkBytes > wire.MaxPayload/2 {
		return nil, fmt.Errorf("server: MaxChunkBytes %d exceeds the frame budget %d", cfg.MaxChunkBytes, wire.MaxPayload/2)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:     cfg,
		baseCtx: ctx,
		cancel:  cancel,
		conns:   make(map[*serverConn]struct{}),
	}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on ln until the server shuts down. It returns
// nil after Shutdown/Close, or the accept error that stopped it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.draining || s.closed
			s.mu.Unlock()
			if stopping {
				return nil
			}
			return err
		}
		c := &serverConn{
			srv:     s,
			nc:      nc,
			wc:      wire.NewConn(nc),
			limiter: newByteLimiter(s.cfg.RateBytesPerSec, s.cfg.RateBurst),
		}
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
			}()
			c.serve()
		}()
	}
}

// ListenAndServe listens on addr and serves until shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the serving listener's address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closed
}

// Shutdown drains the server gracefully: the listener closes, idle
// connections are closed immediately, and connections with a backup
// session or streaming request in flight are allowed to finish it (new
// work on them is refused with CodeShutdown). When ctx expires first,
// the remaining connections are closed abruptly and ctx.Err() returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ln := s.ln
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.closeIfIdle()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.closeAllConns()
		s.cancel()
		<-done
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	return err
}

// Close shuts the server down abruptly: listener and every connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.cancel()
	s.closeAllConns()
	s.wg.Wait()
	return nil
}

func (s *Server) closeAllConns() {
	s.mu.Lock()
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.nc.Close()
	}
}

// serverConn is one client connection's handler state.
type serverConn struct {
	srv     *Server
	nc      net.Conn
	wc      *wire.Conn
	limiter *byteLimiter
	tenant  string

	// busy (under mu) marks an operation in flight — a backup session or
	// a frame being handled — so Shutdown knows which connections it may
	// close immediately.
	mu   sync.Mutex
	busy bool

	// Reused per-connection scratch buffers.
	out    []byte
	refs   []trace.ChunkRef
	chunks [][]byte
	batch  []dedup.PutChunk
}

func (c *serverConn) setBusy(b bool) {
	c.mu.Lock()
	c.busy = b
	c.mu.Unlock()
}

// closeIfIdle closes the connection unless an operation is in flight; a
// busy connection is left to the drain check in the serve loop.
func (c *serverConn) closeIfIdle() {
	c.mu.Lock()
	idle := !c.busy
	c.mu.Unlock()
	if idle {
		c.nc.Close()
	}
}

// sendErr best-effort sends a TError frame.
func (c *serverConn) sendErr(code uint32, msg string) {
	_ = c.wc.Send(wire.TError, wire.AppendError(c.out[:0], code, msg))
}

// backupState is one in-flight backup session's protocol state.
type backupState struct {
	sess BackupSession
	name string
	// nextSeq is the next window sequence number the client must use.
	nextSeq uint32
	// pending maps an unacknowledged window's seq to the refs whose
	// chunks the client owes (negotiated misses, in bitmap order).
	pending map[uint32][]trace.ChunkRef
	// negotiated is the full negotiated ref stream in order; Commit's
	// recipe entries are validated against it so a client cannot register
	// references to chunks it never negotiated.
	negotiated []trace.ChunkRef
}

// serve runs the connection: handshake, then the frame dispatch loop.
func (c *serverConn) serve() {
	defer c.nc.Close()
	if err := c.handshake(); err != nil {
		c.srv.logf("server: %s: handshake: %v", c.nc.RemoteAddr(), err)
		return
	}

	var bs *backupState
	// A connection that dies mid-session aborts it: the unacknowledged
	// snapshot vanishes (its chunks fall to GC), exactly the acked ⇒
	// durable contract.
	defer func() {
		if bs != nil {
			bs.sess.Abort()
		}
	}()
	for {
		typ, p, err := c.wc.Recv()
		if err != nil {
			return
		}
		c.setBusy(true)
		var fatal bool
		bs, fatal = c.dispatch(bs, typ, p)
		c.setBusy(bs != nil)
		if fatal {
			return
		}
		// Graceful drain: once no session is in flight on this
		// connection, refuse further work.
		if bs == nil && c.srv.isDraining() {
			c.sendErr(wire.CodeShutdown, "server is shutting down")
			return
		}
	}
}

// handshake runs the Hello exchange under a deadline.
func (c *serverConn) handshake() error {
	if err := c.nc.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return err
	}
	typ, p, err := c.wc.Recv()
	if err != nil {
		return err
	}
	if typ != wire.THello {
		c.sendErr(wire.CodeProtocol, "expected Hello")
		return fmt.Errorf("first frame type %d", typ)
	}
	hello, err := wire.ParseHello(p)
	if err != nil {
		c.sendErr(wire.CodeProtocol, "malformed Hello")
		return err
	}
	if hello.Version != wire.Version {
		c.sendErr(wire.CodeProtocol, fmt.Sprintf("unsupported protocol version %d", hello.Version))
		return fmt.Errorf("protocol version %d", hello.Version)
	}
	if err := validTenant(hello.Tenant); err != nil {
		c.sendErr(wire.CodeProtocol, err.Error())
		return err
	}
	if c.srv.cfg.Auth != nil && !c.srv.cfg.Auth(hello.Tenant, hello.Token) {
		c.sendErr(wire.CodeAuth, "authentication failed")
		return fmt.Errorf("tenant %q: authentication failed", hello.Tenant)
	}
	c.tenant = hello.Tenant
	ok := wire.AppendHelloOK(c.out[:0], wire.HelloOK{
		Version:       wire.Version,
		WindowChunks:  uint32(c.srv.cfg.WindowChunks),
		MaxInflight:   uint32(c.srv.cfg.MaxInflight),
		MaxChunkBytes: uint32(c.srv.cfg.MaxChunkBytes),
	})
	c.out = ok[:0]
	if err := c.wc.Send(wire.THelloOK, ok); err != nil {
		return err
	}
	return c.nc.SetDeadline(time.Time{})
}

// validTenant enforces the namespace shape: the tenant is a single path
// segment, so "tenant/name" parses back unambiguously.
func validTenant(t string) error {
	if t == "" || len(t) > 64 {
		return fmt.Errorf("tenant name length %d out of range [1, 64]", len(t))
	}
	for _, r := range t {
		if r == '/' || r < 0x21 || r == 0x7f {
			return errors.New("tenant name contains a separator or control character")
		}
	}
	return nil
}

// dispatch handles one frame, returning the (possibly changed) backup
// state and whether the connection must close. Protocol violations are
// fatal; operational failures (snapshot exists, not found, storage
// errors) are reported and the connection lives on.
func (c *serverConn) dispatch(bs *backupState, typ uint32, p []byte) (*backupState, bool) {
	fail := func(msg string) (*backupState, bool) {
		c.sendErr(wire.CodeProtocol, msg)
		if bs != nil {
			bs.sess.Abort()
		}
		return nil, true
	}

	switch typ {
	case wire.TBackupBegin:
		if bs != nil {
			return fail("backup already in progress on this connection")
		}
		name, err := wire.ParseName(p)
		if err != nil {
			return fail("malformed BackupBegin")
		}
		if c.srv.isDraining() {
			c.sendErr(wire.CodeShutdown, "server is shutting down")
			return nil, true
		}
		sess, err := c.srv.cfg.Backend.BeginBackup(c.qualified(name))
		if err != nil {
			c.sendBackendErr(err)
			return nil, false
		}
		if err := c.wc.Send(wire.TBackupReady, nil); err != nil {
			sess.Abort()
			return nil, true
		}
		return &backupState{
			sess:    sess,
			name:    name,
			pending: make(map[uint32][]trace.ChunkRef),
		}, false

	case wire.TNegotiate:
		if bs == nil {
			return fail("Negotiate outside a backup session")
		}
		seq, refs, err := wire.ParseNegotiate(p, c.refs)
		c.refs = refs[:0]
		if err != nil {
			return fail("malformed Negotiate")
		}
		if seq != bs.nextSeq {
			return fail(fmt.Sprintf("window seq %d, expected %d", seq, bs.nextSeq))
		}
		if len(refs) == 0 || len(refs) > c.srv.cfg.WindowChunks {
			return fail(fmt.Sprintf("window of %d refs exceeds limit %d", len(refs), c.srv.cfg.WindowChunks))
		}
		if len(bs.pending) >= c.srv.cfg.MaxInflight {
			return fail(fmt.Sprintf("more than %d windows in flight", c.srv.cfg.MaxInflight))
		}
		for _, r := range refs {
			if r.Size == 0 || int(r.Size) > c.srv.cfg.MaxChunkBytes {
				return fail(fmt.Sprintf("chunk size %d out of range [1, %d]", r.Size, c.srv.cfg.MaxChunkBytes))
			}
		}
		bs.nextSeq++
		miss, err := bs.sess.Negotiate(refs)
		if err != nil {
			c.sendErr(wire.CodeInternal, err.Error())
			bs.sess.Abort()
			return nil, true
		}
		bs.negotiated = append(bs.negotiated, refs...)
		var owed []trace.ChunkRef
		for i, m := range miss {
			if m {
				owed = append(owed, refs[i])
			}
		}
		bs.pending[seq] = owed
		if err := c.wc.Send(wire.TNegotiateReply, wire.AppendNegotiateReply(c.out[:0], seq, miss)); err != nil {
			bs.sess.Abort()
			return nil, true
		}
		return bs, false

	case wire.TChunkData:
		if bs == nil {
			return fail("ChunkData outside a backup session")
		}
		seq, chunks, err := wire.ParseChunkData(p, c.chunks)
		c.chunks = chunks[:0]
		if err != nil {
			return fail("malformed ChunkData")
		}
		owed, ok := bs.pending[seq]
		if !ok {
			return fail(fmt.Sprintf("ChunkData for unknown window %d", seq))
		}
		if len(chunks) != len(owed) {
			return fail(fmt.Sprintf("window %d: %d chunks, owed %d", seq, len(chunks), len(owed)))
		}
		// Shape ingest before the expensive work; the bucket sleeps, so a
		// limited client simply streams slower.
		c.limiter.waitN(len(p))
		// Verify every uploaded ciphertext against its negotiated
		// fingerprint before it may enter the SHARED store: without this a
		// tenant could register garbage under a fingerprint and poison
		// every other tenant's future dedup hits against it.
		batch := c.batch[:0]
		for i, data := range chunks {
			if uint32(len(data)) != owed[i].Size {
				return fail(fmt.Sprintf("window %d chunk %d: size %d, negotiated %d", seq, i, len(data), owed[i].Size))
			}
			if fphash.FromBytes(data) != owed[i].FP {
				return fail(fmt.Sprintf("window %d chunk %d: content does not match negotiated fingerprint", seq, i))
			}
			batch = append(batch, dedup.PutChunk{FP: owed[i].FP, Data: data})
		}
		c.batch = batch[:0]
		if err := bs.sess.PutChunks(batch); err != nil {
			c.sendErr(wire.CodeInternal, err.Error())
			bs.sess.Abort()
			return nil, true
		}
		delete(bs.pending, seq)
		if err := c.wc.Send(wire.TWindowAck, wire.AppendSeq(c.out[:0], seq)); err != nil {
			bs.sess.Abort()
			return nil, true
		}
		return bs, false

	case wire.TBackupCommit:
		if bs == nil {
			return fail("Commit outside a backup session")
		}
		if len(bs.pending) != 0 {
			return fail(fmt.Sprintf("Commit with %d unacknowledged windows", len(bs.pending)))
		}
		entries, err := wire.ParseCommit(p)
		if err != nil {
			return fail("malformed Commit")
		}
		// The recipe must be exactly the negotiated stream: a commit
		// referencing chunks that were never negotiated (and so never
		// verified or uploaded) would register dangling or foreign
		// references in the shared refcounts.
		if len(entries) != len(bs.negotiated) {
			return fail(fmt.Sprintf("recipe has %d entries, negotiated %d", len(entries), len(bs.negotiated)))
		}
		for i, e := range entries {
			if e.Fingerprint != bs.negotiated[i].FP || e.Size != bs.negotiated[i].Size {
				return fail(fmt.Sprintf("recipe entry %d does not match the negotiated stream", i))
			}
		}
		info, err := bs.sess.Commit(entries)
		if err != nil {
			c.sendBackendErr(err)
			return nil, false
		}
		info.Name = bs.name
		if err := c.wc.Send(wire.TBackupDone, wire.AppendSnapshotInfo(c.out[:0], info)); err != nil {
			return nil, true
		}
		return nil, false

	case wire.TRestoreReq:
		if bs != nil {
			return fail("Restore during a backup session")
		}
		name, err := wire.ParseName(p)
		if err != nil {
			return fail("malformed RestoreReq")
		}
		w := &restoreWriter{c: c}
		if err := c.srv.cfg.Backend.Restore(c.srv.baseCtx, c.qualified(name), w); err != nil {
			// The client sees data frames followed by TError and discards
			// the partial restore.
			c.sendBackendErr(err)
			return nil, w.failed
		}
		if err := w.flush(); err != nil {
			return nil, true
		}
		if err := c.wc.Send(wire.TRestoreEnd, wire.AppendU64(c.out[:0], w.total)); err != nil {
			return nil, true
		}
		return nil, false

	case wire.TSnapshotsReq:
		if len(p) != 0 {
			return fail("malformed SnapshotsReq")
		}
		prefix := c.tenant + "/"
		list := c.srv.cfg.Backend.Snapshots(prefix)
		out := make([]wire.SnapshotInfo, 0, len(list))
		for _, s := range list {
			s.Name = strings.TrimPrefix(s.Name, prefix)
			out = append(out, s)
		}
		if err := c.wc.Send(wire.TSnapshotsReply, wire.AppendSnapshotList(c.out[:0], out)); err != nil {
			return nil, true
		}
		return nil, false

	case wire.TDeleteReq:
		if bs != nil {
			return fail("Delete during a backup session")
		}
		name, err := wire.ParseName(p)
		if err != nil {
			return fail("malformed DeleteReq")
		}
		if err := c.srv.cfg.Backend.Delete(c.srv.baseCtx, c.qualified(name)); err != nil {
			c.sendBackendErr(err)
			return nil, false
		}
		if err := c.wc.Send(wire.TDeleteOK, nil); err != nil {
			return nil, true
		}
		return nil, false

	case wire.TStatsReq:
		if len(p) != 0 {
			return fail("malformed StatsReq")
		}
		u, err := c.srv.cfg.Backend.TenantUsage(c.tenant)
		if err != nil {
			c.sendBackendErr(err)
			return nil, false
		}
		if err := c.wc.Send(wire.TStatsReply, wire.AppendTenantUsage(c.out[:0], u)); err != nil {
			return nil, true
		}
		return nil, false

	default:
		return fail(fmt.Sprintf("unexpected frame type %d", typ))
	}
}

// qualified prefixes a tenant-relative snapshot name.
func (c *serverConn) qualified(name string) string { return c.tenant + "/" + name }

// sendBackendErr maps a backend error to a wire error code.
func (c *serverConn) sendBackendErr(err error) {
	switch {
	case errors.Is(err, dedup.ErrSnapshotExists):
		c.sendErr(wire.CodeExists, err.Error())
	case errors.Is(err, dedup.ErrSnapshotNotFound):
		c.sendErr(wire.CodeNotFound, err.Error())
	default:
		c.sendErr(wire.CodeInternal, err.Error())
	}
}

// restoreWriter frames Backend.Restore's output into TRestoreData frames,
// buffered to restoreFrameBytes and rate-shaped like uploads.
type restoreWriter struct {
	c      *serverConn
	buf    []byte
	total  uint64
	failed bool // a frame send failed; the connection is done
}

func (w *restoreWriter) Write(p []byte) (int, error) {
	w.total += uint64(len(p))
	w.buf = append(w.buf, p...)
	for len(w.buf) >= restoreFrameBytes {
		if err := w.send(w.buf[:restoreFrameBytes]); err != nil {
			return 0, err
		}
		w.buf = w.buf[:copy(w.buf, w.buf[restoreFrameBytes:])]
	}
	return len(p), nil
}

func (w *restoreWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	err := w.send(w.buf)
	w.buf = w.buf[:0]
	return err
}

func (w *restoreWriter) send(p []byte) error {
	w.c.limiter.waitN(len(p))
	if err := w.c.wc.Send(wire.TRestoreData, p); err != nil {
		w.failed = true
		return err
	}
	return nil
}
