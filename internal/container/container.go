package container

import (
	"errors"
	"fmt"

	"freqdedup/internal/fphash"
)

// DefaultBytes is the paper's container size (4 MB).
const DefaultBytes = 4 << 20

// Entry is one chunk stored in a container. Data may be nil for
// metadata-only simulations (package ddfs); Size is always set. Entries
// with nil Data cannot be persisted through a FileBackend.
type Entry struct {
	FP   fphash.Fingerprint
	Size uint32
	Data []byte
}

// Location addresses a stored chunk.
type Location struct {
	Container int // container ID
	Index     int // entry index within the container
}

// Container is one sealed or in-progress container.
type Container struct {
	ID      int
	Entries []Entry
	Bytes   int
}

// Store accumulates chunks into fixed-capacity containers. The one open
// (in-progress) container lives in memory; the moment a container seals it
// is handed to the Backend, which owns sealed-container storage — in
// memory (MemBackend, the default) or on disk (FileBackend). The zero
// value is not usable; construct with New or NewWithBackend.
//
// A Store is not safe for concurrent use: it is a single packer with one
// open container, and callers own its locking. The sharded dedup store
// runs one Store per shard behind the shard lock, which keeps packing
// append-safe under concurrent writers without a lock here on every
// Append. (Backends are safe for concurrent use; reads of sealed
// containers may bypass the packer's lock.)
type Store struct {
	capacity    int
	backend     Backend
	shard       int
	sealed      int // sealed containers so far; also the next container ID
	sealedBytes int
	current     *Container
}

// New returns a store with the given container byte capacity backed by a
// private in-memory backend (the pre-persistence behavior). It panics if
// capacity is not positive.
func New(capacity int) *Store {
	if capacity <= 0 {
		panic(fmt.Sprintf("container: capacity must be positive, got %d", capacity))
	}
	s, err := NewWithBackend(capacity, NewMemBackend(1), 0, nil)
	if err != nil {
		// NewMemBackend cannot fail to scan an empty shard.
		panic(fmt.Sprintf("container: %v", err))
	}
	return s
}

// NewWithBackend returns a store packing shard's containers through the
// given backend. If the backend already holds sealed containers for the
// shard (a reopened FileBackend), packing resumes after them: the store
// scans their metadata (one pass, without chunk data) to restore its
// container count and byte totals, and new containers are numbered after
// the existing ones. visit, if non-nil, is called for each pre-existing
// container during that same scan, so callers rebuilding their own state
// (the dedup store's fingerprint index) do not pay a second metadata
// pass; a non-nil error from visit aborts construction.
func NewWithBackend(capacity int, b Backend, shard int, visit func(*Container) error) (*Store, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("container: capacity must be positive, got %d", capacity)
	}
	if shard < 0 || shard >= b.Shards() {
		return nil, fmt.Errorf("container: shard %d out of range [0, %d)", shard, b.Shards())
	}
	s := &Store{capacity: capacity, backend: b, shard: shard}
	// With no visitor to feed, a backend that can report its sealed totals
	// directly (SealedStater) spares the whole metadata scan — the fast
	// path behind O(metadata) repository opens with a persistent index.
	if visit == nil {
		if ss, ok := b.(SealedStater); ok {
			sealed, bytes, err := ss.SealedStats(shard)
			if err != nil {
				return nil, err
			}
			s.sealed = sealed
			s.sealedBytes = int(bytes)
			return s, nil
		}
	}
	err := b.Scan(shard, false, func(c *Container) error {
		s.sealed++
		s.sealedBytes += c.Bytes
		if visit != nil {
			return visit(c)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Backend returns the store's backend.
func (s *Store) Backend() Backend { return s.backend }

// Append adds a chunk to the current container, sealing it through the
// backend first if the chunk would not fit. It returns the chunk's
// location. The returned location is stable until the next Compact. On a
// backend seal error nothing is appended and the sealed-but-unwritten
// container stays current, so the store remains consistent.
func (s *Store) Append(e Entry) (Location, error) {
	if s.current == nil {
		s.current = &Container{ID: s.sealed}
	}
	if s.current.Bytes > 0 && s.current.Bytes+int(e.Size) > s.capacity {
		if _, err := s.Flush(); err != nil {
			return Location{}, err
		}
		s.current = &Container{ID: s.sealed}
	}
	loc := Location{Container: s.current.ID, Index: len(s.current.Entries)}
	s.current.Entries = append(s.current.Entries, e)
	s.current.Bytes += int(e.Size)
	return loc, nil
}

// Flush seals the current container, if any, persisting it through the
// backend. It returns the sealed container, or nil if the current
// container is empty. When Flush returns a nil error the container is as
// durable as the backend makes it (FileBackend: fsynced to disk).
func (s *Store) Flush() (*Container, error) {
	if s.current == nil || len(s.current.Entries) == 0 {
		return nil, nil
	}
	c := s.current
	if err := s.backend.Seal(s.shard, c); err != nil {
		return nil, err
	}
	s.sealed++
	s.sealedBytes += c.Bytes
	s.current = nil
	return c, nil
}

// Get returns the entry at loc, reading sealed containers through the
// backend. It returns ErrNotFound if the location does not exist and
// ErrCorrupt (wrapped) if the backend cannot validate the container.
func (s *Store) Get(loc Location) (Entry, error) {
	c, err := s.Container(loc.Container)
	if err != nil {
		return Entry{}, err
	}
	if loc.Index < 0 || loc.Index >= len(c.Entries) {
		return Entry{}, ErrNotFound
	}
	return c.Entries[loc.Index], nil
}

// Container returns the container with the given ID: the in-progress one
// from memory, sealed ones through the backend. The returned container
// must not be mutated.
func (s *Store) Container(id int) (*Container, error) {
	if s.current != nil && s.current.ID == id {
		return s.current, nil
	}
	if id < 0 || id >= s.sealed {
		return nil, ErrNotFound
	}
	return s.backend.Load(s.shard, id)
}

// Current returns the in-progress container, or nil if none is open. The
// caller must hold whatever lock guards the Store and must not mutate the
// container; the sharded dedup store uses it to snapshot open-container
// entries for the restore pipeline without a backend read.
func (s *Store) Current() *Container { return s.current }

// Sealed returns the number of sealed (durable) containers — also the
// next container ID. The persistent fingerprint index flushes against
// this count: only postings in containers below it are written to runs.
func (s *Store) Sealed() int { return s.sealed }

// Count returns the number of containers, including a non-empty
// in-progress one.
func (s *Store) Count() int {
	n := s.sealed
	if s.current != nil && len(s.current.Entries) > 0 {
		n++
	}
	return n
}

// Bytes returns the total stored bytes across all containers.
func (s *Store) Bytes() int {
	n := s.sealedBytes
	if s.current != nil {
		n += s.current.Bytes
	}
	return n
}

// CompactStats reports what a Compact pass dropped.
type CompactStats struct {
	// EntriesDropped is the number of entries keep rejected.
	EntriesDropped int
	// BytesDropped is their total size.
	BytesDropped uint64
	// ContainersRewritten is the number of pre-compaction containers that
	// contained at least one dropped entry.
	ContainersRewritten int
}

// RepairStats reports what a shard repair dropped and preserved.
type RepairStats struct {
	// ContainersQuarantined is the number of unreadable containers
	// (structural damage or checksum failure) dropped by the repair.
	ContainersQuarantined int
	// EntriesLost counts chunks lost: every entry of a quarantined
	// container, plus readable entries whose content no longer matches
	// their recorded fingerprint.
	EntriesLost int
	// BytesLost is the total size of the lost entries that repair could
	// still measure (entries of structurally unreadable containers are
	// unknowable and not counted here).
	BytesLost uint64
	// QuarantinePaths lists where damaged containers' raw bytes were
	// preserved, when the backend supports quarantine.
	QuarantinePaths []string
}

// Repair rewrites the shard keeping every entry that can still be
// trusted: containers that fail to read (checksum or structural damage)
// are quarantined — their raw bytes preserved through the backend's
// Quarantiner capability when present — and dropped; readable entries
// whose content hash no longer equals their recorded fingerprint are
// dropped individually (in-flight corruption that a CRC computed after
// the fact cannot catch). Survivors are repacked densely and renumbered
// from zero, like Compact, and the open container's entries ride along.
// On a FileBackend opened in salvage mode, the rewrite produces a clean
// file and lifts the shard's ErrSalvaged condition.
//
// moved is called with every surviving entry and its post-repair
// location; callers rebuild their fingerprint indexes from it. Like
// Compact's moved, its effects must be applied only after a nil return.
func (s *Store) Repair(moved func(Entry, Location)) (RepairStats, error) {
	var st RepairStats
	var newSealed []*Container
	var cur *Container
	newBytes := 0
	place := func(e Entry) {
		if cur == nil {
			cur = &Container{ID: len(newSealed)}
		}
		if cur.Bytes > 0 && cur.Bytes+int(e.Size) > s.capacity {
			newBytes += cur.Bytes
			newSealed = append(newSealed, cur)
			cur = &Container{ID: len(newSealed)}
		}
		loc := Location{Container: cur.ID, Index: len(cur.Entries)}
		cur.Entries = append(cur.Entries, e)
		cur.Bytes += int(e.Size)
		if moved != nil {
			moved(e, loc)
		}
	}
	visit := func(c *Container) {
		for _, e := range c.Entries {
			if fphash.FromBytes(e.Data) != e.FP {
				st.EntriesLost++
				st.BytesLost += uint64(e.Size)
				continue
			}
			place(e)
		}
	}
	// Collect first, act after: the tolerant scan may hold backend locks
	// while fn runs (FileBackend's does), so quarantining and metadata
	// recounts — backend calls themselves — must wait until the scan has
	// returned. Survivor containers are safely retained: tolerant scans
	// hand out freshly allocated records (see TolerantScanner).
	var survivors []*Container
	var damaged []int
	err := ScanShardTolerant(s.backend, s.shard, func(id int, c *Container, err error) error {
		if err != nil {
			damaged = append(damaged, id)
			return nil
		}
		survivors = append(survivors, c)
		return nil
	})
	if err != nil {
		return RepairStats{}, err
	}
	// Quarantine before the rewrite below replaces the shard file — the
	// damaged records' raw bytes only exist until then.
	for _, id := range damaged {
		st.ContainersQuarantined++
		if q, ok := s.backend.(Quarantiner); ok {
			if path, qerr := q.Quarantine(s.shard, id); qerr == nil {
				st.QuarantinePaths = append(st.QuarantinePaths, path)
			}
		}
		// The container's entry metadata may still be readable even
		// though its data region is corrupt; count what can be counted
		// for the report.
		if mc, merr := s.loadMeta(id); merr == nil {
			st.EntriesLost += len(mc.Entries)
			st.BytesLost += uint64(mc.Bytes)
		}
	}
	for _, c := range survivors {
		visit(c)
	}
	// As in Compact: survivors of sealed containers stay sealed, so the
	// repair's rewrite never demotes durable chunks to volatile memory.
	if cur != nil {
		newBytes += cur.Bytes
		newSealed = append(newSealed, cur)
		cur = nil
	}
	if s.current != nil {
		visit(s.current)
	}
	if err := s.backend.Rewrite(s.shard, newSealed); err != nil {
		return RepairStats{}, err
	}
	s.sealed = len(newSealed)
	s.sealedBytes = newBytes
	s.current = cur
	return st, nil
}

// loadMeta reads one container's entry metadata without trusting its
// data, for accounting over damaged containers. Only backends whose Scan
// supports a metadata-only pass can serve it cheaply; errors just mean
// the report under-counts.
func (s *Store) loadMeta(id int) (*Container, error) {
	var out *Container
	stop := errors.New("stop")
	err := s.backend.Scan(s.shard, false, func(c *Container) error {
		if c.ID == id {
			out = &Container{ID: c.ID, Entries: append([]Entry(nil), c.Entries...), Bytes: c.Bytes}
			return stop
		}
		return nil
	})
	if out != nil {
		return out, nil
	}
	if err != nil {
		return nil, err
	}
	return nil, ErrNotFound
}

// Compact rewrites the store keeping only entries for which keep returns
// true, repacking survivors densely in their existing order and
// renumbering containers from zero — the GC sweep's storage rewrite. The
// new sealed sequence replaces the old one atomically in the backend
// (FileBackend: a fresh file renamed over the old).
//
// Durability is preserved, not just data: every survivor from a sealed
// container lands in the new sealed sequence — the trailing partial
// container is sealed rather than reopened in memory, because its chunks
// were already durable and a crash between the rewrite and the next
// flush must not lose them (the crash-point explorer's GC window).
// Survivors from the old open container were never durable and stay in
// the new open container.
//
// moved, if non-nil, is called with every surviving entry and its
// post-compaction location, in the new layout order. It may have been
// called even if Compact returns an error; callers must apply its effects
// only after a nil return. On error the store and backend are unchanged.
func (s *Store) Compact(keep func(Entry) bool, moved func(Entry, Location)) (CompactStats, error) {
	var st CompactStats
	var newSealed []*Container
	var cur *Container
	newBytes := 0
	place := func(e Entry) {
		if cur == nil {
			cur = &Container{ID: len(newSealed)}
		}
		if cur.Bytes > 0 && cur.Bytes+int(e.Size) > s.capacity {
			newBytes += cur.Bytes
			newSealed = append(newSealed, cur)
			cur = &Container{ID: len(newSealed)}
		}
		loc := Location{Container: cur.ID, Index: len(cur.Entries)}
		cur.Entries = append(cur.Entries, e)
		cur.Bytes += int(e.Size)
		if moved != nil {
			moved(e, loc)
		}
	}
	visit := func(c *Container) error {
		dropped := false
		for _, e := range c.Entries {
			if keep(e) {
				place(e)
			} else {
				st.EntriesDropped++
				st.BytesDropped += uint64(e.Size)
				dropped = true
			}
		}
		if dropped {
			st.ContainersRewritten++
		}
		return nil
	}
	if err := s.backend.Scan(s.shard, true, visit); err != nil {
		return CompactStats{}, err
	}
	// Seal the trailing partial container: its entries were durable
	// before the compaction and must be durable after it.
	if cur != nil {
		newBytes += cur.Bytes
		newSealed = append(newSealed, cur)
		cur = nil
	}
	if s.current != nil {
		_ = visit(s.current)
	}
	if err := s.backend.Rewrite(s.shard, newSealed); err != nil {
		return CompactStats{}, err
	}
	s.sealed = len(newSealed)
	s.sealedBytes = newBytes
	s.current = cur
	return st, nil
}
