package freqdedup

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"freqdedup/internal/faultio"
)

// corruptShardMiddle flips one bit in the middle of the first shard file,
// simulating post-fsync media corruption under a sealed container record.
func corruptShardMiddle(t *testing.T, m *faultio.MemFS, path string) {
	t.Helper()
	st, err := m.Stat(path)
	if err != nil {
		t.Fatalf("stat %s: %v", path, err)
	}
	if err := m.CorruptAt(path, st.Size()/2, 0x04); err != nil {
		t.Fatalf("corrupt %s: %v", path, err)
	}
}

// TestRepositoryRepairAfterCorruption is the self-healing acceptance walk:
// flip a bit under a sealed container, reopen with WithSalvage, Repair,
// and check that (a) the damaged snapshots and chunk counts are reported
// exactly, (b) degraded restores are byte-exact outside the reported
// ranges and zero inside, (c) undamaged snapshots restore untouched, and
// (d) the repository takes new backups again afterwards.
func TestRepositoryRepairAfterCorruption(t *testing.T) {
	m := faultio.NewMemFS()
	ctx := context.Background()
	var key Key
	copy(key[:], "repair test key")
	opts := []RepositoryOption{
		WithFileSystem(m), WithRepositoryKey(key),
		WithShards(2), WithContainerBytes(32 << 10),
	}

	v1 := repoData(41, 768<<10)
	v2 := repoMutate(v1, 42)
	v3 := repoData(43, 256<<10)

	repo, err := CreateRepository("repo", opts...)
	if err != nil {
		t.Fatal(err)
	}
	mustBackup(t, repo, "mon", v1)
	mustBackup(t, repo, "tue", v2)
	mustBackup(t, repo, "wed", v3)
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	corruptShardMiddle(t, m, "repo/shard-0000.fdc")

	repo, err = OpenRepository("repo", append(opts, WithSalvage(), WithDegradedRestore())...)
	if err != nil {
		t.Fatalf("salvage open: %v", err)
	}
	defer repo.Close()

	rep, err := repo.Repair(ctx)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if !rep.Damaged() {
		t.Fatalf("repair of a corrupted shard reported no damage: %+v", rep)
	}
	if rep.ChunksLost == 0 && rep.SalvageContainersLost == 0 {
		t.Fatalf("no chunks or containers reported lost: %+v", rep)
	}
	if len(rep.Snapshots) == 0 {
		t.Fatalf("lost chunks but no snapshot reported damaged: %+v", rep)
	}
	damaged := make(map[string][]LostRange)
	for _, d := range rep.Snapshots {
		if d.RecipeUnreadable {
			t.Fatalf("snapshot %q recipe unreadable after payload corruption", d.Name)
		}
		if d.ChunksLost <= 0 || d.ChunksLost > d.TotalChunks {
			t.Fatalf("implausible damage for %q: %+v", d.Name, d)
		}
		damaged[d.Name] = nil
	}

	// Every snapshot restores: damaged ones with a DegradedError whose
	// ranges are exactly the zero-filled holes, undamaged ones exactly.
	originals := map[string][]byte{"mon": v1, "tue": v2, "wed": v3}
	for name, want := range originals {
		var out bytes.Buffer
		err := repo.Restore(ctx, name, &out)
		if _, isDamaged := damaged[name]; !isDamaged {
			if err != nil {
				t.Fatalf("restore undamaged %q: %v", name, err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Fatalf("undamaged snapshot %q restored different bytes", name)
			}
			continue
		}
		var de *DegradedError
		if !errors.As(err, &de) {
			t.Fatalf("restore damaged %q: err = %v, want *DegradedError", name, err)
		}
		if out.Len() != len(want) {
			t.Fatalf("degraded restore of %q: %d bytes, want %d", name, out.Len(), len(want))
		}
		expect := append([]byte(nil), want...)
		for _, r := range de.Ranges {
			if r.Offset+r.Length > uint64(len(expect)) {
				t.Fatalf("lost range %+v beyond snapshot %q", r, name)
			}
			for i := r.Offset; i < r.Offset+r.Length; i++ {
				expect[i] = 0
			}
		}
		if !bytes.Equal(out.Bytes(), expect) {
			t.Fatalf("degraded restore of %q differs outside the reported lost ranges", name)
		}
		if de.BytesLost() == 0 {
			t.Fatalf("damaged snapshot %q reported empty lost ranges", name)
		}
	}

	// The store is writable again: a fresh backup round-trips, and GC
	// sweeps without touching the surviving snapshots.
	post := repoData(44, 128<<10)
	mustBackup(t, repo, "post-repair", post)
	mustRestore(t, repo, "post-repair", post)
	if _, err := repo.GC(ctx); err != nil {
		t.Fatalf("gc after repair: %v", err)
	}
	mustRestore(t, repo, "post-repair", post)
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	// A plain (non-salvage) reopen of the repaired repository succeeds:
	// Repair left a structurally clean layout behind.
	repo, err = OpenRepository("repo", append(opts, WithDegradedRestore())...)
	if err != nil {
		t.Fatalf("clean reopen after repair: %v", err)
	}
	mustRestore(t, repo, "post-repair", post)
	// A second repair finds nothing new to quarantine.
	rep2, err := repo.Repair(ctx)
	if err != nil {
		t.Fatalf("second repair: %v", err)
	}
	if rep2.ContainersQuarantined != 0 || rep2.ChunksLost != 0 {
		t.Fatalf("second repair found fresh damage: %+v", rep2)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRepositoryCloseIdempotent: Close twice is a no-op the second time,
// and a repository is safely closable right after a failed Backup.
func TestRepositoryCloseIdempotent(t *testing.T) {
	m := faultio.NewMemFS()
	repo, err := CreateRepository("repo", WithFileSystem(m), WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Backup(context.Background(), "", bytes.NewReader(nil)); err == nil {
		t.Fatal("backup with empty name should fail")
	}
	if err := repo.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := repo.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := repo.Close(); err != nil {
		t.Fatalf("third close: %v", err)
	}
}
