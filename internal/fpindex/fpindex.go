package fpindex

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"freqdedup/internal/bloom"
	"freqdedup/internal/container"
	"freqdedup/internal/fphash"
	"freqdedup/internal/lru"
	"freqdedup/internal/vfs"
)

const (
	// runFilterFPP sizes each run's Bloom filter (~9.6 bits/fingerprint).
	runFilterFPP = 0.01
	// aggFilterFPP sizes the per-shard aggregate filter that fronts every
	// lookup: a negative here proves the fingerprint is in neither the
	// memtable nor any run, so certainly-new chunks touch no disk.
	aggFilterFPP = 0.01

	// Option defaults.
	defaultMemtableEntries = 1 << 15
	defaultCacheBytes      = 8 << 20
	defaultExpectedChunks  = 1 << 22
	defaultFanout          = 4
)

// Options configures an Index. Zero values select the defaults above.
type Options struct {
	// Shards is the number of index shards; it must match the dedup
	// store's shard count.
	Shards int
	// MemtableEntries is the per-shard flush threshold: once a memtable
	// holds this many postings NeedsFlush reports true.
	MemtableEntries int
	// CacheBytes bounds the shared hot-block LRU cache.
	CacheBytes int64
	// ExpectedChunks sizes the aggregate Bloom filters (store-wide
	// estimate, split across shards). Undersizing only raises the
	// false-positive rate; correctness is unaffected.
	ExpectedChunks uint64
	// SyncCompaction runs compaction inline on the flushing goroutine
	// instead of in the background — deterministic, for crash sweeps.
	SyncCompaction bool
	// Fanout is how many runs accumulate on one level before they are
	// merged into the next.
	Fanout int
	// ForceRebuild distrusts all on-disk index state, as if every shard
	// carried a layout-change marker — used after container salvage,
	// which renumbers containers and invalidates run locations.
	ForceRebuild bool
}

func (o *Options) fill() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.MemtableEntries <= 0 {
		o.MemtableEntries = defaultMemtableEntries
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = defaultCacheBytes
	}
	if o.ExpectedChunks == 0 {
		o.ExpectedChunks = defaultExpectedChunks
	}
	if o.Fanout <= 1 {
		o.Fanout = defaultFanout
	}
}

// Counters are cumulative lookup-path statistics across all shards.
type Counters struct {
	// BloomNegative counts lookups rejected by the aggregate filter
	// without touching any run — the unique-chunk fast path.
	BloomNegative uint64
	// MemtableHits counts lookups answered by a shard's memtable.
	MemtableHits uint64
	// BlockCacheHits counts run-block reads served from the LRU cache.
	BlockCacheHits uint64
	// DiskProbes counts run-block reads that went to disk.
	DiskProbes uint64
}

// blockKey identifies one cached run block. Run sequence numbers are
// never reused within a process, so stale entries for deleted runs can
// only age out — they can never alias a live block.
type blockKey struct {
	shard int
	seq   uint64
	block int
}

// Index is a persistent, memory-bounded fingerprint index: per-shard
// memtables over immutable on-disk sorted runs, Bloom-fronted, with a
// shared hot-block cache and tiered background compaction. See doc.go
// for the on-disk format and crash-safety argument.
type Index struct {
	fsys   vfs.FS
	dir    string
	opts   Options
	shards []*Shard

	cacheMu sync.Mutex
	cache   *lru.Cache[blockKey, []byte]

	bloomNeg   atomic.Uint64
	memHits    atomic.Uint64
	cacheHits  atomic.Uint64
	diskProbes atomic.Uint64

	compactMu sync.Mutex
	compactCh chan *Shard
	closed    bool
	wg        sync.WaitGroup
}

// Shard is one index shard: a memtable of recent insertions, the on-disk
// runs (newest first), and the aggregate filter over both.
type Shard struct {
	ix *Index
	id int

	mu   sync.RWMutex
	mem  map[fphash.Fingerprint]container.Location
	runs []*run // newest first; level is non-decreasing along the slice
	agg  *bloom.Filter
	// watermark is how many sealed containers the runs fully cover;
	// containers at or past it must be rescanned into the memtable on
	// open.
	watermark int
	nextSeq   uint64
	// layoutGen invalidates in-flight background compactions whenever the
	// run set is replaced wholesale (layout change / rebuild).
	layoutGen  uint64
	compacting bool
	compactErr error
}

// Open loads index state for every shard, reading only manifests, run
// footers, fences, and filters — O(metadata), no posting blocks. A shard
// whose marker is present or whose manifest or runs fail validation is
// reset to watermark 0 (full container rescan by the caller); corruption
// here never fails the open and never serves a wrong Location.
func Open(fsys vfs.FS, dir string, opts Options) (*Index, error) {
	opts.fill()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fpindex: create index dir: %w", err)
	}
	ix := &Index{
		fsys:      fsys,
		dir:       dir,
		opts:      opts,
		shards:    make([]*Shard, opts.Shards),
		cache:     lru.New[blockKey, []byte](uint64(opts.CacheBytes), nil),
		compactCh: make(chan *Shard, opts.Shards),
	}
	for i := range ix.shards {
		s, err := ix.openShard(i)
		if err != nil {
			for _, prev := range ix.shards[:i] {
				prev.closeRuns()
			}
			return nil, err
		}
		ix.shards[i] = s
	}
	if !opts.SyncCompaction {
		ix.wg.Add(1)
		go func() {
			defer ix.wg.Done()
			for s := range ix.compactCh {
				s.compact()
			}
		}()
	}
	return ix, nil
}

func (ix *Index) shardFilter() *bloom.Filter {
	per := ix.opts.ExpectedChunks / uint64(ix.opts.Shards)
	if per < 1024 {
		per = 1024
	}
	return bloom.NewWithEstimates(per, aggFilterFPP)
}

// openShard loads one shard, falling back to a clean rebuild state on a
// marker or any validation failure.
func (ix *Index) openShard(id int) (*Shard, error) {
	s := &Shard{ix: ix, id: id, mem: make(map[fphash.Fingerprint]container.Location), nextSeq: 1}
	rebuild := ix.opts.ForceRebuild || hasMarker(ix.fsys, ix.dir, id)
	var m *manifest
	if !rebuild {
		var err error
		m, err = readManifest(ix.fsys, ix.dir, id)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				return nil, err
			}
			rebuild = true
		}
	}
	if m != nil && !rebuild {
		s.watermark, s.nextSeq, s.agg = m.watermark, m.nextSeq, m.agg
		s.runs = make([]*run, 0, len(m.runs))
		for _, ref := range m.runs {
			r, err := openRun(ix.fsys, ix.dir, id, ref.seq, ref.level, ref.count)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) && !errors.Is(err, bloom.ErrCodec) {
					s.closeRuns()
					return nil, err
				}
				rebuild = true
				break
			}
			s.runs = append(s.runs, r)
		}
	}
	if rebuild {
		s.closeRuns()
		s.runs = nil
		s.watermark = 0
		s.agg = nil
		// nextSeq survives a rebuild when the manifest was readable; when
		// it was not, derive it from the stray files about to be removed.
		if m != nil {
			s.nextSeq = m.nextSeq
		}
	}
	if s.agg == nil {
		s.agg = ix.shardFilter()
	}
	if err := ix.cleanShardFiles(s, rebuild); err != nil {
		s.closeRuns()
		return nil, err
	}
	if rebuild {
		// Commit the clean state so a crash before the caller's container
		// rescan finishes simply repeats the rescan at the next open.
		if err := writeManifest(ix.fsys, ix.dir, id, &manifest{nextSeq: s.nextSeq, agg: s.agg}); err != nil {
			s.closeRuns()
			return nil, err
		}
		if err := removeMarker(ix.fsys, ix.dir, id); err != nil {
			s.closeRuns()
			return nil, err
		}
	}
	return s, nil
}

// cleanShardFiles removes run files the shard does not reference (strays
// from an interrupted flush, compaction, or rebuild) and leftover
// manifest temp files.
func (ix *Index) cleanShardFiles(s *Shard, rebuild bool) error {
	live := make(map[string]bool, len(s.runs))
	for _, r := range s.runs {
		live[filepath.Base(r.path)] = true
	}
	pattern := filepath.Join(ix.dir, fmt.Sprintf("run-%04d-*.fdi", s.id))
	matches, err := ix.fsys.Glob(pattern)
	if err != nil {
		return err
	}
	for _, path := range matches {
		if live[filepath.Base(path)] {
			continue
		}
		if rebuild {
			if seq, ok := parseRunSeq(filepath.Base(path), s.id); ok && seq >= s.nextSeq {
				s.nextSeq = seq + 1
			}
		}
		if err := ix.fsys.Remove(path); err != nil {
			return err
		}
	}
	ix.fsys.Remove(filepath.Join(ix.dir, manifestName(s.id)+".tmp"))
	return nil
}

// parseRunSeq extracts the sequence number from a run file name.
func parseRunSeq(base string, shard int) (uint64, bool) {
	var gotShard int
	var seq uint64
	if n, err := fmt.Sscanf(base, "run-%04d-%012d.fdi", &gotShard, &seq); n != 2 || err != nil || gotShard != shard {
		return 0, false
	}
	return seq, true
}

// Shards returns the number of shards.
func (ix *Index) Shards() int { return len(ix.shards) }

// Shard returns shard i.
func (ix *Index) Shard(i int) *Shard { return ix.shards[i] }

// Counters returns cumulative lookup statistics.
func (ix *Index) Counters() Counters {
	return Counters{
		BloomNegative:  ix.bloomNeg.Load(),
		MemtableHits:   ix.memHits.Load(),
		BlockCacheHits: ix.cacheHits.Load(),
		DiskProbes:     ix.diskProbes.Load(),
	}
}

// CacheUsed returns the block cache's current cost in bytes.
func (ix *Index) CacheUsed() uint64 {
	ix.cacheMu.Lock()
	defer ix.cacheMu.Unlock()
	return ix.cache.Used()
}

// Close stops background compaction and closes every run file. It does
// not flush memtables — the dedup store flushes each shard against its
// sealed-container count before closing the index.
func (ix *Index) Close() error {
	ix.compactMu.Lock()
	if ix.closed {
		ix.compactMu.Unlock()
		return nil
	}
	ix.closed = true
	close(ix.compactCh)
	ix.compactMu.Unlock()
	ix.wg.Wait()
	var first error
	for _, s := range ix.shards {
		s.mu.Lock()
		if s.compactErr != nil && first == nil {
			first = s.compactErr
		}
		if err := s.closeRunsLocked(); err != nil && first == nil {
			first = err
		}
		s.mu.Unlock()
	}
	return first
}

// scheduleCompact queues a background compaction for s, or runs it
// inline in SyncCompaction mode. Dropped sends are fine: the need is
// re-detected at the next flush.
func (ix *Index) scheduleCompact(s *Shard) {
	if ix.opts.SyncCompaction {
		s.compact()
		return
	}
	ix.compactMu.Lock()
	defer ix.compactMu.Unlock()
	if ix.closed {
		return
	}
	select {
	case ix.compactCh <- s:
	default:
	}
}

// cachedBlock reads run block bi through the shared LRU cache.
func (ix *Index) cachedBlock(r *run, bi int) ([]byte, error) {
	key := blockKey{shard: r.shard, seq: r.seq, block: bi}
	ix.cacheMu.Lock()
	block, ok := ix.cache.Get(key)
	ix.cacheMu.Unlock()
	if ok {
		ix.cacheHits.Add(1)
		return block, nil
	}
	block, err := r.readBlock(bi)
	if err != nil {
		return nil, err
	}
	ix.diskProbes.Add(1)
	ix.cacheMu.Lock()
	ix.cache.Put(key, block, uint64(len(block)))
	ix.cacheMu.Unlock()
	return block, nil
}

func (s *Shard) closeRuns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeRunsLocked()
}

func (s *Shard) closeRunsLocked() error {
	var first error
	for _, r := range s.runs {
		if err := r.close(); err != nil && first == nil {
			first = err
		}
	}
	s.runs = nil
	return first
}

// Insert records fp at loc in the memtable. The dedup store inserts each
// fingerprint at most once per shard lifetime; re-inserting (container
// rescan after a crash) simply overwrites with the same location.
func (s *Shard) Insert(fp fphash.Fingerprint, loc container.Location) {
	s.mu.Lock()
	s.mem[fp] = loc
	s.agg.Add(fp)
	s.mu.Unlock()
}

// Lookup finds fp, checking memtable, aggregate filter, then runs newest
// to oldest. A lookup error means an index block failed its checksum —
// the caller treats the fingerprint as missing (a spurious re-store
// dedups at append time) rather than trusting a bad block.
func (s *Shard) Lookup(fp fphash.Fingerprint) (container.Location, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if loc, ok := s.mem[fp]; ok {
		s.ix.memHits.Add(1)
		return loc, true, nil
	}
	if !s.agg.Contains(fp) {
		s.ix.bloomNeg.Add(1)
		return container.Location{}, false, nil
	}
	for _, r := range s.runs {
		if !r.filter.Contains(fp) {
			continue
		}
		bi := r.findBlock(fp)
		if bi < 0 {
			continue
		}
		block, err := s.ix.cachedBlock(r, bi)
		if err != nil {
			return container.Location{}, false, err
		}
		if loc, ok := searchBlock(block, fp); ok {
			return loc, true, nil
		}
	}
	return container.Location{}, false, nil
}

// Count returns the shard's total posting count. Memtable and runs are
// disjoint (flush removes what it writes; rescan re-adds only postings
// past the watermark), and one fingerprint never spans two runs.
func (s *Shard) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.mem)
	for _, r := range s.runs {
		n += int(r.count)
	}
	return n
}

// MemLen returns the memtable's entry count.
func (s *Shard) MemLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.mem)
}

// NeedsFlush reports whether the memtable has reached its threshold.
func (s *Shard) NeedsFlush() bool {
	return s.MemLen() >= s.ix.opts.MemtableEntries
}

// Watermark returns how many sealed containers the on-disk runs fully
// cover; the caller rescans containers from here on open.
func (s *Shard) Watermark() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.watermark
}

// RunCount returns the number of on-disk runs (test hook).
func (s *Shard) RunCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.runs)
}

// Flush writes the memtable postings that live in sealed containers
// (Loc.Container < sealed) to a new level-0 run and commits a manifest
// with watermark = sealed. Open-container postings stay in the memtable:
// their container could still lose a crash race, and the container
// rescan would restore them anyway. On error the memtable is unchanged
// and any partial run file is a stray removed at the next open.
func (s *Shard) Flush(sealed int) error {
	if err := s.flushLocked(sealed); err != nil {
		return err
	}
	if s.needsCompact() {
		s.ix.scheduleCompact(s)
	}
	return nil
}

func (s *Shard) flushLocked(sealed int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sealed < s.watermark {
		return fmt.Errorf("fpindex: flush watermark moved backwards: %d < %d", sealed, s.watermark)
	}
	ps := make([]Posting, 0, len(s.mem))
	for fp, loc := range s.mem {
		if loc.Container < sealed {
			ps = append(ps, Posting{FP: fp, Loc: loc})
		}
	}
	if len(ps) == 0 {
		if sealed == s.watermark {
			return nil
		}
		// Nothing new to persist, but record the advanced watermark so
		// the next open skips these (empty or fully-deduplicated)
		// containers.
		m := s.manifestLocked()
		m.watermark = sealed
		if err := writeManifest(s.ix.fsys, s.ix.dir, s.id, m); err != nil {
			return err
		}
		s.watermark = sealed
		return nil
	}
	sortPostings(ps)
	r, err := writeRun(s.ix.fsys, s.ix.dir, s.id, s.nextSeq, 0, &sliceSource{ps: ps})
	if err != nil {
		return err
	}
	m := s.manifestLocked()
	m.watermark = sealed
	m.nextSeq = s.nextSeq + 1
	m.runs = append([]runRef{{seq: r.seq, level: 0, count: r.count}}, m.runs...)
	if err := writeManifest(s.ix.fsys, s.ix.dir, s.id, m); err != nil {
		r.close()
		s.ix.fsys.Remove(r.path)
		return err
	}
	s.nextSeq++
	s.watermark = sealed
	s.runs = append([]*run{r}, s.runs...)
	for _, p := range ps {
		delete(s.mem, p.FP)
	}
	return nil
}

// manifestLocked snapshots the shard's committed state as a manifest.
func (s *Shard) manifestLocked() *manifest {
	m := &manifest{watermark: s.watermark, nextSeq: s.nextSeq, agg: s.agg, runs: make([]runRef, len(s.runs))}
	for i, r := range s.runs {
		m.runs[i] = runRef{seq: r.seq, level: r.level, count: r.count}
	}
	return m
}

// needsCompact reports whether any level holds Fanout or more runs.
func (s *Shard) needsCompact() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pickLevelLocked() >= 0
}

func (s *Shard) pickLevelLocked() int {
	counts := map[int]int{}
	for _, r := range s.runs {
		counts[r.level]++
	}
	for level, n := range counts {
		if n >= s.ix.opts.Fanout {
			return level
		}
	}
	return -1
}

// compact merges every run on an over-full level into one run on the
// next level, repeating until no level is over-full. The merge reads
// immutable runs without holding the shard lock, so lookups proceed
// throughout; only the final swap and manifest commit lock the shard.
func (s *Shard) compact() {
	for {
		merged, err := s.compactOnce()
		if err != nil {
			s.mu.Lock()
			s.compactErr = err
			s.mu.Unlock()
			return
		}
		if !merged {
			return
		}
	}
}

func (s *Shard) compactOnce() (bool, error) {
	s.mu.Lock()
	if s.compacting {
		s.mu.Unlock()
		return false, nil
	}
	level := s.pickLevelLocked()
	if level < 0 {
		s.mu.Unlock()
		return false, nil
	}
	var victims []*run
	for _, r := range s.runs {
		if r.level == level {
			victims = append(victims, r)
		}
	}
	gen := s.layoutGen
	seq := s.nextSeq
	s.nextSeq++ // reserve; persisted with the manifest below
	s.compacting = true
	s.mu.Unlock()
	done := func() {
		s.mu.Lock()
		s.compacting = false
		s.mu.Unlock()
	}

	merged, err := writeRun(s.ix.fsys, s.ix.dir, s.id, seq, level+1, newMergeSource(victims))
	if err != nil {
		done()
		return false, err
	}

	s.mu.Lock()
	if s.layoutGen != gen {
		// The run set was replaced wholesale while we merged (GC or
		// repair rebuild); the merged run describes a dead layout.
		s.mu.Unlock()
		done()
		merged.close()
		s.ix.fsys.Remove(merged.path)
		return true, nil
	}
	// Splice: drop exactly the victims (a concurrent flush may have
	// prepended a fresh level-0 run, which must survive), inserting the
	// merged run at the first victim's position to keep runs newest-first
	// with non-decreasing levels.
	victim := make(map[*run]bool, len(victims))
	for _, r := range victims {
		victim[r] = true
	}
	newRuns := make([]*run, 0, len(s.runs)-len(victims)+1)
	inserted := false
	for _, r := range s.runs {
		if victim[r] {
			if !inserted {
				newRuns = append(newRuns, merged)
				inserted = true
			}
			continue
		}
		newRuns = append(newRuns, r)
	}
	if !inserted {
		newRuns = append(newRuns, merged)
	}
	old := s.runs
	s.runs = newRuns
	m := s.manifestLocked()
	if err := writeManifest(s.ix.fsys, s.ix.dir, s.id, m); err != nil {
		s.runs = old
		s.mu.Unlock()
		done()
		merged.close()
		s.ix.fsys.Remove(merged.path)
		return false, err
	}
	s.mu.Unlock()
	done()
	// The manifest no longer references the victims; removing them is
	// cleanup, and a crash here leaves strays for the next open.
	for _, r := range victims {
		r.close()
		s.ix.fsys.Remove(r.path)
	}
	return true, nil
}

// BeginLayoutChange durably marks the shard before a container layout
// change (GC compaction, repair): from this point the on-disk runs are
// suspect until CompleteLayoutChange commits a rebuilt index, and a
// crash in between forces a full container rescan at the next open.
func (s *Shard) BeginLayoutChange() error {
	return writeMarker(s.ix.fsys, s.ix.dir, s.id)
}

// AbortLayoutChange removes the marker after a layout change that never
// modified the containers (e.g. GC failing before its rewrite).
func (s *Shard) AbortLayoutChange() error {
	return removeMarker(s.ix.fsys, s.ix.dir, s.id)
}

// CompleteLayoutChange replaces the shard's entire state after container
// renumbering: postings are ALL live postings under the new layout,
// sealed is the new sealed-container count. Sealed postings become one
// run on a fresh level 0; open-container postings form the new memtable.
// On persist failure the in-memory index stays correct (everything in
// the memtable) and the marker stays down, so the next open rebuilds.
func (s *Shard) CompleteLayoutChange(postings []Posting, sealed int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.layoutGen++
	oldRuns := s.runs
	s.runs = nil
	s.mem = make(map[fphash.Fingerprint]container.Location, len(postings))
	s.agg = s.ix.shardFilter()
	var sealedPs []Posting
	for _, p := range postings {
		s.agg.Add(p.FP)
		if p.Loc.Container < sealed {
			sealedPs = append(sealedPs, p)
		} else {
			s.mem[p.FP] = p.Loc
		}
	}
	fail := func(err error) error {
		// Keep lookups correct from memory alone; the marker stays down.
		for _, p := range sealedPs {
			s.mem[p.FP] = p.Loc
		}
		s.watermark = 0
		for _, r := range oldRuns {
			r.close()
		}
		return err
	}
	var newRuns []*run
	m := &manifest{watermark: sealed, nextSeq: s.nextSeq, agg: s.agg}
	if len(sealedPs) > 0 {
		sortPostings(sealedPs)
		r, err := writeRun(s.ix.fsys, s.ix.dir, s.id, s.nextSeq, 0, &sliceSource{ps: sealedPs})
		if err != nil {
			return fail(err)
		}
		m.nextSeq = s.nextSeq + 1
		m.runs = []runRef{{seq: r.seq, level: 0, count: r.count}}
		newRuns = []*run{r}
	}
	if err := writeManifest(s.ix.fsys, s.ix.dir, s.id, m); err != nil {
		for _, r := range newRuns {
			r.close()
			s.ix.fsys.Remove(r.path)
		}
		return fail(err)
	}
	s.nextSeq = m.nextSeq
	s.watermark = sealed
	s.runs = newRuns
	if err := removeMarker(s.ix.fsys, s.ix.dir, s.id); err != nil {
		return err
	}
	// Old runs are unreferenced now; remove them, strays are cleaned on
	// open anyway.
	for _, r := range oldRuns {
		r.close()
		s.ix.fsys.Remove(r.path)
	}
	return nil
}
