// Package container implements the container abstraction of deduplicated
// storage systems (Section 6.2 and 7.4.1): unique chunks are packed into
// multi-megabyte containers, the basic read/write units, in logical order.
// Grouping logically-adjacent chunks per container is what lets the DDFS
// prefetching strategy (load a whole container's fingerprints on an index
// hit) exploit chunk locality.
package container

import (
	"fmt"

	"freqdedup/internal/fphash"
)

// DefaultBytes is the paper's container size (4 MB).
const DefaultBytes = 4 << 20

// Entry is one chunk stored in a container. Data may be nil for
// metadata-only simulations (package ddfs); Size is always set.
type Entry struct {
	FP   fphash.Fingerprint
	Size uint32
	Data []byte
}

// Location addresses a stored chunk.
type Location struct {
	Container int // container ID
	Index     int // entry index within the container
}

// Container is one sealed or in-progress container.
type Container struct {
	ID      int
	Entries []Entry
	Bytes   int
}

// Store accumulates chunks into fixed-capacity containers. The zero value
// is not usable; construct with New.
//
// A Store is not safe for concurrent use: it is a single packer with one
// open container, and callers own its locking. The sharded dedup store
// runs one Store per shard behind the shard lock, which keeps packing
// append-safe under concurrent writers without a lock here on every
// Append.
type Store struct {
	capacity int
	sealed   []*Container
	current  *Container
	nextID   int
}

// New returns a store with the given container byte capacity. It panics if
// capacity is not positive.
func New(capacity int) *Store {
	if capacity <= 0 {
		panic(fmt.Sprintf("container: capacity must be positive, got %d", capacity))
	}
	return &Store{capacity: capacity}
}

// Append adds a chunk to the current container, sealing it first if the
// chunk would not fit. It returns the chunk's location. The returned
// location is stable: containers are never compacted.
func (s *Store) Append(e Entry) Location {
	if s.current == nil {
		s.current = &Container{ID: s.nextID}
		s.nextID++
	}
	if s.current.Bytes > 0 && s.current.Bytes+int(e.Size) > s.capacity {
		s.Flush()
		s.current = &Container{ID: s.nextID}
		s.nextID++
	}
	loc := Location{Container: s.current.ID, Index: len(s.current.Entries)}
	s.current.Entries = append(s.current.Entries, e)
	s.current.Bytes += int(e.Size)
	return loc
}

// Flush seals the current container, if any. It returns the sealed
// container, or nil if the current container is empty.
func (s *Store) Flush() *Container {
	if s.current == nil || len(s.current.Entries) == 0 {
		return nil
	}
	c := s.current
	s.sealed = append(s.sealed, c)
	s.current = nil
	return c
}

// Get returns the entry at loc. The boolean reports whether the location
// exists (in a sealed or the in-progress container).
func (s *Store) Get(loc Location) (Entry, bool) {
	c, ok := s.container(loc.Container)
	if !ok || loc.Index < 0 || loc.Index >= len(c.Entries) {
		return Entry{}, false
	}
	return c.Entries[loc.Index], true
}

// Container returns the container with the given ID, if it exists.
func (s *Store) Container(id int) (*Container, bool) {
	return s.container(id)
}

func (s *Store) container(id int) (*Container, bool) {
	if id >= 0 && id < len(s.sealed) {
		// Sealed containers are appended in ID order.
		return s.sealed[id], true
	}
	if s.current != nil && s.current.ID == id {
		return s.current, true
	}
	return nil, false
}

// Count returns the number of containers, including the in-progress one.
func (s *Store) Count() int {
	n := len(s.sealed)
	if s.current != nil && len(s.current.Entries) > 0 {
		n++
	}
	return n
}

// Bytes returns the total stored bytes across all containers.
func (s *Store) Bytes() int {
	var n int
	for _, c := range s.sealed {
		n += c.Bytes
	}
	if s.current != nil {
		n += s.current.Bytes
	}
	return n
}
