// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Sections 5 and 7). Each benchmark regenerates the figure's
// data series on the laptop-scale datasets and reports headline values as
// custom metrics, so `go test -bench=. -benchmem` both times the
// reproduction and surfaces the reproduced numbers. The full rendered
// tables are printed by `go run ./cmd/attack -fig all`,
// `go run ./cmd/defend -fig all`, and `go run ./cmd/ddfsbench`.
package freqdedup

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"freqdedup/internal/attack"
	"freqdedup/internal/core"
	"freqdedup/internal/defense"
	"freqdedup/internal/eval"
	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

// lastY returns the final value of the named series, or -1.
func lastY(figs []eval.Figure, figIdx int, series string) float64 {
	if figIdx >= len(figs) {
		return -1
	}
	for _, s := range figs[figIdx].Series {
		if s.Name == series {
			if len(s.Y) == 0 {
				return -1
			}
			return s.Y[len(s.Y)-1]
		}
	}
	return -1
}

func BenchmarkFig1FrequencyDistribution(b *testing.B) {
	ds := eval.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs := eval.Fig1FrequencyDistribution(ds)
		b.ReportMetric(lastY(figs, 0, "frequency"), "fsl_max_freq")
		b.ReportMetric(lastY(figs, 1, "frequency"), "vm_max_freq")
	}
}

func BenchmarkFig4ParamSweep(b *testing.B) {
	ds := eval.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs := eval.Fig4ParamSweep(ds)
		// Inference rate at the largest w (plateau) for FSL.
		b.ReportMetric(lastY(figs, 2, "FSL")*100, "fsl_rate_at_wmax_pct")
	}
}

func BenchmarkFig5VaryAux(b *testing.B) {
	ds := eval.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs := eval.Fig5VaryAux(ds)
		// Most recent auxiliary backup, FSL: the paper's headline numbers
		// (basic ~0%, locality 23.2%, advanced 33.6%).
		b.ReportMetric(lastY(figs, 0, "Basic")*100, "fsl_basic_pct")
		b.ReportMetric(lastY(figs, 0, "Locality")*100, "fsl_locality_pct")
		b.ReportMetric(lastY(figs, 0, "Advanced")*100, "fsl_advanced_pct")
	}
}

func BenchmarkFig6VaryTarget(b *testing.B) {
	ds := eval.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs := eval.Fig6VaryTarget(ds)
		b.ReportMetric(lastY(figs, 0, "Locality")*100, "fsl_locality_last_tgt_pct")
	}
}

func BenchmarkFig7SlidingWindow(b *testing.B) {
	ds := eval.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs := eval.Fig7SlidingWindow(ds)
		b.ReportMetric(lastY(figs, 0, "s=1")*100, "fsl_s1_last_pct")
	}
}

func BenchmarkFig8KnownPlaintext(b *testing.B) {
	ds := eval.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := eval.Fig8KnownPlaintext(ds)
		b.ReportMetric(lastY([]eval.Figure{fig}, 0, "FSL (Locality)")*100, "fsl_locality_leak02_pct")
		b.ReportMetric(lastY([]eval.Figure{fig}, 0, "FSL (Advanced)")*100, "fsl_advanced_leak02_pct")
	}
}

func BenchmarkFig9KPVaryAux(b *testing.B) {
	ds := eval.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs := eval.Fig9KPVaryAux(ds)
		b.ReportMetric(lastY(figs, 0, "Locality")*100, "fsl_locality_recent_aux_pct")
	}
}

func BenchmarkFig10Defense(b *testing.B) {
	ds := eval.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs, err := eval.Fig10Defense(ds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY(figs, 0, "MLE (undefended)")*100, "fsl_undefended_pct")
		b.ReportMetric(lastY(figs, 0, "MinHash only")*100, "fsl_minhash_pct")
		b.ReportMetric(lastY(figs, 0, "Combined")*100, "fsl_combined_pct")
	}
}

func BenchmarkFig11StorageSaving(b *testing.B) {
	ds := eval.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs, err := eval.Fig11StorageSaving(ds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY(figs, 0, "MLE")*100, "fsl_mle_saving_pct")
		b.ReportMetric(lastY(figs, 0, "Combined")*100, "fsl_combined_saving_pct")
	}
}

func BenchmarkFig13Metadata512MB(b *testing.B) {
	ds := eval.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs, err := eval.Fig13Metadata512(ds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY(figs, 0, "MLE"), "mle_meta_mb_last")
		b.ReportMetric(lastY(figs, 0, "Combined"), "combined_meta_mb_last")
	}
}

func BenchmarkFig14Metadata4GB(b *testing.B) {
	ds := eval.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs, err := eval.Fig14Metadata4G(ds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY(figs, 0, "MLE"), "mle_meta_mb_last")
		b.ReportMetric(lastY(figs, 0, "Combined"), "combined_meta_mb_last")
	}
}

func BenchmarkAttackScaling(b *testing.B) {
	ds := eval.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := eval.AttackScaling(ds.FSL)
		b.ReportMetric(lastY([]eval.Figure{fig}, 0, "inferred pairs"), "inferred_pairs_full")
	}
}

// --- Micro-benchmarks of the core attack and defense primitives on the
// --- FSL dataset's most recent (aux, target) pair.

func fslPair(b *testing.B) (aux, target *trace.Backup) {
	b.Helper()
	d := eval.Generate().FSL
	return d.Backups[len(d.Backups)-2], d.Backups[len(d.Backups)-1]
}

func BenchmarkBasicAttackFSL(b *testing.B) {
	aux, target := fslPair(b)
	enc := defense.EncryptMLE(target)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.BasicAttack(enc.Backup, aux)
	}
}

func BenchmarkLocalityAttackFSL(b *testing.B) {
	aux, target := fslPair(b)
	enc := defense.EncryptMLE(target)
	cfg := core.DefaultLocalityConfig()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.LocalityAttack(enc.Backup, aux, cfg)
	}
}

func BenchmarkAdvancedAttackFSL(b *testing.B) {
	aux, target := fslPair(b)
	enc := defense.EncryptMLE(target)
	cfg := core.DefaultLocalityConfig()
	cfg.SizeAware = true
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.LocalityAttack(enc.Backup, aux, cfg)
	}
}

// The streaming-engine counterparts of the three attack benchmarks
// above: same FSL trace pair, so time/op and allocs/op are directly
// comparable to the legacy flat-arena engine's numbers.

func benchStreamAttack(b *testing.B, a attack.Attack) {
	b.Helper()
	aux, target := fslPair(b)
	enc := defense.EncryptMLE(target)
	c, m := attack.BackupSource(enc.Backup), attack.BackupSource(aux)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Run(c, m, attack.Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBasicAttackStreamFSL(b *testing.B) {
	benchStreamAttack(b, attack.NewBasic(attack.Config{}))
}

func BenchmarkLocalityAttackStreamFSL(b *testing.B) {
	benchStreamAttack(b, attack.NewLocality(attack.DefaultConfig()))
}

func BenchmarkAdvancedAttackStreamFSL(b *testing.B) {
	benchStreamAttack(b, attack.NewAdvanced(attack.DefaultConfig()))
}

func BenchmarkEncryptMLETrace(b *testing.B) {
	_, target := fslPair(b)
	b.SetBytes(int64(target.LogicalSize()))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		defense.EncryptMLE(target)
	}
}

func BenchmarkEncryptCombinedTrace(b *testing.B) {
	_, target := fslPair(b)
	b.SetBytes(int64(target.LogicalSize()))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := defense.Encrypt(target, defense.SchemeCombined, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateFSL(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trace.GenerateFSL(trace.DefaultFSLParams())
	}
}

func BenchmarkGenerateVM(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trace.GenerateVM(trace.DefaultVMParams())
	}
}

// --- Ablation benchmarks (design-choice decompositions; see DESIGN.md).

func BenchmarkAblationDefenseComponents(b *testing.B) {
	ds := eval.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := eval.AblationDefenseComponents(ds)
		if err != nil {
			b.Fatal(err)
		}
		y := fig.Series[0].Y
		b.ReportMetric(y[0]*100, "mle_pct")
		b.ReportMetric(y[2]*100, "scramble_only_pct")
		b.ReportMetric(y[4]*100, "combined_pct")
	}
}

func BenchmarkAblationSegmentSize(b *testing.B) {
	ds := eval.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := eval.AblationSegmentSize(ds)
		if err != nil {
			b.Fatal(err)
		}
		loss := fig.Series[1].Y
		b.ReportMetric(loss[0]*100, "loss_small_seg_pct")
		b.ReportMetric(loss[len(loss)-1]*100, "loss_paper_seg_pct")
	}
}

func BenchmarkAblationTieBreaking(b *testing.B) {
	ds := eval.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := eval.AblationTieBreaking(ds)
		b.ReportMetric(fig.Series[0].Y[0]*100, "fsl_position_ties_pct")
		b.ReportMetric(fig.Series[1].Y[0]*100, "fsl_arbitrary_ties_pct")
	}
}

func BenchmarkRestoreLocality(b *testing.B) {
	ds := eval.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := eval.RestoreLocality(ds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY([]eval.Figure{fig}, 0, "MLE"), "mle_reads_last_backup")
		b.ReportMetric(lastY([]eval.Figure{fig}, 0, "Combined"), "combined_reads_last_backup")
	}
}

// --- Concurrency benchmarks: the sharded store and the parallel backup
// --- pipeline (PR 1). BenchmarkBackupSerial is the single-worker
// --- baseline; BenchmarkBackupParallel fans the encrypt+fingerprint
// --- stage out to GOMAXPROCS workers over the same stream.

// benchStream returns a pseudo-random backup stream that does not
// self-deduplicate, so every chunk goes through the full encrypt path.
func benchStream(n int) []byte {
	data := make([]byte, n)
	rng := rand.New(rand.NewSource(42))
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	return data
}

func benchBackup(b *testing.B, workers int) {
	data := benchStream(16 << 20)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := NewStore(0)
		client, err := NewClient(store, ClientConfig{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.Backup(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBackupSerial(b *testing.B)   { benchBackup(b, 1) }
func BenchmarkBackupParallel(b *testing.B) { benchBackup(b, runtime.GOMAXPROCS(0)) }

// BenchmarkChunkerCDC measures the ingest path in its backup-pipeline
// configuration: content-defined chunking over a pooled, released chunk
// stream with plaintext fingerprinting deferred (the serial stage that
// bounds Backup throughput by Amdahl's law). Steady state runs
// allocation-free.
func BenchmarkChunkerCDC(b *testing.B) {
	data := benchStream(16 << 20)
	params := DefaultChunkingParams()
	params.DeferFingerprint = true
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewContentDefinedChunker(bytes.NewReader(data), params)
		if err != nil {
			b.Fatal(err)
		}
		var n int64
		for {
			ch, err := c.Next()
			if err != nil {
				break
			}
			n += int64(ch.Size())
			ch.Release()
		}
		if n != int64(len(data)) {
			b.Fatalf("chunked %d of %d bytes", n, len(data))
		}
	}
}

// BenchmarkChunkerCDCFingerprinted is the same stream with inline SHA-256
// fingerprinting, the seed chunker's configuration — the gap to
// BenchmarkChunkerCDC is what deferring the hash into the worker pool
// buys the serial stage.
func BenchmarkChunkerCDCFingerprinted(b *testing.B) {
	data := benchStream(16 << 20)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewContentDefinedChunker(bytes.NewReader(data), DefaultChunkingParams())
		if err != nil {
			b.Fatal(err)
		}
		for {
			ch, err := c.Next()
			if err != nil {
				break
			}
			ch.Release()
		}
	}
}

// BenchmarkChunkerGear is BenchmarkChunkerCDC with the gear-hash
// algorithm (AlgoGear): same pooled-buffer stream, same deferred
// fingerprinting, different (incompatible) cut-point format. The gap to
// BenchmarkChunkerCDC is the rolling-hash speedup — one table lookup,
// shift, and add per byte plus cut-point skipping, versus Rabin's
// window maintenance.
func BenchmarkChunkerGear(b *testing.B) {
	data := benchStream(16 << 20)
	params := DefaultChunkingParams()
	params.Algorithm = AlgoGear
	params.DeferFingerprint = true
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewGearChunker(bytes.NewReader(data), params)
		if err != nil {
			b.Fatal(err)
		}
		var n int64
		for {
			ch, err := c.Next()
			if err != nil {
				break
			}
			n += int64(ch.Size())
			ch.Release()
		}
		if n != int64(len(data)) {
			b.Fatalf("chunked %d of %d bytes", n, len(data))
		}
	}
}

// BenchmarkChunkerGearMulti is the multi-stream gear chunker: the input
// split into segments scanned by parallel workers with deterministic
// cut-point stitching (bit-identical to BenchmarkChunkerGear's output).
// The sweep shows aggregate-throughput scaling with worker count; on a
// single-core runner the gain comes from pipeline overlap (read/scan/
// stitch), on multicore from parallel scanning.
func BenchmarkChunkerGearMulti(b *testing.B) {
	data := benchStream(16 << 20)
	params := DefaultChunkingParams()
	params.Algorithm = AlgoGear
	params.DeferFingerprint = true
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := NewMultiGearChunker(bytes.NewReader(data), params, workers)
				if err != nil {
					b.Fatal(err)
				}
				var n int64
				for {
					ch, err := c.Next()
					if err != nil {
						break
					}
					n += int64(ch.Size())
					ch.Release()
				}
				if err := c.Close(); err != nil {
					b.Fatal(err)
				}
				if n != int64(len(data)) {
					b.Fatalf("chunked %d of %d bytes", n, len(data))
				}
			}
		})
	}
}

// --- Restore pipeline benchmarks (PR 3): BenchmarkRestoreSerial is the
// --- chunk-at-a-time baseline; BenchmarkRestoreParallel fans container
// --- fetch+decrypt out to GOMAXPROCS workers, swept across restore
// --- container-cache sizes (0 = uncached, 1 = single buffer, 64 = the
// --- whole working set).

func benchRestore(b *testing.B, workers, cacheContainers int) {
	data := benchStream(16 << 20)
	store := NewStore(0)
	backup, err := NewClient(store, ClientConfig{})
	if err != nil {
		b.Fatal(err)
	}
	recipe, err := backup.Backup(bytes.NewReader(data))
	if err != nil {
		b.Fatal(err)
	}
	client, err := NewClient(store, ClientConfig{
		Workers:                workers,
		RestoreCacheContainers: cacheContainers,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Restore(recipe, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRestoreSerial(b *testing.B) { benchRestore(b, 1, 0) }

func BenchmarkRestoreParallel(b *testing.B) {
	for _, cache := range []int{0, 1, 64} {
		b.Run(fmt.Sprintf("cache=%d", cache), func(b *testing.B) {
			benchRestore(b, runtime.GOMAXPROCS(0), cache)
		})
	}
}

// benchServerBackup measures the multi-tenant network path end to end:
// N loopback clients, each its own tenant, concurrently back up disjoint
// pseudo-random streams through the wire protocol (chunk negotiation,
// convergent encryption client-side, bounded in-flight windows) into one
// shared in-memory repository. Bytes/op counts the aggregate logical
// bytes, so ns/op tracks aggregate wire throughput. Each iteration gets
// a fresh repository — no cross-iteration dedup, every chunk takes the
// full negotiate-miss-upload path.
func benchServerBackup(b *testing.B, clients int) {
	const perClient = 4 << 20
	streams := make([][]byte, clients)
	for i := range streams {
		streams[i] = make([]byte, perClient)
		rng := rand.New(rand.NewSource(int64(1 + i)))
		for j := range streams[i] {
			streams[i][j] = byte(rng.Intn(256))
		}
	}
	ctx := context.Background()
	b.SetBytes(int64(clients) * perClient)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		repo, err := CreateRepository("")
		if err != nil {
			b.Fatal(err)
		}
		srv, err := NewRepositoryServer(repo, ServerConfig{})
		if err != nil {
			b.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(ln) }()
		addr := ln.Addr().String()
		b.StartTimer()

		var wg sync.WaitGroup
		errs := make([]error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cl, err := DialServer(addr, RemoteClientConfig{Tenant: fmt.Sprintf("t%d", c)})
				if err != nil {
					errs[c] = err
					return
				}
				defer cl.Close()
				_, errs[c] = cl.Backup(ctx, "bench", bytes.NewReader(streams[c]))
			}(c)
		}
		wg.Wait()

		b.StopTimer()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		if err := srv.Close(); err != nil {
			b.Fatal(err)
		}
		if err := <-serveDone; err != nil {
			b.Fatal(err)
		}
		if err := repo.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkServerBackup(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchServerBackup(b, clients)
		})
	}
}

// BenchmarkStoreShards measures concurrent PutBatch throughput against
// the shard count: GOMAXPROCS uploaders hammer one store with disjoint
// chunk batches. shards=1 is the serialized baseline. Each b.N iteration
// pushes batchesPerOp batches (~16 MiB), so one iteration spans many GC
// cycles — a single-batch iteration is ~130µs and its timing is GC
// lottery, which made the benchmark too noisy for cmd/benchgate's
// pinned-iteration regression gate.
// --- Persistent fingerprint index benchmarks (billion-chunk index PR):
// --- repository open cost against chunk count for both index modes, and
// --- single-lookup latency through the bloom/memtable/run stack.

// populateRepoChunks pushes n synthetic fixed-size chunks through the
// store's batch write path, bypassing chunking and encryption so chunk
// COUNT — the variable the index scales in — is controlled directly.
// Fingerprints are mixed so chunks spread across shards.
func populateRepoChunks(b *testing.B, repo *Repository, n int) {
	b.Helper()
	const perBatch = 512
	data := benchStream(64)
	batch := make([]StoreChunk, 0, perBatch)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if _, err := repo.store.PutBatch(batch); err != nil {
			b.Fatal(err)
		}
		batch = batch[:0]
	}
	for i := 0; i < n; i++ {
		fp := fphash.FromUint64(fphash.FromUint64(uint64(i) + 1).Mix(1))
		batch = append(batch, StoreChunk{FP: fp, Data: data})
		if len(batch) == perBatch {
			flush()
		}
	}
	flush()
	if err := repo.store.Sync(); err != nil {
		b.Fatal(err)
	}
}

// benchRepositoryOpen measures a cold OpenRepository of a repository
// holding `chunks` fingerprints. Bytes/op counts 16 bytes of index
// metadata per chunk, so the reported MB/s is metadata throughput:
// roughly flat across chunk counts for mode=map (every open rescans all
// container metadata), and rising linearly for mode=fpindex (the open
// reads run footers and filters, not the chunks).
func benchRepositoryOpen(b *testing.B, mode IndexMode, chunks int) {
	dir := b.TempDir()
	opts := []RepositoryOption{WithIndex(mode)}
	repo, err := CreateRepository(dir, opts...)
	if err != nil {
		b.Fatal(err)
	}
	populateRepoChunks(b, repo, chunks)
	if err := repo.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(chunks) * 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenRepository(dir, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if got := r.store.UniqueChunks(); got != chunks {
			b.Fatalf("reopened repository reports %d chunks, want %d", got, chunks)
		}
		b.StopTimer()
		if i == b.N-1 {
			// Residency of an open repository, while it is still open: for
			// mode=map this grows with chunk count, for mode=fpindex it
			// stays bounded by the memtable + cache + filters.
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			b.ReportMetric(float64(ms.HeapInuse)/(1<<20), "open_heap_MB")
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	// Collapse the GC pacing target now that the repository is closed: the
	// 1M/10M map points otherwise leave a heap goal of hundreds of MB
	// behind, so whether they ran (-short, FPBENCH_10M) would change the
	// GC frequency — and the measured throughput — of later benchmarks in
	// the same process.
	runtime.GC()
}

// BenchmarkRepositoryOpen is the tentpole's acceptance benchmark:
// chunks=100k always runs; chunks=1M is skipped under -short; the
// chunks=10M point needs FPBENCH_10M=1 (it writes ~1 GiB of containers
// in setup). Compare MB/s across rows — map-mode stays flat (open time
// grows with chunk count), fpindex-mode climbs (open time is O(metadata)).
func BenchmarkRepositoryOpen(b *testing.B) {
	modes := []struct {
		name string
		mode IndexMode
	}{{"map", IndexMap}, {"fpindex", IndexPersistent}}
	sizes := []struct {
		name   string
		chunks int
	}{{"chunks=100k", 100_000}, {"chunks=1M", 1_000_000}, {"chunks=10M", 10_000_000}}
	for _, m := range modes {
		b.Run("mode="+m.name, func(b *testing.B) {
			for _, s := range sizes {
				b.Run(s.name, func(b *testing.B) {
					if s.chunks > 100_000 && testing.Short() {
						b.Skip("-short: 100k-chunk point only")
					}
					if s.chunks >= 10_000_000 && os.Getenv("FPBENCH_10M") == "" {
						b.Skip("set FPBENCH_10M=1 for the 10M-chunk open benchmark")
					}
					benchRepositoryOpen(b, m.mode, s.chunks)
				})
			}
		})
	}
}

// BenchmarkIndexLookup measures single-fingerprint lookups through the
// persistent index's full read stack — memtable, block cache, bloom
// filters, run files — on a store too big for its memtable. hit probes
// stored fingerprints (run-block reads, mostly cache-served); miss
// probes absent ones (the bloom filters answer; disk stays cold).
// Bytes/op is one fingerprint, so MB/s is gateable lookup throughput.
func BenchmarkIndexLookup(b *testing.B) {
	const n = 200_000
	dir := b.TempDir()
	repo, err := CreateRepository(dir, WithIndex(IndexPersistent))
	if err != nil {
		b.Fatal(err)
	}
	populateRepoChunks(b, repo, n)
	fpAt := func(i int) fphash.Fingerprint {
		return fphash.FromUint64(fphash.FromUint64(uint64(i) + 1).Mix(1))
	}
	b.Run("hit", func(b *testing.B) {
		b.SetBytes(fphash.Size)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !repo.store.Contains(fpAt(i % n)) {
				b.Fatal("stored fingerprint not found")
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.SetBytes(fphash.Size)
		b.ReportAllocs()
		// Mix is a bijective finalizer, so probing counters past n is
		// guaranteed disjoint from the stored set.
		for i := 0; i < b.N; i++ {
			if repo.store.Contains(fpAt(n + 1 + i)) {
				b.Fatal("absent fingerprint found")
			}
		}
	})
	if err := repo.Close(); err != nil {
		b.Fatal(err)
	}
	// Drop the 200k-chunk working set from the GC pacing target before the
	// next benchmark (see benchRepositoryOpen).
	runtime.GC()
}

func BenchmarkStoreShards(b *testing.B) {
	const (
		chunkSize    = 8 << 10
		perBatch     = 64
		batchesPerOp = 32
	)
	for _, shards := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			store := NewStoreWithShards(0, shards)
			// Pin the GC pacing target to this benchmark's own live heap:
			// with pinned 10x iterations, throughput otherwise swings ~3x
			// depending on how much heap earlier benchmarks left behind.
			runtime.GC()
			b.SetBytes(chunkSize * perBatch * batchesPerOp)
			b.ReportAllocs()
			var worker atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				// Per-goroutine chunk namespace: no cross-worker dedup, so
				// every Put exercises the index+packer write path. The raw
				// counter is mixed so the leading byte (the shard key)
				// varies chunk to chunk; a plain counter would pin each
				// goroutine's entire namespace to a single shard.
				base := uint64(worker.Add(1)) << 32
				batch := make([]StoreChunk, perBatch)
				data := benchStream(chunkSize)
				var n uint64
				for pb.Next() {
					for j := 0; j < batchesPerOp; j++ {
						for i := range batch {
							n++
							fp := fphash.FromUint64(base + n)
							batch[i] = StoreChunk{FP: fphash.FromUint64(fp.Mix(0)), Data: data}
						}
						if _, err := store.PutBatch(batch); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		})
	}
}
