// Command defend evaluates the paper's defenses (Section 7): MinHash
// encryption and scrambling, and inspects live repositories built with
// the freqdedup.Repository API.
//
//	defend -fig 10          # defense effectiveness vs leakage rate
//	defend -fig 11          # storage saving MLE vs combined
//	defend -fig all
//	defend -trace fsl.trace -scheme combined   # savings on a trace file
//	defend -repo /path/to/repository           # snapshots, savings, verify
//	defend -repo /path/to/repository -key "hunter2..."
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"freqdedup"
	"freqdedup/internal/defense"
	"freqdedup/internal/eval"
	"freqdedup/internal/trace"
)

func main() {
	figFlag := flag.String("fig", "", "reproduce figures: 10, 11, ablations, or all")
	tracePath := flag.String("trace", "", "trace file to evaluate (single-run mode)")
	schemeName := flag.String("scheme", "combined", "scheme: mle, minhash, or combined")
	repoPath := flag.String("repo", "", "repository directory to inspect (snapshot list, savings, verify)")
	repoKey := flag.String("key", "", "repository key for -repo (raw bytes, zero-padded; empty = zero key)")
	flag.Parse()

	switch {
	case *repoPath != "":
		runRepo(*repoPath, *repoKey)
	case *figFlag != "":
		runFigures(*figFlag)
	case *tracePath != "":
		runSingle(*tracePath, *schemeName)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runRepo opens a repository read-only-in-spirit (nothing is mutated) and
// reports what retention and dedup have achieved: the sorted snapshot
// list with sizes and chunk counts, the storage saving, and a full
// Verify. Ctrl-C cancels a long verify through its context.
func runRepo(path, keyStr string) {
	var key freqdedup.Key
	copy(key[:], keyStr)
	repo, err := freqdedup.OpenRepository(path, freqdedup.WithRepositoryKey(key))
	if err != nil {
		fatal(err)
	}
	defer repo.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	snaps := repo.Snapshots()
	fmt.Printf("repository %s: %d snapshot(s)\n", path, len(snaps))
	for _, s := range snaps {
		fmt.Printf("  %-24s %10.2f MB %8d chunks  %s\n",
			s.Name, float64(s.LogicalBytes)/(1<<20), s.Chunks,
			s.CreatedAt.Format(time.RFC3339))
	}
	st := repo.Stats()
	fmt.Printf("dedup: %d logical chunks, %d unique, %.2f MB physical (saving %.1f%%)\n",
		st.LogicalChunks, st.UniqueChunks, float64(st.PhysicalBytes)/(1<<20), st.Saving()*100)
	start := time.Now()
	if err := repo.Verify(ctx); err != nil {
		fatal(err)
	}
	fmt.Printf("verify: OK in %v (checksums, fingerprints, and every snapshot's references)\n",
		time.Since(start).Round(time.Millisecond))
}

func runFigures(which string) {
	ds := eval.Generate()
	all := which == "all"
	if all || which == "10" {
		figs, err := eval.Fig10Defense(ds)
		if err != nil {
			fatal(err)
		}
		for i := range figs {
			figs[i].Render(os.Stdout)
		}
	}
	if all || which == "11" {
		figs, err := eval.Fig11StorageSaving(ds)
		if err != nil {
			fatal(err)
		}
		for i := range figs {
			figs[i].Render(os.Stdout)
		}
	}
	if all || which == "ablations" {
		a1, err := eval.AblationDefenseComponents(ds)
		if err != nil {
			fatal(err)
		}
		a1.Render(os.Stdout)
		a2, err := eval.AblationSegmentSize(ds)
		if err != nil {
			fatal(err)
		}
		a2.Render(os.Stdout)
		a3 := eval.AblationTieBreaking(ds)
		a3.Render(os.Stdout)
	}
}

func runSingle(path, schemeName string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	d, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	var scheme defense.Scheme
	switch schemeName {
	case "mle":
		scheme = defense.SchemeMLE
	case "minhash":
		scheme = defense.SchemeMinHash
	case "combined":
		scheme = defense.SchemeCombined
	default:
		fatal(fmt.Errorf("unknown scheme %q", schemeName))
	}
	savings, err := defense.StorageSavings(d, scheme, 1)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %s, scheme: %s\n", d.Name, scheme)
	for i, b := range d.Backups {
		fmt.Printf("  after %-8s storage saving %.2f%%\n", b.Label+":", savings[i]*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "defend:", err)
	os.Exit(1)
}
