package mle

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"

	"freqdedup/internal/fphash"
)

// RecipeEntry records one chunk of a file: which ciphertext chunk it maps
// to, the key that decrypts it, and the plaintext size. The sequence of
// entries preserves the original (pre-scrambling) logical chunk order, so a
// file can always be reconstructed even when the storage-side order was
// scrambled (Section 6.2).
type RecipeEntry struct {
	// Fingerprint identifies the stored ciphertext chunk.
	Fingerprint fphash.Fingerprint
	// Key decrypts the ciphertext chunk.
	Key Key
	// Size is the plaintext chunk size in bytes.
	Size uint32
}

// Recipe is the combined file recipe and key recipe for one file. The paper
// keeps them as two structures (file recipe: references; key recipe: keys);
// we keep them zipped since they are always read together, and both are
// protected the same way — sealed under the user's own secret key.
type Recipe struct {
	Entries []RecipeEntry
}

// TotalSize returns the logical (pre-dedup) file size in bytes.
func (r *Recipe) TotalSize() uint64 {
	var n uint64
	for _, e := range r.Entries {
		n += uint64(e.Size)
	}
	return n
}

const recipeEntrySize = fphash.Size + KeySize + 4

// Marshal encodes the recipe into a compact binary form.
func (r *Recipe) Marshal() []byte {
	buf := make([]byte, 4+len(r.Entries)*recipeEntrySize)
	binary.BigEndian.PutUint32(buf, uint32(len(r.Entries)))
	off := 4
	for _, e := range r.Entries {
		copy(buf[off:], e.Fingerprint[:])
		off += fphash.Size
		copy(buf[off:], e.Key[:])
		off += KeySize
		binary.BigEndian.PutUint32(buf[off:], e.Size)
		off += 4
	}
	return buf
}

// UnmarshalRecipe decodes a recipe produced by Marshal.
func UnmarshalRecipe(data []byte) (*Recipe, error) {
	if len(data) < 4 {
		return nil, errors.New("mle: recipe too short")
	}
	n := binary.BigEndian.Uint32(data)
	want := 4 + int(n)*recipeEntrySize
	if len(data) != want {
		return nil, fmt.Errorf("mle: recipe length %d, want %d for %d entries", len(data), want, n)
	}
	r := &Recipe{Entries: make([]RecipeEntry, n)}
	off := 4
	for i := range r.Entries {
		e := &r.Entries[i]
		copy(e.Fingerprint[:], data[off:])
		off += fphash.Size
		copy(e.Key[:], data[off:])
		off += KeySize
		e.Size = binary.BigEndian.Uint32(data[off:])
		off += 4
	}
	return r, nil
}

// Seal encrypts the recipe under the user's secret key with AES-256-GCM
// (conventional, randomized encryption — recipes are per-user and never
// deduplicated, per Section 3.3).
func (r *Recipe) Seal(userKey Key) ([]byte, error) {
	block, err := aes.NewCipher(userKey[:])
	if err != nil {
		return nil, fmt.Errorf("mle: seal recipe: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("mle: seal recipe: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("mle: seal recipe: %w", err)
	}
	return gcm.Seal(nonce, nonce, r.Marshal(), nil), nil
}

// OpenRecipe decrypts and decodes a recipe sealed by Seal.
func OpenRecipe(sealed []byte, userKey Key) (*Recipe, error) {
	block, err := aes.NewCipher(userKey[:])
	if err != nil {
		return nil, fmt.Errorf("mle: open recipe: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("mle: open recipe: %w", err)
	}
	if len(sealed) < gcm.NonceSize() {
		return nil, errors.New("mle: sealed recipe too short")
	}
	nonce, ct := sealed[:gcm.NonceSize()], sealed[gcm.NonceSize():]
	plain, err := gcm.Open(nil, nonce, ct, nil)
	if err != nil {
		return nil, fmt.Errorf("mle: open recipe: %w", err)
	}
	return UnmarshalRecipe(plain)
}
