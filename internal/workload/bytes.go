package workload

import (
	"encoding/binary"
	"io"

	"freqdedup/internal/trace"
)

// DataReader streams a backup's byte image for the real storage stack:
// each chunk ref expands to Size pseudo-random bytes derived from its
// fingerprint alone, so equal fingerprints expand to equal byte runs and
// the generated duplication and locality structure survives the
// repository's own content-defined re-chunking. The reader materializes
// one chunk at a time — a backup larger than RAM streams fine.
func DataReader(b *trace.Backup) io.Reader {
	return &dataReader{chunks: b.Chunks}
}

type dataReader struct {
	chunks []trace.ChunkRef
	i      int
	buf    []byte
	off    int
}

func (r *dataReader) Read(p []byte) (int, error) {
	for r.off == len(r.buf) {
		if r.i == len(r.chunks) {
			return 0, io.EOF
		}
		r.buf = chunkBytes(r.chunks[r.i])
		r.off = 0
		r.i++
	}
	n := copy(p, r.buf[r.off:])
	r.off += n
	return n, nil
}

// chunkBytes expands one chunk ref into its deterministic byte content: a
// splitmix64 stream keyed by the fingerprint.
func chunkBytes(c trace.ChunkRef) []byte {
	out := make([]byte, c.Size)
	seed := c.FP.Uint64()
	var blk [8]byte
	for i := 0; i < len(out); i += 8 {
		binary.LittleEndian.PutUint64(blk[:], mix64(seed+uint64(i)))
		copy(out[i:], blk[:])
	}
	return out
}
