package tracelog

import (
	"io"
	"path/filepath"
	"testing"

	"freqdedup/internal/trace"
)

// benchRefs is one backup's worth of observation windows: 64 windows of
// 1024 refs (the backup pipeline's upload window size), 768 KiB of trace
// payload.
func benchRefs() [][]trace.ChunkRef {
	out := make([][]trace.ChunkRef, 64)
	for w := range out {
		out[w] = testRefsBench(w, 1024)
	}
	return out
}

func testRefsBench(seed, n int) []trace.ChunkRef {
	refs := make([]trace.ChunkRef, n)
	for i := range refs {
		refs[i] = trace.ChunkRef{
			FP:   [8]byte{byte(seed), byte(i), byte(i >> 8), 1, 2, 3, 4, 5},
			Size: uint32(4096 + i%4096),
		}
	}
	return refs
}

// BenchmarkTraceLogIngest measures the observer's write path: one
// committed backup trace per op (64 windows appended, one fsync at
// commit), reporting trace-payload MB/s.
func BenchmarkTraceLogIngest(b *testing.B) {
	windows := benchRefs()
	var payload int64
	for _, w := range windows {
		payload += int64(len(w) * refLen)
	}
	l, err := Create(filepath.Join(b.TempDir(), LogName))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.SetBytes(payload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := l.Begin("bench")
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range windows {
			if err := s.ObserveUpload(w); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceLogReplay measures the streaming read path: one full
// CRC-verified replay of a committed trace per op.
func BenchmarkTraceLogReplay(b *testing.B) {
	windows := benchRefs()
	l, err := Create(filepath.Join(b.TempDir(), LogName))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	s, err := l.Begin("bench")
	if err != nil {
		b.Fatal(err)
	}
	var payload int64
	for _, w := range windows {
		if err := s.ObserveUpload(w); err != nil {
			b.Fatal(err)
		}
		payload += int64(len(w) * refLen)
	}
	if err := s.Commit(); err != nil {
		b.Fatal(err)
	}
	tr := l.Backups()[0]
	buf := make([]trace.ChunkRef, 4096)
	b.SetBytes(payload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := tr.Open()
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, err := r.Read(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		r.Close()
	}
}
