package dedup

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"freqdedup/internal/container"
	"freqdedup/internal/fphash"
	"freqdedup/internal/fpindex"
	"freqdedup/internal/gcommit"
	"freqdedup/internal/trace"
	"freqdedup/internal/vfs"
)

// DefaultShards is the shard count used by NewStore. 16 stripes keep lock
// contention negligible for dozens of concurrent clients while the
// per-shard container working set stays large enough to preserve chunk
// locality within a shard.
const DefaultShards = 16

// maxShards bounds the shard count to the range addressable by the
// one-byte fingerprint prefix (fphash.Fingerprint.Shard).
const maxShards = 256

// ErrNotFound is returned by Get for a fingerprint the store does not
// hold.
var ErrNotFound = errors.New("dedup: chunk not found")

// shard is one lock stripe of the store: a fingerprint index over its own
// container packer, plus the shard's slice of the dedup statistics.
// Every field is guarded by mu. A fingerprint is owned by exactly one
// shard (fp.Shard), so per-shard indexes never disagree about whether a
// chunk is stored, and per-shard open containers make packing append-safe
// under concurrent writers without a global packer lock.
type shard struct {
	mu         sync.Mutex
	index      shardIndex
	containers *container.Store

	logicalBytes  uint64
	physicalBytes uint64
	logicalChunks int
}

// put is the single-shard Put body; the caller holds s.mu. When owned is
// true the store takes ownership of data and stores it without the
// defensive copy. On a backend write error nothing is recorded and the
// chunk is reported as an upload failure.
func (s *shard) put(fp fphash.Fingerprint, data []byte, owned bool) (duplicate bool, err error) {
	// A lookup error (a corrupt index block) degrades to a miss: the
	// chunk is stored again and the insert repoints the index at the
	// fresh copy — correctness over dedup ratio.
	if _, ok, lerr := s.index.lookup(fp); lerr == nil && ok {
		s.logicalChunks++
		s.logicalBytes += uint64(len(data))
		return true, nil
	}
	buf := data
	if !owned {
		buf = make([]byte, len(data))
		copy(buf, data)
	}
	loc, err := s.containers.Append(container.Entry{FP: fp, Size: uint32(len(data)), Data: buf})
	if err != nil {
		return false, err
	}
	s.index.insert(fp, loc)
	s.logicalChunks++
	s.logicalBytes += uint64(len(data))
	s.physicalBytes += uint64(len(data))
	return false, nil
}

// Store is a deduplicated ciphertext-chunk store: one physical copy per
// unique ciphertext chunk, packed into containers. The fingerprint index
// and the container packer are split into lock-striped shards keyed by
// fingerprint prefix, so concurrent clients (Figure 2's multi-client
// architecture) contend only when their chunks collide on a shard.
//
// Sealed containers live in a pluggable container.Backend: in memory by
// default (NewStore, NewStoreWithShards), or in per-shard append-only
// files via NewStoreWithBackend / Create / Open, which is what makes a
// store survive a process restart. Backups can be registered for
// retention management and reclaimed with GC (see gc.go). A Store is safe
// for concurrent use.
type Store struct {
	shards         []*shard
	backend        container.Backend
	containerBytes int

	// fpidx is the persistent fingerprint index (nil in map mode). It
	// owns the run files, block cache, and compaction worker shared by
	// the per-shard fpIdx adapters.
	fpidx *fpindex.Index

	// Retention state (per-backup chunk references and per-chunk counts),
	// guarded by retMu. It is store-level, not sharded: backups span
	// shards and registration is off the hot path.
	retMu   sync.Mutex
	backups map[string][]fphash.Fingerprint
	refs    map[fphash.Fingerprint]int

	// Seal coalescing: concurrent Sync calls share whole-store flush
	// passes instead of each running (and fsyncing) their own. Non-sticky:
	// a failed pass fails only the Syncs waiting on it; the next Sync runs
	// a fresh pass.
	syncSeq atomic.Int64
	syncGC  *gcommit.Committer
}

// NewStore returns an empty store with the given container capacity
// (container.DefaultBytes if zero) and DefaultShards index shards.
func NewStore(containerBytes int) *Store {
	return NewStoreWithShards(containerBytes, DefaultShards)
}

// NewStoreWithShards returns an empty in-memory store with the given
// container capacity (container.DefaultBytes if zero) and shard count.
// Shards must be in [1, 256]; zero selects DefaultShards. With shards ==
// 1 the store degenerates to the original serial engine: a single index
// and a single container sequence, with chunk placement bit-for-bit
// identical to it.
func NewStoreWithShards(containerBytes, shards int) *Store {
	if shards == 0 {
		shards = DefaultShards
	}
	if shards < 1 || shards > maxShards {
		panic("dedup: shard count out of range [1, 256]")
	}
	s, err := NewStoreWithBackend(containerBytes, container.NewMemBackend(shards))
	if err != nil {
		// The memory backend holds no pre-existing state and cannot fail.
		panic(fmt.Sprintf("dedup: %v", err))
	}
	return s
}

// NewStoreWithBackend returns a store persisting sealed containers
// through the given backend, with one index shard per backend shard. If
// containerBytes is zero the backend's recorded capacity is used when it
// has one (a FileBackend), container.DefaultBytes otherwise.
//
// If the backend already holds containers (a reopened store directory),
// the fingerprint index is rebuilt from their index headers — chunk data
// is not read — and new chunks pack after the existing containers.
// Dedup statistics of a reopened store count each pre-existing unique
// chunk as stored once; cross-restart logical totals are not preserved.
func NewStoreWithBackend(containerBytes int, backend container.Backend) (*Store, error) {
	return NewStoreWithOptions(backend, StoreOptions{ContainerBytes: containerBytes})
}

// IndexMode selects the store's fingerprint-index implementation.
type IndexMode int

const (
	// IndexMap keeps each shard's index as an in-memory map rebuilt from
	// container metadata on every open — the original engine, bit-for-bit,
	// with open cost and resident memory proportional to chunk count.
	IndexMap IndexMode = iota
	// IndexPersistent keeps each shard's index in bloom-fronted on-disk
	// sorted runs (internal/fpindex): opens read run footers and filters
	// plus the container tail past the index's durable watermark, and
	// steady-state memory is the memtable plus filters plus a bounded
	// block cache, independent of total chunk count.
	IndexPersistent
)

// StoreOptions configures NewStoreWithOptions. The zero value reproduces
// NewStoreWithBackend's behavior exactly (map index, backend-recorded
// container capacity).
type StoreOptions struct {
	// ContainerBytes is the container capacity; zero uses the backend's
	// recorded capacity when it has one, container.DefaultBytes otherwise.
	ContainerBytes int
	// Index selects the fingerprint-index implementation.
	Index IndexMode
	// IndexDir is the directory holding run files and manifests; required
	// for IndexPersistent, ignored otherwise. It must not be the container
	// store directory itself (the index glob would collide with shard
	// files) — a subdirectory of it is the convention.
	IndexDir string
	// FS is the filesystem the persistent index writes through (vfs.OS if
	// nil). Fault-injection harnesses pass the same faulty FS the
	// container backend uses.
	FS vfs.FS
	// MemtableEntries, CacheBytes, ExpectedChunks, SyncCompaction tune
	// the persistent index; zero values select fpindex defaults.
	MemtableEntries int
	CacheBytes      int64
	ExpectedChunks  uint64
	SyncCompaction  bool
	// RebuildIndex discards any existing persistent index state and
	// rebuilds from container metadata — the recovery lever after
	// external damage, and what repository open uses after a salvage.
	RebuildIndex bool
}

// NewStoreWithOptions is NewStoreWithBackend with an options struct; see
// StoreOptions. With IndexPersistent the fingerprint index lives in
// opts.IndexDir and opening does no full container scan: each shard
// recovers its packer counters from the backend's sealed stats, loads run
// footers and bloom filters, and rescans only the container tail past the
// index's durable watermark (the containers sealed since the last index
// flush — the containers themselves are the write-ahead log).
func NewStoreWithOptions(backend container.Backend, opts StoreOptions) (*Store, error) {
	shards := backend.Shards()
	if shards < 1 || shards > maxShards {
		return nil, fmt.Errorf("dedup: backend shard count %d out of range [1, 256]", shards)
	}
	containerBytes := opts.ContainerBytes
	if containerBytes == 0 {
		if cb, ok := backend.(interface{ ContainerBytes() int }); ok {
			containerBytes = cb.ContainerBytes()
		} else {
			containerBytes = container.DefaultBytes
		}
	}
	s := &Store{
		shards:         make([]*shard, shards),
		backend:        backend,
		containerBytes: containerBytes,
	}
	switch opts.Index {
	case IndexMap:
		for i := range s.shards {
			sh := &shard{}
			idx := newMapIndex()
			// The packer's construction scan doubles as the fingerprint-index
			// rebuild: one metadata pass per shard, no chunk data read.
			cs, err := container.NewWithBackend(containerBytes, backend, i, func(c *container.Container) error {
				for j, e := range c.Entries {
					idx.m[e.FP] = container.Location{Container: c.ID, Index: j}
					sh.physicalBytes += uint64(e.Size)
					sh.logicalBytes += uint64(e.Size)
					sh.logicalChunks++
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("dedup: rebuild shard %d index: %w", i, err)
			}
			sh.index = idx
			sh.containers = cs
			s.shards[i] = sh
		}
	case IndexPersistent:
		if err := s.openPersistentIndex(backend, containerBytes, opts); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("dedup: unknown index mode %d", opts.Index)
	}
	s.syncGC = gcommit.New(s.syncAllShards, false)
	return s, nil
}

// openPersistentIndex builds the shards in IndexPersistent mode: open the
// fpindex (run footers and filters only), sanity-check its watermarks
// against the backend, and tail-rescan each shard's containers past the
// watermark into the memtable. If any shard's watermark exceeds the
// backend's sealed count the index belongs to a different container
// history (a restored or rolled-back store directory), so the whole index
// is rebuilt from container metadata instead of trusted.
func (s *Store) openPersistentIndex(backend container.Backend, containerBytes int, opts StoreOptions) error {
	if opts.IndexDir == "" {
		return errors.New("dedup: IndexPersistent requires IndexDir")
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS
	}
	fpOpts := fpindex.Options{
		Shards:          backend.Shards(),
		MemtableEntries: opts.MemtableEntries,
		CacheBytes:      opts.CacheBytes,
		ExpectedChunks:  opts.ExpectedChunks,
		SyncCompaction:  opts.SyncCompaction,
		ForceRebuild:    opts.RebuildIndex,
	}
	fpx, err := fpindex.Open(fsys, opts.IndexDir, fpOpts)
	if err != nil {
		return fmt.Errorf("dedup: open fingerprint index: %w", err)
	}
	for pass := 0; ; pass++ {
		stale := false
		for i := range s.shards {
			sh := &shard{}
			cs, err := container.NewWithBackend(containerBytes, backend, i, nil)
			if err != nil {
				fpx.Close()
				return fmt.Errorf("dedup: open shard %d containers: %w", i, err)
			}
			fsh := fpx.Shard(i)
			if fsh.Watermark() > cs.Sealed() {
				stale = true
				break
			}
			err = container.ScanFrom(backend, i, fsh.Watermark(), false, func(c *container.Container) error {
				for j, e := range c.Entries {
					fsh.Insert(e.FP, container.Location{Container: c.ID, Index: j})
				}
				return nil
			})
			if err != nil {
				fpx.Close()
				return fmt.Errorf("dedup: rescan shard %d tail: %w", i, err)
			}
			sh.index = &fpIdx{s: fsh}
			sh.containers = cs
			// Reopen semantics, like map mode: each pre-existing unique
			// chunk counts once.
			sh.physicalBytes = uint64(cs.Bytes())
			sh.logicalBytes = sh.physicalBytes
			sh.logicalChunks = fsh.Count()
			s.shards[i] = sh
		}
		if !stale {
			break
		}
		if err := fpx.Close(); err != nil {
			return fmt.Errorf("dedup: close stale fingerprint index: %w", err)
		}
		if pass > 0 {
			return errors.New("dedup: fingerprint index watermark ahead of container store after rebuild")
		}
		fpOpts.ForceRebuild = true
		if fpx, err = fpindex.Open(fsys, opts.IndexDir, fpOpts); err != nil {
			return fmt.Errorf("dedup: rebuild fingerprint index: %w", err)
		}
	}
	s.fpidx = fpx
	return nil
}

// IndexCounters reports the persistent index's lookup-path counters
// (zero-valued in map mode): bloom-filter rejections, memtable hits,
// block-cache hits, and disk probes since open.
func (s *Store) IndexCounters() fpindex.Counters {
	if s.fpidx == nil {
		return fpindex.Counters{}
	}
	return s.fpidx.Counters()
}

// PersistentIndex reports whether the store runs the persistent
// fingerprint index (IndexPersistent) rather than the in-memory map.
func (s *Store) PersistentIndex() bool { return s.fpidx != nil }

// Create initializes a new file-backed store directory with the given
// container capacity (container.DefaultBytes if zero) and shard count
// (DefaultShards if zero) and returns the empty store. It fails if dir
// already holds a store.
func Create(dir string, containerBytes, shards int) (*Store, error) {
	if containerBytes == 0 {
		containerBytes = container.DefaultBytes
	}
	if shards == 0 {
		shards = DefaultShards
	}
	b, err := container.CreateFileBackend(dir, shards, containerBytes)
	if err != nil {
		return nil, err
	}
	s, err := NewStoreWithBackend(containerBytes, b)
	if err != nil {
		b.Close()
		return nil, err
	}
	return s, nil
}

// Open reopens a file-backed store directory created by Create (or by
// container.CreateFileBackend), rebuilding the fingerprint index from the
// containers' index headers. Only sealed containers are durable: chunks
// that were still in open containers when the previous process died are
// gone (Close seals them on clean shutdown), and a record torn by a
// mid-append crash is discarded.
func Open(dir string) (*Store, error) {
	b, err := container.OpenFileBackend(dir)
	if err != nil {
		return nil, err
	}
	s, err := NewStoreWithBackend(0, b)
	if err != nil {
		b.Close()
		return nil, err
	}
	return s, nil
}

// Close seals every shard's open container through the backend, flushes
// the persistent fingerprint index (when one is in use) so the next open
// rescans no container tail, and closes the backend. After a clean Close,
// Open restores every stored chunk. The store must not be used
// afterwards.
func (s *Store) Close() error {
	var first error
	for _, sh := range s.shards {
		sh.mu.Lock()
		_, err := sh.containers.Flush()
		if err == nil {
			// Flush the index only after a successful seal: the index may
			// never claim coverage of containers that are not durable.
			err = sh.index.flush(sh.containers.Sealed())
		}
		if cerr := sh.index.close(); err == nil {
			err = cerr
		}
		sh.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	if s.fpidx != nil {
		if err := s.fpidx.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := s.backend.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Sync seals every shard's open container through the backend without
// closing it, making everything stored so far as durable as the backend
// makes sealed containers (FileBackend: fsynced to disk). The store stays
// usable; subsequent Puts open fresh containers. Syncing after every small
// backup trades container packing density for per-backup durability —
// that is the Repository front door's contract.
//
// Concurrent Syncs coalesce: a flush pass that starts after a Sync call
// arrives covers it, so N simultaneous callers share far fewer passes
// (and per-shard fsyncs) than N. Sync returns only after a covering pass
// has completed — never on the strength of a pass already in flight when
// it was called.
func (s *Store) Sync() error {
	return s.syncGC.Commit(s.syncSeq.Add(1))
}

// syncAllShards is the coalesced barrier: one pass sealing every shard's
// open container.
func (s *Store) syncAllShards() error {
	for i, sh := range s.shards {
		sh.mu.Lock()
		_, err := sh.containers.Flush()
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("dedup: sync shard %d: %w", i, err)
		}
	}
	return nil
}

// SealSyncs returns how many coalesced flush passes have run — with
// concurrent Syncs this is less than the call count.
func (s *Store) SealSyncs() int64 { return s.syncGC.Syncs() }

// SetSealCommitWindow sets the group-commit straggler window for seal
// flush passes: a Sync leading a pass waits up to window for concurrent
// Syncs to join the same pass, on top of the always-on absorption
// coalescing. Zero (the default) flushes immediately. Set it before the
// store sees concurrent Syncs.
func (s *Store) SetSealCommitWindow(window time.Duration) { s.syncGC.SetWindow(window) }

// Contains reports whether the store holds a chunk with the given
// fingerprint. It is an index lookup only; with the persistent index a
// negative answer usually costs one bloom-filter probe and no disk read.
// An index read error reports the chunk as absent — the safe direction
// for negotiation (the client re-uploads).
func (s *Store) Contains(fp fphash.Fingerprint) bool {
	sh := s.shardFor(fp)
	sh.mu.Lock()
	_, ok, err := sh.index.lookup(fp)
	sh.mu.Unlock()
	return ok && err == nil
}

// ContainsBatch is the chunk-negotiation lookup: miss[i] reports whether
// the store is MISSING fps[i] (the caller should upload it). One shard
// lock acquisition per run of same-shard fingerprints instead of one per
// fingerprint, which matters at wire-protocol window sizes. The result
// reuses miss when its capacity suffices. Like Contains it is a snapshot:
// a concurrent Put may make a reported miss stale, which the Put path
// resolves as an ordinary duplicate.
func (s *Store) ContainsBatch(fps []fphash.Fingerprint, miss []bool) []bool {
	if cap(miss) < len(fps) {
		miss = make([]bool, len(fps))
	}
	miss = miss[:len(fps)]
	var held *shard
	for i, fp := range fps {
		sh := s.shardFor(fp)
		if sh != held {
			if held != nil {
				held.mu.Unlock()
			}
			sh.mu.Lock()
			held = sh
		}
		_, ok, err := sh.index.lookup(fp)
		miss[i] = !ok || err != nil
	}
	if held != nil {
		held.mu.Unlock()
	}
	return miss
}

// Verify reads every container — open and sealed — and checks each stored
// chunk's content against its recorded fingerprint; for a file-backed
// store the per-record CRC is verified by the same read. Any mismatch is
// reported as an error wrapping container.ErrCorrupt: corruption surfaces
// as an error, never as silent wrong bytes on a later restore. Each shard
// is locked while it is scanned, so Verify sees a consistent per-shard
// snapshot; ctx is checked between containers, and a cancelled Verify
// returns ctx.Err().
func (s *Store) Verify(ctx context.Context) error {
	checkEntries := func(si, id int, entries []container.Entry) error {
		for _, e := range entries {
			if fphash.FromBytes(e.Data) != e.FP {
				return fmt.Errorf("%w: shard %d container %d: chunk %v content does not match its fingerprint",
					container.ErrCorrupt, si, id, e.FP)
			}
		}
		return nil
	}
	for si, sh := range s.shards {
		sh.mu.Lock()
		err := s.backend.Scan(si, true, func(c *container.Container) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			return checkEntries(si, c.ID, c.Entries)
		})
		if err == nil {
			if cur := sh.containers.Current(); cur != nil {
				err = checkEntries(si, cur.ID, cur.Entries)
			}
		}
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// ShardCount returns the number of index shards.
func (s *Store) ShardCount() int { return len(s.shards) }

// shardFor returns the shard owning fp.
func (s *Store) shardFor(fp fphash.Fingerprint) *shard {
	return s.shards[fp.Shard(len(s.shards))]
}

// Put stores a ciphertext chunk, deduplicating against previously stored
// chunks. It reports whether the chunk was a duplicate. Only the owning
// shard is locked, so Puts of chunks on different shards proceed in
// parallel.
func (s *Store) Put(fp fphash.Fingerprint, data []byte) (duplicate bool, err error) {
	sh := s.shardFor(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	dup, err := sh.put(fp, data, false)
	if err == nil {
		err = sh.index.maybeFlush(sh.containers.Sealed())
	}
	return dup, err
}

// PutChunk is one chunk of a PutBatch upload.
type PutChunk struct {
	// FP is the chunk's (ciphertext) fingerprint.
	FP fphash.Fingerprint
	// Data is the chunk content. The store copies it; the caller keeps
	// ownership.
	Data []byte
}

// PutBatch stores a batch of ciphertext chunks, deduplicating each, and
// reports per-chunk whether it was a duplicate (indexed like chunks).
// Chunks are grouped by shard so each shard is locked once per batch
// rather than once per chunk; within a shard, chunks are stored in batch
// order, so with a single shard the container layout is identical to
// issuing the Puts sequentially. On error, chunks stored before the
// failing one remain stored (re-uploading them deduplicates).
func (s *Store) PutBatch(chunks []PutChunk) ([]bool, error) {
	return s.putBatch(chunks, false)
}

// PutBatchOwned is PutBatch with ownership transfer: the store keeps the
// Data slices of non-duplicate chunks instead of copying them, so the
// caller must not read or write any chunk's Data after the call. The
// backup pipeline uses it for freshly encrypted ciphertexts it never
// touches again; callers that reuse their buffers must use PutBatch.
func (s *Store) PutBatchOwned(chunks []PutChunk) ([]bool, error) {
	return s.putBatch(chunks, true)
}

func (s *Store) putBatch(chunks []PutChunk, owned bool) ([]bool, error) {
	dups := make([]bool, len(chunks))
	if len(chunks) == 0 {
		return dups, nil
	}
	if len(s.shards) == 1 {
		sh := s.shards[0]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		for i, c := range chunks {
			var err error
			if dups[i], err = sh.put(c.FP, c.Data, owned); err != nil {
				return dups, err
			}
		}
		return dups, sh.index.maybeFlush(sh.containers.Sealed())
	}
	// Group chunk indexes by shard, preserving batch order within each
	// group to keep per-shard placement deterministic.
	groups := make(map[int][]int)
	for i, c := range chunks {
		si := c.FP.Shard(len(s.shards))
		groups[si] = append(groups[si], i)
	}
	for si, idxs := range groups {
		sh := s.shards[si]
		sh.mu.Lock()
		for _, i := range idxs {
			var err error
			if dups[i], err = sh.put(chunks[i].FP, chunks[i].Data, owned); err != nil {
				sh.mu.Unlock()
				return dups, err
			}
		}
		// One spill check per shard per batch, not per chunk: the flush
		// itself is amortized over a full memtable of inserts.
		err := sh.index.maybeFlush(sh.containers.Sealed())
		sh.mu.Unlock()
		if err != nil {
			return dups, err
		}
	}
	return dups, nil
}

// Get retrieves a stored ciphertext chunk by fingerprint. It returns
// ErrNotFound for unknown fingerprints; other errors indicate the backend
// could not produce the chunk (for example container.ErrCorrupt from a
// damaged store file).
//
// The shard lock covers only the index lookup (and the open container,
// when the chunk is still in it); sealed containers are immutable and
// read from the backend outside the lock, so a container-sized disk read
// never blocks the shard's writers. A GC pass can move the chunk between
// the lookup and the read — the fetched entry's fingerprint is verified,
// and a stale read retries under the lock, where GC (which holds every
// shard lock) cannot interleave.
func (s *Store) Get(fp fphash.Fingerprint) ([]byte, error) {
	sh := s.shardFor(fp)
	sh.mu.Lock()
	loc, ok, err := sh.index.lookup(fp)
	if err != nil {
		sh.mu.Unlock()
		return nil, fmt.Errorf("dedup: index lookup %v: %w", fp, err)
	}
	if !ok {
		sh.mu.Unlock()
		return nil, ErrNotFound
	}
	if cur := sh.containers.Current(); cur != nil && cur.ID == loc.Container {
		var data []byte
		if loc.Index >= 0 && loc.Index < len(cur.Entries) {
			data = cur.Entries[loc.Index].Data
		}
		sh.mu.Unlock()
		if data == nil {
			return nil, ErrNotFound
		}
		return data, nil
	}
	sh.mu.Unlock()
	return s.getSealed(sh, fp, loc)
}

// getSealed reads a sealed chunk outside the shard lock, verifying the
// location is still current, with a locked retry for the GC race.
func (s *Store) getSealed(sh *shard, fp fphash.Fingerprint, loc container.Location) ([]byte, error) {
	shardIdx := fp.Shard(len(s.shards))
	c, err := s.backend.Load(shardIdx, loc.Container)
	if err == nil && loc.Index >= 0 && loc.Index < len(c.Entries) && c.Entries[loc.Index].FP == fp {
		return c.Entries[loc.Index].Data, nil
	}
	if err != nil && !errors.Is(err, container.ErrNotFound) {
		return nil, err
	}
	// Stale location: a GC pass compacted the shard mid-read. Retake the
	// lock for an authoritative view.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	loc, ok, lerr := sh.index.lookup(fp)
	if lerr != nil {
		return nil, fmt.Errorf("dedup: index lookup %v: %w", fp, lerr)
	}
	if !ok {
		return nil, ErrNotFound
	}
	e, err := sh.containers.Get(loc)
	if err != nil {
		if errors.Is(err, container.ErrNotFound) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	if e.FP != fp {
		// The location resolved to someone else's chunk: the index and
		// container disagree (possible only under external damage).
		return nil, ErrNotFound
	}
	return e.Data, nil
}

// containerRef names one container of one shard: the parallel restore
// pipeline's read unit and cache key.
type containerRef struct {
	shard int
	id    int
}

// locate resolves a fingerprint to its container and location. The
// location is stable until a GC pass moves survivors. A non-nil error
// means the index could not answer (a corrupt run block); degraded
// restore treats it as a missing chunk, strict restore surfaces it.
func (s *Store) locate(fp fphash.Fingerprint) (containerRef, container.Location, bool, error) {
	si := fp.Shard(len(s.shards))
	sh := s.shards[si]
	sh.mu.Lock()
	loc, ok, err := sh.index.lookup(fp)
	sh.mu.Unlock()
	if err != nil {
		return containerRef{}, container.Location{}, false, fmt.Errorf("dedup: index lookup %v: %w", fp, err)
	}
	if !ok {
		return containerRef{}, container.Location{}, false, nil
	}
	return containerRef{shard: si, id: loc.Container}, loc, true, nil
}

// readContainer fetches one container's entries for the restore pipeline.
// The open container is snapshotted under the shard lock; sealed
// containers are immutable and read from the backend outside it (backends
// are safe for concurrent use), so container reads on different shards —
// and, for MemBackend, on the same shard — overlap. A concurrent GC can
// move chunks between a locate and this read; restore verifies each
// entry's fingerprint and falls back to Get on a mismatch.
func (s *Store) readContainer(ref containerRef) ([]container.Entry, error) {
	sh := s.shards[ref.shard]
	sh.mu.Lock()
	if cur := sh.containers.Current(); cur != nil && cur.ID == ref.id {
		entries := append([]container.Entry(nil), cur.Entries...)
		sh.mu.Unlock()
		return entries, nil
	}
	sh.mu.Unlock()
	c, err := s.backend.Load(ref.shard, ref.id)
	if err != nil {
		return nil, err
	}
	return c.Entries, nil
}

// Stats reports deduplication effectiveness of everything stored so far,
// aggregated across shards. Each shard is locked in turn, so the totals
// are a consistent per-shard snapshot (concurrent Puts may land between
// shard reads, as with any aggregate over a live store).
func (s *Store) Stats() trace.DedupStats {
	var st trace.DedupStats
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.LogicalBytes += sh.logicalBytes
		st.PhysicalBytes += sh.physicalBytes
		st.LogicalChunks += sh.logicalChunks
		st.UniqueChunks += sh.index.count()
		sh.mu.Unlock()
	}
	if s.fpidx != nil {
		c := s.fpidx.Counters()
		st.IndexBloomNegative = c.BloomNegative
		st.IndexMemtableHits = c.MemtableHits
		st.IndexBlockCacheHits = c.BlockCacheHits
		st.IndexDiskProbes = c.DiskProbes
	}
	return st
}

// UniqueChunks returns the number of distinct ciphertext chunks stored.
func (s *Store) UniqueChunks() int {
	var n int
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.index.count()
		sh.mu.Unlock()
	}
	return n
}

// ContainerCount returns the number of containers across all shards,
// including in-progress ones.
func (s *Store) ContainerCount() int {
	var n int
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.containers.Count()
		sh.mu.Unlock()
	}
	return n
}

// lockAll acquires every shard lock in index order (the global lock order;
// GC and other whole-store operations use it to get a consistent view).
func (s *Store) lockAll() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

// unlockAll releases every shard lock.
func (s *Store) unlockAll() {
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}
