package keymgr

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
)

func startServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	if cfg.Secret == nil {
		cfg.Secret = []byte("test-system-secret")
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // exits on Close
	// Serve stores the listener synchronously before accepting, but give it
	// a moment to start accepting.
	t.Cleanup(func() { srv.Close() })
	// Stash the address via the listener we created.
	srv.mu.Lock()
	if srv.ln == nil {
		srv.ln = ln
	}
	srv.mu.Unlock()
	return srv
}

func testToken() [TokenSize]byte {
	var tok [TokenSize]byte
	copy(tok[:], "authorized-client-token")
	return tok
}

func TestDeriveKeyMatchesLocalHMAC(t *testing.T) {
	secret := []byte("shared secret")
	srv := startServer(t, ServerConfig{Secret: secret, Token: testToken()})
	client, err := Dial(srv.Addr().String(), testToken())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	fp := fphash.FromBytes([]byte("some chunk"))
	got, err := client.DeriveKey(fp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mle.NewLocalDeriver(secret).DeriveKey(fp)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("server key derivation disagrees with HMAC-SHA-256(secret, fp)")
	}
}

func TestDeriveKeyDeterministic(t *testing.T) {
	srv := startServer(t, ServerConfig{Token: testToken()})
	client, err := Dial(srv.Addr().String(), testToken())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	fp := fphash.FromUint64(99)
	a, err := client.DeriveKey(fp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.DeriveKey(fp)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("key derivation must be deterministic")
	}
	c, err := client.DeriveKey(fphash.FromUint64(100))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("distinct fingerprints derived identical keys")
	}
}

func TestAuthFailure(t *testing.T) {
	srv := startServer(t, ServerConfig{Token: testToken()})
	var badToken [TokenSize]byte
	copy(badToken[:], "wrong token")
	if _, err := Dial(srv.Addr().String(), badToken); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("err = %v, want ErrAuthFailed", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := startServer(t, ServerConfig{Token: testToken()})
	const clients = 8
	const reqs = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client, err := Dial(srv.Addr().String(), testToken())
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for j := 0; j < reqs; j++ {
				fp := fphash.FromUint64(uint64(id*1000 + j))
				if _, err := client.DeriveKey(fp); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	derived, _ := srv.Stats()
	if derived != clients*reqs {
		t.Fatalf("derived = %d, want %d", derived, clients*reqs)
	}
}

func TestSharedClientConcurrency(t *testing.T) {
	srv := startServer(t, ServerConfig{Token: testToken()})
	client, err := Dial(srv.Addr().String(), testToken())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fp := fphash.FromUint64(uint64(i))
			want, _ := mle.NewLocalDeriver([]byte("test-system-secret")).DeriveKey(fp)
			got, err := client.DeriveKey(fp)
			if err != nil {
				t.Errorf("DeriveKey: %v", err)
				return
			}
			if got != want {
				t.Error("concurrent use corrupted a response")
			}
		}(i)
	}
	wg.Wait()
}

func TestRateLimiting(t *testing.T) {
	// 1 request/second with burst 2: the first two requests pass, the third
	// is rejected.
	srv := startServer(t, ServerConfig{
		Token:   testToken(),
		Limiter: NewTokenBucket(1, 2),
	})
	client, err := Dial(srv.Addr().String(), testToken())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 2; i++ {
		if _, err := client.DeriveKey(fphash.FromUint64(uint64(i))); err != nil {
			t.Fatalf("request %d rejected within burst: %v", i, err)
		}
	}
	if _, err := client.DeriveKey(fphash.FromUint64(2)); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	_, rejected := srv.Stats()
	if rejected != 1 {
		t.Fatalf("rejected = %d, want 1", rejected)
	}
}

func TestRateLimitRetry(t *testing.T) {
	srv := startServer(t, ServerConfig{
		Token:   testToken(),
		Limiter: NewTokenBucket(50, 1), // refills fast enough to retry
	})
	client, err := Dial(srv.Addr().String(), testToken())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.RetryRateLimit = 50 * time.Millisecond
	client.MaxRetries = 5
	// Burn the burst token.
	if _, err := client.DeriveKey(fphash.FromUint64(0)); err != nil {
		t.Fatal(err)
	}
	// This one should get rate limited once, wait, then succeed.
	if _, err := client.DeriveKey(fphash.FromUint64(1)); err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
}

func TestClientClosed(t *testing.T) {
	srv := startServer(t, ServerConfig{Token: testToken()})
	client, err := Dial(srv.Addr().String(), testToken())
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	if _, err := client.DeriveKey(fphash.FromUint64(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := client.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestServerCloseDropsClients(t *testing.T) {
	srv := startServer(t, ServerConfig{Token: testToken()})
	client, err := Dial(srv.Addr().String(), testToken())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	srv.Close()
	if _, err := client.DeriveKey(fphash.FromUint64(1)); err == nil {
		t.Fatal("DeriveKey after server close should fail")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Fatal("NewServer with empty secret should fail")
	}
}

func TestServerAidedMLEOverNetwork(t *testing.T) {
	// Integration: full server-aided MLE through the network key manager.
	srv := startServer(t, ServerConfig{Token: testToken()})
	client, err := Dial(srv.Addr().String(), testToken())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	scheme := mle.NewServerAided(client)
	ct1, k1, err := scheme.Encrypt([]byte("duplicate chunk"))
	if err != nil {
		t.Fatal(err)
	}
	ct2, _, err := scheme.Encrypt([]byte("duplicate chunk"))
	if err != nil {
		t.Fatal(err)
	}
	if string(ct1) != string(ct2) {
		t.Fatal("server-aided MLE over network lost determinism")
	}
	if string(mle.DecryptDeterministic(k1, ct1)) != "duplicate chunk" {
		t.Fatal("decryption failed")
	}
}

func TestTokenBucketRefill(t *testing.T) {
	now := time.Unix(0, 0)
	tb := NewTokenBucket(10, 2)
	tb.now = func() time.Time { return now }
	tb.last = now
	tb.tokens = 2
	if !tb.Allow() || !tb.Allow() {
		t.Fatal("burst tokens rejected")
	}
	if tb.Allow() {
		t.Fatal("empty bucket allowed request")
	}
	now = now.Add(100 * time.Millisecond) // refills 1 token at 10/s
	if !tb.Allow() {
		t.Fatal("refilled token rejected")
	}
	if tb.Allow() {
		t.Fatal("bucket over-refilled")
	}
	// Refill never exceeds burst.
	now = now.Add(time.Hour)
	if !tb.Allow() || !tb.Allow() {
		t.Fatal("burst tokens rejected after long idle")
	}
	if tb.Allow() {
		t.Fatal("bucket exceeded burst capacity")
	}
}

func TestTokenBucketPanics(t *testing.T) {
	for _, c := range []struct{ rate, burst float64 }{{0, 1}, {1, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTokenBucket(%v,%v) did not panic", c.rate, c.burst)
				}
			}()
			NewTokenBucket(c.rate, c.burst)
		}()
	}
}

func TestIdleTimeoutDropsSilentClients(t *testing.T) {
	srv := startServer(t, ServerConfig{
		Token:       testToken(),
		IdleTimeout: 100 * time.Millisecond,
	})
	client, err := Dial(srv.Addr().String(), testToken())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Active client keeps working across the idle threshold.
	for i := 0; i < 3; i++ {
		if _, err := client.DeriveKey(fphash.FromUint64(uint64(i))); err != nil {
			t.Fatalf("active client dropped: %v", err)
		}
		time.Sleep(60 * time.Millisecond)
	}
	// Then go silent past the timeout: the server closes the connection.
	time.Sleep(300 * time.Millisecond)
	if _, err := client.DeriveKey(fphash.FromUint64(99)); err == nil {
		t.Fatal("idle connection should have been closed by the server")
	}
}
