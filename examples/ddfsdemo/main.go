// Ddfsdemo: replay an FSL-like backup series through the DDFS-like
// deduplication prototype (Section 7.4) and watch the metadata flow — the
// Bloom filter, the fingerprint cache with container prefetching, and the
// on-disk index — then measure restore locality under the combined
// defense (the Section 6.2 performance claim).
package main

import (
	"fmt"
	"log"
	"os"

	"freqdedup"
	"freqdedup/internal/ddfs"
	"freqdedup/internal/defense"
	"freqdedup/internal/eval"
	"freqdedup/internal/trace"
)

func main() {
	params := freqdedup.DefaultFSLParams()
	params.PerUserBytes = 8 << 20 // keep the demo quick
	dataset := freqdedup.GenerateFSL(params)

	var expected uint64
	for _, b := range dataset.Backups {
		expected += uint64(len(b.Chunks))
	}
	sys := ddfs.New(ddfs.Config{
		ContainerBytes:       4 << 20,
		ExpectedFingerprints: expected,
		BloomFPP:             0.01,
	})

	fmt.Println("storing MLE-encrypted backups through the DDFS-like pipeline:")
	fmt.Printf("%-8s | %-10s | %-10s | %-12s\n", "backup", "update", "index", "loading")
	for i, b := range dataset.Backups {
		enc, err := defense.Encrypt(b, defense.SchemeMLE, int64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		st := sys.StoreBackup(enc.Backup)
		fmt.Printf("%-8s | %7.2f MB | %7.3f MB | %9.2f MB\n", b.Label,
			mb(st.UpdateBytes), mb(st.IndexBytes), mb(st.LoadingBytes))
	}
	fmt.Printf("\n%d unique chunks in %d containers; cache hit rate %.1f%%\n",
		sys.UniqueChunks(), sys.Containers(), sys.CacheHitRate()*100)

	// Restore locality for the latest backup.
	last := dataset.Backups[len(dataset.Backups)-1]
	enc, err := defense.Encrypt(last, defense.SchemeMLE, int64(len(dataset.Backups)))
	if err != nil {
		log.Fatal(err)
	}
	spread := sys.ContainerSpread(&trace.Backup{Chunks: enc.RecipeOrder}, 4)
	fmt.Printf("restoring %s: %d chunks span %d containers, %d reads with a 4-container cache\n",
		last.Label, spread.Chunks, spread.DistinctContainers, spread.ReadsWithCache)

	// The full Section 6.2 comparison (MLE vs combined defense).
	fig, err := eval.RestoreLocality(eval.Datasets{
		FSL: dataset, Synthetic: dataset, VM: dataset,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fig.Render(os.Stdout)
}

func mb(v uint64) float64 { return float64(v) / (1 << 20) }
