// Command defend evaluates the paper's defenses (Section 7): MinHash
// encryption and scrambling, inspects live repositories built with the
// freqdedup.Repository API, and attacks their recorded upload traffic.
//
//	defend -fig 10          # defense effectiveness vs leakage rate
//	defend -fig 11          # storage saving MLE vs combined
//	defend -fig scenarios   # workload scenario matrix: every registered
//	                        # workload through the full stack (repository
//	                        # backup, upload tap, .fdt replay, attacks)
//	defend -fig scenarios -tiny                # smoke-test scale
//	defend -fig all
//	defend -fig all -dataset repo:/path/to/repository
//	                        # every figure from the repository's replayed
//	                        # .fdt trace logs instead of the generators
//	defend -fig all -dataset workload:teamshare
//	                        # every figure on a registered workload
//	defend -trace fsl.trace -scheme combined   # savings on a trace file
//	defend -repo /path/to/repository           # snapshots, savings, verify
//	defend -repo /path/to/repository -key "hunter2..."
//	defend attack -repo /path/to/repository    # the full adversary loop:
//	                        # replay taps, run every attack against every
//	                        # scheme, report inference rates
//	defend attack -repo /path/to/repository -view negotiation
//	                        # same loop on the multi-tenant server's
//	                        # negotiation transcript: what the wire leaks
//	                        # before a single chunk is uploaded
//	defend fsck -repo /path/to/repository      # salvage-open, repair, and
//	                        # report exactly which snapshots lost what
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"freqdedup"
	"freqdedup/internal/attack"
	"freqdedup/internal/defense"
	"freqdedup/internal/eval"
	"freqdedup/internal/trace"
	"freqdedup/internal/tracelog"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "attack" {
		runAttackCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "fsck" {
		runFsckCmd(os.Args[2:])
		return
	}
	figFlag := flag.String("fig", "", "reproduce figures: 10, 11, ablations, scenarios, or all")
	dataset := flag.String("dataset", "", `figure dataset: empty = built-in generators, "repo:<dir>" = a repository's replayed trace logs, "workload:<name>" = a registered workload, else a tracegen file`)
	tiny := flag.Bool("tiny", false, "run -fig scenarios at tiny smoke-test scale")
	tracePath := flag.String("trace", "", "trace file to evaluate (single-run mode)")
	schemeName := flag.String("scheme", "combined", "scheme: mle, minhash, or combined")
	repoPath := flag.String("repo", "", "repository directory to inspect (snapshot list, savings, verify)")
	repoKey := flag.String("key", "", "repository key for -repo (raw bytes, zero-padded; empty = zero key)")
	flag.Parse()

	switch {
	case *repoPath != "":
		runRepo(*repoPath, *repoKey)
	case *figFlag != "":
		runFigures(*figFlag, *dataset, *tiny)
	case *tracePath != "":
		runSingle(*tracePath, *schemeName)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// loadDataset resolves a -dataset argument: a repository's replayed
// adversary trace logs ("repo:<dir>"), a registered workload
// ("workload:<name>", generated at its default scale), or a tracegen
// file. Repository taps need no repository key — the trace log records exactly what the
// adversary observed, which under convergent encryption is a 1-1
// relabeling of the plaintext chunk stream preserving the frequencies,
// sizes, and locality every figure depends on.
func loadDataset(arg string) (*trace.Dataset, error) {
	if dir, ok := strings.CutPrefix(arg, "repo:"); ok {
		return repoTapDataset(dir)
	}
	if name, ok := strings.CutPrefix(arg, "workload:"); ok {
		return freqdedup.GenerateWorkload(name, freqdedup.WorkloadConfig{})
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

// repoTapDataset replays a repository's trace logs into a dataset: one
// backup stream per committed tap, in commit order. The log is opened
// read-only: the repository may still be live, and an inspection tool
// must neither block it nor truncate an append it has in flight.
func repoTapDataset(dir string) (*trace.Dataset, error) {
	return repoDataset(dir, "tap")
}

// repoDataset replays one of a repository's two adversary views. "tap"
// is the in-process upload observer (traces.fdt). "negotiation" is the
// wire view a multi-tenant server leaks before any upload: the chunk
// references every session offered during its negotiation rounds
// (negotiation.fdt), with the server-to-client miss streams (the
// "?misses" labels) dropped — the query streams alone carry the
// frequency and locality structure the attacks consume.
func repoDataset(dir, view string) (*trace.Dataset, error) {
	var logPath string
	switch view {
	case "tap":
		logPath = filepath.Join(dir, tracelog.LogName)
	case "negotiation":
		logPath = filepath.Join(dir, freqdedup.NegotiationLogName)
	default:
		return nil, fmt.Errorf("unknown adversary view %q (want tap or negotiation)", view)
	}
	log, err := tracelog.OpenReadOnly(logPath)
	if err != nil {
		return nil, err
	}
	defer log.Close()
	d := &trace.Dataset{Name: "repo:" + view}
	for _, tap := range log.Backups() {
		if view == "negotiation" && strings.HasSuffix(tap.Label, freqdedup.NegotiationMissSuffix) {
			continue
		}
		b, err := tap.Materialize()
		if err != nil {
			return nil, err
		}
		d.Backups = append(d.Backups, b)
	}
	if len(d.Backups) == 0 {
		if view == "negotiation" {
			return nil, fmt.Errorf("repository %s has no committed negotiation transcripts (was it ever served over the wire?)", dir)
		}
		return nil, fmt.Errorf("repository %s has no committed backup traces (was it created with the upload observer enabled?)", dir)
	}
	return d, nil
}

// runAttackCmd is the full adversary loop against a real repository:
// open the trace log (no key — the adversary has none), replay the
// recorded upload histories, simulate every defense scheme on the latest
// backup's stream, and run every attack in both modes against each,
// reporting inference rates. -view selects which adversary the loop
// plays: the in-process upload tap, or the wire-level negotiation
// transcript a multi-tenant server leaks before any chunk is uploaded.
func runAttackCmd(args []string) {
	fs := flag.NewFlagSet("defend attack", flag.ExitOnError)
	repoPath := fs.String("repo", "", "repository directory whose trace logs to attack (required)")
	view := fs.String("view", "tap", "adversary view: tap (upload observer) or negotiation (server wire transcript)")
	auxIdx := fs.Int("aux", 0, "auxiliary backup trace index")
	targetIdx := fs.Int("target", -1, "target backup trace index (-1 = latest)")
	leakage := fs.Float64("leakage", 0.002, "leakage rate for the known-plaintext rows")
	u := fs.Int("u", 1, "seed pairs from frequency analysis (parameter u)")
	v := fs.Int("v", 15, "pairs per neighbor analysis (parameter v)")
	w := fs.Int("w", 200000, "inferred-set bound (parameter w, 0 = unbounded)")
	shards := fs.Int("shards", 0, "attack-engine table shards (0 = default)")
	workers := fs.Int("workers", 0, "attack-engine counting workers (0 = GOMAXPROCS)")
	fs.Parse(args)
	if *repoPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	d, err := repoDataset(*repoPath, *view)
	if err != nil {
		fatal(err)
	}
	if len(d.Backups) < 2 {
		fatal(fmt.Errorf("need at least 2 backup traces to attack, repository has %d", len(d.Backups)))
	}
	if *targetIdx < 0 {
		*targetIdx = len(d.Backups) - 1
	}
	if *auxIdx < 0 || *auxIdx >= len(d.Backups) || *targetIdx >= len(d.Backups) {
		fatal(fmt.Errorf("backup trace index out of range (repository has %d traces)", len(d.Backups)))
	}
	aux, target := d.Backups[*auxIdx], d.Backups[*targetIdx]
	params := attack.Params{Shards: *shards, Workers: *workers}

	fmt.Printf("repository %s: %d backup traces replayed (%s view)\n", *repoPath, len(d.Backups), *view)
	fmt.Printf("aux: %s (%d chunks), target: %s (%d chunks, %d unique)\n\n",
		aux.Label, len(aux.Chunks), target.Label, len(target.Chunks), target.UniqueCount())

	fig := eval.Figure{
		ID:      "defend attack",
		Title:   fmt.Sprintf("inference rates on replayed taps (aux=%s, target=%s, u=%d v=%d w=%d)", aux.Label, target.Label, *u, *v, *w),
		XLabel:  "scheme",
		Percent: true,
	}
	// Encrypt the target once per scheme (the simulations are
	// deterministic at a fixed seed) and draw each scheme's leaked
	// sample once; the mode x attack grid reuses them.
	schemes := []defense.Scheme{defense.SchemeMLE, defense.SchemeMinHash, defense.SchemeCombined}
	encs := make([]defense.Encrypted, len(schemes))
	leaks := make([][]attack.Pair, len(schemes))
	for i, scheme := range schemes {
		fig.X = append(fig.X, scheme.String())
		enc, err := defense.Encrypt(target, scheme, 11)
		if err != nil {
			fatal(err)
		}
		encs[i] = enc
		leaks[i] = attack.SampleLeaked(enc.Backup, enc.Truth, *leakage, 42)
	}
	for _, mode := range []attack.Mode{attack.CiphertextOnly, attack.KnownPlaintext} {
		cfg := attack.Config{U: *u, V: *v, W: *w, Mode: mode}
		for si, atk := range attack.Suite(cfg) {
			ser := eval.Series{Name: fmt.Sprintf("%s (%s)", atk.Name(), mode)}
			for i := range schemes {
				runAtk := atk
				if mode == attack.KnownPlaintext {
					// The leaked pairs depend on the scheme's ground
					// truth, so the attack is rebuilt per scheme (same
					// suite slot, scheme-specific config).
					runCfg := cfg
					runCfg.Leaked = leaks[i]
					runAtk = attack.Suite(runCfg)[si]
				}
				res, err := runAtk.Run(attack.BackupSource(encs[i].Backup), attack.BackupSource(aux), params)
				if err != nil {
					fatal(err)
				}
				ser.Y = append(ser.Y, res.InferenceRate(encs[i].Truth))
			}
			fig.Series = append(fig.Series, ser)
		}
	}
	fig.Notes = append(fig.Notes,
		"schemes are simulated on the tapped (post-encryption) stream; under a convergent repository the tap preserves the plaintext stream's structure exactly",
		fmt.Sprintf("known-plaintext rows use a %.2f%% leakage rate", *leakage*100))
	fig.Render(os.Stdout)
}

// runFsckCmd is the repository fsck: open in salvage mode (tolerating
// torn tails and corrupt records in the shards and the catalog), run
// Repair, and report the damage in human terms — per-snapshot chunk and
// byte losses, quarantine paths, what the salvage open had to skip.
// Exit status is 0 for a clean repository, 1 when damage was found and
// repaired (like fsck: the repository is consistent again, but data was
// lost), and 2 on usage or hard failure.
func runFsckCmd(args []string) {
	fs := flag.NewFlagSet("defend fsck", flag.ExitOnError)
	repoPath := fs.String("repo", "", "repository directory to check and repair (required)")
	repoKey := fs.String("key", "", "repository key (raw bytes, zero-padded; empty = zero key)")
	verify := fs.Bool("verify", true, "run a full Verify after the repair")
	fs.Parse(args)
	if *repoPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	var key freqdedup.Key
	copy(key[:], *repoKey)
	repo, err := freqdedup.OpenRepository(*repoPath,
		freqdedup.WithRepositoryKey(key),
		freqdedup.WithSalvage(),
		freqdedup.WithDegradedRestore())
	if err != nil {
		fatal(err)
	}
	defer repo.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := repo.Repair(ctx)
	if err != nil {
		fatal(fmt.Errorf("repair: %w", err))
	}
	if rep.SalvageContainersLost > 0 || rep.SalvageBytesSkipped > 0 {
		fmt.Printf("salvage: skipped %d unreadable container record(s), %d byte(s) of damaged shard data\n",
			rep.SalvageContainersLost, rep.SalvageBytesSkipped)
	}
	if rep.CatalogRecordsDropped > 0 || rep.CatalogBytesSkipped > 0 {
		fmt.Printf("salvage: dropped %d unreadable snapshot record(s), %d byte(s) of damaged catalog data\n",
			rep.CatalogRecordsDropped, rep.CatalogBytesSkipped)
	}
	if rep.ContainersQuarantined > 0 {
		fmt.Printf("quarantined %d corrupt container(s):\n", rep.ContainersQuarantined)
		for _, p := range rep.QuarantinePaths {
			fmt.Printf("  %s\n", p)
		}
	}
	if rep.ChunksLost > 0 {
		fmt.Printf("lost %d unique chunk(s), %.2f MB ciphertext\n",
			rep.ChunksLost, float64(rep.BytesLost)/(1<<20))
	}
	for _, s := range rep.Snapshots {
		if s.RecipeUnreadable {
			fmt.Printf("snapshot %-24s UNRESTORABLE (recipe unreadable: corrupt record or wrong key)\n", s.Name)
			continue
		}
		fmt.Printf("snapshot %-24s degraded: %d/%d chunks lost (%.2f MB); restores zero-fill the lost ranges\n",
			s.Name, s.ChunksLost, s.TotalChunks, float64(s.BytesLost)/(1<<20))
	}
	if *verify {
		switch err := repo.Verify(ctx); {
		case err == nil:
			fmt.Println("verify: OK (checksums, fingerprints, and every snapshot's references)")
		case len(rep.Snapshots) > 0:
			// Damaged snapshots reference chunks the store no longer holds;
			// Verify reporting exactly that is the repair being honest, not
			// a repair failure.
			fmt.Printf("verify: reports the known damage: %v\n", err)
		default:
			fatal(fmt.Errorf("post-repair verify: %w", err))
		}
	}
	if !rep.Damaged() {
		fmt.Printf("repository %s: clean — nothing to repair\n", *repoPath)
		return
	}
	fmt.Printf("repository %s: repaired and consistent; %d snapshot(s) damaged\n",
		*repoPath, len(rep.Snapshots))
	os.Exit(1)
}

// runRepo opens a repository read-only-in-spirit (nothing is mutated) and
// reports what retention and dedup have achieved: the sorted snapshot
// list with sizes and chunk counts, the storage saving, and a full
// Verify. Ctrl-C cancels a long verify through its context.
func runRepo(path, keyStr string) {
	var key freqdedup.Key
	copy(key[:], keyStr)
	repo, err := freqdedup.OpenRepository(path, freqdedup.WithRepositoryKey(key))
	if err != nil {
		fatal(err)
	}
	defer repo.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	snaps := repo.Snapshots()
	fmt.Printf("repository %s: %d snapshot(s)\n", path, len(snaps))
	for _, s := range snaps {
		fmt.Printf("  %-24s %10.2f MB %8d chunks  %s\n",
			s.Name, float64(s.LogicalBytes)/(1<<20), s.Chunks,
			s.CreatedAt.Format(time.RFC3339))
	}
	st := repo.Stats()
	fmt.Printf("dedup: %d logical chunks, %d unique, %.2f MB physical (saving %.1f%%)\n",
		st.LogicalChunks, st.UniqueChunks, float64(st.PhysicalBytes)/(1<<20), st.Saving()*100)
	start := time.Now()
	if err := repo.Verify(ctx); err != nil {
		fatal(err)
	}
	fmt.Printf("verify: OK in %v (checksums, fingerprints, and every snapshot's references)\n",
		time.Since(start).Round(time.Millisecond))
}

func runFigures(which, dataset string, tiny bool) {
	all := which == "all"
	if all || which == "scenarios" {
		runScenarioMatrix(tiny)
		if which == "scenarios" {
			return
		}
	}
	var ds eval.Datasets
	if dataset == "" {
		ds = eval.Generate()
	} else {
		d, err := loadDataset(dataset)
		if err != nil {
			fatal(err)
		}
		// One real dataset fills every evaluation slot; the figure
		// runners deduplicate, so each figure is produced once.
		ds = eval.SingleDataset(d)
	}
	if all || which == "10" {
		figs, err := eval.Fig10Defense(ds)
		if err != nil {
			fatal(err)
		}
		for i := range figs {
			figs[i].Render(os.Stdout)
		}
	}
	if all || which == "11" {
		figs, err := eval.Fig11StorageSaving(ds)
		if err != nil {
			fatal(err)
		}
		for i := range figs {
			figs[i].Render(os.Stdout)
		}
	}
	if all || which == "ablations" {
		a1, err := eval.AblationDefenseComponents(ds)
		if err != nil {
			fatal(err)
		}
		a1.Render(os.Stdout)
		a2, err := eval.AblationSegmentSize(ds)
		if err != nil {
			fatal(err)
		}
		a2.Render(os.Stdout)
		a3 := eval.AblationTieBreaking(ds)
		a3.Render(os.Stdout)
	}
}

// runScenarioMatrix runs every registered workload through the full
// pipeline — generation, repository backup, upload-tap replay, attacks
// against every defense scheme — and renders the per-scenario
// inference-rate matrix.
func runScenarioMatrix(tiny bool) {
	opt := freqdedup.ScenarioOptions{}
	if tiny {
		// Smoke scale: the matrix must run end to end quickly; the rates
		// at this scale are indicative only (the multi-user adapters get
		// very small per-user streams).
		opt.Config = freqdedup.WorkloadConfig{Seed: 42, Backups: 3, TotalBytes: 4 << 20, Users: 5}
	}
	fig, err := freqdedup.ScenarioMatrix(opt)
	if err != nil {
		fatal(err)
	}
	fig.Render(os.Stdout)
}

func runSingle(path, schemeName string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	d, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	var scheme defense.Scheme
	switch schemeName {
	case "mle":
		scheme = defense.SchemeMLE
	case "minhash":
		scheme = defense.SchemeMinHash
	case "combined":
		scheme = defense.SchemeCombined
	default:
		fatal(fmt.Errorf("unknown scheme %q", schemeName))
	}
	savings, err := defense.StorageSavings(d, scheme, 1)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %s, scheme: %s\n", d.Name, scheme)
	for i, b := range d.Backups {
		fmt.Printf("  after %-8s storage saving %.2f%%\n", b.Label+":", savings[i]*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "defend:", err)
	os.Exit(1)
}
