package defense

import (
	"math/rand"
	"testing"
	"testing/quick"

	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

// randomBackup builds an arbitrary backup with some duplication.
func randomBackup(seed int64) *trace.Backup {
	rng := rand.New(rand.NewSource(seed))
	b := &trace.Backup{Label: "prop"}
	pool := make([]trace.ChunkRef, 1+rng.Intn(64))
	for i := range pool {
		pool[i] = trace.ChunkRef{
			FP:   fphash.FromUint64(rng.Uint64() | 1),
			Size: uint32(1024 + rng.Intn(8192)),
		}
	}
	n := 1 + rng.Intn(500)
	for i := 0; i < n; i++ {
		b.Chunks = append(b.Chunks, pool[rng.Intn(len(pool))])
	}
	return b
}

// schemeInvariants checks the invariants every trace-level scheme must
// satisfy: stream length preserved, sizes preserved through ground truth,
// the recovered plaintext multiset equals the original, and RecipeOrder is
// a permutation-consistent view of the same chunks.
func schemeInvariants(b *trace.Backup, enc Encrypted) bool {
	if len(enc.Backup.Chunks) != len(b.Chunks) {
		return false
	}
	if len(enc.RecipeOrder) != len(b.Chunks) {
		return false
	}
	orig := b.Frequencies()
	got := make(map[fphash.Fingerprint]int)
	for _, c := range enc.Backup.Chunks {
		pfp, ok := enc.Truth[c.FP]
		if !ok {
			return false
		}
		got[pfp]++
	}
	if len(got) != len(orig) {
		return false
	}
	for fp, n := range orig {
		if got[fp] != n {
			return false
		}
	}
	// RecipeOrder resolves to the original plaintext sequence, in order.
	for i, c := range enc.RecipeOrder {
		if enc.Truth[c.FP] != b.Chunks[i].FP || c.Size != b.Chunks[i].Size {
			return false
		}
	}
	return true
}

func TestSchemeInvariantsProperty(t *testing.T) {
	schemes := []Scheme{SchemeMLE, SchemeMinHash, SchemeCombined, SchemeScrambleOnly, SchemeRCE}
	f := func(seed int64) bool {
		b := randomBackup(seed)
		for _, s := range schemes {
			enc, err := Encrypt(b, s, seed)
			if err != nil {
				return false
			}
			if !schemeInvariants(b, enc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestCiphertextNamespacesDisjoint: different schemes must never produce
// the same ciphertext fingerprint for a plaintext chunk unless they are
// definitionally identical mappings.
func TestCiphertextNamespacesDisjoint(t *testing.T) {
	b := randomBackup(99)
	mle := EncryptMLE(b)
	rce := EncryptRCE(b)
	for i := range b.Chunks {
		if mle.Backup.Chunks[i].FP == rce.Backup.Chunks[i].FP {
			t.Fatal("MLE and RCE namespaces collide")
		}
	}
}
