// Package dedup implements a byte-level encrypted deduplication engine: the
// full client/server pipeline of Figure 2. A Client chunks an input stream,
// encrypts the chunks under a configurable MLE scheme (optionally with the
// paper's segment scrambling and MinHash encryption defenses), uploads the
// ciphertext chunks to a Store that deduplicates them into containers, and
// keeps a sealed recipe from which the original file is restored — in the
// original order, even when scrambling reordered the stored stream.
//
// # Concurrency model
//
// The engine is built for many clients hammering one store at once, the
// multi-client architecture of the paper's Figure 2:
//
//   - Store is lock-striped. The fingerprint index and the container
//     packer are split into N shards (NewStoreWithShards; NewStore picks
//     DefaultShards) keyed by fingerprint prefix (fphash.Fingerprint.Shard).
//     Put/Get lock only the owning shard; PutBatch groups a batch by shard
//     and locks each shard once. Each shard has its own open container, so
//     container packing is append-safe under concurrent writers without a
//     global packer lock.
//   - Client.Backup is a bounded streaming pipeline. A producer goroutine
//     runs the content-defined chunker (batch Rabin scanning over a fixed
//     lookahead buffer, plaintext SHA-256 deferred out of the serial path)
//     and feeds a bounded channel; the consumer gathers fixed windows and
//     fans each out to Config.Workers goroutines that derive keys, encrypt
//     (AES-256-CTR, the hot path), and fingerprint ciphertexts, then
//     uploads the window with one PutBatch and releases the plaintext
//     buffers to the chunker pool. Resident plaintext is bounded by the
//     queue depth plus one window, regardless of stream length.
//   - Scrambling and MinHash encryption need whole-stream segmentation
//     (the segment divisor depends on the stream's mean chunk size), so
//     those configurations buffer the chunk list and fix the upload plan
//     up front on one goroutine, then run the same windowed fan-out over
//     the plan.
//   - Client.Restore is a container-granular parallel pipeline. The
//     recipe is planned into container read batches (maximal runs of
//     adjacent chunks stored in the same container); Config.Workers
//     goroutines fetch each batch's container — through an LRU container
//     cache bounded by Config.RestoreCacheContainers — and decrypt into
//     pooled buffers; an in-order writer reassembles the stream,
//     returning each buffer to the pool as it is written. With one
//     worker and no cache the serial chunk-at-a-time path runs instead.
//     On any failure the pipeline drains: every in-flight pooled buffer
//     is handed back, mirroring Backup's drain-on-error contract.
//   - Retention (RegisterBackup / DeleteBackup / GC, see gc.go) is
//     store-level under its own lock; GC additionally takes every shard
//     lock in index order, the package's global lock order.
//   - Cancellation. BackupContext, RestoreContext, and GCContext thread a
//     context through every pipeline: the backup consumer returns
//     promptly even while the producer is parked in a stalled Read, the
//     worker fan-outs stop between items, and the GC sweep stops between
//     shards (already-swept shards keep their atomic rewrites). A
//     cancelled pipeline drains exactly like a failed one — every pooled
//     buffer is handed back before the ctx.Err() return.
//
// # Persistence
//
// Sealed containers live behind a pluggable container.Backend. The
// default is in-memory (NewStore / NewStoreWithShards); Create / Open /
// NewStoreWithBackend run the same engine over per-shard append-only
// files (container.FileBackend) so the store survives process restarts.
// The durability boundary is the container seal: a sealed container is
// fsynced before the seal is acknowledged, Close seals the open
// containers on shutdown, and Open rebuilds the fingerprint index from
// the files' index headers without reading chunk data. GC compacts
// through the backend — each shard's rewrite is atomic (fresh file,
// rename over). Reads of damaged files fail with container.ErrCorrupt
// (records carry CRCs); they never return wrong bytes.
//
// Retention state, by contrast, is process-local: a reopened Store holds
// no registrations, and its documented "unregistered = unreferenced" GC
// rule reclaims everything. The snapshot Catalog (catalog.go) is the
// durable complement — an append-only, CRC-protected, torn-tail-recovering
// log of sealed snapshot recipes beside the container files, from which
// the freqdedup.Repository front door rebuilds the registrations on open.
//
// # Invariants
//
// The concurrency is strictly a wall-clock optimization; results are
// deterministic:
//
//   - A fingerprint is owned by exactly one shard, so dedup decisions are
//     exact regardless of shard count, and dedup statistics (Stats) are
//     identical for every shard count.
//   - Recipes returned by Backup are bit-for-bit independent of
//     Config.Workers: encryption is deterministic MLE and every result is
//     slotted by plan position, not completion order.
//   - With a single shard (NewStoreWithShards(n, 1)) and any worker count,
//     chunk placement — container IDs, entry order, sealing boundaries —
//     is bit-for-bit identical to the original serial engine.
//   - Restore output is byte-identical to the serial restore for every
//     encryption/defense mode at every worker count and cache size, and
//     a file-backed store reopened with Open restores the same bytes.
//   - A Store is safe for concurrent use; a Client is not (its scrambling
//     RNG is stateful). Run one Client per goroutine.
package dedup
