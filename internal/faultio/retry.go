package faultio

import (
	"errors"
	"math/rand"
	"time"

	"freqdedup/internal/container"
)

// RetryPolicy configures a RetryBackend.
type RetryPolicy struct {
	// MaxRetries is how many times a failed operation is retried beyond
	// the first attempt (default 3).
	MaxRetries int
	// BaseDelay is the first retry's backoff (default 10ms); each further
	// retry doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 1s).
	MaxDelay time.Duration
	// Seed feeds the jitter's private rand.Rand, so retry schedules are
	// reproducible. A zero seed is used as-is.
	Seed int64
	// Sleep is called to wait out each backoff (time.Sleep if nil) — a
	// test hook, so retry tests assert the schedule instead of living it.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = time.Second
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// RetryBackend wraps a container.Backend with an exponential-backoff
// retry loop, the policy a network backend (ROADMAP item 1) inherits for
// free. Each failed operation is classified:
//
//   - Permanent: container.ErrCorrupt, container.ErrNotFound,
//     container.ErrSalvaged, ErrCrashed, or any error marked
//     non-transient via a `Transient() bool` implementation. Retrying
//     cannot help — the data is damaged, absent, or the machine is gone
//     — so the error returns immediately.
//   - Transient: everything else (I/O flakes, injected faults marked
//     transient, timeouts). The operation is retried MaxRetries times
//     with exponential backoff and seeded full jitter (each wait is a
//     uniform draw from (0, backoff]), then the last error returns.
//
// Scan is retried as a whole only if its callback was never reached
// (fn invocations must not repeat); once fn has run, errors return
// unretried.
type RetryBackend struct {
	inner  container.Backend
	policy RetryPolicy
	rng    *rand.Rand
	// Retries counts retry sleeps performed, for observability in tests
	// and the soak harness. Read it only after operations quiesce.
	Retries int64
}

// NewRetryBackend wraps inner with the retry policy.
func NewRetryBackend(inner container.Backend, policy RetryPolicy) *RetryBackend {
	p := policy.withDefaults()
	return &RetryBackend{inner: inner, policy: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Permanent reports whether err is hopeless to retry.
func Permanent(err error) bool {
	if errors.Is(err, container.ErrCorrupt) ||
		errors.Is(err, container.ErrNotFound) ||
		errors.Is(err, container.ErrSalvaged) ||
		errors.Is(err, ErrCrashed) {
		return true
	}
	// An explicit transient marking decides either way.
	for e := err; e != nil; e = errors.Unwrap(e) {
		if t, ok := e.(interface{ Transient() bool }); ok {
			return !t.Transient()
		}
	}
	return false
}

// retry runs op with the backend's policy.
func (b *RetryBackend) retry(op func() error) error {
	backoff := b.policy.BaseDelay
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || Permanent(err) || attempt >= b.policy.MaxRetries {
			return err
		}
		// Full jitter: a uniform draw from (0, backoff] from the seeded
		// rand, so concurrent retriers spread out deterministically per
		// seed.
		wait := time.Duration(b.rng.Int63n(int64(backoff))) + 1
		b.Retries++
		b.policy.Sleep(wait)
		if backoff < b.policy.MaxDelay {
			backoff *= 2
			if backoff > b.policy.MaxDelay {
				backoff = b.policy.MaxDelay
			}
		}
	}
}

// Seal implements container.Backend.
func (b *RetryBackend) Seal(shard int, c *container.Container) error {
	return b.retry(func() error { return b.inner.Seal(shard, c) })
}

// Load implements container.Backend.
func (b *RetryBackend) Load(shard, id int) (*container.Container, error) {
	var out *container.Container
	err := b.retry(func() error {
		c, err := b.inner.Load(shard, id)
		out = c
		return err
	})
	return out, err
}

// Scan implements container.Backend. A scan whose callback has already
// run is not retried: the caller would observe duplicate containers.
func (b *RetryBackend) Scan(shard int, withData bool, fn func(*container.Container) error) error {
	reached := false
	return b.retry(func() error {
		if reached {
			return nil
		}
		err := b.inner.Scan(shard, withData, func(c *container.Container) error {
			reached = true
			return fn(c)
		})
		if err != nil && reached {
			// Not retryable anymore; disguise as permanent by returning
			// through a non-transient marker.
			return permanentErr{err}
		}
		return err
	})
}

// permanentErr marks an error non-retryable without changing its chain.
type permanentErr struct{ err error }

func (p permanentErr) Error() string   { return p.err.Error() }
func (p permanentErr) Unwrap() error   { return p.err }
func (p permanentErr) Transient() bool { return false }

// Rewrite implements container.Backend.
func (b *RetryBackend) Rewrite(shard int, cs []*container.Container) error {
	return b.retry(func() error { return b.inner.Rewrite(shard, cs) })
}

// Shards implements container.Backend.
func (b *RetryBackend) Shards() int { return b.inner.Shards() }

// Close implements container.Backend; never retried.
func (b *RetryBackend) Close() error { return b.inner.Close() }
