package mle

import (
	"bytes"
	"fmt"
	"testing"
)

// candidateSet builds a predictable-chunk universe (e.g. a form letter
// with an enumerable field, the classic MLE counterexample).
func candidateSet(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("employee salary record: %06d", i))
	}
	return out
}

func TestBruteForceBreaksConvergentEncryption(t *testing.T) {
	candidates := candidateSet(1000)
	secret := candidates[737]
	ct, _ := Convergent{}.Encrypt(secret)

	got, ok := BruteForce(candidates, ct)
	if !ok {
		t.Fatal("brute force failed on a predictable chunk")
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("brute force recovered the wrong plaintext")
	}
}

func TestBruteForceNoMatch(t *testing.T) {
	candidates := candidateSet(100)
	ct, _ := Convergent{}.Encrypt([]byte("a chunk outside the candidate set"))
	if _, ok := BruteForce(candidates, ct); ok {
		t.Fatal("brute force claimed a match for an out-of-set chunk")
	}
}

func TestBruteForceDefeatedByServerAidedMLE(t *testing.T) {
	// Under server-aided MLE the key depends on the key manager's secret;
	// an adversary re-deriving keys with the public convergent derivation
	// (which is all it can do offline) finds nothing.
	candidates := candidateSet(1000)
	secret := candidates[42]
	scheme := NewServerAided(NewLocalDeriver([]byte("key manager's hidden secret")))
	ct, _, err := scheme.Encrypt(secret)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := BruteForce(candidates, ct); ok {
		t.Fatal("offline brute force should not succeed against server-aided MLE")
	}
}

func BenchmarkBruteForce1000(b *testing.B) {
	candidates := candidateSet(1000)
	ct, _ := Convergent{}.Encrypt(candidates[999])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := BruteForce(candidates, ct); !ok {
			b.Fatal("miss")
		}
	}
}
