package dedup

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"freqdedup/internal/chunker"
	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
)

func randData(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// mutate returns a copy of data with a contiguous region rewritten,
// mimicking a backup version change.
func mutate(data []byte, seed int64) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	rng := rand.New(rand.NewSource(seed))
	start := len(out) / 3
	for i := 0; i < len(out)/50; i++ {
		out[start+i] = byte(rng.Intn(256))
	}
	return out
}

func TestStorePutGet(t *testing.T) {
	s := NewStore(0)
	data := []byte("chunk data")
	fp := fphash.FromBytes(data)
	if dup, err := s.Put(fp, data); dup || err != nil {
		t.Fatalf("first Put = %v, %v", dup, err)
	}
	if dup, err := s.Put(fp, data); !dup || err != nil {
		t.Fatalf("second Put = %v, %v, want deduplicated", dup, err)
	}
	got, err := s.Get(fp)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get returned wrong data (%v)", err)
	}
	st := s.Stats()
	if st.LogicalChunks != 2 || st.UniqueChunks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LogicalBytes != 2*uint64(len(data)) || st.PhysicalBytes != uint64(len(data)) {
		t.Fatalf("byte stats = %+v", st)
	}
}

func TestStorePutCopiesData(t *testing.T) {
	s := NewStore(0)
	data := []byte("mutable buffer")
	fp := fphash.FromBytes(data)
	if _, err := s.Put(fp, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	got, _ := s.Get(fp)
	if got[0] == 'X' {
		t.Fatal("store aliased caller's buffer")
	}
}

func backupRestore(t *testing.T, cfg Config, data []byte) (*Store, *mle.Recipe) {
	t.Helper()
	store := NewStore(0)
	client, err := NewClient(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recipe, err := client.Backup(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := client.Restore(recipe, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("restored data differs from original")
	}
	return store, recipe
}

func TestConvergentBackupRestore(t *testing.T) {
	data := randData(1, 1<<20)
	store, recipe := backupRestore(t, Config{}, data)
	if recipe.TotalSize() != uint64(len(data)) {
		t.Fatalf("recipe size %d, want %d", recipe.TotalSize(), len(data))
	}
	if store.UniqueChunks() == 0 {
		t.Fatal("nothing stored")
	}
}

func TestServerAidedBackupRestore(t *testing.T) {
	cfg := Config{
		Encryption: EncServerAided,
		Deriver:    mle.NewLocalDeriver([]byte("system secret")),
	}
	backupRestore(t, cfg, randData(2, 1<<20))
}

func TestMinHashBackupRestore(t *testing.T) {
	cfg := Config{
		Encryption: EncMinHash,
		Deriver:    mle.NewLocalDeriver([]byte("system secret")),
	}
	backupRestore(t, cfg, randData(3, 1<<20))
}

func TestScrambledBackupRestore(t *testing.T) {
	cfg := Config{
		Encryption:   EncMinHash,
		Deriver:      mle.NewLocalDeriver([]byte("system secret")),
		Scramble:     true,
		ScrambleSeed: 7,
	}
	backupRestore(t, cfg, randData(4, 1<<20))
}

func TestCrossVersionDedup(t *testing.T) {
	// Two versions of the same data deduplicate heavily under convergent
	// encryption.
	store := NewStore(0)
	client, err := NewClient(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	v1 := randData(5, 1<<20)
	v2 := mutate(v1, 6)
	if _, err := client.Backup(bytes.NewReader(v1)); err != nil {
		t.Fatal(err)
	}
	before := store.Stats().PhysicalBytes
	if _, err := client.Backup(bytes.NewReader(v2)); err != nil {
		t.Fatal(err)
	}
	after := store.Stats().PhysicalBytes
	added := after - before
	if added > uint64(len(v2))/4 {
		t.Fatalf("second version added %d bytes physical, expected heavy dedup", added)
	}
}

func TestMinHashDedupSlightlyWorse(t *testing.T) {
	// MinHash encryption must preserve most but not necessarily all of the
	// dedup that convergent encryption achieves (Section 6.1).
	run := func(enc Encryption) uint64 {
		store := NewStore(0)
		cfg := Config{Encryption: enc}
		if enc != EncConvergent {
			cfg.Deriver = mle.NewLocalDeriver([]byte("s"))
		}
		client, err := NewClient(store, cfg)
		if err != nil {
			t.Fatal(err)
		}
		v1 := randData(7, 2<<20)
		for _, v := range [][]byte{v1, mutate(v1, 8), mutate(mutate(v1, 8), 9)} {
			if _, err := client.Backup(bytes.NewReader(v)); err != nil {
				t.Fatal(err)
			}
		}
		return store.Stats().PhysicalBytes
	}
	conv := run(EncConvergent)
	minh := run(EncMinHash)
	if minh < conv {
		t.Fatalf("MinHash stored less than exact dedup: %d < %d", minh, conv)
	}
	if float64(minh) > float64(conv)*1.25 {
		t.Fatalf("MinHash overhead too large: %d vs %d physical bytes", minh, conv)
	}
}

func TestTwoClientsDeduplicateSharedData(t *testing.T) {
	// Cross-user dedup: the whole point of MLE (Figure 2's multi-client
	// architecture).
	store := NewStore(0)
	a, err := NewClient(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewClient(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := randData(10, 1<<20)
	if _, err := a.Backup(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	before := store.Stats().PhysicalBytes
	recipeB, err := b.Backup(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if store.Stats().PhysicalBytes != before {
		t.Fatal("identical data from second client was not fully deduplicated")
	}
	var out bytes.Buffer
	if err := b.Restore(recipeB, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("second client restore failed")
	}
}

func TestRecipeSealedRoundTrip(t *testing.T) {
	store := NewStore(0)
	client, err := NewClient(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := randData(11, 256<<10)
	recipe, err := client.Backup(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var userKey mle.Key
	userKey[3] = 9
	sealed, err := recipe.Seal(userKey)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := mle.OpenRecipe(sealed, userKey)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := client.Restore(opened, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("restore from sealed recipe failed")
	}
}

func TestNewClientValidation(t *testing.T) {
	store := NewStore(0)
	if _, err := NewClient(nil, Config{}); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := NewClient(store, Config{Encryption: EncServerAided}); err == nil {
		t.Fatal("server-aided without deriver accepted")
	}
	if _, err := NewClient(store, Config{Encryption: EncMinHash}); err == nil {
		t.Fatal("minhash without deriver accepted")
	}
	if _, err := NewClient(store, Config{Encryption: Encryption(99)}); err == nil {
		t.Fatal("unknown encryption accepted")
	}
	bad := chunker.DefaultParams()
	bad.Avg = 12345 // not a power of two
	if _, err := NewClient(store, Config{Chunking: bad}); err == nil {
		t.Fatal("invalid chunking accepted")
	}
}

func TestEmptyBackup(t *testing.T) {
	store := NewStore(0)
	client, err := NewClient(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	recipe, err := client.Backup(bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(recipe.Entries) != 0 {
		t.Fatal("empty input produced recipe entries")
	}
	var out bytes.Buffer
	if err := client.Restore(recipe, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatal("empty restore produced data")
	}
}

func TestRestoreMissingChunk(t *testing.T) {
	store := NewStore(0)
	client, err := NewClient(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	recipe := &mle.Recipe{Entries: []mle.RecipeEntry{{
		Fingerprint: fphash.FromUint64(404),
		Size:        10,
	}}}
	var out bytes.Buffer
	if err := client.Restore(recipe, &out); err == nil {
		t.Fatal("restore with missing chunk should fail")
	}
}

func TestConcurrentClientsSharedStore(t *testing.T) {
	store := NewStore(0)
	shared := randData(50, 512<<10)
	const clients = 8
	errs := make(chan error, clients)
	done := make(chan struct{}, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			client, err := NewClient(store, Config{ScrambleSeed: int64(i + 1)})
			if err != nil {
				errs <- err
				return
			}
			// Everyone uploads the shared data plus a private tail.
			data := append(append([]byte(nil), shared...), randData(int64(60+i), 64<<10)...)
			recipe, err := client.Backup(bytes.NewReader(data))
			if err != nil {
				errs <- err
				return
			}
			var out bytes.Buffer
			if err := client.Restore(recipe, &out); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(out.Bytes(), data) {
				errs <- fmt.Errorf("client %d restore mismatch", i)
			}
		}(i)
	}
	for i := 0; i < clients; i++ {
		<-done
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The shared prefix must have deduplicated across clients: physical
	// bytes should be far below clients * len(data).
	st := store.Stats()
	if st.PhysicalBytes > uint64(len(shared))+uint64(clients)*(80<<10)+(64<<10) {
		t.Fatalf("cross-client dedup ineffective: physical = %d", st.PhysicalBytes)
	}
}
