package chunker

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"freqdedup/internal/fphash"
)

// MultiGear chunks one input stream across several workers and emits the
// exact serial Gear chunk sequence. It exploits the gear hash's fixed
// 64-byte window: the hash value at any stream position is a pure
// function of the trailing 64 bytes, independent of where the governing
// chunk started (once the chunk is at least 64 bytes old — hence the
// Min >= 64 requirement). Workers therefore compute boundary-match
// positions over disjoint segments with no chain dependency, and a cheap
// serial stitcher walks the cut chain — next cut after c is the first
// match in [c+Min, c+Max), else the forced cut at c+Max — which is
// bit-identical to the serial scan at any worker count or segment size.
//
// Chunks carry the same pooled-buffer ownership contract as the serial
// chunkers. The consumer must not call Next concurrently, and should
// call Close when abandoning the stream before io.EOF so the pipeline's
// goroutines and pooled segment buffers are reclaimed; after a full
// drain Close is optional (everything has already wound down).
type MultiGear struct {
	p         Params
	out       chan gearOut
	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	finalErr  error // sticky terminal error, returned after out closes
}

var _ Chunker = (*MultiGear)(nil)

// gearOut is one stitched result: a chunk, or the stream's terminal
// error (io.EOF is represented by closing the channel instead).
type gearOut struct {
	ch  Chunk
	err error
}

// gearSeg is one segment job: data to scan for boundary matches, plus
// the up-to-63 stream bytes preceding it so the worker can roll the full
// gear window over the segment's earliest positions. A segment with nil
// data carries the stream's terminal read error instead.
type gearSeg struct {
	data []byte // pooled; released by the stitcher
	pre  []byte // copy of the preceding window tail; worker-owned
	base int64  // stream offset of data[0]
	res  chan []int64
	err  error // terminal read error (data == nil)
}

// multiGearMinSeg keeps segments large enough that stitching and
// channel traffic stay negligible next to the hash scan.
const multiGearMinSeg = 1 << 20

// NewMultiGear returns a multi-stream gear chunker reading from r with
// the given worker count (0 selects GOMAXPROCS). It requires
// p.Min >= 64: below the gear window the hash at candidate positions
// still depends on where the previous cut fell, so segments cannot be
// scanned independently — use the serial Gear chunker for such params.
func NewMultiGear(r io.Reader, p Params, workers int) (*MultiGear, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	segSize := multiGearMinSeg
	if segSize < 2*p.Max {
		segSize = 2 * p.Max
	}
	return newMultiGear(r, p, workers, segSize)
}

// newMultiGear is the test seam: a small segment size forces chunks to
// straddle segment boundaries on small inputs.
func newMultiGear(r io.Reader, p Params, workers, segSize int) (*MultiGear, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Min < gearWindow {
		return nil, fmt.Errorf("chunker: multi-stream gear needs Min >= %d, got %d", gearWindow, p.Min)
	}
	if workers < 1 || segSize < 1 {
		return nil, fmt.Errorf("chunker: need positive workers and segment size, got %d/%d", workers, segSize)
	}
	m := &MultiGear{
		p:    p,
		out:  make(chan gearOut, 16),
		stop: make(chan struct{}),
	}
	jobs := make(chan *gearSeg, workers)
	ordered := make(chan *gearSeg, workers+2)
	mask := gearMask(p.Avg)

	m.wg.Add(1)
	go m.read(r, segSize, jobs, ordered)
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.scan(jobs, mask)
	}
	m.wg.Add(1)
	go m.stitch(ordered)
	return m, nil
}

// read splits the stream into segments, remembering the trailing
// window bytes of each so the next segment's worker can seed its hash.
// A terminal read error travels down the ordered queue as a segment with
// nil data.
func (m *MultiGear) read(r io.Reader, segSize int, jobs, ordered chan<- *gearSeg) {
	defer m.wg.Done()
	defer close(jobs)
	defer close(ordered)
	var (
		tail []byte // last up-to-63 bytes of the previous segment
		base int64
	)
	for {
		buf := getBuf(segSize)
		n, err := io.ReadFull(r, buf)
		if n == 0 {
			putBuf(buf)
			if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				m.sendSeg(ordered, &gearSeg{err: err})
			}
			return
		}
		seg := &gearSeg{
			data: buf[:n],
			pre:  append([]byte(nil), tail...),
			base: base,
			res:  make(chan []int64, 1),
		}
		from := n - (gearWindow - 1)
		if from < 0 {
			from = 0
		}
		tail = append(tail, buf[from:n]...)
		if len(tail) > gearWindow-1 {
			tail = tail[len(tail)-(gearWindow-1):]
		}
		base += int64(n)
		if !m.sendSeg(jobs, seg) {
			// Closing before any worker saw the segment: reclaim it here.
			putBuf(buf)
			return
		}
		if !m.sendSeg(ordered, seg) {
			// A worker has (or will pick up) the job; wait for its result
			// before reclaiming the buffer it scans.
			<-seg.res
			putBuf(buf)
			return
		}
		if err != nil {
			// Stream exhausted (io.EOF / ErrUnexpectedEOF), or a real
			// error that arrived alongside the final partial read — the
			// partial segment was already dispatched; forward the error
			// behind it so delivered chunks stay exact.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				m.sendSeg(ordered, &gearSeg{err: err})
			}
			return
		}
	}
}

// sendSeg sends with cancellation; false means the pipeline is closing.
func (m *MultiGear) sendSeg(ch chan<- *gearSeg, seg *gearSeg) bool {
	select {
	case ch <- seg:
		return true
	case <-m.stop:
		return false
	}
}

// scan is the worker loop: for each segment, roll the gear hash over the
// preceding window tail and the segment, recording every absolute stream
// position p (p = bytes consumed) where h&mask == 0. Only positions at
// least gearWindow into the stream carry the full-window hash, but the
// stitcher never queries earlier ones (its candidates start at Min >=
// gearWindow), and within the first segment the short-history hash is
// exact anyway (the first chunk starts at offset 0).
func (m *MultiGear) scan(jobs <-chan *gearSeg, mask uint64) {
	defer m.wg.Done()
	for seg := range jobs {
		var h uint64
		for _, b := range seg.pre {
			h = h<<1 + gearTable[b]
		}
		var matches []int64
		base := seg.base
		for i, b := range seg.data {
			h = h<<1 + gearTable[b]
			if h&mask == 0 {
				matches = append(matches, base+int64(i)+1)
			}
		}
		seg.res <- matches
	}
}

// stitch walks the cut chain over the in-order segment results and emits
// chunks. State across segments: c, the last cut (absolute); carry, the
// bytes of the in-progress chunk that earlier segments contributed.
func (m *MultiGear) stitch(ordered <-chan *gearSeg) {
	defer m.wg.Done()
	defer close(m.out)
	var (
		c       int64 // last cut position
		carry   = make([]byte, 0, m.p.Max)
		min     = int64(m.p.Min)
		max     = int64(m.p.Max)
		end     int64 // stream end, known after the last segment
		aborted bool
	)
	emit := func(cut int64, segData []byte, segBase int64) bool {
		size := int(cut - c)
		buf := getBuf(size)
		n := copy(buf, carry)
		copy(buf[n:], segData[c+int64(n)-segBase:cut-segBase])
		carry = carry[:0]
		ch := Chunk{Data: buf, Offset: c}
		if !m.p.DeferFingerprint {
			ch.Fingerprint = fphash.FromBytes(buf)
		}
		select {
		case m.out <- gearOut{ch: ch}:
			c = cut
			return true
		case <-m.stop:
			putBuf(buf)
			return false
		}
	}
	for seg := range ordered {
		if aborted {
			if seg.data != nil {
				<-seg.res // wait out the worker before reclaiming
				putBuf(seg.data)
			}
			continue
		}
		if seg.data == nil {
			// Terminal read error from the reader.
			select {
			case m.out <- gearOut{err: fmt.Errorf("chunker: read: %w", seg.err)}:
			case <-m.stop:
			}
			aborted = true
			continue
		}
		matches := <-seg.res
		segEnd := seg.base + int64(len(seg.data))
		end = segEnd
		mi := 0
		for {
			// Advance past matches inside the current chunk's Min region.
			for mi < len(matches) && matches[mi] < c+min {
				mi++
			}
			hi := c + max // forced cut
			if mi < len(matches) && matches[mi] < hi {
				if !emit(matches[mi], seg.data, seg.base) {
					aborted = true
					break
				}
				continue
			}
			if hi <= segEnd {
				if !emit(hi, seg.data, seg.base) {
					aborted = true
					break
				}
				continue
			}
			// The next cut is not decidable within this segment: bank the
			// unchunked suffix and move on.
			from := c
			if from < seg.base {
				from = seg.base
			}
			carry = append(carry, seg.data[from-seg.base:]...)
			break
		}
		putBuf(seg.data)
	}
	if aborted {
		return
	}
	// Stream exhausted: flush the remainder. No matches are left over (a
	// segment's scan loop only exits once its match list is consumed), so
	// the remainder splits into forced Max cuts plus a trailing partial.
	for c < end {
		cut := c + max
		if cut > end {
			cut = end
		}
		size := int(cut - c)
		buf := getBuf(size)
		copy(buf, carry[:size])
		carry = carry[:copy(carry, carry[size:])]
		ch := Chunk{Data: buf, Offset: c}
		if !m.p.DeferFingerprint {
			ch.Fingerprint = fphash.FromBytes(buf)
		}
		select {
		case m.out <- gearOut{ch: ch}:
			c = cut
		case <-m.stop:
			putBuf(buf)
			return
		}
	}
}

// Next implements Chunker.
func (m *MultiGear) Next() (Chunk, error) {
	o, ok := <-m.out
	if !ok {
		if m.finalErr != nil {
			return Chunk{}, m.finalErr
		}
		return Chunk{}, io.EOF
	}
	if o.err != nil {
		m.finalErr = o.err
		return Chunk{}, o.err
	}
	return o.ch, nil
}

// Close tears the pipeline down: it cancels the goroutines, reclaims
// every in-flight pooled buffer (segments and undelivered chunks), and
// waits for the workers to exit. It is idempotent and safe after a full
// drain; it must not race a concurrent Next (single-consumer contract).
func (m *MultiGear) Close() error {
	m.closeOnce.Do(func() { close(m.stop) })
	for o := range m.out {
		if o.err == nil {
			o.ch.Release()
		}
	}
	m.wg.Wait()
	return nil
}
