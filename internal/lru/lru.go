// Package lru provides a least-recently-used cache keyed by chunk
// fingerprints, used as the in-memory fingerprint cache of the DDFS-like
// prototype (Section 7.4, steps S1 and S4): when the cache is full, the
// least-recently-used entries are evicted.
//
// The cache tracks an abstract byte cost per entry so it can be bounded by
// total metadata bytes (the paper bounds the fingerprint cache at 512 MB or
// 4 GB of 32-byte metadata entries) rather than by entry count.
package lru

import (
	"container/list"

	"freqdedup/internal/fphash"
)

// Cache is a byte-bounded LRU cache. The zero value is not usable;
// construct with New.
type Cache[V any] struct {
	capacity  uint64 // max total bytes; 0 means unbounded
	used      uint64
	ll        *list.List
	items     map[fphash.Fingerprint]*list.Element
	onEvict   func(fphash.Fingerprint, V)
	hits      uint64
	misses    uint64
	evictions uint64
}

type entry[V any] struct {
	key  fphash.Fingerprint
	val  V
	cost uint64
}

// New creates a cache bounded at capacity bytes. capacity == 0 means
// unbounded. onEvict, if non-nil, is called for each evicted entry.
func New[V any](capacity uint64, onEvict func(fphash.Fingerprint, V)) *Cache[V] {
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[fphash.Fingerprint]*list.Element),
		onEvict:  onEvict,
	}
}

// Get looks up a fingerprint, marking it most recently used on a hit.
func (c *Cache[V]) Get(key fphash.Fingerprint) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Contains reports whether the key is cached without updating recency or
// hit statistics.
func (c *Cache[V]) Contains(key fphash.Fingerprint) bool {
	_, ok := c.items[key]
	return ok
}

// Put inserts or updates an entry with the given byte cost and evicts
// least-recently-used entries until the cache fits its capacity. A single
// entry larger than the whole capacity is not admitted.
func (c *Cache[V]) Put(key fphash.Fingerprint, val V, cost uint64) {
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry[V])
		c.used -= e.cost
		e.val, e.cost = val, cost
		c.used += cost
		c.ll.MoveToFront(el)
		c.evict()
		return
	}
	if c.capacity != 0 && cost > c.capacity {
		return
	}
	el := c.ll.PushFront(&entry[V]{key: key, val: val, cost: cost})
	c.items[key] = el
	c.used += cost
	c.evict()
}

func (c *Cache[V]) evict() {
	if c.capacity == 0 {
		return
	}
	for c.used > c.capacity {
		el := c.ll.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry[V])
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.used -= e.cost
		c.evictions++
		if c.onEvict != nil {
			c.onEvict(e.key, e.val)
		}
	}
}

// Remove deletes a key if present, returning whether it was cached.
func (c *Cache[V]) Remove(key fphash.Fingerprint) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	e := el.Value.(*entry[V])
	c.ll.Remove(el)
	delete(c.items, key)
	c.used -= e.cost
	return true
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int { return len(c.items) }

// Used returns the total byte cost of cached entries.
func (c *Cache[V]) Used() uint64 { return c.used }

// Capacity returns the configured byte capacity (0 = unbounded).
func (c *Cache[V]) Capacity() uint64 { return c.capacity }

// Stats returns cumulative hit, miss, and eviction counts.
func (c *Cache[V]) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}

// Clear empties the cache without invoking eviction callbacks.
func (c *Cache[V]) Clear() {
	c.ll.Init()
	c.items = make(map[fphash.Fingerprint]*list.Element)
	c.used = 0
}
