package freqdedup

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestRepositoryPersistentIndex walks the repository lifecycle with the
// persistent fingerprint index: create with WithIndex(IndexPersistent),
// back up, close, reopen WITHOUT the option (the fpindex directory on
// disk must re-select persistent mode), then restore, delete, and GC —
// the layout-change path that rewrites every run file.
func TestRepositoryPersistentIndex(t *testing.T) {
	dir := t.TempDir()
	var key Key
	copy(key[:], "persistent index key")

	v1 := repoData(41, 2<<20)
	v2 := repoMutate(v1, 42)

	repo, err := CreateRepository(dir,
		WithRepositoryKey(key),
		WithContainerBytes(256<<10),
		WithIndex(IndexPersistent))
	if err != nil {
		t.Fatal(err)
	}
	s1 := mustBackup(t, repo, "mon", v1)
	mustBackup(t, repo, "tue", v2)
	if s1.Chunks == 0 {
		t.Fatalf("snapshot metadata wrong: %+v", s1)
	}
	// The second backup shares most chunks with the first; that dedup
	// ratio is the proof the index answered lookups, not just inserts.
	st := repo.Stats()
	if st.PhysicalBytes >= st.LogicalBytes {
		t.Fatalf("no dedup through persistent index: physical %d >= logical %d",
			st.PhysicalBytes, st.LogicalBytes)
	}
	mustRestore(t, repo, "mon", v1)
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, IndexDirName)); err != nil {
		t.Fatalf("no %s directory after persistent-index Close: %v", IndexDirName, err)
	}

	// Reopen with a plain OpenRepository: the on-disk index directory is
	// sticky, so persistent mode resumes without the option.
	repo, err = OpenRepository(dir, WithRepositoryKey(key))
	if err != nil {
		t.Fatal(err)
	}
	mustRestore(t, repo, "mon", v1)
	mustRestore(t, repo, "tue", v2)
	if err := repo.Verify(context.Background()); err != nil {
		t.Fatalf("Verify after reopen: %v", err)
	}
	// A third generation must still dedup against the reopened index.
	before := repo.Stats().PhysicalBytes
	mustBackup(t, repo, "wed", v1)
	if after := repo.Stats().PhysicalBytes; after != before {
		t.Fatalf("re-backup of identical data grew the store: %d -> %d", before, after)
	}

	// Delete + GC exercises the index layout-change protocol (containers
	// renumber, every surviving location is rewritten).
	if err := repo.Delete(context.Background(), "tue"); err != nil {
		t.Fatal(err)
	}
	gc, err := repo.GC(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gc.ChunksReclaimed == 0 {
		t.Fatal("GC reclaimed nothing after deleting a snapshot with unique chunks")
	}
	mustRestore(t, repo, "mon", v1)
	mustRestore(t, repo, "wed", v1)
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	// And once more after GC: the rebuilt index must survive a reopen.
	repo, err = OpenRepository(dir, WithRepositoryKey(key))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	mustRestore(t, repo, "mon", v1)
	mustRestore(t, repo, "wed", v1)
	if err := repo.Verify(context.Background()); err != nil {
		t.Fatalf("Verify after GC and reopen: %v", err)
	}
}

// TestRepositoryPersistentIndexCrashReopen kills the repository without
// Close — the index never flushes — and reopens: every chunk must come
// back through the container tail scan, and the torn catalog tail must
// not confuse the lazy retention rebuild (GC after reopen reclaims
// nothing while every snapshot is live).
func TestRepositoryPersistentIndexCrashReopen(t *testing.T) {
	dir := t.TempDir()
	var key Key
	copy(key[:], "persistent crash key")

	v1 := repoData(51, 1<<20)
	v2 := repoMutate(v1, 52)

	repo, err := CreateRepository(dir,
		WithRepositoryKey(key),
		WithContainerBytes(128<<10),
		WithIndex(IndexPersistent))
	if err != nil {
		t.Fatal(err)
	}
	mustBackup(t, repo, "a", v1)
	mustBackup(t, repo, "b", v2)
	// Crash: drop the repository on the floor. Backup's group commit has
	// already made both snapshots durable; the index flush never runs.
	repo = nil

	repo, err = OpenRepository(dir, WithRepositoryKey(key))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	if snaps := repo.Snapshots(); len(snaps) != 2 {
		t.Fatalf("Snapshots() after crash-reopen = %+v", snaps)
	}
	gc, err := repo.GC(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gc.ChunksReclaimed != 0 {
		t.Fatalf("GC after crash-reopen reclaimed %d chunks with every snapshot live", gc.ChunksReclaimed)
	}
	mustRestore(t, repo, "a", v1)
	mustRestore(t, repo, "b", v2)
}

// TestRepositoryPersistentIndexRequiresPath documents that persistent
// mode needs a real repository directory: an in-memory repository cannot
// host run files.
func TestRepositoryPersistentIndexRequiresPath(t *testing.T) {
	var key Key
	copy(key[:], "memory no index key")
	_, err := CreateRepository("", WithRepositoryKey(key), WithIndex(IndexPersistent))
	if err == nil {
		t.Fatal("CreateRepository(\"\") with IndexPersistent succeeded")
	}
}
