// Quickstart: the full byte-level encrypted-deduplication system of
// Figure 2 through its front door — create a repository, back up two
// versions of the same data (most chunks deduplicate), survive a process
// "restart", expire a snapshot, garbage-collect, and restore bit-for-bit.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	"freqdedup"
)

func main() {
	dir, err := os.MkdirTemp("", "freqdedup-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	// Recipes are sealed under the user's own key before they touch disk
	// (Section 3.3: metadata is conventionally encrypted). The same key
	// reopens the repository.
	var userKey freqdedup.Key
	copy(userKey[:], "the user's own secret key......")

	repo, err := freqdedup.CreateRepository(dir, freqdedup.WithRepositoryKey(userKey))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repository created at %s\n", dir)

	// First backup: 4 MB of pseudo-random "primary data".
	v1 := make([]byte, 4<<20)
	rng := rand.New(rand.NewSource(1))
	for i := range v1 {
		v1[i] = byte(rng.Intn(256))
	}
	s1, err := repo.Backup(ctx, "monday", bytes.NewReader(v1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backup %q: %d chunks, %.1f MB logical\n",
		s1.Name, s1.Chunks, float64(s1.LogicalBytes)/(1<<20))

	// Second backup: the same data with a small edit — most chunks
	// deduplicate against the first snapshot.
	v2 := append([]byte(nil), v1...)
	copy(v2[1<<20:], []byte("a small edit in the middle of the backup"))
	if _, err := repo.Backup(ctx, "tuesday", bytes.NewReader(v2)); err != nil {
		log.Fatal(err)
	}
	st := repo.Stats()
	fmt.Printf("backup \"tuesday\": %d logical chunks total, only %d physical (saving %.1f%%)\n",
		st.LogicalChunks, st.UniqueChunks, st.Saving()*100)

	// "Restart": close the repository and reopen it. The snapshot catalog
	// brings back the full snapshot list and every chunk reference.
	if err := repo.Close(); err != nil {
		log.Fatal(err)
	}
	repo, err = freqdedup.OpenRepository(dir, freqdedup.WithRepositoryKey(userKey))
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()
	fmt.Print("reopened; snapshots:")
	for _, s := range repo.Snapshots() {
		fmt.Printf(" %s(%d chunks)", s.Name, s.Chunks)
	}
	fmt.Println()
	if err := repo.Verify(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verify: every chunk checks out, every snapshot restorable")

	// Retention: expire tuesday and garbage-collect. Thanks to the
	// catalog, GC after a reopen reclaims only what nothing references.
	if err := repo.Delete(ctx, "tuesday"); err != nil {
		log.Fatal(err)
	}
	gc, err := repo.GC(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gc: reclaimed %d chunks (%.1f KB) after expiring \"tuesday\"\n",
		gc.ChunksReclaimed, float64(gc.BytesReclaimed)/1024)

	// Restore monday and check it bit-for-bit.
	var out bytes.Buffer
	if err := repo.Restore(ctx, "monday", &out); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), v1) {
		log.Fatal("restore mismatch")
	}
	fmt.Println("restore after gc: \"monday\" reconstructed bit-for-bit")
}
