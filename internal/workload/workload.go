package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"freqdedup/internal/trace"
)

// Config carries the scenario-independent generation knobs. The zero value
// selects laptop-scale defaults; withDefaults fills and validates them.
// Factories may interpret a knob loosely where the scenario demands it
// (e.g. the database workload forces a fixed-size chunk model when none is
// set), but every factory honors Seed/Rng, Backups, and TotalBytes.
type Config struct {
	// Seed seeds the generator's private random stream.
	Seed int64
	// Rng optionally injects the random source; it takes precedence over
	// Seed and lets a caller thread one randomness stream through several
	// generations. A *rand.Rand is not safe for concurrent use, so
	// concurrent generators need distinct Rng values (or Seeds).
	Rng *rand.Rand
	// Backups is the total number of backup generations, including the
	// initial one (default 6).
	Backups int
	// TotalBytes is the approximate logical size of the initial backup
	// across all users (default 24 MiB).
	TotalBytes int
	// MeanObjectBytes is the mean generated file/blob size (default 96 KiB).
	MeanObjectBytes int
	// Users is the number of parallel user streams; backup generation t is
	// the concatenation of every user's stream at time t. Zero keeps the
	// factory's own default (most single-stream scenarios use 1).
	Users int
	// Chunk is the chunk-size model. Zero keeps the factory's default
	// (the paper's 8 KB-average variable model for most scenarios).
	Chunk trace.ChunkSizeModel
}

// withDefaults fills unset knobs with laptop-scale defaults and validates
// the result.
func (c Config) withDefaults() (Config, error) {
	if c.Backups == 0 {
		c.Backups = 6
	}
	if c.Backups < 1 {
		return c, fmt.Errorf("workload: backup count %d < 1", c.Backups)
	}
	if c.TotalBytes == 0 {
		c.TotalBytes = 24 << 20
	}
	if c.TotalBytes < 1<<12 {
		return c, fmt.Errorf("workload: total size %d below one chunk (4096)", c.TotalBytes)
	}
	if c.MeanObjectBytes == 0 {
		c.MeanObjectBytes = 96 << 10
	}
	if c.MeanObjectBytes < 1<<10 {
		return c, fmt.Errorf("workload: mean object size %d below 1024", c.MeanObjectBytes)
	}
	if c.Users == 0 {
		c.Users = 1
	}
	if c.Users < 1 || c.Users > 256 {
		return c, fmt.Errorf("workload: user count %d out of range [1, 256]", c.Users)
	}
	if c.Chunk == (trace.ChunkSizeModel{}) {
		c.Chunk = trace.ChunkSizeModel{Min: 2048, Avg: 8192, Max: 16384, Quantum: 512}
	}
	if c.Chunk.Min < 1 || c.Chunk.Min > c.Chunk.Avg || c.Chunk.Avg > c.Chunk.Max {
		return c, fmt.Errorf("workload: chunk size model %+v not ordered 0 < Min <= Avg <= Max", c.Chunk)
	}
	return c, nil
}

// rng returns the configured random source: the injected Rng, or a fresh
// stream seeded from Seed.
func (c Config) rng() *rand.Rand {
	if c.Rng != nil {
		return c.Rng
	}
	return rand.New(rand.NewSource(c.Seed))
}

// Source generates one dataset. Sources returned by a Factory are
// single-use: Generate consumes the Config's randomness stream.
type Source interface {
	Generate() (*trace.Dataset, error)
}

// sourceFunc adapts a function to Source (used by the classic-generator
// adapters).
type sourceFunc func() (*trace.Dataset, error)

func (f sourceFunc) Generate() (*trace.Dataset, error) { return f() }

// Factory builds a Source for one Config.
type Factory func(cfg Config) (Source, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a named generator factory to the registry. Registering an
// empty name, a nil factory, or a name twice panics: registration runs
// from init functions, where a conflict is a programming error.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("workload: Register with empty name or nil factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workload: generator %q registered twice", name))
	}
	registry[name] = f
}

// Lookup resolves a registered generator factory. The error of an unknown
// name lists every available workload.
func Lookup(name string) (Factory, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (available: %s)",
			name, strings.Join(List(), ", "))
	}
	return f, nil
}

// List returns the registered workload names, sorted.
func List() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Generate looks up the named workload and generates its dataset.
func Generate(name string, cfg Config) (*trace.Dataset, error) {
	f, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	src, err := f(cfg)
	if err != nil {
		return nil, fmt.Errorf("workload %q: %w", name, err)
	}
	d, err := src.Generate()
	if err != nil {
		return nil, fmt.Errorf("workload %q: %w", name, err)
	}
	return d, nil
}

// Modifier is one composable transformation applied to the working state
// between backup generations. See the package documentation for the
// composition contract.
type Modifier interface {
	// Name identifies the modifier in diagnostics.
	Name() string
	// Apply advances the state from generation gen-1 to gen. All
	// randomness comes from st.Rng.
	Apply(st *State, gen int)
}

// Generator is the modifier-chain Source: an initial-state constructor
// plus an ordered modifier list applied once per generation.
type Generator struct {
	name string
	cfg  Config
	init func(st *State)
	mods []Modifier
}

// NewGenerator validates cfg and assembles a modifier-chain generator.
func NewGenerator(name string, cfg Config, init func(st *State), mods ...Modifier) (*Generator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if init == nil {
		return nil, fmt.Errorf("workload: generator %q has no initial-state constructor", name)
	}
	return &Generator{name: name, cfg: cfg, init: init, mods: mods}, nil
}

// Modifiers returns the names of the generator's modifier chain, in
// application order.
func (g *Generator) Modifiers() []string {
	out := make([]string, len(g.mods))
	for i, m := range g.mods {
		out[i] = m.Name()
	}
	return out
}

// Generate builds the dataset: generation 0 from the initial state, then
// one application of the full modifier chain per further generation.
func (g *Generator) Generate() (*trace.Dataset, error) {
	st := newState(g.cfg)
	g.init(st)
	d := &trace.Dataset{Name: g.name}
	d.Backups = append(d.Backups, st.Snapshot("0"))
	for gen := 1; gen < g.cfg.Backups; gen++ {
		for _, m := range g.mods {
			m.Apply(st, gen)
		}
		d.Backups = append(d.Backups, st.Snapshot(fmt.Sprintf("%d", gen)))
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
