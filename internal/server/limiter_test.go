package server

import (
	"testing"
	"time"
)

// fakeClock backs a byteLimiter with virtual time: sleeps advance the
// clock instead of blocking, so shaping math is tested exactly.
type fakeClock struct {
	t     time.Time
	slept time.Duration
}

func (c *fakeClock) now() time.Time { return c.t }
func (c *fakeClock) sleep(d time.Duration) {
	c.slept += d
	c.t = c.t.Add(d)
}

func newTestLimiter(rate float64, burst int) (*byteLimiter, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := &byteLimiter{rate: rate, burst: float64(burst), tokens: float64(burst), now: clk.now, sleep: clk.sleep}
	l.last = clk.t
	return l, clk
}

func TestLimiterBurstThenShapes(t *testing.T) {
	l, clk := newTestLimiter(1000, 500) // 1000 B/s, 500 B burst
	l.waitN(500)                        // within burst: no sleep
	if clk.slept != 0 {
		t.Fatalf("burst-sized request slept %v", clk.slept)
	}
	l.waitN(1000) // bucket empty: owes a full second
	if clk.slept != time.Second {
		t.Fatalf("slept %v, want 1s", clk.slept)
	}
}

func TestLimiterRefillsWithTime(t *testing.T) {
	l, clk := newTestLimiter(1000, 500)
	l.waitN(500)
	clk.t = clk.t.Add(250 * time.Millisecond) // refills 250 tokens
	l.waitN(250)
	if clk.slept != 0 {
		t.Fatalf("refilled request slept %v", clk.slept)
	}
	if l.tokens != 0 {
		t.Fatalf("tokens = %v, want 0", l.tokens)
	}
}

func TestLimiterCapsAtBurst(t *testing.T) {
	l, clk := newTestLimiter(1000, 500)
	clk.t = clk.t.Add(time.Hour) // refill far beyond capacity
	l.waitN(500)
	if clk.slept != 0 {
		t.Fatalf("slept %v after long idle", clk.slept)
	}
	l.waitN(100) // capacity capped at burst: this must owe sleep
	if clk.slept != 100*time.Millisecond {
		t.Fatalf("slept %v, want 100ms", clk.slept)
	}
}

func TestLimiterOversizedRequestGoesNegative(t *testing.T) {
	l, clk := newTestLimiter(1000, 100)
	l.waitN(1100) // 11x the burst: debt paid in sleep, no deadlock
	if clk.slept != time.Second {
		t.Fatalf("slept %v, want 1s", clk.slept)
	}
}

func TestLimiterNilAndZero(t *testing.T) {
	var l *byteLimiter
	l.waitN(1 << 20) // nil limiter is unlimited
	if got := newByteLimiter(0, 0); got != nil {
		t.Fatalf("rate 0 gave a limiter")
	}
	l2 := newByteLimiter(1<<20, 0)
	if l2.burst != 128<<10 {
		t.Fatalf("default burst = %v, want rate/8", l2.burst)
	}
	l3 := newByteLimiter(1, 0)
	if l3.burst != 64<<10 {
		t.Fatalf("default burst floor = %v, want 64KiB", l3.burst)
	}
}
