#!/bin/sh
# Benchmark baseline runner: runs the throughput-critical benchmark suite
# (backup pipeline, the multi-tenant server's loopback client sweep,
# restore pipeline with its container-cache sweep,
# sharded store, chunker, Rabin primitives, legacy and streaming attack
# engines — BenchmarkAttackStreaming's shard sweep and the trace-log
# ingest/replay MB/s — plus the per-workload trace generators,
# BenchmarkWorkloadGenerate) with -benchmem and writes the results as a dated
# JSON baseline (BENCH_<date>.json) for regression tracking across PRs.
#
#   scripts/bench.sh              # 10 pinned iterations per benchmark
#   BENCHTIME=1s scripts/bench.sh # time-based iteration count
#   BENCH_REPEAT=5 scripts/bench.sh # more repeats for the baseline floor
#
# The default is pinned (10x) rather than time-based so baselines live in
# the same measurement regime as cmd/benchgate's fresh runs — a 1s
# auto-tuned baseline is systematically warmer (hundreds of iterations)
# than a pinned run and would read as a phantom regression.
#
# Baseline runs execute the suite BENCH_REPEAT times (default 3) and keep,
# per benchmark, the run with the LOWEST MB/s. On shared/virtualized
# runners ambient throughput swings 2-3x within minutes; a single-sample
# baseline recorded at a fast moment turns every later quiet-machine gate
# run into a phantom regression. Recording the observed floor means the
# gate alarms only when throughput drops below the worst the baseline
# machine actually produced. Only the first repeat sets FPBENCH_10M: the
# 10M-chunk open points exist to document the flat-open claim, and their
# setup cost dominates the suite.
#   scripts/bench.sh --smoke      # one iteration each, no JSON (the
#                                 # `make check` / check.sh rot gate)
#
# This file is the single source of the tracked-benchmark pattern; the
# Makefile and scripts/check.sh run the smoke mode through it.
set -eu

cd "$(dirname "$0")/.."

PATTERN='BenchmarkBackup|BenchmarkServerBackup|BenchmarkRestoreSerial|BenchmarkRestoreParallel|BenchmarkStoreShards|BenchmarkRepositoryOpen|BenchmarkIndexLookup|BenchmarkChunker|BenchmarkRabin|BenchmarkContentDefined|BenchmarkFixed|BenchmarkBasicAttackFSL|BenchmarkLocalityAttackFSL|BenchmarkAdvancedAttackFSL|BenchmarkBasicAttackStreamFSL|BenchmarkLocalityAttackStreamFSL|BenchmarkAdvancedAttackStreamFSL|BenchmarkAttackStreaming|BenchmarkTraceLogIngest|BenchmarkTraceLogReplay|BenchmarkWorkloadGenerate'
PKGS='. ./internal/chunker ./internal/rabin ./internal/attack ./internal/tracelog ./internal/workload'

if [ "${1:-}" = "--smoke" ]; then
	smokelog="$(mktemp)"
	trap 'rm -f "$smokelog"' EXIT
	# -short keeps the index benchmarks at their 100k-chunk point; the
	# 1M/10M setup passes belong in baseline runs, not the rot gate.
	# shellcheck disable=SC2086
	if ! go test -run=NONE -bench "$PATTERN" -benchtime=1x -short $PKGS >"$smokelog" 2>&1; then
		cat "$smokelog"
		echo "bench smoke: FAILED"
		exit 1
	fi
	echo "bench smoke: OK"
	exit 0
fi

BENCHTIME="${BENCHTIME:-10x}"
date="$(date -u +%Y%m%d)"
out="BENCH_${date}.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Capture first and check the exit status — a pipeline into tee would
# report tee's status and let a failing benchmark write a bogus baseline.
# Baseline runs include the 10M-chunk repository-open point
# (FPBENCH_10M=1) and, when GNU time is available, the suite's peak RSS —
# the bounded-memory claim of the persistent index is only checkable if
# baselines record residency next to throughput.
rsslog="$(mktemp)"
trap 'rm -f "$tmp" "$rsslog"' EXIT
runner=""
if [ -x /usr/bin/time ] && /usr/bin/time -v true 2>/dev/null; then
	runner="/usr/bin/time -v -o $rsslog"
fi
BENCH_REPEAT="${BENCH_REPEAT:-3}"
# shellcheck disable=SC2086
if ! FPBENCH_10M=1 $runner go test -run=NONE -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" \
	$PKGS >"$tmp" 2>&1; then
	cat "$tmp"
	echo "bench: FAILED, no baseline written" >&2
	exit 1
fi
i=2
while [ "$i" -le "$BENCH_REPEAT" ]; do
	echo "bench: floor repeat $i/$BENCH_REPEAT" >&2
	# shellcheck disable=SC2086
	if ! go test -run=NONE -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" \
		$PKGS >>"$tmp" 2>&1; then
		cat "$tmp"
		echo "bench: FAILED, no baseline written" >&2
		exit 1
	fi
	i=$((i + 1))
done
cat "$tmp"
max_rss_kb="$(awk -F: '/Maximum resident set size/ { gsub(/[^0-9]/, "", $2); print $2 }' "$rsslog" 2>/dev/null || true)"
[ -n "$max_rss_kb" ] || max_rss_kb=0

# CPU model and frequency governor go into the header so cmd/benchgate can
# refuse to treat cross-hardware timing deltas as regressions; "unknown"
# when the platform does not expose them (containers often hide sysfs).
cpu="$(awk -F: '/^model name/ { sub(/^[ \t]+/, "", $2); print $2; exit }' /proc/cpuinfo 2>/dev/null || true)"
[ -n "$cpu" ] || cpu="unknown"
governor="$(cat /sys/devices/system/cpu/cpu0/cpufreq/scaling_governor 2>/dev/null || true)"
[ -n "$governor" ] || governor="unknown"

# Min-merge the repeats: per benchmark keep the run with the lowest MB/s
# (the conservative floor the gate compares against); benchmarks that
# report no MB/s are not gated, so their first run is kept as-is.
awk -v goversion="$(go version)" -v maxprocs="${GOMAXPROCS:-$(nproc 2>/dev/null || echo 0)}" -v date="$date" -v cpu="$cpu" -v governor="$governor" -v maxrss="$max_rss_kb" '
/^Benchmark/ {
	name = $1
	mbs = -1
	for (i = 3; i + 1 <= NF; i += 2) {
		if ($(i + 1) == "MB/s") mbs = $i + 0
	}
	if (!(name in line)) {
		order[++count] = name
	} else if (mbs < 0 || mbs >= floor[name]) {
		next
	}
	line[name] = $0
	floor[name] = (mbs >= 0) ? mbs : 0
}
END {
	printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"cpu\": \"%s\",\n  \"governor\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"max_rss_kb\": %s,\n  \"benchmarks\": [\n", date, goversion, cpu, governor, maxprocs, maxrss
	for (k = 1; k <= count; k++) {
		$0 = line[order[k]]
		metrics = ""
		for (i = 3; i + 1 <= NF; i += 2) {
			metrics = metrics sprintf("%s\"%s\": %s", (metrics == "") ? "" : ", ", $(i + 1), $i)
		}
		printf "    {\"name\": \"%s\", \"iterations\": %s, %s}%s\n", $1, $2, metrics, (k < count) ? "," : ""
	}
	printf "  ]\n}\n"
}
' "$tmp" >"$out"

echo "wrote $out"
