package chunker

import (
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"

	"freqdedup/internal/fphash"
	"freqdedup/internal/rabin"
)

// Chunk is one chunk cut from an input stream.
type Chunk struct {
	// Data is the chunk content. The slice is owned by the caller after
	// Next returns; it is backed by a pooled buffer that the caller may
	// hand back with Release when done (see the package comment for the
	// ownership contract).
	Data []byte
	// Offset is the byte offset of the chunk within the input stream.
	Offset int64
	// Fingerprint identifies the chunk content (SHA-256 truncated; see
	// package fphash). It is zero when the chunker was configured with
	// Params.DeferFingerprint.
	Fingerprint fphash.Fingerprint
}

// Size returns the chunk size in bytes.
func (c Chunk) Size() int { return len(c.Data) }

// Release returns the chunk's buffer to the package pool. The chunk's Data
// (and any sub-slice of it) must not be touched afterwards. Calling Release
// is optional — unreleased buffers are garbage collected — but streaming
// consumers that release every chunk run allocation-free in steady state.
func (c Chunk) Release() {
	putBuf(c.Data)
}

// bufPools recycles chunk data buffers, one pool per power-of-two size
// class so a released small buffer never blocks reuse for a larger chunk
// (content-defined chunk sizes span Min..Max). Class k holds buffers with
// capacity at least 1<<k; buffers are allocated with exact power-of-two
// capacity and classed by floor(log2(cap)) on release, so a pooled buffer
// always satisfies the whole class it sits in. holderPool recycles the
// *[]byte boxes so neither getBuf nor putBuf allocates in steady state.
var (
	bufPools   [33]sync.Pool
	holderPool = sync.Pool{New: func() any { return new([]byte) }}
)

// bufsOutstanding counts pooled buffers currently handed out (getBuf minus
// putBuf, pooled size classes only). The dedup pipelines' drain-on-error
// and drain-on-cancel tests assert it returns to its baseline, proving no
// code path abandons a pooled chunk buffer.
var bufsOutstanding atomic.Int64

// BufsOutstanding reports how many pooled chunk buffers are currently
// checked out of the pool. It exists for leak assertions in tests of
// streaming consumers; production code has no reason to call it.
func BufsOutstanding() int64 { return bufsOutstanding.Load() }

// getBuf returns a buffer of length n from the pool of n's size class,
// allocating a fresh one (with power-of-two capacity) on a pool miss.
func getBuf(n int) []byte {
	if n == 0 {
		return []byte{}
	}
	k := bits.Len(uint(n - 1))
	if k >= len(bufPools) {
		// Beyond the largest pooled class (>4 GiB): plain allocation,
		// never pooled.
		return make([]byte, n)
	}
	bufsOutstanding.Add(1)
	if h, ok := bufPools[k].Get().(*[]byte); ok {
		buf := (*h)[:n]
		*h = nil
		holderPool.Put(h)
		return buf
	}
	return make([]byte, n, 1<<k)
}

// putBuf hands a buffer back to the pool of its capacity's size class.
func putBuf(buf []byte) {
	c := cap(buf)
	if c == 0 {
		return
	}
	if uint64(c) > 1<<32 {
		// Beyond the largest pooled class — from getBuf's unpooled path
		// (which rejects requests over 4 GiB); never pooled, or a multi-GiB
		// allocation would circulate serving much smaller requests.
		return
	}
	bufsOutstanding.Add(-1)
	k := bits.Len(uint(c)) - 1 // floor(log2(c)): every buffer here has cap >= 1<<k
	h := holderPool.Get().(*[]byte)
	*h = buf[:0]
	bufPools[k].Put(h)
}

// Chunker cuts a stream into chunks.
type Chunker interface {
	// Next returns the next chunk, or io.EOF after the final chunk has been
	// returned. A trailing partial chunk (shorter than the minimum size) is
	// returned as a final chunk rather than discarded.
	Next() (Chunk, error)
}

// Fixed cuts the input into fixed-size chunks. The last chunk may be short.
type Fixed struct {
	r      io.Reader
	size   int
	offset int64
	done   bool
}

var _ Chunker = (*Fixed)(nil)

// NewFixed returns a fixed-size chunker reading from r. NewFixed panics if
// size is not positive.
func NewFixed(r io.Reader, size int) *Fixed {
	if size <= 0 {
		panic(fmt.Sprintf("chunker: fixed chunk size must be positive, got %d", size))
	}
	return &Fixed{r: r, size: size}
}

// Next implements Chunker.
func (f *Fixed) Next() (Chunk, error) {
	if f.done {
		return Chunk{}, io.EOF
	}
	// Pooled buffer: a full chunk reuses it as-is, and the final short
	// chunk just slices it down instead of pinning a full-size allocation
	// the way the seed implementation did.
	buf := getBuf(f.size)
	n, err := io.ReadFull(f.r, buf)
	switch {
	case err == nil:
		// full chunk
	case errors.Is(err, io.ErrUnexpectedEOF):
		f.done = true
		buf = buf[:n]
	case errors.Is(err, io.EOF):
		f.done = true
		putBuf(buf)
		return Chunk{}, io.EOF
	default:
		putBuf(buf)
		return Chunk{}, fmt.Errorf("chunker: read: %w", err)
	}
	c := Chunk{Data: buf, Offset: f.offset, Fingerprint: fphash.FromBytes(buf)}
	f.offset += int64(n)
	return c, nil
}

// chunkCountHint estimates how many chunks remain, for All's preallocation.
func (f *Fixed) chunkCountHint() int {
	return remainingHint(f.r, f.size)
}

// Params configures a content-defined chunker.
type Params struct {
	// Min is the minimum chunk size in bytes. No boundary is considered
	// before Min bytes have accumulated.
	Min int
	// Avg is the target average chunk size in bytes. It must be a power of
	// two; boundaries are declared where the rolling fingerprint matches a
	// fixed pattern in its low log2(Avg) bits.
	Avg int
	// Max is the maximum chunk size in bytes. A boundary is forced at Max.
	Max int
	// Window is the rolling-hash window size in bytes. Zero selects
	// rabin.DefaultWindow. AlgoGear ignores it (the gear window is fixed
	// at 64 bytes by construction).
	Window int
	// Algorithm selects the rolling-hash family. The zero value is
	// AlgoRabin, the original format; AlgoGear is roughly 3x faster but
	// cuts at different boundaries (see Algorithm).
	Algorithm Algorithm
	// DeferFingerprint leaves Chunk.Fingerprint zero so callers can hash
	// chunk contents out of band (e.g. in a worker pool) instead of paying
	// a serial SHA-256 inside Next.
	DeferFingerprint bool
}

// DefaultParams mirrors the paper's FSL configuration: 8 KB average chunks
// with 2 KB minimum and 16 KB maximum.
func DefaultParams() Params {
	return Params{Min: 2 * 1024, Avg: 8 * 1024, Max: 16 * 1024}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Min <= 0 || p.Avg <= 0 || p.Max <= 0 {
		return errors.New("chunker: sizes must be positive")
	}
	if p.Min > p.Avg || p.Avg > p.Max {
		return fmt.Errorf("chunker: need Min <= Avg <= Max, got %d/%d/%d", p.Min, p.Avg, p.Max)
	}
	if p.Avg&(p.Avg-1) != 0 {
		return fmt.Errorf("chunker: Avg must be a power of two, got %d", p.Avg)
	}
	if p.Window < 0 {
		return fmt.Errorf("chunker: negative window %d", p.Window)
	}
	if p.Algorithm != AlgoRabin && p.Algorithm != AlgoGear {
		return fmt.Errorf("chunker: unknown algorithm %d", int(p.Algorithm))
	}
	return nil
}

// minFillSpace is the smallest write space fill tolerates before compacting
// the lookahead buffer, so reads stay large even as the write position
// approaches the buffer's end.
const minFillSpace = 32 * 1024

// lookaheadSize sizes the fixed lookahead buffer for a maximum chunk size.
func lookaheadSize(max int) int {
	size := 4 * max
	if size < 256*1024 {
		size = 256 * 1024
	}
	return size
}

// lookahead is the streaming buffer shared by the content-defined
// chunkers: a fixed window into the input that reads land in directly,
// with the consumed prefix compacted away as the write position nears the
// end. It decouples the read/buffer machinery from the cut policy, so
// Rabin and gear chunkers differ only in their boundary scan.
type lookahead struct {
	r      io.Reader
	buf    []byte // fixed lookahead buffer; reads land directly in it
	start  int    // first unconsumed byte in buf
	end    int    // end of valid data in buf
	offset int64  // stream offset of buf[start]
	eof    bool
}

func newLookahead(r io.Reader, size int) lookahead {
	return lookahead{r: r, buf: make([]byte, size)}
}

// fill reads more data directly into the lookahead buffer, compacting the
// consumed prefix away when the remaining write space has become small.
// It returns any read error; io.EOF is recorded in l.eof instead.
func (l *lookahead) fill() error {
	if len(l.buf)-l.end < minFillSpace && l.start > 0 {
		l.end = copy(l.buf, l.buf[l.start:l.end])
		l.start = 0
	}
	n, err := l.r.Read(l.buf[l.end:])
	l.end += n
	if err != nil {
		if errors.Is(err, io.EOF) {
			l.eof = true
			return nil
		}
		return fmt.Errorf("chunker: read: %w", err)
	}
	return nil
}

// take returns the next up-to-max unconsumed bytes, reading until at
// least max are buffered or the stream ends. It returns io.EOF when no
// bytes remain. The returned slice is valid until the next consume call.
func (l *lookahead) take(max int) ([]byte, error) {
	for l.end-l.start < max && !l.eof {
		if err := l.fill(); err != nil {
			return nil, err
		}
	}
	avail := l.end - l.start
	if avail == 0 {
		return nil, io.EOF
	}
	if avail > max {
		avail = max
	}
	return l.buf[l.start : l.start+avail], nil
}

// consume marks n bytes returned by take as chunked.
func (l *lookahead) consume(n int) {
	l.start += n
	l.offset += int64(n)
}

// ContentDefined cuts the input at content-defined boundaries using a
// rolling Rabin fingerprint: a boundary is declared at the first position
// past Min where fp mod Avg == Avg-1 (the paper's "fingerprint modulo a
// pre-defined divisor equals some constant"), or at Max bytes.
type ContentDefined struct {
	la     lookahead
	p      Params
	mask   uint64
	magic  uint64
	window int
	hash   *rabin.Hash
}

var _ Chunker = (*ContentDefined)(nil)

// NewContentDefined returns a content-defined chunker reading from r.
func NewContentDefined(r io.Reader, p Params) (*ContentDefined, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	window := p.Window
	if window == 0 {
		window = rabin.DefaultWindow
	}
	return &ContentDefined{
		la:     newLookahead(r, lookaheadSize(p.Max)),
		p:      p,
		mask:   uint64(p.Avg - 1),
		magic:  uint64(p.Avg - 1),
		window: window,
		hash:   rabin.New(window),
	}, nil
}

// findCut returns the boundary position within data (1 <= cut <= len(data)),
// assuming data is either Max bytes long or the final remainder of the
// stream. Boundaries match the reference byte-at-a-time algorithm exactly:
// the rolling hash restarts at the chunk's first byte, and the first
// position at or past Min whose fingerprint matches cuts the chunk.
func (c *ContentDefined) findCut(data []byte) int {
	if len(data) <= c.p.Min {
		return len(data)
	}
	c.hash.Reset()
	// The fingerprint at any position depends only on the trailing window
	// bytes, so positions before Min need only the window preceding Min to
	// be rolled in — bytes before Min-window are never hashed.
	pre := c.p.Min - c.window
	if pre < 0 {
		pre = 0
	}
	if fp := c.hash.Update(data[pre:c.p.Min]); fp&c.mask == c.magic {
		return c.p.Min
	}
	if c.p.Min >= c.window {
		// The whole window at every scan position lies inside data, so the
		// contiguous scan applies: the departing byte is read straight from
		// data and the circular window buffer is never touched.
		cut, ok := c.hash.ScanContig(data, c.p.Min, c.mask, c.magic)
		if ok {
			return cut
		}
		return len(data)
	}
	n, ok := c.hash.Scan(data[c.p.Min:], c.mask, c.magic)
	if ok {
		return c.p.Min + n
	}
	return len(data)
}

// Next implements Chunker.
func (c *ContentDefined) Next() (Chunk, error) {
	// Ensure a full Max-sized lookahead (or the stream remainder).
	window, err := c.la.take(c.p.Max)
	if err != nil {
		return Chunk{}, err
	}
	cut := c.findCut(window)
	data := getBuf(cut)
	copy(data, window[:cut])
	ch := Chunk{Data: data, Offset: c.la.offset}
	if !c.p.DeferFingerprint {
		ch.Fingerprint = fphash.FromBytes(data)
	}
	c.la.consume(cut)
	return ch, nil
}

// chunkCountHint estimates how many chunks remain, for All's preallocation.
func (c *ContentDefined) chunkCountHint() int {
	return remainingHint(c.la.r, c.p.Avg)
}

// remainingHint divides the reader's remaining length (when it exposes one,
// as bytes.Reader and strings.Reader do) by an average chunk size estimate.
func remainingHint(r io.Reader, avgChunk int) int {
	lr, ok := r.(interface{ Len() int })
	if !ok || avgChunk <= 0 {
		return 0
	}
	return lr.Len()/avgChunk + 1
}

// All drains a chunker, returning every chunk. It is a convenience for
// tests and small inputs; large streams should iterate Next directly. The
// output slice is preallocated from the chunker's average-chunk-size
// estimate when the underlying reader exposes its remaining length.
func All(c Chunker) ([]Chunk, error) {
	var out []Chunk
	if h, ok := c.(interface{ chunkCountHint() int }); ok {
		if n := h.chunkCountHint(); n > 0 {
			out = make([]Chunk, 0, n)
		}
	}
	for {
		ch, err := c.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			// The accumulated chunks are unreachable to the caller; hand
			// their buffers back to the pool.
			for _, prev := range out {
				prev.Release()
			}
			return nil, err
		}
		out = append(out, ch)
	}
}
