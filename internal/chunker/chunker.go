// Package chunker partitions byte streams into chunks, the first stage of
// the deduplication pipeline (Section 2.1 of the paper).
//
// Two chunkers are provided:
//
//   - Fixed: fixed-size chunking, as used by the paper's VM dataset (4 KB
//     chunks of virtual machine images).
//   - ContentDefined: variable-size content-defined chunking driven by a
//     rolling Rabin fingerprint, with configurable minimum, average, and
//     maximum chunk sizes, as used by the FSL and synthetic datasets (8 KB
//     average).
//
// Both implement the Chunker interface and stream from an io.Reader, so
// arbitrarily large inputs can be chunked with bounded memory.
package chunker

import (
	"errors"
	"fmt"
	"io"

	"freqdedup/internal/fphash"
	"freqdedup/internal/rabin"
)

// Chunk is one chunk cut from an input stream.
type Chunk struct {
	// Data is the chunk content. The slice is owned by the caller after
	// Next returns; chunkers do not reuse it.
	Data []byte
	// Offset is the byte offset of the chunk within the input stream.
	Offset int64
	// Fingerprint identifies the chunk content (SHA-256 truncated; see
	// package fphash).
	Fingerprint fphash.Fingerprint
}

// Size returns the chunk size in bytes.
func (c Chunk) Size() int { return len(c.Data) }

// Chunker cuts a stream into chunks.
type Chunker interface {
	// Next returns the next chunk, or io.EOF after the final chunk has been
	// returned. A trailing partial chunk (shorter than the minimum size) is
	// returned as a final chunk rather than discarded.
	Next() (Chunk, error)
}

// Fixed cuts the input into fixed-size chunks. The last chunk may be short.
type Fixed struct {
	r      io.Reader
	size   int
	offset int64
	done   bool
}

var _ Chunker = (*Fixed)(nil)

// NewFixed returns a fixed-size chunker reading from r. NewFixed panics if
// size is not positive.
func NewFixed(r io.Reader, size int) *Fixed {
	if size <= 0 {
		panic(fmt.Sprintf("chunker: fixed chunk size must be positive, got %d", size))
	}
	return &Fixed{r: r, size: size}
}

// Next implements Chunker.
func (f *Fixed) Next() (Chunk, error) {
	if f.done {
		return Chunk{}, io.EOF
	}
	buf := make([]byte, f.size)
	n, err := io.ReadFull(f.r, buf)
	switch {
	case err == nil:
		// full chunk
	case errors.Is(err, io.ErrUnexpectedEOF):
		f.done = true
		buf = buf[:n]
	case errors.Is(err, io.EOF):
		f.done = true
		return Chunk{}, io.EOF
	default:
		return Chunk{}, fmt.Errorf("chunker: read: %w", err)
	}
	c := Chunk{Data: buf, Offset: f.offset, Fingerprint: fphash.FromBytes(buf)}
	f.offset += int64(n)
	return c, nil
}

// Params configures a content-defined chunker.
type Params struct {
	// Min is the minimum chunk size in bytes. No boundary is considered
	// before Min bytes have accumulated.
	Min int
	// Avg is the target average chunk size in bytes. It must be a power of
	// two; boundaries are declared where the rolling fingerprint matches a
	// fixed pattern in its low log2(Avg) bits.
	Avg int
	// Max is the maximum chunk size in bytes. A boundary is forced at Max.
	Max int
	// Window is the rolling-hash window size in bytes. Zero selects
	// rabin.DefaultWindow.
	Window int
}

// DefaultParams mirrors the paper's FSL configuration: 8 KB average chunks
// with 2 KB minimum and 16 KB maximum.
func DefaultParams() Params {
	return Params{Min: 2 * 1024, Avg: 8 * 1024, Max: 16 * 1024}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Min <= 0 || p.Avg <= 0 || p.Max <= 0 {
		return errors.New("chunker: sizes must be positive")
	}
	if p.Min > p.Avg || p.Avg > p.Max {
		return fmt.Errorf("chunker: need Min <= Avg <= Max, got %d/%d/%d", p.Min, p.Avg, p.Max)
	}
	if p.Avg&(p.Avg-1) != 0 {
		return fmt.Errorf("chunker: Avg must be a power of two, got %d", p.Avg)
	}
	if p.Window < 0 {
		return fmt.Errorf("chunker: negative window %d", p.Window)
	}
	return nil
}

// ContentDefined cuts the input at content-defined boundaries using a
// rolling Rabin fingerprint: a boundary is declared at the first position
// past Min where fp mod Avg == Avg-1 (the paper's "fingerprint modulo a
// pre-defined divisor equals some constant"), or at Max bytes.
type ContentDefined struct {
	r       io.Reader
	p       Params
	mask    uint64
	magic   uint64
	hash    *rabin.Hash
	readBuf []byte
	buf     []byte // unconsumed bytes read ahead of the current chunk
	offset  int64
	eof     bool
}

var _ Chunker = (*ContentDefined)(nil)

// NewContentDefined returns a content-defined chunker reading from r.
func NewContentDefined(r io.Reader, p Params) (*ContentDefined, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	window := p.Window
	if window == 0 {
		window = rabin.DefaultWindow
	}
	return &ContentDefined{
		r:       r,
		p:       p,
		mask:    uint64(p.Avg - 1),
		magic:   uint64(p.Avg - 1),
		hash:    rabin.New(window),
		readBuf: make([]byte, 64*1024),
	}, nil
}

// fill reads more data into the lookahead buffer. It returns false when the
// underlying reader is exhausted and the buffer is empty.
func (c *ContentDefined) fill() (bool, error) {
	if c.eof {
		return len(c.buf) > 0, nil
	}
	n, err := c.r.Read(c.readBuf)
	if n > 0 {
		c.buf = append(c.buf, c.readBuf[:n]...)
	}
	if err != nil {
		if errors.Is(err, io.EOF) {
			c.eof = true
			return len(c.buf) > 0, nil
		}
		return false, fmt.Errorf("chunker: read: %w", err)
	}
	return true, nil
}

// Next implements Chunker.
func (c *ContentDefined) Next() (Chunk, error) {
	c.hash.Reset()
	cut := -1
	pos := 0
	for cut < 0 {
		// Ensure at least one unprocessed byte is available.
		for pos >= len(c.buf) {
			ok, err := c.fill()
			if err != nil {
				return Chunk{}, err
			}
			if !ok || (c.eof && pos >= len(c.buf)) {
				// Stream exhausted: emit the remainder, if any.
				if pos == 0 {
					return Chunk{}, io.EOF
				}
				cut = pos
				break
			}
		}
		if cut >= 0 {
			break
		}
		fp := c.hash.Roll(c.buf[pos])
		pos++
		if pos >= c.p.Max {
			cut = pos
		} else if pos >= c.p.Min && fp&c.mask == c.magic {
			cut = pos
		}
	}
	data := make([]byte, cut)
	copy(data, c.buf[:cut])
	c.buf = c.buf[:copy(c.buf, c.buf[cut:])]
	ch := Chunk{Data: data, Offset: c.offset, Fingerprint: fphash.FromBytes(data)}
	c.offset += int64(cut)
	return ch, nil
}

// All drains a chunker, returning every chunk. It is a convenience for
// tests and small inputs; large streams should iterate Next directly.
func All(c Chunker) ([]Chunk, error) {
	var out []Chunk
	for {
		ch, err := c.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ch)
	}
}
