package freqdedup

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"freqdedup/internal/faultio"
)

// Repository-level properties of group-commit durability (WithGroupCommit):
// concurrent Backups share fsyncs, a lone Backup pays at most the straggler
// window per commit layer, and under crash injection an acknowledged Backup
// is always covered by a completed fsync — even when that fsync was a
// shared group commit.

func gcTestOptions(fs FileSystem, window time.Duration) []RepositoryOption {
	var key Key
	copy(key[:], "group commit key")
	opts := []RepositoryOption{
		WithFileSystem(fs), WithRepositoryKey(key),
		WithShards(2), WithContainerBytes(16 << 10),
		WithUploadObserver(nil),
	}
	if window > 0 {
		opts = append(opts, WithGroupCommit(window))
	}
	return opts
}

// TestGroupCommitBatchesSyncs: N concurrent Backups under a group-commit
// window must share durability fsyncs — strictly fewer catalog and trace-log
// syncs than backups — while every backup still acks and restores.
func TestGroupCommitBatchesSyncs(t *testing.T) {
	const n = 8
	ctx := context.Background()
	cfs := newCountingFS(faultio.NewMemFS())
	repo, err := CreateRepository("repo", gcTestOptions(cfs, 20*time.Millisecond)...)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	preCat := cfs.count("catalog.fdr")
	preTrace := cfs.count("traces.fdt")

	datas := make([][]byte, n)
	for i := range datas {
		datas[i] = repoData(int64(100+i), 32<<10)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = repo.Backup(ctx, fmt.Sprintf("snap-%d", i), bytes.NewReader(datas[i]))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("backup %d: %v", i, err)
		}
	}

	if d := cfs.count("catalog.fdr") - preCat; d >= n {
		t.Errorf("catalog fsyncs not batched: %d syncs for %d concurrent backups", d, n)
	} else {
		t.Logf("catalog: %d fsyncs for %d concurrent backups", d, n)
	}
	if d := cfs.count("traces.fdt") - preTrace; d >= n {
		t.Errorf("trace-log fsyncs not batched: %d syncs for %d concurrent backups", d, n)
	}
	for i := range datas {
		mustRestore(t, repo, fmt.Sprintf("snap-%d", i), datas[i])
	}
}

// TestLoneBackupLatencyWindow: the straggler window is a bounded wait, not
// an unbounded batch hold — a lone Backup with nobody to batch against
// completes after at most a few windows (one per commit layer: trace log
// and catalog), and the window is genuinely active (the backup is not
// faster than a single window).
func TestLoneBackupLatencyWindow(t *testing.T) {
	const window = 75 * time.Millisecond
	ctx := context.Background()
	repo, err := CreateRepository("repo", gcTestOptions(faultio.NewMemFS(), window)...)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	data := repoData(5, 64<<10)
	start := time.Now()
	if _, err := repo.Backup(ctx, "lone", bytes.NewReader(data)); err != nil {
		t.Fatalf("backup: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed < window {
		t.Errorf("lone backup took %v — group-commit window (%v) appears inactive", elapsed, window)
	}
	if elapsed > 8*window {
		t.Errorf("lone backup delayed %v; must be bounded by a few straggler windows of %v", elapsed, window)
	}
	mustRestore(t, repo, "lone", data)
}

// TestConcurrentBackupsGroupCommitCrash: the group-commit acknowledgment
// invariant under concurrency — crash the machine at several points while
// N Backups race into shared fsyncs, then check the one-directional crash
// contract: every Backup that acked before the crash is present in the
// durable image and restores byte-identically. (The serial crash-point
// sweep proves this at every op; this test adds genuinely concurrent
// commits sharing group fsyncs.)
func TestConcurrentBackupsGroupCommitCrash(t *testing.T) {
	const n = 4
	ctx := context.Background()
	datas := make([][]byte, n)
	for i := range datas {
		datas[i] = repoData(int64(200+i), 48<<10)
	}

	runBackups := func(m *faultio.MemFS) []error {
		repo, err := CreateRepository("repo", gcTestOptions(m, 2*time.Millisecond)...)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = repo.Backup(ctx, fmt.Sprintf("snap-%d", i), bytes.NewReader(datas[i]))
			}(i)
		}
		wg.Wait()
		repo.Close()
		return errs
	}

	// Clean pass: learn the op-clock span of creation and the backups.
	clean := faultio.NewMemFS()
	cleanCreate := faultio.NewMemFS()
	if r, err := CreateRepository("repo", gcTestOptions(cleanCreate, 0)...); err != nil {
		t.Fatal(err)
	} else {
		r.Close()
	}
	for i, err := range runBackups(clean) {
		if err != nil {
			t.Fatalf("clean backup %d: %v", i, err)
		}
	}
	createOps := cleanCreate.Injector().OpCount()
	totalOps := clean.Injector().OpCount()
	if totalOps <= createOps {
		t.Fatalf("op clock did not advance past creation: create=%d total=%d", createOps, totalOps)
	}

	// Crash at a spread of points inside the backup phase. The concurrent
	// op interleaving is not deterministic, so each point is a sample of
	// the one-directional property, not a replay.
	span := totalOps - createOps
	for _, num := range []int64{1, 2, 3} {
		k := createOps + span*num/4
		t.Run(fmt.Sprintf("crashAtOp%d", k), func(t *testing.T) {
			m := faultio.NewMemFSPlan(faultio.Plan{Seed: 9, CrashAtOp: k})
			errs := runBackups(m)

			img := m.CrashImage()
			reopened, err := OpenRepository("repo", gcTestOptions(img, 0)...)
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer reopened.Close()
			present := map[string]bool{}
			for _, s := range reopened.Snapshots() {
				present[s.Name] = true
			}
			acked := 0
			for i, berr := range errs {
				name := fmt.Sprintf("snap-%d", i)
				if berr == nil {
					acked++
					if !present[name] {
						t.Errorf("backup %q acked before crash but is missing from the durable image", name)
						continue
					}
					mustRestore(t, reopened, name, datas[i])
				}
			}
			if err := reopened.Verify(ctx); err != nil {
				t.Errorf("verify after crash: %v", err)
			}
			t.Logf("crash at op %d/%d: %d/%d backups acked, all durable", k, totalOps, acked, n)
		})
	}
}
