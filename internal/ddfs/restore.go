package ddfs

import (
	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

// RestoreStats quantifies the read cost of reconstructing one backup from
// container storage, the concern behind Section 6.2's claim that
// scrambling has "limited impact on the chunk layout across containers"
// because containers (4 MB) are larger than segments. Restores read whole
// containers; the fewer distinct containers a backup's chunks span — and
// the fewer times the restore switches between containers — the better the
// read performance.
type RestoreStats struct {
	// Chunks is the number of chunk references restored.
	Chunks int
	// DistinctContainers is the number of distinct containers holding the
	// backup's chunks.
	DistinctContainers int
	// ContainerSwitches counts adjacent chunk pairs resolved from
	// different containers — the number of container read switches a
	// streaming restore with a single-container read buffer performs.
	ContainerSwitches int
	// ReadsWithCache is the number of container reads performed by a
	// restore that caches the most recent cacheSize containers (LRU), as
	// restore implementations do.
	ReadsWithCache int
}

// ContainerSpread measures restore locality for one backup: each chunk is
// resolved to its stored container, in the backup's logical (recipe)
// order. The restore cache holds cacheContainers container buffers.
func (s *System) ContainerSpread(b *trace.Backup, cacheContainers int) RestoreStats {
	if cacheContainers < 1 {
		cacheContainers = 1
	}
	var st RestoreStats
	distinct := make(map[int]struct{})
	// Tiny LRU of container IDs.
	cache := make([]int, 0, cacheContainers)
	touch := func(id int) bool {
		for i, c := range cache {
			if c == id {
				copy(cache[1:i+1], cache[:i])
				cache[0] = id
				return true
			}
		}
		if len(cache) < cacheContainers {
			cache = append(cache, 0)
		}
		copy(cache[1:], cache)
		cache[0] = id
		return false
	}
	prev := -1
	for _, c := range b.Chunks {
		id, ok := s.Locate(c.FP)
		if !ok {
			continue
		}
		st.Chunks++
		distinct[id] = struct{}{}
		if prev != -1 && id != prev {
			st.ContainerSwitches++
		}
		prev = id
		if !touch(id) {
			st.ReadsWithCache++
		}
	}
	st.DistinctContainers = len(distinct)
	return st
}

// Locate resolves a fingerprint to the container holding its physical
// copy, consulting the open container buffer and the fingerprint index.
func (s *System) Locate(fp fphash.Fingerprint) (int, bool) {
	if id, ok := s.index[fp]; ok {
		return id, true
	}
	// Chunks still buffered in the open container.
	if _, ok := s.buffered[fp]; ok {
		// The open container is the highest ID.
		return s.containers.Count() - 1, true
	}
	return 0, false
}
