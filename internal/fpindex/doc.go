// Package fpindex is the persistent, memory-bounded fingerprint index:
// the DDFS-style answer (Section 7.4) to an in-memory map that is rebuilt
// by scanning every container on open. Each shard keeps a small memtable
// of recent insertions over a set of immutable on-disk sorted runs; a
// Bloom filter per run plus a per-shard aggregate filter (step S2: the
// summary vector) means a lookup for a certainly-new chunk touches no
// disk, and opening a repository reads only manifests, run footers,
// fences, and filters — O(metadata), independent of chunk count. Resident
// memory is bounded by the memtables, the filters, the fences, and a
// shared LRU of hot run blocks, not by the number of unique chunks.
//
// # Architecture
//
// An Index owns one Shard per dedup-store shard. Insertions land in the
// shard's memtable; when it reaches its threshold the dedup store flushes
// postings whose containers are sealed into a new level-0 run. When a
// level accumulates Fanout runs, they are k-way merged into one run on
// the next level — tiered compaction, performed off the shard lock so
// lookups proceed while it runs. A lookup checks memtable, then the
// aggregate filter, then each run newest-to-oldest (filter, fence, one
// block read through the shared cache).
//
// The containers are the write-ahead log. The index is deliberately NOT
// synced on the backup hot path: each shard's manifest records a
// watermark — how many sealed containers its runs fully cover — and open
// rescans only the index headers of containers at or past the watermark
// into the memtable. A clean Close flushes everything (zero rescan); a
// crash costs a bounded tail rescan; losing the whole index directory
// costs a full rescan and nothing else.
//
// # Run file format
//
// A run file, run-SSSS-NNNNNNNNNNNN.fdi (shard, sequence number), is one
// immutable sorted run, all little-endian:
//
//	u32 magic   "FDI1" (0x46444931)
//	u32 version 1
//	u32 shard
//	u32 level
//	u64 count                     -- back-filled after the blocks
//	blocks × {
//	    ≤4096 × { fp [8]byte, u32 container, u32 index }   -- sorted by fp
//	    u32 crc32  IEEE, over the block's entries
//	}
//	Bloom filter                  -- bloom.AppendBinary, self-checksummed
//	fences × { fp [8]byte, u64 offset }, u32 crc32
//	footer:
//	    u64 filterOff  u64 fenceOff  u64 count
//	    u32 crc32 (over the three)  u32 magic "FDIF" (0x46444946)
//
// openRun reads header, footer, fences, and filter — never the blocks.
// One fence (first fingerprint + offset) per 4096-entry block stays in
// memory: 16 bytes per 64 KiB of postings.
//
// # Manifest and commit protocol
//
// shard-SSSS.mf is the shard's committed state: run list (sequence,
// level, count), watermark, next sequence number, and the aggregate
// filter, CRC-trailed and replaced atomically (temp file, fsync, rename,
// directory sync). Ordering makes every transition crash-atomic:
//
//   - Flush/compaction: write + fsync the new run, then commit the
//     manifest, then delete superseded runs. A crash between steps leaves
//     either the old manifest (new run is an unreferenced stray, removed
//     at open) or the new one (old runs are strays).
//   - GC/repair renumber containers, invalidating every run's locations.
//     shard-SSSS.rebuild is made durable before the container rewrite and
//     removed only after the rebuilt index commits; found at open it
//     forces that shard back to watermark 0 — a full container rescan.
//
// # Invariants
//
//   - Runs are immutable after their single fsync; sequence numbers are
//     never reused, so cached blocks can never alias a newer run.
//   - Within a shard, a fingerprint maps to exactly one location, found
//     in the memtable or in at most one run (newest wins in the merge).
//   - Every structure is checksummed; a failed check surfaces as
//     ErrCorrupt and the shard rebuilds from its containers — the index
//     never serves a wrong Location and index loss never loses data.
//   - The aggregate filter is a superset of the shard's fingerprints
//     (deleted chunks linger until a layout change rebuilds it); false
//     positives cost a run probe, never a wrong answer.
package fpindex
