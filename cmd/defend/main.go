// Command defend evaluates the paper's defenses (Section 7): MinHash
// encryption and scrambling.
//
//	defend -fig 10          # defense effectiveness vs leakage rate
//	defend -fig 11          # storage saving MLE vs combined
//	defend -fig all
//	defend -trace fsl.trace -scheme combined   # savings on a trace file
package main

import (
	"flag"
	"fmt"
	"os"

	"freqdedup/internal/defense"
	"freqdedup/internal/eval"
	"freqdedup/internal/trace"
)

func main() {
	figFlag := flag.String("fig", "", "reproduce figures: 10, 11, ablations, or all")
	tracePath := flag.String("trace", "", "trace file to evaluate (single-run mode)")
	schemeName := flag.String("scheme", "combined", "scheme: mle, minhash, or combined")
	flag.Parse()

	switch {
	case *figFlag != "":
		runFigures(*figFlag)
	case *tracePath != "":
		runSingle(*tracePath, *schemeName)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runFigures(which string) {
	ds := eval.Generate()
	all := which == "all"
	if all || which == "10" {
		figs, err := eval.Fig10Defense(ds)
		if err != nil {
			fatal(err)
		}
		for i := range figs {
			figs[i].Render(os.Stdout)
		}
	}
	if all || which == "11" {
		figs, err := eval.Fig11StorageSaving(ds)
		if err != nil {
			fatal(err)
		}
		for i := range figs {
			figs[i].Render(os.Stdout)
		}
	}
	if all || which == "ablations" {
		a1, err := eval.AblationDefenseComponents(ds)
		if err != nil {
			fatal(err)
		}
		a1.Render(os.Stdout)
		a2, err := eval.AblationSegmentSize(ds)
		if err != nil {
			fatal(err)
		}
		a2.Render(os.Stdout)
		a3 := eval.AblationTieBreaking(ds)
		a3.Render(os.Stdout)
	}
}

func runSingle(path, schemeName string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	d, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	var scheme defense.Scheme
	switch schemeName {
	case "mle":
		scheme = defense.SchemeMLE
	case "minhash":
		scheme = defense.SchemeMinHash
	case "combined":
		scheme = defense.SchemeCombined
	default:
		fatal(fmt.Errorf("unknown scheme %q", schemeName))
	}
	savings, err := defense.StorageSavings(d, scheme, 1)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %s, scheme: %s\n", d.Name, scheme)
	for i, b := range d.Backups {
		fmt.Printf("  after %-8s storage saving %.2f%%\n", b.Label+":", savings[i]*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "defend:", err)
	os.Exit(1)
}
