package chunker

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"freqdedup/internal/fphash"
)

// referenceGear is the naive byte-at-a-time gear chunker, the golden
// oracle for the optimized implementations: the hash restarts at zero at
// every chunk start and rolls through EVERY byte of the chunk (no
// cut-point skipping, no lookahead buffer, no parallelism). Gear and
// MultiGear must emit byte-identical cut points and fingerprints.
type referenceGear struct {
	r       io.Reader
	p       Params
	mask    uint64
	readBuf []byte
	buf     []byte
	offset  int64
	eof     bool
}

func newReferenceGear(r io.Reader, p Params) (*referenceGear, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &referenceGear{
		r:       r,
		p:       p,
		mask:    gearMask(p.Avg),
		readBuf: make([]byte, 64*1024),
	}, nil
}

func (c *referenceGear) fill() (bool, error) {
	if c.eof {
		return len(c.buf) > 0, nil
	}
	n, err := c.r.Read(c.readBuf)
	if n > 0 {
		c.buf = append(c.buf, c.readBuf[:n]...)
	}
	if err != nil {
		if errors.Is(err, io.EOF) {
			c.eof = true
			return len(c.buf) > 0, nil
		}
		return false, err
	}
	return true, nil
}

func (c *referenceGear) Next() (Chunk, error) {
	var h uint64
	cut := -1
	pos := 0
	for cut < 0 {
		for pos >= len(c.buf) {
			ok, err := c.fill()
			if err != nil {
				return Chunk{}, err
			}
			if !ok || (c.eof && pos >= len(c.buf)) {
				if pos == 0 {
					return Chunk{}, io.EOF
				}
				cut = pos
				break
			}
		}
		if cut >= 0 {
			break
		}
		h = h<<1 + gearTable[c.buf[pos]]
		pos++
		if pos >= c.p.Max {
			cut = pos
		} else if pos >= c.p.Min && h&c.mask == 0 {
			cut = pos
		}
	}
	data := make([]byte, cut)
	copy(data, c.buf[:cut])
	c.buf = c.buf[:copy(c.buf, c.buf[cut:])]
	ch := Chunk{Data: data, Offset: c.offset, Fingerprint: fphash.FromBytes(data)}
	c.offset += int64(cut)
	return ch, nil
}

// compareGearAgainstReference chunks data with the reference and the
// given optimized chunker and fails on the first divergence in offset,
// size, content, or fingerprint.
func compareGearAgainstReference(t *testing.T, data []byte, p Params, opt Chunker) {
	t.Helper()
	ref, err := newReferenceGear(bytes.NewReader(data), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		want, wantErr := ref.Next()
		got, gotErr := opt.Next()
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("chunk %d: errors diverge: ref %v, opt %v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			if !errors.Is(wantErr, io.EOF) || !errors.Is(gotErr, io.EOF) {
				t.Fatalf("chunk %d: non-EOF termination: ref %v, opt %v", i, wantErr, gotErr)
			}
			return
		}
		if got.Offset != want.Offset {
			t.Fatalf("chunk %d: offset %d, reference %d", i, got.Offset, want.Offset)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("chunk %d (offset %d): content diverges from reference (len %d vs %d)",
				i, got.Offset, len(got.Data), len(want.Data))
		}
		if got.Fingerprint != want.Fingerprint {
			t.Fatalf("chunk %d: fingerprint %v, reference %v", i, got.Fingerprint, want.Fingerprint)
		}
		got.Release()
	}
}

// gearGoldenParams is the parameter matrix shared by the golden tests:
// it crosses Min below/at/above the 64-byte gear window, degenerate
// fixed-size parameters, and the default configuration.
var gearGoldenParams = []Params{
	{Min: 2048, Avg: 8192, Max: 16384, Algorithm: AlgoGear}, // default sizes
	{Min: 512, Avg: 2048, Max: 4096, Algorithm: AlgoGear},
	{Min: 2048, Avg: 2048, Max: 2048, Algorithm: AlgoGear}, // degenerate fixed-size
	{Min: 16, Avg: 64, Max: 256, Algorithm: AlgoGear},      // Min smaller than the gear window
	{Min: 64, Avg: 128, Max: 300, Algorithm: AlgoGear},     // Min exactly the gear window
}

// TestGearGoldenAgainstReference: across sizes and parameters, the
// cut-point-skipping serial Gear cuts exactly where the byte-at-a-time
// reference does.
func TestGearGoldenAgainstReference(t *testing.T) {
	sizes := []int{0, 1, 100, 2047, 2048, 2049, 16384, 16385, 1 << 20}
	for pi, p := range gearGoldenParams {
		for _, n := range sizes {
			g, err := NewGear(bytes.NewReader(randBytes(int64(200*pi+n%89+1), n)), p)
			if err != nil {
				t.Fatal(err)
			}
			compareGearAgainstReference(t, randBytes(int64(200*pi+n%89+1), n), p, g)
		}
	}
	// Low-entropy inputs: a constant stream keeps the hash on a fixed
	// trajectory and exercises the Max-forced cut path.
	p := gearGoldenParams[0]
	g, err := NewGear(bytes.NewReader(make([]byte, 256*1024)), p)
	if err != nil {
		t.Fatal(err)
	}
	compareGearAgainstReference(t, make([]byte, 256*1024), p, g)
	// Repeating pattern: periodic hashes, many identical boundaries.
	pat := bytes.Repeat([]byte("abcdefgh"), 64*1024)
	g, err = NewGear(bytes.NewReader(pat), p)
	if err != nil {
		t.Fatal(err)
	}
	compareGearAgainstReference(t, pat, p, g)
}

// TestGearGoldenFragmentedReader runs the golden comparison with a reader
// that trickles bytes, so buffer refill and compaction paths are crossed
// mid-chunk.
func TestGearGoldenFragmentedReader(t *testing.T) {
	data := randBytes(79, 512*1024)
	p := Params{Min: 2048, Avg: 8192, Max: 16384, Algorithm: AlgoGear}
	g, err := NewGear(iotest{r: bytes.NewReader(data), max: 1013}, p)
	if err != nil {
		t.Fatal(err)
	}
	compareGearAgainstReference(t, data, p, g)
}

// TestGearFactory: chunker.New dispatches on Params.Algorithm.
func TestGearFactory(t *testing.T) {
	data := randBytes(80, 128*1024)
	p := DefaultParams()
	p.Algorithm = AlgoGear
	c, err := New(bytes.NewReader(data), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*Gear); !ok {
		t.Fatalf("New(AlgoGear) = %T, want *Gear", c)
	}
	compareGearAgainstReference(t, data, p, c)
	if _, err := New(bytes.NewReader(data), Params{Min: 1, Avg: 2, Max: 4, Algorithm: Algorithm(99)}); err == nil {
		t.Fatal("New accepted an unknown algorithm")
	}
}

// TestGearDiffersFromRabin pins the format warning in the docs: the two
// algorithms cut the same stream differently, so they must never be
// mixed within one repository.
func TestGearDiffersFromRabin(t *testing.T) {
	data := randBytes(81, 1<<20)
	gp := DefaultParams()
	gp.Algorithm = AlgoGear
	g, err := New(bytes.NewReader(data), gp)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(bytes.NewReader(data), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	gc, err := All(g)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := All(r)
	if err != nil {
		t.Fatal(err)
	}
	same := len(gc) == len(rc)
	if same {
		for i := range gc {
			if gc[i].Offset != rc[i].Offset {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("gear and Rabin produced identical cut points over 1 MiB of random data — format separation lost")
	}
}

// FuzzGearMatchesReference fuzzes arbitrary inputs through the reference
// and both optimized gear implementations (serial with cut-point
// skipping, and the multi-stream stitcher at 2 workers with a small
// segment size so fuzz inputs cross segment boundaries). Run with `go
// test -fuzz=FuzzGearMatchesReference`; under plain `go test` the seed
// corpus doubles as extra golden cases.
func FuzzGearMatchesReference(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte("tiny"), uint8(1))
	f.Add(randBytes(22, 70000), uint8(0))
	f.Add(bytes.Repeat([]byte{0xAB, 0}, 9000), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, sel uint8) {
		params := []Params{
			{Min: 2048, Avg: 8192, Max: 16384, Algorithm: AlgoGear},
			{Min: 64, Avg: 256, Max: 1024, Algorithm: AlgoGear},
			{Min: 16, Avg: 32, Max: 48, Algorithm: AlgoGear},
		}
		p := params[int(sel)%len(params)]
		g, err := NewGear(bytes.NewReader(data), p)
		if err != nil {
			t.Fatal(err)
		}
		compareGearAgainstReference(t, data, p, g)
		if p.Min >= gearWindow {
			mg, err := newMultiGear(bytes.NewReader(data), p, 2, 4096)
			if err != nil {
				t.Fatal(err)
			}
			defer mg.Close()
			compareGearAgainstReference(t, data, p, mg)
		}
	})
}

// TestGearDeferFingerprint: deferred mode leaves Fingerprint zero but
// cuts identically.
func TestGearDeferFingerprint(t *testing.T) {
	data := randBytes(33, 128*1024)
	p := DefaultParams()
	p.Algorithm = AlgoGear
	p.DeferFingerprint = true
	def, err := NewGear(bytes.NewReader(data), p)
	if err != nil {
		t.Fatal(err)
	}
	p.DeferFingerprint = false
	eager, err := NewGear(bytes.NewReader(data), p)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := All(def)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := All(eager)
	if err != nil {
		t.Fatal(err)
	}
	if len(dc) != len(ec) {
		t.Fatalf("deferred mode changed chunk count: %d vs %d", len(dc), len(ec))
	}
	for i := range dc {
		if !dc[i].Fingerprint.IsZero() {
			t.Fatalf("chunk %d: fingerprint computed despite DeferFingerprint", i)
		}
		if fphash.FromBytes(dc[i].Data) != ec[i].Fingerprint {
			t.Fatalf("chunk %d: deferred content diverges", i)
		}
	}
}
