// Package defense implements the paper's defenses against frequency
// analysis (Section 6) at the trace level, mirroring the paper's own
// simulation methodology (Section 7.1, which operates directly on chunk
// fingerprints because the FSL and VM traces carry no chunk contents):
//
//   - MLE: the baseline — deterministic per-chunk encryption. Each
//     plaintext fingerprint maps to one ciphertext fingerprint.
//   - MinHash encryption (Algorithm 4): chunks are encrypted under a key
//     derived from their segment's minimum fingerprint, simulated as
//     cfp = H(minFP || pfp) — identical plaintext chunks under the same
//     segment minimum still deduplicate, others diverge.
//   - Scrambling (Algorithm 5): per-segment random front/back shuffling of
//     the chunk order, destroying the neighbor relations the
//     locality-based attack walks.
//   - Combined: scrambling followed by MinHash encryption.
//
// Every scheme returns the ciphertext stream in upload order together with
// the ground-truth ciphertext-to-plaintext mapping used to score attacks.
package defense

import (
	"crypto/sha256"
	"fmt"
	"math/rand"

	"freqdedup/internal/attack"
	"freqdedup/internal/fphash"
	"freqdedup/internal/segment"
	"freqdedup/internal/trace"
)

// Encrypted is the result of simulated encryption of one backup: the
// ciphertext chunk stream as the adversary would observe it before
// deduplication, and the ground-truth mapping for scoring attacks.
type Encrypted struct {
	Backup *trace.Backup
	Truth  attack.GroundTruth
	// RecipeOrder is the ciphertext chunk stream in the *original*
	// (pre-scrambling) logical order — the order a restore follows, since
	// file recipes preserve the original chunk order (Section 6.2). For
	// schemes that do not reorder uploads it equals Backup.Chunks.
	RecipeOrder []trace.ChunkRef
}

// EncryptMLE simulates baseline MLE (convergent or server-aided) on a
// backup: a global deterministic one-to-one mapping from plaintext to
// ciphertext fingerprints, preserving chunk order and sizes.
func EncryptMLE(b *trace.Backup) Encrypted {
	out := &trace.Backup{Label: b.Label, Chunks: make([]trace.ChunkRef, len(b.Chunks))}
	truth := make(attack.GroundTruth, len(b.Chunks))
	cache := make(map[fphash.Fingerprint]fphash.Fingerprint, len(b.Chunks))
	for i, c := range b.Chunks {
		cfp, ok := cache[c.FP]
		if !ok {
			cfp = deriveCipherFP(fphash.Zero, c.FP)
			cache[c.FP] = cfp
		}
		out.Chunks[i] = trace.ChunkRef{FP: cfp, Size: c.Size}
		truth[cfp] = c.FP
	}
	return Encrypted{Backup: out, Truth: truth, RecipeOrder: out.Chunks}
}

// Options configures the MinHash/scrambling pipeline.
type Options struct {
	// Segments configures segmentation (paper: 512 KB / 1 MB / 2 MB).
	Segments segment.Params
	// Scramble enables per-segment chunk-order scrambling before
	// encryption.
	Scramble bool
	// Seed drives the scrambling randomness, making experiments
	// reproducible. Real deployments would use crypto randomness; the
	// defense's security does not rest on the scrambling seed staying
	// secret per backup, only on the adversary not observing the original
	// order.
	Seed int64
	// Rand, when non-nil, is the injected scrambling source and takes
	// precedence over Seed. Every simulation call derives its randomness
	// from a private *rand.Rand either way — never from global math/rand
	// state — so parallel test shards cannot interleave generator state;
	// injection lets a caller thread one stream of randomness through a
	// sequence of encryptions. A *rand.Rand is not safe for concurrent
	// use: concurrent encryptions need distinct Rand values (or distinct
	// Seeds).
	Rand *rand.Rand
}

// rng returns the options' scrambling source: the injected Rand, or a
// fresh private generator seeded from Seed.
func (o Options) rng() *rand.Rand {
	if o.Rand != nil {
		return o.Rand
	}
	return rand.New(rand.NewSource(o.Seed))
}

// DefaultOptions returns the defense configuration with scrambling enabled
// (the combined scheme). Segment sizes are scaled down from the paper's
// 512 KB/1 MB/2 MB in proportion to the scaled datasets: the paper's
// segments cover a tiny fraction of a user's data, while a 1 MB segment on
// our laptop-scale traces would span several directories and mix volatile
// with stable content, re-keying far more chunks than the paper's setup
// does. 64 KB/128 KB/256 KB segments restore the paper's segment-to-churn
// granularity. Pass explicit Options with segment.DefaultParams() to use
// the paper's absolute sizes.
func DefaultOptions() Options {
	return Options{
		Segments: segment.Params{MinBytes: 64 << 10, AvgBytes: 128 << 10, MaxBytes: 256 << 10},
		Scramble: true,
		Seed:     1,
	}
}

// EncryptMinHash simulates MinHash encryption (with optional scrambling)
// on a backup. When opt.Scramble is set this is the paper's combined
// scheme. It returns an error only for invalid segmentation parameters.
func EncryptMinHash(b *trace.Backup, opt Options) (Encrypted, error) {
	segs, err := segment.Split(b.Chunks, opt.Segments)
	if err != nil {
		return Encrypted{}, fmt.Errorf("defense: segment: %w", err)
	}
	rng := opt.rng()
	out := &trace.Backup{Label: b.Label, Chunks: make([]trace.ChunkRef, 0, len(b.Chunks))}
	truth := make(attack.GroundTruth, len(b.Chunks))
	recipe := make([]trace.ChunkRef, 0, len(b.Chunks))
	for _, s := range segs {
		orig := b.Chunks[s.Start:s.End]
		seg := orig
		if opt.Scramble {
			seg = scramble(seg, rng)
		}
		// The segment minimum is invariant under scrambling, so computing
		// it after scrambling matches Algorithm 4 applied to the scrambled
		// stream.
		min := segment.MinFingerprint(seg, segment.Segment{Start: 0, End: len(seg)})
		for _, c := range seg {
			cfp := deriveCipherFP(min.FP, c.FP)
			out.Chunks = append(out.Chunks, trace.ChunkRef{FP: cfp, Size: c.Size})
			truth[cfp] = c.FP
		}
		// The file recipe references the same ciphertext chunks in the
		// original order; the segment key does not depend on the order.
		for _, c := range orig {
			recipe = append(recipe, trace.ChunkRef{FP: deriveCipherFP(min.FP, c.FP), Size: c.Size})
		}
	}
	return Encrypted{Backup: out, Truth: truth, RecipeOrder: recipe}, nil
}

// scramble implements Algorithm 5 on one segment: each chunk is appended
// to either the front or the back of the output with equal probability.
func scramble(seg []trace.ChunkRef, rng *rand.Rand) []trace.ChunkRef {
	// Build in a deque laid out in a slice: front grows left from mid,
	// back grows right.
	n := len(seg)
	buf := make([]trace.ChunkRef, 2*n)
	front, back := n, n // [front, back) holds the current S'
	for _, c := range seg {
		if rng.Intn(2) == 1 {
			front--
			buf[front] = c
		} else {
			buf[back] = c
			back++
		}
	}
	return buf[front:back]
}

// deriveCipherFP derives the ciphertext fingerprint for a plaintext chunk
// fingerprint under a segment key context (the minimum fingerprint; zero
// for baseline MLE). This mirrors the paper's simulation: SHA-256 of the
// concatenation, truncated to the trace fingerprint size.
func deriveCipherFP(min, pfp fphash.Fingerprint) fphash.Fingerprint {
	var buf [2 * fphash.Size]byte
	copy(buf[:fphash.Size], min[:])
	copy(buf[fphash.Size:], pfp[:])
	sum := sha256.Sum256(buf[:])
	var out fphash.Fingerprint
	copy(out[:], sum[:fphash.Size])
	if out.IsZero() {
		out[0] = 1
	}
	return out
}

// Scheme identifies a trace-level encryption scheme for experiment
// drivers.
type Scheme int

const (
	// SchemeMLE is baseline deterministic MLE.
	SchemeMLE Scheme = iota + 1
	// SchemeMinHash is MinHash encryption without scrambling.
	SchemeMinHash
	// SchemeCombined is MinHash encryption with scrambling.
	SchemeCombined
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeMLE:
		return "MLE"
	case SchemeMinHash:
		return "MinHash"
	case SchemeCombined:
		return "Combined"
	case SchemeScrambleOnly:
		return "ScrambleOnly"
	case SchemeRCE:
		return "RCE"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Encrypt applies the scheme to one backup. The seed parameterizes
// scrambling (ignored by deterministic schemes).
func Encrypt(b *trace.Backup, s Scheme, seed int64) (Encrypted, error) {
	switch s {
	case SchemeMLE:
		return EncryptMLE(b), nil
	case SchemeMinHash:
		opt := DefaultOptions()
		opt.Scramble = false
		opt.Seed = seed
		return EncryptMinHash(b, opt)
	case SchemeCombined:
		opt := DefaultOptions()
		opt.Seed = seed
		return EncryptMinHash(b, opt)
	case SchemeScrambleOnly:
		opt := DefaultOptions()
		opt.Seed = seed
		return EncryptScrambleOnly(b, opt)
	case SchemeRCE:
		return EncryptRCE(b), nil
	default:
		return Encrypted{}, fmt.Errorf("defense: unknown scheme %v", s)
	}
}

// StorageSavings encrypts every backup of a dataset in creation order
// under the scheme and returns the cumulative storage saving after each
// backup (Figure 11): 1 - physicalBytes/logicalBytes, counting each unique
// ciphertext fingerprint's bytes once.
func StorageSavings(d *trace.Dataset, s Scheme, seed int64) ([]float64, error) {
	stored := make(map[fphash.Fingerprint]struct{})
	var logical, physical uint64
	out := make([]float64, 0, len(d.Backups))
	for i, b := range d.Backups {
		enc, err := Encrypt(b, s, seed+int64(i))
		if err != nil {
			return nil, err
		}
		for _, c := range enc.Backup.Chunks {
			logical += uint64(c.Size)
			if _, ok := stored[c.FP]; !ok {
				stored[c.FP] = struct{}{}
				physical += uint64(c.Size)
			}
		}
		out = append(out, 1-float64(physical)/float64(logical))
	}
	return out, nil
}
