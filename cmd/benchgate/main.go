// Command benchgate is the CI performance-regression gate: it compares a
// fresh benchmark run against the committed BENCH_*.json baselines and
// exits nonzero when a benchmark in the stable tier lost more than the
// threshold (default 20%) of its MB/s throughput.
//
// The stable tier is the allowlist of benchmarks measured stable enough
// to block a PR: the chunker ingest stage, the backup pipeline, the
// multi-tenant server path (BenchmarkServerBackup's loopback client
// sweep), the restore pipeline, the sharded store, and the persistent
// fingerprint index (BenchmarkRepositoryOpen's open-throughput sweep and
// BenchmarkIndexLookup's hit/miss paths). Everything else in the
// baselines is reported as an informational delta but never gates —
// attack-engine and generator timings are too sensitive to shared-runner
// noise to block on.
//
// Comparison rules:
//
//   - The two newest committed BENCH_*.json files are loaded; each stable
//     benchmark gates against the NEWEST baseline that has it — the most
//     recently accepted performance state — while the older file only
//     feeds the printed deltas (context for slow drift across PRs).
//
//   - A baseline recorded on a different CPU model is demoted to advisory
//     (deltas printed, never fatal): cross-hardware timing deltas are not
//     regressions. Baselines without a "cpu" field (older format) gate as
//     before.
//
//   - A benchmark present in the fresh run but in no baseline is "new" —
//     reported, never gated. One present only in baselines is "gone" —
//     reported, never gated (renames land with their own baseline).
//
//   - The fresh suite runs -repeat times (pinned iteration counts, so the
//     runtime is bounded) and each benchmark keeps its BEST run: noise on
//     a shared runner lowers individual runs, a real regression lowers
//     the best achievable. The counterpart on the baseline side is
//     scripts/bench.sh, which records each benchmark's WORST observed
//     MB/s across its repeats — best-of fresh against floor-of baseline
//     gives the gate its noise margin on oscillating shared runners.
//
//     benchgate                    # run the stable tier (best of 3 x 10 iterations) and gate
//     benchgate -benchtime 20x     # more iterations per run, steadier numbers
//     benchgate -repeat 5          # more runs, lower flake floor
//     benchgate -threshold 0.3     # tolerate 30%
//     benchgate -input bench.txt   # gate a pre-recorded `go test -bench` output
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// stableTier matches the benchmarks allowed to block a PR. The patterns
// anchor at the start of the benchmark name (after the GOMAXPROCS suffix
// is stripped); sub-benchmarks (e.g. BenchmarkStoreShards/shards=4) are
// matched by their full slash-joined name.
var stableTier = []*regexp.Regexp{
	regexp.MustCompile(`^BenchmarkChunker`),
	regexp.MustCompile(`^BenchmarkBackup(Serial|Parallel)$`),
	regexp.MustCompile(`^BenchmarkServerBackup`),
	regexp.MustCompile(`^BenchmarkRestore(Serial|Parallel)`),
	regexp.MustCompile(`^BenchmarkStoreShards`),
	regexp.MustCompile(`^BenchmarkRepositoryOpen`),
	regexp.MustCompile(`^BenchmarkIndexLookup`),
}

// benchPattern is the -bench regexp handed to go test for the fresh run:
// the stable tier only, so the gate stays fast enough to block on.
const benchPattern = `BenchmarkChunker|BenchmarkBackupSerial|BenchmarkBackupParallel|BenchmarkServerBackup|BenchmarkRestoreSerial|BenchmarkRestoreParallel|BenchmarkStoreShards|BenchmarkRepositoryOpen|BenchmarkIndexLookup`

func inStableTier(name string) bool {
	for _, re := range stableTier {
		if re.MatchString(name) {
			return true
		}
	}
	return false
}

// gomaxprocsSuffix strips the trailing "-N" GOMAXPROCS suffix go test
// appends to benchmark names (absent when GOMAXPROCS=1, so baselines and
// fresh runs from different machines still line up).
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func canonicalName(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// baseline is one committed BENCH_<date>.json.
type baseline struct {
	Path       string
	Date       string            `json:"date"`
	Go         string            `json:"go"`
	CPU        string            `json:"cpu"`
	Gomaxprocs int               `json:"gomaxprocs"`
	Benchmarks []json.RawMessage `json:"benchmarks"`

	mbps     map[string]float64 // canonical name -> MB/s
	advisory bool               // different CPU: report, never gate
}

func loadBaseline(path string) (*baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := &baseline{Path: path, mbps: make(map[string]float64)}
	if err := json.Unmarshal(raw, b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for _, entry := range b.Benchmarks {
		var fields map[string]any
		if err := json.Unmarshal(entry, &fields); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		name, _ := fields["name"].(string)
		mbps, ok := fields["MB/s"].(float64)
		if name == "" || !ok {
			continue // benchmark without a throughput metric: nothing to gate
		}
		b.mbps[canonicalName(name)] = mbps
	}
	return b, nil
}

// findBaselines returns the newest two BENCH_*.json in dir (sorted by the
// date embedded in the file name, newest first).
func findBaselines(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(paths))) // BENCH_YYYYMMDD sorts by date
	if len(paths) > 2 {
		paths = paths[:2]
	}
	return paths, nil
}

// parseBenchOutput extracts canonical-name -> MB/s from `go test -bench`
// output. Lines without an MB/s column are ignored.
func parseBenchOutput(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] == "MB/s" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("bad MB/s in %q: %w", sc.Text(), err)
				}
				out[canonicalName(fields[0])] = v
			}
		}
	}
	return out, sc.Err()
}

// delta is one compared benchmark.
type delta struct {
	Name     string
	Base     float64 // best baseline MB/s
	Fresh    float64
	Gating   bool // stable tier AND at least one non-advisory baseline had it
	Regessed bool
}

// compare builds per-benchmark deltas of fresh against the newest gating
// baseline holding each benchmark (baselines are ordered newest first;
// advisory baselines feed display only). threshold is fractional: 0.20
// fails a benchmark below 80% of baseline.
func compare(baselines []*baseline, fresh map[string]float64, threshold float64) []delta {
	names := make(map[string]bool)
	for name := range fresh {
		names[name] = true
	}
	for _, b := range baselines {
		for name := range b.mbps {
			names[name] = true
		}
	}
	ordered := make([]string, 0, len(names))
	for name := range names {
		ordered = append(ordered, name)
	}
	sort.Strings(ordered)

	var deltas []delta
	for _, name := range ordered {
		d := delta{Name: name, Fresh: fresh[name]}
		gatingBase, anyBase := 0.0, 0.0
		for _, b := range baselines { // newest first
			v, ok := b.mbps[name]
			if !ok {
				continue
			}
			if anyBase == 0 {
				anyBase = v
			}
			if !b.advisory && gatingBase == 0 {
				gatingBase = v
			}
		}
		if _, inFresh := fresh[name]; !inFresh {
			d.Base = anyBase
			deltas = append(deltas, d) // gone: report only
			continue
		}
		if gatingBase > 0 && inStableTier(name) {
			d.Base = gatingBase
			d.Gating = true
			d.Regessed = d.Fresh < gatingBase*(1-threshold)
		} else {
			d.Base = anyBase
		}
		deltas = append(deltas, d)
	}
	return deltas
}

func main() {
	benchtime := flag.String("benchtime", "10x", "go test -benchtime for each fresh run (pinned iterations keep the runtime bounded)")
	repeat := flag.Int("repeat", 3, "fresh suite runs; each benchmark keeps its best run")
	threshold := flag.Float64("threshold", 0.20, "fractional MB/s loss that fails the gate")
	input := flag.String("input", "", "pre-recorded `go test -bench` output to gate instead of running benchmarks")
	dir := flag.String("dir", ".", "repository root holding the BENCH_*.json baselines")
	rawOut := flag.String("rawout", "", "also write the fresh runs' raw benchmark output to this file (CI artifact)")
	flag.Parse()

	if err := run(*dir, *benchtime, *input, *rawOut, *threshold, *repeat); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
}

func run(dir, benchtime, input, rawOut string, threshold float64, repeat int) error {
	paths, err := findBaselines(dir)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		fmt.Println("benchgate: no BENCH_*.json baselines; nothing to gate (run scripts/bench.sh to create one)")
		return nil
	}
	curCPU := cpuModel()
	var baselines []*baseline
	for _, p := range paths {
		b, err := loadBaseline(p)
		if err != nil {
			return err
		}
		if b.CPU != "" && curCPU != "" && b.CPU != curCPU {
			b.advisory = true
			fmt.Printf("note: %s was recorded on %q (this machine: %q) — advisory only\n", p, b.CPU, curCPU)
		}
		baselines = append(baselines, b)
		fmt.Printf("baseline: %s (%d throughput benchmarks)\n", p, len(b.mbps))
	}

	var fresh map[string]float64
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		fresh, err = parseBenchOutput(f)
		if err != nil {
			return err
		}
	} else {
		if repeat < 1 {
			repeat = 1
		}
		fresh = make(map[string]float64)
		var raw []byte
		for i := 0; i < repeat; i++ {
			fmt.Printf("fresh run %d/%d: go test -run=NONE -bench <stable tier> -benchtime=%s .\n", i+1, repeat, benchtime)
			cmd := exec.Command("go", "test", "-run=NONE", "-bench", benchPattern, "-benchtime", benchtime, ".")
			cmd.Dir = dir
			out, err := cmd.CombinedOutput()
			raw = append(raw, out...)
			if err != nil {
				os.Stdout.Write(out)
				return fmt.Errorf("fresh benchmark run failed: %w", err)
			}
			got, err := parseBenchOutput(strings.NewReader(string(out)))
			if err != nil {
				return err
			}
			for name, v := range got {
				if v > fresh[name] {
					fresh[name] = v
				}
			}
		}
		if rawOut != "" {
			if err := os.WriteFile(rawOut, raw, 0o644); err != nil {
				return err
			}
		}
	}
	if len(fresh) == 0 {
		return fmt.Errorf("fresh run produced no MB/s benchmarks")
	}

	failed := 0
	for _, d := range compare(baselines, fresh, threshold) {
		switch {
		case d.Fresh == 0:
			fmt.Printf("  gone  %-44s baseline %8.1f MB/s\n", d.Name, d.Base)
		case d.Base == 0:
			fmt.Printf("  new   %-44s %8.1f MB/s\n", d.Name, d.Fresh)
		default:
			pct := (d.Fresh - d.Base) / d.Base * 100
			tag := "info "
			if d.Gating {
				tag = "ok   "
			}
			if d.Regessed {
				tag = "FAIL "
				failed++
			}
			fmt.Printf("  %s %-44s %8.1f -> %8.1f MB/s  (%+.1f%%)\n", tag, d.Name, d.Base, d.Fresh, pct)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d stable-tier benchmark(s) regressed more than %.0f%%\n", failed, threshold*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK (threshold %.0f%%)\n", threshold*100)
	return nil
}

// cpuModel reads the CPU model name, mirroring scripts/bench.sh's header
// field; empty when unavailable (the guard then stays silent).
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}
