package faultio

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"freqdedup/internal/vfs"
)

// MemFS is an in-memory vfs.FS with an explicit durability model and a
// fault injector — the substrate of the crash-point explorer. Every file
// carries two states:
//
//   - data: the volatile view, what reads observe — page cache.
//   - synced: the durable view, what survives a crash — the content at
//     the last acknowledged Sync (nil if never synced).
//
// Writes mutate only data; Sync copies data to synced. A file that was
// never synced does not exist in the crash image at all. Rename and
// Remove take durable effect immediately (the model of a journaling
// filesystem where the stack syncs files before renaming them, which all
// three freqdedup formats do); a renamed file keeps its synced state.
//
// CrashImage materializes the durable view as a fresh MemFS: reopening
// the stack against it simulates a machine that lost power after the
// plan's crash point.
//
// MemFS is safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
	inj   *Injector
}

type memFile struct {
	data   []byte
	synced []byte // nil = never synced: absent from the crash image
}

// NewMemFS returns an empty MemFS injecting nothing.
func NewMemFS() *MemFS { return NewMemFSPlan(Plan{}) }

// NewMemFSPlan returns an empty MemFS armed with the fault plan.
func NewMemFSPlan(plan Plan) *MemFS {
	return &MemFS{
		files: make(map[string]*memFile),
		dirs:  map[string]bool{".": true},
		inj:   NewInjector(plan),
	}
}

// Injector returns the filesystem's injector, for reading the op counter
// and sync points after a workload.
func (m *MemFS) Injector() *Injector { return m.inj }

// observe routes one operation through the injector, returning the error
// the operation must fail with (nil to proceed) and the matched fault for
// corruption-type rules.
func (m *MemFS) observe(op Op, path string, mutating bool) (Fault, error) {
	f, matched, err := m.inj.observe(op, path, mutating)
	if err != nil {
		return Fault{}, err
	}
	if !matched {
		return Fault{}, nil
	}
	return f, m.inj.fire(f)
}

func clean(name string) string { return filepath.Clean(name) }

// CrashImage returns the durable view as a fresh, fault-free MemFS: only
// files that were synced at least once, each with its last-synced
// content. Directories survive (metadata journaling).
func (m *MemFS) CrashImage() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	img := NewMemFS()
	for name, f := range m.files {
		if f.synced == nil {
			continue
		}
		img.files[name] = &memFile{
			data:   append([]byte(nil), f.synced...),
			synced: append([]byte(nil), f.synced...),
		}
	}
	for d := range m.dirs {
		img.dirs[d] = true
	}
	return img
}

// Corrupt flips one seeded-random bit in the named file's durable
// (synced) content — injected post-fsync media corruption. It returns the
// corrupted byte offset. The volatile view is corrupted identically, as a
// real media error would surface through the page cache after eviction.
func (m *MemFS) Corrupt(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[clean(name)]
	if !ok {
		return 0, fmt.Errorf("faultio: corrupt %s: %w", name, fs.ErrNotExist)
	}
	if f.synced == nil || len(f.synced) == 0 {
		return 0, fmt.Errorf("faultio: corrupt %s: no durable bytes", name)
	}
	var off int64
	m.inj.random(func(rng *rand.Rand) {
		off = rng.Int63n(int64(len(f.synced)))
		mask := byte(1 << rng.Intn(8))
		f.synced[off] ^= mask
		if int(off) < len(f.data) {
			f.data[off] ^= mask
		}
	})
	return off, nil
}

// CorruptAt flips the given bit mask at a byte offset of the named file's
// durable content (and the volatile view), for precisely aimed damage.
func (m *MemFS) CorruptAt(name string, off int64, mask byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[clean(name)]
	if !ok {
		return fmt.Errorf("faultio: corrupt %s: %w", name, fs.ErrNotExist)
	}
	if f.synced == nil || off < 0 || off >= int64(len(f.synced)) {
		return fmt.Errorf("faultio: corrupt %s: offset %d outside durable bytes", name, off)
	}
	f.synced[off] ^= mask
	if int(off) < len(f.data) {
		f.data[off] ^= mask
	}
	return nil
}

// Files returns the names of all files in the volatile view, sorted.
func (m *MemFS) Files() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (m *MemFS) mkParents(name string) {
	for d := filepath.Dir(name); d != "." && d != "/" && !m.dirs[d]; d = filepath.Dir(d) {
		m.dirs[d] = true
	}
}

// OpenFile implements vfs.FS.
func (m *MemFS) OpenFile(name string, flag int, perm os.FileMode) (vfs.File, error) {
	name = clean(name)
	m.mu.Lock()
	f, exists := m.files[name]
	m.mu.Unlock()

	op := OpOpen
	creating := !exists && flag&os.O_CREATE != 0
	if creating {
		op = OpCreate
	}
	if _, err := m.observe(op, name, creating); err != nil {
		return nil, wrapPathErr("open", name, err)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	// Re-check under the lock; the observe window is unlocked.
	f, exists = m.files[name]
	switch {
	case !exists && flag&os.O_CREATE == 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case exists && flag&os.O_CREATE != 0 && flag&os.O_EXCL != 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: fs.ErrExist}
	case !exists:
		f = &memFile{}
		m.files[name] = f
		m.mkParents(name)
	}
	if flag&os.O_TRUNC != 0 {
		f.data = f.data[:0]
	}
	return &memHandle{fs: m, name: name, f: f, writable: flag&(os.O_WRONLY|os.O_RDWR) != 0}, nil
}

// Open implements vfs.FS. Opening a directory returns a handle usable
// only for Sync and Close, as with package os.
func (m *MemFS) Open(name string) (vfs.File, error) {
	name = clean(name)
	if _, err := m.observe(OpOpen, name, false); err != nil {
		return nil, wrapPathErr("open", name, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirs[name] {
		return &memHandle{fs: m, name: name, dir: true}, nil
	}
	f, ok := m.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &memHandle{fs: m, name: name, f: f}, nil
}

// Rename implements vfs.FS. The rename takes durable effect immediately;
// the renamed file keeps its synced state (the stack always syncs before
// renaming, and the model charges directory-metadata journaling to the
// filesystem).
func (m *MemFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = clean(oldpath), clean(newpath)
	if _, err := m.observe(OpRename, newpath, true); err != nil {
		return wrapPathErr("rename", newpath, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldpath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, oldpath)
	m.files[newpath] = f
	m.mkParents(newpath)
	return nil
}

// Remove implements vfs.FS; durable immediately, like Rename.
func (m *MemFS) Remove(name string) error {
	name = clean(name)
	if _, err := m.observe(OpRemove, name, true); err != nil {
		return wrapPathErr("remove", name, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// Stat implements vfs.FS.
func (m *MemFS) Stat(name string) (os.FileInfo, error) {
	name = clean(name)
	if _, err := m.observe(OpStat, name, false); err != nil {
		return nil, wrapPathErr("stat", name, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirs[name] {
		return memInfo{name: filepath.Base(name), dir: true}, nil
	}
	f, ok := m.files[name]
	if !ok {
		return nil, &os.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
	}
	return memInfo{name: filepath.Base(name), size: int64(len(f.data))}, nil
}

// Glob implements vfs.FS.
func (m *MemFS) Glob(pattern string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for name := range m.files {
		ok, err := filepath.Match(pattern, name)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// MkdirAll implements vfs.FS.
func (m *MemFS) MkdirAll(path string, perm os.FileMode) error {
	path = clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[path] = true
	m.mkParents(filepath.Join(path, "x"))
	return nil
}

// memHandle is one open MemFS file (or directory).
type memHandle struct {
	fs       *MemFS
	name     string
	f        *memFile
	dir      bool
	writable bool
	pos      int64 // sequential-Write position
	closed   bool
}

func (h *memHandle) Name() string { return h.name }

func (h *memHandle) Close() error {
	h.closed = true
	return nil
}

func (h *memHandle) Stat() (os.FileInfo, error) {
	if h.dir {
		return memInfo{name: filepath.Base(h.name), dir: true}, nil
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return memInfo{name: filepath.Base(h.name), size: int64(len(h.f.data))}, nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	if h.dir {
		return 0, &os.PathError{Op: "read", Path: h.name, Err: errors.New("is a directory")}
	}
	if _, err := h.fs.observe(OpRead, h.name, false); err != nil {
		return 0, wrapPathErr("read", h.name, err)
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	if off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// writeAt applies one (possibly faulted) write to the volatile view.
func (h *memHandle) writeAt(p []byte, off int64) (int, error) {
	fault, err := h.fs.observe(OpWrite, h.name, true)
	if err != nil {
		// A failing write may still tear a prefix into the page cache.
		if fault.ShortWrite && len(p) > 0 {
			var n int
			h.fs.inj.random(func(rng *rand.Rand) { n = rng.Intn(len(p)) })
			h.fs.mu.Lock()
			if !h.closed {
				h.f.extend(off + int64(n))
				copy(h.f.data[off:], p[:n])
			}
			h.fs.mu.Unlock()
		}
		return 0, wrapPathErr("write", h.name, err)
	}
	if fault.FlipBit && len(p) > 0 {
		// Corrupt one bit in flight: the caller's buffer is only
		// borrowed, so flip a copy.
		q := append([]byte(nil), p...)
		h.fs.inj.random(func(rng *rand.Rand) {
			q[rng.Intn(len(q))] ^= 1 << rng.Intn(8)
		})
		p = q
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	h.f.extend(off + int64(len(p)))
	copy(h.f.data[off:], p)
	return len(p), nil
}

func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	if !h.writable {
		return 0, &os.PathError{Op: "write", Path: h.name, Err: os.ErrPermission}
	}
	return h.writeAt(p, off)
}

func (h *memHandle) Write(p []byte) (int, error) {
	if !h.writable {
		return 0, &os.PathError{Op: "write", Path: h.name, Err: os.ErrPermission}
	}
	n, err := h.writeAt(p, h.pos)
	h.pos += int64(n)
	return n, err
}

func (h *memHandle) Truncate(size int64) error {
	if !h.writable {
		return &os.PathError{Op: "truncate", Path: h.name, Err: os.ErrPermission}
	}
	if _, err := h.fs.observe(OpTruncate, h.name, true); err != nil {
		return wrapPathErr("truncate", h.name, err)
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	if size <= int64(len(h.f.data)) {
		h.f.data = h.f.data[:size]
	} else {
		h.f.extend(size)
	}
	return nil
}

func (h *memHandle) Sync() error {
	if h.dir {
		// Directory sync: metadata is already durable in this model, but
		// the op still ticks the crash clock like a real fdatasync would.
		_, err := h.fs.observe(OpSync, h.name, true)
		if err != nil {
			return wrapPathErr("sync", h.name, err)
		}
		return nil
	}
	fault, err := h.fs.observe(OpSync, h.name, true)
	if err != nil {
		return wrapPathErr("sync", h.name, err)
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.f.synced = append(h.f.synced[:0], h.f.data...)
	if fault.FlipBit && len(h.f.synced) > 0 {
		// Post-fsync corruption: the sync is acknowledged, the media lies.
		h.fs.inj.random(func(rng *rand.Rand) {
			off := rng.Intn(len(h.f.synced))
			mask := byte(1 << rng.Intn(8))
			h.f.synced[off] ^= mask
			h.f.data[off] ^= mask
		})
	}
	return nil
}

func (f *memFile) extend(size int64) {
	if n := size - int64(len(f.data)); n > 0 {
		f.data = append(f.data, make([]byte, n)...)
	}
}

func wrapPathErr(op, path string, err error) error {
	return &os.PathError{Op: op, Path: path, Err: err}
}

// memInfo is MemFS's os.FileInfo.
type memInfo struct {
	name string
	size int64
	dir  bool
}

func (i memInfo) Name() string { return i.name }
func (i memInfo) Size() int64  { return i.size }
func (i memInfo) Mode() os.FileMode {
	if i.dir {
		return os.ModeDir | 0o755
	}
	return 0o644
}
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return i.dir }
func (i memInfo) Sys() any           { return nil }
