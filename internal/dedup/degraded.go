package dedup

import (
	"errors"
	"fmt"

	"freqdedup/internal/container"
	"freqdedup/internal/fphash"
)

// LostRange describes one contiguous region of a degraded restore's output
// that could not be recovered: the chunk behind it is missing or corrupt,
// and the region was zero-filled instead.
type LostRange struct {
	// Offset is the region's byte offset in the restored stream.
	Offset uint64
	// Length is the region's length in bytes (the lost chunk's size, from
	// the recipe).
	Length uint64
	// Fingerprint identifies the lost ciphertext chunk.
	Fingerprint fphash.Fingerprint
}

// DegradedError reports a restore that completed with holes: every byte
// outside Ranges is correct, every byte inside is zero. It is returned by
// Restore when Config.DegradedRestore is set and at least one chunk was
// unrecoverable; retrieve it with errors.As. Ranges are in stream order
// and never overlap.
type DegradedError struct {
	Ranges []LostRange
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("dedup: degraded restore: %d lost ranges, %d bytes zero-filled",
		len(e.Ranges), e.BytesLost())
}

// BytesLost is the total zero-filled byte count.
func (e *DegradedError) BytesLost() uint64 {
	var n uint64
	for _, r := range e.Ranges {
		n += r.Length
	}
	return n
}

// lostable reports whether a chunk-read error is the kind degraded restore
// absorbs as a hole: the chunk is gone (not in the index, not in its
// container) or its container is corrupt. Anything else — a backend I/O
// failure, a crashed fault layer — still fails the restore, because
// retrying could succeed.
func lostable(err error) bool {
	return errors.Is(err, ErrNotFound) ||
		errors.Is(err, container.ErrNotFound) ||
		errors.Is(err, container.ErrCorrupt)
}

// zeroFill zeroes a (possibly pool-recycled) buffer.
func zeroFill(buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
}
