package workload

import (
	"math/rand"

	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

// mix64 is the splitmix64 finalizer, a bijection on uint64: distinct
// inputs mint distinct fingerprints.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// minter mints fresh, never-repeating fingerprints. The counter is salted
// from the generator's random stream, so distinct seeds mint from disjoint
// fingerprint spaces — which is what makes "distinct seeds ⇒ distinct
// fingerprint multisets" a hard property rather than a likelihood.
type minter struct {
	salt uint64
	next uint64
}

func (m *minter) mint() fphash.Fingerprint {
	for {
		m.next++
		fp := fphash.FromUint64(mix64(m.salt + m.next))
		if !fp.IsZero() {
			return fp
		}
	}
}

// Extent is a contiguous run of chunks that moves, copies, and churns as a
// unit: a file, a media blob, a VM image, or a database segment. Copying
// an extent copies its chunk refs (same fingerprints — that is what
// duplication is) into an independent object, so later edits to one copy
// never touch the others.
type Extent struct {
	chunks []trace.ChunkRef
	// vol is the extent's churn propensity; 0 marks the immutable stable
	// backbone that survives across many generations.
	vol float64
}

func (e *Extent) clone() *Extent {
	c := make([]trace.ChunkRef, len(e.chunks))
	copy(c, e.chunks)
	return &Extent{chunks: c, vol: e.vol}
}

func (e *Extent) bytes() int {
	var n int
	for _, c := range e.chunks {
		n += int(c.Size)
	}
	return n
}

// Stream is one user's backup stream: extents in stable stream order.
type Stream struct {
	extents []*Extent
}

func (s *Stream) bytes() int {
	var n int
	for _, e := range s.extents {
		n += e.bytes()
	}
	return n
}

func (s *Stream) chunkCount() int {
	var n int
	for _, e := range s.extents {
		n += len(e.chunks)
	}
	return n
}

// library is the shared duplication pool, mirroring internal/trace's
// two-tier fileLibrary: a tiny hot head copied at geometrically separated
// rates (the stable frequency head the ciphertext-only attacks seed from)
// and a broad tail of ordinary extents copied uniformly.
type library struct {
	hot  []*Extent
	tail []*Extent
}

// State is the working state a generator evolves: per-user extent streams,
// the shared duplication library, the fingerprint minter, and the single
// random stream every modifier draws from.
type State struct {
	// Rng is the generator's private random source. Modifiers must take
	// all randomness from it (see the package documentation).
	Rng *rand.Rand
	// Cfg is the validated configuration.
	Cfg Config

	mint  minter
	users []*Stream
	lib   *library
}

func newState(cfg Config) *State {
	rng := cfg.rng()
	st := &State{
		Rng:   rng,
		Cfg:   cfg,
		mint:  minter{salt: rng.Uint64()},
		users: make([]*Stream, cfg.Users),
	}
	for i := range st.users {
		st.users[i] = &Stream{}
	}
	return st
}

// Users returns the per-user streams in stable order.
func (st *State) Users() []*Stream { return st.users }

// MintChunk mints one fresh chunk with a size drawn from the chunk model.
func (st *State) MintChunk() trace.ChunkRef {
	return trace.ChunkRef{FP: st.mint.mint(), Size: st.Cfg.Chunk.Draw(st.Rng)}
}

// FreshExtent mints a new extent of approximately targetBytes.
func (st *State) FreshExtent(targetBytes int) *Extent {
	e := &Extent{}
	var got int
	for got < targetBytes || len(e.chunks) == 0 {
		c := st.MintChunk()
		e.chunks = append(e.chunks, c)
		got += int(c.Size)
	}
	return e
}

// objectBytes draws an object size with the configured mean (exponential,
// floored at one chunk's worth of data).
func (st *State) objectBytes(mean int) int {
	n := int(st.Rng.ExpFloat64() * float64(mean))
	if n < 4096 {
		n = 4096
	}
	return n
}

// InitLibrary pre-generates the shared duplication pool: nHot hot extents
// (single-chunk, so the frequency head consists of well-separated
// singleton ranks) and nTail ordinary extents with the given mean size.
func (st *State) InitLibrary(nHot, nTail, meanBytes int) {
	lib := &library{
		hot:  make([]*Extent, nHot),
		tail: make([]*Extent, nTail),
	}
	for i := range lib.hot {
		lib.hot[i] = &Extent{chunks: []trace.ChunkRef{st.MintChunk()}}
	}
	for i := range lib.tail {
		lib.tail[i] = st.FreshExtent(st.objectBytes(meanBytes))
	}
	st.lib = lib
}

// pickHot returns a copy of a hot library extent, rank chosen geometrically
// so rank 0 is copied about twice as often as rank 1 — stable,
// well-separated frequency ranks across generations.
func (st *State) pickHot() *Extent {
	h := 0
	for h < len(st.lib.hot)-1 && st.Rng.Float64() < 0.5 {
		h++
	}
	return st.lib.hot[h].clone()
}

// pickTail returns a copy of a uniformly selected tail library extent.
func (st *State) pickTail() *Extent {
	return st.lib.tail[st.Rng.Intn(len(st.lib.tail))].clone()
}

// drawVolatility assigns an extent's churn propensity: stableFrac of
// extents are immutable, the rest get an exponential weight so a small hot
// working set dominates churn.
func (st *State) drawVolatility(stableFrac float64) float64 {
	if st.Rng.Float64() < stableFrac {
		return 0
	}
	return st.Rng.ExpFloat64() + 0.05
}

// newObject draws one new extent for a growing stream: a hot library copy
// with probability hotFrac, a tail library copy with probability reuseFrac,
// or a fresh extent otherwise.
func (st *State) newObject(meanBytes int, hotFrac, reuseFrac float64) *Extent {
	switch r := st.Rng.Float64(); {
	case st.lib != nil && r < hotFrac:
		return st.pickHot()
	case st.lib != nil && r < hotFrac+reuseFrac:
		return st.pickTail()
	default:
		return st.FreshExtent(st.objectBytes(meanBytes))
	}
}

// Fill grows user u's stream by approximately targetBytes of objects with
// the given library-draw and stability mix.
func (st *State) Fill(u, targetBytes int, hotFrac, reuseFrac, stableFrac float64) {
	s := st.users[u]
	var added int
	for added < targetBytes {
		e := st.newObject(st.Cfg.MeanObjectBytes, hotFrac, reuseFrac)
		e.vol = st.drawVolatility(stableFrac)
		s.extents = append(s.extents, e)
		added += e.bytes()
	}
}

// Snapshot emits the full-backup chunk stream of the current generation:
// users in order, extents in stream order within each user.
func (st *State) Snapshot(label string) *trace.Backup {
	var total int
	for _, s := range st.users {
		total += s.chunkCount()
	}
	b := &trace.Backup{Label: label, Chunks: make([]trace.ChunkRef, 0, total)}
	for _, s := range st.users {
		for _, e := range s.extents {
			b.Chunks = append(b.Chunks, e.chunks...)
		}
	}
	return b
}

// rewriteRegion rewrites a clustered contiguous region covering
// contentFrac of the extent's chunks with freshly minted ones — the
// paper's "changes to backups often appear in few clustered regions of
// chunks". When zoneFrac is positive the region starts within the leading
// zoneFrac of the extent with high probability, concentrating churn in a
// hot zone and leaving a stable backbone. Chunk counts drift by ±1 like
// content-defined boundaries under edits.
func (st *State) rewriteRegion(e *Extent, contentFrac, zoneFrac float64) {
	n := len(e.chunks)
	if n == 0 {
		return
	}
	run := int(float64(n)*contentFrac + 0.5)
	if run < 1 {
		run = 1
	}
	if run > n {
		run = n
	}
	limit := n - run + 1
	start := st.Rng.Intn(limit)
	if zoneFrac > 0 && st.Rng.Float64() < 0.85 {
		zone := int(float64(n) * zoneFrac)
		if zone < 1 {
			zone = 1
		}
		if zone > limit {
			zone = limit
		}
		start = st.Rng.Intn(zone)
	}
	repl := make([]trace.ChunkRef, 0, run+1)
	for i := 0; i < run; i++ {
		repl = append(repl, st.MintChunk())
	}
	switch st.Rng.Intn(4) {
	case 0:
		repl = append(repl, st.MintChunk())
	case 1:
		if len(repl) > 1 {
			repl = repl[:len(repl)-1]
		}
	}
	out := make([]trace.ChunkRef, 0, n-run+len(repl))
	out = append(out, e.chunks[:start]...)
	out = append(out, repl...)
	out = append(out, e.chunks[start+run:]...)
	e.chunks = out
}

// weightedSample picks up to k distinct extent indices with probability
// proportional to volatility; immutable extents are never picked.
func (st *State) weightedSample(s *Stream, k int) []int {
	type cand struct {
		idx int
		w   float64
	}
	cands := make([]cand, 0, len(s.extents))
	var total float64
	for i, e := range s.extents {
		if e.vol > 0 {
			cands = append(cands, cand{idx: i, w: e.vol})
			total += e.vol
		}
	}
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, 0, k)
	for len(out) < k {
		r := st.Rng.Float64() * total
		var acc float64
		pick := len(cands) - 1
		for i, c := range cands {
			acc += c.w
			if r < acc {
				pick = i
				break
			}
		}
		out = append(out, cands[pick].idx)
		total -= cands[pick].w
		cands[pick] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
	}
	return out
}
