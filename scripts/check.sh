#!/bin/sh
# Full development gate: formatting, vet, build, race tests. Equivalent to
# `make check` for environments without make.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== bench smoke (-benchtime=1x)"
scripts/bench.sh --smoke

echo "check: OK"
