package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"freqdedup/internal/dedup"
	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
	"freqdedup/internal/trace"
	"freqdedup/internal/wire"
)

// fakeBackend is an in-memory Backend: a chunk map shared across
// sessions, snapshots as recipe-entry lists. Restore decrypts with the
// committed keys, so client→server→client round trips are genuine.
type fakeBackend struct {
	mu     sync.Mutex
	store  map[fphash.Fingerprint][]byte
	snaps  map[string][]mle.RecipeEntry
	puts   int // chunks stored across all sessions
	aborts int
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		store: make(map[fphash.Fingerprint][]byte),
		snaps: make(map[string][]mle.RecipeEntry),
	}
}

type fakeSession struct {
	b    *fakeBackend
	name string
}

func (b *fakeBackend) BeginBackup(name string) (BackupSession, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.snaps[name]; ok {
		return nil, fmt.Errorf("%w: %q", dedup.ErrSnapshotExists, name)
	}
	return &fakeSession{b: b, name: name}, nil
}

func (s *fakeSession) Negotiate(refs []trace.ChunkRef) ([]bool, error) {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	miss := make([]bool, len(refs))
	for i, r := range refs {
		_, have := s.b.store[r.FP]
		miss[i] = !have
	}
	return miss, nil
}

func (s *fakeSession) PutChunks(chunks []dedup.PutChunk) error {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	for _, c := range chunks {
		s.b.store[c.FP] = append([]byte(nil), c.Data...)
		s.b.puts++
	}
	return nil
}

func (s *fakeSession) Commit(entries []mle.RecipeEntry) (wire.SnapshotInfo, error) {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	if _, ok := s.b.snaps[s.name]; ok {
		return wire.SnapshotInfo{}, fmt.Errorf("%w: %q", dedup.ErrSnapshotExists, s.name)
	}
	s.b.snaps[s.name] = entries
	var logical uint64
	for _, e := range entries {
		logical += uint64(e.Size)
	}
	return wire.SnapshotInfo{Name: s.name, CreatedUnix: 1, LogicalBytes: logical, Chunks: uint32(len(entries))}, nil
}

func (s *fakeSession) Abort() {
	s.b.mu.Lock()
	s.b.aborts++
	s.b.mu.Unlock()
}

func (b *fakeBackend) Restore(ctx context.Context, name string, w io.Writer) error {
	b.mu.Lock()
	entries, ok := b.snaps[name]
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", dedup.ErrSnapshotNotFound, name)
	}
	for _, e := range entries {
		b.mu.Lock()
		ct := b.store[e.Fingerprint]
		b.mu.Unlock()
		if _, err := w.Write(mle.DecryptDeterministic(e.Key, ct)); err != nil {
			return err
		}
	}
	return nil
}

func (b *fakeBackend) Snapshots(prefix string) []wire.SnapshotInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []wire.SnapshotInfo
	for name, entries := range b.snaps {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			out = append(out, wire.SnapshotInfo{Name: name, Chunks: uint32(len(entries))})
		}
	}
	return out
}

func (b *fakeBackend) Delete(ctx context.Context, name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.snaps[name]; !ok {
		return fmt.Errorf("%w: %q", dedup.ErrSnapshotNotFound, name)
	}
	delete(b.snaps, name)
	return nil
}

func (b *fakeBackend) TenantUsage(tenant string) (wire.TenantUsage, error) {
	return wire.TenantUsage{Tenant: tenant, Snapshots: 7}, nil
}

func (b *fakeBackend) putCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.puts
}

func (b *fakeBackend) storeLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.store)
}

func (b *fakeBackend) snapCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.snaps)
}

func (b *fakeBackend) hasSnap(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.snaps[name]
	return ok
}

// waitAborts waits for the server's deferred Abort to land: the TError
// frame reaches the client before the handler aborts the session.
func (b *fakeBackend) waitAborts(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		n := b.aborts
		b.mu.Unlock()
		if n == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("aborts = %d, want %d", n, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// startServer serves cfg on a loopback listener, returning the address
// and a cleanup func.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return srv, ln.Addr().String()
}

func TestClientServerRoundTrip(t *testing.T) {
	backend := newFakeBackend()
	_, addr := startServer(t, Config{Backend: backend})

	c, err := Dial(addr, DialConfig{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	data := make([]byte, 3<<20)
	rand.New(rand.NewSource(7)).Read(data)
	info, err := c.Backup(context.Background(), "first", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "first" || info.LogicalBytes != uint64(len(data)) {
		t.Fatalf("snapshot info = %+v", info)
	}
	firstPuts := backend.putCount()
	if firstPuts == 0 {
		t.Fatal("no chunks reached the backend")
	}

	// The same bytes again: negotiation must dedup every chunk, so zero
	// uploads reach the store.
	if _, err := c.Backup(context.Background(), "second", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if n := backend.putCount(); n != firstPuts {
		t.Fatalf("duplicate backup uploaded %d chunks", n-firstPuts)
	}

	var got bytes.Buffer
	if err := c.Restore(context.Background(), "first", &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatal("restored bytes differ")
	}

	snaps, err := c.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	for _, s := range snaps {
		if s.Name != "first" && s.Name != "second" {
			t.Fatalf("unexpected tenant-relative name %q", s.Name)
		}
	}

	u, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if u.Tenant != "alice" || u.Snapshots != 7 {
		t.Fatalf("usage = %+v", u)
	}

	if err := c.Delete("second"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("second"); !errors.Is(err, dedup.ErrSnapshotNotFound) {
		t.Fatalf("second delete: %v", err)
	}

	// Duplicate name rejection is clean: the session survives it.
	if _, err := c.Backup(context.Background(), "first", bytes.NewReader(data)); !errors.Is(err, dedup.ErrSnapshotExists) {
		t.Fatalf("duplicate name: %v", err)
	}
	if _, err := c.Snapshots(); err != nil {
		t.Fatalf("session dead after clean rejection: %v", err)
	}
}

func TestEmptyBackup(t *testing.T) {
	backend := newFakeBackend()
	_, addr := startServer(t, Config{Backend: backend})
	c, err := Dial(addr, DialConfig{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	info, err := c.Backup(context.Background(), "empty", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if info.LogicalBytes != 0 || info.Chunks != 0 {
		t.Fatalf("empty snapshot info = %+v", info)
	}
	var got bytes.Buffer
	if err := c.Restore(context.Background(), "empty", &got); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("restored %d bytes from empty snapshot", got.Len())
	}
}

func TestAuthRejected(t *testing.T) {
	backend := newFakeBackend()
	_, addr := startServer(t, Config{
		Backend: backend,
		Auth:    TokenAuth(map[string]string{"alice": "sesame"}),
	})

	if _, err := Dial(addr, DialConfig{Tenant: "alice", Token: []byte("wrong")}); err == nil {
		t.Fatal("wrong token accepted")
	} else if ei := new(wire.ErrorInfo); !errors.As(err, &ei) || ei.Code != wire.CodeAuth {
		t.Fatalf("wrong token error = %v", err)
	}
	if _, err := Dial(addr, DialConfig{Tenant: "mallory", Token: []byte("sesame")}); err == nil {
		t.Fatal("unknown tenant accepted")
	}
	c, err := Dial(addr, DialConfig{Tenant: "alice", Token: []byte("sesame")})
	if err != nil {
		t.Fatalf("right token rejected: %v", err)
	}
	c.Close()
}

func TestBadTenantNames(t *testing.T) {
	backend := newFakeBackend()
	_, addr := startServer(t, Config{Backend: backend})
	for _, tenant := range []string{"", "a/b", "has space", string(make([]byte, 65))} {
		if _, err := Dial(addr, DialConfig{Tenant: tenant}); err == nil {
			t.Fatalf("tenant %q accepted", tenant)
		}
	}
}

// rawSession opens a connection and completes the handshake by hand, for
// protocol-violation tests the well-behaved Client cannot express.
func rawSession(t *testing.T, addr, tenant string) *wire.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	wc := wire.NewConn(nc)
	hello, err := wire.AppendHello(nil, wire.Hello{Version: wire.Version, Tenant: tenant})
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Send(wire.THello, hello); err != nil {
		t.Fatal(err)
	}
	typ, _, err := wc.Recv()
	if err != nil || typ != wire.THelloOK {
		t.Fatalf("handshake: typ %d err %v", typ, err)
	}
	return wc
}

// expectError drains frames until a TError arrives and returns it.
func expectError(t *testing.T, wc *wire.Conn) wire.ErrorInfo {
	t.Helper()
	for {
		typ, p, err := wc.Recv()
		if err != nil {
			t.Fatalf("connection died before TError: %v", err)
		}
		if typ != wire.TError {
			continue
		}
		e, perr := wire.ParseError(p)
		if perr != nil {
			t.Fatal(perr)
		}
		return e
	}
}

func beginBackup(t *testing.T, wc *wire.Conn, name string) {
	t.Helper()
	payload, err := wire.AppendName(nil, name)
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Send(wire.TBackupBegin, payload); err != nil {
		t.Fatal(err)
	}
	typ, _, err := wc.Recv()
	if err != nil || typ != wire.TBackupReady {
		t.Fatalf("BackupBegin: typ %d err %v", typ, err)
	}
}

func TestInflightLimitEnforced(t *testing.T) {
	backend := newFakeBackend()
	_, addr := startServer(t, Config{Backend: backend, MaxInflight: 1})
	wc := rawSession(t, addr, "alice")
	beginBackup(t, wc, "b")

	ref := trace.ChunkRef{FP: fphash.FromBytes([]byte("x")), Size: 1}
	for seq := uint32(0); seq < 2; seq++ {
		if err := wc.Send(wire.TNegotiate, wire.AppendNegotiate(nil, seq, []trace.ChunkRef{ref})); err != nil {
			t.Fatal(err)
		}
	}
	if e := expectError(t, wc); e.Code != wire.CodeProtocol {
		t.Fatalf("error code = %d, want protocol", e.Code)
	}
	backend.waitAborts(t, 1)
}

func TestForgedChunkRejected(t *testing.T) {
	backend := newFakeBackend()
	_, addr := startServer(t, Config{Backend: backend})
	wc := rawSession(t, addr, "mallory")
	beginBackup(t, wc, "poison")

	// Negotiate an honest-looking fingerprint, then upload different
	// bytes of the right size under it — the poisoning move against a
	// shared store.
	real := []byte("the chunk mallory claims to have")
	forged := []byte("the bytes mallory actually sends")
	ref := trace.ChunkRef{FP: fphash.FromBytes(real), Size: uint32(len(real))}
	if err := wc.Send(wire.TNegotiate, wire.AppendNegotiate(nil, 0, []trace.ChunkRef{ref})); err != nil {
		t.Fatal(err)
	}
	typ, p, err := wc.Recv()
	if err != nil || typ != wire.TNegotiateReply {
		t.Fatalf("negotiate: typ %d err %v", typ, err)
	}
	if _, miss, err := wire.ParseNegotiateReply(p, nil); err != nil || len(miss) != 1 || !miss[0] {
		t.Fatalf("miss = %v err %v", miss, err)
	}
	if err := wc.Send(wire.TChunkData, wire.AppendChunkData(nil, 0, [][]byte{forged})); err != nil {
		t.Fatal(err)
	}
	if e := expectError(t, wc); e.Code != wire.CodeProtocol {
		t.Fatalf("error code = %d, want protocol", e.Code)
	}
	backend.waitAborts(t, 1)
	if backend.storeLen() != 0 {
		t.Fatal("forged chunk reached the shared store")
	}
}

func TestCommitMustMatchNegotiatedStream(t *testing.T) {
	backend := newFakeBackend()
	_, addr := startServer(t, Config{Backend: backend})
	wc := rawSession(t, addr, "mallory")
	beginBackup(t, wc, "sneak")

	data := []byte("one honest chunk")
	ref := trace.ChunkRef{FP: fphash.FromBytes(data), Size: uint32(len(data))}
	if err := wc.Send(wire.TNegotiate, wire.AppendNegotiate(nil, 0, []trace.ChunkRef{ref})); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wc.Recv(); err != nil || typ != wire.TNegotiateReply {
		t.Fatalf("negotiate: typ %d err %v", typ, err)
	}
	if err := wc.Send(wire.TChunkData, wire.AppendChunkData(nil, 0, [][]byte{data})); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wc.Recv(); err != nil || typ != wire.TWindowAck {
		t.Fatalf("ack: typ %d err %v", typ, err)
	}
	// Commit references a chunk that was never negotiated: a foreign
	// fingerprint the tenant hopes is already in the shared store.
	foreign := mle.RecipeEntry{Fingerprint: fphash.FromBytes([]byte("foreign")), Size: 7}
	commit, err := wire.AppendCommit(nil, []mle.RecipeEntry{foreign})
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Send(wire.TBackupCommit, commit); err != nil {
		t.Fatal(err)
	}
	if e := expectError(t, wc); e.Code != wire.CodeProtocol {
		t.Fatalf("error code = %d, want protocol", e.Code)
	}
	backend.waitAborts(t, 1)
	if backend.snapCount() != 0 {
		t.Fatal("mismatched commit registered a snapshot")
	}
}

func TestGracefulDrainFinishesBackup(t *testing.T) {
	backend := newFakeBackend()
	srv, addr := startServer(t, Config{Backend: backend})
	wc := rawSession(t, addr, "alice")
	beginBackup(t, wc, "inflight")

	data := []byte("a chunk that outlives the listener")
	ref := trace.ChunkRef{FP: fphash.FromBytes(data), Size: uint32(len(data))}
	if err := wc.Send(wire.TNegotiate, wire.AppendNegotiate(nil, 0, []trace.ChunkRef{ref})); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wc.Recv(); err != nil || typ != wire.TNegotiateReply {
		t.Fatalf("negotiate: typ %d err %v", typ, err)
	}

	// Shutdown with the session mid-flight: the drain must let it finish.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// New connections are refused once the listener is down.
	for i := 0; ; i++ {
		if _, err := net.DialTimeout("tcp", addr, time.Second); err != nil {
			break
		}
		if i > 100 {
			t.Fatal("listener still accepting after Shutdown")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := wc.Send(wire.TChunkData, wire.AppendChunkData(nil, 0, [][]byte{data})); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wc.Recv(); err != nil || typ != wire.TWindowAck {
		t.Fatalf("ack during drain: typ %d err %v", typ, err)
	}
	entry := mle.RecipeEntry{Fingerprint: ref.FP, Size: ref.Size}
	commit, err := wire.AppendCommit(nil, []mle.RecipeEntry{entry})
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Send(wire.TBackupCommit, commit); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wc.Recv(); err != nil || typ != wire.TBackupDone {
		t.Fatalf("commit during drain: typ %d err %v", typ, err)
	}
	// The drained connection then refuses new work with CodeShutdown.
	if typ, p, err := wc.Recv(); err == nil {
		if typ != wire.TError {
			t.Fatalf("post-drain frame type %d", typ)
		}
		if e, perr := wire.ParseError(p); perr != nil || e.Code != wire.CodeShutdown {
			t.Fatalf("post-drain error = %+v (%v)", e, perr)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if !backend.hasSnap("alice/inflight") {
		t.Fatal("drained backup did not commit")
	}
}

func TestRateLimiterWiredIntoUploads(t *testing.T) {
	// Functional check only: a tiny rate must still complete correctness
	// intact (the shaping math is unit-tested with a fake clock).
	backend := newFakeBackend()
	_, addr := startServer(t, Config{Backend: backend, RateBytesPerSec: 32 << 20, RateBurst: 64 << 10})
	c, err := Dial(addr, DialConfig{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(9)).Read(data)
	if _, err := c.Backup(context.Background(), "limited", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := c.Restore(context.Background(), "limited", &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatal("restored bytes differ under rate shaping")
	}
}

func TestBackupCancellation(t *testing.T) {
	backend := newFakeBackend()
	_, addr := startServer(t, Config{Backend: backend})
	c, err := Dial(addr, DialConfig{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data := make([]byte, 1<<20)
	if _, err := c.Backup(ctx, "cancelled", bytes.NewReader(data)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled backup: %v", err)
	}
	// A poisoned session refuses further work instead of hanging.
	if _, err := c.Snapshots(); err == nil {
		t.Fatal("broken session still serving")
	}
}
