// Quickstart: the full byte-level encrypted-deduplication pipeline of
// Figure 2 — chunk a file with content-defined chunking, encrypt each
// chunk with convergent encryption, deduplicate into a shared store,
// restore, and verify.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"freqdedup"
)

func main() {
	// A shared deduplicated store, as the cloud side would run: the
	// fingerprint index is lock-striped into shards so many clients can
	// upload concurrently (freqdedup.NewStoreWithShards picks the count
	// explicitly; 1 shard reproduces the serial engine exactly).
	store := freqdedup.NewStore(0)

	// The client's encrypt+fingerprint stage fans out to GOMAXPROCS
	// workers by default (ClientConfig.Workers); recipes and stored
	// chunks are identical at every worker count.
	client, err := freqdedup.NewClient(store, freqdedup.ClientConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store: %d shards\n", store.ShardCount())

	// First backup: 4 MB of pseudo-random "primary data".
	v1 := make([]byte, 4<<20)
	rng := rand.New(rand.NewSource(1))
	for i := range v1 {
		v1[i] = byte(rng.Intn(256))
	}
	recipe1, err := client.Backup(bytes.NewReader(v1))
	if err != nil {
		log.Fatal(err)
	}
	st := store.Stats()
	fmt.Printf("backup 1: %d chunks, %d stored physically (%.1f MB)\n",
		st.LogicalChunks, st.UniqueChunks, float64(st.PhysicalBytes)/(1<<20))

	// Second backup: the same data with a small edit — most chunks
	// deduplicate against the first backup.
	v2 := append([]byte(nil), v1...)
	copy(v2[1<<20:], []byte("a small edit in the middle of the backup"))
	if _, err := client.Backup(bytes.NewReader(v2)); err != nil {
		log.Fatal(err)
	}
	st = store.Stats()
	fmt.Printf("backup 2: %d logical chunks total, still only %d physical (saving %.1f%%)\n",
		st.LogicalChunks, st.UniqueChunks, st.Saving()*100)

	// Recipes are sealed under the user's own key before leaving the
	// client (Section 3.3: metadata is conventionally encrypted).
	var userKey freqdedup.Key
	copy(userKey[:], "the user's own secret key......")
	sealed, err := recipe1.Seal(userKey)
	if err != nil {
		log.Fatal(err)
	}
	opened, err := freqdedup.OpenRecipe(sealed, userKey)
	if err != nil {
		log.Fatal(err)
	}

	// Restore backup 1 and verify bit-for-bit.
	var out bytes.Buffer
	if err := client.Restore(opened, &out); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), v1) {
		log.Fatal("restore mismatch")
	}
	fmt.Println("restore: backup 1 reconstructed bit-for-bit from the sealed recipe")

	// Retention: register both backups, expire backup 2, and garbage
	// collect — chunks still referenced by backup 1 survive.
	recipe2, err := client.Backup(bytes.NewReader(v2))
	if err != nil {
		log.Fatal(err)
	}
	if err := store.RegisterBackup("backup-1", recipe1); err != nil {
		log.Fatal(err)
	}
	if err := store.RegisterBackup("backup-2", recipe2); err != nil {
		log.Fatal(err)
	}
	if err := store.DeleteBackup("backup-2"); err != nil {
		log.Fatal(err)
	}
	gc, err := store.GC()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gc: reclaimed %d chunks (%.1f KB) after expiring backup 2\n",
		gc.ChunksReclaimed, float64(gc.BytesReclaimed)/1024)
	out.Reset()
	if err := client.Restore(opened, &out); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), v1) {
		log.Fatal("restore after GC mismatch")
	}
	fmt.Println("restore after gc: backup 1 still intact")
}
