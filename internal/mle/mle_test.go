package mle

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"freqdedup/internal/fphash"
)

func TestEncryptDeterministic(t *testing.T) {
	k := ConvergentKey([]byte("chunk content"))
	a := EncryptDeterministic(k, []byte("chunk content"))
	b := EncryptDeterministic(k, []byte("chunk content"))
	if !bytes.Equal(a, b) {
		t.Fatal("deterministic encryption produced different ciphertexts")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		k := ConvergentKey(data)
		return bytes.Equal(DecryptDeterministic(k, EncryptDeterministic(k, data)), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCiphertextLengthPreserved(t *testing.T) {
	f := func(data []byte) bool {
		k := ConvergentKey(data)
		return len(EncryptDeterministic(k, data)) == len(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConvergentDuplicatesMatch(t *testing.T) {
	ct1, k1 := Convergent{}.Encrypt([]byte("identical plaintext chunk"))
	ct2, k2 := Convergent{}.Encrypt([]byte("identical plaintext chunk"))
	if !bytes.Equal(ct1, ct2) || k1 != k2 {
		t.Fatal("identical plaintexts must convergently encrypt to identical ciphertexts")
	}
}

func TestConvergentDistinctDiffer(t *testing.T) {
	ct1, _ := Convergent{}.Encrypt([]byte("plaintext A"))
	ct2, _ := Convergent{}.Encrypt([]byte("plaintext B"))
	if bytes.Equal(ct1, ct2) {
		t.Fatal("distinct plaintexts produced identical ciphertexts")
	}
}

func TestDifferentKeysDifferentCiphertext(t *testing.T) {
	data := []byte("same plaintext, different keys")
	var k1, k2 Key
	k1[0], k2[0] = 1, 2
	if bytes.Equal(EncryptDeterministic(k1, data), EncryptDeterministic(k2, data)) {
		t.Fatal("different keys produced identical ciphertexts")
	}
}

func TestLocalDeriverDeterministicAndSecretDependent(t *testing.T) {
	fp := fphash.FromBytes([]byte("x"))
	d1 := NewLocalDeriver([]byte("secret-1"))
	d2 := NewLocalDeriver([]byte("secret-2"))
	a, err := d1.DeriveKey(fp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d1.DeriveKey(fp)
	if err != nil {
		t.Fatal(err)
	}
	c, err := d2.DeriveKey(fp)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("derivation not deterministic")
	}
	if a == c {
		t.Fatal("derivation ignores the secret")
	}
}

func TestLocalDeriverCopiesSecret(t *testing.T) {
	secret := []byte("mutable")
	d := NewLocalDeriver(secret)
	fp := fphash.FromUint64(1)
	before, _ := d.DeriveKey(fp)
	secret[0] = 'X'
	after, _ := d.DeriveKey(fp)
	if before != after {
		t.Fatal("deriver must copy the secret at construction")
	}
}

func TestServerAided(t *testing.T) {
	s := NewServerAided(NewLocalDeriver([]byte("sys-secret")))
	ct1, k1, err := s.Encrypt([]byte("chunk"))
	if err != nil {
		t.Fatal(err)
	}
	ct2, k2, err := s.Encrypt([]byte("chunk"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ct1, ct2) || k1 != k2 {
		t.Fatal("server-aided encryption must be deterministic for dedup")
	}
	if !bytes.Equal(DecryptDeterministic(k1, ct1), []byte("chunk")) {
		t.Fatal("decryption failed")
	}
}

func TestServerAidedNoDeriver(t *testing.T) {
	s := NewServerAided(nil)
	if _, _, err := s.Encrypt([]byte("chunk")); !errors.Is(err, ErrNoKeyDeriver) {
		t.Fatalf("err = %v, want ErrNoKeyDeriver", err)
	}
}

func TestServerAidedPropagatesDeriverError(t *testing.T) {
	boom := errors.New("key manager down")
	s := NewServerAided(KeyDeriverFunc(func(fphash.Fingerprint) (Key, error) {
		return Key{}, boom
	}))
	if _, _, err := s.Encrypt([]byte("chunk")); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestMinHashSameMinSameKey(t *testing.T) {
	m := NewMinHash(NewLocalDeriver([]byte("s")))
	// Two segments sharing the chunk with the minimum fingerprint must get
	// the same key, so their shared chunks deduplicate.
	segA := [][]byte{[]byte("shared-1"), []byte("shared-2"), []byte("only-a")}
	segB := [][]byte{[]byte("shared-1"), []byte("shared-2"), []byte("only-b")}
	ctA, kA, err := m.EncryptSegment(segA)
	if err != nil {
		t.Fatal(err)
	}
	ctB, kB, err := m.EncryptSegment(segB)
	if err != nil {
		t.Fatal(err)
	}
	// Determine whether the min fp is one of the shared chunks; with these
	// fixed strings, assert and rely on determinism.
	minOf := func(seg [][]byte) fphash.Fingerprint {
		min := fphash.FromBytes(seg[0])
		for _, c := range seg[1:] {
			if fp := fphash.FromBytes(c); fp.Less(min) {
				min = fp
			}
		}
		return min
	}
	if minOf(segA) == minOf(segB) {
		if kA != kB {
			t.Fatal("equal minima must give equal segment keys")
		}
		if !bytes.Equal(ctA[0], ctB[0]) || !bytes.Equal(ctA[1], ctB[1]) {
			t.Fatal("shared chunks under equal keys must produce identical ciphertexts")
		}
	} else if kA == kB {
		t.Fatal("different minima gave identical keys")
	}
}

func TestMinHashDifferentMinBreaksDedup(t *testing.T) {
	m := NewMinHash(NewLocalDeriver([]byte("s")))
	shared := []byte("the shared chunk content")
	// Find two filler chunks such that the two segments have different
	// minimum fingerprints.
	var ctA, ctB [][]byte
	found := false
	for i := 0; i < 64 && !found; i++ {
		fillA := []byte{byte(i), 'A'}
		fillB := []byte{byte(i), 'B'}
		a, kA, err := m.EncryptSegment([][]byte{shared, fillA})
		if err != nil {
			t.Fatal(err)
		}
		b, kB, err := m.EncryptSegment([][]byte{shared, fillB})
		if err != nil {
			t.Fatal(err)
		}
		if kA != kB {
			ctA, ctB = a, b
			found = true
		}
	}
	if !found {
		t.Skip("could not construct segments with differing minima")
	}
	if bytes.Equal(ctA[0], ctB[0]) {
		t.Fatal("identical plaintext under different segment keys must not deduplicate")
	}
}

func TestMinHashEmptySegment(t *testing.T) {
	m := NewMinHash(NewLocalDeriver([]byte("s")))
	if _, _, err := m.EncryptSegment(nil); err == nil {
		t.Fatal("EncryptSegment(nil) should error")
	}
	if _, err := m.SegmentKey(nil); err == nil {
		t.Fatal("SegmentKey(nil) should error")
	}
}

func TestMinHashNoDeriver(t *testing.T) {
	m := NewMinHash(nil)
	if _, err := m.SegmentKey([]fphash.Fingerprint{fphash.FromUint64(1)}); !errors.Is(err, ErrNoKeyDeriver) {
		t.Fatalf("err = %v, want ErrNoKeyDeriver", err)
	}
}

func TestRCERoundTripAndTagLeak(t *testing.T) {
	chunk := []byte("rce protected chunk")
	ct1, err := RCEEncrypt(chunk)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := RCEEncrypt(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct1.Body, ct2.Body) {
		t.Fatal("RCE bodies should be randomized")
	}
	// ... but the dedup tags are deterministic: this is exactly the
	// frequency leak the paper describes for RCE (Section 8).
	if ct1.Tag != ct2.Tag {
		t.Fatal("RCE tags must be deterministic for dedup")
	}
	got := RCEDecrypt(ct1, ConvergentKey(chunk))
	if !bytes.Equal(got, chunk) {
		t.Fatal("RCE decryption failed")
	}
}

func TestRecipeMarshalRoundTrip(t *testing.T) {
	r := &Recipe{}
	for i := 0; i < 10; i++ {
		r.Entries = append(r.Entries, RecipeEntry{
			Fingerprint: fphash.FromUint64(uint64(i)),
			Key:         ConvergentKey([]byte{byte(i)}),
			Size:        uint32(1000 + i),
		})
	}
	got, err := UnmarshalRecipe(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(r.Entries) {
		t.Fatalf("entries %d, want %d", len(got.Entries), len(r.Entries))
	}
	for i := range r.Entries {
		if got.Entries[i] != r.Entries[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
	if got.TotalSize() != r.TotalSize() {
		t.Fatal("TotalSize mismatch after round trip")
	}
}

func TestUnmarshalRecipeErrors(t *testing.T) {
	if _, err := UnmarshalRecipe(nil); err == nil {
		t.Fatal("nil input should error")
	}
	if _, err := UnmarshalRecipe([]byte{0, 0, 0, 5}); err == nil {
		t.Fatal("truncated input should error")
	}
	r := &Recipe{Entries: []RecipeEntry{{Size: 1}}}
	data := append(r.Marshal(), 0xff)
	if _, err := UnmarshalRecipe(data); err == nil {
		t.Fatal("trailing garbage should error")
	}
}

func TestRecipeSealOpen(t *testing.T) {
	var userKey Key
	userKey[0] = 0x42
	r := &Recipe{Entries: []RecipeEntry{
		{Fingerprint: fphash.FromUint64(1), Key: ConvergentKey([]byte("a")), Size: 8192},
	}}
	sealed, err := r.Seal(userKey)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenRecipe(sealed, userKey)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries[0] != r.Entries[0] {
		t.Fatal("recipe corrupted through seal/open")
	}
}

func TestRecipeSealRandomized(t *testing.T) {
	var userKey Key
	r := &Recipe{Entries: []RecipeEntry{{Size: 1}}}
	a, err := r.Seal(userKey)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Seal(userKey)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("sealed recipes must be randomized (conventional encryption)")
	}
}

func TestRecipeOpenWrongKey(t *testing.T) {
	var k1, k2 Key
	k2[0] = 1
	r := &Recipe{Entries: []RecipeEntry{{Size: 1}}}
	sealed, err := r.Seal(k1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRecipe(sealed, k2); err == nil {
		t.Fatal("opening with wrong key must fail")
	}
}

func TestRecipeOpenTamper(t *testing.T) {
	var k Key
	r := &Recipe{Entries: []RecipeEntry{{Size: 1}}}
	sealed, err := r.Seal(k)
	if err != nil {
		t.Fatal(err)
	}
	sealed[len(sealed)-1] ^= 1
	if _, err := OpenRecipe(sealed, k); err == nil {
		t.Fatal("tampered recipe must fail authentication")
	}
	if _, err := OpenRecipe([]byte{1, 2}, k); err == nil {
		t.Fatal("too-short sealed recipe must fail")
	}
}

func BenchmarkConvergentEncrypt8K(b *testing.B) {
	chunk := make([]byte, 8192)
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Convergent{}.Encrypt(chunk)
	}
}
