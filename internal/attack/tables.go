package attack

import (
	"io"
	"sync"
	"sync/atomic"

	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

// stat is one chunk's (or neighbor pair's) frequency record: its
// occurrence count and the stream position of its first occurrence (for
// tie-breaking). Identical to the legacy core layout, which the golden
// tests hold this engine to.
type stat struct {
	count int32
	first int32
}

// freqEntry is one chunk with its frequency record and size (for the
// advanced attack's size classification).
type freqEntry struct {
	fp   fphash.Fingerprint
	stat stat
	size uint32
}

// freqShard is one fingerprint-prefix shard of a whole-stream frequency
// table: a flat entry arena in first-occurrence order plus a
// fingerprint-to-index map, exactly the flat-arena layout the legacy
// engine uses for its single table.
type freqShard struct {
	idx     map[fphash.Fingerprint]int32
	entries []freqEntry
}

// bump counts one occurrence of fp at global stream position pos.
// Size is recorded at first occurrence (first-wins, the same canonical
// rule as the legacy engine).
func (s *freqShard) bump(fp fphash.Fingerprint, pos int, size uint32) {
	if i, ok := s.idx[fp]; ok {
		s.entries[i].stat.count++
		return
	}
	s.idx[fp] = int32(len(s.entries))
	s.entries = append(s.entries, freqEntry{
		fp:   fp,
		stat: stat{count: 1, first: int32(pos)},
		size: size,
	})
}

// counts is a value-struct frequency map — one neighbor-table row L_X[X] /
// R_X[X] of the paper. Rows are small (backup streams are local).
type counts map[fphash.Fingerprint]stat

// bump increments the count for fp, recording position pos on first sight.
func (c counts) bump(fp fphash.Fingerprint, pos int) {
	if s, ok := c[fp]; ok {
		s.count++
		c[fp] = s
		return
	}
	c[fp] = stat{count: 1, first: int32(pos)}
}

// flatInto flattens a neighbor row into rankable entries appended to
// buf[:0], resolving each neighbor's chunk size from the stream's
// sharded frequency table. The walk reuses two grow-only buffers across
// its iterations (four flattens per iteration), which is safe because
// frequency analysis only sorts the entries in place and returns fresh
// pairs — nothing aliases the buffer after the call.
func (c counts) flatInto(buf []freqEntry, sizes *tables) []freqEntry {
	out := buf[:0]
	for fp, s := range c {
		out = append(out, freqEntry{fp: fp, stat: s, size: sizes.sizeOf(fp)})
	}
	return out
}

// neighborShard maps each chunk of one fingerprint shard to the
// co-occurrence counts of its left (or right) neighbors.
type neighborShard map[fphash.Fingerprint]counts

// neighborRowHint sizes newly created neighbor rows: most chunks co-occur
// with a handful of distinct neighbors.
const neighborRowHint = 4

// tables holds one stream's counted state, sharded by fingerprint prefix
// (fphash.Fingerprint.Shard — the same lock-free partitioning key as the
// dedup store): per-shard flat frequency arenas and per-shard L/R
// neighbor tables. The merged view is semantically identical to the
// legacy engine's unsharded tables, which is why attack results are
// independent of the shard and worker counts.
type tables struct {
	shards int
	freq   []freqShard
	l, r   []neighborShard
}

// presizeCapRefs bounds how much table capacity a source's length hint
// may reserve up front. The hint counts stream references including
// duplicates, while the tables only ever hold unique chunks — on a
// dedup-heavy trace far larger than RAM, pre-sizing by the raw stream
// length would allocate O(stream) memory before counting a single chunk
// and defeat the engine's bounded-memory design. Past the cap the
// tables grow incrementally, whose amortized cost is noise at that
// scale.
const presizeCapRefs = 1 << 20

// newTables pre-sizes each shard's frequency table for a stream of hint
// chunks (0 = unknown): fingerprints distribute uniformly over shards,
// so hint/shards entries per shard avoids incremental map rehashes and
// arena growth — the streaming counterpart of the legacy engine's
// stream-length pre-sizing, capped so a huge hint cannot balloon memory.
func newTables(shards int, hint int64) *tables {
	if hint > presizeCapRefs {
		hint = presizeCapRefs
	}
	per := int(hint) / shards
	t := &tables{shards: shards, freq: make([]freqShard, shards)}
	for i := range t.freq {
		t.freq[i].idx = make(map[fphash.Fingerprint]int32, per)
		if per > 0 {
			t.freq[i].entries = make([]freqEntry, 0, per)
		}
	}
	return t
}

func (t *tables) has(fp fphash.Fingerprint) bool {
	_, ok := t.freq[fp.Shard(t.shards)].idx[fp]
	return ok
}

func (t *tables) sizeOf(fp fphash.Fingerprint) uint32 {
	s := &t.freq[fp.Shard(t.shards)]
	if i, ok := s.idx[fp]; ok {
		return s.entries[i].size
	}
	return 0
}

// unique returns the number of distinct fingerprints counted.
func (t *tables) unique() int {
	n := 0
	for i := range t.freq {
		n += len(t.freq[i].entries)
	}
	return n
}

// flatAll concatenates every shard's arena into one rankable slice. The
// concatenation order is irrelevant: ranking uses a total order (count,
// then position where enabled, then fingerprint), so the ranked result is
// the same at every shard count.
func (t *tables) flatAll() []freqEntry {
	out := make([]freqEntry, 0, t.unique())
	for i := range t.freq {
		out = append(out, t.freq[i].entries...)
	}
	return out
}

// lrow / rrow return a chunk's left / right neighbor row (nil for a chunk
// with no recorded neighbors; counts(nil).flat is empty).
func (t *tables) lrow(fp fphash.Fingerprint) counts {
	if t.l == nil {
		return nil
	}
	return t.l[fp.Shard(t.shards)][fp]
}

func (t *tables) rrow(fp fphash.Fingerprint) counts {
	if t.r == nil {
		return nil
	}
	return t.r[fp.Shard(t.shards)][fp]
}

// batchRefs is the streaming scan's batch size: large enough that the
// per-batch broadcast to the counting workers amortizes to nothing, small
// enough that a few in-flight batches stay cache-resident. At 16 bytes
// per ref a batch is 64 KiB.
const batchRefs = 4096

// countBatch is one scanned batch broadcast to every counting worker.
// Workers only read it; the last one to finish recycles the buffer.
type countBatch struct {
	refs []trace.ChunkRef
	n    int            // live prefix of refs
	base int            // global stream position of refs[0]
	prev trace.ChunkRef // the chunk before refs[0] (valid when base > 0)
	left atomic.Int32   // workers yet to process this batch
}

// scan streams the source once, feeding every batch (with its global base
// position and preceding chunk) to workers goroutines. Each worker sees
// every batch in stream order and is expected to process only the
// fingerprint shards it owns, so no locks are needed and per-shard state
// observes the stream strictly in order — which is what keeps
// first-occurrence positions and first-wins sizes identical to a serial
// count. With one worker the scan runs inline with no goroutines.
func scan(src ChunkSource, workers int, process func(worker int, refs []trace.ChunkRef, base int, prev trace.ChunkRef)) error {
	r, err := src.Open()
	if err != nil {
		return err
	}
	defer r.Close()

	if workers <= 1 {
		buf := make([]trace.ChunkRef, batchRefs)
		base := 0
		var prev trace.ChunkRef
		for {
			n, err := r.Read(buf)
			if n > 0 {
				process(0, buf[:n], base, prev)
				prev = buf[n-1]
				base += n
			}
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if n == 0 {
				return io.ErrNoProgress
			}
		}
	}

	free := make(chan *countBatch, workers+2)
	for i := 0; i < workers+2; i++ {
		free <- &countBatch{refs: make([]trace.ChunkRef, batchRefs)}
	}
	chans := make([]chan *countBatch, workers)
	for w := range chans {
		chans[w] = make(chan *countBatch, 2)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for b := range chans[w] {
				process(w, b.refs[:b.n], b.base, b.prev)
				if b.left.Add(-1) == 0 {
					free <- b
				}
			}
		}(w)
	}

	base := 0
	var prev trace.ChunkRef
	var scanErr error
	for {
		b := <-free
		// Fill the whole batch before broadcasting: short reads would
		// multiply the broadcast overhead.
		n := 0
		var err error
		for n < batchRefs && err == nil {
			var k int
			k, err = r.Read(b.refs[n:batchRefs])
			n += k
			if k == 0 && err == nil {
				err = io.ErrNoProgress
			}
		}
		if n > 0 {
			b.n = n
			b.base = base
			b.prev = prev
			b.left.Store(int32(workers))
			prev = b.refs[n-1]
			base += n
			for w := range chans {
				chans[w] <- b
			}
		}
		if err != nil {
			if err != io.EOF {
				scanErr = err
			}
			break
		}
	}
	for w := range chans {
		close(chans[w])
	}
	wg.Wait()
	return scanErr
}

// countFreq runs the first counting pass: per-shard chunk frequencies,
// first-occurrence positions, and first-wins sizes.
func (t *tables) countFreq(src ChunkSource, workers int) error {
	w := workersFor(workers, t.shards)
	return scan(src, w, func(worker int, refs []trace.ChunkRef, base int, prev trace.ChunkRef) {
		for j := range refs {
			sh := refs[j].FP.Shard(t.shards)
			if sh%w != worker {
				continue
			}
			t.freq[sh].bump(refs[j].FP, base+j, refs[j].Size)
		}
	})
}

// countNeighbors runs the second counting pass: per-shard left/right
// neighbor co-occurrence rows. An adjacent pair (left, cur) at position
// pos contributes to L[cur][left] on cur's shard and R[left][cur] on
// left's shard — each row is owned by exactly one worker. The pass is
// separate from countFreq so the basic attack (frequencies only) never
// pays for neighbor tables, and so the neighbor maps can be pre-sized
// from the first pass's unique counts.
func (t *tables) countNeighbors(src ChunkSource, workers int) error {
	t.l = make([]neighborShard, t.shards)
	t.r = make([]neighborShard, t.shards)
	for i := range t.l {
		t.l[i] = make(neighborShard, len(t.freq[i].entries))
		t.r[i] = make(neighborShard, len(t.freq[i].entries))
	}
	w := workersFor(workers, t.shards)
	return scan(src, w, func(worker int, refs []trace.ChunkRef, base int, prev trace.ChunkRef) {
		for j := range refs {
			pos := base + j
			if pos == 0 {
				continue // the first chunk of the stream has no left neighbor
			}
			left := prev.FP
			if j > 0 {
				left = refs[j-1].FP
			}
			cur := refs[j].FP
			if sh := cur.Shard(t.shards); sh%w == worker {
				row := t.l[sh][cur]
				if row == nil {
					row = make(counts, neighborRowHint)
					t.l[sh][cur] = row
				}
				row.bump(left, pos)
			}
			if sh := left.Shard(t.shards); sh%w == worker {
				row := t.r[sh][left]
				if row == nil {
					row = make(counts, neighborRowHint)
					t.r[sh][left] = row
				}
				row.bump(cur, pos)
			}
		}
	})
}

// workersFor caps the worker fan-out at the shard count (a shard is owned
// by exactly one worker, so extra workers would idle).
func workersFor(workers, shards int) int {
	if workers > shards {
		return shards
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// buildTables counts one stream: always the frequency pass, plus the
// neighbor pass when the attack walks locality.
func buildTables(src ChunkSource, p Params, neighbors bool) (*tables, error) {
	var hint int64
	if c, ok := src.(ChunkCounter); ok {
		hint = c.ChunkCount()
	}
	t := newTables(p.Shards, hint)
	if err := t.countFreq(src, p.Workers); err != nil {
		return nil, err
	}
	if neighbors {
		if err := t.countNeighbors(src, p.Workers); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// buildTablePair counts the ciphertext and plaintext streams
// concurrently — together they are the setup cost of every attack run.
func buildTablePair(c, m ChunkSource, p Params, neighbors bool) (tc, tm *tables, err error) {
	var merr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		tm, merr = buildTables(m, p, neighbors)
	}()
	tc, err = buildTables(c, p, neighbors)
	<-done
	if err == nil {
		err = merr
	}
	if err != nil {
		return nil, nil, err
	}
	return tc, tm, nil
}
