// Keymanager example: server-aided MLE over a real TCP connection — a
// DupLESS-style key manager with rate limiting, an authenticated client,
// duplicate-preserving encryption through the network (Section 2.2), and
// a Repository whose chunk keys come from the key manager.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"net"

	"freqdedup"
)

func main() {
	var token [32]byte
	copy(token[:], "demo-client-token")

	// Start the key manager on a loopback port with a tight rate limit so
	// the demo can show the online brute-force defense kicking in.
	server, err := freqdedup.NewKeyServer(freqdedup.KeyServerConfig{
		Secret:  []byte("system-wide secret held only by the key manager"),
		Token:   token,
		Limiter: freqdedup.NewTokenBucket(5, 4), // 5 keys/s, burst 4
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go server.Serve(ln) //nolint:errcheck // stops on Close
	defer server.Close()
	fmt.Printf("key manager listening on %s\n", ln.Addr())

	// An authenticated client derives chunk keys over the network.
	client, err := freqdedup.DialKeyManager(ln.Addr().String(), token)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	scheme := freqdedup.NewServerAidedMLE(client)
	ct1, key, err := scheme.Encrypt([]byte("a duplicate chunk"))
	if err != nil {
		log.Fatal(err)
	}
	ct2, _, err := scheme.Encrypt([]byte("a duplicate chunk"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identical chunks -> identical ciphertexts: %v (dedup works)\n",
		bytes.Equal(ct1, ct2))
	_ = key

	// The full system view: a Repository whose per-chunk keys are derived
	// by a key manager (EncServerAided), so no client can derive keys —
	// or mount an offline brute-force attack — without talking to it.
	// Backups derive one key per chunk, so this one runs against an
	// unthrottled key manager; the throttled one above stays dedicated to
	// the rate-limit demonstration.
	bulkServer, err := freqdedup.NewKeyServer(freqdedup.KeyServerConfig{
		Secret: []byte("system-wide secret held only by the key manager"),
		Token:  token,
	})
	if err != nil {
		log.Fatal(err)
	}
	bulkLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go bulkServer.Serve(bulkLn) //nolint:errcheck // stops on Close
	defer bulkServer.Close()
	bulkClient, err := freqdedup.DialKeyManager(bulkLn.Addr().String(), token)
	if err != nil {
		log.Fatal(err)
	}
	defer bulkClient.Close()

	repo, err := freqdedup.CreateRepository("", // in-memory for the demo
		freqdedup.WithEncryption(freqdedup.EncServerAided),
		freqdedup.WithKeyDeriver(bulkClient),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()
	ctx := context.Background()
	data := bytes.Repeat([]byte("server-aided deduplicated backup data. "), 8192)
	snap, err := repo.Backup(ctx, "snap-1", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	var out bytes.Buffer
	if err := repo.Restore(ctx, "snap-1", &out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repository round trip via key manager: %v (%d chunks, keys derived remotely)\n",
		bytes.Equal(out.Bytes(), data), snap.Chunks)

	// Burn through the rate limit to demonstrate the brute-force defense.
	var limited int
	for i := 0; i < 20; i++ {
		if _, _, err := scheme.Encrypt([]byte{byte(i)}); errors.Is(err, freqdedup.ErrRateLimited) {
			limited++
		} else if err != nil {
			log.Fatal(err)
		}
	}
	derived, rejected := server.Stats()
	fmt.Printf("server stats: %d keys derived, %d requests rate-limited\n", derived, rejected)
	if limited > 0 {
		fmt.Println("the token bucket throttles online brute-force key queries")
	}
}
