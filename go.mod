module freqdedup

go 1.21
