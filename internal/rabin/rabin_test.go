package rabin

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRollMatchesDirect verifies the O(1) rolling update against the
// one-shot reference: after rolling a long input through a window of size w,
// the fingerprint must equal the direct fingerprint of the last w bytes.
func TestRollMatchesDirect(t *testing.T) {
	for _, window := range []int{1, 2, 16, DefaultWindow, 64} {
		h := New(window)
		rng := rand.New(rand.NewSource(42))
		data := make([]byte, window*5+3)
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		var got uint64
		for _, b := range data {
			got = h.Roll(b)
		}
		want := Fingerprint(data[len(data)-window:])
		if got != want {
			t.Errorf("window=%d: rolling fp %#x, direct fp %#x", window, got, want)
		}
	}
}

// TestRollPositionIndependent checks the defining property of a rolling
// hash: the fingerprint depends only on the window contents, not on what
// preceded the window.
func TestRollPositionIndependent(t *testing.T) {
	f := func(prefixSeed int64, windowSeed int64) bool {
		const window = DefaultWindow
		rngW := rand.New(rand.NewSource(windowSeed))
		win := make([]byte, window)
		for i := range win {
			win[i] = byte(rngW.Intn(256))
		}

		roll := func(prefix []byte) uint64 {
			h := New(window)
			var fp uint64
			for _, b := range prefix {
				fp = h.Roll(b)
			}
			for _, b := range win {
				fp = h.Roll(b)
			}
			return fp
		}

		rngP := rand.New(rand.NewSource(prefixSeed))
		prefix := make([]byte, 1+rngP.Intn(200))
		for i := range prefix {
			prefix[i] = byte(rngP.Intn(256))
		}
		return roll(nil) == roll(prefix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	h := New(DefaultWindow)
	data := []byte("some bytes to pollute the window state")
	for _, b := range data {
		h.Roll(b)
	}
	h.Reset()
	if h.Sum64() != 0 {
		t.Fatalf("Sum64 after Reset = %#x, want 0", h.Sum64())
	}
	var a uint64
	for _, b := range data {
		a = h.Roll(b)
	}
	h2 := New(DefaultWindow)
	var want uint64
	for _, b := range data {
		want = h2.Roll(b)
	}
	if a != want {
		t.Fatalf("after Reset, rolling diverges: %#x vs %#x", a, want)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := Fingerprint([]byte("the quick brown fox"))
	b := Fingerprint([]byte("the quick brown foy"))
	if a == b {
		t.Fatal("single-byte change did not alter fingerprint")
	}
}

func TestFingerprintEmptyAndZeroBytes(t *testing.T) {
	if Fingerprint(nil) != 0 {
		t.Fatal("fingerprint of empty input should be 0")
	}
	// Leading zero bytes are absorbed (polynomial has zero coefficients);
	// this is inherent to Rabin fingerprints and fine for chunking since the
	// window has fixed size.
	if Fingerprint([]byte{0, 0, 0}) != 0 {
		t.Fatal("fingerprint of zero bytes should be 0")
	}
}

func TestNewPanicsOnBadWindow(t *testing.T) {
	for _, w := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", w)
				}
			}()
			New(w)
		}()
	}
}

func TestWindowAccessor(t *testing.T) {
	if got := New(17).Window(); got != 17 {
		t.Fatalf("Window() = %d, want 17", got)
	}
}

// TestDistribution sanity-checks that fingerprints of random windows spread
// across the 64-bit space (each of the top 8 bits roughly balanced).
func TestDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := New(DefaultWindow)
	const samples = 8192
	var bitOnes [8]int
	for i := 0; i < samples; i++ {
		fp := h.Roll(byte(rng.Intn(256)))
		for bit := 0; bit < 8; bit++ {
			if fp>>(63-uint(bit))&1 == 1 {
				bitOnes[bit]++
			}
		}
	}
	for bit, ones := range bitOnes {
		if ones < samples/3 || ones > 2*samples/3 {
			t.Errorf("top bit %d skewed: %d/%d", bit, ones, samples)
		}
	}
}

// TestUpdateMatchesRoll: the bulk update must leave the hash in exactly the
// state a byte-at-a-time Roll loop would, from any starting state.
func TestUpdateMatchesRoll(t *testing.T) {
	for _, window := range []int{1, 7, DefaultWindow, 64} {
		rng := rand.New(rand.NewSource(11))
		for _, n := range []int{0, 1, window - 1, window, window + 1, 5*window + 3} {
			if n < 0 {
				continue
			}
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(rng.Intn(256))
			}
			hr, hu := New(window), New(window)
			// Pollute both with a shared prefix so Update starts mid-state.
			prefix := []byte("prefix state pollution")
			var want uint64
			for _, b := range prefix {
				want = hr.Roll(b)
			}
			hu.Update(prefix)
			for _, b := range data {
				want = hr.Roll(b)
			}
			got := hu.Update(data)
			if n+len(prefix) > 0 && got != want {
				t.Fatalf("window=%d n=%d: Update fp %#x, Roll fp %#x", window, n, got, want)
			}
			if hr.Sum64() != hu.Sum64() {
				t.Fatalf("window=%d n=%d: states diverge", window, n)
			}
		}
	}
}

// TestScanMatchesRollLoop: Scan must consume exactly as many bytes as a
// Roll loop testing fp&mask == magic after each byte, and leave identical
// state.
func TestScanMatchesRollLoop(t *testing.T) {
	const window = DefaultWindow
	rng := rand.New(rand.NewSource(13))
	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	for _, avg := range []uint64{256, 4096} {
		mask, magic := avg-1, avg-1
		hs, hr := New(window), New(window)
		consumed, matched := hs.Scan(data, mask, magic)

		wantConsumed, wantMatched := len(data), false
		for i, b := range data {
			if hr.Roll(b)&mask == magic {
				wantConsumed, wantMatched = i+1, true
				break
			}
		}
		if consumed != wantConsumed || matched != wantMatched {
			t.Fatalf("avg=%d: Scan = (%d, %v), Roll loop = (%d, %v)",
				avg, consumed, matched, wantConsumed, wantMatched)
		}
		if hs.Sum64() != hr.Sum64() {
			t.Fatalf("avg=%d: Scan state %#x differs from Roll state %#x",
				avg, hs.Sum64(), hr.Sum64())
		}
	}
}

// TestScanContigMatchesRollLoop: the contiguous scan must cut exactly
// where a Roll loop over the same data cuts, for several starting offsets.
func TestScanContigMatchesRollLoop(t *testing.T) {
	const window = DefaultWindow
	rng := rand.New(rand.NewSource(17))
	data := make([]byte, 32*1024)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	for _, from := range []int{window, window + 1, 2048} {
		for _, avg := range []uint64{512, 4096, 1 << 62} {
			mask := avg - 1
			magic := avg - 1
			if avg == 1<<62 {
				magic = avg // impossible: forces a full no-match scan
			}
			hc := New(window)
			hc.Update(data[from-window : from])
			cut, matched := hc.ScanContig(data, from, mask, magic)

			hr := New(window)
			var fp uint64
			for _, b := range data[from-window : from] {
				fp = hr.Roll(b)
			}
			wantCut, wantMatched := len(data), false
			for j := from; j < len(data); j++ {
				fp = hr.Roll(data[j])
				if fp&mask == magic {
					wantCut, wantMatched = j+1, true
					break
				}
			}
			if cut != wantCut || matched != wantMatched {
				t.Fatalf("from=%d avg=%d: ScanContig = (%d, %v), Roll loop = (%d, %v)",
					from, avg, cut, matched, wantCut, wantMatched)
			}
			if hc.Sum64() != fp {
				t.Fatalf("from=%d avg=%d: fp %#x, Roll fp %#x", from, avg, hc.Sum64(), fp)
			}
		}
	}
}

func TestScanContigPanicsOnShortPrefix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ScanContig with from < window did not panic")
		}
	}()
	New(DefaultWindow).ScanContig(make([]byte, 100), 10, 1, 1)
}

// TestTablesCached: non-default windows reuse cached tables across New
// calls (pointer identity) and still produce correct fingerprints.
func TestTablesCached(t *testing.T) {
	a, b := New(17), New(17)
	if a.tab != b.tab {
		t.Fatal("tables for window 17 not shared between New calls")
	}
	if a.tab == shared {
		t.Fatal("non-default window must not reuse the default-window tables")
	}
	data := []byte("cache correctness check over a modest input string")
	var got uint64
	for _, c := range data {
		got = a.Roll(c)
	}
	want := Fingerprint(data[len(data)-17:])
	if got != want {
		t.Fatalf("cached-table roll fp %#x, direct fp %#x", got, want)
	}
}

func BenchmarkRabinRoll(b *testing.B) {
	h := New(DefaultWindow)
	b.SetBytes(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Roll(byte(i))
	}
}

func BenchmarkRabinUpdate(b *testing.B) {
	h := New(DefaultWindow)
	data := make([]byte, 64*1024)
	rng := rand.New(rand.NewSource(3))
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Update(data)
	}
}

func BenchmarkRabinScanContig(b *testing.B) {
	h := New(DefaultWindow)
	data := make([]byte, 64*1024)
	rng := rand.New(rand.NewSource(5))
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	b.SetBytes(int64(len(data) - DefaultWindow))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Reset()
		h.Update(data[:DefaultWindow])
		// Impossible magic forces a full scan (mask has low bits only).
		h.ScanContig(data, DefaultWindow, 0xFFF, 0x1FFF)
	}
}

func BenchmarkRabinScan(b *testing.B) {
	h := New(DefaultWindow)
	data := make([]byte, 64*1024)
	rng := rand.New(rand.NewSource(4))
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// An impossible magic value (mask has low bits only) forces a full
		// scan of the buffer, measuring sustained scan throughput.
		h.Scan(data, 0xFFF, 0x1FFF)
	}
}
