// Package vfs is the file-operations seam of the storage stack. Every
// durable on-disk format — the .fdc container shards, the .fdr snapshot
// catalog, the .fdt trace log — performs its file operations through the
// FS interface instead of calling package os directly, so a test harness
// can substitute a fault-injecting filesystem (internal/faultio) under
// the exact production code paths: no special test-only writers, no
// mocked-out formats.
//
// OS is the production implementation: a zero-cost passthrough to package
// os. The interface is deliberately minimal — exactly the operations the
// storage stack uses, nothing speculative — so alternative
// implementations stay small and honest.
package vfs

import (
	"io"
	"os"
	"path/filepath"
)

// File is one open file. The storage stack reads and writes at explicit
// offsets (ReadAt/WriteAt), appends sequentially during rewrites (Write),
// truncates torn tails, and fsyncs at durability boundaries. A File
// obtained by opening a directory supports only Sync and Close (the
// directory-sync idiom after creates and renames).
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Writer
	io.Closer
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Sync flushes the file to stable storage; a nil return is the
	// durability acknowledgment every format's contract is built on.
	Sync() error
	// Stat returns the file's metadata (the formats use Size).
	Stat() (os.FileInfo, error)
	// Name returns the name the file was opened with.
	Name() string
}

// FS is the filesystem the storage stack runs against.
type FS interface {
	// OpenFile is the general open call, with os.O_* flags.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens a file (or a directory, for directory syncs) read-only.
	Open(name string) (File, error)
	// Rename atomically replaces newpath with oldpath — the commit point
	// of every compaction and rewrite.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Stat returns file metadata without opening it.
	Stat(name string) (os.FileInfo, error)
	// Glob returns the names matching the shell pattern, like
	// filepath.Glob.
	Glob(pattern string) ([]string, error)
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
}

// OS is the production filesystem: package os, unwrapped.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Stat(name string) (os.FileInfo, error) {
	return os.Stat(name)
}
func (osFS) Glob(pattern string) ([]string, error)        { return filepath.Glob(pattern) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// SyncDir fsyncs a directory so renames and file creations within it are
// durable. Directory fsync is best-effort on the OS filesystem — some
// filesystems reject it — so only the open is reported; fault-injecting
// filesystems count the sync as an operation regardless.
func SyncDir(fsys FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
