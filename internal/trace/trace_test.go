package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"freqdedup/internal/fphash"
)

func smallSynthetic() SyntheticParams {
	p := DefaultSyntheticParams()
	p.InitialBytes = 4 << 20
	p.MeanFileBytes = 32 << 10
	p.NewDataBytes = 40 << 10
	p.Snapshots = 4
	return p
}

func smallFSL() FSLParams {
	p := DefaultFSLParams()
	p.Users = 3
	p.PerUserBytes = 2 << 20
	return p
}

func smallVM() VMParams {
	p := DefaultVMParams()
	p.Students = 4
	p.BaseImageBytes = 1 << 20
	p.Weeks = 6
	p.HeavyStart, p.HeavyEnd = 3, 4
	return p
}

func TestBackupAccessors(t *testing.T) {
	b := &Backup{Label: "x", Chunks: []ChunkRef{
		{FP: fphash.FromUint64(1), Size: 100},
		{FP: fphash.FromUint64(2), Size: 200},
		{FP: fphash.FromUint64(1), Size: 100},
	}}
	if got := b.LogicalSize(); got != 400 {
		t.Fatalf("LogicalSize = %d, want 400", got)
	}
	if got := b.UniqueCount(); got != 2 {
		t.Fatalf("UniqueCount = %d, want 2", got)
	}
	freq := b.Frequencies()
	if freq[fphash.FromUint64(1)] != 2 || freq[fphash.FromUint64(2)] != 1 {
		t.Fatalf("Frequencies wrong: %v", freq)
	}
}

func TestDatasetStats(t *testing.T) {
	d := &Dataset{Name: "t", Backups: []*Backup{
		{Label: "1", Chunks: []ChunkRef{{FP: fphash.FromUint64(1), Size: 10}, {FP: fphash.FromUint64(2), Size: 20}}},
		{Label: "2", Chunks: []ChunkRef{{FP: fphash.FromUint64(1), Size: 10}, {FP: fphash.FromUint64(3), Size: 30}}},
	}}
	st := d.Stats()
	if st.LogicalBytes != 70 || st.PhysicalBytes != 60 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LogicalChunks != 4 || st.UniqueChunks != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Saving() <= 0 || st.Ratio() <= 1 {
		t.Fatalf("saving/ratio wrong: %v %v", st.Saving(), st.Ratio())
	}
}

func TestGenerateSyntheticShape(t *testing.T) {
	p := smallSynthetic()
	d := GenerateSynthetic(p)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Backups) != p.Snapshots+1 {
		t.Fatalf("backups = %d, want %d", len(d.Backups), p.Snapshots+1)
	}
	// Consecutive snapshots must share most content (2% file churn).
	prev := d.Backups[len(d.Backups)-2].Frequencies()
	last := d.Backups[len(d.Backups)-1]
	var shared, total int
	for fp := range last.Frequencies() {
		total++
		if _, ok := prev[fp]; ok {
			shared++
		}
	}
	if frac := float64(shared) / float64(total); frac < 0.9 {
		t.Fatalf("consecutive synthetic snapshots share only %.2f of unique chunks", frac)
	}
	// The whole chain should deduplicate strongly (paper: ~90% saving).
	if s := d.Stats().Saving(); s < 0.5 {
		t.Fatalf("synthetic dataset saving %.2f, expected >0.5", s)
	}
}

func TestGenerateSyntheticGrows(t *testing.T) {
	d := GenerateSynthetic(smallSynthetic())
	first := d.Backups[0].LogicalSize()
	last := d.Backups[len(d.Backups)-1].LogicalSize()
	if last <= first {
		t.Fatalf("snapshots should grow with new data: first=%d last=%d", first, last)
	}
}

func TestGenerateSyntheticDeterministic(t *testing.T) {
	a := GenerateSynthetic(smallSynthetic())
	b := GenerateSynthetic(smallSynthetic())
	if len(a.Backups) != len(b.Backups) {
		t.Fatal("nondeterministic backup count")
	}
	for i := range a.Backups {
		if len(a.Backups[i].Chunks) != len(b.Backups[i].Chunks) {
			t.Fatalf("backup %d chunk counts differ", i)
		}
		for j := range a.Backups[i].Chunks {
			if a.Backups[i].Chunks[j] != b.Backups[i].Chunks[j] {
				t.Fatalf("backup %d chunk %d differs", i, j)
			}
		}
	}
}

func TestGenerateFSLShape(t *testing.T) {
	p := smallFSL()
	d := GenerateFSL(p)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Backups) != len(p.Labels) {
		t.Fatalf("backups = %d, want %d", len(d.Backups), len(p.Labels))
	}
	for i, b := range d.Backups {
		if b.Label != p.Labels[i] {
			t.Fatalf("label %d = %q, want %q", i, b.Label, p.Labels[i])
		}
	}
	// Skewed frequencies: the most frequent chunk must occur far more often
	// than the median (Figure 1's heavy head). The hot head's absolute
	// counts scale with dataset size, so measure at a moderate scale.
	skewed := DefaultFSLParams()
	skewed.PerUserBytes = 8 << 20
	freqs := GenerateFSL(skewed).FrequencyCDF()
	max := freqs[len(freqs)-1]
	median := freqs[len(freqs)/2]
	if max < 10*median {
		t.Fatalf("frequency distribution not skewed: max=%d median=%d", max, median)
	}
	// Variable chunk sizes within the configured bounds.
	for _, c := range d.Backups[0].Chunks[:100] {
		if int(c.Size) < p.Chunk.Min || int(c.Size) > p.Chunk.Max {
			t.Fatalf("chunk size %d out of bounds", c.Size)
		}
	}
}

func TestGenerateFSLChurn(t *testing.T) {
	d := GenerateFSL(smallFSL())
	// Monthly churn must be substantial but leave meaningful overlap.
	a := d.Backups[len(d.Backups)-2].Frequencies()
	b := d.Backups[len(d.Backups)-1]
	var shared, total int
	for fp := range b.Frequencies() {
		total++
		if _, ok := a[fp]; ok {
			shared++
		}
	}
	frac := float64(shared) / float64(total)
	if frac < 0.2 || frac > 0.95 {
		t.Fatalf("consecutive FSL overlap %.2f outside plausible churn range", frac)
	}
}

func TestGenerateVMShape(t *testing.T) {
	p := smallVM()
	d := GenerateVM(p)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Backups) != p.Weeks {
		t.Fatalf("backups = %d, want %d", len(d.Backups), p.Weeks)
	}
	// Fixed-size chunks only.
	for _, c := range d.Backups[0].Chunks[:200] {
		if c.Size != uint32(p.ChunkSize) {
			t.Fatalf("chunk size %d, want fixed %d", c.Size, p.ChunkSize)
		}
	}
	// Week 1: students share the base image, so intra-backup duplication is
	// massive (each base chunk appears ~Students times).
	b := d.Backups[0]
	if ratio := float64(len(b.Chunks)) / float64(b.UniqueCount()); ratio < 2 {
		t.Fatalf("week-1 intra-backup dup ratio %.1f, expected >=2 from shared base", ratio)
	}
}

func TestGenerateVMHeavyChurnWindow(t *testing.T) {
	p := smallVM()
	d := GenerateVM(p)
	overlap := func(i, j int) float64 {
		a := d.Backups[i].Frequencies()
		b := d.Backups[j].Frequencies()
		var shared, total int
		for fp := range b {
			total++
			if _, ok := a[fp]; ok {
				shared++
			}
		}
		return float64(shared) / float64(total)
	}
	light := overlap(0, 1)                         // transition 1 (light)
	heavy := overlap(p.HeavyStart-1, p.HeavyStart) // first heavy transition
	if light <= heavy {
		t.Fatalf("heavy churn window not heavier: light overlap %.2f, heavy overlap %.2f", light, heavy)
	}
}

func TestValidateRejectsBadData(t *testing.T) {
	cases := []struct {
		name string
		d    *Dataset
	}{
		{"no backups", &Dataset{Name: "x"}},
		{"empty backup", &Dataset{Name: "x", Backups: []*Backup{{Label: "b"}}}},
		{"zero size", &Dataset{Name: "x", Backups: []*Backup{{Label: "b", Chunks: []ChunkRef{{FP: fphash.FromUint64(1)}}}}}},
		{"zero fp", &Dataset{Name: "x", Backups: []*Backup{{Label: "b", Chunks: []ChunkRef{{Size: 1}}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.d.Validate(); err == nil {
				t.Fatal("Validate accepted bad dataset")
			}
		})
	}
}

func TestCodecRoundTrip(t *testing.T) {
	d := GenerateSynthetic(smallSynthetic())
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || len(got.Backups) != len(d.Backups) {
		t.Fatalf("round trip lost structure: %q/%d", got.Name, len(got.Backups))
	}
	for i := range d.Backups {
		if got.Backups[i].Label != d.Backups[i].Label {
			t.Fatalf("backup %d label mismatch", i)
		}
		if len(got.Backups[i].Chunks) != len(d.Backups[i].Chunks) {
			t.Fatalf("backup %d chunk count mismatch", i)
		}
		for j := range d.Backups[i].Chunks {
			if got.Backups[i].Chunks[j] != d.Backups[i].Chunks[j] {
				t.Fatalf("backup %d chunk %d mismatch", i, j)
			}
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Fatal("Read accepted garbage")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("Read accepted empty input")
	}
	// Truncated valid prefix.
	d := &Dataset{Name: "t", Backups: []*Backup{{Label: "1", Chunks: []ChunkRef{{FP: fphash.FromUint64(1), Size: 1}}}}}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("Read accepted truncated input")
	}
}

func TestChunkSizeModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := ChunkSizeModel{Min: 2048, Avg: 8192, Max: 16384}
	var sum int
	const n = 20000
	for i := 0; i < n; i++ {
		s := int(m.draw(rng))
		if s < m.Min || s > m.Max {
			t.Fatalf("size %d out of [%d,%d]", s, m.Min, m.Max)
		}
		sum += s
	}
	avg := sum / n
	if avg < m.Avg/2 || avg > m.Avg*2 {
		t.Fatalf("mean size %d far from target %d", avg, m.Avg)
	}
	fixed := ChunkSizeModel{Min: 4096, Avg: 4096, Max: 4096}
	if fixed.draw(rng) != 4096 {
		t.Fatal("fixed model must always return the fixed size")
	}
}

func TestMinterNeverZeroNeverRepeats(t *testing.T) {
	m := &minter{}
	seen := make(map[fphash.Fingerprint]bool)
	for i := 0; i < 100000; i++ {
		fp := m.mint()
		if fp.IsZero() {
			t.Fatal("minted zero fingerprint")
		}
		if seen[fp] {
			t.Fatal("minted duplicate fingerprint")
		}
		seen[fp] = true
	}
}

func TestModifyFilePreservesOutsideRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := &minter{}
	sizes := ChunkSizeModel{Min: 4096, Avg: 4096, Max: 4096}
	f := &genFile{}
	for i := 0; i < 100; i++ {
		f.chunks = append(f.chunks, ChunkRef{FP: m.mint(), Size: 4096})
	}
	orig := f.clone()
	modifyFile(rng, m, f, 0.1, sizes)
	origSet := make(map[fphash.Fingerprint]bool)
	for _, c := range orig.chunks {
		origSet[c.FP] = true
	}
	var survived int
	for _, c := range f.chunks {
		if origSet[c.FP] {
			survived++
		}
	}
	if survived < 80 {
		t.Fatalf("10%% modification destroyed %d/100 chunks", 100-survived)
	}
	if survived == len(orig.chunks) {
		t.Fatal("modification changed nothing")
	}
}

func TestFrequencyCDFSorted(t *testing.T) {
	d := GenerateFSL(smallFSL())
	cdf := d.FrequencyCDF()
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatal("FrequencyCDF not sorted")
		}
	}
}
