package freqdedup

// End-to-end acceptance of the workload scenario matrix: every registered
// workload generates a dataset, materializes to bytes, backs up into a
// real file-backed repository with the adversary tap, and — after a cold
// reopen — the replayed .fdt traces drive the streaming attack suite. Per
// scenario the paper's qualitative ordering must hold (locality attack
// against baseline MLE infers well past its leaked seeds; MinHash plus
// scrambling strictly reduces it), and the streaming .fdt source must
// score bit-identically to the materialized stream.

import (
	"context"
	"testing"

	"freqdedup/internal/attack"
	"freqdedup/internal/defense"
)

func TestScenarioMatrixEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const leakRate = 0.02
	for _, name := range Workloads() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := WorkloadConfig{Seed: 42, Backups: 3, TotalBytes: 2 << 20}
			if name == "vm" {
				// The vm adapter defaults to 20 students; at 2 MiB that
				// leaves ~100 KiB per image and the leaked-seed sample all
				// but misses the cross-week stable backbone. Five students
				// on 4 MiB keeps the test fast and the scale meaningful.
				cfg.TotalBytes = 4 << 20
				cfg.Users = 5
			}
			d, err := GenerateWorkload(name, cfg)
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			repo, err := CreateRepository(dir, WithUploadObserver(nil))
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			for i, b := range d.Backups {
				snap, err := repo.Backup(ctx, snapshotName(i, b.Label), WorkloadDataReader(b))
				if err != nil {
					t.Fatal(err)
				}
				if snap.LogicalBytes != b.LogicalSize() {
					t.Fatalf("backup %d stored %d logical bytes, generator produced %d",
						i, snap.LogicalBytes, b.LogicalSize())
				}
			}
			if err := repo.Close(); err != nil {
				t.Fatal(err)
			}

			// Cold reopen: the adversary view replays from traces.fdt alone.
			reopened, err := OpenRepository(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.Close()
			log := reopened.TraceLog()
			if log == nil {
				t.Fatal("reopened repository lost its trace log")
			}
			taps := log.Backups()
			if len(taps) != len(d.Backups) {
				t.Fatalf("replayed %d taps, want %d", len(taps), len(d.Backups))
			}

			aux, err := taps[0].Materialize()
			if err != nil {
				t.Fatal(err)
			}
			target, err := taps[len(taps)-1].Materialize()
			if err != nil {
				t.Fatal(err)
			}
			if got := target.UniqueCount(); got < 40 {
				t.Fatalf("target tap has only %d unique chunks — workload too small to attack", got)
			}

			rate := func(scheme defense.Scheme) (float64, defense.Encrypted) {
				enc, err := defense.Encrypt(target, scheme, 11)
				if err != nil {
					t.Fatal(err)
				}
				cfg := attack.Config{U: 1, V: 15, W: 200000, Mode: attack.KnownPlaintext}
				cfg.Leaked = attack.SampleLeaked(enc.Backup, enc.Truth, leakRate, 42)
				// The full suite must run on replayed taps; the locality
				// member scores the scenario.
				suite := attack.Suite(cfg)
				var locality float64
				for _, a := range suite {
					res, err := a.Run(attack.BackupSource(enc.Backup), attack.BackupSource(aux), attack.Params{})
					if err != nil {
						t.Fatalf("%s: %v", a.Name(), err)
					}
					if a.Name() == "locality" {
						locality = res.InferenceRate(enc.Truth)
					}
				}
				return locality, enc
			}

			mle, encMLE := rate(defense.SchemeMLE)
			combined, _ := rate(defense.SchemeCombined)
			if mle <= 2*leakRate {
				t.Fatalf("locality attack against MLE never expanded past its leaked seeds (rate %v)", mle)
			}
			if combined >= mle {
				t.Fatalf("MinHash+scramble rate %v not strictly below MLE rate %v — paper ordering violated", combined, mle)
			}
			t.Logf("MLE %.2f%%, MinHash+scramble %.2f%%", mle*100, combined*100)

			// The streaming .fdt source must agree with the materialized one.
			cfgKP := attack.Config{U: 1, V: 15, W: 200000, Mode: attack.KnownPlaintext}
			cfgKP.Leaked = attack.SampleLeaked(encMLE.Backup, encMLE.Truth, leakRate, 42)
			direct, err := attack.NewLocality(cfgKP).Run(attack.BackupSource(encMLE.Backup), taps[0], attack.Params{Shards: 8, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if got := direct.InferenceRate(encMLE.Truth); got != mle {
				t.Fatalf("attack over the streaming .fdt source scored %v, materialized scored %v", got, mle)
			}
		})
	}
}
