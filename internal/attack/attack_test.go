package attack

import (
	"errors"
	"io"
	"sync"
	"testing"

	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

func fp(v uint64) fphash.Fingerprint { return fphash.FromUint64(v) }

func stream(label string, size uint32, ids ...uint64) *trace.Backup {
	b := &trace.Backup{Label: label}
	for _, id := range ids {
		b.Chunks = append(b.Chunks, trace.ChunkRef{FP: fp(id), Size: size})
	}
	return b
}

// paperExample reproduces the worked example of Figure 3 (the same
// fixture the legacy core tests use).
func paperExample() (c, m *trace.Backup, truth GroundTruth) {
	m = stream("prior", 4096, 101, 102, 101, 102, 103, 104, 102, 103, 104)
	c = stream("latest", 4096, 1, 2, 5, 2, 1, 2, 3, 4, 2, 3, 4, 4)
	truth = GroundTruth{
		fp(1): fp(101), fp(2): fp(102), fp(3): fp(103), fp(4): fp(104),
		fp(5): fp(999),
	}
	return c, m, truth
}

func mustRun(t *testing.T, a Attack, c, m *trace.Backup, p Params) Result {
	t.Helper()
	res, err := a.Run(BackupSource(c), BackupSource(m), p)
	if err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	return res
}

func TestLocalityAttackPaperExample(t *testing.T) {
	c, m, truth := paperExample()
	res := mustRun(t, NewLocality(Config{U: 1, V: 1, W: 0}), c, m, Params{})
	inferred := make(map[fphash.Fingerprint]fphash.Fingerprint)
	for _, p := range res.Pairs {
		inferred[p.C] = p.M
	}
	for i := uint64(1); i <= 4; i++ {
		if inferred[fp(i)] != truth[fp(i)] {
			t.Errorf("C%d inferred as %v, want M%d", i, inferred[fp(i)], i)
		}
	}
	if rate := res.InferenceRate(truth); rate != 0.8 {
		t.Errorf("inference rate = %.2f, want 0.80", rate)
	}
	if res.UniqueTarget != 5 {
		t.Errorf("UniqueTarget = %d, want 5", res.UniqueTarget)
	}
}

func TestBasicWeakerThanLocality(t *testing.T) {
	c, m, truth := paperExample()
	basic := mustRun(t, NewBasic(Config{}), c, m, Params{}).InferenceRate(truth)
	loc := mustRun(t, NewLocality(Config{U: 1, V: 1}), c, m, Params{}).InferenceRate(truth)
	if basic >= loc {
		t.Fatalf("basic (%.2f) should be weaker than locality (%.2f)", basic, loc)
	}
}

// erroringSource fails after a few reads; attacks must propagate the
// error instead of returning a truncated-count result.
type erroringSource struct{}

func (erroringSource) Open() (ChunkReader, error) { return &erroringReader{}, nil }

type erroringReader struct{ reads int }

var errBoom = errors.New("boom")

func (r *erroringReader) Read(buf []trace.ChunkRef) (int, error) {
	if r.reads >= 2 {
		return 0, errBoom
	}
	r.reads++
	for i := range buf {
		buf[i] = trace.ChunkRef{FP: fp(uint64(i + 1)), Size: 64}
	}
	return len(buf), nil
}

func (r *erroringReader) Close() error { return nil }

func TestSourceErrorPropagates(t *testing.T) {
	_, m, _ := paperExample()
	for _, workers := range []int{1, 4} {
		_, err := NewLocality(DefaultConfig()).Run(erroringSource{}, BackupSource(m), Params{Shards: 4, Workers: workers})
		if !errors.Is(err, errBoom) {
			t.Fatalf("workers=%d: err = %v, want errBoom", workers, err)
		}
	}
}

// shortReadSource wraps a slice source but returns at most k refs per
// Read, exercising the scan's batch-fill loop across read boundaries.
type shortReadSource struct {
	refs []trace.ChunkRef
	k    int
}

func (s shortReadSource) Open() (ChunkReader, error) {
	return &shortReader{refs: s.refs, k: s.k}, nil
}

type shortReader struct {
	refs []trace.ChunkRef
	k    int
	pos  int
}

func (r *shortReader) Read(buf []trace.ChunkRef) (int, error) {
	if r.pos >= len(r.refs) {
		return 0, io.EOF
	}
	lim := r.k
	if lim > len(buf) {
		lim = len(buf)
	}
	n := copy(buf[:lim], r.refs[r.pos:])
	r.pos += n
	return n, nil
}

func (r *shortReader) Close() error { return nil }

func TestShortReadsEquivalent(t *testing.T) {
	c, m, truth := paperExample()
	want := mustRun(t, NewLocality(Config{U: 1, V: 1}), c, m, Params{})
	for _, k := range []int{1, 3, 7} {
		res, err := NewLocality(Config{U: 1, V: 1}).Run(
			shortReadSource{refs: c.Chunks, k: k},
			shortReadSource{refs: m.Chunks, k: k},
			Params{Shards: 4, Workers: 2},
		)
		if err != nil {
			t.Fatal(err)
		}
		if !pairsEqual(res.Pairs, want.Pairs) {
			t.Fatalf("k=%d: pairs differ from whole-slice run", k)
		}
		if res.InferenceRate(truth) != want.InferenceRate(truth) {
			t.Fatalf("k=%d: rates differ", k)
		}
	}
}

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardWorkerInvariance pins the engine's central determinism claim:
// identical pairs, stats, and unique counts at every shard and worker
// combination.
func TestShardWorkerInvariance(t *testing.T) {
	ds := testStreams(t)
	cfg := Config{U: 2, V: 5, W: 500, SizeAware: true}
	base := mustRun(t, NewLocality(cfg), ds.c, ds.m, Params{Shards: 1, Workers: 1})
	for _, shards := range []int{1, 3, 16, 64} {
		for _, workers := range []int{1, 2, 8} {
			res := mustRun(t, NewLocality(cfg), ds.c, ds.m, Params{Shards: shards, Workers: workers})
			if !pairsEqual(res.Pairs, base.Pairs) {
				t.Fatalf("shards=%d workers=%d: pairs differ", shards, workers)
			}
			if res.Stats != base.Stats {
				t.Fatalf("shards=%d workers=%d: stats %+v != %+v", shards, workers, res.Stats, base.Stats)
			}
			if res.UniqueTarget != base.UniqueTarget {
				t.Fatalf("shards=%d workers=%d: unique %d != %d", shards, workers, res.UniqueTarget, base.UniqueTarget)
			}
		}
	}
}

type streams struct{ c, m *trace.Backup }

// testStreams builds a moderately sized, locality-rich stream pair from
// the synthetic generator (deterministic).
func testStreams(t *testing.T) streams {
	t.Helper()
	p := trace.DefaultSyntheticParams()
	p.InitialBytes = 2 << 20
	p.NewDataBytes = 32 << 10
	p.Snapshots = 2
	d := trace.GenerateSynthetic(p)
	return streams{c: d.Backups[len(d.Backups)-1], m: d.Backups[0]}
}

// TestConcurrentRuns exercises one Attack value running concurrently
// with distinct sources (the documented contract), under -race.
func TestConcurrentRuns(t *testing.T) {
	ds := testStreams(t)
	a := NewLocality(DefaultConfig())
	want := mustRun(t, a, ds.c, ds.m, Params{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := a.Run(BackupSource(ds.c), BackupSource(ds.m), Params{Shards: 8, Workers: 2})
			if err != nil {
				t.Error(err)
				return
			}
			if !pairsEqual(res.Pairs, want.Pairs) {
				t.Error("concurrent run diverged")
			}
		}()
	}
	wg.Wait()
}

func TestParamsValidation(t *testing.T) {
	c, m, _ := paperExample()
	if _, err := NewBasic(Config{}).Run(BackupSource(c), BackupSource(m), Params{Shards: 300}); err == nil {
		t.Fatal("shards=300 must be rejected")
	}
	if _, err := NewBasic(Config{}).Run(BackupSource(c), BackupSource(m), Params{Workers: -1}); err == nil {
		t.Fatal("workers=-1 must be rejected")
	}
}

func TestSuite(t *testing.T) {
	got := Suite(Config{U: 1, V: 15, W: 1000, SizeAware: true})
	names := []string{"basic", "locality", "advanced"}
	if len(got) != len(names) {
		t.Fatalf("suite has %d attacks, want %d", len(got), len(names))
	}
	for i, a := range got {
		if a.Name() != names[i] {
			t.Fatalf("suite[%d] = %q, want %q", i, a.Name(), names[i])
		}
	}
}
