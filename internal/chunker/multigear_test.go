package chunker

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// TestMultiGearMatchesSerial is the stitching proof: across worker
// counts and segment sizes — including segments far smaller than Max, so
// single chunks straddle several segments — the multi-stream chunker
// emits the exact serial Gear sequence.
func TestMultiGearMatchesSerial(t *testing.T) {
	p := Params{Min: 2048, Avg: 8192, Max: 16384, Algorithm: AlgoGear}
	data := randBytes(91, 3<<20)
	serial, err := NewGear(bytes.NewReader(data), p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := All(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ workers, segSize int }{
		{1, 1 << 20},
		{2, 1 << 20},
		{4, 256 << 10},
		{3, 64 << 10},
		{2, 4 << 10}, // segments smaller than Max: chunks straddle many segments
		{8, 17},      // pathological: segments smaller than the gear window
	} {
		mg, err := newMultiGear(bytes.NewReader(data), p, tc.workers, tc.segSize)
		if err != nil {
			t.Fatal(err)
		}
		got, err := All(mg)
		if err != nil {
			t.Fatalf("workers=%d seg=%d: %v", tc.workers, tc.segSize, err)
		}
		mg.Close()
		if len(got) != len(want) {
			t.Fatalf("workers=%d seg=%d: %d chunks, serial %d", tc.workers, tc.segSize, len(got), len(want))
		}
		for i := range got {
			if got[i].Offset != want[i].Offset || !bytes.Equal(got[i].Data, want[i].Data) ||
				got[i].Fingerprint != want[i].Fingerprint {
				t.Fatalf("workers=%d seg=%d: chunk %d diverges from serial (offset %d vs %d)",
					tc.workers, tc.segSize, i, got[i].Offset, want[i].Offset)
			}
		}
		for _, ch := range got {
			ch.Release()
		}
	}
}

// TestMultiGearGoldenAgainstReference ties the parallel path directly to
// the byte-at-a-time oracle, independent of the serial implementation.
func TestMultiGearGoldenAgainstReference(t *testing.T) {
	for _, p := range gearGoldenParams {
		if p.Min < gearWindow {
			continue // parallel path requires Min >= the gear window
		}
		for _, n := range []int{0, 1, 2048, 16385, 1 << 20} {
			data := randBytes(int64(7*n+13), n)
			mg, err := newMultiGear(bytes.NewReader(data), p, 3, 32<<10)
			if err != nil {
				t.Fatal(err)
			}
			compareGearAgainstReference(t, data, p, mg)
			mg.Close()
		}
	}
}

// TestMultiGearMinBelowWindow: below the gear window the per-position
// hash still depends on the previous cut, so the parallel construction
// is refused rather than silently wrong.
func TestMultiGearMinBelowWindow(t *testing.T) {
	p := Params{Min: 16, Avg: 64, Max: 256, Algorithm: AlgoGear}
	if _, err := NewMultiGear(bytes.NewReader(nil), p, 2); err == nil {
		t.Fatal("NewMultiGear accepted Min below the gear window")
	}
}

// TestMultiGearReadError: a mid-stream read error surfaces from Next,
// and Close reclaims every pooled buffer.
func TestMultiGearReadError(t *testing.T) {
	base := BufsOutstanding()
	boom := errors.New("boom")
	r := io.MultiReader(bytes.NewReader(randBytes(5, 300<<10)), errReader{err: boom})
	p := Params{Min: 2048, Avg: 8192, Max: 16384, Algorithm: AlgoGear}
	mg, err := newMultiGear(r, p, 2, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	sawErr := false
	for {
		ch, err := mg.Next()
		if errors.Is(err, boom) {
			sawErr = true
			break
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		ch.Release()
	}
	if !sawErr {
		t.Fatal("read error never surfaced")
	}
	mg.Close()
	waitBufsBaseline(t, base)
}

// TestMultiGearEarlyClose: abandoning the stream mid-drain leaks no
// pooled buffers and leaves no goroutine blocked (Close returns).
func TestMultiGearEarlyClose(t *testing.T) {
	base := BufsOutstanding()
	data := randBytes(6, 4<<20)
	p := Params{Min: 2048, Avg: 8192, Max: 16384, Algorithm: AlgoGear}
	mg, err := newMultiGear(bytes.NewReader(data), p, 2, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ch, err := mg.Next()
		if err != nil {
			t.Fatal(err)
		}
		ch.Release()
	}
	mg.Close()
	waitBufsBaseline(t, base)
}

// TestMultiGearFullDrainNoClose: after a complete drain the pipeline has
// wound itself down; Close is optional and no buffers are outstanding.
func TestMultiGearFullDrainNoClose(t *testing.T) {
	base := BufsOutstanding()
	data := randBytes(8, 1<<20)
	p := Params{Min: 2048, Avg: 8192, Max: 16384, Algorithm: AlgoGear}
	mg, err := newMultiGear(bytes.NewReader(data), p, 2, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for {
		ch, err := mg.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n += int64(ch.Size())
		ch.Release()
	}
	if n != int64(len(data)) {
		t.Fatalf("drained %d of %d bytes", n, len(data))
	}
	waitBufsBaseline(t, base)
}

// waitBufsBaseline waits briefly for the pipeline's goroutines to hand
// their buffers back (worker result delivery is asynchronous with Close's
// return only in the full-drain case, where goroutines are already done,
// but a small grace window keeps the assertion robust).
func waitBufsBaseline(t *testing.T, base int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for BufsOutstanding() != base {
		if time.Now().After(deadline) {
			t.Fatalf("pooled buffers leaked: %d outstanding, baseline %d", BufsOutstanding(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

func BenchmarkGear(b *testing.B) {
	data := randBytes(9, 4<<20)
	p := DefaultParams()
	p.Algorithm = AlgoGear
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := NewGear(bytes.NewReader(data), p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := All(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiGear(b *testing.B) {
	data := randBytes(9, 16<<20)
	p := DefaultParams()
	p.Algorithm = AlgoGear
	p.DeferFingerprint = true
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mg, err := NewMultiGear(bytes.NewReader(data), p, 0)
		if err != nil {
			b.Fatal(err)
		}
		var n int64
		for {
			ch, err := mg.Next()
			if err != nil {
				break
			}
			n += int64(ch.Size())
			ch.Release()
		}
		mg.Close()
		if n != int64(len(data)) {
			b.Fatalf("chunked %d of %d bytes", n, len(data))
		}
	}
}
