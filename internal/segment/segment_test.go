package segment

import (
	"math/rand"
	"testing"

	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

func randChunks(seed int64, n int, size uint32) []trace.ChunkRef {
	rng := rand.New(rand.NewSource(seed))
	out := make([]trace.ChunkRef, n)
	for i := range out {
		out[i] = trace.ChunkRef{FP: fphash.FromUint64(rng.Uint64()), Size: size}
	}
	return out
}

func TestSplitCoversStream(t *testing.T) {
	chunks := randChunks(1, 5000, 8192)
	segs, err := Split(chunks, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	// Segments must be contiguous, non-empty, and cover the whole stream.
	if segs[0].Start != 0 {
		t.Fatal("first segment does not start at 0")
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Start != segs[i-1].End {
			t.Fatalf("gap between segments %d and %d", i-1, i)
		}
		if segs[i].Len() <= 0 {
			t.Fatalf("empty segment %d", i)
		}
	}
	if segs[len(segs)-1].End != len(chunks) {
		t.Fatal("last segment does not end at stream end")
	}
}

func TestSplitRespectsMaxBytes(t *testing.T) {
	p := DefaultParams()
	chunks := randChunks(2, 5000, 8192)
	segs, err := Split(chunks, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range segs {
		var bytes int
		for _, c := range chunks[s.Start:s.End] {
			bytes += int(c.Size)
		}
		if bytes > p.MaxBytes {
			t.Fatalf("segment %d has %d bytes, max %d", i, bytes, p.MaxBytes)
		}
	}
}

func TestSplitAverageNearTarget(t *testing.T) {
	p := DefaultParams()
	chunks := randChunks(3, 20000, 8192)
	segs, err := Split(chunks, p)
	if err != nil {
		t.Fatal(err)
	}
	totalBytes := 8192 * 20000
	avg := totalBytes / len(segs)
	if avg < p.AvgBytes/2 || avg > p.MaxBytes {
		t.Fatalf("average segment size %d far from target %d", avg, p.AvgBytes)
	}
}

// TestSplitContentDefined is the key property: identical sub-streams
// segment identically regardless of what follows, so segments of
// consecutive similar backups align.
func TestSplitContentDefined(t *testing.T) {
	p := DefaultParams()
	shared := randChunks(4, 2000, 8192)
	tailA := randChunks(5, 500, 8192)
	tailB := randChunks(6, 500, 8192)
	segsA, err := Split(append(append([]trace.ChunkRef{}, shared...), tailA...), p)
	if err != nil {
		t.Fatal(err)
	}
	segsB, err := Split(append(append([]trace.ChunkRef{}, shared...), tailB...), p)
	if err != nil {
		t.Fatal(err)
	}
	// All boundaries strictly inside the shared prefix must coincide.
	bA := boundariesWithin(segsA, len(shared))
	bB := boundariesWithin(segsB, len(shared))
	if len(bA) == 0 {
		t.Fatal("no boundaries in shared prefix; stream too short for the test")
	}
	if len(bA) != len(bB) {
		t.Fatalf("boundary counts differ in shared prefix: %d vs %d", len(bA), len(bB))
	}
	for i := range bA {
		if bA[i] != bB[i] {
			t.Fatalf("boundary %d differs: %d vs %d", i, bA[i], bB[i])
		}
	}
}

func boundariesWithin(segs []Segment, limit int) []int {
	var out []int
	for _, s := range segs {
		if s.End < limit {
			out = append(out, s.End)
		}
	}
	return out
}

func TestSplitEmptyAndSingle(t *testing.T) {
	segs, err := Split(nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if segs != nil {
		t.Fatal("empty stream should yield no segments")
	}
	one := randChunks(7, 1, 8192)
	segs, err = Split(one, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Len() != 1 {
		t.Fatalf("single chunk should be one segment, got %+v", segs)
	}
}

func TestSplitValidation(t *testing.T) {
	bad := []Params{
		{MinBytes: 0, AvgBytes: 1, MaxBytes: 2},
		{MinBytes: 2, AvgBytes: 1, MaxBytes: 2},
		{MinBytes: 1, AvgBytes: 3, MaxBytes: 2},
		{MinBytes: -1, AvgBytes: 1, MaxBytes: 2},
	}
	for _, p := range bad {
		if _, err := Split(randChunks(8, 10, 8192), p); err == nil {
			t.Errorf("Split accepted invalid params %+v", p)
		}
	}
}

func TestMinFingerprint(t *testing.T) {
	chunks := []trace.ChunkRef{
		{FP: fphash.FromUint64(30), Size: 1},
		{FP: fphash.FromUint64(10), Size: 2},
		{FP: fphash.FromUint64(20), Size: 3},
	}
	min := MinFingerprint(chunks, Segment{Start: 0, End: 3})
	if min.FP != fphash.FromUint64(10) {
		t.Fatalf("min = %v, want fp(10)", min.FP)
	}
	// Sub-range excluding the global minimum.
	min = MinFingerprint(chunks, Segment{Start: 2, End: 3})
	if min.FP != fphash.FromUint64(20) {
		t.Fatalf("sub-range min = %v, want fp(20)", min.FP)
	}
}

func TestMinFingerprintPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MinFingerprint on empty segment did not panic")
		}
	}()
	MinFingerprint(nil, Segment{})
}

func TestSplitDeterministic(t *testing.T) {
	chunks := randChunks(9, 3000, 8192)
	a, err := Split(chunks, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Split(chunks, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic segmentation")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("segment %d differs", i)
		}
	}
}
