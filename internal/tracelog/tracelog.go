// Package tracelog persists the adversary's view of a repository's upload
// traffic: the durable bridge between the storage stack's observation tap
// (dedup.UploadObserver) and the streaming attack engine
// (internal/attack).
//
// The paper's threat model (Section 3.3) grants the adversary exactly
// what crosses the wire after client-side encryption: the ciphertext
// chunk fingerprints, the ciphertext sizes, and their logical (upload)
// order — never plaintext, keys, or recipes. A Log records precisely
// that, one committed trace per acknowledged backup, in an append-only
// CRC-framed file (traces.fdt) beside the snapshot catalog, so
// OpenRepository can replay real backup histories into the attack engine
// long after the backups ran.
//
// # On-disk format
//
// The file follows the same append-and-truncate discipline as the .fdc
// container shards and the .fdr snapshot catalog: a 16-byte file header,
// then self-contained records
//
//	record  = magic u32 | kind u32 | sid u32 | payloadLen u32 | payload | crc32
//	begin   (kind 1): payload = backup label (UTF-8)
//	chunks  (kind 2): payload = n x (fingerprint [8] | size u32)
//	end     (kind 3): payload = total chunk count u64
//
// where sid is a per-session id letting concurrently running backups
// interleave their records in one file. Sessions buffer their windows in
// memory (spilling unsynced chunks records past a threshold), and the
// end record is fsynced — one group-committed sync shared by concurrent
// sessions — before a backup is acknowledged; a trace with no end record
// (a crashed or
// failed backup) is ignored on replay, and a record torn by a mid-append
// crash — an incomplete tail, or a final record whose CRC fails — is
// truncated away. Structural damage anywhere else is ErrCorrupt: a
// damaged observation history surfaces as an error, never as a silently
// wrong attack input.
package tracelog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"freqdedup/internal/attack"
	"freqdedup/internal/fphash"
	"freqdedup/internal/gcommit"
	"freqdedup/internal/trace"
	"freqdedup/internal/vfs"
)

// LogName is the trace log's file name within a repository directory.
const LogName = "traces.fdt"

// ErrCorrupt is returned when the trace log fails structural validation
// or a non-tail record fails its checksum.
var ErrCorrupt = errors.New("tracelog: trace log corrupt")

// On-disk layout constants.
const (
	logMagic     = 0x4644544C // "FDTL": freqdedup trace log
	logVersion   = 1
	logHeaderLen = 16 // magic + version + 2 reserved, u32 each

	recMagic = 0x46445431 // "FDT1": one trace record
	// recHeaderLen is magic + kind + sid + payloadLen, u32 each.
	recHeaderLen  = 16
	recTrailerLen = 4 // CRC32 over header + payload

	kindBegin  = 1
	kindChunks = 2
	kindEnd    = 3

	// refLen is one observed chunk reference in a chunks payload.
	refLen = fphash.Size + 4

	// maxLabel and maxPayload bound record fields during replay: lengths
	// beyond them cannot come from a well-formed writer and are treated
	// as structural corruption rather than attempted allocations.
	maxLabel   = 4 << 10
	maxPayload = 64 << 20
)

// extent locates one committed chunks record: the payload offset in the
// file and the number of references it holds.
type extent struct {
	off int64
	n   int
}

// Log is an adversary trace log: a sequence of committed backup traces.
// The zero value is not usable; construct with Create, Open, or NewMem.
// A Log is safe for concurrent use — concurrent backup sessions
// interleave records under one lock, and committed traces may be read
// while new ones are appended.
type Log struct {
	mu       sync.Mutex
	fsys     vfs.FS   // nil for a memory-only log
	f        vfs.File // nil for a memory-only log
	path     string
	readOnly bool
	size     int64
	nextSID  uint32
	backups  []*BackupTrace
	closed   bool
	scratch  []byte

	// Group commit for the end-record fsync: sessions buffer their chunk
	// windows in memory (spilling unsynced records past a threshold), so
	// the only durability barrier is at Commit — and concurrent commits
	// share it. syncMu orders the committer's fsync against the handle
	// teardown in Close (lock order: l.mu before syncMu).
	syncMu  sync.Mutex
	gc      *gcommit.Committer
	seq     int64        // last assigned commit sequence
	pending []logPending // committed-but-unsynced end records
}

// logPending maps a commit sequence to the file offset of its end record,
// so a failed sync can truncate back to the durable boundary.
type logPending struct {
	seq int64
	off int64
}

// initCommitter wires the log's group committer. Trace-log fsync failures
// are sticky: the tail past the last successful sync is in an unknown
// durable state, so the instance refuses further appends and the caller
// reopens (replay truncates any torn tail).
func (l *Log) initCommitter() {
	l.gc = gcommit.New(func() error {
		l.syncMu.Lock()
		defer l.syncMu.Unlock()
		if l.f == nil {
			return errors.New("tracelog: log is closed")
		}
		return l.f.Sync()
	}, true)
}

// SetGroupCommitWindow sets the straggler window for the end-record group
// commit: a leader delays its fsync this long so concurrent session
// commits can join the round. Zero (the default) syncs immediately.
func (l *Log) SetGroupCommitWindow(d time.Duration) {
	if l.gc != nil {
		l.gc.SetWindow(d)
	}
}

// CommitSyncs returns how many end-record fsync rounds have run — with
// concurrent sessions this is less than the session count.
func (l *Log) CommitSyncs() int64 {
	if l.gc == nil {
		return 0
	}
	return l.gc.Syncs()
}

// NewMem returns a log kept only in memory — the tap used by in-memory
// repositories and by the replay-equivalence tests. Nothing survives the
// process.
func NewMem() *Log { return &Log{} }

// Create initializes a new, empty trace log file. It fails if the file
// already exists.
func Create(path string) (*Log, error) {
	return CreateFS(vfs.OS, path)
}

// CreateFS is Create against an explicit filesystem.
func CreateFS(fsys vfs.FS, path string) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tracelog: create: %w", err)
	}
	var hdr [logHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], logMagic)
	binary.LittleEndian.PutUint32(hdr[4:], logVersion)
	_, err = f.Write(hdr[:])
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		fsys.Remove(path)
		return nil, fmt.Errorf("tracelog: write header: %w", err)
	}
	if err := vfs.SyncDir(fsys, filepath.Dir(path)); err != nil {
		f.Close()
		fsys.Remove(path)
		return nil, err
	}
	l := &Log{fsys: fsys, f: f, path: path, size: logHeaderLen}
	l.initCommitter()
	return l, nil
}

// Open opens an existing trace log and replays its records, recovering
// the committed backup traces. A record torn by a mid-append crash is
// discarded by truncating the file back to the last complete record;
// traces whose backup never committed (no end record) are dropped. Open
// is for the log's owner (the repository); replay-only consumers must
// use OpenReadOnly — Open's tail truncation would corrupt a log another
// process is still appending to.
func Open(path string) (*Log, error) {
	return OpenFS(vfs.OS, path)
}

// OpenFS is Open against an explicit filesystem.
func OpenFS(fsys vfs.FS, path string) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("tracelog: open: %w", err)
	}
	l := &Log{fsys: fsys, f: f, path: path}
	l.initCommitter()
	if err := l.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// OpenReadOnly opens a trace log for replay without taking ownership:
// the file is opened read-only, an incomplete tail (which may simply be
// another process's in-flight append, not crash damage) is ignored
// rather than truncated, and Begin is refused. This is the mode for
// inspection tools (`defend attack -repo`, `-dataset repo:`) pointed at
// a repository that may still be live.
func OpenReadOnly(path string) (*Log, error) {
	return OpenReadOnlyFS(vfs.OS, path)
}

// OpenReadOnlyFS is OpenReadOnly against an explicit filesystem.
func OpenReadOnlyFS(fsys vfs.FS, path string) (*Log, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracelog: open: %w", err)
	}
	l := &Log{fsys: fsys, f: f, path: path, readOnly: true}
	if err := l.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// replay scans the log file, rebuilding the committed-trace list and
// truncating a torn tail.
func (l *Log) replay() error {
	st, err := l.f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size < logHeaderLen {
		return fmt.Errorf("%w: %s shorter than its header", ErrCorrupt, l.path)
	}
	var hdr [logHeaderLen]byte
	if _, err := l.f.ReadAt(hdr[:], 0); err != nil {
		return err
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != logMagic {
		return fmt.Errorf("%w: %s has bad magic %#x", ErrCorrupt, l.path, m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != logVersion {
		return fmt.Errorf("%w: %s has unsupported version %d", ErrCorrupt, l.path, v)
	}

	// One in-flight (begun, not yet ended) trace per session id.
	type pending struct {
		label   string
		extents []extent
		count   int64
	}
	open := make(map[uint32]*pending)

	pos := int64(logHeaderLen)
	var rec [recHeaderLen]byte
	for pos < size {
		if pos+recHeaderLen > size {
			break // torn tail: header itself incomplete
		}
		if _, err := l.f.ReadAt(rec[:], pos); err != nil {
			return err
		}
		if m := binary.LittleEndian.Uint32(rec[0:]); m != recMagic {
			return fmt.Errorf("%w: %s: bad record magic %#x at offset %d", ErrCorrupt, l.path, m, pos)
		}
		kind := binary.LittleEndian.Uint32(rec[4:])
		sid := binary.LittleEndian.Uint32(rec[8:])
		payloadLen := int64(binary.LittleEndian.Uint32(rec[12:]))
		if payloadLen > maxPayload {
			return fmt.Errorf("%w: %s: absurd payload length %d at offset %d", ErrCorrupt, l.path, payloadLen, pos)
		}
		end := pos + recHeaderLen + payloadLen + recTrailerLen
		if end > size {
			break // torn tail: body incomplete
		}
		body := make([]byte, payloadLen+recTrailerLen)
		if _, err := l.f.ReadAt(body, pos+recHeaderLen); err != nil {
			return err
		}
		crc := crc32.ChecksumIEEE(rec[:])
		crc = crc32.Update(crc, crc32.IEEETable, body[:payloadLen])
		if stored := binary.LittleEndian.Uint32(body[payloadLen:]); crc != stored {
			if end == size {
				// The final record's bytes are all present but the
				// checksum fails: a crash caught the append mid-write.
				break
			}
			return fmt.Errorf("%w: %s: record checksum mismatch at offset %d", ErrCorrupt, l.path, pos)
		}
		if sid >= l.nextSID {
			l.nextSID = sid + 1
		}
		payload := body[:payloadLen]
		switch kind {
		case kindBegin:
			if payloadLen > maxLabel {
				return fmt.Errorf("%w: %s: absurd label length %d at offset %d", ErrCorrupt, l.path, payloadLen, pos)
			}
			if _, ok := open[sid]; ok {
				return fmt.Errorf("%w: %s: duplicate begin for session %d at offset %d", ErrCorrupt, l.path, sid, pos)
			}
			open[sid] = &pending{label: string(payload)}
		case kindChunks:
			p, ok := open[sid]
			if !ok {
				return fmt.Errorf("%w: %s: chunks record for unknown session %d at offset %d", ErrCorrupt, l.path, sid, pos)
			}
			if payloadLen%refLen != 0 {
				return fmt.Errorf("%w: %s: chunks payload length %d not a multiple of %d at offset %d",
					ErrCorrupt, l.path, payloadLen, refLen, pos)
			}
			n := int(payloadLen / refLen)
			p.extents = append(p.extents, extent{off: pos + recHeaderLen, n: n})
			p.count += int64(n)
		case kindEnd:
			p, ok := open[sid]
			if !ok {
				return fmt.Errorf("%w: %s: end record for unknown session %d at offset %d", ErrCorrupt, l.path, sid, pos)
			}
			if payloadLen != 8 {
				return fmt.Errorf("%w: %s: end payload length %d at offset %d", ErrCorrupt, l.path, payloadLen, pos)
			}
			if want := int64(binary.LittleEndian.Uint64(payload)); want != p.count {
				return fmt.Errorf("%w: %s: session %d ended with %d chunks, records hold %d",
					ErrCorrupt, l.path, sid, want, p.count)
			}
			delete(open, sid)
			l.backups = append(l.backups, &BackupTrace{
				Label:   p.label,
				Chunks:  p.count,
				log:     l,
				extents: p.extents,
			})
		default:
			return fmt.Errorf("%w: %s: unknown record kind %d at offset %d", ErrCorrupt, l.path, kind, pos)
		}
		pos = end
	}
	if pos < size && !l.readOnly {
		// Discard the torn tail so future appends start at a record
		// boundary. Unterminated sessions before the tail stay as dead
		// records: their backups were never acknowledged. A read-only
		// replay leaves the tail alone — it may be another process's
		// append in flight, and this opener owns nothing.
		if err := l.f.Truncate(pos); err != nil {
			return fmt.Errorf("tracelog: truncate torn tail: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	l.size = pos
	return nil
}

// Backups returns the committed backup traces in commit order. The
// returned slice is a snapshot; traces committed later are not included.
func (l *Log) Backups() []*BackupTrace {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*BackupTrace, len(l.backups))
	copy(out, l.backups)
	return out
}

// Path returns the log's file path ("" for a memory log).
func (l *Log) Path() string { return l.path }

// Close releases the log's file handle. Every committed trace is already
// durable.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	if l.f == nil {
		return nil
	}
	l.syncMu.Lock()
	err := l.f.Close()
	l.f = nil
	l.syncMu.Unlock()
	return err
}

// buildRecord serializes one record into l.scratch (callers hold l.mu).
func (l *Log) buildRecord(kind, sid uint32, payload []byte) []byte {
	n := recHeaderLen + len(payload) + recTrailerLen
	if cap(l.scratch) < n {
		l.scratch = make([]byte, n)
	}
	buf := l.scratch[:n]
	binary.LittleEndian.PutUint32(buf[0:], recMagic)
	binary.LittleEndian.PutUint32(buf[4:], kind)
	binary.LittleEndian.PutUint32(buf[8:], sid)
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(payload)))
	off := recHeaderLen + copy(buf[recHeaderLen:], payload)
	binary.LittleEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	return buf
}

// appendRecord appends one record (callers hold l.mu), returning the
// record's start offset. A failed write leaves the tail state unchanged —
// the next append lands at the same offset. Durability is deferred to the
// session's Commit, which runs the group-commit fsync.
func (l *Log) appendRecord(kind, sid uint32, payload []byte) (int64, error) {
	if err := l.gc.Err(); err != nil {
		return 0, fmt.Errorf("tracelog: log poisoned by earlier sync failure: %w", err)
	}
	buf := l.buildRecord(kind, sid, payload)
	at := l.size
	if _, err := l.f.WriteAt(buf, at); err != nil {
		return 0, fmt.Errorf("tracelog: append record: %w", err)
	}
	l.size += int64(len(buf))
	return at, nil
}

// prunePendingLocked drops pending entries covered by durable sequence d.
func (l *Log) prunePendingLocked(d int64) {
	i := 0
	for i < len(l.pending) && l.pending[i].seq <= d {
		i++
	}
	if i > 0 {
		l.pending = append(l.pending[:0], l.pending[i:]...)
	}
}

// truncateToDurableLocked discards end records past the durable boundary
// after a failed sync. Unsynced chunk records of other in-flight sessions
// may survive past the boundary as dead space; the log is poisoned, so
// nothing further appends behind them, and replay's torn-tail handling
// cleans up after the reopen.
func (l *Log) truncateToDurableLocked(d int64) {
	l.prunePendingLocked(d)
	boundary := l.size
	if len(l.pending) > 0 {
		boundary = l.pending[0].off
	}
	l.pending = l.pending[:0]
	if boundary < l.size {
		l.size = boundary
	}
	if l.f != nil && l.f.Truncate(l.size) == nil {
		_ = l.f.Sync()
	}
}

// Begin starts recording one backup's upload trace. The returned Session
// implements dedup.UploadObserver; hand it to the client whose backup is
// being observed, then Commit after the backup is acknowledged (or Abort
// on failure — an aborted session's records are ignored on replay).
func (l *Log) Begin(label string) (*Session, error) {
	if len(label) > maxLabel {
		return nil, fmt.Errorf("tracelog: label longer than %d bytes", maxLabel)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, errors.New("tracelog: log is closed")
	}
	if l.readOnly {
		return nil, errors.New("tracelog: log is open read-only")
	}
	s := &Session{log: l, label: label, sid: l.nextSID}
	l.nextSID++
	if l.f != nil {
		if _, err := l.appendRecord(kindBegin, s.sid, []byte(label)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// sessionSpillBytes is the encoded size past which a session's buffered
// windows spill to an (unsynced) chunks record. Below it, a backup's
// whole trace stays in memory until Commit — ObserveUpload does no I/O at
// all, keeping the observation tap off the backup's critical path.
const sessionSpillBytes = 4 << 20

// Session records one backup's observed upload stream. It implements
// dedup.UploadObserver. A session is used by one backup pipeline at a
// time; the log it writes to may carry concurrent sessions.
//
// A file-backed session buffers its windows in memory and writes them
// out — still without an fsync — only when the buffer passes the spill
// threshold. Durability happens once, at Commit: the buffered tail and
// the end record are appended, and the end-record fsync is shared with
// concurrently committing sessions via group commit.
type Session struct {
	log     *Log
	label   string
	sid     uint32
	count   int64
	extents []extent
	mem     []trace.ChunkRef // memory-log accumulation
	done    bool
	buf     []byte // encoded refs not yet spilled to the file
}

// ObserveUpload appends one window of observed uploads: ciphertext
// fingerprint and ciphertext size per chunk, in upload order. refs is
// only borrowed for the duration of the call.
func (s *Session) ObserveUpload(refs []trace.ChunkRef) error {
	if len(refs) == 0 {
		return nil
	}
	if s.done {
		return errors.New("tracelog: session already committed or aborted")
	}
	l := s.log
	if l.fsys == nil {
		l.mu.Lock()
		defer l.mu.Unlock()
		if l.closed {
			return errors.New("tracelog: log is closed")
		}
		s.mem = append(s.mem, refs...)
		s.count += int64(len(refs))
		return nil
	}
	// File-backed: encode into the session-local buffer, no log lock and
	// no I/O unless the spill threshold is crossed.
	off := len(s.buf)
	s.buf = append(s.buf, make([]byte, len(refs)*refLen)...)
	for _, ref := range refs {
		copy(s.buf[off:], ref.FP[:])
		binary.LittleEndian.PutUint32(s.buf[off+fphash.Size:], ref.Size)
		off += refLen
	}
	s.count += int64(len(refs))
	if len(s.buf) < sessionSpillBytes {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return s.spillLocked()
}

// spillLocked writes the session's buffered windows as one chunks record,
// without syncing. Called with l.mu held.
func (s *Session) spillLocked() error {
	if len(s.buf) == 0 {
		return nil
	}
	l := s.log
	if l.closed {
		return errors.New("tracelog: log is closed")
	}
	at, err := l.appendRecord(kindChunks, s.sid, s.buf)
	if err != nil {
		return err
	}
	s.extents = append(s.extents, extent{off: at + recHeaderLen, n: len(s.buf) / refLen})
	s.buf = s.buf[:0]
	return nil
}

// Commit seals the session's trace: buffered windows and the end record
// are appended, and a sync covering them has returned before Commit does,
// so an acknowledged backup's trace survives a crash. The sync is shared
// with concurrently committing sessions (group commit). The trace becomes
// visible to Backups.
func (s *Session) Commit() error {
	if s.done {
		return errors.New("tracelog: session already committed or aborted")
	}
	s.done = true
	l := s.log
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errors.New("tracelog: log is closed")
	}
	if l.f == nil {
		l.backups = append(l.backups, &BackupTrace{
			Label: s.label, Chunks: s.count, log: l, mem: s.mem,
		})
		l.mu.Unlock()
		return nil
	}
	if err := s.spillLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], uint64(s.count))
	at, err := l.appendRecord(kindEnd, s.sid, payload[:])
	if err != nil {
		l.mu.Unlock()
		return err
	}
	l.seq++
	seq := l.seq
	l.pending = append(l.pending, logPending{seq: seq, off: at})
	l.mu.Unlock()

	err = l.gc.Commit(seq)
	d := l.gc.Durable()
	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		l.truncateToDurableLocked(d)
		return fmt.Errorf("tracelog: sync: %w", err)
	}
	l.prunePendingLocked(d)
	l.backups = append(l.backups, &BackupTrace{
		Label:   s.label,
		Chunks:  s.count,
		log:     l,
		extents: s.extents,
	})
	return nil
}

// Abort drops the session. Buffered windows are discarded; records
// already spilled stay in the file as dead space but are never replayed:
// without an end record the trace is not committed — exactly the state a
// crash mid-backup leaves behind.
func (s *Session) Abort() {
	s.done = true
	s.mem = nil
	s.buf = nil
}

// BackupTrace is one committed backup's observed upload stream. It
// implements attack.ChunkSource: Open returns a streaming reader over the
// log file (or the in-memory records for a memory log), so a trace larger
// than RAM feeds the attack engine without being materialized.
type BackupTrace struct {
	// Label is the backup's name as recorded at Begin.
	Label string
	// Chunks is the number of observed chunk uploads.
	Chunks int64

	log     *Log
	extents []extent
	mem     []trace.ChunkRef
}

// ChunkCount reports the trace's length, implementing the attack
// engine's optional table pre-sizing hint (attack.ChunkCounter).
func (t *BackupTrace) ChunkCount() int64 { return t.Chunks }

// Open returns a reader over the trace, re-verifying each record's CRC as
// it streams. Readers are independent; a trace may be open several times
// concurrently (the attack engine's counting passes do exactly that), and
// may be read while new sessions append to the same log. Traces must not
// be opened after the log is closed.
func (t *BackupTrace) Open() (attack.ChunkReader, error) {
	l := t.log
	l.mu.Lock()
	f, closed := l.f, l.closed
	l.mu.Unlock()
	if f == nil {
		if closed {
			return nil, errors.New("tracelog: log is closed")
		}
		r, err := attack.SliceSource(t.mem).Open()
		return r, err
	}
	return &traceReader{t: t, f: f}, nil
}

// Materialize loads the whole trace as a backup stream — the bridge to
// code that needs in-memory streams (trace-level defense simulation,
// figure runners). Prefer Open for attack runs.
func (t *BackupTrace) Materialize() (*trace.Backup, error) {
	b := &trace.Backup{Label: t.Label, Chunks: make([]trace.ChunkRef, 0, t.Chunks)}
	r, err := t.Open()
	if err != nil {
		return nil, err
	}
	defer r.Close()
	buf := make([]trace.ChunkRef, 4096)
	for {
		n, err := r.Read(buf)
		b.Chunks = append(b.Chunks, buf[:n]...)
		if err == io.EOF {
			return b, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// traceReader streams a file-backed trace extent by extent. Each chunks
// record is read with one ReadAt (safe under concurrent appends to the
// same file) and CRC-checked before any reference is handed out.
type traceReader struct {
	t   *BackupTrace
	f   vfs.File // captured at Open; a closed log fails reads cleanly
	ext int      // next extent to load
	buf []trace.ChunkRef
	pos int
}

func (r *traceReader) Read(buf []trace.ChunkRef) (int, error) {
	for r.pos >= len(r.buf) {
		if r.ext >= len(r.t.extents) {
			return 0, io.EOF
		}
		if err := r.load(r.t.extents[r.ext]); err != nil {
			return 0, err
		}
		r.ext++
		r.pos = 0
	}
	n := copy(buf, r.buf[r.pos:])
	r.pos += n
	return n, nil
}

// load reads and verifies one chunks record, decoding it into r.buf.
func (r *traceReader) load(e extent) error {
	l := r.t.log
	payloadLen := e.n * refLen
	raw := make([]byte, recHeaderLen+payloadLen+recTrailerLen)
	if _, err := r.f.ReadAt(raw, e.off-recHeaderLen); err != nil {
		return fmt.Errorf("tracelog: read trace record: %w", err)
	}
	if m := binary.LittleEndian.Uint32(raw[0:]); m != recMagic {
		return fmt.Errorf("%w: %s: bad record magic %#x at offset %d", ErrCorrupt, l.path, m, e.off-recHeaderLen)
	}
	crc := crc32.ChecksumIEEE(raw[:recHeaderLen+payloadLen])
	if stored := binary.LittleEndian.Uint32(raw[recHeaderLen+payloadLen:]); crc != stored {
		return fmt.Errorf("%w: %s: record checksum mismatch at offset %d", ErrCorrupt, l.path, e.off-recHeaderLen)
	}
	if cap(r.buf) < e.n {
		r.buf = make([]trace.ChunkRef, e.n)
	}
	r.buf = r.buf[:e.n]
	payload := raw[recHeaderLen : recHeaderLen+payloadLen]
	for i := range r.buf {
		off := i * refLen
		copy(r.buf[i].FP[:], payload[off:off+fphash.Size])
		r.buf[i].Size = binary.LittleEndian.Uint32(payload[off+fphash.Size:])
	}
	return nil
}

func (r *traceReader) Close() error {
	r.buf = nil
	return nil
}
