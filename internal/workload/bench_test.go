package workload

import (
	"testing"
)

// BenchmarkWorkloadGenerate tracks the cost of generating each registered
// workload at a fixed small scale, reporting logical throughput so
// modifier-chain regressions (accidental quadratic scans, per-chunk
// allocation) surface in the committed baseline.
func BenchmarkWorkloadGenerate(b *testing.B) {
	cfg := Config{Seed: 7, Backups: 4, TotalBytes: 4 << 20}
	for _, name := range List() {
		b.Run(name, func(b *testing.B) {
			var logical int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d, err := Generate(name, cfg)
				if err != nil {
					b.Fatal(err)
				}
				logical = int64(d.Stats().LogicalBytes)
			}
			b.SetBytes(logical)
		})
	}
}
