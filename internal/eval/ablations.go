package eval

import (
	"fmt"

	"freqdedup/internal/attack"
	"freqdedup/internal/defense"
	"freqdedup/internal/fphash"
	"freqdedup/internal/segment"
)

// AblationDefenseComponents decomposes the combined defense on the FSL
// setup of Figure 10 (known-plaintext, 0.2% leakage, advanced attack):
// baseline MLE, RCE (randomized bodies, deterministic tags — Section 8),
// scrambling alone, MinHash alone, and the combined scheme.
func AblationDefenseComponents(ds Datasets) (Figure, error) {
	s := fig8Setups(ds)[0] // FSL
	const leakage = 0.002
	fig := Figure{
		ID:      "Ablation A1",
		Title:   "defense components vs advanced attack (FSL, known-plaintext, 0.2% leakage)",
		XLabel:  "scheme",
		Percent: true,
	}
	ser := Series{Name: "inference rate"}
	for _, scheme := range []defense.Scheme{
		defense.SchemeMLE,
		defense.SchemeRCE,
		defense.SchemeScrambleOnly,
		defense.SchemeMinHash,
		defense.SchemeCombined,
	} {
		enc, err := defense.Encrypt(s.target, scheme, 7)
		if err != nil {
			return Figure{}, err
		}
		leaked := attack.SampleLeaked(enc.Backup, enc.Truth, leakage, 23)
		cfg := kpConfig(leaked)
		cfg.SizeAware = true
		rate := runAttackOn(attackLocality, s.aux, enc, cfg)
		fig.X = append(fig.X, scheme.String())
		ser.Y = append(ser.Y, rate)
	}
	fig.Series = []Series{ser}
	fig.Notes = append(fig.Notes,
		"RCE's deterministic dedup tags leak exactly like MLE; scrambling alone already breaks the locality walk but leaves the frequency distribution exposed")
	return fig, nil
}

// AblationSegmentSize sweeps the defense's segment size on FSL, reporting
// both sides of the trade-off: the combined scheme's inference rate (same
// attack as Figure 10 at 0.2% leakage) and its storage-saving loss versus
// MLE. Larger segments re-key fewer chunks per churn event (cheaper) but
// scramble over wider windows (also stronger defense); at laptop scale the
// dominant effect is the dedup cost.
func AblationSegmentSize(ds Datasets) (Figure, error) {
	s := fig8Setups(ds)[0] // FSL
	const leakage = 0.002
	sweeps := []segment.Params{
		{MinBytes: 32 << 10, AvgBytes: 64 << 10, MaxBytes: 128 << 10},
		{MinBytes: 64 << 10, AvgBytes: 128 << 10, MaxBytes: 256 << 10},
		{MinBytes: 128 << 10, AvgBytes: 256 << 10, MaxBytes: 512 << 10},
		{MinBytes: 512 << 10, AvgBytes: 1 << 20, MaxBytes: 2 << 20}, // paper's absolute sizes
	}
	fig := Figure{
		ID:      "Ablation A2",
		Title:   "combined scheme vs segment size (FSL): inference rate and dedup loss",
		XLabel:  "segment min/avg/max",
		Percent: true,
	}
	rateSer := Series{Name: "inference rate"}
	lossSer := Series{Name: "saving loss vs MLE"}

	mleSav, err := defense.StorageSavings(ds.FSL, defense.SchemeMLE, 1)
	if err != nil {
		return Figure{}, err
	}
	mleFinal := mleSav[len(mleSav)-1]

	for _, sp := range sweeps {
		opt := defense.Options{Segments: sp, Scramble: true, Seed: 7}
		enc, err := defense.EncryptMinHash(s.target, opt)
		if err != nil {
			return Figure{}, err
		}
		leaked := attack.SampleLeaked(enc.Backup, enc.Truth, leakage, 23)
		cfg := kpConfig(leaked)
		cfg.SizeAware = true
		rate := runAttackOn(attackLocality, s.aux, enc, cfg)

		saving, err := combinedSavingWith(ds, opt)
		if err != nil {
			return Figure{}, err
		}
		fig.X = append(fig.X, fmt.Sprintf("%dK/%dK/%dK", sp.MinBytes>>10, sp.AvgBytes>>10, sp.MaxBytes>>10))
		rateSer.Y = append(rateSer.Y, rate)
		lossSer.Y = append(lossSer.Y, mleFinal-saving)
	}
	fig.Series = []Series{rateSer, lossSer}
	return fig, nil
}

// combinedSavingWith computes the FSL dataset's final cumulative saving
// under the combined scheme with explicit options.
func combinedSavingWith(ds Datasets, opt defense.Options) (float64, error) {
	stored := make(map[fphash.Fingerprint]struct{})
	var logical, physical uint64
	for i, b := range ds.FSL.Backups {
		o := opt
		o.Seed = opt.Seed + int64(i)
		enc, err := defense.EncryptMinHash(b, o)
		if err != nil {
			return 0, err
		}
		for _, c := range enc.Backup.Chunks {
			logical += uint64(c.Size)
			if _, ok := stored[c.FP]; !ok {
				stored[c.FP] = struct{}{}
				physical += uint64(c.Size)
			}
		}
	}
	return 1 - float64(physical)/float64(logical), nil
}

// AblationTieBreaking quantifies the attack-implementation choice
// documented in package core: breaking per-neighbor frequency ties by
// first stream position versus arbitrarily (by fingerprint), on the
// ciphertext-only locality attack.
func AblationTieBreaking(ds Datasets) Figure {
	fig := Figure{
		ID:      "Ablation A3",
		Title:   "neighbor tie-breaking: first-position vs arbitrary (ciphertext-only locality attack)",
		XLabel:  "dataset",
		Percent: true,
	}
	pos := Series{Name: "position ties"}
	arb := Series{Name: "arbitrary ties"}
	for _, s := range fig4Setups(ds) {
		cfg := ctOnlyConfig()
		pos.Y = append(pos.Y, runAttack(attackLocality, s.aux, s.target, cfg))
		cfg.ArbitraryTies = true
		arb.Y = append(arb.Y, runAttack(attackLocality, s.aux, s.target, cfg))
		fig.X = append(fig.X, s.name)
	}
	fig.Series = []Series{pos, arb}
	fig.Notes = append(fig.Notes,
		"stream position is adversary-observable; discarding it (arbitrary ties) weakens the walk across equal-count neighbor sets")
	return fig
}
