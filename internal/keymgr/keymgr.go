// Package keymgr implements a DupLESS-style key manager for server-aided
// MLE (Section 2.2): a dedicated server that derives chunk keys from chunk
// fingerprints and a system-wide secret, accessible only by authenticated
// clients, and that rate-limits key generation to slow down online
// brute-force attacks.
//
// The wire protocol is a minimal binary request/response over TCP:
//
//	client -> server (once):  32-byte auth token
//	server -> client (once):  1-byte status (statusOK or statusAuthFailed)
//	client -> server (per req): 8-byte chunk fingerprint
//	server -> client (per req): 1-byte status; on statusOK, a 32-byte key
//
// The server derives keys as HMAC-SHA-256(secret, fingerprint), so the
// resulting keys look random to anyone without the secret, while remaining
// deterministic for deduplication.
package keymgr

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
)

// Wire protocol status codes.
const (
	statusOK          = 0x01
	statusAuthFailed  = 0x02
	statusRateLimited = 0x03
)

// TokenSize is the size of the client authentication token in bytes.
const TokenSize = 32

// Errors returned by the client.
var (
	ErrAuthFailed  = errors.New("keymgr: authentication failed")
	ErrRateLimited = errors.New("keymgr: rate limited")
	ErrClosed      = errors.New("keymgr: closed")
)

// RateLimiter bounds the rate of key derivations. Implementations must be
// safe for concurrent use.
type RateLimiter interface {
	// Allow reports whether one more request may proceed now.
	Allow() bool
}

// unlimited allows everything.
type unlimited struct{}

func (unlimited) Allow() bool { return true }

// TokenBucket is a classic token-bucket rate limiter: capacity `burst`
// tokens, refilled at `rate` tokens per second.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // injectable clock for tests
}

var _ RateLimiter = (*TokenBucket)(nil)

// NewTokenBucket returns a bucket allowing `rate` requests per second with
// the given burst. It panics if rate or burst is not positive.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if rate <= 0 || burst <= 0 {
		panic(fmt.Sprintf("keymgr: invalid token bucket rate=%v burst=%v", rate, burst))
	}
	tb := &TokenBucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
	tb.last = tb.now()
	return tb
}

// Allow implements RateLimiter.
func (tb *TokenBucket) Allow() bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.now()
	elapsed := now.Sub(tb.last).Seconds()
	tb.last = now
	tb.tokens += elapsed * tb.rate
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}

// ServerConfig configures a key manager server.
type ServerConfig struct {
	// Secret is the system-wide key-derivation secret. Required.
	Secret []byte
	// Token authenticates clients. Required.
	Token [TokenSize]byte
	// Limiter rate-limits key derivations; nil means unlimited.
	Limiter RateLimiter
	// IdleTimeout closes connections that send no request for this long
	// (including clients that never complete authentication). Zero means
	// no timeout.
	IdleTimeout time.Duration
}

// Server is the key manager. Create with NewServer, start with Serve or
// ListenAndServe, stop with Close.
type Server struct {
	cfg ServerConfig

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	derived  uint64 // number of keys derived (stats)
	rejected uint64 // number of rate-limited requests (stats)
}

// NewServer returns a server with the given configuration.
func NewServer(cfg ServerConfig) (*Server, error) {
	if len(cfg.Secret) == 0 {
		return nil, errors.New("keymgr: empty secret")
	}
	if cfg.Limiter == nil {
		cfg.Limiter = unlimited{}
	}
	secret := make([]byte, len(cfg.Secret))
	copy(secret, cfg.Secret)
	cfg.Secret = secret
	return &Server{cfg: cfg, conns: make(map[net.Conn]struct{})}, nil
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves until
// Close. It returns the bound address on a channel-free API by requiring
// the caller to use Addr after it returns from listening setup; prefer
// Listen + Serve for tests.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("keymgr: listen: %w", err)
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close is called.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("keymgr: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Addr returns the listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener and closes all active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Stats returns the number of keys derived and requests rejected by rate
// limiting since the server started.
func (s *Server) Stats() (derived, rejected uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.derived, s.rejected
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	refreshDeadline := func() {
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)) //nolint:errcheck
		}
	}

	refreshDeadline()
	var token [TokenSize]byte
	if _, err := io.ReadFull(conn, token[:]); err != nil {
		return
	}
	if subtle.ConstantTimeCompare(token[:], s.cfg.Token[:]) != 1 {
		conn.Write([]byte{statusAuthFailed})
		return
	}
	if _, err := conn.Write([]byte{statusOK}); err != nil {
		return
	}

	var fp fphash.Fingerprint
	resp := make([]byte, 1+mle.KeySize)
	for {
		refreshDeadline()
		if _, err := io.ReadFull(conn, fp[:]); err != nil {
			return
		}
		if !s.cfg.Limiter.Allow() {
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
			if _, err := conn.Write([]byte{statusRateLimited}); err != nil {
				return
			}
			continue
		}
		key := s.derive(fp)
		s.mu.Lock()
		s.derived++
		s.mu.Unlock()
		resp[0] = statusOK
		copy(resp[1:], key[:])
		if _, err := conn.Write(resp); err != nil {
			return
		}
	}
}

func (s *Server) derive(fp fphash.Fingerprint) mle.Key {
	mac := hmac.New(sha256.New, s.cfg.Secret)
	mac.Write(fp[:])
	var k mle.Key
	copy(k[:], mac.Sum(nil))
	return k
}
