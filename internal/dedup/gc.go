package dedup

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"freqdedup/internal/container"
	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
)

// Backup retention and garbage collection. Deduplicated storage cannot
// delete chunks when a backup expires — other backups may reference them.
// The store therefore tracks reference counts per unique chunk, registered
// per backup, and a mark-and-sweep style collector reclaims chunks whose
// count drops to zero, compacting the containers they lived in (the
// "physical garbage collection" problem of deduplicating storage that the
// paper's DDFS lineage deals with in production).
//
// Retention state is store-level (backups span shards) under retMu; the
// sweep takes retMu and then every shard lock in index order, rewriting
// each shard's containers independently.

// ErrUnknownBackup is returned when deleting a backup ID that was never
// registered.
var ErrUnknownBackup = errors.New("dedup: unknown backup id")

// RegisterBackup records a completed backup's chunk references for later
// retention management. The recipe is the one returned by Client.Backup.
// Backup IDs are caller-chosen and must be unique.
func (s *Store) RegisterBackup(id string, recipe *mle.Recipe) error {
	s.retMu.Lock()
	defer s.retMu.Unlock()
	if s.backups == nil {
		s.backups = make(map[string][]fphash.Fingerprint)
	}
	if _, ok := s.backups[id]; ok {
		return fmt.Errorf("dedup: backup %q already registered", id)
	}
	if s.refs == nil {
		s.refs = make(map[fphash.Fingerprint]int)
	}
	// Count each unique ciphertext chunk once per backup: retention is
	// per-backup, not per-occurrence.
	seen := make(map[fphash.Fingerprint]struct{}, len(recipe.Entries))
	fps := make([]fphash.Fingerprint, 0, len(recipe.Entries))
	for _, e := range recipe.Entries {
		if _, ok := seen[e.Fingerprint]; ok {
			continue
		}
		seen[e.Fingerprint] = struct{}{}
		fps = append(fps, e.Fingerprint)
		s.refs[e.Fingerprint]++
	}
	s.backups[id] = fps
	return nil
}

// DeleteBackup drops a backup's references. Chunks are not reclaimed until
// GC runs.
func (s *Store) DeleteBackup(id string) error {
	s.retMu.Lock()
	defer s.retMu.Unlock()
	fps, ok := s.backups[id]
	if !ok {
		return ErrUnknownBackup
	}
	delete(s.backups, id)
	for _, fp := range fps {
		if s.refs[fp] <= 1 {
			delete(s.refs, fp)
		} else {
			s.refs[fp]--
		}
	}
	return nil
}

// ResetRetention drops every registered backup and all reference counts,
// so retention can be rebuilt from an authoritative catalog — the step
// after a damaging Repair, where stale references to lost chunks would
// otherwise skew GC decisions.
func (s *Store) ResetRetention() {
	s.retMu.Lock()
	defer s.retMu.Unlock()
	s.backups = nil
	s.refs = nil
}

// Backups lists the registered backup IDs in sorted order, so the listing
// is deterministic rather than leaking map iteration order.
func (s *Store) Backups() []string {
	s.retMu.Lock()
	defer s.retMu.Unlock()
	out := make([]string, 0, len(s.backups))
	for id := range s.backups {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// GCStats reports what a garbage collection pass reclaimed.
type GCStats struct {
	// ChunksReclaimed is the number of unique chunks deleted.
	ChunksReclaimed int
	// BytesReclaimed is the physical storage freed.
	BytesReclaimed uint64
	// ContainersRewritten is the number of containers compacted to drop
	// dead chunks.
	ContainersRewritten int
}

// GC reclaims chunks that no registered backup references, compacting
// their containers shard by shard through the storage backend (a
// file-backed shard is rewritten to a fresh file and atomically renamed).
// Chunks stored before any backup was registered are treated as
// unreferenced, so callers using retention must register every backup.
// Locations of surviving chunks change; each shard's fingerprint index is
// rebuilt accordingly. GC stops the world: it holds the retention lock
// and every shard lock for the duration of the sweep.
//
// On a backend error the sweep stops: shards compacted before the failure
// keep their compacted state (each shard's rewrite is atomic — it either
// fully happened or did not), the failing shard is unchanged, and the
// partial statistics are returned alongside the error. Re-running GC
// after the fault clears completes the sweep.
func (s *Store) GC() (GCStats, error) {
	return s.GCContext(context.Background())
}

// GCContext is GC with cancellation: the sweep checks ctx between shards
// and stops with ctx.Err() alongside the partial statistics. Shards swept
// before the cancellation keep their compacted state (each shard's rewrite
// is atomic), exactly like GC's backend-error contract; re-running GC
// completes the sweep.
func (s *Store) GCContext(ctx context.Context) (GCStats, error) {
	s.retMu.Lock()
	defer s.retMu.Unlock()
	s.lockAll()
	defer s.unlockAll()

	var st GCStats
	// Determine live fingerprints.
	live := func(e container.Entry) bool {
		return s.refs[e.FP] > 0
	}

	// Compact each shard's containers, keeping live chunks in their
	// existing order. Shards are independent: a fingerprint never moves
	// between shards, so each rebuild only consults its own index.
	for i, sh := range s.shards {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		// A persistent index durably marks the layout change before the
		// rewrite: run files record pre-compaction container IDs, so a
		// crash between the container rewrite and the index rebuild must
		// force a full rescan on the next open.
		if err := sh.index.beginLayoutChange(); err != nil {
			return st, fmt.Errorf("dedup: gc shard %d: mark index: %w", i, err)
		}
		newIndex := make(map[fphash.Fingerprint]container.Location, sh.index.count())
		cst, err := sh.containers.Compact(live, func(e container.Entry, loc container.Location) {
			newIndex[e.FP] = loc
		})
		if err != nil {
			// The shard's rewrite is atomic, so a failure means the old
			// layout is intact — the index can keep serving it.
			if aerr := sh.index.abortLayoutChange(); aerr != nil {
				return st, fmt.Errorf("dedup: gc shard %d: %w (and unmark index: %v)", i, err, aerr)
			}
			return st, fmt.Errorf("dedup: gc shard %d: %w", i, err)
		}
		if err := sh.index.completeLayoutChange(newIndex, sh.containers.Sealed()); err != nil {
			return st, fmt.Errorf("dedup: gc shard %d: rebuild index: %w", i, err)
		}
		sh.physicalBytes -= cst.BytesDropped
		st.ChunksReclaimed += cst.EntriesDropped
		st.BytesReclaimed += cst.BytesDropped
		st.ContainersRewritten += cst.ContainersRewritten
	}
	return st, nil
}
