package eval

import (
	"bytes"
	"strings"
	"testing"

	"freqdedup/internal/trace"
)

// smallDatasets builds reduced datasets so the figure runners can be
// exercised quickly in unit tests (the full-scale runs live in the
// benchmark harness).
func smallDatasets() Datasets {
	fsl := trace.DefaultFSLParams()
	fsl.Users = 3
	fsl.PerUserBytes = 3 << 20
	syn := trace.DefaultSyntheticParams()
	syn.InitialBytes = 6 << 20
	syn.NewDataBytes = 64 << 10
	syn.Snapshots = 5
	vm := trace.DefaultVMParams()
	vm.Students = 5
	vm.BaseImageBytes = 2 << 20
	vm.Weeks = 6
	vm.HeavyStart, vm.HeavyEnd = 3, 4
	return Datasets{
		FSL:       trace.GenerateFSL(fsl),
		Synthetic: trace.GenerateSynthetic(syn),
		VM:        trace.GenerateVM(vm),
	}
}

var testDS = smallDatasets()

func renderAll(t *testing.T, figs []Figure) string {
	t.Helper()
	var buf bytes.Buffer
	for i := range figs {
		figs[i].Render(&buf)
	}
	return buf.String()
}

func checkFigure(t *testing.T, f Figure) {
	t.Helper()
	if f.ID == "" || f.Title == "" {
		t.Fatalf("figure missing identity: %+v", f)
	}
	if len(f.X) == 0 {
		t.Fatalf("%s: empty x-axis", f.ID)
	}
	if len(f.Series) == 0 {
		t.Fatalf("%s: no series", f.ID)
	}
	for _, s := range f.Series {
		if len(s.Y) == 0 {
			t.Fatalf("%s: series %q empty", f.ID, s.Name)
		}
		if len(s.Y) > len(f.X) {
			t.Fatalf("%s: series %q longer than x-axis", f.ID, s.Name)
		}
		for i, y := range s.Y {
			if y < 0 {
				t.Fatalf("%s: series %q has negative value at %d", f.ID, s.Name, i)
			}
			if f.Percent && y > 1 {
				t.Fatalf("%s: series %q value %v exceeds 100%%", f.ID, s.Name, y)
			}
		}
	}
}

func TestGenerateCachedAndValid(t *testing.T) {
	a := Generate()
	b := Generate()
	if a.FSL != b.FSL || a.VM != b.VM || a.Synthetic != b.Synthetic {
		t.Fatal("Generate must cache datasets")
	}
	for _, d := range []*trace.Dataset{a.FSL, a.Synthetic, a.VM} {
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFig1(t *testing.T) {
	figs := Fig1FrequencyDistribution(testDS)
	if len(figs) != 2 {
		t.Fatalf("got %d figures, want 2 (FSL, VM)", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
		// Frequencies must be non-decreasing along the CDF.
		y := f.Series[0].Y
		for i := 1; i < len(y); i++ {
			if y[i] < y[i-1] {
				t.Fatalf("%s: CDF frequencies not monotone", f.ID)
			}
		}
	}
}

func TestFig5(t *testing.T) {
	figs := Fig5VaryAux(testDS)
	if len(figs) != 3 {
		t.Fatalf("got %d figures, want 3", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
	}
	// The VM figure must not include an Advanced series.
	for _, s := range figs[2].Series {
		if s.Name == "Advanced" {
			t.Fatal("VM figure should not carry an Advanced series")
		}
	}
}

func TestFig6(t *testing.T) {
	for _, f := range Fig6VaryTarget(testDS) {
		checkFigure(t, f)
	}
}

func TestFig7(t *testing.T) {
	figs := Fig7SlidingWindow(testDS)
	for _, f := range figs {
		checkFigure(t, f)
	}
	// VM gets s=1,2,3; FSL/synthetic get s=1,2 plus advanced series.
	if len(figs[2].Series) != 3 {
		t.Fatalf("VM sliding window series = %d, want 3", len(figs[2].Series))
	}
	if len(figs[0].Series) != 4 {
		t.Fatalf("FSL sliding window series = %d, want 4", len(figs[0].Series))
	}
}

func TestFig8(t *testing.T) {
	f := Fig8KnownPlaintext(testDS)
	checkFigure(t, f)
	// More leakage must not hurt much: the last x (0.2%) should be at
	// least as large as the first (0%) for each series, within noise.
	for _, s := range f.Series {
		if s.Y[len(s.Y)-1]+0.02 < s.Y[0] {
			t.Fatalf("%s: leakage decreased inference for %q: %v", f.ID, s.Name, s.Y)
		}
	}
}

func TestFig9(t *testing.T) {
	for _, f := range Fig9KPVaryAux(testDS) {
		checkFigure(t, f)
	}
}

func TestFig10DefenseSuppresses(t *testing.T) {
	figs, err := Fig10Defense(testDS)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range figs {
		checkFigure(t, f)
		var combined, baseline *Series
		for i := range f.Series {
			switch f.Series[i].Name {
			case "Combined":
				combined = &f.Series[i]
			case "MLE (undefended)":
				baseline = &f.Series[i]
			}
		}
		if combined == nil || baseline == nil {
			t.Fatalf("%s: missing series", f.ID)
		}
		last := len(LeakageRates) - 1
		if baseline.Y[last] > 0.05 && combined.Y[last] > baseline.Y[last]/2 {
			t.Fatalf("%s: combined defense not suppressing: baseline %.3f vs combined %.3f",
				f.ID, baseline.Y[last], combined.Y[last])
		}
	}
}

func TestFig11SavingGapSmall(t *testing.T) {
	figs, err := Fig11StorageSaving(testDS)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range figs {
		checkFigure(t, f)
		mle, comb := f.Series[0], f.Series[1]
		last := len(mle.Y) - 1
		if comb.Y[last] > mle.Y[last] {
			t.Fatalf("%s: combined saving exceeds exact dedup", f.ID)
		}
	}
}

func TestFig13And14(t *testing.T) {
	f13, err := Fig13Metadata512(testDS)
	if err != nil {
		t.Fatal(err)
	}
	f14, err := Fig14Metadata4G(testDS)
	if err != nil {
		t.Fatal(err)
	}
	if len(f13) != 3 || len(f14) != 3 {
		t.Fatalf("metadata figures: got %d/%d, want 3/3", len(f13), len(f14))
	}
	for _, f := range append(f13, f14...) {
		checkFigure(t, f)
	}
	// The all-fitting cache must not access more metadata than the
	// constrained cache (loading decreases with cache size).
	total := func(figs []Figure) float64 {
		var sum float64
		for _, y := range figs[0].Series[0].Y { // MLE overall
			sum += y
		}
		return sum
	}
	if total(f14) > total(f13) {
		t.Fatalf("larger cache accessed more metadata: %f > %f", total(f14), total(f13))
	}
}

func TestFig4(t *testing.T) {
	for _, f := range Fig4ParamSweep(testDS) {
		checkFigure(t, f)
	}
}

func TestAttackScaling(t *testing.T) {
	f := AttackScaling(testDS.Synthetic)
	checkFigure(t, f)
	y := f.Series[0].Y
	if y[len(y)-1] < y[0] {
		t.Fatal("inferred pairs should not shrink with longer streams")
	}
}

func TestRenderOutput(t *testing.T) {
	out := renderAll(t, Fig1FrequencyDistribution(testDS))
	for _, want := range []string{"Fig 1 (fsl)", "Fig 1 (vm)", "CDF of chunks", "frequency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationDefenseComponents(t *testing.T) {
	fig, err := AblationDefenseComponents(testDS)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig)
	y := fig.Series[0].Y
	// Order: MLE, RCE, ScrambleOnly, MinHash, Combined. RCE must equal MLE
	// exactly; Combined must be the minimum.
	if y[0] != y[1] {
		t.Fatalf("RCE (%.4f) must leak exactly like MLE (%.4f)", y[1], y[0])
	}
	for i := 0; i < 4; i++ {
		if y[4] > y[i] {
			t.Fatalf("combined (%.4f) must be the strongest defense (vs %.4f at %d)", y[4], y[i], i)
		}
	}
}

func TestAblationSegmentSize(t *testing.T) {
	fig, err := AblationSegmentSize(testDS)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig)
}

func TestAblationTieBreaking(t *testing.T) {
	fig := AblationTieBreaking(testDS)
	checkFigure(t, fig)
}

func TestRestoreLocality(t *testing.T) {
	fig, err := RestoreLocality(testDS)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig)
	mle, comb := fig.Series[0].Y, fig.Series[1].Y
	var mleTot, combTot float64
	for i := range mle {
		mleTot += mle[i]
		combTot += comb[i]
	}
	if mleTot == 0 {
		t.Fatal("no container reads recorded")
	}
	// Section 6.2's claim: scrambling within sub-container segments adds
	// limited restore overhead.
	if combTot > 3*mleTot {
		t.Fatalf("combined restore reads %.0f vs MLE %.0f; scrambling overhead too large", combTot, mleTot)
	}
}

// TestCDFIndexSmallN pins the round-half-up percentile indexing: the old
// floor rule mapped p=0.50 of n=3 to index 0 (the minimum instead of the
// median), skewing small-dataset Figure 1 points.
func TestCDFIndexSmallN(t *testing.T) {
	cases := []struct {
		p    float64
		n    int
		want int
	}{
		{0.50, 3, 1},   // median of 3, not the minimum
		{1.0, 3, 2},    // maximum
		{0.50, 1, 0},   // degenerate n
		{0.0001, 3, 0}, // clamped low
		{0.50, 4, 1},   // round(2.0)-1
		{0.90, 10, 8},
		{0.99, 10, 9}, // round(9.9)-1
		{0.9999, 10, 9},
		{1.0, 1000000, 999999},
		{0.50, 1000000, 499999},
	}
	for _, c := range cases {
		if got := cdfIndex(c.p, c.n); got != c.want {
			t.Errorf("cdfIndex(%v, %d) = %d, want %d", c.p, c.n, got, c.want)
		}
	}
}

// TestSingleDatasetFigures checks the repository-replay path: a bundle
// with one dataset in every slot yields each figure exactly once.
func TestSingleDatasetFigures(t *testing.T) {
	ds := SingleDataset(testDS.Synthetic)
	if got := len(ds.list()); got != 1 {
		t.Fatalf("SingleDataset list has %d datasets, want 1", got)
	}
	if figs := Fig1FrequencyDistribution(ds); len(figs) != 1 {
		t.Fatalf("Fig1 produced %d figures for a single dataset, want 1", len(figs))
	}
	if figs := Fig5VaryAux(ds); len(figs) != 1 {
		t.Fatalf("Fig5 produced %d figures for a single dataset, want 1", len(figs))
	}
	for _, f := range Fig7SlidingWindow(ds) {
		checkFigure(t, f)
	}
	if figs := Fig7SlidingWindow(ds); len(figs) != 1 {
		t.Fatalf("Fig7 produced %d figures for a single dataset, want 1", len(figs))
	}
}
