package workload

import (
	"bytes"
	"testing"
	"testing/quick"

	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

// encode serializes a dataset through the trace codec, so byte equality
// below means the datasets are identical all the way through a Write/Read
// round trip — labels, order, fingerprints, and sizes.
func encode(t *testing.T, d *trace.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func multiset(d *trace.Dataset) map[fphash.Fingerprint]int {
	m := map[fphash.Fingerprint]int{}
	for _, b := range d.Backups {
		for _, c := range b.Chunks {
			m[c.FP]++
		}
	}
	return m
}

// TestSeedDeterminism pins the package's reproducibility contract for
// every registered workload, quick-check style over random seeds: the
// same seed generates a byte-identical dataset (verified through a full
// trace.Write/trace.Read round trip), and distinct seeds generate
// distinct fingerprint multisets.
func TestSeedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range List() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prop := func(rawSeed int16) bool {
				seed := int64(rawSeed)
				cfg := Config{Seed: seed, Backups: 3, TotalBytes: 1 << 20}
				a, err := Generate(name, cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				b, err := Generate(name, cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				encA, encB := encode(t, a), encode(t, b)
				if !bytes.Equal(encA, encB) {
					t.Errorf("seed %d: two generations differ", seed)
					return false
				}
				// The round trip itself must be lossless.
				back, err := trace.Read(bytes.NewReader(encA))
				if err != nil {
					t.Fatalf("seed %d: re-read: %v", seed, err)
				}
				if !bytes.Equal(encode(t, back), encA) {
					t.Errorf("seed %d: Write/Read round trip not lossless", seed)
					return false
				}
				// A different seed must not reproduce the fingerprint
				// multiset.
				cfg2 := cfg
				cfg2.Seed = seed + 1
				c, err := Generate(name, cfg2)
				if err != nil {
					t.Fatalf("seed %d: %v", seed+1, err)
				}
				ma, mc := multiset(a), multiset(c)
				if len(ma) == len(mc) {
					same := true
					for fp, n := range ma {
						if mc[fp] != n {
							same = false
							break
						}
					}
					if same {
						t.Errorf("seeds %d and %d generated identical fingerprint multisets", seed, seed+1)
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInjectedRngDeterminism checks the Rng injection path: an injected
// source takes precedence over the seed and is consumed by generation, so
// two generators fed sources with the same seed agree with each other and
// with the plain-Seed path.
func TestInjectedRngDeterminism(t *testing.T) {
	cfg := Config{Seed: 99, Backups: 3, TotalBytes: 1 << 20}
	plain, err := Generate("fileserver", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgRng := cfg
	cfgRng.Seed = 0
	cfgRng.Rng = cfg.rng() // fresh stream seeded 99
	injected, err := Generate("fileserver", cfgRng)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, plain), encode(t, injected)) {
		t.Fatal("injected Rng with the same seed diverged from the Seed path")
	}
}
