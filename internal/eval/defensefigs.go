package eval

import (
	"fmt"

	"freqdedup/internal/attack"
	"freqdedup/internal/defense"
	"freqdedup/internal/trace"
)

// defenseAttack runs the advanced locality-based attack (plain locality
// for fixed-size VM chunks) in known-plaintext mode against a backup
// encrypted under the given defense scheme.
func defenseAttack(aux, target *trace.Backup, scheme defense.Scheme, leakRate float64, sizeAware bool) (float64, error) {
	enc, err := defense.Encrypt(target, scheme, 7)
	if err != nil {
		return 0, err
	}
	leaked := attack.SampleLeaked(enc.Backup, enc.Truth, leakRate, int64(leakRate*1e6)+23)
	cfg := kpConfig(leaked)
	cfg.SizeAware = sizeAware
	return runAttackOn(attackLocality, aux, enc, cfg), nil
}

// Fig10Defense reproduces Figure 10: inference rate of the advanced
// locality-based attack in known-plaintext mode against MinHash-only and
// the combined MinHash+scrambling scheme, for varying leakage rates.
func Fig10Defense(ds Datasets) ([]Figure, error) {
	var out []Figure
	for _, s := range fig8Setups(ds) {
		fig := Figure{
			ID:      "Fig 10 (" + s.name + ")",
			Title:   "defense effectiveness: inference rate vs leakage rate (known-plaintext, advanced attack)",
			XLabel:  "leakage rate",
			Percent: true,
		}
		for _, r := range LeakageRates {
			fig.X = append(fig.X, fmt.Sprintf("%.2f%%", r*100))
		}
		for _, schemeCase := range []struct {
			name   string
			scheme defense.Scheme
		}{
			{"MinHash only", defense.SchemeMinHash},
			{"Combined", defense.SchemeCombined},
		} {
			ser := Series{Name: schemeCase.name}
			for _, r := range LeakageRates {
				rate, err := defenseAttack(s.aux, s.target, schemeCase.scheme, r, s.adv)
				if err != nil {
					return nil, err
				}
				ser.Y = append(ser.Y, rate)
			}
			fig.Series = append(fig.Series, ser)
		}
		// Baseline for comparison: undefended MLE under the same attack.
		base := Series{Name: "MLE (undefended)"}
		for _, r := range LeakageRates {
			leaked := leakFor(s.target, r)
			cfg := kpConfig(leaked)
			kind := attackLocality
			if s.adv {
				kind = attackAdvanced
			}
			base.Y = append(base.Y, runAttack(kind, s.aux, s.target, cfg))
		}
		fig.Series = append(fig.Series, base)
		out = append(out, fig)
	}
	return out, nil
}

// Fig11StorageSaving reproduces Figure 11: cumulative storage saving after
// each backup under exact-dedup MLE and under the combined scheme.
func Fig11StorageSaving(ds Datasets) ([]Figure, error) {
	var out []Figure
	for _, d := range ds.list() {
		mle, err := defense.StorageSavings(d, defense.SchemeMLE, 1)
		if err != nil {
			return nil, err
		}
		comb, err := defense.StorageSavings(d, defense.SchemeCombined, 1)
		if err != nil {
			return nil, err
		}
		fig := Figure{
			ID:      "Fig 11 (" + d.Name + ")",
			Title:   "cumulative storage saving per backup",
			XLabel:  "backup",
			Percent: true,
			Series:  []Series{{Name: "MLE", Y: mle}, {Name: "Combined", Y: comb}},
		}
		for _, b := range d.Backups {
			fig.X = append(fig.X, b.Label)
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf("final gap: %.2f percentage points",
			(mle[len(mle)-1]-comb[len(comb)-1])*100))
		out = append(out, fig)
	}
	return out, nil
}
