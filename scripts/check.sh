#!/bin/sh
# Full development gate: formatting, vet, build, race tests, bench smoke.
# Equivalent to `make check` for environments without make, and the exact
# command CI runs (.github/workflows/ci.yml).
#
# Each stage fails fast with a distinct exit message, so a red CI run
# names its stage in the last line. GOFLAGS is honored untouched: export
# e.g. GOFLAGS=-count=1 to defeat test caching. Set CHECK_SKIP_BENCH=1 to
# skip the bench smoke stage (CI runs it as a separate non-blocking job),
# CHECK_SKIP_BENCHGATE=1 to skip the stable-tier performance-regression
# gate (cmd/benchgate; CI runs it as its own blocking job),
# CHECK_SKIP_SCENARIOS=1 to skip the workload scenario-matrix smoke,
# CHECK_SKIP_SERVER=1 to skip the multi-tenant server smoke (loopback
# clients through the wire protocol via ddfsbench -server),
# CHECK_SKIP_FAULTS=1 to skip the exhaustive crash-point sweep (the
# bounded sweep still runs inside go test -race),
# CHECK_SKIP_STATICCHECK=1 to skip static analysis, and CHECK_SKIP_VULN=1
# to skip the vulnerability scan; a missing staticcheck or govulncheck
# binary downgrades its stage to a notice rather than failing machines
# that never installed it (CI installs both on the stable leg).
set -u

cd "$(dirname "$0")/.."

fail() {
	echo "check: FAILED at stage: $1" >&2
	exit 1
}

echo "== gofmt"
diff="$(gofmt -d .)" || fail "gofmt (command failed)"
if [ -n "$diff" ]; then
	echo "$diff"
	fail "gofmt (apply the diff above with: gofmt -w .)"
fi

echo "== go vet"
go vet ./... || fail "go vet"

if [ "${CHECK_SKIP_STATICCHECK:-0}" != "1" ]; then
	if command -v staticcheck >/dev/null 2>&1; then
		echo "== staticcheck"
		staticcheck ./... || fail "staticcheck"
	else
		echo "== staticcheck (skipped: binary not installed; go install honnef.co/go/tools/cmd/staticcheck@latest)"
	fi
fi

if [ "${CHECK_SKIP_VULN:-0}" != "1" ]; then
	if command -v govulncheck >/dev/null 2>&1; then
		echo "== govulncheck"
		govulncheck ./... || fail "govulncheck"
	else
		echo "== govulncheck (skipped: binary not installed; go install golang.org/x/vuln/cmd/govulncheck@latest)"
	fi
fi

echo "== go build"
go build ./... || fail "go build"

echo "== go test -race"
go test -race ./... || fail "go test -race"

if [ "${CHECK_SKIP_FAULTS:-0}" != "1" ]; then
	echo "== crash-point sweep (exhaustive, -race)"
	FAULTS_FULL=1 go test -race -run 'TestCrashSweep' . || fail "crash-point sweep"
fi

if [ "${CHECK_SKIP_BENCH:-0}" != "1" ]; then
	echo "== bench smoke (-benchtime=1x)"
	scripts/bench.sh --smoke || fail "bench smoke"
fi

if [ "${CHECK_SKIP_BENCHGATE:-0}" != "1" ]; then
	echo "== bench gate (stable tier vs committed BENCH_*.json baselines)"
	go run ./cmd/benchgate || fail "bench gate (stable-tier throughput regression)"
fi

if [ "${CHECK_SKIP_SCENARIOS:-0}" != "1" ]; then
	echo "== scenario matrix smoke (tiny scale, every registered workload)"
	go run ./cmd/defend -fig scenarios -tiny || fail "scenario matrix smoke"
fi

if [ "${CHECK_SKIP_SERVER:-0}" != "1" ]; then
	echo "== server smoke (2 loopback tenants through the wire protocol)"
	go run ./cmd/ddfsbench -server -clients 2 -mb 2 || fail "server smoke"
fi

echo "check: OK"
