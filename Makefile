# Development gate for the freqdedup reproduction. `make check` is what CI
# (and every PR) must keep green.

GO ?= go

.PHONY: check fmt vet staticcheck build test race faults bench bench-smoke bench-gate

check: fmt vet staticcheck build race faults bench-smoke bench-gate

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static analysis; degrades to a notice on machines without the binary
# (go install honnef.co/go/tools/cmd/staticcheck@latest).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Exhaustive crash-point sweep under the race detector: crash the
# scripted backup/delete/GC/backup scenario at EVERY mutating filesystem
# operation and check the full recovery invariant set after each. The
# bounded version of the same sweep runs in every plain `go test`; this
# target (and scripts/check.sh, and CI) runs it unbounded.
faults:
	FAULTS_FULL=1 $(GO) test -race -run 'TestCrashSweep' .

# Full baseline run: writes BENCH_<date>.json (see scripts/bench.sh).
bench:
	scripts/bench.sh

# One iteration of every tracked benchmark so `make check` catches
# benchmark rot; the pattern lives in scripts/bench.sh.
bench-smoke:
	scripts/bench.sh --smoke

# Stable-tier performance-regression gate: three pinned iterations of the
# chunker/backup/restore/store benchmarks compared against the newest
# committed BENCH_*.json (>20% MB/s loss fails; see cmd/benchgate).
bench-gate:
	$(GO) run ./cmd/benchgate
