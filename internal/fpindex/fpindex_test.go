package fpindex

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"freqdedup/internal/container"
	"freqdedup/internal/fphash"
	"freqdedup/internal/vfs"
)

// testOptions keeps memtables tiny so flushes and compactions happen in
// small tests, and compaction synchronous so tests are deterministic.
func testOptions(shards int) Options {
	return Options{
		Shards:          shards,
		MemtableEntries: 16,
		CacheBytes:      1 << 20,
		ExpectedChunks:  1 << 12,
		SyncCompaction:  true,
		Fanout:          3,
	}
}

func testPosting(i int) (fphash.Fingerprint, container.Location) {
	return fphash.FromUint64(uint64(i)*2654435761 + 1), container.Location{Container: i / 8, Index: i % 8}
}

func TestInsertLookup(t *testing.T) {
	ix, err := Open(vfs.OS, t.TempDir(), testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	s := ix.Shard(0)
	for i := 0; i < 100; i++ {
		fp, loc := testPosting(i)
		s.Insert(fp, loc)
	}
	for i := 0; i < 100; i++ {
		fp, want := testPosting(i)
		loc, ok, err := s.Lookup(fp)
		if err != nil || !ok || loc != want {
			t.Fatalf("Lookup(%d) = %v %v %v, want %v", i, loc, ok, err, want)
		}
	}
	if _, ok, _ := s.Lookup(fphash.FromUint64(0xdeadbeef)); ok {
		t.Fatal("found fingerprint that was never inserted")
	}
	if got := ix.Counters().MemtableHits; got != 100 {
		t.Fatalf("MemtableHits = %d, want 100", got)
	}
}

func TestFlushAndReopen(t *testing.T) {
	dir := t.TempDir()
	ix, err := Open(vfs.OS, dir, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	s := ix.Shard(0)
	const n = 200 // containers 0..24
	for i := 0; i < n; i++ {
		fp, loc := testPosting(i)
		s.Insert(fp, loc)
	}
	// Flush with 20 sealed containers: postings in containers >= 20 stay
	// in the memtable.
	if err := s.Flush(20); err != nil {
		t.Fatal(err)
	}
	if got := s.MemLen(); got != n-20*8 {
		t.Fatalf("MemLen after flush = %d, want %d", got, n-20*8)
	}
	if s.RunCount() == 0 {
		t.Fatal("flush created no run")
	}
	if got := s.Count(); got != n {
		t.Fatalf("Count = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		fp, want := testPosting(i)
		loc, ok, err := s.Lookup(fp)
		if err != nil || !ok || loc != want {
			t.Fatalf("post-flush Lookup(%d) = %v %v %v, want %v", i, loc, ok, err, want)
		}
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: runs cover containers < 20, watermark says rescan from 20.
	ix2, err := Open(vfs.OS, dir, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	s2 := ix2.Shard(0)
	if got := s2.Watermark(); got != 20 {
		t.Fatalf("Watermark after reopen = %d, want 20", got)
	}
	// Simulate the caller's container rescan for the tail.
	for i := 20 * 8; i < n; i++ {
		fp, loc := testPosting(i)
		s2.Insert(fp, loc)
	}
	for i := 0; i < n; i++ {
		fp, want := testPosting(i)
		loc, ok, err := s2.Lookup(fp)
		if err != nil || !ok || loc != want {
			t.Fatalf("reopened Lookup(%d) = %v %v %v, want %v", i, loc, ok, err, want)
		}
	}
	c := ix2.Counters()
	if c.DiskProbes == 0 {
		t.Fatal("expected disk probes after reopen")
	}
}

func TestBloomNegativeSkipsDisk(t *testing.T) {
	ix, err := Open(vfs.OS, t.TempDir(), testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	s := ix.Shard(0)
	for i := 0; i < 100; i++ {
		fp, loc := testPosting(i)
		s.Insert(fp, loc)
	}
	if err := s.Flush(100); err != nil {
		t.Fatal(err)
	}
	miss := 0
	for i := 0; i < 1000; i++ {
		if _, ok, _ := s.Lookup(fphash.FromUint64(uint64(i) + 1e12)); !ok {
			miss++
		}
	}
	c := ix.Counters()
	if c.BloomNegative < 900 {
		t.Fatalf("BloomNegative = %d for %d misses, filter not fronting lookups", c.BloomNegative, miss)
	}
}

func TestCompactionMergesRuns(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(1)
	ix, err := Open(vfs.OS, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := ix.Shard(0)
	// Ten flush cycles of 64 postings: with fanout 3 and sync compaction,
	// runs must collapse well below ten.
	const batch = 64
	for round := 0; round < 10; round++ {
		for i := round * batch; i < (round+1)*batch; i++ {
			fp, loc := testPosting(i)
			s.Insert(fp, loc)
		}
		if err := s.Flush((round + 1) * batch / 8); err != nil {
			t.Fatal(err)
		}
	}
	if rc := s.RunCount(); rc >= 10 || rc == 0 {
		t.Fatalf("RunCount = %d after 10 flushes with fanout 3, compaction not running", rc)
	}
	if err := errors.Join(checkAll(s, 10*batch), ix.Close()); err != nil {
		t.Fatal(err)
	}
	// Reopen and re-verify through the compacted runs.
	ix2, err := Open(vfs.OS, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if err := checkAll(ix2.Shard(0), 10*batch); err != nil {
		t.Fatal(err)
	}
}

func checkAll(s *Shard, n int) error {
	if got := s.Count(); got != n {
		return fmt.Errorf("Count = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		fp, want := testPosting(i)
		loc, ok, err := s.Lookup(fp)
		if err != nil || !ok || loc != want {
			return fmt.Errorf("Lookup(%d) = %v %v %v, want %v", i, loc, ok, err, want)
		}
	}
	return nil
}

func TestCorruptRunForcesRescan(t *testing.T) {
	dir := t.TempDir()
	ix, err := Open(vfs.OS, dir, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	s := ix.Shard(0)
	for i := 0; i < 100; i++ {
		fp, loc := testPosting(i)
		s.Insert(fp, loc)
	}
	if err := s.Flush(13); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	runs, err := filepath.Glob(filepath.Join(dir, "run-0000-*.fdi"))
	if err != nil || len(runs) == 0 {
		t.Fatalf("no run files: %v %v", runs, err)
	}
	data, err := os.ReadFile(runs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[runHeaderLen+3] ^= 0x40 // flip a bit inside the first block
	if err := os.WriteFile(runs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Block corruption is only seen when the block is read: the lookup
	// reports an error, never a wrong location.
	ix2, err := Open(vfs.OS, dir, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := testPosting(0)
	if _, ok, err := ix2.Shard(0).Lookup(fp); ok && err == nil {
		// A hit is only acceptable if the flipped bit missed this
		// posting's block path entirely — but we flipped block 0, which
		// holds every posting here.
		t.Fatal("lookup trusted a corrupt block")
	}
	ix2.Close()

	// Corrupting the footer is caught at open: the shard resets to a
	// full rescan and removes the bad file.
	data[len(data)-10] ^= 0x40
	if err := os.WriteFile(runs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	ix3, err := Open(vfs.OS, dir, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	defer ix3.Close()
	if got := ix3.Shard(0).Watermark(); got != 0 {
		t.Fatalf("Watermark after corrupt run = %d, want 0 (full rescan)", got)
	}
	if _, err := os.Stat(runs[0]); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt run file not removed: %v", err)
	}
}

func TestMarkerForcesRescan(t *testing.T) {
	dir := t.TempDir()
	ix, err := Open(vfs.OS, dir, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	s := ix.Shard(0)
	for i := 0; i < 64; i++ {
		fp, loc := testPosting(i)
		s.Insert(fp, loc)
	}
	if err := s.Flush(8); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginLayoutChange(); err != nil {
		t.Fatal(err)
	}
	// Crash before CompleteLayoutChange: reopen must distrust the runs.
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(vfs.OS, dir, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	s2 := ix2.Shard(0)
	if got := s2.Watermark(); got != 0 {
		t.Fatalf("Watermark with marker = %d, want 0", got)
	}
	if got := s2.RunCount(); got != 0 {
		t.Fatalf("RunCount with marker = %d, want 0", got)
	}
	if hasMarker(vfs.OS, dir, 0) {
		t.Fatal("marker not cleared after rescan open")
	}
}

func TestLayoutChangeRewritesPostings(t *testing.T) {
	dir := t.TempDir()
	ix, err := Open(vfs.OS, dir, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	s := ix.Shard(0)
	for i := 0; i < 100; i++ {
		fp, loc := testPosting(i)
		s.Insert(fp, loc)
	}
	if err := s.Flush(12); err != nil {
		t.Fatal(err)
	}
	// GC-style renumbering: survivors move to fresh dense locations.
	var survivors []Posting
	for i := 0; i < 100; i += 2 {
		fp, _ := testPosting(i)
		survivors = append(survivors, Posting{FP: fp, Loc: container.Location{Container: i / 16, Index: i % 16 / 2}})
	}
	if err := s.BeginLayoutChange(); err != nil {
		t.Fatal(err)
	}
	if err := s.CompleteLayoutChange(survivors, 5); err != nil {
		t.Fatal(err)
	}
	check := func(s *Shard) {
		t.Helper()
		if got := s.Count(); got != len(survivors) {
			t.Fatalf("Count = %d, want %d", got, len(survivors))
		}
		for _, p := range survivors {
			loc, ok, err := s.Lookup(p.FP)
			if err != nil || !ok || loc != p.Loc {
				t.Fatalf("Lookup(%v) = %v %v %v, want %v", p.FP, loc, ok, err, p.Loc)
			}
		}
		fp, _ := testPosting(1)
		if _, ok, _ := s.Lookup(fp); ok {
			t.Fatal("dropped posting still found after layout change")
		}
	}
	check(s)
	if hasMarker(vfs.OS, dir, 0) {
		t.Fatal("marker survived CompleteLayoutChange")
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(vfs.OS, dir, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	s2 := ix2.Shard(0)
	if got := s2.Watermark(); got != 5 {
		t.Fatalf("Watermark after layout change = %d, want 5", got)
	}
	// Rescan the open-container tail (containers >= 5).
	for _, p := range survivors {
		if p.Loc.Container >= 5 {
			s2.Insert(p.FP, p.Loc)
		}
	}
	check(s2)
}

func TestShardsIndependent(t *testing.T) {
	dir := t.TempDir()
	ix, err := Open(vfs.OS, dir, testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for i := 0; i < 400; i++ {
		fp, loc := testPosting(i)
		ix.Shard(fp.Shard(4)).Insert(fp, loc)
	}
	for sh := 0; sh < 4; sh++ {
		if err := ix.Shard(sh).Flush(30); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 400; i++ {
		fp, want := testPosting(i)
		loc, ok, err := ix.Shard(fp.Shard(4)).Lookup(fp)
		if err != nil || !ok || loc != want {
			t.Fatalf("Lookup(%d) = %v %v %v, want %v", i, loc, ok, err, want)
		}
	}
	total := 0
	for sh := 0; sh < 4; sh++ {
		total += ix.Shard(sh).Count()
	}
	if total != 400 {
		t.Fatalf("total Count = %d, want 400", total)
	}
}

func TestMultiBlockRun(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(1)
	opts.CacheBytes = 1 // effectively no cache: every probe hits disk
	ix, err := Open(vfs.OS, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	s := ix.Shard(0)
	const n = 3*blockEntries + 17 // four blocks, last one partial
	for i := 0; i < n; i++ {
		fp, loc := testPosting(i)
		s.Insert(fp, loc)
	}
	if err := s.Flush(n); err != nil {
		t.Fatal(err)
	}
	if got := s.MemLen(); got != 0 {
		t.Fatalf("MemLen = %d after full flush", got)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		i := rng.Intn(n)
		fp, want := testPosting(i)
		loc, ok, err := s.Lookup(fp)
		if err != nil || !ok || loc != want {
			t.Fatalf("Lookup(%d) = %v %v %v, want %v", i, loc, ok, err, want)
		}
	}
	if c := ix.Counters(); c.DiskProbes == 0 {
		t.Fatal("expected disk probes with no cache")
	}
}

func TestFlushWatermarkOnlyAdvance(t *testing.T) {
	dir := t.TempDir()
	ix, err := Open(vfs.OS, dir, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	s := ix.Shard(0)
	// No postings at all, but 7 sealed (empty/fully-deduplicated)
	// containers: flush must still advance the committed watermark.
	if err := s.Flush(7); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(vfs.OS, dir, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if got := ix2.Shard(0).Watermark(); got != 7 {
		t.Fatalf("Watermark = %d, want 7", got)
	}
	if err := ix2.Shard(0).Flush(3); err == nil {
		t.Fatal("flush accepted a watermark moving backwards")
	}
}
