package keymgr

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
)

// Client talks to a key manager server and implements mle.KeyDeriver, so it
// plugs directly into server-aided MLE and MinHash encryption. It is safe
// for concurrent use; requests are serialized over one connection.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	closed bool

	// RetryRateLimit, when positive, makes DeriveKey sleep this long and
	// retry (once per interval) when the server answers "rate limited",
	// mimicking a client that waits out the DupLESS rate limiter. When
	// zero, DeriveKey returns ErrRateLimited immediately.
	RetryRateLimit time.Duration
	// MaxRetries bounds rate-limit retries (0 = no retries).
	MaxRetries int
}

var _ mle.KeyDeriver = (*Client)(nil)

// Dial connects and authenticates to the key manager at addr.
func Dial(addr string, token [TokenSize]byte) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("keymgr: dial: %w", err)
	}
	if _, err := conn.Write(token[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("keymgr: send token: %w", err)
	}
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("keymgr: read auth status: %w", err)
	}
	if status[0] != statusOK {
		conn.Close()
		return nil, ErrAuthFailed
	}
	return &Client{conn: conn}, nil
}

// DeriveKey implements mle.KeyDeriver by querying the key manager.
func (c *Client) DeriveKey(fp fphash.Fingerprint) (mle.Key, error) {
	for attempt := 0; ; attempt++ {
		key, err := c.deriveOnce(fp)
		if err == ErrRateLimited && c.RetryRateLimit > 0 && attempt < c.MaxRetries {
			time.Sleep(c.RetryRateLimit)
			continue
		}
		return key, err
	}
}

func (c *Client) deriveOnce(fp fphash.Fingerprint) (mle.Key, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return mle.Key{}, ErrClosed
	}
	if _, err := c.conn.Write(fp[:]); err != nil {
		return mle.Key{}, fmt.Errorf("keymgr: send request: %w", err)
	}
	var status [1]byte
	if _, err := io.ReadFull(c.conn, status[:]); err != nil {
		return mle.Key{}, fmt.Errorf("keymgr: read status: %w", err)
	}
	switch status[0] {
	case statusOK:
		var key mle.Key
		if _, err := io.ReadFull(c.conn, key[:]); err != nil {
			return mle.Key{}, fmt.Errorf("keymgr: read key: %w", err)
		}
		return key, nil
	case statusRateLimited:
		return mle.Key{}, ErrRateLimited
	default:
		return mle.Key{}, fmt.Errorf("keymgr: unexpected status %#x", status[0])
	}
}

// Close closes the connection. Subsequent DeriveKey calls fail with
// ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}
