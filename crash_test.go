package freqdedup

import (
	"os"
	"reflect"
	"testing"
	"time"
)

// TestCrashSweepSyncPoints is the CI-bounded crash-point sweep: the
// scripted scenario (backups with dedup overlap → delete → GC/compaction
// → tapped backup) is crashed at every acknowledged-sync boundary, the
// durable image reopened, and the full invariant set checked. Run under
// -race this is also the recovery path's concurrency proof.
func TestCrashSweepSyncPoints(t *testing.T) {
	maxPoints := 24
	if testing.Short() {
		maxPoints = 8
	}
	res, err := ExploreCrashPoints(CrashSweepOptions{
		Scenario:       CrashScenario{Seed: 1},
		SyncPointsOnly: true,
		MaxPoints:      maxPoints,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.TotalOps == 0 || len(res.SyncPoints) == 0 || len(res.PointsTested) == 0 {
		t.Fatalf("sweep explored nothing: %+v", res)
	}
	for _, f := range res.Failures {
		t.Errorf("crash at op %d/%d: %v", f.Op, res.TotalOps, f.Err)
	}
	t.Logf("swept %d sync-point crashes across %d mutating ops", len(res.PointsTested), res.TotalOps)
}

// TestCrashSweepGroupCommit reruns the sync-point sweep with the batched
// durability paths enabled: group-commit straggler window on the catalog
// and trace log, gear chunking, and multi-stream chunk workers. The
// invariant set is unchanged — in particular invariant 2 ("the snapshot
// list equals exactly the acknowledged state") asserts at every crash
// point that no Backup was acknowledged before the group-committed fsync
// covering its records returned.
func TestCrashSweepGroupCommit(t *testing.T) {
	maxPoints := 24
	if testing.Short() {
		maxPoints = 8
	}
	res, err := ExploreCrashPoints(CrashSweepOptions{
		Scenario: CrashScenario{
			Seed:              3,
			GroupCommitWindow: 2 * time.Millisecond,
			GearChunking:      true,
			ChunkWorkers:      2,
		},
		SyncPointsOnly: true,
		MaxPoints:      maxPoints,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.TotalOps == 0 || len(res.SyncPoints) == 0 || len(res.PointsTested) == 0 {
		t.Fatalf("sweep explored nothing: %+v", res)
	}
	for _, f := range res.Failures {
		t.Errorf("crash at op %d/%d: %v", f.Op, res.TotalOps, f.Err)
	}
	t.Logf("swept %d group-commit sync-point crashes across %d mutating ops", len(res.PointsTested), res.TotalOps)
}

// TestCrashSweepPersistentIndex reruns the sync-point sweep with the
// bloom-fronted on-disk fingerprint index and a tiny memtable, so crash
// points land inside run flushes, compactions, and the GC layout-change
// marker protocol. The invariant set is unchanged: whatever the index
// files say after a crash, every acknowledged snapshot must list,
// restore byte-identically, and survive a GC — the containers are the
// index's write-ahead log, so no index state is ever load-bearing for
// durability.
func TestCrashSweepPersistentIndex(t *testing.T) {
	maxPoints := 24
	if testing.Short() {
		maxPoints = 8
	}
	res, err := ExploreCrashPoints(CrashSweepOptions{
		Scenario: CrashScenario{
			Seed:            5,
			PersistentIndex: true,
		},
		SyncPointsOnly: true,
		MaxPoints:      maxPoints,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.TotalOps == 0 || len(res.SyncPoints) == 0 || len(res.PointsTested) == 0 {
		t.Fatalf("sweep explored nothing: %+v", res)
	}
	for _, f := range res.Failures {
		t.Errorf("crash at op %d/%d: %v", f.Op, res.TotalOps, f.Err)
	}
	t.Logf("swept %d persistent-index sync-point crashes across %d mutating ops", len(res.PointsTested), res.TotalOps)
}

// TestCrashSweepFull explores EVERY mutating operation as a crash point —
// minutes of work, so it only runs when FAULTS_FULL is set (`make
// faults`).
func TestCrashSweepFull(t *testing.T) {
	if os.Getenv("FAULTS_FULL") == "" {
		t.Skip("set FAULTS_FULL=1 (or run `make faults`) for the exhaustive crash sweep")
	}
	res, err := ExploreCrashPoints(CrashSweepOptions{
		Scenario: CrashScenario{Seed: 1},
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, f := range res.Failures {
		t.Errorf("crash at op %d/%d: %v", f.Op, res.TotalOps, f.Err)
	}
	t.Logf("swept all %d mutating ops (%d sync points)", res.TotalOps, len(res.SyncPoints))
}

// TestCrashSweepFullGroupCommit is the exhaustive sweep with group commit
// (plus gear multi-stream chunking) enabled — every mutating op is a crash
// point on the batched durability paths. Gated like TestCrashSweepFull.
func TestCrashSweepFullGroupCommit(t *testing.T) {
	if os.Getenv("FAULTS_FULL") == "" {
		t.Skip("set FAULTS_FULL=1 (or run `make faults`) for the exhaustive crash sweep")
	}
	res, err := ExploreCrashPoints(CrashSweepOptions{
		Scenario: CrashScenario{
			Seed:              3,
			GroupCommitWindow: time.Millisecond,
			GearChunking:      true,
			ChunkWorkers:      2,
		},
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, f := range res.Failures {
		t.Errorf("crash at op %d/%d: %v", f.Op, res.TotalOps, f.Err)
	}
	t.Logf("swept all %d mutating ops with group commit (%d sync points)", res.TotalOps, len(res.SyncPoints))
}

// TestCrashSweepFullPersistentIndex is the exhaustive sweep on the
// persistent fingerprint index: every mutating op — including the fsyncs
// inside run seals, manifest commits, compaction installs, and the GC
// rebuild-marker protocol — is a crash point. Gated like
// TestCrashSweepFull.
func TestCrashSweepFullPersistentIndex(t *testing.T) {
	if os.Getenv("FAULTS_FULL") == "" {
		t.Skip("set FAULTS_FULL=1 (or run `make faults`) for the exhaustive crash sweep")
	}
	res, err := ExploreCrashPoints(CrashSweepOptions{
		Scenario: CrashScenario{
			Seed:            5,
			PersistentIndex: true,
		},
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, f := range res.Failures {
		t.Errorf("crash at op %d/%d: %v", f.Op, res.TotalOps, f.Err)
	}
	t.Logf("swept all %d mutating ops on the persistent index (%d sync points)", res.TotalOps, len(res.SyncPoints))
}

// TestCrashSweepDeterministic: the same scenario seed maps to the same
// op count and sync points — the property the whole sweep's
// reproducibility rests on.
func TestCrashSweepDeterministic(t *testing.T) {
	probe := func() (int64, []int64) {
		res, err := ExploreCrashPoints(CrashSweepOptions{
			Scenario:       CrashScenario{Seed: 7},
			SyncPointsOnly: true,
			MaxPoints:      1,
		})
		if err != nil {
			t.Fatalf("sweep: %v", err)
		}
		return res.TotalOps, res.SyncPoints
	}
	ops1, sp1 := probe()
	ops2, sp2 := probe()
	if ops1 != ops2 || !reflect.DeepEqual(sp1, sp2) {
		t.Fatalf("scenario not deterministic: ops %d vs %d, sync points %v vs %v", ops1, ops2, sp1, sp2)
	}
}
