package container

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func newFileStore(t *testing.T, capacity, shards int) (*FileBackend, string) {
	t.Helper()
	dir := t.TempDir()
	b, err := CreateFileBackend(dir, shards, capacity)
	if err != nil {
		t.Fatalf("CreateFileBackend: %v", err)
	}
	t.Cleanup(func() { b.Close() })
	return b, dir
}

func TestFileBackendSealLoadRoundTrip(t *testing.T) {
	b, _ := newFileStore(t, 100, 2)
	s, err := NewWithBackend(100, b, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var locs []Location
	for i := uint64(0); i < 9; i++ {
		locs = append(locs, mustAppend(t, s, dataEntry(i, 40)))
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, loc := range locs {
		e, err := s.Get(loc)
		if err != nil {
			t.Fatalf("Get(%+v): %v", loc, err)
		}
		want := dataEntry(uint64(i), 40)
		if e.FP != want.FP || !bytes.Equal(e.Data, want.Data) {
			t.Fatalf("entry %d corrupted on round trip", i)
		}
	}
	// The other shard is untouched.
	if _, err := b.Load(0, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load on empty shard: %v, want ErrNotFound", err)
	}
}

func TestFileBackendReopen(t *testing.T) {
	b, dir := newFileStore(t, 100, 4)
	s, err := NewWithBackend(100, b, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 9; i++ {
		mustAppend(t, s, dataEntry(i, 40))
	}
	sealed := s.sealed
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	rb, err := OpenFileBackend(dir)
	if err != nil {
		t.Fatalf("OpenFileBackend: %v", err)
	}
	defer rb.Close()
	if rb.Shards() != 4 || rb.ContainerBytes() != 100 {
		t.Fatalf("reopened backend: %d shards, capacity %d", rb.Shards(), rb.ContainerBytes())
	}
	rs, err := NewWithBackend(rb.ContainerBytes(), rb, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.sealed != sealed+1 || rs.Count() != sealed+1 {
		t.Fatalf("reopened store sees %d containers, want %d", rs.Count(), sealed+1)
	}
	// Metadata-only scan: fingerprints and sizes, no data.
	n := 0
	err = rb.Scan(2, false, func(c *Container) error {
		for _, e := range c.Entries {
			if e.Size != 40 || e.Data != nil {
				t.Fatalf("meta scan entry = %+v", e)
			}
			n++
		}
		return nil
	})
	if err != nil || n != 9 {
		t.Fatalf("meta scan: %d entries, err %v", n, err)
	}
	// New appends continue the ID sequence.
	loc, err := rs.Append(dataEntry(100, 40))
	if err != nil {
		t.Fatal(err)
	}
	if loc.Container != sealed+1 {
		t.Fatalf("post-reopen append went to container %d, want %d", loc.Container, sealed+1)
	}
}

func TestFileBackendTornTailRecovered(t *testing.T) {
	b, dir := newFileStore(t, 100, 1)
	s, err := NewWithBackend(100, b, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 6; i++ {
		mustAppend(t, s, dataEntry(i, 40))
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	b.Close()

	// Simulate a crash mid-append: chop the last record in half.
	name := filepath.Join(dir, shardFileName(0))
	st, err := os.Stat(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(name, st.Size()-30); err != nil {
		t.Fatal(err)
	}

	rb, err := OpenFileBackend(dir)
	if err != nil {
		t.Fatalf("open after torn tail: %v", err)
	}
	defer rb.Close()
	rs, err := NewWithBackend(100, rb, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 6 entries of 40 into capacity 100 = 3 containers of 2; the torn one
	// is gone, its predecessors intact.
	if rs.Count() != 2 {
		t.Fatalf("recovered store has %d containers, want 2", rs.Count())
	}
	for id := 0; id < 2; id++ {
		c, err := rb.Load(0, id)
		if err != nil || len(c.Entries) != 2 {
			t.Fatalf("recovered container %d: %+v, %v", id, c, err)
		}
	}
	// Appends after recovery reuse the freed ID.
	rs2 := rs
	loc, err := rs2.Append(dataEntry(50, 40))
	if err != nil {
		t.Fatal(err)
	}
	if loc.Container != 2 {
		t.Fatalf("post-recovery append container = %d, want 2", loc.Container)
	}
}

func TestFileBackendCorruptDataDetected(t *testing.T) {
	b, dir := newFileStore(t, 100, 1)
	s, err := NewWithBackend(100, b, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, dataEntry(1, 40))
	mustAppend(t, s, dataEntry(2, 40))
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	b.Close()

	// Flip one data byte inside the (only) record.
	name := filepath.Join(dir, shardFileName(0))
	raw, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-10] ^= 0xff
	if err := os.WriteFile(name, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rb, err := OpenFileBackend(dir)
	if err != nil {
		t.Fatalf("open scans only structure, should succeed: %v", err)
	}
	defer rb.Close()
	if _, err := rb.Load(0, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load of corrupted container: %v, want ErrCorrupt", err)
	}
}

func TestFileBackendStructuralCorruptionFailsOpen(t *testing.T) {
	b, dir := newFileStore(t, 100, 1)
	s, err := NewWithBackend(100, b, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 6; i++ {
		mustAppend(t, s, dataEntry(i, 40))
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	b.Close()

	name := filepath.Join(dir, shardFileName(0))

	// A file shorter than its header is not a torn tail.
	if err := os.Truncate(name, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileBackend(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open of truncated header: %v, want ErrCorrupt", err)
	}

	// Garbage at a record boundary mid-file is corruption, not recovery.
	b2, dir2 := newFileStore(t, 100, 1)
	s2, err := NewWithBackend(100, b2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 6; i++ {
		mustAppend(t, s2, dataEntry(i, 40))
	}
	if _, err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	b2.Close()
	name2 := filepath.Join(dir2, shardFileName(0))
	raw, err := os.ReadFile(name2)
	if err != nil {
		t.Fatal(err)
	}
	raw[fileHeaderLen] ^= 0xff // first record's magic
	if err := os.WriteFile(name2, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileBackend(dir2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with bad record magic: %v, want ErrCorrupt", err)
	}
}

func TestFileBackendRewrite(t *testing.T) {
	b, dir := newFileStore(t, 100, 1)
	s, err := NewWithBackend(100, b, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		mustAppend(t, s, dataEntry(i, 40))
	}
	st, err := s.Compact(func(e Entry) bool { return e.FP.Uint64()%2 == 1 }, nil)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st.EntriesDropped != 5 {
		t.Fatalf("dropped %d, want 5", st.EntriesDropped)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	b.Close()

	// The rewritten file must reopen cleanly with only the survivors.
	rb, err := OpenFileBackend(dir)
	if err != nil {
		t.Fatalf("open after rewrite: %v", err)
	}
	defer rb.Close()
	var got []uint64
	err = rb.Scan(0, true, func(c *Container) error {
		for _, e := range c.Entries {
			got = append(got, e.FP.Uint64())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("survivors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("survivors = %v, want %v", got, want)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, shardFileName(0)+".rewrite")); !os.IsNotExist(err) {
		t.Fatal("rewrite temp file left behind")
	}
}

func TestCreateFileBackendRefusesExisting(t *testing.T) {
	_, dir := newFileStore(t, 100, 1)
	if _, err := CreateFileBackend(dir, 1, 100); err == nil {
		t.Fatal("CreateFileBackend over an existing store succeeded")
	}
}

func TestOpenFileBackendEmptyDir(t *testing.T) {
	if _, err := OpenFileBackend(t.TempDir()); err == nil {
		t.Fatal("OpenFileBackend of empty dir succeeded")
	}
}

func TestFileBackendRejectsMetadataOnlyEntries(t *testing.T) {
	b, _ := newFileStore(t, 100, 1)
	s, err := NewWithBackend(100, b, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(entry(1, 40)); err != nil {
		t.Fatal(err) // append itself is fine, the entry sits in memory
	}
	if _, err := s.Flush(); err == nil {
		t.Fatal("sealing a metadata-only entry through a FileBackend succeeded")
	}
}
