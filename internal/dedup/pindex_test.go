package dedup

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"testing"

	"freqdedup/internal/container"
	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
)

// persistentOptions returns StoreOptions that exercise the fpindex paths
// hard: a tiny memtable so ordinary tests cross flush and compaction
// boundaries, and synchronous compaction so failures surface in the
// calling test rather than at Close.
func persistentOptions(dir string) StoreOptions {
	return StoreOptions{
		Index:           IndexPersistent,
		IndexDir:        filepath.Join(dir, "fpindex"),
		MemtableEntries: 8,
		CacheBytes:      1 << 20,
		ExpectedChunks:  1 << 12,
		SyncCompaction:  true,
	}
}

// createPersistentStore creates a fresh file-backed store in dir running
// the persistent fingerprint index.
func createPersistentStore(t *testing.T, dir string, shards, containerBytes int) *Store {
	t.Helper()
	b, err := container.CreateFileBackend(filepath.Join(dir, "store"), shards, containerBytes)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStoreWithOptions(b, persistentOptions(dir))
	if err != nil {
		b.Close()
		t.Fatal(err)
	}
	return s
}

// openPersistentStore reopens the store createPersistentStore made.
func openPersistentStore(t *testing.T, dir string) *Store {
	t.Helper()
	b, err := container.OpenFileBackend(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStoreWithOptions(b, persistentOptions(dir))
	if err != nil {
		b.Close()
		t.Fatal(err)
	}
	return s
}

// testChunk mints deterministic chunk i: content plus its fingerprint.
func testChunk(i int) (fphash.Fingerprint, []byte) {
	data := make([]byte, 64+i%37)
	binary.LittleEndian.PutUint64(data, uint64(i)*2654435761+17)
	return fphash.FromBytes(data), data
}

// TestPersistentIndexParity stores the same stream through a map-mode and
// a persistent-mode store and demands identical dedup decisions, lookup
// answers, and core statistics.
func TestPersistentIndexParity(t *testing.T) {
	const n = 300
	mapStore := NewStoreWithShards(4<<10, 4)
	perStore := createPersistentStore(t, t.TempDir(), 4, 4<<10)
	defer perStore.Close()

	for i := 0; i < n; i++ {
		fp, data := testChunk(i % (n / 3)) // every chunk stored three times
		d1, err1 := mapStore.Put(fp, data)
		d2, err2 := perStore.Put(fp, data)
		if err1 != nil || err2 != nil {
			t.Fatalf("put %d: map err %v, persistent err %v", i, err1, err2)
		}
		if d1 != d2 {
			t.Fatalf("put %d: duplicate verdicts disagree: map %v, persistent %v", i, d1, d2)
		}
	}
	for i := 0; i < n/3; i++ {
		fp, data := testChunk(i)
		if !perStore.Contains(fp) {
			t.Fatalf("persistent store missing chunk %d", i)
		}
		got, err := perStore.Get(fp)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("get %d: wrong bytes", i)
		}
	}
	if fp, _ := testChunk(1 << 20); perStore.Contains(fp) {
		t.Fatal("persistent store claims to hold an absent chunk")
	}
	ms, ps := mapStore.Stats(), perStore.Stats()
	if ms.LogicalBytes != ps.LogicalBytes || ms.PhysicalBytes != ps.PhysicalBytes ||
		ms.LogicalChunks != ps.LogicalChunks || ms.UniqueChunks != ps.UniqueChunks {
		t.Fatalf("stats disagree: map %+v, persistent %+v", ms, ps)
	}
	c := perStore.IndexCounters()
	if c.MemtableHits == 0 {
		t.Fatalf("no memtable hits recorded: %+v", c)
	}
}

// TestPersistentIndexReopen proves the persistence round trip: chunks
// stored before a clean Close are all found after reopening, and a third
// generation stored after the reopen dedups against the first.
func TestPersistentIndexReopen(t *testing.T) {
	dir := t.TempDir()
	const n = 200
	s := createPersistentStore(t, dir, 4, 4<<10)
	for i := 0; i < n; i++ {
		fp, data := testChunk(i)
		if _, err := s.Put(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s = openPersistentStore(t, dir)
	defer s.Close()
	if got := s.UniqueChunks(); got != n {
		t.Fatalf("reopened store has %d unique chunks, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		fp, data := testChunk(i)
		got, err := s.Get(fp)
		if err != nil {
			t.Fatalf("get %d after reopen: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("get %d after reopen: wrong bytes", i)
		}
		if dup, err := s.Put(fp, data); err != nil || !dup {
			t.Fatalf("re-put %d after reopen: dup=%v err=%v", i, dup, err)
		}
	}
}

// TestPersistentIndexCrashTail simulates dying without Close: the index
// never flushed, so the reopen must recover every sealed chunk from the
// container tail scan (the containers are the index's write-ahead log).
func TestPersistentIndexCrashTail(t *testing.T) {
	dir := t.TempDir()
	const n = 150
	s := createPersistentStore(t, dir, 2, 2<<10)
	for i := 0; i < n; i++ {
		fp, data := testChunk(i)
		if _, err := s.Put(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	// Seal open containers (durability point) but skip Close: the index
	// flush never happens, like a crash right after a Sync.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.backend.Close()

	s = openPersistentStore(t, dir)
	defer s.Close()
	for i := 0; i < n; i++ {
		fp, data := testChunk(i)
		got, err := s.Get(fp)
		if err != nil {
			t.Fatalf("get %d after crash-reopen: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("get %d after crash-reopen: wrong bytes", i)
		}
	}
}

// TestPersistentIndexGC runs retention GC on a persistent-index store and
// verifies survivors remain readable — through the rebuilt index both
// before and after a reopen (locations change when containers compact).
func TestPersistentIndexGC(t *testing.T) {
	dir := t.TempDir()
	s := createPersistentStore(t, dir, 2, 2<<10)
	const n = 120
	keep := &recipeStub{}
	drop := &recipeStub{}
	for i := 0; i < n; i++ {
		fp, data := testChunk(i)
		if _, err := s.Put(fp, data); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			keep.add(fp, uint32(len(data)))
		} else {
			drop.add(fp, uint32(len(data)))
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterBackup("keep", keep.recipe()); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterBackup("drop", drop.recipe()); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteBackup("drop"); err != nil {
		t.Fatal(err)
	}
	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksReclaimed == 0 {
		t.Fatal("GC reclaimed nothing")
	}
	check := func(s *Store, phase string) {
		for i := 0; i < n; i++ {
			fp, data := testChunk(i)
			got, err := s.Get(fp)
			if i%2 == 0 {
				if err != nil {
					t.Fatalf("%s: survivor %d: %v", phase, i, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("%s: survivor %d: wrong bytes", phase, i)
				}
			} else if err == nil {
				t.Fatalf("%s: reclaimed chunk %d still readable", phase, i)
			}
		}
	}
	check(s, "after GC")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = openPersistentStore(t, dir)
	defer s.Close()
	check(s, "after GC and reopen")
}

// TestPersistentIndexForeignIndexRebuilds opens a container store with an
// index directory left over from a different container history: the
// index's watermark exceeds the store's sealed count, so trusting its run
// files would serve garbage locations. The open must detect the mismatch
// and rebuild the index from the containers it actually has.
func TestPersistentIndexForeignIndexRebuilds(t *testing.T) {
	dirA := t.TempDir()
	sa := createPersistentStore(t, dirA, 2, 2<<10)
	for i := 0; i < 100; i++ {
		fp, data := testChunk(i)
		if _, err := sa.Put(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := sa.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh, empty container store paired with store A's index.
	dirB := t.TempDir()
	b, err := container.CreateFileBackend(filepath.Join(dirB, "store"), 2, 2<<10)
	if err != nil {
		t.Fatal(err)
	}
	opts := persistentOptions(dirA) // points at A's fpindex directory
	sb, err := NewStoreWithOptions(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	if got := sb.UniqueChunks(); got != 0 {
		t.Fatalf("foreign index not rebuilt: store reports %d chunks, want 0", got)
	}
	if fp, _ := testChunk(3); sb.Contains(fp) {
		t.Fatal("foreign index answered a lookup for a chunk the store does not hold")
	}
}

// recipeStub builds minimal recipes for retention tests.
type recipeStub struct {
	entries []mle.RecipeEntry
}

func (r *recipeStub) add(fp fphash.Fingerprint, size uint32) {
	r.entries = append(r.entries, mle.RecipeEntry{Fingerprint: fp, Size: size})
}

func (r *recipeStub) recipe() *mle.Recipe { return &mle.Recipe{Entries: r.entries} }
