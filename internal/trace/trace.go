// Package trace models backup workloads as the attacks see them: sequences
// of chunk fingerprints (with sizes) in logical order, before deduplication
// (Section 4: C and M are logical-order chunk sequences).
//
// It also provides the three dataset generators used in the evaluation
// (Section 5.1). The paper's FSL and VM traces are not publicly
// redistributable at full fidelity, so the generators synthesize workloads
// that preserve the statistics the attacks and defenses depend on — skewed
// chunk frequency (Figure 1), chunk locality across backup versions, and
// clustered updates — at laptop scale. The synthetic dataset generator
// implements the paper's own published method (Lillibridge et al.:
// per-version modify 2% of files, 2.5% of their content, plus new data).
package trace

import (
	"fmt"
	"math/rand"
	"sort"

	"freqdedup/internal/fphash"
)

// ChunkRef is one chunk occurrence in a backup stream: its content
// fingerprint and its (plaintext) size in bytes. Identical content repeats
// with the same fingerprint and size.
type ChunkRef struct {
	FP   fphash.Fingerprint
	Size uint32
}

// Backup is one full backup: the chunk sequence in logical order, as
// perceived by an adversary tapping uploads before deduplication.
type Backup struct {
	// Label identifies the backup (e.g. "Jan 22" or "week-03").
	Label string
	// Chunks is the logical-order chunk stream. Duplicates repeat.
	Chunks []ChunkRef
}

// LogicalSize returns the pre-deduplication byte size of the backup.
func (b *Backup) LogicalSize() uint64 {
	var n uint64
	for _, c := range b.Chunks {
		n += uint64(c.Size)
	}
	return n
}

// UniqueCount returns the number of distinct fingerprints in the backup.
func (b *Backup) UniqueCount() int {
	seen := make(map[fphash.Fingerprint]struct{}, len(b.Chunks))
	for _, c := range b.Chunks {
		seen[c.FP] = struct{}{}
	}
	return len(seen)
}

// Frequencies returns the per-fingerprint occurrence counts within the
// backup (the associative array F of Algorithm 1).
func (b *Backup) Frequencies() map[fphash.Fingerprint]int {
	freq := make(map[fphash.Fingerprint]int, len(b.Chunks))
	for _, c := range b.Chunks {
		freq[c.FP]++
	}
	return freq
}

// Dataset is a series of full backups of the same primary data over time.
type Dataset struct {
	Name    string
	Backups []*Backup
}

// DedupStats summarizes deduplication effectiveness across the whole
// dataset when backups are stored in order.
type DedupStats struct {
	LogicalBytes  uint64
	PhysicalBytes uint64
	LogicalChunks int
	UniqueChunks  int

	// Fingerprint-index lookup-path counters, populated only by stores
	// running the persistent (bloom-fronted run) index; the trace-level
	// simulation and map-mode stores leave them zero. They decompose
	// where index lookups were answered: a bloom rejection touches no
	// disk, a memtable or block-cache hit touches no disk, and only
	// DiskProbes paid a run-file block read.
	IndexBloomNegative  uint64
	IndexMemtableHits   uint64
	IndexBlockCacheHits uint64
	IndexDiskProbes     uint64
}

// Ratio returns the deduplication ratio (logical/physical bytes).
func (s DedupStats) Ratio() float64 {
	if s.PhysicalBytes == 0 {
		return 0
	}
	return float64(s.LogicalBytes) / float64(s.PhysicalBytes)
}

// Saving returns the storage saving fraction 1 - physical/logical.
func (s DedupStats) Saving() float64 {
	if s.LogicalBytes == 0 {
		return 0
	}
	return 1 - float64(s.PhysicalBytes)/float64(s.LogicalBytes)
}

// Stats computes chunk-level deduplication statistics over all backups.
func (d *Dataset) Stats() DedupStats {
	var st DedupStats
	seen := make(map[fphash.Fingerprint]struct{})
	for _, b := range d.Backups {
		for _, c := range b.Chunks {
			st.LogicalChunks++
			st.LogicalBytes += uint64(c.Size)
			if _, ok := seen[c.FP]; !ok {
				seen[c.FP] = struct{}{}
				st.UniqueChunks++
				st.PhysicalBytes += uint64(c.Size)
			}
		}
	}
	return st
}

// FrequencyCDF returns the sorted per-chunk duplicate frequencies of the
// union of all backups, for reproducing Figure 1: the i-th element is the
// frequency of the chunk at CDF position (i+1)/len.
func (d *Dataset) FrequencyCDF() []int {
	freq := make(map[fphash.Fingerprint]int)
	for _, b := range d.Backups {
		for _, c := range b.Chunks {
			freq[c.FP]++
		}
	}
	out := make([]int, 0, len(freq))
	for _, n := range freq {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Validate performs basic sanity checks on a dataset.
func (d *Dataset) Validate() error {
	if len(d.Backups) == 0 {
		return fmt.Errorf("trace: dataset %q has no backups", d.Name)
	}
	for i, b := range d.Backups {
		if len(b.Chunks) == 0 {
			return fmt.Errorf("trace: dataset %q backup %d (%s) is empty", d.Name, i, b.Label)
		}
		for j, c := range b.Chunks {
			if c.Size == 0 {
				return fmt.Errorf("trace: dataset %q backup %s chunk %d has zero size", d.Name, b.Label, j)
			}
			if c.FP.IsZero() {
				return fmt.Errorf("trace: dataset %q backup %s chunk %d has zero fingerprint", d.Name, b.Label, j)
			}
		}
	}
	return nil
}

// mix64 is the splitmix64 finalizer; generators use it to mint fingerprints
// that are uniformly distributed (as content hashes would be) from counters.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// minter mints fresh, never-repeating fingerprints for synthetic chunks.
type minter struct {
	next uint64
}

func (m *minter) mint() fphash.Fingerprint {
	m.next++
	fp := fphash.FromUint64(mix64(m.next))
	if fp.IsZero() {
		m.next++
		fp = fphash.FromUint64(mix64(m.next))
	}
	return fp
}

// ChunkSizeModel draws chunk sizes resembling content-defined chunking: a
// shifted exponential with mean Avg clamped to [Min, Max]. Fixed-size
// chunking is the degenerate Min == Avg == Max case. When Quantum is
// positive, sizes are rounded to its multiples, modelling the coarse
// effective size resolution a large trace exhibits relative to its chunk
// population (the advanced attack classifies by size; at laptop scale an
// unquantized continuous distribution would make size classes unrealistically
// discriminative compared to the paper's 30M-chunk traces).
type ChunkSizeModel struct {
	Min, Avg, Max int
	Quantum       int
}

// Draw samples one chunk size from the model. The workload generator
// registry (internal/workload) shares the model with this package's
// generators, so their size distributions stay comparable.
func (m ChunkSizeModel) Draw(rng *rand.Rand) uint32 { return m.draw(rng) }

// draw samples one chunk size.
func (m ChunkSizeModel) draw(rng *rand.Rand) uint32 {
	if m.Min == m.Max {
		return uint32(m.Min)
	}
	mean := float64(m.Avg - m.Min)
	s := m.Min + int(rng.ExpFloat64()*mean)
	if m.Quantum > 1 {
		s = (s + m.Quantum/2) / m.Quantum * m.Quantum
	}
	if s > m.Max {
		s = m.Max
	}
	if s < m.Min {
		s = m.Min
	}
	return uint32(s)
}

// fileLibrary models how duplication actually arises in storage workloads:
// whole files (package payloads, media, shared documents, OS pages) are
// copied — within a user's tree, across users, and across backup versions.
// Copying entire files means duplication is sequence-preserving: a popular
// chunk recurs together with the same neighbors, so its neighbor tables
// contain few distinct, high-count entries. This is the structure that
// makes chunk locality exploitable (Section 4.2).
//
// The library has two tiers, mirroring the two features of Figure 1's
// frequency distribution:
//
//   - hot: a handful of tiny (1-3 chunk) files copied at geometrically
//     separated rates. These produce the extreme, well-separated head of
//     the distribution (the paper's "top-frequent chunks have
//     significantly higher frequencies ... their frequency ranks are
//     stable across different backups"), which is what makes the
//     ciphertext-only seed of the locality-based attack reliable.
//   - tail: many ordinary files copied uniformly, so most duplicated files
//     have a small number of copies. Small copy counts keep neighbor
//     tables small, which is what lets inference propagate across file
//     boundaries.
type fileLibrary struct {
	hot  []*genFile
	tail []*genFile
}

// newFileLibrary pre-generates the library: nHot hot files and nTail tail
// files with mean size meanBytes.
func newFileLibrary(rng *rand.Rand, mint *minter, nHot, nTail, meanBytes int, sizes ChunkSizeModel) *fileLibrary {
	l := &fileLibrary{
		hot:  make([]*genFile, nHot),
		tail: make([]*genFile, nTail),
	}
	for i := range l.hot {
		// Hot files are a single chunk each, so the frequency head consists
		// of well-separated singleton ranks: no in-file peers to tie with,
		// and the geometric copy-rate separation (pickHot) keeps ranks
		// stable across backups even as copies are added and modified.
		l.hot[i] = &genFile{chunks: []ChunkRef{{FP: mint.mint(), Size: sizes.draw(rng)}}}
	}
	for i := range l.tail {
		l.tail[i] = freshFile(rng, mint, fileSize(rng, meanBytes), sizes)
	}
	return l
}

// pickHot returns a copy of a hot file, rank h chosen geometrically so
// rank 0 is copied about twice as often as rank 1, and so on — giving the
// frequency head stable, well-separated ranks.
func (l *fileLibrary) pickHot(rng *rand.Rand) *genFile {
	h := 0
	for h < len(l.hot)-1 && rng.Float64() < 0.5 {
		h++
	}
	return l.hot[h].clone()
}

// pickTail returns a copy of a uniformly selected tail file. The copy
// shares chunk content (fingerprints) but is an independent file object,
// so later modifications to one copy do not affect the others.
func (l *fileLibrary) pickTail(rng *rand.Rand) *genFile {
	return l.tail[rng.Intn(len(l.tail))].clone()
}

// freshFile creates a file of approximately targetBytes from newly minted
// chunks.
func freshFile(rng *rand.Rand, mint *minter, targetBytes int, sizes ChunkSizeModel) *genFile {
	f := &genFile{}
	var got int
	for got < targetBytes {
		c := ChunkRef{FP: mint.mint(), Size: sizes.draw(rng)}
		f.chunks = append(f.chunks, c)
		got += int(c.Size)
	}
	return f
}

// genFile is one file in the simulated primary data: a chunk sequence plus
// a volatility weight governing how likely the file is to be modified,
// moved, or deleted between backups. Real file populations are strongly
// heterogeneous — most files are written once and never touched again,
// while a small working set churns constantly. This "stable backbone"
// is why inference against a months-old auxiliary backup still works in
// the paper (Figure 5's gentle decay): the backbone's chunk locality
// survives many backup generations.
type genFile struct {
	chunks []ChunkRef
	vol    float64
}

func (f *genFile) clone() *genFile {
	c := make([]ChunkRef, len(f.chunks))
	copy(c, f.chunks)
	return &genFile{chunks: c, vol: f.vol}
}

// genDir is a directory: a group of files that share churn behaviour.
// Volatility is assigned per directory because real churn clusters — logs,
// caches, and active projects live together, and cold archives live
// together. Clustered churn is what keeps most deduplication segments
// (package segment) stable across backups, which MinHash encryption's
// storage efficiency depends on (Section 6.1); at the same time, volatile
// directories are interleaved with stable ones throughout the stream, so
// global stream positions shift between backups and classical frequency
// analysis stays ineffective.
type genDir struct {
	files []*genFile
	vol   float64
}

func (d *genDir) clone() *genDir {
	out := &genDir{files: make([]*genFile, len(d.files)), vol: d.vol}
	for i, f := range d.files {
		out.files[i] = f.clone()
	}
	return out
}

// fileSystem is the simulated primary data source that gets backed up: an
// ordered list of directories, each an ordered list of files. Directory
// and file order are stable across backups except for explicit shuffling.
type fileSystem struct {
	dirs []*genDir
}

func (fs *fileSystem) clone() *fileSystem {
	out := &fileSystem{dirs: make([]*genDir, len(fs.dirs))}
	for i, d := range fs.dirs {
		out.dirs[i] = d.clone()
	}
	return out
}

// allFiles returns every file in stream order.
func (fs *fileSystem) allFiles() []*genFile {
	var out []*genFile
	for _, d := range fs.dirs {
		out = append(out, d.files...)
	}
	return out
}

// snapshot emits the full-backup chunk stream: directories in order, files
// in order within each directory.
func (fs *fileSystem) snapshot(label string) *Backup {
	var total int
	for _, d := range fs.dirs {
		for _, f := range d.files {
			total += len(f.chunks)
		}
	}
	b := &Backup{Label: label, Chunks: make([]ChunkRef, 0, total)}
	for _, d := range fs.dirs {
		for _, f := range d.files {
			b.Chunks = append(b.Chunks, f.chunks...)
		}
	}
	return b
}

// drawVolatility assigns a directory's churn propensity: stableFrac of
// directories are immutable (weight 0), the rest get an exponential weight
// (a small hot working set dominates churn).
func drawVolatility(rng *rand.Rand, stableFrac float64) float64 {
	if rng.Float64() < stableFrac {
		return 0
	}
	return rng.ExpFloat64() + 0.05
}

// weightedSample picks up to k distinct file indices (into the flattened
// stream-order file list) with probability proportional to volatility.
// Files with zero weight are never picked.
func weightedSample(rng *rand.Rand, files []*genFile, k int) []int {
	type cand struct {
		idx int
		w   float64
	}
	cands := make([]cand, 0, len(files))
	var total float64
	for i, f := range files {
		if f.vol > 0 {
			cands = append(cands, cand{idx: i, w: f.vol})
			total += f.vol
		}
	}
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, 0, k)
	for len(out) < k {
		r := rng.Float64() * total
		var acc float64
		pick := len(cands) - 1
		for i, c := range cands {
			acc += c.w
			if r < acc {
				pick = i
				break
			}
		}
		out = append(out, cands[pick].idx)
		total -= cands[pick].w
		cands[pick] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
	}
	return out
}

// shuffleFiles relocates approximately frac of the volatile files to a
// random position within their own directory, modelling local
// reorganisation (renames and moves within a working directory). The
// stable backbone never moves.
func shuffleFiles(rng *rand.Rand, fs *fileSystem, frac float64) {
	for _, d := range fs.dirs {
		if d.vol == 0 || len(d.files) < 2 {
			continue
		}
		k := int(float64(len(d.files))*frac + 0.5)
		for i := 0; i < k; i++ {
			a, b := rng.Intn(len(d.files)), rng.Intn(len(d.files))
			f := d.files[a]
			d.files = append(d.files[:a], d.files[a+1:]...)
			if b > len(d.files) {
				b = len(d.files)
			}
			d.files = append(d.files, nil)
			copy(d.files[b+1:], d.files[b:])
			d.files[b] = f
		}
	}
}

// deleteFiles removes up to k files from the working set, concentrated in
// one highly volatile directory per call (deletions cluster the way real
// cleanups do).
func deleteFiles(rng *rand.Rand, fs *fileSystem, k int) {
	vol := volatileDirs(fs)
	if len(vol) == 0 || k <= 0 {
		return
	}
	var best *genDir
	for _, d := range vol {
		if best == nil || d.vol > best.vol {
			best = d
		}
	}
	d := best
	for i := 0; i < k && len(d.files) > 0; i++ {
		j := rng.Intn(len(d.files))
		d.files = append(d.files[:j], d.files[j+1:]...)
	}
}

func volatileDirs(fs *fileSystem) []*genDir {
	var out []*genDir
	for _, d := range fs.dirs {
		if d.vol > 0 && len(d.files) > 0 {
			out = append(out, d)
		}
	}
	return out
}

// addFiles grows fs by approximately targetBytes, creating directories of
// roughly dirFiles files. Each added file is a hot library copy with
// probability hotFrac, a tail library copy with probability reuseFrac, or
// a fresh file otherwise. Directory volatility is drawn per directory
// (stableFrac immutable); files inherit their directory's volatility. It
// returns the number of bytes actually added.
func addFiles(rng *rand.Rand, mint *minter, lib *fileLibrary, fs *fileSystem, targetBytes, meanFileBytes, dirFiles int, sizes ChunkSizeModel, hotFrac, reuseFrac, stableFrac float64) int {
	var added int
	var dir *genDir
	var dirTarget int
	for added < targetBytes {
		if dir == nil || len(dir.files) >= dirTarget {
			dir = &genDir{vol: drawVolatility(rng, stableFrac)}
			dirTarget = 1 + dirFiles/2 + rng.Intn(dirFiles)
			fs.dirs = append(fs.dirs, dir)
		}
		var f *genFile
		switch r := rng.Float64(); {
		case lib != nil && r < hotFrac:
			f = lib.pickHot(rng)
		case lib != nil && r < hotFrac+reuseFrac:
			f = lib.pickTail(rng)
		default:
			f = freshFile(rng, mint, fileSize(rng, meanFileBytes), sizes)
		}
		f.vol = dir.vol
		dir.files = append(dir.files, f)
		for _, c := range f.chunks {
			added += int(c.Size)
		}
	}
	return added
}

// growVolatile adds approximately targetBytes of new files into the
// working set. Growth is concentrated: all new files land in one or two of
// the most active directories (plus occasionally a brand-new directory at
// the end of the stream), the way real new data accumulates in a handful
// of active projects. Concentration matters for the defense evaluation:
// scattered insertions would perturb segment boundaries all over the
// stream and re-key far more MinHash segments than real workloads do.
func growVolatile(rng *rand.Rand, mint *minter, lib *fileLibrary, fs *fileSystem, targetBytes, meanFileBytes int, sizes ChunkSizeModel, hotFrac, reuseFrac float64) int {
	targets := make([]*genDir, 0, 2)
	if vol := volatileDirs(fs); len(vol) > 0 {
		targets = append(targets, vol[rng.Intn(len(vol))])
		if len(vol) > 1 && rng.Float64() < 0.5 {
			targets = append(targets, vol[rng.Intn(len(vol))])
		}
	}
	if len(targets) == 0 || rng.Float64() < 0.25 {
		dir := &genDir{vol: rng.ExpFloat64() + 0.05}
		fs.dirs = append(fs.dirs, dir)
		targets = append(targets, dir)
	}
	var added int
	for added < targetBytes {
		dir := targets[rng.Intn(len(targets))]
		var f *genFile
		switch r := rng.Float64(); {
		case lib != nil && r < hotFrac:
			f = lib.pickHot(rng)
		case lib != nil && r < hotFrac+reuseFrac:
			f = lib.pickTail(rng)
		default:
			f = freshFile(rng, mint, fileSize(rng, meanFileBytes), sizes)
		}
		f.vol = dir.vol
		dir.files = append(dir.files, f)
		for _, c := range f.chunks {
			added += int(c.Size)
		}
	}
	return added
}

// modifyFile rewrites a contiguous region// modifyFile rewrites a contiguous region covering contentFrac of the
// file's chunks — the paper's "changes to backups often appear in few
// clustered regions of chunks". Rewritten chunks get fresh fingerprints;
// occasionally a chunk is inserted or dropped so that chunk counts drift
// like real content-defined chunking under edits.
func modifyFile(rng *rand.Rand, mint *minter, f *genFile, contentFrac float64, sizes ChunkSizeModel) {
	modifyRegion(rng, mint, f, contentFrac, sizes, 0)
}

// modifyRegion is modifyFile with an optional volatile zone: when zoneFrac
// is positive, the rewritten region starts within the first zoneFrac of the
// chunk sequence with high probability, concentrating churn in a hot
// region and leaving a stable backbone (how real disk images change:
// logs, caches, and working directories churn; OS payload does not).
func modifyRegion(rng *rand.Rand, mint *minter, f *genFile, contentFrac float64, sizes ChunkSizeModel, zoneFrac float64) {
	n := len(f.chunks)
	if n == 0 {
		return
	}
	run := int(float64(n)*contentFrac + 0.5)
	if run < 1 {
		run = 1
	}
	if run > n {
		run = n
	}
	limit := n - run + 1
	start := rng.Intn(limit)
	if zoneFrac > 0 && rng.Float64() < 0.85 {
		zone := int(float64(n) * zoneFrac)
		if zone < 1 {
			zone = 1
		}
		if zone > limit {
			zone = limit
		}
		start = rng.Intn(zone)
	}
	repl := make([]ChunkRef, 0, run+1)
	for i := 0; i < run; i++ {
		repl = append(repl, ChunkRef{FP: mint.mint(), Size: sizes.draw(rng)})
	}
	// Shift chunk count by -1/0/+1 to emulate boundary drift.
	switch rng.Intn(4) {
	case 0:
		repl = append(repl, ChunkRef{FP: mint.mint(), Size: sizes.draw(rng)})
	case 1:
		if len(repl) > 1 {
			repl = repl[:len(repl)-1]
		}
	}
	out := make([]ChunkRef, 0, n-run+len(repl))
	out = append(out, f.chunks[:start]...)
	out = append(out, repl...)
	out = append(out, f.chunks[start+run:]...)
	f.chunks = out
}
