package workload

import "freqdedup/internal/trace"

// The builtin modifiers. Each models one mechanism by which real primary
// data evolves between backups; scenarios compose them in order. All
// randomness comes from the State's Rng; no modifier retains state across
// Apply calls.

// FileChurn models day-to-day file-population evolution: a volatile
// working set is modified in clustered regions, a few files are deleted,
// and new data (fresh files plus library copies) grows the stream.
type FileChurn struct {
	// ModifyFrac is the fraction of extents modified per generation.
	ModifyFrac float64
	// ContentFrac is the fraction of a modified extent's chunks rewritten.
	ContentFrac float64
	// DeleteFrac is the fraction of extents deleted per generation.
	DeleteFrac float64
	// GrowFrac is new data per generation as a fraction of the stream's
	// current bytes.
	GrowFrac float64
	// HotFrac/ReuseFrac set the library-draw mix for new extents.
	HotFrac, ReuseFrac float64
}

func (FileChurn) Name() string { return "file-churn" }

func (c FileChurn) Apply(st *State, gen int) {
	for _, s := range st.Users() {
		// Delete from the volatile working set.
		if nDel := int(float64(len(s.extents))*c.DeleteFrac + 0.5); nDel > 0 {
			for i := 0; i < nDel; i++ {
				vol := make([]int, 0, len(s.extents))
				for j, e := range s.extents {
					if e.vol > 0 {
						vol = append(vol, j)
					}
				}
				if len(vol) == 0 {
					break
				}
				j := vol[st.Rng.Intn(len(vol))]
				s.extents = append(s.extents[:j], s.extents[j+1:]...)
			}
		}
		// Modify, concentrated in the most volatile extents.
		nMod := int(float64(len(s.extents))*c.ModifyFrac + 0.5)
		if nMod < 1 {
			nMod = 1
		}
		for _, idx := range st.weightedSample(s, nMod) {
			st.rewriteRegion(s.extents[idx], c.ContentFrac, 0)
		}
		// Grow.
		target := int(float64(s.bytes()) * c.GrowFrac)
		var added int
		for added < target {
			e := st.newObject(st.Cfg.MeanObjectBytes, c.HotFrac, c.ReuseFrac)
			e.vol = st.Rng.ExpFloat64() + 0.05
			s.extents = append(s.extents, e)
			added += e.bytes()
		}
	}
}

// VMLayer models VM-image evolution: clustered content churn concentrated
// in a volatile leading zone (logs, caches, home directories), local
// relocation of block runs (defragmentation, package reinstalls), and
// episodic layering — a new image layer of fresh plus library content
// appended every LayerEvery generations (package installs, OS updates).
// It treats each user's whole stream as one image.
type VMLayer struct {
	// ChurnFrac is the total content churn per generation.
	ChurnFrac float64
	// VolatileZoneFrac concentrates churn in the leading fraction of the
	// image.
	VolatileZoneFrac float64
	// RelocateFrac is the fraction of the image relocated (content
	// preserved, position perturbed locally) per generation.
	RelocateFrac float64
	// LayerFrac sizes an appended layer as a fraction of the image.
	LayerFrac float64
	// LayerEvery appends a layer every k generations (0 = never).
	LayerEvery int
	// HotFrac/ReuseFrac set the library-draw mix inside a new layer.
	HotFrac, ReuseFrac float64
}

func (VMLayer) Name() string { return "vm-layer" }

func (m VMLayer) Apply(st *State, gen int) {
	for _, s := range st.Users() {
		if len(s.extents) == 0 {
			continue
		}
		img := s.extents[0] // the image is one extent per user
		// Clustered churn: a few regions per generation, biased into the
		// volatile zone.
		if m.ChurnFrac > 0 {
			regions := 1 + st.Rng.Intn(3)
			per := m.ChurnFrac / float64(regions)
			for i := 0; i < regions; i++ {
				st.rewriteRegion(img, per, m.VolatileZoneFrac)
			}
		}
		relocateChunks(st, img, m.RelocateFrac)
		if m.LayerEvery > 0 && gen%m.LayerEvery == 0 && m.LayerFrac > 0 {
			target := int(float64(img.bytes()) * m.LayerFrac)
			var added int
			for added < target {
				e := st.newObject(st.Cfg.MeanObjectBytes, m.HotFrac, m.ReuseFrac)
				img.chunks = append(img.chunks, e.chunks...)
				added += e.bytes()
			}
		}
	}
}

// relocateChunks moves a contiguous run covering approximately frac of the
// extent to a nearby position, preserving content (and therefore
// deduplication) while perturbing the chunk order the locality-based
// attack walks. Moves are local: defragmentation and file moves shuffle
// nearby block runs, they do not teleport data across the disk.
func relocateChunks(st *State, e *Extent, frac float64) {
	n := len(e.chunks)
	run := int(float64(n)*frac + 0.5)
	if run < 1 || run >= n {
		return
	}
	start := st.Rng.Intn(n - run)
	moved := make([]trace.ChunkRef, run)
	copy(moved, e.chunks[start:start+run])
	rest := append(append([]trace.ChunkRef{}, e.chunks[:start]...), e.chunks[start+run:]...)
	window := n / 8
	if window < 1 {
		window = 1
	}
	pos := start - window + st.Rng.Intn(2*window+1)
	if pos < 0 {
		pos = 0
	}
	if pos > len(rest) {
		pos = len(rest)
	}
	out := make([]trace.ChunkRef, 0, n)
	out = append(out, rest[:pos]...)
	out = append(out, moved...)
	out = append(out, rest[pos:]...)
	e.chunks = out
}

// DBPageUpdate models database file evolution: individual fixed-size pages
// are rewritten in place (same position, same size — page writes never
// shift the file layout), updates concentrate on a hot leading zone of the
// file, and the tail grows slowly as tables extend. The in-place updates
// give database backups their distinctive positional stability.
type DBPageUpdate struct {
	// UpdateFrac is the fraction of pages rewritten per generation.
	UpdateFrac float64
	// HotZoneFrac is the leading fraction of the file absorbing most
	// updates; HotProb is the probability an update lands there.
	HotZoneFrac float64
	HotProb     float64
	// GrowFrac extends the page count per generation.
	GrowFrac float64
}

func (DBPageUpdate) Name() string { return "db-page-update" }

func (m DBPageUpdate) Apply(st *State, gen int) {
	for _, s := range st.Users() {
		if len(s.extents) == 0 {
			continue
		}
		file := s.extents[0] // the database file is one extent per user
		n := len(file.chunks)
		if n == 0 {
			continue
		}
		k := int(float64(n)*m.UpdateFrac + 0.5)
		if k < 1 {
			k = 1
		}
		hotZone := int(float64(n) * m.HotZoneFrac)
		if hotZone < 1 {
			hotZone = 1
		}
		for i := 0; i < k; i++ {
			pos := st.Rng.Intn(n)
			if st.Rng.Float64() < m.HotProb {
				pos = st.Rng.Intn(hotZone)
			}
			// In place: fresh content, same page slot and size.
			file.chunks[pos].FP = st.mint.mint()
		}
		grow := int(float64(n)*m.GrowFrac + 0.5)
		for i := 0; i < grow; i++ {
			file.chunks = append(file.chunks, st.MintChunk())
		}
	}
}

// MediaAppend models an append-only media library: new blobs arrive every
// generation, a fraction of them duplicate existing blobs (re-shared
// assets), and nothing already stored is ever modified or deleted.
type MediaAppend struct {
	// AppendFrac is new data per generation as a fraction of the stream's
	// current bytes.
	AppendFrac float64
	// MeanBlobBytes is the mean new-blob size (0 = 4x the config's mean
	// object size — media blobs run large).
	MeanBlobBytes int
	// DupFrac is the probability a new blob is a copy of an existing one.
	DupFrac float64
}

func (MediaAppend) Name() string { return "media-append" }

func (m MediaAppend) Apply(st *State, gen int) {
	mean := m.MeanBlobBytes
	if mean == 0 {
		mean = 4 * st.Cfg.MeanObjectBytes
	}
	for _, s := range st.Users() {
		target := int(float64(s.bytes()) * m.AppendFrac)
		var added int
		for added < target {
			var e *Extent
			if len(s.extents) > 0 && st.Rng.Float64() < m.DupFrac {
				e = s.extents[st.Rng.Intn(len(s.extents))].clone()
			} else {
				e = st.FreshExtent(st.objectBytes(mean))
			}
			e.vol = 0 // media is immutable once stored
			s.extents = append(s.extents, e)
			added += e.bytes()
		}
	}
}

// CompressRecut models compress-then-backup pipelines (tar.gz archives,
// compressed database dumps): compression upstream of chunking destroys
// content-defined boundary stability, so an edit re-cuts everything
// downstream of it — all chunks from the edit point to the end of the
// stream get fresh fingerprints and re-drawn sizes. Edits land in the
// trailing TailFrac of the stream (append-mostly archives), so the shared
// prefix decays slowly instead of collapsing at once.
type CompressRecut struct {
	// TailFrac is the trailing fraction of the stream within which the
	// edit point is drawn each generation.
	TailFrac float64
}

func (CompressRecut) Name() string { return "compress-recut" }

func (m CompressRecut) Apply(st *State, gen int) {
	for _, s := range st.Users() {
		n := s.chunkCount()
		if n == 0 {
			continue
		}
		window := int(float64(n) * m.TailFrac)
		if window < 1 {
			window = 1
		}
		cut := n - window + st.Rng.Intn(window)
		// Re-mint every chunk at stream position >= cut.
		pos := 0
		for _, e := range s.extents {
			for i := range e.chunks {
				if pos >= cut {
					e.chunks[i] = st.MintChunk()
				}
				pos++
			}
		}
	}
}

// UserOverlap models cross-user duplication in shared-team storage: each
// generation one user's artifacts propagate to every other user (shared
// builds, distributed documents, synced project files), creating the
// sequence-preserving cross-user overlap that drives dedup ratios — and
// chunk-locality leakage — in multi-tenant backups.
type UserOverlap struct {
	// ShareFrac is the fraction of the source user's extents propagated
	// per generation.
	ShareFrac float64
	// RecipientVol is the volatility copies get at their recipients
	// (recipients may later modify their copy, diverging from the
	// original).
	RecipientVol float64
}

func (UserOverlap) Name() string { return "user-overlap" }

func (m UserOverlap) Apply(st *State, gen int) {
	users := st.Users()
	if len(users) < 2 {
		return
	}
	src := users[gen%len(users)]
	if len(src.extents) == 0 {
		return
	}
	k := int(float64(len(src.extents))*m.ShareFrac + 0.5)
	if k < 1 {
		k = 1
	}
	picks := make([]*Extent, 0, k)
	for i := 0; i < k; i++ {
		picks = append(picks, src.extents[st.Rng.Intn(len(src.extents))])
	}
	for _, dst := range users {
		if dst == src {
			continue
		}
		for _, p := range picks {
			c := p.clone()
			c.vol = m.RecipientVol
			// Insert at a random position: shared artifacts land wherever
			// the recipient's tree puts them.
			pos := st.Rng.Intn(len(dst.extents) + 1)
			dst.extents = append(dst.extents, nil)
			copy(dst.extents[pos+1:], dst.extents[pos:])
			dst.extents[pos] = c
		}
	}
}
