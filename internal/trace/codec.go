package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"freqdedup/internal/fphash"
)

// Binary dataset format:
//
//	magic   [8]byte  "FDTRACE1"
//	nameLen uint16, name bytes
//	nBackups uint32
//	per backup:
//	  labelLen uint16, label bytes
//	  nChunks uint32
//	  per chunk: fp [8]byte, size uint32
//
// All integers big-endian. The format is self-contained and versioned by
// the magic string.

var magic = [8]byte{'F', 'D', 'T', 'R', 'A', 'C', 'E', '1'}

// maxStringLen bounds label/name lengths on decode.
const maxStringLen = 1 << 12

// maxChunkPrealloc bounds how many chunk records Read pre-allocates from
// a declared count before any record bytes have been seen.
const maxChunkPrealloc = 1 << 16

// Write encodes the dataset to w.
func Write(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("trace: write magic: %w", err)
	}
	if err := writeString(bw, d.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint32(len(d.Backups))); err != nil {
		return fmt.Errorf("trace: write backup count: %w", err)
	}
	for _, b := range d.Backups {
		if err := writeString(bw, b.Label); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.BigEndian, uint32(len(b.Chunks))); err != nil {
			return fmt.Errorf("trace: write chunk count: %w", err)
		}
		var rec [fphash.Size + 4]byte
		for _, c := range b.Chunks {
			copy(rec[:], c.FP[:])
			binary.BigEndian.PutUint32(rec[fphash.Size:], c.Size)
			if _, err := bw.Write(rec[:]); err != nil {
				return fmt.Errorf("trace: write chunk: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Read decodes a dataset written by Write.
func Read(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("trace: bad magic (not a freqdedup trace file)")
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	var nBackups uint32
	if err := binary.Read(br, binary.BigEndian, &nBackups); err != nil {
		return nil, fmt.Errorf("trace: read backup count: %w", err)
	}
	d := &Dataset{Name: name}
	for i := uint32(0); i < nBackups; i++ {
		label, err := readString(br)
		if err != nil {
			return nil, err
		}
		var nChunks uint32
		if err := binary.Read(br, binary.BigEndian, &nChunks); err != nil {
			return nil, fmt.Errorf("trace: read chunk count: %w", err)
		}
		// nChunks is untrusted input: cap the pre-allocation and grow the
		// slice only as chunk records actually arrive, so a forged count in
		// a truncated stream cannot make Read allocate gigabytes up front.
		capHint := nChunks
		if capHint > maxChunkPrealloc {
			capHint = maxChunkPrealloc
		}
		b := &Backup{Label: label, Chunks: make([]ChunkRef, 0, capHint)}
		var rec [fphash.Size + 4]byte
		for j := uint32(0); j < nChunks; j++ {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return nil, fmt.Errorf("trace: read chunk: %w", err)
			}
			var c ChunkRef
			copy(c.FP[:], rec[:fphash.Size])
			c.Size = binary.BigEndian.Uint32(rec[fphash.Size:])
			b.Chunks = append(b.Chunks, c)
		}
		d.Backups = append(d.Backups, b)
	}
	return d, nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > maxStringLen {
		return fmt.Errorf("trace: string too long (%d bytes)", len(s))
	}
	if err := binary.Write(w, binary.BigEndian, uint16(len(s))); err != nil {
		return fmt.Errorf("trace: write string length: %w", err)
	}
	if _, err := io.WriteString(w, s); err != nil {
		return fmt.Errorf("trace: write string: %w", err)
	}
	return nil
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return "", fmt.Errorf("trace: read string length: %w", err)
	}
	if int(n) > maxStringLen {
		return "", fmt.Errorf("trace: string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("trace: read string: %w", err)
	}
	return string(buf), nil
}
