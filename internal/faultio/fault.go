package faultio

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"time"
)

// ErrInjected is the default error a firing fault rule returns. Every
// injected error wraps it, so tests can assert errors.Is(err, ErrInjected)
// regardless of the rule's custom error.
var ErrInjected = errors.New("faultio: injected fault")

// ErrCrashed is returned by every operation at and after a plan's crash
// point: the simulated machine is down, and nothing volatile survives.
var ErrCrashed = errors.New("faultio: crashed (simulated)")

// Op names one operation class a Rule can match. File-level operations
// (OpWrite..OpStat) are observed by MemFS; backend-level operations
// (OpSeal..OpRewrite) by FaultBackend. OpAny matches everything.
type Op string

const (
	OpAny Op = ""

	// File-level operations.
	OpWrite    Op = "write" // Write and WriteAt
	OpRead     Op = "read"  // ReadAt
	OpSync     Op = "sync"
	OpTruncate Op = "truncate"
	OpCreate   Op = "create" // OpenFile that creates
	OpOpen     Op = "open"   // open of an existing file
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpStat     Op = "stat"

	// Backend-level operations.
	OpSeal    Op = "seal"
	OpLoad    Op = "load"
	OpScan    Op = "scan"
	OpRewrite Op = "rewrite"
)

// Fault is what happens when a Rule fires.
type Fault struct {
	// Err is the error to return (ErrInjected if nil). The returned error
	// always wraps ErrInjected.
	Err error
	// Transient marks the injected error as transient, so RetryBackend
	// (and any other IsTransient caller) will retry it.
	Transient bool
	// ShortWrite applies only to write operations: a seeded-random prefix
	// of the buffer is written before the error returns — a torn write.
	ShortWrite bool
	// FlipBit corrupts instead of failing: on a write, one seeded-random
	// bit of the buffer flips in flight; on a sync, one bit of the
	// already-durable (synced) content flips — modeling post-fsync media
	// corruption. The operation then succeeds with a nil error: silent
	// corruption, the kind only checksums catch.
	FlipBit bool
	// Delay is slept before the operation proceeds (injected latency).
	// With no Err/ShortWrite/FlipBit, the operation then runs normally.
	Delay time.Duration
}

// Rule arms one fault: when an operation matching Op and PathGlob is
// observed for the Nth time, the Fault fires (Count times in a row).
type Rule struct {
	// Op selects the operation class (OpAny = every operation).
	Op Op
	// PathGlob is a filepath.Match pattern tried against both the
	// operation's full path and its base name ("" = any path).
	PathGlob string
	// Nth is the 1-based match index at which the rule starts firing
	// (0 means 1: fire on the first match).
	Nth int
	// Count is how many consecutive matches fire (0 means 1; negative
	// means every match from Nth on).
	Count int
	// Fault is what firing does.
	Fault Fault
}

// Plan is a deterministic fault schedule: a seed for every random choice
// the injector makes (short-write lengths, flipped bit positions), an
// optional crash point, and the armed rules. The zero Plan injects
// nothing.
type Plan struct {
	// Seed feeds the injector's private rand.Rand; the same plan against
	// the same workload injects byte-identical faults. A zero seed is
	// used as-is (still deterministic).
	Seed int64
	// CrashAtOp, when positive, crashes the simulated machine at mutating
	// operation number CrashAtOp (1-based): that operation and every
	// later one fail with ErrCrashed, and everything not fsynced is
	// discarded from the crash image.
	CrashAtOp int64
	// Rules are the armed faults, evaluated in order; the first matching
	// rule fires.
	Rules []Rule
}

// transientErr wraps an injected error marked transient.
type transientErr struct{ err error }

func (t transientErr) Error() string { return t.err.Error() }
func (t transientErr) Unwrap() error { return t.err }

// Transient reports true, marking the error retryable — see IsTransient.
func (t transientErr) Transient() bool { return true }

// MarkTransient wraps err so IsTransient reports true for it.
func MarkTransient(err error) error { return transientErr{err} }

// IsTransient reports whether err is marked transient: it (or an error it
// wraps) implements `Transient() bool` returning true. Unmarked errors
// are not transient.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok {
			return t.Transient()
		}
		err = errors.Unwrap(err)
	}
	return false
}

// Injector is the shared rule-matching engine behind MemFS and
// FaultBackend: it counts operations, tracks rule matches, decides crash
// points, and owns the plan's seeded randomness. An Injector is safe for
// concurrent use.
type Injector struct {
	mu         sync.Mutex
	plan       Plan
	rng        *rand.Rand
	hits       []int
	ops        int64
	crashed    bool
	syncPoints []int64
}

// NewInjector returns an injector armed with the plan.
func NewInjector(plan Plan) *Injector {
	return &Injector{
		plan: plan,
		rng:  rand.New(rand.NewSource(plan.Seed)),
		hits: make([]int, len(plan.Rules)),
	}
}

// observe advances the injector for one operation: mutating operations
// tick the crash clock, and the first matching rule (if any) is returned
// along with any crash error. A sync that survives is recorded as a sync
// point.
func (in *Injector) observe(op Op, path string, mutating bool) (Fault, bool, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return Fault{}, false, ErrCrashed
	}
	if mutating {
		in.ops++
		if in.plan.CrashAtOp > 0 && in.ops >= in.plan.CrashAtOp {
			in.crashed = true
			return Fault{}, false, ErrCrashed
		}
	}
	for i, r := range in.plan.Rules {
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.PathGlob != "" {
			full, _ := filepath.Match(r.PathGlob, path)
			base, _ := filepath.Match(r.PathGlob, filepath.Base(path))
			if !full && !base {
				continue
			}
		}
		in.hits[i]++
		nth := r.Nth
		if nth <= 0 {
			nth = 1
		}
		count := r.Count
		if count == 0 {
			count = 1
		}
		if in.hits[i] < nth {
			continue
		}
		if count > 0 && in.hits[i] >= nth+count {
			continue
		}
		return r.Fault, true, nil
	}
	if op == OpSync && mutating {
		in.syncPoints = append(in.syncPoints, in.ops)
	}
	return Fault{}, false, nil
}

// fire turns a matched fault into its error (after sleeping any injected
// latency). A FlipBit fault returns nil — the corruption is the caller's
// to apply.
func (in *Injector) fire(f Fault) error {
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.FlipBit {
		return nil
	}
	if f.Err == nil && f.Delay > 0 && !f.ShortWrite {
		return nil // pure latency
	}
	err := f.Err
	if err == nil {
		err = ErrInjected
	} else {
		err = fmt.Errorf("%w: %w", ErrInjected, err)
	}
	if f.Transient {
		err = MarkTransient(err)
	}
	return err
}

// rand runs fn with the injector's seeded rand under the lock.
func (in *Injector) random(fn func(*rand.Rand)) {
	in.mu.Lock()
	fn(in.rng)
	in.mu.Unlock()
}

// OpCount returns how many mutating operations the injector has observed
// — the crash clock. Running a workload once with no crash point and
// reading OpCount bounds the crash-point sweep.
func (in *Injector) OpCount() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// SyncPoints returns the mutating-op numbers at which a sync was
// acknowledged — the interesting crash points: crashing anywhere between
// two sync points is equivalent to crashing right before the later one,
// plus or minus data that was never acknowledged anyway.
func (in *Injector) SyncPoints() []int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]int64, len(in.syncPoints))
	copy(out, in.syncPoints)
	return out
}

// Crashed reports whether the plan's crash point has been reached.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}
