package trace

import (
	"bytes"
	"testing"
)

// fuzzSeedDatasets returns small generated datasets whose encodings seed
// the fuzz corpus with structurally valid inputs.
func fuzzSeedDatasets() []*Dataset {
	sp := DefaultSyntheticParams()
	sp.Snapshots = 2
	sp.InitialBytes = 1 << 16
	sp.NewDataBytes = 1 << 12

	fp := DefaultFSLParams()
	fp.Users = 2
	fp.Labels = []string{"a", "b"}
	fp.PerUserBytes = 1 << 15

	hand := &Dataset{
		Name: "hand",
		Backups: []*Backup{
			{Label: "only", Chunks: []ChunkRef{{FP: [8]byte{1}, Size: 4096}, {FP: [8]byte{2}, Size: 512}}},
			{Label: "", Chunks: nil},
		},
	}
	return []*Dataset{GenerateSynthetic(sp), GenerateFSL(fp), hand}
}

// FuzzRead drives the decoder with arbitrary, truncated, and bit-flipped
// inputs: it must never panic, and anything it accepts must round-trip
// through Write/Read unchanged.
func FuzzRead(f *testing.F) {
	for _, d := range fuzzSeedDatasets() {
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			f.Fatal(err)
		}
		enc := buf.Bytes()
		f.Add(append([]byte{}, enc...))
		// Truncations and a bit flip of each seed widen the corpus.
		f.Add(append([]byte{}, enc[:len(enc)/2]...))
		flipped := append([]byte{}, enc...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte("FDTRACE1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("re-encoding an accepted dataset failed: %v", err)
		}
		d2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decoding a Write output failed: %v", err)
		}
		if !datasetsEqual(d, d2) {
			t.Fatal("accepted dataset did not round-trip through Write/Read")
		}
	})
}

func datasetsEqual(a, b *Dataset) bool {
	if a.Name != b.Name || len(a.Backups) != len(b.Backups) {
		return false
	}
	for i := range a.Backups {
		x, y := a.Backups[i], b.Backups[i]
		if x.Label != y.Label || len(x.Chunks) != len(y.Chunks) {
			return false
		}
		for j := range x.Chunks {
			if x.Chunks[j] != y.Chunks[j] {
				return false
			}
		}
	}
	return true
}

// TestReadForgedChunkCount feeds Read a header declaring 4 billion chunks
// followed by nothing: it must fail cleanly (no panic, no multi-gigabyte
// pre-allocation — the decoder caps its allocation and grows with actual
// input).
func TestReadForgedChunkCount(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("FDTRACE1")
	buf.Write([]byte{0, 1, 'x'})              // name "x"
	buf.Write([]byte{0, 0, 0, 1})             // 1 backup
	buf.Write([]byte{0, 1, 'y'})              // label "y"
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // forged chunk count
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("Read accepted a truncated stream with a forged chunk count")
	}
}
