package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
	"freqdedup/internal/trace"
)

// Protocol constants. See doc.go for the full frame-format specification.
const (
	// Magic opens every frame: "FDW1", big-endian, the same self-identifying
	// discipline as the .fdc/.fdr/.fdt on-disk formats.
	Magic uint32 = 0x46445731

	// Version is the protocol version negotiated by Hello/HelloOK.
	Version uint32 = 1

	// HeaderLen is the fixed frame header size: magic, type, payload length.
	HeaderLen = 12

	// MaxPayload bounds a frame's payload, mirroring the trace log's replay
	// bound: a corrupt or hostile length field must never drive a
	// multi-gigabyte allocation.
	MaxPayload = 64 << 20

	// MaxName bounds snapshot and tenant names on the wire.
	MaxName = 255

	// MaxToken bounds the Hello auth token.
	MaxToken = 255
)

// Frame types.
const (
	// THello opens a session: protocol version, tenant, auth token.
	THello uint32 = 1
	// THelloOK accepts a session and advertises the server's limits.
	THelloOK uint32 = 2
	// TError reports a failure; for protocol violations the server closes
	// the connection after sending it.
	TError uint32 = 3
	// TBackupBegin starts a backup session for a snapshot name.
	TBackupBegin uint32 = 4
	// TBackupReady acknowledges TBackupBegin.
	TBackupReady uint32 = 5
	// TNegotiate asks "have you seen these fingerprints?" for one window.
	TNegotiate uint32 = 6
	// TNegotiateReply answers with a miss bitmap: set bits are chunks the
	// store wants uploaded.
	TNegotiateReply uint32 = 7
	// TChunkData carries the ciphertexts of one window's missed chunks.
	TChunkData uint32 = 8
	// TWindowAck acknowledges that a window's chunks are in the store.
	TWindowAck uint32 = 9
	// TBackupCommit carries the plaintext recipe entries to seal.
	TBackupCommit uint32 = 10
	// TBackupDone acknowledges a durable snapshot.
	TBackupDone uint32 = 11
	// TRestoreReq asks for a snapshot's bytes.
	TRestoreReq uint32 = 12
	// TRestoreData carries one window of restored plaintext.
	TRestoreData uint32 = 13
	// TRestoreEnd terminates a restore stream with the byte total.
	TRestoreEnd uint32 = 14
	// TSnapshotsReq lists the tenant's snapshots.
	TSnapshotsReq uint32 = 15
	// TSnapshotsReply carries the snapshot list.
	TSnapshotsReply uint32 = 16
	// TDeleteReq deletes one snapshot.
	TDeleteReq uint32 = 17
	// TDeleteOK acknowledges a durable delete.
	TDeleteOK uint32 = 18
	// TStatsReq asks for the tenant's usage accounting.
	TStatsReq uint32 = 19
	// TStatsReply carries the tenant's usage accounting.
	TStatsReply uint32 = 20
)

// TError codes.
const (
	// CodeProtocol is a framing or state-machine violation; the connection
	// is closed after the error frame.
	CodeProtocol uint32 = 1
	// CodeAuth rejects a Hello: unknown tenant or wrong token.
	CodeAuth uint32 = 2
	// CodeNotFound names a snapshot the tenant does not hold.
	CodeNotFound uint32 = 3
	// CodeExists rejects a backup for a name the tenant already holds.
	CodeExists uint32 = 4
	// CodeInternal is a server-side failure (storage error).
	CodeInternal uint32 = 5
	// CodeShutdown rejects new work on a draining server.
	CodeShutdown uint32 = 6
)

// ErrCorruptFrame reports a frame that failed structural validation: bad
// magic, oversized payload, or a checksum mismatch.
var ErrCorruptFrame = errors.New("wire: corrupt frame")

// Hello opens a session.
type Hello struct {
	Version uint32
	Tenant  string
	Token   []byte
}

// HelloOK accepts a session and advertises the server's limits, which the
// client must respect: at most WindowChunks refs per TNegotiate, at most
// MaxInflight unacknowledged windows, and no chunk above MaxChunkBytes.
type HelloOK struct {
	Version       uint32
	WindowChunks  uint32
	MaxInflight   uint32
	MaxChunkBytes uint32
}

// ErrorInfo is a TError payload.
type ErrorInfo struct {
	Code uint32
	Msg  string
}

// Error makes a server-reported failure a Go error on the client side.
func (e *ErrorInfo) Error() string {
	return fmt.Sprintf("wire: server error %d: %s", e.Code, e.Msg)
}

// SnapshotInfo is one snapshot summary on the wire. Names are
// tenant-relative: the tenant prefix is implicit in the session.
type SnapshotInfo struct {
	Name         string
	CreatedUnix  int64
	LogicalBytes uint64
	Chunks       uint32
}

// TenantUsage is one tenant's accounting: how much it backs up, how much
// of the shared store it actually occupies, and how much of its data
// overlaps other tenants — the cross-user dedup number the paper's threat
// model turns on.
type TenantUsage struct {
	// Tenant is the namespace prefix ("" for un-namespaced snapshots).
	Tenant string
	// Snapshots is the tenant's snapshot count.
	Snapshots uint32
	// LogicalBytes is the pre-dedup sum over the tenant's snapshots.
	LogicalBytes uint64
	// StoredBytes is the ciphertext size of the unique chunks the tenant
	// references (chunk sizes are preserved by the CTR encryption, so this
	// is also the plaintext footprint).
	StoredBytes uint64
	// ExclusiveChunks/ExclusiveBytes count unique chunks referenced by
	// this tenant alone.
	ExclusiveChunks uint64
	ExclusiveBytes  uint64
	// SharedChunks/SharedBytes count unique chunks this tenant shares
	// with at least one other tenant.
	SharedChunks uint64
	SharedBytes  uint64
}

// Conn frames an underlying stream. Send is safe for concurrent use (the
// client's sender and receiver goroutines both write); Recv is not — one
// goroutine owns the read side at a time. The payload returned by Recv is
// valid only until the next Recv.
type Conn struct {
	wmu sync.Mutex
	bw  *bufio.Writer
	br  *bufio.Reader

	hdr  [HeaderLen]byte
	rbuf []byte // reused Recv payload+crc buffer
}

// NewConn wraps rw in frame buffering.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{
		bw: bufio.NewWriterSize(rw, 64<<10),
		br: bufio.NewReaderSize(rw, 64<<10),
	}
}

// Send writes and flushes one frame.
func (c *Conn) Send(typ uint32, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("wire: payload %d exceeds limit %d", len(payload), MaxPayload)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [HeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], Magic)
	binary.BigEndian.PutUint32(hdr[4:8], typ)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc)
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	if _, err := c.bw.Write(tail[:]); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Recv reads one frame, validating magic, length, and checksum.
func (c *Conn) Recv() (typ uint32, payload []byte, err error) {
	if _, err := io.ReadFull(c.br, c.hdr[:]); err != nil {
		return 0, nil, err
	}
	if binary.BigEndian.Uint32(c.hdr[0:4]) != Magic {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrCorruptFrame)
	}
	typ = binary.BigEndian.Uint32(c.hdr[4:8])
	n := binary.BigEndian.Uint32(c.hdr[8:12])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrCorruptFrame, n, MaxPayload)
	}
	if cap(c.rbuf) < int(n)+4 {
		c.rbuf = make([]byte, n+4)
	}
	buf := c.rbuf[:n+4]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return 0, nil, err
	}
	crc := crc32.ChecksumIEEE(c.hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, buf[:n])
	if crc != binary.BigEndian.Uint32(buf[n:]) {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptFrame)
	}
	return typ, buf[:n], nil
}

// ---- payload encoding ----
//
// Integers are big-endian. Strings and tokens are u8-length-prefixed;
// chunk ciphertexts are u32-length-prefixed.

type decoder struct {
	p   []byte
	off int
}

var errShort = fmt.Errorf("%w: truncated payload", ErrCorruptFrame)

func (d *decoder) u8() (byte, error) {
	if d.off+1 > len(d.p) {
		return 0, errShort
	}
	v := d.p[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > len(d.p) {
		return 0, errShort
	}
	v := binary.BigEndian.Uint32(d.p[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.off+8 > len(d.p) {
		return 0, errShort
	}
	v := binary.BigEndian.Uint64(d.p[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.p) {
		return nil, errShort
	}
	v := d.p[d.off : d.off+n]
	d.off += n
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.u8()
	if err != nil {
		return "", err
	}
	b, err := d.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// done fails if the payload has trailing bytes — a frame must parse
// exactly, so a length-confused encoder surfaces as corruption, not as
// silently dropped fields.
func (d *decoder) done() error {
	if d.off != len(d.p) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorruptFrame, len(d.p)-d.off)
	}
	return nil
}

func appendStr(dst []byte, s string) []byte {
	dst = append(dst, byte(len(s)))
	return append(dst, s...)
}

func checkName(s string) error {
	if s == "" || len(s) > MaxName {
		return fmt.Errorf("wire: name length %d out of range [1, %d]", len(s), MaxName)
	}
	return nil
}

// AppendHello encodes a Hello payload.
func AppendHello(dst []byte, h Hello) ([]byte, error) {
	if err := checkName(h.Tenant); err != nil {
		return nil, err
	}
	if len(h.Token) > MaxToken {
		return nil, fmt.Errorf("wire: token length %d exceeds %d", len(h.Token), MaxToken)
	}
	dst = binary.BigEndian.AppendUint32(dst, h.Version)
	dst = appendStr(dst, h.Tenant)
	dst = append(dst, byte(len(h.Token)))
	return append(dst, h.Token...), nil
}

// ParseHello decodes a Hello payload.
func ParseHello(p []byte) (Hello, error) {
	d := decoder{p: p}
	var h Hello
	var err error
	if h.Version, err = d.u32(); err != nil {
		return Hello{}, err
	}
	if h.Tenant, err = d.str(); err != nil {
		return Hello{}, err
	}
	n, err := d.u8()
	if err != nil {
		return Hello{}, err
	}
	tok, err := d.bytes(int(n))
	if err != nil {
		return Hello{}, err
	}
	h.Token = append([]byte(nil), tok...)
	return h, d.done()
}

// AppendHelloOK encodes a HelloOK payload.
func AppendHelloOK(dst []byte, h HelloOK) []byte {
	dst = binary.BigEndian.AppendUint32(dst, h.Version)
	dst = binary.BigEndian.AppendUint32(dst, h.WindowChunks)
	dst = binary.BigEndian.AppendUint32(dst, h.MaxInflight)
	return binary.BigEndian.AppendUint32(dst, h.MaxChunkBytes)
}

// ParseHelloOK decodes a HelloOK payload.
func ParseHelloOK(p []byte) (HelloOK, error) {
	d := decoder{p: p}
	var h HelloOK
	var err error
	if h.Version, err = d.u32(); err != nil {
		return HelloOK{}, err
	}
	if h.WindowChunks, err = d.u32(); err != nil {
		return HelloOK{}, err
	}
	if h.MaxInflight, err = d.u32(); err != nil {
		return HelloOK{}, err
	}
	if h.MaxChunkBytes, err = d.u32(); err != nil {
		return HelloOK{}, err
	}
	return h, d.done()
}

// AppendError encodes a TError payload. Messages longer than MaxName are
// truncated rather than rejected: the error path must not fail.
func AppendError(dst []byte, code uint32, msg string) []byte {
	if len(msg) > MaxName {
		msg = msg[:MaxName]
	}
	dst = binary.BigEndian.AppendUint32(dst, code)
	return appendStr(dst, msg)
}

// ParseError decodes a TError payload.
func ParseError(p []byte) (ErrorInfo, error) {
	d := decoder{p: p}
	var e ErrorInfo
	var err error
	if e.Code, err = d.u32(); err != nil {
		return ErrorInfo{}, err
	}
	if e.Msg, err = d.str(); err != nil {
		return ErrorInfo{}, err
	}
	return e, d.done()
}

// AppendName encodes the single-name payloads (TBackupBegin, TRestoreReq,
// TDeleteReq).
func AppendName(dst []byte, name string) ([]byte, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	return appendStr(dst, name), nil
}

// ParseName decodes a single-name payload.
func ParseName(p []byte) (string, error) {
	d := decoder{p: p}
	name, err := d.str()
	if err != nil {
		return "", err
	}
	if name == "" {
		return "", fmt.Errorf("%w: empty name", ErrCorruptFrame)
	}
	return name, d.done()
}

// AppendNegotiate encodes a TNegotiate payload: the window sequence number
// and the window's (ciphertext fingerprint, ciphertext size) refs in
// upload order — exactly the record the negotiation transcript leaks.
func AppendNegotiate(dst []byte, seq uint32, refs []trace.ChunkRef) []byte {
	dst = binary.BigEndian.AppendUint32(dst, seq)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(refs)))
	for _, r := range refs {
		dst = append(dst, r.FP[:]...)
		dst = binary.BigEndian.AppendUint32(dst, r.Size)
	}
	return dst
}

// ParseNegotiate decodes a TNegotiate payload into refs (reused when its
// capacity suffices).
func ParseNegotiate(p []byte, refs []trace.ChunkRef) (seq uint32, out []trace.ChunkRef, err error) {
	d := decoder{p: p}
	if seq, err = d.u32(); err != nil {
		return 0, nil, err
	}
	n, err := d.u32()
	if err != nil {
		return 0, nil, err
	}
	const refLen = fphash.Size + 4
	if uint64(n)*refLen != uint64(len(p)-d.off) {
		return 0, nil, fmt.Errorf("%w: ref count %d does not match payload", ErrCorruptFrame, n)
	}
	out = refs[:0]
	for i := uint32(0); i < n; i++ {
		b, _ := d.bytes(refLen)
		var r trace.ChunkRef
		copy(r.FP[:], b[:fphash.Size])
		r.Size = binary.BigEndian.Uint32(b[fphash.Size:])
		out = append(out, r)
	}
	return seq, out, d.done()
}

// AppendNegotiateReply encodes a TNegotiateReply payload: the window
// sequence number, the ref count, and a bitmap with bit i set when the
// store is missing ref i (the client must upload it).
func AppendNegotiateReply(dst []byte, seq uint32, miss []bool) []byte {
	dst = binary.BigEndian.AppendUint32(dst, seq)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(miss)))
	bitmap := make([]byte, (len(miss)+7)/8)
	for i, m := range miss {
		if m {
			bitmap[i/8] |= 1 << (i % 8)
		}
	}
	return append(dst, bitmap...)
}

// ParseNegotiateReply decodes a TNegotiateReply payload into miss (reused
// when its capacity suffices).
func ParseNegotiateReply(p []byte, miss []bool) (seq uint32, out []bool, err error) {
	d := decoder{p: p}
	if seq, err = d.u32(); err != nil {
		return 0, nil, err
	}
	n, err := d.u32()
	if err != nil {
		return 0, nil, err
	}
	if n > MaxPayload { // defensive: bitmap bound implies n is sane anyway
		return 0, nil, fmt.Errorf("%w: miss count %d", ErrCorruptFrame, n)
	}
	bitmap, err := d.bytes(int(n+7) / 8)
	if err != nil {
		return 0, nil, err
	}
	out = miss[:0]
	for i := uint32(0); i < n; i++ {
		out = append(out, bitmap[i/8]&(1<<(i%8)) != 0)
	}
	return seq, out, d.done()
}

// AppendChunkData encodes a TChunkData payload: the window sequence number
// and the missed chunks' ciphertexts, in miss-bitmap order.
func AppendChunkData(dst []byte, seq uint32, chunks [][]byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, seq)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(chunks)))
	for _, c := range chunks {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(c)))
		dst = append(dst, c...)
	}
	return dst
}

// ParseChunkData decodes a TChunkData payload. The returned chunk slices
// alias the payload: they are valid only until the next Recv.
func ParseChunkData(p []byte, chunks [][]byte) (seq uint32, out [][]byte, err error) {
	d := decoder{p: p}
	if seq, err = d.u32(); err != nil {
		return 0, nil, err
	}
	n, err := d.u32()
	if err != nil {
		return 0, nil, err
	}
	if n > MaxPayload/4 {
		return 0, nil, fmt.Errorf("%w: chunk count %d", ErrCorruptFrame, n)
	}
	out = chunks[:0]
	for i := uint32(0); i < n; i++ {
		sz, err := d.u32()
		if err != nil {
			return 0, nil, err
		}
		b, err := d.bytes(int(sz))
		if err != nil {
			return 0, nil, err
		}
		out = append(out, b)
	}
	return seq, out, d.done()
}

// AppendSeq encodes the bare-sequence payloads (TWindowAck).
func AppendSeq(dst []byte, seq uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, seq)
}

// ParseSeq decodes a bare-sequence payload.
func ParseSeq(p []byte) (uint32, error) {
	d := decoder{p: p}
	seq, err := d.u32()
	if err != nil {
		return 0, err
	}
	return seq, d.done()
}

// MaxCommitEntries is how many recipe entries fit one TBackupCommit frame.
const MaxCommitEntries = (MaxPayload - 4) / (fphash.Size + mle.KeySize + 4)

// AppendCommit encodes a TBackupCommit payload: the snapshot's plaintext
// recipe entries in chunk order. They cross only the authenticated session
// (the transport is trusted exactly as far as the token is); the server
// seals them under the repository key.
func AppendCommit(dst []byte, entries []mle.RecipeEntry) ([]byte, error) {
	if len(entries) > MaxCommitEntries {
		return nil, fmt.Errorf("wire: %d recipe entries exceed the per-frame limit %d", len(entries), MaxCommitEntries)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(entries)))
	for _, e := range entries {
		dst = append(dst, e.Fingerprint[:]...)
		dst = append(dst, e.Key[:]...)
		dst = binary.BigEndian.AppendUint32(dst, e.Size)
	}
	return dst, nil
}

// ParseCommit decodes a TBackupCommit payload.
func ParseCommit(p []byte) ([]mle.RecipeEntry, error) {
	d := decoder{p: p}
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	const entryLen = fphash.Size + mle.KeySize + 4
	if uint64(n)*entryLen != uint64(len(p)-d.off) {
		return nil, fmt.Errorf("%w: entry count %d does not match payload", ErrCorruptFrame, n)
	}
	entries := make([]mle.RecipeEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		b, _ := d.bytes(entryLen)
		var e mle.RecipeEntry
		copy(e.Fingerprint[:], b[:fphash.Size])
		copy(e.Key[:], b[fphash.Size:fphash.Size+mle.KeySize])
		e.Size = binary.BigEndian.Uint32(b[fphash.Size+mle.KeySize:])
		entries = append(entries, e)
	}
	return entries, d.done()
}

// AppendSnapshotInfo encodes the TBackupDone payload.
func AppendSnapshotInfo(dst []byte, s SnapshotInfo) []byte {
	dst = appendStr(dst, s.Name)
	dst = binary.BigEndian.AppendUint64(dst, uint64(s.CreatedUnix))
	dst = binary.BigEndian.AppendUint64(dst, s.LogicalBytes)
	return binary.BigEndian.AppendUint32(dst, s.Chunks)
}

func parseSnapshotInfo(d *decoder) (SnapshotInfo, error) {
	var s SnapshotInfo
	var err error
	if s.Name, err = d.str(); err != nil {
		return SnapshotInfo{}, err
	}
	created, err := d.u64()
	if err != nil {
		return SnapshotInfo{}, err
	}
	if created > math.MaxInt64 {
		return SnapshotInfo{}, fmt.Errorf("%w: timestamp overflow", ErrCorruptFrame)
	}
	s.CreatedUnix = int64(created)
	if s.LogicalBytes, err = d.u64(); err != nil {
		return SnapshotInfo{}, err
	}
	if s.Chunks, err = d.u32(); err != nil {
		return SnapshotInfo{}, err
	}
	return s, nil
}

// ParseSnapshotInfo decodes a TBackupDone payload.
func ParseSnapshotInfo(p []byte) (SnapshotInfo, error) {
	d := decoder{p: p}
	s, err := parseSnapshotInfo(&d)
	if err != nil {
		return SnapshotInfo{}, err
	}
	return s, d.done()
}

// AppendSnapshotList encodes a TSnapshotsReply payload.
func AppendSnapshotList(dst []byte, list []SnapshotInfo) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(list)))
	for _, s := range list {
		dst = AppendSnapshotInfo(dst, s)
	}
	return dst
}

// ParseSnapshotList decodes a TSnapshotsReply payload.
func ParseSnapshotList(p []byte) ([]SnapshotInfo, error) {
	d := decoder{p: p}
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(len(p)) { // each entry is >= 1 byte
		return nil, fmt.Errorf("%w: snapshot count %d", ErrCorruptFrame, n)
	}
	list := make([]SnapshotInfo, 0, n)
	for i := uint32(0); i < n; i++ {
		s, err := parseSnapshotInfo(&d)
		if err != nil {
			return nil, err
		}
		list = append(list, s)
	}
	return list, d.done()
}

// AppendU64 encodes the TRestoreEnd payload (total restored bytes).
func AppendU64(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

// ParseU64 decodes a TRestoreEnd payload.
func ParseU64(p []byte) (uint64, error) {
	d := decoder{p: p}
	v, err := d.u64()
	if err != nil {
		return 0, err
	}
	return v, d.done()
}

// AppendTenantUsage encodes a TStatsReply payload.
func AppendTenantUsage(dst []byte, u TenantUsage) []byte {
	dst = appendStr(dst, u.Tenant)
	dst = binary.BigEndian.AppendUint32(dst, u.Snapshots)
	dst = binary.BigEndian.AppendUint64(dst, u.LogicalBytes)
	dst = binary.BigEndian.AppendUint64(dst, u.StoredBytes)
	dst = binary.BigEndian.AppendUint64(dst, u.ExclusiveChunks)
	dst = binary.BigEndian.AppendUint64(dst, u.ExclusiveBytes)
	dst = binary.BigEndian.AppendUint64(dst, u.SharedChunks)
	return binary.BigEndian.AppendUint64(dst, u.SharedBytes)
}

// ParseTenantUsage decodes a TStatsReply payload.
func ParseTenantUsage(p []byte) (TenantUsage, error) {
	d := decoder{p: p}
	var u TenantUsage
	var err error
	if u.Tenant, err = d.str(); err != nil {
		return TenantUsage{}, err
	}
	if u.Snapshots, err = d.u32(); err != nil {
		return TenantUsage{}, err
	}
	for _, dst := range []*uint64{&u.LogicalBytes, &u.StoredBytes, &u.ExclusiveChunks, &u.ExclusiveBytes, &u.SharedChunks, &u.SharedBytes} {
		if *dst, err = d.u64(); err != nil {
			return TenantUsage{}, err
		}
	}
	return u, d.done()
}
