package attack_test

// The golden-equivalence suite: the streaming sharded engine
// (internal/attack) must produce bit-identical inference pairs, run
// stats, and inference rates to the frozen reference engine
// (internal/core) on the FSL, VM, and synthetic generator traces, for
// all three attacks in both modes, at every shard/worker combination.
// This is the contract that lets the rest of the system retarget onto
// the streaming engine without re-validating a single figure.

import (
	"fmt"
	"testing"

	"freqdedup/internal/attack"
	"freqdedup/internal/core"
	"freqdedup/internal/defense"
	"freqdedup/internal/trace"
)

// goldenDatasets builds reduced generator datasets (the same scaling
// approach as the eval tests) — real frequency skew and locality, small
// enough to sweep the full equivalence matrix quickly.
func goldenDatasets() []*trace.Dataset {
	fsl := trace.DefaultFSLParams()
	fsl.Users = 2
	fsl.PerUserBytes = 2 << 20
	syn := trace.DefaultSyntheticParams()
	syn.InitialBytes = 3 << 20
	syn.NewDataBytes = 48 << 10
	syn.Snapshots = 3
	vm := trace.DefaultVMParams()
	vm.Students = 3
	vm.BaseImageBytes = 1 << 20
	vm.Weeks = 4
	vm.HeavyStart, vm.HeavyEnd = 2, 3
	return []*trace.Dataset{
		trace.GenerateFSL(fsl),
		trace.GenerateSynthetic(syn),
		trace.GenerateVM(vm),
	}
}

func TestGoldenEquivalence(t *testing.T) {
	params := []attack.Params{
		{Shards: 1, Workers: 1},
		{Shards: 4, Workers: 2},
		{Shards: 16, Workers: 8},
	}
	for _, d := range goldenDatasets() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			n := len(d.Backups)
			aux := d.Backups[0]
			target := d.Backups[n-1]
			enc := defense.EncryptMLE(target)
			leaked := attack.SampleLeaked(enc.Backup, enc.Truth, 0.002, 42)
			if len(leaked) == 0 {
				t.Fatalf("no leaked pairs drawn — dataset too small for the KP mode test")
			}

			for _, mode := range []attack.Mode{attack.CiphertextOnly, attack.KnownPlaintext} {
				cfg := attack.Config{U: 2, V: 5, W: 200, Mode: mode}
				if mode == attack.KnownPlaintext {
					cfg.Leaked = leaked
				}

				// Reference results from the frozen core engine.
				basicRef := core.BasicAttack(enc.Backup, aux)
				locCfg := cfg
				locRef, locStats := core.LocalityAttackWithStats(enc.Backup, aux, locCfg)
				advCfg := cfg
				advCfg.SizeAware = true
				advRef, advStats := core.LocalityAttackWithStats(enc.Backup, aux, advCfg)

				cases := []struct {
					atk       attack.Attack
					wantPairs []attack.Pair
					wantStats *attack.Stats
				}{
					{attack.NewBasic(cfg), basicRef, nil},
					{attack.NewLocality(locCfg), locRef, &locStats},
					{attack.NewAdvanced(cfg), advRef, &advStats},
				}
				for _, tc := range cases {
					wantRate := core.InferenceRate(tc.wantPairs, enc.Truth, enc.Backup)
					for _, p := range params {
						name := fmt.Sprintf("%s/%s/shards=%d,workers=%d", tc.atk.Name(), mode, p.Shards, p.Workers)
						res, err := tc.atk.Run(attack.BackupSource(enc.Backup), attack.BackupSource(aux), p)
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						if len(res.Pairs) != len(tc.wantPairs) {
							t.Fatalf("%s: %d pairs, core has %d", name, len(res.Pairs), len(tc.wantPairs))
						}
						for i := range res.Pairs {
							if res.Pairs[i] != tc.wantPairs[i] {
								t.Fatalf("%s: pair %d = %v, core has %v", name, i, res.Pairs[i], tc.wantPairs[i])
							}
						}
						if tc.wantStats != nil && res.Stats != *tc.wantStats {
							t.Fatalf("%s: stats %+v, core has %+v", name, res.Stats, *tc.wantStats)
						}
						if got := res.InferenceRate(enc.Truth); got != wantRate {
							t.Fatalf("%s: rate %v, core computes %v", name, got, wantRate)
						}
						if res.UniqueTarget != enc.Backup.UniqueCount() {
							t.Fatalf("%s: UniqueTarget %d, want %d", name, res.UniqueTarget, enc.Backup.UniqueCount())
						}
					}
				}
			}
		})
	}
}

// TestGoldenEquivalenceArbitraryTies covers the tie-breaking ablation
// knob on one dataset.
func TestGoldenEquivalenceArbitraryTies(t *testing.T) {
	d := goldenDatasets()[0]
	aux, target := d.Backups[0], d.Backups[len(d.Backups)-1]
	enc := defense.EncryptMLE(target)
	cfg := attack.Config{U: 1, V: 15, W: 1000, ArbitraryTies: true}
	ref := core.LocalityAttack(enc.Backup, aux, cfg)
	res, err := attack.NewLocality(cfg).Run(attack.BackupSource(enc.Backup), attack.BackupSource(aux), attack.Params{Shards: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != len(ref) {
		t.Fatalf("%d pairs, core has %d", len(res.Pairs), len(ref))
	}
	for i := range ref {
		if res.Pairs[i] != ref[i] {
			t.Fatalf("pair %d = %v, core has %v", i, res.Pairs[i], ref[i])
		}
	}
}
