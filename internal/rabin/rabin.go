// Package rabin implements 64-bit Rabin fingerprinting over a sliding
// window of bytes, the rolling hash the paper's content-defined chunking
// builds on (Section 2.1, citing Rabin [54]).
//
// A Rabin fingerprint treats a byte string as a polynomial over GF(2) and
// reduces it modulo a fixed irreducible polynomial P of degree 64. The
// fingerprint of a sliding window can be updated in O(1) per byte: append a
// byte with a shift-and-reduce step, and cancel the byte leaving the window
// with a precomputed "pop" table.
package rabin

import "sync"

// Poly is an irreducible polynomial of degree 64 over GF(2), represented by
// its low 64 coefficient bits (the x^64 term is implicit). This particular
// polynomial is irreducible; any irreducible polynomial of degree 64 yields
// a well-distributed fingerprint.
const Poly uint64 = 0xbfe6b8a5bf378d83

// DefaultWindow is the sliding window size in bytes used by the chunker.
// 48 bytes is the common choice in deduplication systems (LBFS lineage).
const DefaultWindow = 48

// tables precomputed for one (Poly, window) combination.
type tables struct {
	// mod[b] is the reduction of polynomial b(x)*x^64 modulo P, used when
	// shifting a new byte in: fp' = ((fp << 8) | in) reduced via mod[fp>>56].
	mod [256]uint64
	// pop[b] is the contribution of byte b multiplied by x^(8*(window-1)),
	// i.e. the value to XOR out when byte b leaves the window.
	pop [256]uint64
}

var shared = newTables(DefaultWindow)

// tableCache memoizes newTables per window size: the mod half is
// window-independent and the pop half costs 256*(window-1) reduction steps,
// so recomputing it on every New with a non-default window is pure waste.
// Tables are immutable after construction, so sharing them is safe.
var tableCache sync.Map // int -> *tables

// tablesFor returns the (possibly cached) tables for a window size.
func tablesFor(window int) *tables {
	if window == DefaultWindow {
		return shared
	}
	if t, ok := tableCache.Load(window); ok {
		return t.(*tables)
	}
	t, _ := tableCache.LoadOrStore(window, newTables(window))
	return t.(*tables)
}

func newTables(window int) *tables {
	t := &tables{}
	// mod table: for each leading byte value b, compute (b(x) * x^64) mod P.
	for b := 0; b < 256; b++ {
		v := uint64(b)
		// v currently holds the byte's polynomial; multiply by x^64 one bit
		// at a time, reducing on overflow of the implicit x^64 term.
		for i := 0; i < 64; i++ {
			carry := v >> 63
			v <<= 1
			if carry != 0 {
				v ^= Poly
			}
		}
		t.mod[b] = v
	}
	// pop table: the contribution of a byte that entered the window
	// window-1 rolls ago, i.e. b(x) * x^(8*(window-1)) mod P. Roll XORs it
	// out immediately before shifting the window forward.
	for b := 0; b < 256; b++ {
		v := uint64(b)
		for i := 0; i < window-1; i++ {
			v = (v << 8) ^ t.mod[v>>56]
		}
		t.pop[b] = v
	}
	return t
}

// Hash maintains a rolling Rabin fingerprint over a fixed-size window.
// The zero value is not usable; create one with New.
type Hash struct {
	tab    *tables
	window int
	buf    []byte // circular buffer of the last `window` bytes
	pos    int
	fp     uint64
}

// New returns a rolling hash with the given window size. New panics if
// window is not positive.
func New(window int) *Hash {
	if window <= 0 {
		panic("rabin: window must be positive")
	}
	h := &Hash{tab: tablesFor(window), window: window, buf: make([]byte, window)}
	return h
}

// Reset restores the hash to its initial (empty-window) state.
func (h *Hash) Reset() {
	for i := range h.buf {
		h.buf[i] = 0
	}
	h.pos = 0
	h.fp = 0
}

// Roll slides the window forward by one byte and returns the updated
// fingerprint.
func (h *Hash) Roll(b byte) uint64 {
	out := h.buf[h.pos]
	h.buf[h.pos] = b
	h.pos++
	if h.pos == h.window {
		h.pos = 0
	}
	h.fp ^= h.tab.pop[out]
	h.fp = (h.fp << 8) ^ uint64(b) ^ h.tab.mod[h.fp>>56]
	return h.fp
}

// Update rolls the window forward over every byte of p in one call and
// returns the final fingerprint. It is equivalent to calling Roll for each
// byte but keeps the fingerprint, window position, and table pointers in
// locals for the whole scan, which is what makes the chunker's bulk path
// fast.
func (h *Hash) Update(p []byte) uint64 {
	fp, pos := h.fp, h.pos
	buf := h.buf
	window := h.window
	mod, pop := &h.tab.mod, &h.tab.pop
	for _, b := range p {
		out := buf[pos]
		buf[pos] = b
		pos++
		if pos == window {
			pos = 0
		}
		fp ^= pop[out]
		fp = (fp << 8) ^ uint64(b) ^ mod[fp>>56]
	}
	h.fp, h.pos = fp, pos
	return fp
}

// Scan rolls the window forward through p until the fingerprint after some
// byte satisfies fp&mask == magic. It returns the number of bytes consumed
// and whether the last consumed byte produced a match; consumed == len(p)
// with matched == false means p was exhausted without a match. Like Update,
// the whole scan runs on locals — this is the content-defined chunker's
// inner loop.
func (h *Hash) Scan(p []byte, mask, magic uint64) (consumed int, matched bool) {
	fp, pos := h.fp, h.pos
	buf := h.buf
	window := h.window
	mod, pop := &h.tab.mod, &h.tab.pop
	// Process p in runs bounded by the distance to the circular buffer's
	// wrap point, so the inner loop carries no wrap branch and indexes both
	// slices with the same induction variable (bounds checks hoist).
	for len(p) > 0 {
		run := window - pos
		if run > len(p) {
			run = len(p)
		}
		seg := p[:run]
		win := buf[pos : pos+run]
		for i := 0; i < len(seg); i++ {
			b := seg[i]
			out := win[i]
			win[i] = b
			fp ^= pop[out]
			fp = (fp << 8) ^ uint64(b) ^ mod[fp>>56]
			if fp&mask == magic {
				pos += i + 1
				if pos == window {
					pos = 0
				}
				h.fp, h.pos = fp, pos
				return consumed + i + 1, true
			}
		}
		consumed += run
		p = p[run:]
		pos += run
		if pos == window {
			pos = 0
		}
	}
	h.fp, h.pos = fp, pos
	return consumed, false
}

// ScanContig scans data[from:] for a position whose rolling fingerprint
// satisfies fp&mask == magic, exploiting that in a contiguous buffer the
// byte leaving the window at position j is simply data[j-window] — no
// circular window buffer is read or written at all. The caller must have
// established h's state over data[from-window:from] (e.g. with Update from
// a Reset hash), and from must be >= window. It returns the first matching
// position's end offset (cut, such that data[:cut] ends at the match) and
// whether a match occurred; without a match it returns len(data), false.
//
// ScanContig does not maintain the window buffer, so after it returns only
// a Reset (or a fresh chunk-start Update) may follow; Roll would observe a
// stale window. The content-defined chunker, which resets per chunk, is
// the intended caller.
func (h *Hash) ScanContig(data []byte, from int, mask, magic uint64) (cut int, matched bool) {
	if from < h.window {
		panic("rabin: ScanContig needs from >= window")
	}
	fp := h.fp
	mod, pop := &h.tab.mod, &h.tab.pop
	// Two views of data offset by the window width, trimmed to equal
	// length so the single induction variable needs no bounds checks: the
	// byte entering the window is lead[i], the byte leaving is lag[i].
	lead := data[from:]
	lag := data[from-h.window:]
	lag = lag[:len(lead)]
	for i := 0; i < len(lead); i++ {
		b := lead[i]
		out := lag[i]
		fp ^= pop[out]
		fp = (fp << 8) ^ uint64(b) ^ mod[fp>>56]
		if fp&mask == magic {
			h.fp = fp
			return from + i + 1, true
		}
	}
	h.fp = fp
	return len(data), false
}

// Sum64 returns the current fingerprint of the window contents.
func (h *Hash) Sum64() uint64 { return h.fp }

// Window returns the configured window size in bytes.
func (h *Hash) Window() int { return h.window }

// Fingerprint computes the Rabin fingerprint of data in one shot, as if the
// window covered the entire input. It is primarily a reference for testing
// the rolling update.
func Fingerprint(data []byte) uint64 {
	t := shared
	var fp uint64
	for _, b := range data {
		fp = (fp << 8) ^ uint64(b) ^ t.mod[fp>>56]
	}
	return fp
}
