package freqdedup_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"testing"

	"freqdedup"
)

func randBytes(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// TestByteLevelEndToEndAttack ties every layer together without the trace
// simulation: two versions of real byte data are chunked with real
// content-defined chunking and encrypted with real AES-based convergent
// encryption; the adversary sees only ciphertext fingerprints of the new
// version plus plaintext fingerprints of the old version, and the
// locality-based attack still recovers most of the mapping.
func TestByteLevelEndToEndAttack(t *testing.T) {
	// Version 1 (the auxiliary info) and version 2 (the target) share most
	// content; v2 has a clustered edit plus an appended tail. A hot block
	// recurs throughout (real data has popular content — the
	// ciphertext-only seed needs a stable frequency head).
	// 12 recurrences keeps every junction within the attack's v=15 window.
	hot := randBytes(9, 24<<10)
	var v1 []byte
	for i := int64(0); i < 12; i++ {
		v1 = append(v1, randBytes(100+i, 160<<10)...)
		v1 = append(v1, hot...)
	}
	v2 := append(append([]byte(nil), v1...), randBytes(2, 64<<10)...)
	copy(v2[512<<10:], randBytes(3, 16<<10))

	chunksOf := func(data []byte) []freqdedup.Chunk {
		c, err := freqdedup.NewContentDefinedChunker(bytes.NewReader(data), freqdedup.DefaultChunkingParams())
		if err != nil {
			t.Fatal(err)
		}
		var out []freqdedup.Chunk
		for {
			ch, err := c.Next()
			if err != nil {
				break
			}
			out = append(out, ch)
		}
		return out
	}

	// The auxiliary information: plaintext chunk stream of version 1.
	aux := &freqdedup.Backup{Label: "v1"}
	for _, ch := range chunksOf(v1) {
		aux.Chunks = append(aux.Chunks, freqdedup.ChunkRef{FP: ch.Fingerprint, Size: uint32(ch.Size())})
	}

	// The target: version 2, convergently encrypted chunk by chunk. The
	// adversary observes ciphertext fingerprints; ground truth maps them
	// back to the plaintext fingerprints.
	target := &freqdedup.Backup{Label: "v2"}
	truth := make(freqdedup.GroundTruth)
	for _, ch := range chunksOf(v2) {
		key := freqdedup.ConvergentKey(ch.Data)
		ct := freqdedup.EncryptDeterministic(key, ch.Data)
		cfp := freqdedup.FingerprintOf(ct)
		target.Chunks = append(target.Chunks, freqdedup.ChunkRef{FP: cfp, Size: uint32(len(ct))})
		truth[cfp] = ch.Fingerprint
	}

	cfg := freqdedup.DefaultLocalityConfig()
	pairs := freqdedup.LocalityAttack(target, aux, cfg)
	rate := freqdedup.InferenceRate(pairs, truth, target)
	if rate < 0.5 {
		t.Fatalf("byte-level locality attack inferred only %.1f%% of the target", rate*100)
	}

	basic := freqdedup.InferenceRate(freqdedup.BasicAttack(target, aux), truth, target)
	if basic >= rate {
		t.Fatalf("basic attack (%.3f) should not beat the locality attack (%.3f)", basic, rate)
	}
}

// TestFacadeDefensePipeline exercises the trace-level defense API through
// the facade: encrypt a backup under each scheme and verify the attack
// ordering MLE > MinHash > Combined.
func TestFacadeDefensePipeline(t *testing.T) {
	p := freqdedup.DefaultSyntheticParams()
	p.InitialBytes = 8 << 20
	p.Snapshots = 4
	d := freqdedup.GenerateSynthetic(p)
	aux := d.Backups[len(d.Backups)-2]
	target := d.Backups[len(d.Backups)-1]

	rates := make(map[freqdedup.DefenseScheme]float64)
	for _, scheme := range []freqdedup.DefenseScheme{
		freqdedup.SchemeMLE, freqdedup.SchemeMinHash, freqdedup.SchemeCombined,
	} {
		enc, err := freqdedup.EncryptWithScheme(target, scheme, 7)
		if err != nil {
			t.Fatal(err)
		}
		leaked := freqdedup.SampleLeaked(enc.Backup, enc.Truth, 0.002, 1)
		cfg := freqdedup.LocalityConfig{
			U: 1, V: 15, W: 500000,
			Mode:   freqdedup.KnownPlaintext,
			Leaked: leaked,
		}
		rates[scheme] = freqdedup.InferenceRate(
			freqdedup.LocalityAttack(enc.Backup, aux, cfg), enc.Truth, enc.Backup)
	}
	if rates[freqdedup.SchemeMLE] < 0.05 {
		t.Fatalf("undefended baseline too weak for a meaningful test: %.3f", rates[freqdedup.SchemeMLE])
	}
	if rates[freqdedup.SchemeCombined] > rates[freqdedup.SchemeMLE]/4 {
		t.Fatalf("combined defense ineffective: %.4f vs MLE %.4f",
			rates[freqdedup.SchemeCombined], rates[freqdedup.SchemeMLE])
	}
}

// TestFacadeKeyManagerRoundTrip runs server-aided MLE through the facade's
// network key manager, driving the byte-level pipeline through the
// Repository front door.
func TestFacadeKeyManagerRoundTrip(t *testing.T) {
	var token [32]byte
	copy(token[:], "integration token")
	srv, err := freqdedup.NewKeyServer(freqdedup.KeyServerConfig{
		Secret: []byte("integration secret"),
		Token:  token,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	client, err := freqdedup.DialKeyManager(ln.Addr().String(), token)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	repo, err := freqdedup.CreateRepository("",
		freqdedup.WithEncryption(freqdedup.EncServerAided),
		freqdedup.WithKeyDeriver(client),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	ctx := context.Background()
	data := randBytes(5, 512<<10)
	if _, err := repo.Backup(ctx, "net-backup", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := repo.Restore(ctx, "net-backup", &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("restore through network key manager failed")
	}
}

// TestFacadeDatasetCodec round-trips a dataset through the facade.
func TestFacadeDatasetCodec(t *testing.T) {
	p := freqdedup.DefaultVMParams()
	p.Students = 3
	p.BaseImageBytes = 1 << 20
	p.Weeks = 3
	d := freqdedup.GenerateVM(p)
	var buf bytes.Buffer
	if err := freqdedup.WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := freqdedup.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || len(got.Backups) != len(d.Backups) {
		t.Fatal("dataset codec round trip failed")
	}
}

// ExampleBasicAttack demonstrates classical frequency analysis on a toy
// stream (the paper's Figure 3 setting).
func ExampleBasicAttack() {
	fp := func(b byte) freqdedup.Fingerprint { return freqdedup.FingerprintOf([]byte{b}) }
	mk := func(ids ...byte) *freqdedup.Backup {
		b := &freqdedup.Backup{}
		for _, id := range ids {
			b.Chunks = append(b.Chunks, freqdedup.ChunkRef{FP: fp(id), Size: 4096})
		}
		return b
	}
	// M and C have matching frequency distributions; the top-frequency
	// chunk pairs correctly.
	m := mk(1, 2, 1, 2, 3, 4, 2, 3, 4)
	c := mk(11, 12, 15, 12, 11, 12, 13, 14, 12, 13, 14, 14)
	pairs := freqdedup.BasicAttack(c, m)
	fmt.Println(len(pairs) > 0 && pairs[0].C == fp(12) && pairs[0].M == fp(2))
	// Output: true
}
