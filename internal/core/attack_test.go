package core

import (
	"testing"

	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

// fp builds fingerprints for compact test streams.
func fp(v uint64) fphash.Fingerprint { return fphash.FromUint64(v) }

// stream builds a backup from fingerprint IDs with uniform size.
func stream(label string, size uint32, ids ...uint64) *trace.Backup {
	b := &trace.Backup{Label: label}
	for _, id := range ids {
		b.Chunks = append(b.Chunks, trace.ChunkRef{FP: fp(id), Size: size})
	}
	return b
}

// paperExample reproduces the worked example of Figure 3:
//
//	M = <M1, M2, M1, M2, M3, M4, M2, M3, M4>
//	C = <C1, C2, C5, C2, C1, C2, C3, C4, C2, C3, C4, C4>
//
// with ground truth Ci <-> Mi for i = 1..4 and C5 new. Ciphertext IDs are
// 1..5, plaintext IDs are 101..104.
func paperExample() (c, m *trace.Backup, truth GroundTruth) {
	m = stream("prior", 4096, 101, 102, 101, 102, 103, 104, 102, 103, 104)
	c = stream("latest", 4096, 1, 2, 5, 2, 1, 2, 3, 4, 2, 3, 4, 4)
	truth = GroundTruth{
		fp(1): fp(101), fp(2): fp(102), fp(3): fp(103), fp(4): fp(104),
		// fp(5) encrypts a plaintext chunk absent from M.
		fp(5): fp(999),
	}
	return c, m, truth
}

func TestLocalityAttackPaperExample(t *testing.T) {
	c, m, truth := paperExample()
	cfg := LocalityConfig{U: 1, V: 1, W: 0, Mode: CiphertextOnly}
	pairs := LocalityAttack(c, m, cfg)

	inferred := make(map[fphash.Fingerprint]fphash.Fingerprint)
	for _, p := range pairs {
		inferred[p.C] = p.M
	}
	// The paper's walk-through: C1..C4 are all inferred correctly, C5 is
	// not inferable because its plaintext does not appear in M.
	for i := uint64(1); i <= 4; i++ {
		if inferred[fp(i)] != truth[fp(i)] {
			t.Errorf("C%d inferred as %v, want M%d", i, inferred[fp(i)], i)
		}
	}
	if got, ok := inferred[fp(5)]; ok && got == truth[fp(5)] {
		t.Error("C5 must not be correctly inferable (plaintext not in M)")
	}
	if rate := InferenceRate(pairs, truth, c); rate != 0.8 {
		t.Errorf("inference rate = %.2f, want 0.80 (4 of 5 unique chunks)", rate)
	}
}

func TestBasicAttackWeakOnPaperExample(t *testing.T) {
	c, m, truth := paperExample()
	basic := InferenceRate(BasicAttack(c, m), truth, c)
	locality := InferenceRate(LocalityAttack(c, m, LocalityConfig{U: 1, V: 1}), truth, c)
	if basic >= locality {
		t.Fatalf("basic attack (%.2f) should be weaker than locality attack (%.2f)", basic, locality)
	}
	// The top-frequency pair (C2, M2) is matched even by the basic attack.
	pairs := BasicAttack(c, m)
	if pairs[0].C != fp(2) || pairs[0].M != fp(102) {
		t.Fatalf("top-frequency pair = %v, want (C2, M2)", pairs[0])
	}
}

func TestBasicAttackPairsUnique(t *testing.T) {
	c, m, _ := paperExample()
	pairs := BasicAttack(c, m)
	seenC := make(map[fphash.Fingerprint]bool)
	seenM := make(map[fphash.Fingerprint]bool)
	for _, p := range pairs {
		if seenC[p.C] || seenM[p.M] {
			t.Fatal("basic attack repeated a chunk in its matching")
		}
		seenC[p.C], seenM[p.M] = true, true
	}
	// min(|F_C|, |F_M|) = min(5, 4) = 4 pairs.
	if len(pairs) != 4 {
		t.Fatalf("got %d pairs, want 4", len(pairs))
	}
}

func TestLocalityAttackInferredCUnique(t *testing.T) {
	c, m, _ := paperExample()
	pairs := LocalityAttack(c, m, DefaultLocalityConfig())
	seen := make(map[fphash.Fingerprint]bool)
	for _, p := range pairs {
		if seen[p.C] {
			t.Fatalf("ciphertext chunk %v inferred twice", p.C)
		}
		seen[p.C] = true
	}
}

func TestLocalityAttackDeterministic(t *testing.T) {
	c, m, _ := paperExample()
	a := LocalityAttack(c, m, DefaultLocalityConfig())
	b := LocalityAttack(c, m, DefaultLocalityConfig())
	if len(a) != len(b) {
		t.Fatal("nondeterministic result size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic pair %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestKnownPlaintextSeeding(t *testing.T) {
	// Without any frequency skew, ciphertext-only seeding can fail; leaked
	// pairs must still drive inference. Build two identical chains with
	// all-distinct chunks (every frequency 1).
	ids := make([]uint64, 50)
	mids := make([]uint64, 50)
	for i := range ids {
		ids[i] = uint64(i + 1)
		mids[i] = uint64(i + 1001)
	}
	c := stream("latest", 4096, ids...)
	m := stream("prior", 4096, mids...)
	truth := make(GroundTruth)
	for i := range ids {
		truth[fp(ids[i])] = fp(mids[i])
	}
	leak := []Pair{{C: fp(25), M: fp(1025)}} // one correct leaked pair mid-stream
	cfg := LocalityConfig{U: 1, V: 5, W: 0, Mode: KnownPlaintext, Leaked: leak}
	rate := InferenceRate(LocalityAttack(c, m, cfg), truth, c)
	if rate < 0.95 {
		t.Fatalf("known-plaintext on identical chains inferred only %.2f", rate)
	}
}

func TestKnownPlaintextIgnoresForeignLeaks(t *testing.T) {
	c, m, _ := paperExample()
	cfg := LocalityConfig{
		U: 1, V: 1, Mode: KnownPlaintext,
		Leaked: []Pair{
			{C: fp(777), M: fp(102)}, // C not in stream
			{C: fp(2), M: fp(888)},   // M not in aux
		},
	}
	pairs := LocalityAttack(c, m, cfg)
	if len(pairs) != 0 {
		t.Fatalf("foreign leaked pairs should seed nothing, got %d pairs", len(pairs))
	}
}

func TestLocalityAttackWBoundLimitsQueue(t *testing.T) {
	// A tiny w must not break correctness of already-inferred pairs, only
	// limit propagation; with w=1 on the paper example propagation is
	// throttled but the seed remains.
	c, m, truth := paperExample()
	pairs := LocalityAttack(c, m, LocalityConfig{U: 1, V: 1, W: 1})
	if len(pairs) == 0 {
		t.Fatal("no pairs inferred with bounded queue")
	}
	full := LocalityAttack(c, m, LocalityConfig{U: 1, V: 1, W: 0})
	if len(pairs) > len(full) {
		t.Fatal("bounded queue inferred more than unbounded")
	}
	_ = truth
}

func TestAdvancedAttackUsesSizes(t *testing.T) {
	// Two chunks with equal frequencies but different sizes: plain
	// frequency analysis can confuse them (tie), the size-aware variant
	// cannot.
	//
	// C stream: A A B B  (A size 1000, B size 2000)
	// M stream: a a b b  (a size 1000, b size 2000)
	c := &trace.Backup{Label: "c", Chunks: []trace.ChunkRef{
		{FP: fp(1), Size: 1000}, {FP: fp(1), Size: 1000},
		{FP: fp(2), Size: 2000}, {FP: fp(2), Size: 2000},
	}}
	m := &trace.Backup{Label: "m", Chunks: []trace.ChunkRef{
		{FP: fp(101), Size: 1000}, {FP: fp(101), Size: 1000},
		{FP: fp(102), Size: 2000}, {FP: fp(102), Size: 2000},
	}}
	truth := GroundTruth{fp(1): fp(101), fp(2): fp(102)}
	cfg := LocalityConfig{U: 2, V: 2, SizeAware: true}
	rate := InferenceRate(LocalityAttack(c, m, cfg), truth, c)
	if rate != 1.0 {
		t.Fatalf("size-aware attack rate = %.2f, want 1.0 on size-separable chunks", rate)
	}
}

func TestBlocksClassification(t *testing.T) {
	cases := []struct {
		size uint32
		want uint32
	}{{1, 1}, {16, 1}, {17, 2}, {4096, 256}, {4097, 257}}
	for _, c := range cases {
		if got := blocks(c.size); got != c.want {
			t.Errorf("blocks(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestInferenceRate(t *testing.T) {
	target := stream("t", 4096, 1, 2, 3, 3)
	truth := GroundTruth{fp(1): fp(101), fp(2): fp(102), fp(3): fp(103)}
	pairs := []Pair{
		{C: fp(1), M: fp(101)}, // correct
		{C: fp(2), M: fp(999)}, // wrong
		{C: fp(9), M: fp(103)}, // not in target: must not count
	}
	if got := InferenceRate(pairs, truth, target); got != 1.0/3.0 {
		t.Fatalf("rate = %v, want 1/3", got)
	}
	if got := InferenceRate(nil, truth, target); got != 0 {
		t.Fatalf("empty inference rate = %v, want 0", got)
	}
}

func TestSampleLeaked(t *testing.T) {
	ids := make([]uint64, 1000)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	target := stream("t", 4096, ids...)
	truth := make(GroundTruth, len(ids))
	for _, id := range ids {
		truth[fp(id)] = fp(id + 10000)
	}
	leaked := SampleLeaked(target, truth, 0.05, 7)
	if len(leaked) != 50 {
		t.Fatalf("leaked %d pairs, want 50 (5%% of 1000 unique)", len(leaked))
	}
	for _, p := range leaked {
		if truth[p.C] != p.M {
			t.Fatal("leaked pair is not ground truth")
		}
	}
	// Reproducible under the same seed, different under another.
	again := SampleLeaked(target, truth, 0.05, 7)
	if len(again) != len(leaked) || again[0] != leaked[0] {
		t.Fatal("SampleLeaked not reproducible for fixed seed")
	}
	if SampleLeaked(target, truth, 0, 7) != nil {
		t.Fatal("zero leakage should return nil")
	}
	if got := SampleLeaked(target, truth, 2.0, 7); len(got) != 1000 {
		t.Fatalf("leakage >1 should clamp to all uniques, got %d", len(got))
	}
}

func TestModeString(t *testing.T) {
	if CiphertextOnly.String() != "ciphertext-only" || KnownPlaintext.String() != "known-plaintext" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should still print")
	}
}

func TestCountStream(t *testing.T) {
	b := stream("b", 4096, 1, 2, 1, 3)
	f, l, r := countStream(b)
	statOf := func(id uint64) stat {
		s, ok := f.get(fp(id))
		if !ok {
			t.Fatalf("chunk %d missing from frequency table", id)
		}
		return s
	}
	if statOf(1).count != 2 || statOf(2).count != 1 || statOf(3).count != 1 {
		t.Fatalf("frequencies wrong: %v", f.entries)
	}
	// First-seen positions for tie-breaking.
	if statOf(1).first != 0 || statOf(2).first != 1 || statOf(3).first != 3 {
		t.Fatalf("first positions wrong: %v", f.entries)
	}
	if l[fp(2)][fp(1)].count != 1 || l[fp(1)][fp(2)].count != 1 || l[fp(3)][fp(1)].count != 1 {
		t.Fatalf("left neighbors wrong: %v", l)
	}
	if r[fp(1)][fp(2)].count != 1 || r[fp(2)][fp(1)].count != 1 || r[fp(1)][fp(3)].count != 1 {
		t.Fatalf("right neighbors wrong: %v", r)
	}
	if len(l[fp(1)]) != 1 { // first occurrence has no left neighbor
		t.Fatalf("left table for first chunk wrong: %v", l[fp(1)])
	}
}

// TestIdenticalBackupsHighInference is the best-case sanity check: when the
// auxiliary backup equals the target's plaintext and frequencies are
// skewed, the locality attack should recover most of the stream.
func TestIdenticalBackupsHighInference(t *testing.T) {
	// Build a stream with several recurring anchor chunks and unique
	// filler. Each anchor recurs 5 times, so its neighbor sets fit within
	// v=15 and propagation reaches every block; a single over-popular
	// anchor would throttle coverage (its tie set exceeds v), which is the
	// coverage-limiting behaviour the paper observes on real traces.
	var ids []uint64
	next := uint64(100)
	for i := 0; i < 40; i++ {
		ids = append(ids, uint64(1+i%8)) // anchors 1..8, 5 occurrences each
		for j := 0; j < 20; j++ {
			next++
			ids = append(ids, next)
		}
	}
	m := stream("prior", 4096, func() []uint64 {
		out := make([]uint64, len(ids))
		for i, id := range ids {
			out[i] = id + 100000
		}
		return out
	}()...)
	c := stream("latest", 4096, ids...)
	truth := make(GroundTruth)
	for _, id := range ids {
		truth[fp(id)] = fp(id + 100000)
	}
	rate := InferenceRate(LocalityAttack(c, m, DefaultLocalityConfig()), truth, c)
	if rate < 0.9 {
		t.Fatalf("identical-content inference rate %.2f, want >= 0.9", rate)
	}
}

func TestLocalityAttackStats(t *testing.T) {
	c, m, _ := paperExample()
	pairs, stats := LocalityAttackWithStats(c, m, LocalityConfig{U: 1, V: 1, W: 0})
	if stats.Seeds != 1 {
		t.Fatalf("seeds = %d, want 1 (u=1)", stats.Seeds)
	}
	if stats.Inferred != len(pairs) {
		t.Fatalf("stats.Inferred = %d, pairs = %d", stats.Inferred, len(pairs))
	}
	if stats.Iterations < stats.Seeds || stats.Iterations > stats.Inferred {
		t.Fatalf("iterations %d outside [seeds, inferred] = [%d, %d]",
			stats.Iterations, stats.Seeds, stats.Inferred)
	}
	if stats.PeakQueue < 1 {
		t.Fatalf("peak queue = %d, expected >= 1", stats.PeakQueue)
	}
	if stats.DroppedByW != 0 {
		t.Fatalf("unbounded queue dropped %d pairs", stats.DroppedByW)
	}
}

func TestLocalityAttackStatsWBound(t *testing.T) {
	// Force drops with a frequent-anchor stream and w=1.
	var ids []uint64
	next := uint64(100)
	for i := 0; i < 20; i++ {
		ids = append(ids, uint64(1+i%4))
		for j := 0; j < 5; j++ {
			next++
			ids = append(ids, next)
		}
	}
	mids := make([]uint64, len(ids))
	for i, id := range ids {
		mids[i] = id + 100000
	}
	c := stream("c", 4096, ids...)
	m := stream("m", 4096, mids...)
	_, stats := LocalityAttackWithStats(c, m, LocalityConfig{U: 1, V: 15, W: 1})
	if stats.DroppedByW == 0 {
		t.Fatal("w=1 should drop pairs on a branching stream")
	}
	if stats.PeakQueue > 2 {
		t.Fatalf("peak queue %d exceeds w=1 bound (+1 in-flight)", stats.PeakQueue)
	}
}

// TestRankLargeTableInPlace: above rankIndexThreshold rank switches to an
// index-based sort; both paths must leave the input slice ranked and return
// it (the advanced attack's size classifier, among others, relies on the
// in-place contract).
func TestRankLargeTableInPlace(t *testing.T) {
	n := rankIndexThreshold + 7
	entries := make([]freqEntry, n)
	for i := range entries {
		entries[i] = freqEntry{
			fp:   fp(uint64(i + 1)),
			stat: stat{count: int32(i + 1), first: int32(i)},
			size: 4096,
		}
	}
	ranked := rank(entries, false)
	for i := 1; i < n; i++ {
		if entries[i-1].stat.count < entries[i].stat.count {
			t.Fatalf("input slice not ranked in place at %d: count %d before %d",
				i, entries[i-1].stat.count, entries[i].stat.count)
		}
	}
	if len(ranked) != n {
		t.Fatalf("returned slice has %d entries, want %d", len(ranked), n)
	}
	for i := range ranked {
		if ranked[i] != entries[i] {
			t.Fatalf("returned slice diverges from ranked input at %d", i)
		}
	}
}

// TestFreqAnalysisBySizeLargeClass: a size class holding more unique chunks
// than rankIndexThreshold must still be matched in frequency order, not
// first-occurrence order. Regression test: classify discarded rank's return
// value, which only happened to work below the index-sort threshold, so any
// realistic fixed-size trace (one giant size class) was silently
// rank-matched in arrival order.
func TestFreqAnalysisBySizeLargeClass(t *testing.T) {
	n := rankIndexThreshold + 100
	ec := make([]freqEntry, 0, n)
	em := make([]freqEntry, 0, n)
	for i := 0; i < n; i++ {
		// Ciphertext entries arrive in ascending frequency, plaintext in
		// descending; only genuinely ranked matching pairs equal counts.
		ec = append(ec, freqEntry{
			fp:   fp(uint64(i + 1)),
			stat: stat{count: int32(i + 1), first: int32(i)},
			size: 4096,
		})
		em = append(em, freqEntry{
			fp:   fp(uint64(1_000_000 + i)),
			stat: stat{count: int32(n - i), first: int32(i)},
			size: 4096,
		})
	}
	countOf := make(map[fphash.Fingerprint]int32, 2*n)
	for _, e := range ec {
		countOf[e.fp] = e.stat.count
	}
	for _, e := range em {
		countOf[e.fp] = e.stat.count
	}
	pairs := freqAnalysisBySize(ec, em, 0, false)
	if len(pairs) != n {
		t.Fatalf("got %d pairs, want %d", len(pairs), n)
	}
	for _, p := range pairs {
		if countOf[p.C] != countOf[p.M] {
			t.Fatalf("pair (%v, %v) matches count %d with count %d; size class not rank-matched",
				p.C, p.M, countOf[p.C], countOf[p.M])
		}
	}
}
