package faultio

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"freqdedup/internal/container"
	"freqdedup/internal/fphash"
)

func writeFile(t *testing.T, m *MemFS, name string, data []byte, sync bool) {
	t.Helper()
	f, err := m.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("OpenFile(%s): %v", name, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("Write(%s): %v", name, err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatalf("Sync(%s): %v", name, err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close(%s): %v", name, err)
	}
}

func readFile(t *testing.T, m *MemFS, name string) []byte {
	t.Helper()
	f, err := m.Open(name)
	if err != nil {
		t.Fatalf("Open(%s): %v", name, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		t.Fatalf("Stat(%s): %v", name, err)
	}
	buf := make([]byte, st.Size())
	if st.Size() > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatalf("ReadAt(%s): %v", name, err)
		}
	}
	return buf
}

// Only fsynced content survives a crash; never-synced files vanish.
func TestCrashImageDurability(t *testing.T) {
	m := NewMemFS()
	writeFile(t, m, "dir/synced", []byte("durable"), true)
	writeFile(t, m, "dir/unsynced", []byte("volatile"), false)

	// Append past the sync without syncing again: the tail is volatile.
	f, err := m.OpenFile("dir/synced", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte(" tail"), 7); err != nil {
		t.Fatal(err)
	}
	f.Close()

	img := m.CrashImage()
	if got := string(readFile(t, img, "dir/synced")); got != "durable" {
		t.Fatalf("crash image content = %q, want %q", got, "durable")
	}
	if _, err := img.Open("dir/unsynced"); err == nil {
		t.Fatal("never-synced file survived the crash")
	}
	// The live fs still sees everything.
	if got := string(readFile(t, m, "dir/synced")); got != "durable tail" {
		t.Fatalf("live content = %q", got)
	}
}

// A write-error rule fires on the Nth match and wraps ErrInjected.
func TestRuleInjection(t *testing.T) {
	m := NewMemFSPlan(Plan{Seed: 1, Rules: []Rule{
		{Op: OpWrite, PathGlob: "victim", Nth: 2, Fault: Fault{}},
	}})
	writeFile(t, m, "bystander", []byte("x"), true)
	f, err := m.OpenFile("victim", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatalf("first write should pass: %v", err)
	}
	_, err = f.Write([]byte("second"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("second write error = %v, want ErrInjected", err)
	}
	if _, err := f.Write([]byte("third")); err != nil {
		t.Fatalf("rule should fire once: %v", err)
	}
}

// Crash-at-op fails the Nth mutating op and everything after it; reads
// never tick the clock.
func TestCrashAtOp(t *testing.T) {
	m := NewMemFSPlan(Plan{CrashAtOp: 3})
	writeFile(t, m, "a", []byte("1"), false) // ops 1 (create) + 2 (write)
	if _, err := m.Stat("a"); err != nil {
		t.Fatalf("read op should not crash: %v", err)
	}
	f, _ := m.OpenFile("a", os.O_RDWR, 0)
	_, err := f.Write([]byte("2")) // op 3: crash
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("op 3 error = %v, want ErrCrashed", err)
	}
	if _, err := m.OpenFile("b", os.O_RDWR|os.O_CREATE, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op error = %v, want ErrCrashed", err)
	}
}

// The same plan injects identical faults: torn-write prefixes included.
func TestDeterminism(t *testing.T) {
	run := func() []byte {
		m := NewMemFSPlan(Plan{Seed: 42, Rules: []Rule{
			{Op: OpWrite, Nth: 2, Fault: Fault{ShortWrite: true}},
		}})
		f, err := m.OpenFile("f", os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("head-")); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("torn-write-body")); !errors.Is(err, ErrInjected) {
			t.Fatalf("want injected error, got %v", err)
		}
		f.Sync()
		f.Close()
		return readFile(t, m, "f")
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same seed, different torn writes: %q vs %q", a, b)
	}
	if string(a) == "head-torn-write-body" {
		t.Fatal("short write wrote the full buffer")
	}
}

func testContainer(id int, seed byte) *container.Container {
	data := make([]byte, 64)
	for i := range data {
		data[i] = seed + byte(i)
	}
	fp := fphash.FromBytes(data)
	return &container.Container{
		ID:      id,
		Entries: []container.Entry{{FP: fp, Size: uint32(len(data)), Data: data}},
		Bytes:   len(data),
	}
}

// The real FileBackend running on MemFS: sealed containers survive a
// crash image, the unsealed tail does not exist, and a post-fsync bit
// flip surfaces as ErrCorrupt on Load — never as wrong bytes.
func TestFileBackendOnMemFS(t *testing.T) {
	m := NewMemFS()
	fb, err := container.CreateFileBackendFS(m, "store", 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 3; id++ {
		if err := fb.Seal(0, testContainer(id, byte(id))); err != nil {
			t.Fatalf("seal %d: %v", id, err)
		}
	}
	fb.Close()

	img := m.CrashImage()
	fb2, err := container.OpenFileBackendFS(img, "store")
	if err != nil {
		t.Fatalf("reopen from crash image: %v", err)
	}
	defer fb2.Close()
	for id := 0; id < 3; id++ {
		c, err := fb2.Load(0, id)
		if err != nil {
			t.Fatalf("load %d: %v", id, err)
		}
		want := testContainer(id, byte(id))
		if string(c.Entries[0].Data) != string(want.Entries[0].Data) {
			t.Fatalf("container %d bytes differ after crash", id)
		}
	}

	// Post-fsync corruption: flip a bit inside the shard file's data
	// region and expect a loud ErrCorrupt.
	if err := img.CorruptAt("store/shard-0000.fdc", 60, 0x10); err != nil {
		t.Fatal(err)
	}
	if _, err := fb2.Load(0, 0); !errors.Is(err, container.ErrCorrupt) {
		t.Fatalf("load of corrupted container = %v, want ErrCorrupt", err)
	}
}

// RetryBackend retries transient faults with seeded backoff and returns
// permanent errors immediately.
func TestRetryBackend(t *testing.T) {
	mem := container.NewMemBackend(1)
	flaky := NewFaultBackend(mem, Plan{Seed: 7, Rules: []Rule{
		{Op: OpSeal, Nth: 1, Count: 2, Fault: Fault{Transient: true}},
	}})
	var sleeps []time.Duration
	rb := NewRetryBackend(flaky, RetryPolicy{
		MaxRetries: 3,
		BaseDelay:  8 * time.Millisecond,
		Seed:       7,
		Sleep:      func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	if err := rb.Seal(0, testContainer(0, 9)); err != nil {
		t.Fatalf("seal through two transient faults: %v", err)
	}
	if len(sleeps) != 2 {
		t.Fatalf("retries = %d, want 2 (sleeps %v)", len(sleeps), sleeps)
	}
	for i, d := range sleeps {
		if d <= 0 || d > time.Second {
			t.Fatalf("sleep %d = %v out of range", i, d)
		}
	}
	if _, err := rb.Load(0, 99); !errors.Is(err, container.ErrNotFound) {
		t.Fatalf("load missing = %v, want ErrNotFound (unretried)", err)
	}
	if rb.Retries != 2 {
		t.Fatalf("Retries = %d, want 2 (permanent error must not retry)", rb.Retries)
	}
}

// A non-transient injected fault is permanent by default classification
// only when marked; unmarked errors retry.
func TestRetryClassification(t *testing.T) {
	cases := []struct {
		err       error
		permanent bool
	}{
		{container.ErrCorrupt, true},
		{container.ErrNotFound, true},
		{container.ErrSalvaged, true},
		{ErrCrashed, true},
		{fmt.Errorf("wrapped: %w", container.ErrCorrupt), true},
		{errors.New("io flake"), false},
		{MarkTransient(errors.New("flake")), false},
		{permanentErr{errors.New("gave up")}, true},
	}
	for _, c := range cases {
		if got := Permanent(c.err); got != c.permanent {
			t.Errorf("Permanent(%v) = %v, want %v", c.err, got, c.permanent)
		}
	}
}

// Sync points are recorded at acknowledged syncs only.
func TestSyncPoints(t *testing.T) {
	m := NewMemFSPlan(Plan{Seed: 3, Rules: []Rule{
		{Op: OpSync, PathGlob: "b", Fault: Fault{}},
	}})
	writeFile(t, m, "a", []byte("x"), true) // create + write + sync
	f, _ := m.OpenFile("b", os.O_RDWR|os.O_CREATE, 0o644)
	f.Write([]byte("y"))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync of b = %v, want injected failure", err)
	}
	pts := m.Injector().SyncPoints()
	if len(pts) != 1 {
		t.Fatalf("sync points = %v, want exactly the acknowledged sync", pts)
	}
}

// A failed sync leaves the durable view at its previous state.
func TestFailedSyncNotDurable(t *testing.T) {
	m := NewMemFSPlan(Plan{Seed: 5, Rules: []Rule{
		{Op: OpSync, Nth: 2, Fault: Fault{}},
	}})
	f, err := m.OpenFile("f", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("v1"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("v2"), 0)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync = %v, want injected failure", err)
	}
	if got := string(readFile(t, m.CrashImage(), "f")); got != "v1" {
		t.Fatalf("durable content after failed sync = %q, want %q", got, "v1")
	}
}
