package chunker

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"freqdedup/internal/fphash"
)

func randBytes(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

func reassemble(t *testing.T, chunks []Chunk) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, c := range chunks {
		buf.Write(c.Data)
	}
	return buf.Bytes()
}

func TestFixedExactMultiple(t *testing.T) {
	data := randBytes(1, 4096*4)
	chunks, err := All(NewFixed(bytes.NewReader(data), 4096))
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 4 {
		t.Fatalf("got %d chunks, want 4", len(chunks))
	}
	for i, c := range chunks {
		if c.Size() != 4096 {
			t.Errorf("chunk %d size %d, want 4096", i, c.Size())
		}
		if c.Offset != int64(i)*4096 {
			t.Errorf("chunk %d offset %d, want %d", i, c.Offset, i*4096)
		}
		if c.Fingerprint != fphash.FromBytes(c.Data) {
			t.Errorf("chunk %d fingerprint mismatch", i)
		}
	}
	if !bytes.Equal(reassemble(t, chunks), data) {
		t.Fatal("reassembled data differs from input")
	}
}

func TestFixedTrailingShortChunk(t *testing.T) {
	data := randBytes(2, 4096+100)
	chunks, err := All(NewFixed(bytes.NewReader(data), 4096))
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 2 {
		t.Fatalf("got %d chunks, want 2", len(chunks))
	}
	if chunks[1].Size() != 100 {
		t.Fatalf("trailing chunk size %d, want 100", chunks[1].Size())
	}
	if !bytes.Equal(reassemble(t, chunks), data) {
		t.Fatal("reassembled data differs from input")
	}
}

func TestFixedEmptyInput(t *testing.T) {
	chunks, err := All(NewFixed(bytes.NewReader(nil), 4096))
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 0 {
		t.Fatalf("got %d chunks from empty input, want 0", len(chunks))
	}
}

func TestFixedPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFixed(0) did not panic")
		}
	}()
	NewFixed(bytes.NewReader(nil), 0)
}

type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }

func TestFixedPropagatesReadError(t *testing.T) {
	boom := errors.New("boom")
	_, err := NewFixed(errReader{boom}, 16).Next()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestCDCPropagatesReadError(t *testing.T) {
	boom := errors.New("boom")
	c, err := NewContentDefined(errReader{boom}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"default", DefaultParams(), true},
		{"zero min", Params{Min: 0, Avg: 8, Max: 16}, false},
		{"min>avg", Params{Min: 9, Avg: 8, Max: 16}, false},
		{"avg>max", Params{Min: 2, Avg: 32, Max: 16}, false},
		{"avg not pow2", Params{Min: 2, Avg: 12, Max: 16}, false},
		{"negative window", Params{Min: 2, Avg: 8, Max: 16, Window: -1}, false},
		{"tight", Params{Min: 8, Avg: 8, Max: 8}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() err = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestCDCReassembly(t *testing.T) {
	data := randBytes(3, 1<<20)
	c, err := NewContentDefined(bytes.NewReader(data), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := All(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reassemble(t, chunks), data) {
		t.Fatal("reassembled data differs from input")
	}
	// Offsets must be contiguous.
	var off int64
	for i, ch := range chunks {
		if ch.Offset != off {
			t.Fatalf("chunk %d offset %d, want %d", i, ch.Offset, off)
		}
		off += int64(ch.Size())
	}
}

func TestCDCSizeBounds(t *testing.T) {
	data := randBytes(4, 1<<20)
	p := DefaultParams()
	c, err := NewContentDefined(bytes.NewReader(data), p)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := All(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("too few chunks: %d", len(chunks))
	}
	for i, ch := range chunks {
		if ch.Size() > p.Max {
			t.Errorf("chunk %d size %d exceeds max %d", i, ch.Size(), p.Max)
		}
		if i < len(chunks)-1 && ch.Size() < p.Min {
			t.Errorf("non-final chunk %d size %d below min %d", i, ch.Size(), p.Min)
		}
	}
}

func TestCDCAverageSize(t *testing.T) {
	data := randBytes(5, 4<<20)
	p := DefaultParams()
	c, err := NewContentDefined(bytes.NewReader(data), p)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := All(c)
	if err != nil {
		t.Fatal(err)
	}
	avg := len(data) / len(chunks)
	// With min/max clamping the realized average for an 8K target typically
	// lands in [5K, 13K]; just assert it is in the right ballpark.
	if avg < p.Avg/2 || avg > p.Max {
		t.Fatalf("average chunk size %d far from target %d", avg, p.Avg)
	}
}

// TestCDCContentShift is the defining property of content-defined chunking:
// inserting bytes near the front must not change chunk boundaries far from
// the edit, so most chunks (and their fingerprints) are preserved.
func TestCDCContentShift(t *testing.T) {
	data := randBytes(6, 1<<20)
	chunksOf := func(b []byte) map[fphash.Fingerprint]bool {
		c, err := NewContentDefined(bytes.NewReader(b), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		chunks, err := All(c)
		if err != nil {
			t.Fatal(err)
		}
		set := make(map[fphash.Fingerprint]bool, len(chunks))
		for _, ch := range chunks {
			set[ch.Fingerprint] = true
		}
		return set
	}
	orig := chunksOf(data)
	edited := append(append([]byte("INSERTED PREFIX BYTES"), data[:512]...), data[512:]...)
	got := chunksOf(edited)
	var common int
	for fp := range got {
		if orig[fp] {
			common++
		}
	}
	if frac := float64(common) / float64(len(orig)); frac < 0.8 {
		t.Fatalf("only %.0f%% of chunks survived a front insertion; CDC should localize the change", frac*100)
	}
}

// TestCDCFixedEquivalenceWhenTight confirms that Min==Avg==Max degenerates
// into fixed-size chunking.
func TestCDCFixedEquivalenceWhenTight(t *testing.T) {
	data := randBytes(7, 64*1024+9)
	p := Params{Min: 4096, Avg: 4096, Max: 4096}
	cdc, err := NewContentDefined(bytes.NewReader(data), p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := All(cdc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := All(NewFixed(bytes.NewReader(data), 4096))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("cdc %d chunks, fixed %d chunks", len(a), len(b))
	}
	for i := range a {
		if a[i].Fingerprint != b[i].Fingerprint {
			t.Fatalf("chunk %d differs between tight CDC and fixed", i)
		}
	}
}

// TestCDCDeterministic: chunking the same input twice yields identical cuts.
func TestCDCDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		data := randBytes(seed, 128*1024)
		run := func() []Chunk {
			c, err := NewContentDefined(bytes.NewReader(data), DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			chunks, err := All(c)
			if err != nil {
				t.Fatal(err)
			}
			return chunks
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Fingerprint != b[i].Fingerprint || a[i].Offset != b[i].Offset {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestCDCReaderFragmentation: boundaries must not depend on how the reader
// fragments its reads.
func TestCDCReaderFragmentation(t *testing.T) {
	data := randBytes(8, 256*1024)
	cut := func(r io.Reader) []fphash.Fingerprint {
		c, err := NewContentDefined(r, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		chunks, err := All(c)
		if err != nil {
			t.Fatal(err)
		}
		fps := make([]fphash.Fingerprint, len(chunks))
		for i, ch := range chunks {
			fps[i] = ch.Fingerprint
		}
		return fps
	}
	whole := cut(bytes.NewReader(data))
	frag := cut(iotest{r: bytes.NewReader(data), max: 7})
	if len(whole) != len(frag) {
		t.Fatalf("fragmented read changed chunk count: %d vs %d", len(whole), len(frag))
	}
	for i := range whole {
		if whole[i] != frag[i] {
			t.Fatalf("fragmented read changed chunk %d", i)
		}
	}
}

// iotest limits each Read to max bytes, simulating a slow network reader.
type iotest struct {
	r   io.Reader
	max int
}

func (s iotest) Read(p []byte) (int, error) {
	if len(p) > s.max {
		p = p[:s.max]
	}
	return s.r.Read(p)
}

func TestCDCEmptyInput(t *testing.T) {
	c, err := NewContentDefined(bytes.NewReader(nil), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("Next on empty input = %v, want io.EOF", err)
	}
}

func TestCDCTinyInput(t *testing.T) {
	data := []byte("tiny")
	c, err := NewContentDefined(bytes.NewReader(data), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := All(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 1 || !bytes.Equal(chunks[0].Data, data) {
		t.Fatalf("tiny input not returned as single chunk: %+v", chunks)
	}
}

func BenchmarkContentDefined(b *testing.B) {
	data := randBytes(9, 4<<20)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := NewContentDefined(bytes.NewReader(data), DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := All(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFixed(b *testing.B) {
	data := randBytes(10, 4<<20)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := All(NewFixed(bytes.NewReader(data), 4096)); err != nil {
			b.Fatal(err)
		}
	}
}
