package trace

import (
	"fmt"
	"math/rand"
)

// Generator randomness: every generator draws from a private *rand.Rand —
// seeded from its params' Seed, or injected via the params' Rng field —
// never from the deprecated global math/rand generator, so concurrently
// running generators (parallel test shards, concurrent figure runners)
// can never interleave each other's random state. An injected Rng takes
// precedence over Seed and lets a caller thread one randomness stream
// through several generations; a *rand.Rand is not safe for concurrent
// use, so concurrent generators need distinct Rng values (or Seeds).

// SyntheticParams configures the synthetic snapshot-chain generator, which
// implements the paper's published method (Section 5.1, after Lillibridge
// et al. [44]): an initial snapshot followed by versions that each modify
// ModifyFileFrac of the files, rewriting ModifyContentFrac of each modified
// file's content, and add NewDataBytes of new data.
type SyntheticParams struct {
	Seed int64
	// Rng optionally injects the generator's random source (see the
	// package note on generator randomness). Takes precedence over Seed.
	Rng *rand.Rand
	// Snapshots is the number of snapshots generated after the initial one
	// (the paper generates 10; with the initial "public" snapshot the
	// dataset has Snapshots+1 backups labeled "0".."Snapshots").
	Snapshots int
	// InitialBytes is the approximate logical size of the initial snapshot.
	InitialBytes int
	// MeanFileBytes is the mean generated file size.
	MeanFileBytes int
	// ModifyFileFrac is the fraction of files modified per snapshot (paper:
	// 0.02).
	ModifyFileFrac float64
	// ModifyContentFrac is the fraction of a modified file's content that
	// is rewritten (paper: 0.025).
	ModifyContentFrac float64
	// NewDataBytes is the amount of new file data added per snapshot
	// (paper: 10 MB on a 1.1 GB image; keep the same ratio when scaling).
	NewDataBytes int
	// Chunk is the chunk-size model (the paper's datasets use 8 KB average
	// variable-size chunks).
	Chunk ChunkSizeModel
	// ReuseFrac is the probability that a generated file is a copy of a
	// library file rather than fresh content, modelling the intra-image
	// duplication (repeated package payloads, sparse regions) a disk image
	// exhibits.
	ReuseFrac float64
	// ShuffleFrac is the fraction of files relocated in the backup stream
	// order per snapshot (traversal-order instability; see shuffleFiles).
	ShuffleFrac float64
	// HotFrac is the probability that a generated file is a copy of a hot
	// library file (the heavy, rank-stable frequency head; see
	// fileLibrary).
	HotFrac float64
	// StableFrac is the fraction of directories that are immutable once
	// written (the stable backbone; see drawVolatility).
	StableFrac float64
	// DirFiles is the approximate number of files per directory.
	DirFiles int
	// HotFiles/LibraryFiles/LibraryMeanBytes shape the duplicated-file
	// library (see fileLibrary).
	HotFiles         int
	LibraryFiles     int
	LibraryMeanBytes int
}

// DefaultSyntheticParams returns a laptop-scale configuration preserving
// the paper's ratios (10 MB new data per 1.1 GB image ≈ 0.9%).
func DefaultSyntheticParams() SyntheticParams {
	return SyntheticParams{
		Seed:              1,
		Snapshots:         10,
		InitialBytes:      48 << 20,
		MeanFileBytes:     160 << 10,
		ModifyFileFrac:    0.02,
		ModifyContentFrac: 0.025,
		NewDataBytes:      448 << 10, // ≈0.9% of InitialBytes
		Chunk:             ChunkSizeModel{Min: 2048, Avg: 8192, Max: 16384, Quantum: 512},
		ReuseFrac:         0.28,
		ShuffleFrac:       0.05,
		HotFrac:           0.08,
		StableFrac:        0.55,
		DirFiles:          12,
		HotFiles:          6,
		LibraryFiles:      512,
		LibraryMeanBytes:  40 << 10,
	}
}

// GenerateSynthetic builds the synthetic dataset.
func GenerateSynthetic(p SyntheticParams) *Dataset {
	rng := p.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(p.Seed))
	}
	mint := &minter{}
	lib := newFileLibrary(rng, mint, p.HotFiles, p.LibraryFiles, p.LibraryMeanBytes, p.Chunk)

	fs := &fileSystem{}
	addFiles(rng, mint, lib, fs, p.InitialBytes, p.MeanFileBytes, p.DirFiles, p.Chunk, p.HotFrac, p.ReuseFrac, p.StableFrac)

	d := &Dataset{Name: "synthetic"}
	d.Backups = append(d.Backups, fs.snapshot("0"))
	for v := 1; v <= p.Snapshots; v++ {
		fs = fs.clone()
		files := fs.allFiles()
		nMod := int(float64(len(files))*p.ModifyFileFrac + 0.5)
		if nMod < 1 {
			nMod = 1
		}
		for _, idx := range weightedSample(rng, files, nMod) {
			modifyFile(rng, mint, files[idx], p.ModifyContentFrac, p.Chunk)
		}
		growVolatile(rng, mint, lib, fs, p.NewDataBytes, p.MeanFileBytes, p.Chunk, p.HotFrac, p.ReuseFrac)
		shuffleFiles(rng, fs, p.ShuffleFrac)
		d.Backups = append(d.Backups, fs.snapshot(fmt.Sprintf("%d", v)))
	}
	return d
}

// fileSize draws a file size with the given mean (exponential, floored at
// one chunk's worth of data).
func fileSize(rng *rand.Rand, mean int) int {
	s := int(rng.ExpFloat64() * float64(mean))
	if s < 4096 {
		s = 4096
	}
	return s
}

// FSLParams configures the FSL-like generator: multiple users' home
// directories, backed up monthly, with substantial month-to-month churn and
// heavily duplicated shared content (Section 5.1's Fslhomes: 6 users, 5
// monthly backups, 8 KB average variable chunks, dedup ratio 7.6x).
type FSLParams struct {
	Seed int64
	// Rng optionally injects the generator's random source (see the
	// package note on generator randomness). Takes precedence over Seed.
	Rng   *rand.Rand
	Users int
	// Labels name the backups (paper: Jan 22 ... May 21).
	Labels []string
	// PerUserBytes is the approximate per-user home size.
	PerUserBytes  int
	MeanFileBytes int
	// Monthly churn: fraction of files modified, fraction of a modified
	// file rewritten, fraction of files deleted, and new data as a fraction
	// of PerUserBytes.
	ModifyFileFrac    float64
	ModifyContentFrac float64
	DeleteFileFrac    float64
	NewDataFrac       float64
	Chunk             ChunkSizeModel
	// ReuseFrac is the probability that a file is a copy from the shared
	// library (cross-user and intra-user duplication: shared packages,
	// media, project files). This produces both the skewed frequency
	// distribution of Figure 1 and the sequence-preserving duplication that
	// chunk locality rests on.
	ReuseFrac float64
	// HotFrac is the probability that a file is a copy of a hot library
	// file (the heavy, rank-stable frequency head; see fileLibrary).
	HotFrac float64
	// StableFrac is the fraction of directories that are immutable once
	// written (the stable backbone; see drawVolatility).
	StableFrac float64
	// DirFiles is the approximate number of files per directory.
	DirFiles int
	// ShuffleFrac is the fraction of files relocated in each user's backup
	// stream order per month (see shuffleFiles).
	ShuffleFrac      float64
	HotFiles         int
	LibraryFiles     int
	LibraryMeanBytes int
}

// DefaultFSLParams returns a laptop-scale FSL-like configuration.
func DefaultFSLParams() FSLParams {
	return FSLParams{
		Seed:              2,
		Users:             6,
		Labels:            []string{"Jan 22", "Feb 22", "Mar 22", "Apr 21", "May 21"},
		PerUserBytes:      20 << 20,
		MeanFileBytes:     128 << 10,
		ModifyFileFrac:    0.10,
		ModifyContentFrac: 0.45,
		DeleteFileFrac:    0.01,
		NewDataFrac:       0.04,
		Chunk:             ChunkSizeModel{Min: 2048, Avg: 8192, Max: 16384, Quantum: 512},
		ReuseFrac:         0.50,
		HotFrac:           0.08,
		StableFrac:        0.55,
		DirFiles:          12,
		ShuffleFrac:       0.02,
		HotFiles:          6,
		LibraryFiles:      320,
		LibraryMeanBytes:  48 << 10,
	}
}

// GenerateFSL builds the FSL-like dataset: backup t is the concatenation of
// every user's home snapshot at month t.
func GenerateFSL(p FSLParams) *Dataset {
	rng := p.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(p.Seed))
	}
	mint := &minter{}
	lib := newFileLibrary(rng, mint, p.HotFiles, p.LibraryFiles, p.LibraryMeanBytes, p.Chunk)

	users := make([]*fileSystem, p.Users)
	for u := range users {
		fs := &fileSystem{}
		addFiles(rng, mint, lib, fs, p.PerUserBytes, p.MeanFileBytes, p.DirFiles, p.Chunk, p.HotFrac, p.ReuseFrac, p.StableFrac)
		users[u] = fs
	}

	d := &Dataset{Name: "fsl"}
	for m, label := range p.Labels {
		if m > 0 {
			for u, fs := range users {
				fs = fs.clone()
				files := fs.allFiles()
				// Delete a few files from the working set.
				nDel := int(float64(len(files))*p.DeleteFileFrac + 0.5)
				deleteFiles(rng, fs, nDel)
				// Modify files, concentrated in volatile directories.
				files = fs.allFiles()
				nMod := int(float64(len(files))*p.ModifyFileFrac + 0.5)
				for _, idx := range weightedSample(rng, files, nMod) {
					modifyFile(rng, mint, files[idx], p.ModifyContentFrac, p.Chunk)
				}
				// Add new data into the working set.
				target := int(float64(p.PerUserBytes) * p.NewDataFrac)
				growVolatile(rng, mint, lib, fs, target, p.MeanFileBytes, p.Chunk, p.HotFrac, p.ReuseFrac)
				shuffleFiles(rng, fs, p.ShuffleFrac)
				users[u] = fs
			}
		}
		all := &fileSystem{}
		for _, fs := range users {
			all.dirs = append(all.dirs, fs.dirs...)
		}
		d.Backups = append(d.Backups, all.snapshot(label))
	}
	return d
}

// VMParams configures the VM-like generator: many students' VM images,
// initially installed from the same operating system base, snapshotted
// weekly with fixed-size chunks (Section 5.1's VM dataset: 4 KB fixed
// chunks, very high dedup ratio, heavy churn in a mid-semester window).
type VMParams struct {
	Seed int64
	// Rng optionally injects the generator's random source (see the
	// package note on generator randomness). Takes precedence over Seed.
	Rng      *rand.Rand
	Students int
	Weeks    int
	// BaseImageBytes is the size of the shared OS base image.
	BaseImageBytes int
	// BaseReuseFrac is the fraction of the base image assembled from
	// library-file copies (repeated OS pages and package payloads inside
	// one image), giving the image internal duplication and the dataset its
	// frequency skew after zero-chunk removal.
	BaseReuseFrac float64
	// InitialDriftFrac is how much each student's image differs from the
	// base at week 1.
	InitialDriftFrac float64
	// LightChurnFrac is the weekly per-image content churn outside the
	// heavy window; HeavyChurnFrac applies within it. The heavy window
	// covers transitions HeavyStart..HeavyEnd (from week t to t+1): the
	// paper observes users making big changes such that backups 5-8 share
	// almost no content with week 13 and storage saving drops after week 7.
	LightChurnFrac float64
	HeavyChurnFrac float64
	HeavyStart     int // first heavily-churned transition (from week t to t+1)
	HeavyEnd       int // last heavily-churned transition
	// RelocateFrac is the fraction of each image relocated (content
	// preserved, position changed) per week: block-layout instability from
	// defragmentation, package reinstalls, and file moves inside the VM.
	RelocateFrac float64
	// VolatileZoneFrac concentrates weekly churn in the leading fraction of
	// the image (the hot region: logs, caches, home directories), leaving
	// the OS payload as a stable backbone (see modifyRegion).
	VolatileZoneFrac float64
	ChunkSize        int
	// HotFrac and the library shape control the base image's internal
	// duplication (see fileLibrary).
	HotFrac          float64
	HotFiles         int
	LibraryFiles     int
	LibraryMeanBytes int
}

// DefaultVMParams returns a laptop-scale VM-like configuration.
func DefaultVMParams() VMParams {
	return VMParams{
		Seed:             3,
		Students:         20,
		Weeks:            13,
		BaseImageBytes:   10 << 20,
		BaseReuseFrac:    0.45,
		InitialDriftFrac: 0.10,
		LightChurnFrac:   0.07,
		HeavyChurnFrac:   0.50,
		HeavyStart:       5,
		HeavyEnd:         8,
		RelocateFrac:     0.18,
		VolatileZoneFrac: 0.35,
		ChunkSize:        4096,
		HotFrac:          0.06,
		HotFiles:         6,
		LibraryFiles:     128,
		LibraryMeanBytes: 32 << 10,
	}
}

// GenerateVM builds the VM-like dataset: backup t is the concatenation of
// every student's image snapshot at week t.
func GenerateVM(p VMParams) *Dataset {
	rng := p.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(p.Seed))
	}
	mint := &minter{}
	sizes := ChunkSizeModel{Min: p.ChunkSize, Avg: p.ChunkSize, Max: p.ChunkSize}
	lib := newFileLibrary(rng, mint, p.HotFiles, p.LibraryFiles, p.LibraryMeanBytes, sizes)

	// The shared base image every student starts from: one long chunk
	// sequence with internal library duplication.
	baseFS := &fileSystem{}
	addFiles(rng, mint, lib, baseFS, p.BaseImageBytes, p.LibraryMeanBytes*2, 16, sizes, p.HotFrac, p.BaseReuseFrac, 1)
	base := &genFile{}
	for _, f := range baseFS.allFiles() {
		base.chunks = append(base.chunks, f.chunks...)
	}

	images := make([]*genFile, p.Students)
	for s := range images {
		img := base.clone()
		churn(rng, mint, img, p.InitialDriftFrac, sizes, p.VolatileZoneFrac)
		images[s] = img
	}

	d := &Dataset{Name: "vm"}
	for week := 1; week <= p.Weeks; week++ {
		if week > 1 {
			transition := week - 1 // from week-1 to week
			frac := p.LightChurnFrac
			if transition >= p.HeavyStart && transition <= p.HeavyEnd {
				frac = p.HeavyChurnFrac
			}
			for s := range images {
				img := images[s].clone()
				churn(rng, mint, img, frac, sizes, p.VolatileZoneFrac)
				relocate(rng, img, p.RelocateFrac)
				images[s] = img
			}
		}
		fs := &fileSystem{dirs: []*genDir{{files: images}}}
		d.Backups = append(d.Backups, fs.snapshot(fmt.Sprintf("%d", week)))
	}
	return d
}

// relocate moves a contiguous run of chunks covering approximately frac of
// the image to a random position, preserving content (and therefore
// deduplication) while perturbing the chunk order the locality-based
// attack depends on.
func relocate(rng *rand.Rand, img *genFile, frac float64) {
	n := len(img.chunks)
	run := int(float64(n)*frac + 0.5)
	if run < 1 || run >= n {
		return
	}
	start := rng.Intn(n - run)
	moved := make([]ChunkRef, run)
	copy(moved, img.chunks[start:start+run])
	rest := append(append([]ChunkRef{}, img.chunks[:start]...), img.chunks[start+run:]...)
	// Relocation is local: blocks move within a window around their origin
	// (defragmentation and file moves shuffle nearby extents, they do not
	// teleport data across the disk). Local moves perturb the chunk order
	// the attack walks while leaving distant segments' membership intact.
	window := n / 8
	pos := start - window + rng.Intn(2*window+1)
	if pos < 0 {
		pos = 0
	}
	if pos > len(rest) {
		pos = len(rest)
	}
	out := make([]ChunkRef, 0, n)
	out = append(out, rest[:pos]...)
	out = append(out, moved...)
	out = append(out, rest[pos:]...)
	img.chunks = out
}

// churn applies total content churn of frac to an image, split into several
// clustered regions (VM image edits cluster in filesystem regions but occur
// in more than one place per week).
func churn(rng *rand.Rand, mint *minter, img *genFile, frac float64, sizes ChunkSizeModel, zoneFrac float64) {
	if frac <= 0 {
		return
	}
	regions := 1 + rng.Intn(4)
	per := frac / float64(regions)
	for i := 0; i < regions; i++ {
		modifyRegion(rng, mint, img, per, sizes, zoneFrac)
	}
}
