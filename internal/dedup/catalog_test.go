package dedup

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testRecord(name string, seq byte) SnapshotRecord {
	return SnapshotRecord{
		Name:         name,
		CreatedUnix:  1700000000 + int64(seq),
		LogicalBytes: uint64(seq) * 1000,
		Chunks:       uint32(seq) * 10,
		SealedRecipe: bytes.Repeat([]byte{seq}, 64+int(seq)),
	}
}

func catalogPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), CatalogName)
}

func TestCatalogRoundTrip(t *testing.T) {
	path := catalogPath(t)
	c, err := CreateCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []SnapshotRecord{testRecord("alpha", 1), testRecord("beta", 2), testRecord("gamma", 3)}
	// Add out of name order; List must sort.
	for _, i := range []int{2, 0, 1} {
		if err := c.Add(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Add(want[0]); !errors.Is(err, ErrSnapshotExists) {
		t.Fatalf("duplicate add: err = %v, want ErrSnapshotExists", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got := reopened.List()
	if len(got) != len(want) {
		t.Fatalf("replayed %d snapshots, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Name != w.Name || g.CreatedUnix != w.CreatedUnix ||
			g.LogicalBytes != w.LogicalBytes || g.Chunks != w.Chunks ||
			!bytes.Equal(g.SealedRecipe, w.SealedRecipe) {
			t.Fatalf("snapshot %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestCatalogDeleteSurvivesReopen(t *testing.T) {
	path := catalogPath(t)
	c, err := CreateCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(1); i <= 3; i++ {
		if err := c.Add(testRecord(fmt.Sprintf("snap-%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete("snap-2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("snap-2"); !errors.Is(err, ErrSnapshotNotFound) {
		t.Fatalf("double delete: err = %v, want ErrSnapshotNotFound", err)
	}
	c.Close()

	reopened, err := OpenCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got := reopened.List()
	if len(got) != 2 || got[0].Name != "snap-1" || got[1].Name != "snap-3" {
		names := make([]string, len(got))
		for i, r := range got {
			names[i] = r.Name
		}
		t.Fatalf("replayed %v, want [snap-1 snap-3]", names)
	}
}

// TestCatalogTornTail simulates a crash mid-append at several truncation
// points: every prefix that cuts into the final record must replay to the
// state before that record, and the file must be usable for further
// appends afterwards.
func TestCatalogTornTail(t *testing.T) {
	path := catalogPath(t)
	c, err := CreateCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(testRecord("keep", 1)); err != nil {
		t.Fatal(err)
	}
	goodSize := c.size
	if err := c.Add(testRecord("torn", 2)); err != nil {
		t.Fatal(err)
	}
	fullSize := c.size
	c.Close()

	for cut := goodSize + 1; cut < fullSize; cut += (fullSize - goodSize - 2) / 3 {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tornPath := filepath.Join(t.TempDir(), CatalogName)
		if err := os.WriteFile(tornPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tc, err := OpenCatalog(tornPath)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if got := tc.List(); len(got) != 1 || got[0].Name != "keep" {
			t.Fatalf("cut=%d: replayed %d snapshots, want only \"keep\"", cut, len(got))
		}
		// The torn tail must have been truncated so appends work again.
		if err := tc.Add(testRecord("after-crash", 3)); err != nil {
			t.Fatalf("cut=%d: append after torn-tail recovery: %v", cut, err)
		}
		tc.Close()
		tc2, err := OpenCatalog(tornPath)
		if err != nil {
			t.Fatalf("cut=%d: reopen after recovery append: %v", cut, err)
		}
		if tc2.Len() != 2 {
			t.Fatalf("cut=%d: %d snapshots after recovery append, want 2", cut, tc2.Len())
		}
		tc2.Close()
	}
}

// TestCatalogTailChecksumTreatedAsTorn: a final record whose bytes are all
// present but whose CRC fails (a crash caught the append mid-write) is
// discarded like a torn tail, not reported as corruption.
func TestCatalogTailChecksumTreatedAsTorn(t *testing.T) {
	path := catalogPath(t)
	c, err := CreateCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(testRecord("keep", 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(testRecord("flipped", 2)); err != nil {
		t.Fatal(err)
	}
	fullSize := c.size
	c.Close()

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the last record's payload.
	if _, err := f.WriteAt([]byte{0xFF}, fullSize-10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reopened, err := OpenCatalog(path)
	if err != nil {
		t.Fatalf("tail checksum failure should recover, got %v", err)
	}
	defer reopened.Close()
	if got := reopened.List(); len(got) != 1 || got[0].Name != "keep" {
		t.Fatalf("replayed %d snapshots, want only \"keep\"", len(got))
	}
}

// TestCatalogMidFileCorruptionDetected: damage to a non-tail record is
// corruption, not crash recovery — it must surface as ErrCatalogCorrupt.
func TestCatalogMidFileCorruptionDetected(t *testing.T) {
	path := catalogPath(t)
	c, err := CreateCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(testRecord("first", 1)); err != nil {
		t.Fatal(err)
	}
	firstEnd := c.size
	if err := c.Add(testRecord("second", 2)); err != nil {
		t.Fatal(err)
	}
	c.Close()

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the first record (not the tail one).
	if _, err := f.WriteAt([]byte{0xFF}, firstEnd-10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := OpenCatalog(path); !errors.Is(err, ErrCatalogCorrupt) {
		t.Fatalf("err = %v, want ErrCatalogCorrupt", err)
	}
}

// TestCatalogCompaction: deletes trigger compaction once tombstones
// outnumber live snapshots; the compacted file replays to the same state
// and has shed the dead records.
func TestCatalogCompaction(t *testing.T) {
	path := catalogPath(t)
	c, err := CreateCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := c.Add(testRecord(fmt.Sprintf("snap-%02d", i), byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	grown, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Delete(fmt.Sprintf("snap-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.tombstones >= 10 {
		t.Fatalf("%d tombstones after 10 deletes, want auto-compaction to have run", c.tombstones)
	}
	compacted, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if compacted.Size() >= grown.Size() {
		t.Fatalf("catalog did not shrink: %d -> %d bytes", grown.Size(), compacted.Size())
	}
	// The compacted catalog still appends and replays correctly.
	if err := c.Add(testRecord("post-compact", 99)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	reopened, err := OpenCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got := reopened.List()
	if len(got) != 3 {
		t.Fatalf("replayed %d snapshots, want 3", len(got))
	}
	if got[0].Name != "post-compact" || got[1].Name != "snap-10" || got[2].Name != "snap-11" {
		t.Fatalf("unexpected survivors: %v, %v, %v", got[0].Name, got[1].Name, got[2].Name)
	}
}

func TestCatalogCreateRefusesExisting(t *testing.T) {
	path := catalogPath(t)
	c, err := CreateCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := CreateCatalog(path); err == nil {
		t.Fatal("CreateCatalog over an existing catalog succeeded")
	}
}

func TestMemCatalog(t *testing.T) {
	c := NewMemCatalog()
	if err := c.Add(testRecord("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(testRecord("b", 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if got := c.List(); len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("List() = %v", got)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("deleted snapshot still visible")
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(testRecord("c", 3)); err == nil {
		t.Fatal("Add after Close succeeded")
	}
}
