package container

import (
	"errors"
	"testing"

	"freqdedup/internal/fphash"
)

func entry(id uint64, size uint32) Entry {
	return Entry{FP: fphash.FromUint64(id), Size: size}
}

func mustAppend(t *testing.T, s *Store, e Entry) Location {
	t.Helper()
	loc, err := s.Append(e)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return loc
}

func mustFlush(t *testing.T, s *Store) *Container {
	t.Helper()
	c, err := s.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return c
}

func TestAppendAndGet(t *testing.T) {
	s := New(100)
	loc := mustAppend(t, s, entry(1, 40))
	if loc.Container != 0 || loc.Index != 0 {
		t.Fatalf("first location = %+v", loc)
	}
	got, err := s.Get(loc)
	if err != nil || got.FP != fphash.FromUint64(1) {
		t.Fatalf("Get = %+v, %v", got, err)
	}
}

func TestSealOnCapacity(t *testing.T) {
	s := New(100)
	mustAppend(t, s, entry(1, 60))
	loc := mustAppend(t, s, entry(2, 60)) // does not fit: previous sealed
	if loc.Container != 1 {
		t.Fatalf("second chunk in container %d, want 1", loc.Container)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	c, err := s.Container(0)
	if err != nil || len(c.Entries) != 1 {
		t.Fatalf("sealed container wrong: %+v %v", c, err)
	}
}

func TestOversizedEntryGetsOwnContainer(t *testing.T) {
	s := New(100)
	loc := mustAppend(t, s, entry(1, 500)) // larger than capacity: stored alone
	if loc.Container != 0 {
		t.Fatalf("oversized chunk location %+v", loc)
	}
	loc2 := mustAppend(t, s, entry(2, 10))
	if loc2.Container != 1 {
		t.Fatalf("chunk after oversized should start container 1, got %d", loc2.Container)
	}
}

func TestFlush(t *testing.T) {
	s := New(1000)
	if mustFlush(t, s) != nil {
		t.Fatal("flushing empty store should return nil")
	}
	mustAppend(t, s, entry(1, 10))
	c := mustFlush(t, s)
	if c == nil || c.ID != 0 || len(c.Entries) != 1 {
		t.Fatalf("flushed container = %+v", c)
	}
	if mustFlush(t, s) != nil {
		t.Fatal("double flush should return nil")
	}
	// New appends go into a fresh container.
	loc := mustAppend(t, s, entry(2, 10))
	if loc.Container != 1 {
		t.Fatalf("post-flush container = %d, want 1", loc.Container)
	}
}

func TestLocationsStable(t *testing.T) {
	s := New(256)
	locs := make([]Location, 0, 100)
	for i := uint64(0); i < 100; i++ {
		locs = append(locs, mustAppend(t, s, entry(i, 32)))
	}
	for i, loc := range locs {
		got, err := s.Get(loc)
		if err != nil || got.FP != fphash.FromUint64(uint64(i)) {
			t.Fatalf("location %d no longer resolves: %v", i, err)
		}
	}
}

func TestGetMissing(t *testing.T) {
	s := New(100)
	if _, err := s.Get(Location{Container: 5, Index: 0}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get of absent container: %v, want ErrNotFound", err)
	}
	mustAppend(t, s, entry(1, 10))
	if _, err := s.Get(Location{Container: 0, Index: 7}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get of absent index: %v, want ErrNotFound", err)
	}
	if _, err := s.Get(Location{Container: -1, Index: 0}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get of negative container: %v, want ErrNotFound", err)
	}
}

func TestBytes(t *testing.T) {
	s := New(100)
	mustAppend(t, s, entry(1, 60))
	mustAppend(t, s, entry(2, 60))
	mustAppend(t, s, entry(3, 10))
	if got := s.Bytes(); got != 130 {
		t.Fatalf("Bytes = %d, want 130", got)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// dataEntry builds an entry whose data matches its size, as the dedup
// store stores them (required for file persistence).
func dataEntry(id uint64, size uint32) Entry {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(id + uint64(i))
	}
	return Entry{FP: fphash.FromUint64(id), Size: size, Data: data}
}

func TestCompactDropsAndRenumbers(t *testing.T) {
	s := New(100)
	locs := map[uint64]Location{}
	for i := uint64(0); i < 10; i++ {
		locs[i] = mustAppend(t, s, dataEntry(i, 40))
	}
	// Drop the even entries.
	keep := func(e Entry) bool { return e.FP.Uint64()%2 == 1 }
	moved := map[uint64]Location{}
	st, err := s.Compact(keep, func(e Entry, loc Location) {
		moved[e.FP.Uint64()] = loc
	})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st.EntriesDropped != 5 || st.BytesDropped != 5*40 {
		t.Fatalf("stats = %+v, want 5 entries / 200 bytes dropped", st)
	}
	if len(moved) != 5 {
		t.Fatalf("moved reported %d entries, want 5", len(moved))
	}
	for id, loc := range moved {
		e, err := s.Get(loc)
		if err != nil || e.FP != fphash.FromUint64(id) {
			t.Fatalf("moved location of %d does not resolve: %+v %v", id, e, err)
		}
	}
	if s.Bytes() != 5*40 {
		t.Fatalf("Bytes = %d, want 200", s.Bytes())
	}
	// Survivors are densely packed from container 0 in their old order.
	want := []uint64{1, 3, 5, 7, 9}
	idx := 0
	for id := 0; ; id++ {
		c, err := s.Container(id)
		if errors.Is(err, ErrNotFound) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range c.Entries {
			if e.FP.Uint64() != want[idx] {
				t.Fatalf("entry %d is chunk %d, want %d", idx, e.FP.Uint64(), want[idx])
			}
			idx++
		}
	}
	if idx != len(want) {
		t.Fatalf("compacted store holds %d entries, want %d", idx, len(want))
	}
}

func TestCompactKeepAllIsLayoutIdentity(t *testing.T) {
	s := New(100)
	for i := uint64(0); i < 7; i++ {
		mustAppend(t, s, dataEntry(i, 40))
	}
	before := s.Count()
	st, err := s.Compact(func(Entry) bool { return true }, nil)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st.EntriesDropped != 0 || st.ContainersRewritten != 0 {
		t.Fatalf("keep-all compact reported work: %+v", st)
	}
	if s.Count() != before {
		t.Fatalf("Count changed %d -> %d", before, s.Count())
	}
}
