// Command defendd serves one repository to many network tenants: the
// multi-tenant backup daemon. It listens on the FDW1 wire protocol
// (chunk-negotiation dedup, bounded in-flight windows, per-client rate
// shaping) and namespaces every tenant's snapshots as tenant/name over
// the shared chunk store. SIGINT/SIGTERM drains gracefully: in-flight
// sessions finish, new connections are refused, and the repository is
// closed cleanly.
//
//	defendd -repo /srv/backups -create              # open-access daemon
//	defendd -repo /srv/backups -addr :7466 \
//	        -tenants alice=s3cret,bob=hunter2       # token auth per tenant
//	defendd -repo /srv/backups -rate 64 -window 2048 -inflight 8
//
// Every negotiation round is transcribed to negotiation.fdt beside the
// repository's traces.fdt; `defend attack -repo ... -view negotiation`
// replays that transcript as the wire adversary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"freqdedup"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7466", "listen address")
	repoDir := flag.String("repo", "", "repository directory to serve (required)")
	create := flag.Bool("create", false, "create the repository if the directory is empty")
	keyStr := flag.String("key", "", "repository key (raw bytes, zero-padded; empty = zero key)")
	tenants := flag.String("tenants", "",
		"comma-separated tenant=token pairs; empty = open access, any tenant name accepted")
	rateMB := flag.Float64("rate", 0, "per-client upload rate limit in MiB/s (0 = unlimited)")
	window := flag.Int("window", 0, "max chunk references per negotiation window (0 = default)")
	inflight := flag.Int("inflight", 0, "max unacknowledged windows per session (0 = default)")
	drainSecs := flag.Int("drain", 30, "seconds to wait for in-flight sessions on shutdown")
	flag.Parse()

	if *repoDir == "" {
		fmt.Fprintln(os.Stderr, "defendd: -repo is required")
		flag.Usage()
		os.Exit(2)
	}
	auth, err := parseTenants(*tenants)
	if err != nil {
		fatal(err)
	}

	var key freqdedup.Key
	copy(key[:], *keyStr)
	open := freqdedup.OpenRepository
	if *create {
		open = freqdedup.CreateRepository
	}
	repo, err := open(*repoDir, freqdedup.WithRepositoryKey(key))
	if err != nil {
		fatal(err)
	}
	defer repo.Close()

	srv, err := freqdedup.NewRepositoryServer(repo, freqdedup.ServerConfig{
		Auth:            auth,
		WindowChunks:    *window,
		MaxInflight:     *inflight,
		RateBytesPerSec: *rateMB * (1 << 20),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "defendd: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintf(os.Stderr, "defendd: draining (up to %ds for in-flight sessions)\n", *drainSecs)
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSecs)*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "defendd: drain: %v; closing hard\n", err)
			srv.Close()
		}
	}()

	mode := "open access"
	if auth != nil {
		mode = fmt.Sprintf("%d tenant token(s)", len(auth))
	}
	fmt.Printf("defendd: serving %s on %s (%s)\n", *repoDir, *addr, mode)
	if err := srv.ListenAndServe(*addr); err != nil {
		fatal(err)
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("defendd: stopped")
}

// parseTenants parses "alice=s3cret,bob=hunter2" into an auth map; an
// empty string means open access (nil map).
func parseTenants(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	auth := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		tenant, token, ok := strings.Cut(pair, "=")
		if !ok || tenant == "" || token == "" {
			return nil, fmt.Errorf("bad -tenants entry %q (want tenant=token)", pair)
		}
		if _, dup := auth[tenant]; dup {
			return nil, fmt.Errorf("duplicate tenant %q in -tenants", tenant)
		}
		auth[tenant] = token
	}
	return auth, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "defendd:", err)
	os.Exit(1)
}
