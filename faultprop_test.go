package freqdedup

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"freqdedup/internal/faultio"
	"freqdedup/internal/vfs"
)

// countingFS wraps a vfs.FS and counts Sync calls per file base name, so
// a test can learn deterministically how many syncs a setup phase costs
// and arm a fault at exactly the next one.
type countingFS struct {
	vfs.FS
	mu    sync.Mutex
	syncs map[string]int
}

func newCountingFS(inner vfs.FS) *countingFS {
	return &countingFS{FS: inner, syncs: make(map[string]int)}
}

func (c *countingFS) OpenFile(name string, flag int, perm os.FileMode) (vfs.File, error) {
	f, err := c.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return countingFile{File: f, fs: c, name: name}, nil
}

func (c *countingFS) Open(name string) (vfs.File, error) {
	f, err := c.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return countingFile{File: f, fs: c, name: name}, nil
}

func (c *countingFS) synced(name string) {
	c.mu.Lock()
	c.syncs[filepath.Base(name)]++
	c.mu.Unlock()
}

func (c *countingFS) count(pattern string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for base, k := range c.syncs {
		if ok, _ := filepath.Match(pattern, base); ok {
			n += k
		}
	}
	return n
}

type countingFile struct {
	vfs.File
	fs   *countingFS
	name string
}

func (f countingFile) Sync() error {
	f.fs.synced(f.name)
	return f.File.Sync()
}

// TestBackupNotAckedOnSyncFailure is the fsync-propagation audit: for
// each of the three durable formats — container shards, snapshot
// catalog, trace log — a failed fsync during Backup must surface as a
// Backup error, and the snapshot must not exist, neither live nor after
// a crash-and-reopen. An acknowledged snapshot whose durability barrier
// silently failed would be the worst bug this stack can have.
func TestBackupNotAckedOnSyncFailure(t *testing.T) {
	data := repoData(71, 128<<10)
	var key Key
	copy(key[:], "sync fault key")
	baseOpts := func(fs FileSystem) []RepositoryOption {
		return []RepositoryOption{
			WithFileSystem(fs), WithRepositoryKey(key),
			WithShards(2), WithContainerBytes(16 << 10),
			WithUploadObserver(nil),
		}
	}
	ctx := context.Background()

	// Calibration pass: how many syncs does each file see before the
	// backup's own barriers run?
	calib := newCountingFS(faultio.NewMemFS())
	repo, err := CreateRepository("repo", baseOpts(calib)...)
	if err != nil {
		t.Fatal(err)
	}
	preBackup := map[string]int{
		"shard-*.fdc": calib.count("shard-*.fdc"),
		"catalog.fdr": calib.count("catalog.fdr"),
		"traces.fdt":  calib.count("traces.fdt"),
	}
	if _, err := repo.Backup(ctx, "snap", bytes.NewReader(data)); err != nil {
		t.Fatalf("calibration backup: %v", err)
	}
	for pat, pre := range preBackup {
		if calib.count(pat) <= pre {
			t.Fatalf("calibration: backup did not sync %s — no durability barrier to test", pat)
		}
	}
	repo.Close()

	for _, pat := range []string{"shard-*.fdc", "catalog.fdr", "traces.fdt"} {
		t.Run(pat, func(t *testing.T) {
			// Fail the first sync of this file past the setup phase: the
			// backup's durability barrier.
			m := faultio.NewMemFSPlan(faultio.Plan{Seed: 71, Rules: []faultio.Rule{{
				Op: faultio.OpSync, PathGlob: pat, Nth: preBackup[pat] + 1,
			}}})
			repo, err := CreateRepository("repo", baseOpts(m)...)
			if err != nil {
				t.Fatal(err)
			}
			_, err = repo.Backup(ctx, "snap", bytes.NewReader(data))
			if !errors.Is(err, faultio.ErrInjected) {
				t.Fatalf("backup with failed %s sync: err = %v, want injected sync failure", pat, err)
			}
			for _, s := range repo.Snapshots() {
				if s.Name == "snap" {
					t.Fatalf("snapshot acked live despite failed %s sync", pat)
				}
			}
			repo.Close()

			// And the machine dying right now must agree: nothing in the
			// durable image claims the snapshot exists.
			img := m.CrashImage()
			reopened, err := OpenRepository("repo", baseOpts(img)...)
			if err != nil {
				t.Fatalf("reopen after failed sync: %v", err)
			}
			defer reopened.Close()
			for _, s := range reopened.Snapshots() {
				if s.Name == "snap" {
					t.Fatalf("snapshot survived crash despite failed %s sync", pat)
				}
			}
			if err := reopened.Verify(ctx); err != nil {
				t.Fatalf("verify after failed-sync crash: %v", err)
			}
			// The failure was transient-free and clean: a retried backup on
			// the live filesystem succeeds (the rule fired its once).
			repo2, err := OpenRepository("repo", baseOpts(m)...)
			if err != nil {
				t.Fatal(err)
			}
			defer repo2.Close()
			if _, err := repo2.Backup(ctx, "snap-retry", bytes.NewReader(data)); err != nil {
				t.Fatalf("retried backup after one-shot sync fault: %v", err)
			}
			mustRestore(t, repo2, "snap-retry", data)
		})
	}
}
