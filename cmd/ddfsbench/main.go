// Command ddfsbench reproduces the metadata-access-overhead experiment of
// Section 7.4 (Figures 13 and 14): it replays the FSL dataset, encrypted
// under baseline MLE and under the combined MinHash+scrambling scheme,
// through the DDFS-like deduplication prototype and reports the on-disk
// metadata access volume per backup.
//
//	ddfsbench            # both cache regimes
//	ddfsbench -cache 0.25
package main

import (
	"flag"
	"fmt"
	"os"

	"freqdedup/internal/eval"
)

func main() {
	cacheFrac := flag.Float64("cache", 0,
		"fingerprint cache size as a fraction of total fingerprint metadata (0 = run both paper regimes)")
	flag.Parse()

	ds := eval.Generate()
	if *cacheFrac > 0 {
		figs, err := eval.MetadataWithCacheFrac(ds, *cacheFrac)
		if err != nil {
			fatal(err)
		}
		for i := range figs {
			figs[i].Render(os.Stdout)
		}
		return
	}
	f13, err := eval.Fig13Metadata512(ds)
	if err != nil {
		fatal(err)
	}
	f14, err := eval.Fig14Metadata4G(ds)
	if err != nil {
		fatal(err)
	}
	for i := range f13 {
		f13[i].Render(os.Stdout)
	}
	for i := range f14 {
		f14[i].Render(os.Stdout)
	}
	restore, err := eval.RestoreLocality(ds)
	if err != nil {
		fatal(err)
	}
	restore.Render(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddfsbench:", err)
	os.Exit(1)
}
