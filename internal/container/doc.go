// Package container implements the container abstraction of deduplicated
// storage systems (Section 6.2 and 7.4.1): unique chunks are packed into
// multi-megabyte containers, the basic read/write units, in logical order.
// Grouping logically-adjacent chunks per container is what lets the DDFS
// prefetching strategy (load a whole container's fingerprints on an index
// hit) exploit chunk locality — and what the parallel restore pipeline's
// container cache exploits on the read path.
//
// # Architecture
//
// A Store is the packer: it accumulates entries into one open container in
// memory and seals full containers through a pluggable Backend, the
// persistent side of the abstraction. Two backends exist:
//
//   - MemBackend keeps sealed containers in memory — the original engine's
//     behavior and the default. It never fails.
//   - FileBackend persists each shard's containers in an append-only file,
//     fsyncing on every seal, and is what makes a dedup store survive a
//     process restart (dedup.NewStoreWithBackend / dedup.Open).
//
// The durability boundary is the seal: once Store.Flush (or an Append that
// sealed a full container) returns nil, that container is as durable as
// the backend makes it. Chunks still in the open container live only in
// memory; dedup.Store.Close seals them before shutdown.
//
// # Sealed-container file format
//
// A FileBackend directory holds one file per shard, shard-NNNN.fdc, all
// little-endian. Each file starts with a 16-byte header:
//
//	u32 magic     "FDCF" (0x46444346)
//	u32 version   1
//	u32 shard     this file's shard index
//	u32 capacity  the store's container byte capacity
//
// followed by zero or more container records, appended in seal order. A
// record is self-contained:
//
//	u32 magic      "FDC1" (0x46444331)
//	u32 id         container ID (dense, equals record position)
//	u32 entries    number of chunks
//	u32 dataBytes  total chunk data bytes
//	entries × { fp [8]byte, u32 size }   -- the index header
//	dataBytes of chunk data, concatenated in entry order
//	u32 crc32      IEEE CRC over everything above
//
// The small index header ahead of the data lets a reopened store rebuild
// its fingerprint index by reading only fingerprints and sizes (Backend
// Scan with withData=false), seeking past the data regions.
//
// # Invariants
//
//   - Per shard, container IDs are dense and equal the record position in
//     the file; Seal enforces arrival in ID order, and a GC Rewrite
//     renumbers survivors densely from zero again.
//   - Every persisted entry satisfies len(Data) == Size; metadata-only
//     entries (nil Data, the ddfs simulation) are memory-only.
//   - Sealed containers are immutable. The only mutation of a shard file
//     is appending a record or atomically replacing the whole file
//     (Rewrite writes a temporary file, fsyncs, and renames it over).
//   - Records are verified by CRC when their data is read; a checksum
//     mismatch surfaces as ErrCorrupt, never as silent wrong bytes.
//   - A crash can only tear the file's tail (a partially appended record
//     past the last acknowledged seal). OpenFileBackend detects the torn
//     tail and truncates it; damage anywhere else is reported as
//     ErrCorrupt.
package container
