package eval

import (
	"fmt"

	"freqdedup/internal/attack"
	"freqdedup/internal/defense"
	"freqdedup/internal/trace"
	"freqdedup/internal/workload"
)

// The scenario matrix drives every registered workload through the full
// pipeline — generation, (optionally) the real storage stack via a
// TapPipeline, then the locality attack against the paper's defense
// ablations — and reports one inference-rate column per scheme. It is the
// evaluation's answer to "how does leakage depend on what is being backed
// up", a question the per-figure runners (fixed datasets) cannot ask.

// TapPipeline pushes a generated dataset through a real storage stack and
// returns the adversary's replayed view of it (the upload-tap trace).
// The Repository-backed implementation lives in the facade package
// (freqdedup.ScenarioMatrix wires it); eval cannot provide it itself,
// since the facade imports eval. A nil pipeline attacks the generated
// chunk streams directly — the trace-level methodology of the classic
// figure runners.
type TapPipeline func(d *trace.Dataset) (*trace.Dataset, error)

// ScenarioOptions configures RunScenario and ScenarioMatrix.
type ScenarioOptions struct {
	// Workloads selects the scenarios to run (default: every registered
	// workload, in List order).
	Workloads []string
	// Config is the per-scenario generation configuration. Its zero value
	// uses workload defaults; the Seed applies to every scenario.
	Config workload.Config
	// LeakRate is the known-plaintext leakage rate (default 0.02).
	LeakRate float64
	// EncryptSeed seeds the defense-side randomness (default 11).
	EncryptSeed int64
	// Pipeline optionally routes each dataset through a real storage
	// stack; the attack then runs on the replayed taps.
	Pipeline TapPipeline
}

func (o ScenarioOptions) withDefaults() ScenarioOptions {
	if len(o.Workloads) == 0 {
		o.Workloads = workload.List()
	}
	if o.LeakRate == 0 {
		o.LeakRate = 0.02
	}
	if o.EncryptSeed == 0 {
		o.EncryptSeed = 11
	}
	return o
}

// ScenarioResult is one workload's trip through the full pipeline.
type ScenarioResult struct {
	// Name is the workload name.
	Name string
	// Backups and UniqueChunks describe the adversary-view dataset the
	// attack ran on (post-pipeline when a TapPipeline was set).
	Backups      int
	UniqueChunks int
	// DedupRatio is the adversary-view dataset's deduplication ratio.
	DedupRatio float64
	// Rates maps each evaluated scheme to the locality attack's inference
	// rate against it, in scheme order MLE, MinHash, Combined.
	Rates map[defense.Scheme]float64
}

// scenarioSchemes are the ablation columns of the matrix, in figure order.
var scenarioSchemes = []defense.Scheme{
	defense.SchemeMLE,
	defense.SchemeMinHash,
	defense.SchemeCombined,
}

// RunScenario generates one workload, optionally routes it through the
// pipeline, and scores the locality attack (known-plaintext, LeakRate)
// against each defense scheme: the earliest adversary-view backup is the
// auxiliary, the latest the target.
func RunScenario(name string, opt ScenarioOptions) (ScenarioResult, error) {
	opt = opt.withDefaults()
	d, err := workload.Generate(name, opt.Config)
	if err != nil {
		return ScenarioResult{}, err
	}
	if opt.Pipeline != nil {
		if d, err = opt.Pipeline(d); err != nil {
			return ScenarioResult{}, fmt.Errorf("scenario %q: pipeline: %w", name, err)
		}
	}
	if len(d.Backups) < 2 {
		return ScenarioResult{}, fmt.Errorf("scenario %q: %d backups, need at least 2", name, len(d.Backups))
	}
	aux := d.Backups[0]
	target := d.Backups[len(d.Backups)-1]
	res := ScenarioResult{
		Name:         name,
		Backups:      len(d.Backups),
		UniqueChunks: target.UniqueCount(),
		DedupRatio:   d.Stats().Ratio(),
		Rates:        make(map[defense.Scheme]float64, len(scenarioSchemes)),
	}
	for _, scheme := range scenarioSchemes {
		enc, err := defense.Encrypt(target, scheme, opt.EncryptSeed)
		if err != nil {
			return ScenarioResult{}, fmt.Errorf("scenario %q: encrypt %v: %w", name, scheme, err)
		}
		cfg := attack.Config{U: 1, V: 15, W: defaultW, Mode: attack.KnownPlaintext}
		cfg.Leaked = attack.SampleLeaked(enc.Backup, enc.Truth, opt.LeakRate, 42)
		r, err := attack.NewLocality(cfg).Run(attack.BackupSource(enc.Backup), attack.BackupSource(aux), attack.Params{})
		if err != nil {
			return ScenarioResult{}, fmt.Errorf("scenario %q: attack vs %v: %w", name, scheme, err)
		}
		res.Rates[scheme] = r.InferenceRate(enc.Truth)
	}
	return res, nil
}

// ScenarioMatrix runs every selected workload through RunScenario and
// assembles the per-scenario inference-rate figure: one row per workload,
// one column per defense scheme.
func ScenarioMatrix(opt ScenarioOptions) (*Figure, error) {
	opt = opt.withDefaults()
	fig := &Figure{
		ID:      "Matrix",
		Title:   "Locality attack inference rate by workload scenario (known-plaintext)",
		XLabel:  "workload",
		Percent: true,
		Notes: []string{
			fmt.Sprintf("leakage rate %.3g, locality attack, target = latest backup, auxiliary = first backup", opt.LeakRate),
		},
	}
	if opt.Pipeline != nil {
		fig.Notes = append(fig.Notes, "streams routed through the real storage stack; attacks ran on replayed upload taps")
	}
	series := make([]Series, len(scenarioSchemes))
	for i, s := range scenarioSchemes {
		name := s.String()
		if s == defense.SchemeCombined {
			name = "MinHash+scramble"
		}
		series[i] = Series{Name: name}
	}
	for _, name := range opt.Workloads {
		res, err := RunScenario(name, opt)
		if err != nil {
			return nil, err
		}
		fig.X = append(fig.X, res.Name)
		for i, s := range scenarioSchemes {
			series[i].Y = append(series[i].Y, res.Rates[s])
		}
	}
	fig.Series = series
	return fig, nil
}
