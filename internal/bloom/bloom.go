// Package bloom implements the Bloom filter used by the DDFS-like
// deduplication prototype (Section 7.4, step S2) to avoid on-disk index
// lookups for chunks that are certainly new.
//
// The filter uses the standard double-hashing construction g_i(x) = h1(x) +
// i*h2(x), which preserves the asymptotic false-positive rate of k
// independent hash functions while needing only two.
package bloom

import (
	"fmt"
	"math"

	"freqdedup/internal/fphash"
)

// Filter is a Bloom filter over chunk fingerprints. The zero value is not
// usable; construct with New or NewWithEstimates.
type Filter struct {
	bits  []uint64
	m     uint64 // number of bits
	k     int    // number of hash functions
	count uint64 // number of Add calls (approximate element count)
}

// New creates a filter with m bits and k hash functions. It panics if m or
// k is not positive.
func New(m uint64, k int) *Filter {
	if m == 0 || k <= 0 {
		panic(fmt.Sprintf("bloom: invalid parameters m=%d k=%d", m, k))
	}
	return &Filter{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// NewWithEstimates sizes a filter for n expected elements and a target
// false-positive probability p, using the standard optimal formulas
// m = -n ln p / (ln 2)^2 and k = (m/n) ln 2. The paper's prototype uses
// p = 0.01, which yields ~9.6 bits per fingerprint and k = 7.
func NewWithEstimates(n uint64, p float64) *Filter {
	if n == 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("bloom: false-positive rate %v out of (0,1)", p))
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m == 0 {
		m = 1
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(m, k)
}

// Add inserts a fingerprint.
func (f *Filter) Add(fp fphash.Fingerprint) {
	h1, h2 := f.hashes(fp)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.count++
}

// Contains reports whether fp may have been added. False positives are
// possible; false negatives are not.
func (f *Filter) Contains(fp fphash.Fingerprint) bool {
	h1, h2 := f.hashes(fp)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

func (f *Filter) hashes(fp fphash.Fingerprint) (uint64, uint64) {
	h1 := fp.Mix(0x5bf03635)
	h2 := fp.Mix(0xc2b2ae35) | 1 // odd so that strides cover the table
	return h1, h2
}

// Count returns the number of Add calls made (duplicates counted twice).
func (f *Filter) Count() uint64 { return f.count }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// SizeBytes returns the memory footprint of the bit array in bytes.
func (f *Filter) SizeBytes() uint64 { return uint64(len(f.bits)) * 8 }

// EstimatedFPP returns the expected false-positive probability at the
// current fill, (1 - e^(-kn/m))^k.
func (f *Filter) EstimatedFPP() float64 {
	exp := -float64(f.k) * float64(f.count) / float64(f.m)
	return math.Pow(1-math.Exp(exp), float64(f.k))
}

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.count = 0
}
