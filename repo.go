package freqdedup

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"time"

	"freqdedup/internal/container"
	"freqdedup/internal/dedup"
	"freqdedup/internal/mle"
	"freqdedup/internal/trace"
	"freqdedup/internal/tracelog"
	"freqdedup/internal/vfs"
)

// Repository is the system front door: a long-lived encrypted
// deduplication store with a durable, snapshot-granular catalog. Where the
// low-level Store/Client pair asks callers to wire chunking, encryption,
// upload, recipe handling, and retention registration by hand — and keeps
// retention state only in memory — a Repository owns the whole lifecycle:
//
//   - Backup chunks, encrypts, and deduplicates a stream, seals the recipe
//     under the repository key, and persists it in a crash-safe snapshot
//     catalog beside the container shards. A snapshot returned by Backup
//     survives a process crash.
//   - OpenRepository replays the catalog, restoring the snapshot list and
//     the per-chunk reference counts, so GC after a reopen reclaims
//     exactly the chunks no snapshot references — not everything, which is
//     what the raw Store's "unregistered = unreferenced" rule does to a
//     reopened process that forgets to re-register.
//   - Every data-path method takes a context.Context; cancellation stops
//     the backup, restore, GC, and verify pipelines promptly and hands
//     every pooled buffer back.
//
// A Repository is safe for concurrent use: concurrent Backups of
// different names, Restores, and Snapshots listings may overlap. GC
// stops the world, and additionally excludes in-flight Backups: a
// backup's chunks are unreferenced until its snapshot is registered, so
// a GC overlapping the upload would reclaim them out from under the
// snapshot it is about to acknowledge.
type Repository struct {
	store   *dedup.Store
	catalog *dedup.Catalog
	cfg     ClientConfig
	key     Key

	// tapLog records the adversary's view of every Backup's upload
	// stream when the tap is enabled (WithUploadObserver, or an existing
	// traces.fdt found on open); tapObs is the caller's extra observer.
	tapLog *tracelog.Log
	tapObs UploadObserver

	// gcMu serializes GC against in-flight Backups: Backup holds the read
	// side for its whole upload-to-registration window, GC the write side.
	// Restores don't need it — they only read chunks referenced by live
	// snapshots, which GC never reclaims (and the store already handles
	// mid-restore chunk relocation).
	gcMu sync.RWMutex

	// Lazy retention rebuild: OpenRepository validates the repository key
	// against one sealed recipe and defers unsealing the rest until
	// retention state is actually consulted (Backup registration, Delete,
	// GC, Repair) — so a cold open does one metadata pass, not a full
	// recipe decryption sweep. retOnce/retErr make the rebuild run once;
	// the error is sticky because half-rebuilt reference counts must
	// never feed a GC.
	retOnce sync.Once
	retErr  error

	// closeMu/closed make Close idempotent and safe after partial failures.
	closeMu sync.Mutex
	closed  bool

	// Salvage context for Repair: what the (salvage) open had to drop.
	fsys        vfs.FS
	path        string
	salvaged    container.SalvageStats
	catSalvaged dedup.CatalogSalvageStats
}

// Encryption selects a Repository's (or ClientConfig's) chunk-encryption
// scheme: EncConvergent, EncServerAided, or EncMinHash.
type Encryption = dedup.Encryption

// DedupStats reports a store's deduplication effectiveness.
type DedupStats = trace.DedupStats

// Snapshot is one completed backup in a repository's catalog.
type Snapshot struct {
	// Name is the caller-chosen snapshot name, unique within the
	// repository.
	Name string
	// CreatedAt is when the snapshot's Backup completed.
	CreatedAt time.Time
	// LogicalBytes is the snapshot's pre-deduplication size.
	LogicalBytes uint64
	// Chunks is the snapshot's logical chunk count.
	Chunks int
}

// ErrSnapshotExists is returned by Backup for a name the repository
// already holds.
var ErrSnapshotExists = dedup.ErrSnapshotExists

// ErrSnapshotNotFound is returned by Restore and Delete for a name the
// repository does not hold.
var ErrSnapshotNotFound = dedup.ErrSnapshotNotFound

// ErrCatalogCorrupt is wrapped by OpenRepository when the snapshot
// catalog fails structural validation (a torn tail from a crash is
// recovered silently; this is real damage).
var ErrCatalogCorrupt = dedup.ErrCatalogCorrupt

// repoOptions collects the functional options of CreateRepository and
// OpenRepository.
type repoOptions struct {
	shards         int
	containerBytes int
	backend        StoreBackend
	cfg            ClientConfig
	key            Key
	tap            bool
	observer       UploadObserver
	fsys           vfs.FS
	salvage        bool
	gcWindow       time.Duration
	indexMode      IndexMode
	indexTuning    IndexTuning
}

// IndexTuning adjusts the persistent fingerprint index's memory knobs;
// see WithIndexTuning. Zero fields select fpindex defaults.
type IndexTuning struct {
	// MemtableEntries is the per-shard memtable capacity before a flush
	// to an on-disk sorted run.
	MemtableEntries int
	// CacheBytes bounds the shared hot-block cache.
	CacheBytes int64
	// ExpectedChunks sizes the aggregate bloom filter.
	ExpectedChunks uint64
	// SyncCompaction runs compactions inline instead of in the
	// background — deterministic, so fault harnesses use it.
	SyncCompaction bool
}

// IndexMode selects the repository's fingerprint-index implementation;
// see WithIndex.
type IndexMode = dedup.IndexMode

const (
	// IndexMap rebuilds an in-memory fingerprint map from container
	// metadata on every open — the original engine. Open cost and
	// resident memory grow with chunk count.
	IndexMap = dedup.IndexMap
	// IndexPersistent keeps the fingerprint index in bloom-fronted
	// on-disk sorted runs under <path>/fpindex: opens read run footers,
	// filters, and only the container tail written since the last index
	// flush, and steady-state memory is bounded regardless of how many
	// chunks the repository holds.
	IndexPersistent = dedup.IndexPersistent
)

// IndexDirName is the subdirectory of a repository path holding the
// persistent fingerprint index's run files and manifests.
const IndexDirName = "fpindex"

// RepositoryOption configures CreateRepository and OpenRepository.
type RepositoryOption func(*repoOptions)

// WithShards sets the store's shard count in [1, 256]
// (DefaultStoreShards if unset). Ignored by OpenRepository: a reopened
// store's shard count comes from its files.
func WithShards(n int) RepositoryOption {
	return func(o *repoOptions) { o.shards = n }
}

// WithContainerBytes sets the container capacity in bytes (the paper's
// 4 MB if unset). Ignored by OpenRepository: a reopened store's capacity
// comes from its file headers.
func WithContainerBytes(n int) RepositoryOption {
	return func(o *repoOptions) { o.containerBytes = n }
}

// WithBackend stores sealed containers through a custom StoreBackend
// instead of the path-derived default (FileBackend for a non-empty path,
// MemBackend otherwise). The snapshot catalog still lives at the
// repository path; a custom-backend repository opened later must be given
// the same path and backend.
func WithBackend(b StoreBackend) RepositoryOption {
	return func(o *repoOptions) { o.backend = b }
}

// WithIndex selects the fingerprint-index implementation (IndexMap if
// unset). IndexPersistent requires a file-backed repository (a non-empty
// path); the index lives under <path>/fpindex. Like the trace log, the
// choice is sticky: a repository that ever ran IndexPersistent keeps
// using it after a plain OpenRepository — the existing fpindex directory
// re-selects the mode, so an open never silently pays a full container
// scan the previous process had already made unnecessary.
func WithIndex(mode IndexMode) RepositoryOption {
	return func(o *repoOptions) { o.indexMode = mode }
}

// WithIndexTuning adjusts the persistent index's memory and compaction
// knobs (IndexPersistent only; ignored for IndexMap). Benchmarks and
// fault harnesses shrink the memtable to force run flushes and
// compactions; production repositories normally keep the defaults.
func WithIndexTuning(t IndexTuning) RepositoryOption {
	return func(o *repoOptions) { o.indexTuning = t }
}

// WithChunking sets the content-defined chunking parameters
// (DefaultChunkingParams if unset). The Algorithm field selects the
// boundary function: AlgoRabin (the default) or the faster AlgoGear. The
// two are distinct formats — their cut points differ, so a repository's
// dedup ratio is only preserved against backups chunked with the same
// algorithm.
func WithChunking(p ChunkingParams) RepositoryOption {
	return func(o *repoOptions) { o.cfg.Chunking = p }
}

// WithChunkWorkers enables multi-stream chunking: Backup splits the input
// stream across n chunking workers with deterministic cut-point
// stitching, so the chunk sequence — and therefore recipes, dedup ratios,
// and store contents — is bit-identical to serial chunking at any worker
// count. Requires AlgoGear chunking with Min >= 64; 0 and 1 chunk
// serially.
func WithChunkWorkers(n int) RepositoryOption {
	return func(o *repoOptions) { o.cfg.ChunkWorkers = n }
}

// WithGroupCommit sets the group-commit straggler window for the snapshot
// catalog, the trace log, and the store's container seal passes: a commit
// leading an fsync waits up to window for concurrent Backups to join the
// same fsync round. Zero (the default)
// syncs immediately — concurrent commits still share fsyncs through
// absorption (a commit arriving while a sync is in flight rides the next
// round), which is always on; the window only adds bounded latency in
// exchange for larger batches under light concurrency. A lone Backup is
// delayed by at most the window per commit layer, never indefinitely.
func WithGroupCommit(window time.Duration) RepositoryOption {
	return func(o *repoOptions) { o.gcWindow = window }
}

// WithEncryption selects the chunk-encryption scheme (EncConvergent if
// unset). EncServerAided and EncMinHash also need WithKeyDeriver.
func WithEncryption(e Encryption) RepositoryOption {
	return func(o *repoOptions) { o.cfg.Encryption = e }
}

// WithKeyDeriver supplies the key deriver for EncServerAided and
// EncMinHash (the key-manager client or NewLocalDeriver).
func WithKeyDeriver(d KeyDeriver) RepositoryOption {
	return func(o *repoOptions) { o.cfg.Deriver = d }
}

// WithScramble enables per-segment upload-order scrambling (Algorithm 5,
// the paper's second defense). Seed 0 draws a fresh cryptographically
// random order per backup; a nonzero seed makes the order reproducible.
func WithScramble(seed int64) RepositoryOption {
	return func(o *repoOptions) {
		o.cfg.Scramble = true
		o.cfg.ScrambleSeed = seed
	}
}

// WithWorkers sets how many goroutines the backup encrypt stage and the
// restore fetch+decrypt stage fan out to (GOMAXPROCS if unset; 1 runs the
// pipelines inline). Results are identical at every worker count.
func WithWorkers(n int) RepositoryOption {
	return func(o *repoOptions) { o.cfg.Workers = n }
}

// WithRestoreCache bounds the parallel restore pipeline's LRU container
// cache, in containers (0, the default, disables it). Restored bytes are
// identical at every setting; on a file-backed repository the cache is
// what turns restore from one read per chunk into one read per container.
func WithRestoreCache(containers int) RepositoryOption {
	return func(o *repoOptions) { o.cfg.RestoreCacheContainers = containers }
}

// UploadObserver observes the post-encryption upload stream of every
// Backup — the Section 3.3 adversary view: ciphertext fingerprint and
// ciphertext size per chunk, in upload (wire) order.
type UploadObserver = dedup.UploadObserver

// TraceLog is a repository's durable adversary trace log (traces.fdt):
// one committed, CRC-framed, replayable trace per acknowledged Backup.
type TraceLog = tracelog.Log

// TapBackup is one committed backup trace in a TraceLog. It implements
// the streaming attack engine's ChunkSource, so a trace larger than RAM
// can be attacked without materializing it.
type TapBackup = tracelog.BackupTrace

// WithUploadObserver enables the adversary observation tap (Section 3.3):
// every Backup's post-encryption upload stream — ciphertext fingerprint,
// ciphertext size, upload order; nothing else — is recorded in an
// append-only trace log (traces.fdt beside the snapshot catalog on a
// file-backed repository; in memory otherwise) and, when obs is non-nil,
// forwarded to obs as it streams. The trace of an acknowledged snapshot
// is committed and fsynced before Backup returns; a crashed or failed
// backup leaves no committed trace. OpenRepository replays the log, so
// real backup histories can be fed to the attack engine via TraceLog.
//
// A repository that ever had the tap enabled keeps tapping after a plain
// OpenRepository: an existing traces.fdt re-enables the tap, keeping the
// observation history gap-free. Pass a nil obs to record the log alone.
func WithUploadObserver(obs UploadObserver) RepositoryOption {
	return func(o *repoOptions) {
		o.tap = true
		o.observer = obs
	}
}

// FileSystem is the file-operations interface a file-backed repository
// runs against — see the vfs package. The default is the real filesystem;
// fault-injection harnesses substitute faultio implementations.
type FileSystem = vfs.FS

// OSFileSystem is the production FileSystem: package os, unwrapped.
var OSFileSystem = vfs.OS

// WithFileSystem routes every file operation of a file-backed repository
// — container shards, snapshot catalog, trace log — through fs instead of
// the real filesystem. This is the fault-injection seam: a
// faultio.FaultFS injects errors, torn writes, and crash points under the
// exact production code paths. Ignored by repositories using a custom
// WithBackend for container storage (the catalog and trace log still go
// through fs then).
func WithFileSystem(fs FileSystem) RepositoryOption {
	return func(o *repoOptions) { o.fsys = fs }
}

// WithSalvage makes OpenRepository tolerate on-disk damage instead of
// failing: container shards and the snapshot catalog are opened in
// salvage mode, which skips unreadable records (resynchronizing on the
// next intact one) and keeps everything that still parses. A salvaged
// repository can read, restore, and list, but refuses to seal new
// containers until Repair has rebuilt a clean layout — open with salvage,
// run Repair, then operate normally. Ignored by CreateRepository.
func WithSalvage() RepositoryOption {
	return func(o *repoOptions) { o.salvage = true }
}

// WithDegradedRestore makes Restore survive lost chunks: unrecoverable
// regions of the output are zero-filled and reported through a
// *DegradedError (retrieve it with errors.As) instead of failing the
// restore — every byte outside the reported ranges is still exact. Off by
// default: a restore either returns the original bytes or an error.
func WithDegradedRestore() RepositoryOption {
	return func(o *repoOptions) { o.cfg.DegradedRestore = true }
}

// WithRepositoryKey sets the user key that seals snapshot recipes in the
// catalog (Section 3.3: recipes are conventionally encrypted under the
// user's own secret). OpenRepository must be given the same key — it is
// authenticated, so a wrong key fails loudly instead of yielding garbage.
// The zero-key default is fine for experiments but is no secret at all;
// production deployments must set a real key.
func WithRepositoryKey(k Key) RepositoryOption {
	return func(o *repoOptions) { o.key = k }
}

// newRepoStore builds a repository's dedup store, honoring the selected
// index mode. rebuild forces the persistent index to discard its state
// and rescan the containers — the salvage-open path, where containers
// were renumbered and old run locations would be lies.
func newRepoStore(path string, backend container.Backend, containerBytes int, o *repoOptions, rebuild bool) (*dedup.Store, error) {
	opts := dedup.StoreOptions{ContainerBytes: containerBytes}
	if o.indexMode == IndexPersistent {
		if path == "" {
			return nil, errors.New("freqdedup: IndexPersistent requires a file-backed repository path")
		}
		opts.Index = dedup.IndexPersistent
		opts.IndexDir = filepath.Join(path, IndexDirName)
		opts.FS = o.fsys
		opts.RebuildIndex = rebuild
		opts.MemtableEntries = o.indexTuning.MemtableEntries
		opts.CacheBytes = o.indexTuning.CacheBytes
		opts.ExpectedChunks = o.indexTuning.ExpectedChunks
		opts.SyncCompaction = o.indexTuning.SyncCompaction
	}
	return dedup.NewStoreWithOptions(backend, opts)
}

// buildRepo assembles a Repository once the backend and catalog exist and
// validates the client configuration by constructing a probe client.
func buildRepo(store *dedup.Store, catalog *dedup.Catalog, tapLog *tracelog.Log, o *repoOptions) (*Repository, error) {
	if _, err := dedup.NewClient(store, o.cfg); err != nil {
		return nil, err
	}
	if o.gcWindow > 0 {
		catalog.SetGroupCommitWindow(o.gcWindow)
		if tapLog != nil {
			tapLog.SetGroupCommitWindow(o.gcWindow)
		}
		// Container seal passes batch under the same window, so concurrent
		// Backups — in particular concurrent server sessions — share seal
		// fsyncs instead of each paying a whole-store flush.
		store.SetSealCommitWindow(o.gcWindow)
	}
	return &Repository{
		store:   store,
		catalog: catalog,
		cfg:     o.cfg,
		key:     o.key,
		tapLog:  tapLog,
		tapObs:  o.observer,
		fsys:    o.fsys,
	}, nil
}

// CreateRepository initializes a new repository. With a non-empty path it
// is file-backed: container shards and the snapshot catalog are created
// under the directory, and everything a returned Backup acknowledged
// survives a crash. With an empty path (and no WithBackend) the
// repository lives entirely in memory — the same API for tests and
// experiments, durable as nothing.
//
// It fails if the directory already holds a repository; use
// OpenRepository for that.
func CreateRepository(path string, opts ...RepositoryOption) (*Repository, error) {
	o := applyOptions(opts)
	if o.shards < 0 || o.shards > 256 {
		// Checked before any file is created: a late validation failure
		// must not leave a half-initialized directory behind.
		return nil, fmt.Errorf("freqdedup: shard count %d out of range [1, 256]", o.shards)
	}
	shards := o.shards
	if shards == 0 {
		shards = dedup.DefaultShards
	}
	containerBytes := o.containerBytes
	if containerBytes == 0 {
		containerBytes = container.DefaultBytes
	}

	// On any failure past this point, close and REMOVE everything this
	// call created (shard files, catalog), so a failed create leaves the
	// directory as it found it instead of bricking both a retried Create
	// (files exist) and Open (catalog missing). Files behind a
	// caller-provided backend are the caller's; only the catalog is ours
	// then.
	backend := o.backend
	removeShards := false
	fail := func(err error) (*Repository, error) {
		if removeShards {
			if names, gerr := o.fsys.Glob(filepath.Join(path, "shard-*.fdc")); gerr == nil {
				for _, name := range names {
					o.fsys.Remove(name)
				}
			}
		}
		return nil, err
	}
	if backend == nil {
		if path == "" {
			backend = container.NewMemBackend(shards)
		} else {
			fb, err := container.CreateFileBackendFS(o.fsys, path, shards, containerBytes)
			if err != nil {
				return nil, err
			}
			backend = fb
			removeShards = true
		}
	}

	var catalog *dedup.Catalog
	catalogPath := ""
	if path == "" {
		catalog = dedup.NewMemCatalog()
	} else {
		catalogPath = filepath.Join(path, dedup.CatalogName)
		var err error
		catalog, err = dedup.CreateCatalogFS(o.fsys, catalogPath)
		if err != nil {
			backend.Close()
			return fail(err)
		}
	}
	var tapLog *tracelog.Log
	tapPath := ""
	failClosing := func(err error) (*Repository, error) {
		if tapLog != nil {
			tapLog.Close()
		}
		catalog.Close()
		backend.Close()
		if catalogPath != "" {
			o.fsys.Remove(catalogPath)
		}
		if tapPath != "" {
			o.fsys.Remove(tapPath)
		}
		return fail(err)
	}
	if o.tap {
		if path == "" {
			tapLog = tracelog.NewMem()
		} else {
			tapPath = filepath.Join(path, tracelog.LogName)
			var terr error
			tapLog, terr = tracelog.CreateFS(o.fsys, tapPath)
			if terr != nil {
				tapPath = ""
				return failClosing(terr)
			}
		}
	}

	store, err := newRepoStore(path, backend, o.containerBytes, o, false)
	if err != nil {
		return failClosing(err)
	}
	repo, err := buildRepo(store, catalog, tapLog, o)
	if err != nil {
		return failClosing(err)
	}
	repo.path = path
	return repo, nil
}

// OpenRepository reopens a repository created by CreateRepository: the
// container shards are revalidated and reindexed, the snapshot catalog is
// replayed (recovering from a crash-torn tail), and every snapshot's
// chunk references are re-registered with the store — so Snapshots,
// Restore, and crucially GC behave exactly as they did before the
// process restart. The repository key must match the one the snapshots
// were sealed under.
func OpenRepository(path string, opts ...RepositoryOption) (*Repository, error) {
	if path == "" {
		return nil, errors.New("freqdedup: OpenRepository needs a repository path")
	}
	o := applyOptions(opts)

	backend := o.backend
	cleanup := func() {}
	// A file-backed store's capacity comes from its file headers —
	// WithContainerBytes is documented as ignored on open, so new
	// containers keep packing with the geometry the store was created
	// with. A custom backend may not record one, so the option applies.
	containerBytes := o.containerBytes
	var salvaged container.SalvageStats
	var catSalvaged dedup.CatalogSalvageStats
	if backend == nil {
		var fb *container.FileBackend
		var err error
		if o.salvage {
			fb, salvaged, err = container.OpenFileBackendSalvage(o.fsys, path)
		} else {
			fb, err = container.OpenFileBackendFS(o.fsys, path)
		}
		if err != nil {
			return nil, err
		}
		backend = fb
		containerBytes = 0
		cleanup = func() { fb.Close() }
	}
	var catalog *dedup.Catalog
	var err error
	if o.salvage {
		catalog, catSalvaged, err = dedup.OpenCatalogSalvage(o.fsys, filepath.Join(path, dedup.CatalogName))
	} else {
		catalog, err = dedup.OpenCatalogFS(o.fsys, filepath.Join(path, dedup.CatalogName))
	}
	if err != nil {
		cleanup()
		return nil, err
	}
	// Reopen (or, with WithUploadObserver on a previously untapped
	// repository, start) the adversary trace log. An existing traces.fdt
	// re-enables the tap even without the option, so an observation
	// history never silently gains gaps.
	var tapLog *tracelog.Log
	tapPath := filepath.Join(path, tracelog.LogName)
	if _, statErr := o.fsys.Stat(tapPath); statErr == nil {
		tapLog, err = tracelog.OpenFS(o.fsys, tapPath)
	} else if o.tap {
		tapLog, err = tracelog.CreateFS(o.fsys, tapPath)
	}
	if err != nil {
		catalog.Close()
		cleanup()
		return nil, err
	}
	// The persistent index is sticky, like the trace log: an existing
	// fpindex directory re-selects the mode even without WithIndex, so a
	// later plain open never regresses to a full container scan.
	if o.indexMode == IndexMap {
		if _, statErr := o.fsys.Stat(filepath.Join(path, IndexDirName)); statErr == nil {
			o.indexMode = IndexPersistent
		}
	}
	store, err := newRepoStore(path, backend, containerBytes, o, o.salvage)
	if err != nil {
		if tapLog != nil {
			tapLog.Close()
		}
		catalog.Close()
		cleanup()
		return nil, err
	}
	fail := func(err error) (*Repository, error) {
		if tapLog != nil {
			tapLog.Close()
		}
		catalog.Close()
		store.Close()
		return nil, err
	}
	// Validate the repository key against one sealed recipe now (a wrong
	// key must fail the open, not a later GC); the full retention rebuild
	// — unsealing every snapshot's recipe to recover reference counts —
	// is deferred to ensureRetention, so a cold open stays one metadata
	// pass even with thousands of snapshots.
	if recs := catalog.List(); len(recs) > 0 {
		if _, oerr := mle.OpenRecipe(recs[0].SealedRecipe, o.key); oerr != nil {
			return fail(fmt.Errorf("freqdedup: open snapshot %q recipe (wrong repository key?): %w", recs[0].Name, oerr))
		}
	}
	repo, err := buildRepo(store, catalog, tapLog, o)
	if err != nil {
		return fail(err)
	}
	repo.path = path
	repo.salvaged = salvaged
	repo.catSalvaged = catSalvaged
	return repo, nil
}

// ensureRetention completes the retention rebuild a reopened repository
// deferred: every cataloged snapshot's recipe is unsealed and its chunk
// references re-registered with the store, exactly once per Repository.
// Every path that consults or mutates retention state (Backup's
// registration, Delete, GC, Repair) calls it first, so reference counts
// are always complete before they matter. The error is sticky: a
// half-rebuilt count must never feed a GC sweep.
func (r *Repository) ensureRetention() error {
	r.retOnce.Do(func() {
		for _, rec := range r.catalog.List() {
			recipe, err := mle.OpenRecipe(rec.SealedRecipe, r.key)
			if err != nil {
				r.retErr = fmt.Errorf("freqdedup: open snapshot %q recipe (wrong repository key?): %w", rec.Name, err)
				return
			}
			if err := r.store.RegisterBackup(rec.Name, recipe); err != nil {
				r.retErr = fmt.Errorf("freqdedup: re-register snapshot %q: %w", rec.Name, err)
				return
			}
		}
	})
	return r.retErr
}

func applyOptions(opts []RepositoryOption) *repoOptions {
	o := &repoOptions{fsys: vfs.OS}
	for _, opt := range opts {
		opt(o)
	}
	if o.fsys == nil {
		o.fsys = vfs.OS
	}
	return o
}

// Backup reads src to EOF, deduplicating its chunks into the repository,
// and records the result as a snapshot under the given name. The recipe
// is sealed under the repository key and persisted in the snapshot
// catalog before Backup returns, and on a file-backed repository the
// written containers are synced first — an acknowledged snapshot survives
// a crash.
//
// Cancelling ctx stops the pipeline promptly with ctx.Err(); no snapshot
// is recorded, and chunks uploaded before the cancellation either
// deduplicate a retried backup or fall to the next GC.
func (r *Repository) Backup(ctx context.Context, name string, src io.Reader) (Snapshot, error) {
	if name == "" {
		return Snapshot{}, errors.New("freqdedup: empty snapshot name")
	}
	if err := r.ensureRetention(); err != nil {
		return Snapshot{}, err
	}
	if _, ok := r.catalog.Get(name); ok {
		return Snapshot{}, fmt.Errorf("%w: %q", ErrSnapshotExists, name)
	}
	// Exclude GC for the whole upload-to-registration window: until
	// RegisterBackup runs, this backup's chunks look unreferenced and a
	// concurrent sweep would reclaim them.
	r.gcMu.RLock()
	defer r.gcMu.RUnlock()
	// When the tap is enabled, record this backup's upload stream in a
	// trace-log session: committed (and fsynced) only once the uploaded
	// data itself is durable, so an acknowledged snapshot always has a
	// committed trace and a failed backup leaves none. A failure after
	// the commit leaves a committed trace without a snapshot — correct
	// for an adversary view: those uploads did cross the wire.
	cfg := r.cfg
	var sess *tracelog.Session
	if r.tapLog != nil {
		var err error
		sess, err = r.tapLog.Begin(name)
		if err != nil {
			return Snapshot{}, err
		}
		if r.tapObs != nil {
			cfg.Observer = teeObserver{sess, r.tapObs}
		} else {
			cfg.Observer = sess
		}
	}
	abortTap := func(err error) (Snapshot, error) {
		if sess != nil {
			sess.Abort()
		}
		return Snapshot{}, err
	}
	client, err := dedup.NewClient(r.store, cfg)
	if err != nil {
		return abortTap(err)
	}
	recipe, err := client.BackupContext(ctx, src)
	if err != nil {
		return abortTap(err)
	}
	// Seal the data before cataloging the snapshot: a snapshot record must
	// never outlive (or predate) its chunks across a crash.
	if err := r.store.Sync(); err != nil {
		return abortTap(err)
	}
	if sess != nil {
		if err := sess.Commit(); err != nil {
			return Snapshot{}, err
		}
	}
	sealed, err := recipe.Seal(r.key)
	if err != nil {
		return Snapshot{}, err
	}
	// Truncated to the catalog's persisted precision (Unix seconds), so
	// the CreatedAt returned here equals the one Snapshots reports after
	// a reopen.
	created := time.Unix(time.Now().Unix(), 0)
	rec := dedup.SnapshotRecord{
		Name:         name,
		CreatedUnix:  created.Unix(),
		LogicalBytes: recipe.TotalSize(),
		Chunks:       uint32(len(recipe.Entries)),
		SealedRecipe: sealed,
	}
	if err := r.catalog.Add(rec); err != nil {
		return Snapshot{}, err
	}
	if err := r.store.RegisterBackup(name, recipe); err != nil {
		// Roll the catalog back so it never disagrees with retention
		// state; the uploaded chunks fall to the next GC.
		_ = r.catalog.Delete(name)
		return Snapshot{}, err
	}
	return Snapshot{
		Name:         name,
		CreatedAt:    created,
		LogicalBytes: rec.LogicalBytes,
		Chunks:       len(recipe.Entries),
	}, nil
}

// Restore writes the named snapshot's original bytes to w, fetching and
// decrypting through the parallel restore pipeline. Cancelling ctx stops
// the pipeline promptly with ctx.Err(); bytes already written to w stay
// written (the output is a strict prefix).
func (r *Repository) Restore(ctx context.Context, name string, w io.Writer) error {
	rec, ok := r.catalog.Get(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrSnapshotNotFound, name)
	}
	recipe, err := mle.OpenRecipe(rec.SealedRecipe, r.key)
	if err != nil {
		return fmt.Errorf("freqdedup: open snapshot %q recipe: %w", name, err)
	}
	client, err := dedup.NewClient(r.store, r.cfg)
	if err != nil {
		return err
	}
	return client.RestoreContext(ctx, recipe, w)
}

// Snapshots lists the repository's snapshots sorted by name, each with
// its size and chunk count. The listing needs no decryption: the summary
// metadata lives beside the sealed recipes in the catalog.
func (r *Repository) Snapshots() []Snapshot {
	recs := r.catalog.List()
	out := make([]Snapshot, len(recs))
	for i, rec := range recs {
		out[i] = Snapshot{
			Name:         rec.Name,
			CreatedAt:    time.Unix(rec.CreatedUnix, 0),
			LogicalBytes: rec.LogicalBytes,
			Chunks:       int(rec.Chunks),
		}
	}
	return out
}

// Delete removes the named snapshot from the catalog (durably, before
// Delete returns) and drops its chunk references. Chunk data is reclaimed
// by the next GC, not here — other snapshots may share the chunks.
func (r *Repository) Delete(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := r.ensureRetention(); err != nil {
		return err
	}
	if err := r.catalog.Delete(name); err != nil {
		return err
	}
	if err := r.store.DeleteBackup(name); err != nil && !errors.Is(err, dedup.ErrUnknownBackup) {
		return err
	}
	return nil
}

// GC reclaims every chunk no snapshot references, compacting the
// containers that held them. Thanks to the catalog, this is safe at any
// point in the repository's life — including right after OpenRepository,
// where the raw Store API would have reclaimed everything. GC waits for
// in-flight Backups to finish (and blocks new ones) for the duration of
// the sweep. Cancelling ctx stops the sweep between shards with partial
// stats and ctx.Err(); already-swept shards keep their compacted state
// and a re-run completes the sweep.
func (r *Repository) GC(ctx context.Context) (GCStats, error) {
	if err := r.ensureRetention(); err != nil {
		return GCStats{}, err
	}
	r.gcMu.Lock()
	defer r.gcMu.Unlock()
	return r.store.GCContext(ctx)
}

// Verify checks the whole repository: every stored chunk's bytes against
// its fingerprint (and, on a file-backed repository, every container
// record's checksum), then every snapshot's sealed recipe against the
// repository key and every recipe entry against the store's index — so a
// nil return means every snapshot is restorable as written. Cancelling
// ctx stops the scan with ctx.Err().
func (r *Repository) Verify(ctx context.Context) error {
	if err := r.store.Verify(ctx); err != nil {
		return err
	}
	for _, rec := range r.catalog.List() {
		if err := ctx.Err(); err != nil {
			return err
		}
		recipe, err := mle.OpenRecipe(rec.SealedRecipe, r.key)
		if err != nil {
			return fmt.Errorf("freqdedup: verify snapshot %q: unsealing recipe: %w", rec.Name, err)
		}
		for i, e := range recipe.Entries {
			if !r.store.Contains(e.Fingerprint) {
				return fmt.Errorf("freqdedup: verify snapshot %q: chunk %d (%v) missing from store",
					rec.Name, i, e.Fingerprint)
			}
		}
	}
	return nil
}

// DegradedError reports a restore that completed with zero-filled holes
// where chunks were unrecoverable; see WithDegradedRestore.
type DegradedError = dedup.DegradedError

// LostRange is one zero-filled region of a degraded restore's output.
type LostRange = dedup.LostRange

// SnapshotDamage describes what a Repair found missing from one snapshot.
type SnapshotDamage struct {
	// Name is the snapshot's name.
	Name string
	// ChunksLost is how many of the snapshot's unique chunks the store no
	// longer holds.
	ChunksLost int
	// BytesLost is the ciphertext size of the lost chunks.
	BytesLost uint64
	// TotalChunks is the snapshot's unique chunk count, for scale.
	TotalChunks int
	// RecipeUnreadable marks a snapshot whose sealed recipe failed to
	// open (authentication failure — corrupt record or wrong key); the
	// snapshot is unrestorable and its chunk counts are unknown.
	RecipeUnreadable bool
}

// RepairReport is a Repair's full account of what was found and dropped.
type RepairReport struct {
	// ContainersQuarantined counts unreadable containers dropped from the
	// store (their raw records preserved at QuarantinePaths).
	ContainersQuarantined int
	// ChunksLost and BytesLost measure the distinct chunks the store no
	// longer holds after the repair.
	ChunksLost int
	BytesLost  uint64
	// QuarantinePaths lists the preserved raw records of quarantined
	// containers, for forensics.
	QuarantinePaths []string
	// SalvageContainersLost and SalvageBytesSkipped report what the
	// salvage open (WithSalvage) had to skip in the container shards
	// before Repair even ran; zero for a cleanly opened repository.
	SalvageContainersLost int
	SalvageBytesSkipped   int64
	// CatalogRecordsDropped and CatalogBytesSkipped report the same for
	// the snapshot catalog: snapshot records lost to on-disk damage.
	CatalogRecordsDropped int
	CatalogBytesSkipped   int64
	// Snapshots lists every snapshot that lost chunks (or its recipe),
	// sorted by name. An empty list means every remaining snapshot is
	// fully restorable.
	Snapshots []SnapshotDamage
}

// Damaged reports whether the repair found any loss at all.
func (r *RepairReport) Damaged() bool {
	return r.ContainersQuarantined > 0 || r.ChunksLost > 0 ||
		r.SalvageContainersLost > 0 || r.SalvageBytesSkipped > 0 ||
		r.CatalogRecordsDropped > 0 || r.CatalogBytesSkipped > 0 ||
		len(r.Snapshots) > 0
}

// Repair is the repository fsck: it scans every container tolerantly,
// quarantines the unreadable ones (preserving their raw bytes for
// forensics), drops chunks whose content no longer matches their
// fingerprint, repacks the survivors into a clean layout, rebuilds the
// fingerprint index, resets retention state, and re-registers every
// snapshot's references from the catalog — then reports exactly which
// snapshots lost which chunks. After a nil-error Repair, the store is
// writable again (a salvage-mode open's seal refusal is lifted), Verify's
// chunk checks agree with physical reality, and restores of undamaged
// snapshots are byte-identical; damaged snapshots restore with
// WithDegradedRestore, zero-filled exactly at the reported losses.
//
// Repair stops the world like GC: it waits for in-flight Backups and
// blocks new ones for the duration. Cancelling ctx stops it between
// shards with ctx.Err(); already-repaired shards keep their repaired
// state and a re-run completes the job.
func (r *Repository) Repair(ctx context.Context) (RepairReport, error) {
	// Repair resets retention and re-registers from the catalog itself;
	// running ensureRetention first keeps the once-state consistent so a
	// later Backup/GC does not re-register on top of Repair's rebuild.
	if err := r.ensureRetention(); err != nil {
		return RepairReport{}, err
	}
	r.gcMu.Lock()
	defer r.gcMu.Unlock()

	st, err := r.store.Repair(ctx)
	rep := RepairReport{
		ContainersQuarantined: st.ContainersQuarantined,
		ChunksLost:            st.ChunksLost,
		BytesLost:             st.BytesLost,
		QuarantinePaths:       st.QuarantinePaths,
		SalvageContainersLost: r.salvaged.ContainersLost,
		SalvageBytesSkipped:   r.salvaged.BytesSkipped,
		CatalogRecordsDropped: r.catSalvaged.RecordsDropped,
		CatalogBytesSkipped:   r.catSalvaged.BytesSkipped,
	}
	if err != nil {
		return rep, err
	}

	// Retention state was built against the pre-repair index; rebuild it
	// from the catalog so GC decisions match what the store now holds, and
	// measure each snapshot's damage along the way. RegisterBackup accepts
	// fingerprints missing from the index — a damaged snapshot stays
	// registered, so its surviving chunks are still GC-protected.
	r.store.ResetRetention()
	for _, rec := range r.catalog.List() {
		recipe, oerr := mle.OpenRecipe(rec.SealedRecipe, r.key)
		if oerr != nil {
			rep.Snapshots = append(rep.Snapshots, SnapshotDamage{
				Name:             rec.Name,
				RecipeUnreadable: true,
			})
			continue
		}
		if rerr := r.store.RegisterBackup(rec.Name, recipe); rerr != nil {
			return rep, fmt.Errorf("freqdedup: repair: re-register snapshot %q: %w", rec.Name, rerr)
		}
		dmg := SnapshotDamage{Name: rec.Name}
		seen := make(map[Fingerprint]struct{}, len(recipe.Entries))
		for _, e := range recipe.Entries {
			if _, dup := seen[e.Fingerprint]; dup {
				continue
			}
			seen[e.Fingerprint] = struct{}{}
			dmg.TotalChunks++
			if !r.store.Contains(e.Fingerprint) {
				dmg.ChunksLost++
				dmg.BytesLost += uint64(e.Size)
			}
		}
		if dmg.ChunksLost > 0 {
			rep.Snapshots = append(rep.Snapshots, dmg)
		}
	}
	return rep, nil
}

// Stats reports the repository's deduplication effectiveness so far.
func (r *Repository) Stats() DedupStats { return r.store.Stats() }

// TraceLog returns the repository's adversary trace log, or nil when the
// observation tap was never enabled. Each committed trace replays one
// acknowledged Backup's upload stream into the attack engine — see
// TapBackup. The log stays valid until Close.
func (r *Repository) TraceLog() *TraceLog { return r.tapLog }

// teeObserver fans one tap out to the trace-log session and the caller's
// observer. The session records first: the durable adversary log must
// not miss a window the caller already saw.
type teeObserver struct {
	sess *tracelog.Session
	obs  UploadObserver
}

func (t teeObserver) ObserveUpload(refs []trace.ChunkRef) error {
	if err := t.sess.ObserveUpload(refs); err != nil {
		return err
	}
	return t.obs.ObserveUpload(refs)
}

// Close seals open containers and releases the repository's files. Every
// acknowledged snapshot is already durable before Close; closing exists
// to release resources (and to seal chunks uploaded by raw-store users
// bypassing Backup). The repository must not be used afterwards.
//
// Close is idempotent: a second call is a no-op returning nil. It is also
// safe after a failed Backup or a storage-layer error — each layer is
// closed independently, and the first error is reported without stopping
// the others from releasing their resources.
func (r *Repository) Close() error {
	r.closeMu.Lock()
	defer r.closeMu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	err := r.store.Close()
	if cerr := r.catalog.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if r.tapLog != nil {
		if cerr := r.tapLog.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
