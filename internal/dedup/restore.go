package dedup

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"

	"freqdedup/internal/container"
	"freqdedup/internal/lru"
	"freqdedup/internal/mle"
)

// Restore reconstructs the original stream described by recipe, writing it
// to w. Chunks are fetched by ciphertext fingerprint and decrypted with
// the per-chunk keys; recipe order restores the pre-scrambling layout.
//
// Restore is a container-granular parallel pipeline: the recipe is planned
// into container read batches (maximal runs of adjacent chunks stored in
// the same container), Config.Workers goroutines fetch and decrypt the
// batches — reading whole containers through an LRU container cache of
// Config.RestoreCacheContainers buffers — and an in-order writer
// reassembles the stream. The restored bytes are identical to the serial
// chunk-at-a-time restore at every worker count and cache size; with
// Workers == 1 and no cache the serial path runs directly. Peak decrypted
// plaintext held for reordering is bounded by roughly 2×Workers
// containers.
func (c *Client) Restore(recipe *mle.Recipe, w io.Writer) error {
	return c.RestoreContext(context.Background(), recipe, w)
}

// RestoreContext is Restore with cancellation: when ctx is cancelled the
// pipeline stops promptly between chunks — the fetch+decrypt workers abort,
// the in-order writer stops writing, and every pooled plaintext buffer
// still in flight is handed back to the pool before RestoreContext returns
// ctx.Err(). Bytes written to w before the cancellation stay written; the
// output is a strict prefix of the stream.
func (c *Client) RestoreContext(ctx context.Context, recipe *mle.Recipe, w io.Writer) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if c.cfg.Workers <= 1 && c.cfg.RestoreCacheContainers == 0 {
		return c.restoreSerial(ctx, recipe, w)
	}
	return c.restoreParallel(ctx, recipe, w)
}

// restoreSerial is the chunk-at-a-time restore loop: one store lookup and
// one decrypt per recipe entry, in order. It is the oracle the parallel
// pipeline is proven against and the path Restore takes for the
// single-worker, uncached configuration.
func (c *Client) restoreSerial(ctx context.Context, recipe *mle.Recipe, w io.Writer) error {
	var offset uint64
	var lost []LostRange
	for i, e := range recipe.Entries {
		if err := ctx.Err(); err != nil {
			return err
		}
		ct, err := c.store.Get(e.Fingerprint)
		if err != nil {
			if c.cfg.DegradedRestore && lostable(err) {
				if err := writeZeros(w, int(e.Size)); err != nil {
					return err
				}
				lost = append(lost, LostRange{Offset: offset, Length: uint64(e.Size), Fingerprint: e.Fingerprint})
				offset += uint64(e.Size)
				continue
			}
			return fmt.Errorf("dedup: restore: chunk %d (%v): %w", i, e.Fingerprint, err)
		}
		plain := mle.DecryptDeterministic(e.Key, ct)
		if len(plain) != int(e.Size) {
			return fmt.Errorf("dedup: restore: chunk %d size %d, recipe says %d", i, len(plain), e.Size)
		}
		if _, err := w.Write(plain); err != nil {
			return fmt.Errorf("dedup: restore: write: %w", err)
		}
		offset += uint64(e.Size)
	}
	if len(lost) > 0 {
		return &DegradedError{Ranges: lost}
	}
	return nil
}

// writeZeros writes n zero bytes through a pooled buffer.
func writeZeros(w io.Writer, n int) error {
	buf := restoreBufGet(n)
	zeroFill(buf)
	_, err := w.Write(buf)
	restoreBufPut(buf)
	if err != nil {
		return fmt.Errorf("dedup: restore: write: %w", err)
	}
	return nil
}

// restoreBatch is one unit of the parallel restore plan: a maximal run of
// adjacent recipe entries whose chunks live in the same container, so the
// run costs one container fetch.
type restoreBatch struct {
	ref   containerRef
	start int // first recipe entry index
	n     int // number of entries
}

// restoreResult is one decrypted batch heading to the in-order writer:
// pooled plaintext buffers in recipe order, or the batch's error. In
// degraded mode a batch may also carry the lost ranges it zero-filled.
type restoreResult struct {
	idx  int
	bufs [][]byte
	lost []LostRange
	err  error
}

// restoreCache is the shared container cache of one Restore call: an LRU
// of whole-container entry sets, bounded in containers, behind a mutex so
// fetch workers share hits.
type restoreCache struct {
	mu sync.Mutex
	c  *lru.Cache[containerRef, []container.Entry]
}

func (rc *restoreCache) get(ref containerRef) ([]container.Entry, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.c.Get(ref)
}

func (rc *restoreCache) put(ref containerRef, entries []container.Entry) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.c.Put(ref, entries, 1)
}

// restoreParallel plans, fans out, and reassembles. Batches are handed to
// Config.Workers fetch+decrypt goroutines through a bounded window
// (2×workers batches in flight), and the caller's goroutine writes
// finished batches in plan order, releasing each pooled plaintext buffer
// as soon as it is written. On any error — a missing chunk, a corrupt
// container, a failing writer — the pipeline drains: in-flight batches
// finish or abort, and every pooled buffer is handed back (the drain
// contract mirrors the backup pipeline's).
func (c *Client) restoreParallel(ctx context.Context, recipe *mle.Recipe, w io.Writer) error {
	entries := recipe.Entries
	if len(entries) == 0 {
		return nil
	}

	// Plan the recipe into container read batches. Locations are kept so
	// workers can resolve entries within a fetched container without
	// searching; they are verified against the fingerprint at use (a
	// concurrent GC may move chunks) with a point-lookup fallback.
	locs := make([]container.Location, len(entries))
	offsets := make([]uint64, len(entries))
	var off uint64
	var batches []restoreBatch
	for i, e := range entries {
		offsets[i] = off
		off += uint64(e.Size)
		ref, loc, ok, lerr := c.store.locate(e.Fingerprint)
		if lerr != nil && !c.cfg.DegradedRestore {
			return fmt.Errorf("dedup: restore: chunk %d: %w", i, lerr)
		}
		if !ok || lerr != nil {
			if !c.cfg.DegradedRestore {
				return fmt.Errorf("dedup: restore: chunk %d (%v): %w", i, e.Fingerprint, ErrNotFound)
			}
			// Degraded mode: plan the missing chunk into a container-less
			// batch (adjacent missing chunks share one); the worker's
			// point-lookup fallback re-checks the store and zero-fills.
			ref = containerRef{shard: -1, id: -1}
			loc = container.Location{Index: -1}
		}
		locs[i] = loc
		if n := len(batches); n > 0 && batches[n-1].ref == ref {
			batches[n-1].n++
		} else {
			batches = append(batches, restoreBatch{ref: ref, start: i, n: 1})
		}
	}

	var cache *restoreCache
	if c.cfg.RestoreCacheContainers > 0 {
		cache = &restoreCache{c: lru.New[containerRef, []container.Entry](uint64(c.cfg.RestoreCacheContainers), nil)}
	}

	workers := c.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(batches) {
		workers = len(batches)
	}
	inflight := 2 * workers

	jobs := make(chan int)
	results := make(chan restoreResult, inflight)
	done := make(chan struct{})
	sem := make(chan struct{}, inflight)

	// Dispatcher: feeds batch indexes, throttled by the in-flight window
	// so reordering memory stays bounded. Cancellation stops the feed; the
	// workers then drain jobs and exit.
	go func() {
		defer close(jobs)
		for bi := range batches {
			select {
			case sem <- struct{}{}:
			case <-done:
				return
			case <-ctx.Done():
				return
			}
			select {
			case jobs <- bi:
			case <-done:
				return
			case <-ctx.Done():
				return
			}
		}
	}()

	// Fetch+decrypt workers. Each checks for cancellation before starting
	// a batch, so a cancelled restore stops decrypting within one batch.
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for bi := range jobs {
				if ctx.Err() != nil {
					return
				}
				res := c.processRestoreBatch(entries, locs, offsets, batches[bi], cache)
				res.idx = bi
				select {
				case results <- res:
				case <-done:
					releaseRestoreBufs(res.bufs)
					return
				case <-ctx.Done():
					releaseRestoreBufs(res.bufs)
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// In-order writer: reassemble batches in plan order; after the first
	// error keep draining so every worker exits and every pooled buffer
	// comes back. Cancellation is just another first error: the workers
	// stop on their own, results closes, and the drain below releases
	// whatever they had produced.
	pending := make(map[int]restoreResult, inflight)
	next := 0
	var firstErr error
	var lostAll []LostRange
	fail := func(err error) {
		firstErr = err
		close(done)
	}
	for res := range results {
		if firstErr == nil {
			if err := ctx.Err(); err != nil {
				fail(err)
			}
		}
		if firstErr != nil {
			releaseRestoreBufs(res.bufs)
			continue
		}
		if res.err != nil {
			fail(res.err)
			continue
		}
		pending[res.idx] = res
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if err := writeRestoreBufs(w, r.bufs); err != nil {
				fail(err)
				break
			}
			// Lost ranges are appended in plan (stream) order, because
			// batches are written in plan order.
			lostAll = append(lostAll, r.lost...)
			<-sem
			next++
		}
	}
	for _, r := range pending {
		releaseRestoreBufs(r.bufs)
	}
	if firstErr == nil {
		// The pipeline may have shut down on cancellation before the
		// writer saw a single result; never report a truncated restore as
		// success.
		firstErr = ctx.Err()
	}
	if firstErr == nil && len(lostAll) > 0 {
		return &DegradedError{Ranges: lostAll}
	}
	return firstErr
}

// processRestoreBatch fetches the batch's container (through the cache,
// when one is configured) and decrypts its entries into pooled buffers.
// In degraded mode, unrecoverable chunks become zero-filled buffers with
// their ranges recorded instead of aborting the batch.
func (c *Client) processRestoreBatch(entries []mle.RecipeEntry, locs []container.Location, offsets []uint64, b restoreBatch, cache *restoreCache) restoreResult {
	var centries []container.Entry
	if b.ref.shard >= 0 {
		var ok bool
		if cache != nil {
			centries, ok = cache.get(b.ref)
		}
		if !ok {
			var err error
			centries, err = c.store.readContainer(b.ref)
			switch {
			case errors.Is(err, container.ErrNotFound):
				// The planned container vanished (a concurrent GC compacted
				// the shard); every chunk is still live, so fall through with
				// no container — each entry below takes the point-lookup
				// fallback.
				centries = nil
			case c.cfg.DegradedRestore && lostable(err):
				// A corrupt container in degraded mode: fall through with no
				// container, so each entry's point lookup decides its fate
				// individually (it fails the same way and zero-fills).
				centries = nil
			case err != nil:
				return restoreResult{err: fmt.Errorf("dedup: restore: container %d (shard %d): %w", b.ref.id, b.ref.shard, err)}
			default:
				if cache != nil {
					cache.put(b.ref, centries)
				}
			}
		}
	}
	bufs := make([][]byte, 0, b.n)
	var lost []LostRange
	abort := func(err error) restoreResult {
		releaseRestoreBufs(bufs)
		return restoreResult{err: err}
	}
	for i := b.start; i < b.start+b.n; i++ {
		e := entries[i]
		var ct []byte
		if idx := locs[i].Index; idx >= 0 && idx < len(centries) && centries[idx].FP == e.Fingerprint {
			ct = centries[idx].Data
		} else {
			// The planned location went stale (a GC pass moved survivors
			// mid-restore) or was never resolved; fall back to a point
			// lookup.
			var err error
			ct, err = c.store.Get(e.Fingerprint)
			if err != nil {
				if c.cfg.DegradedRestore && lostable(err) {
					buf := restoreBufGet(int(e.Size))
					zeroFill(buf)
					bufs = append(bufs, buf)
					lost = append(lost, LostRange{Offset: offsets[i], Length: uint64(e.Size), Fingerprint: e.Fingerprint})
					continue
				}
				return abort(fmt.Errorf("dedup: restore: chunk %d (%v): %w", i, e.Fingerprint, err))
			}
		}
		if len(ct) != int(e.Size) {
			return abort(fmt.Errorf("dedup: restore: chunk %d size %d, recipe says %d", i, len(ct), e.Size))
		}
		buf := restoreBufGet(len(ct))
		mle.DecryptDeterministicInto(e.Key, ct, buf)
		bufs = append(bufs, buf)
	}
	return restoreResult{bufs: bufs, lost: lost}
}

// writeRestoreBufs writes a batch's buffers in order, releasing each to
// the pool as it is consumed; on a write error the unwritten remainder is
// released too.
func writeRestoreBufs(w io.Writer, bufs [][]byte) error {
	for i, buf := range bufs {
		if _, err := w.Write(buf); err != nil {
			releaseRestoreBufs(bufs[i:])
			return fmt.Errorf("dedup: restore: write: %w", err)
		}
		restoreBufPut(buf)
	}
	return nil
}

// releaseRestoreBufs hands a batch's remaining buffers back to the pool.
func releaseRestoreBufs(bufs [][]byte) {
	for _, buf := range bufs {
		if buf != nil {
			restoreBufPut(buf)
		}
	}
}

// restorePool recycles plaintext buffers across restore batches, so a
// long restore allocates a steady-state set of buffers instead of one per
// chunk. Buffers are pow2-capacity so pooled capacities cluster.
var restorePool sync.Pool

// restoreBufsOutstanding counts pool buffers currently handed out; the
// drain-on-error tests assert it returns to its baseline after a failed
// restore (no buffer is abandoned).
var restoreBufsOutstanding atomic.Int64

// RestoreBufsOutstanding reports how many pooled restore buffers are
// currently handed out. It is a test hook: harnesses (the crash-point
// explorer, the drain-on-error tests) assert it returns to its baseline
// after failed and degraded restores, proving no pooled buffer leaks.
func RestoreBufsOutstanding() int64 { return restoreBufsOutstanding.Load() }

// restoreBufGet returns a pooled buffer of length n.
func restoreBufGet(n int) []byte {
	restoreBufsOutstanding.Add(1)
	if v := restorePool.Get(); v != nil {
		buf := *(v.(*[]byte))
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	capacity := 1
	if n > 1 {
		capacity = 1 << bits.Len(uint(n-1))
	}
	return make([]byte, n, capacity)
}

// restoreBufPut returns a buffer to the pool.
func restoreBufPut(buf []byte) {
	restoreBufsOutstanding.Add(-1)
	b := buf[:0]
	restorePool.Put(&b)
}
