package bloom

import (
	"testing"
	"testing/quick"

	"freqdedup/internal/fphash"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewWithEstimates(10000, 0.01)
	for i := uint64(0); i < 10000; i++ {
		f.Add(fphash.FromUint64(i))
	}
	for i := uint64(0); i < 10000; i++ {
		if !f.Contains(fphash.FromUint64(i)) {
			t.Fatalf("false negative for element %d", i)
		}
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	f := NewWithEstimates(1000, 0.01)
	prop := func(v uint64) bool {
		fp := fphash.FromUint64(v)
		f.Add(fp)
		return f.Contains(fp)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 50000
	const target = 0.01
	f := NewWithEstimates(n, target)
	for i := uint64(0); i < n; i++ {
		f.Add(fphash.FromUint64(i))
	}
	var fps int
	const probes = 100000
	for i := uint64(0); i < probes; i++ {
		if f.Contains(fphash.FromUint64(1<<32 + i)) {
			fps++
		}
	}
	rate := float64(fps) / probes
	if rate > 3*target {
		t.Fatalf("false positive rate %.4f, target %.4f", rate, target)
	}
	if est := f.EstimatedFPP(); est > 3*target {
		t.Fatalf("estimated FPP %.4f far above target %.4f", est, target)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := NewWithEstimates(100, 0.01)
	for i := uint64(0); i < 1000; i++ {
		if f.Contains(fphash.FromUint64(i)) {
			t.Fatalf("empty filter claims to contain %d", i)
		}
	}
}

func TestReset(t *testing.T) {
	f := NewWithEstimates(100, 0.01)
	fp := fphash.FromUint64(42)
	f.Add(fp)
	if !f.Contains(fp) {
		t.Fatal("missing element before reset")
	}
	f.Reset()
	if f.Contains(fp) {
		t.Fatal("element survived reset")
	}
	if f.Count() != 0 {
		t.Fatalf("count after reset = %d, want 0", f.Count())
	}
}

func TestEstimateSizing(t *testing.T) {
	// Paper configuration: ~65M fingerprints, FPP 0.01 => ~74 MB and 7
	// hashes (Section 7.4.2). Verify our formulas reproduce that.
	f := NewWithEstimates(65_000_000, 0.01)
	mb := float64(f.SizeBytes()) / (1 << 20)
	if mb < 70 || mb > 80 {
		t.Fatalf("filter size %.1f MB, paper reports ~74 MB", mb)
	}
	if f.K() != 7 {
		t.Fatalf("k = %d, paper reports 7 hash functions", f.K())
	}
}

func TestNewPanics(t *testing.T) {
	cases := []struct {
		m uint64
		k int
	}{{0, 1}, {10, 0}, {10, -1}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.m, c.k)
				}
			}()
			New(c.m, c.k)
		}()
	}
}

func TestNewWithEstimatesPanicsOnBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWithEstimates(_, %v) did not panic", p)
				}
			}()
			NewWithEstimates(10, p)
		}()
	}
}

func TestCountTracksAdds(t *testing.T) {
	f := NewWithEstimates(10, 0.01)
	for i := 0; i < 5; i++ {
		f.Add(fphash.FromUint64(7)) // duplicates still counted
	}
	if f.Count() != 5 {
		t.Fatalf("Count = %d, want 5", f.Count())
	}
}

func BenchmarkAdd(b *testing.B) {
	f := NewWithEstimates(uint64(b.N)+1, 0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add(fphash.FromUint64(uint64(i)))
	}
}

func BenchmarkContains(b *testing.B) {
	f := NewWithEstimates(100000, 0.01)
	for i := uint64(0); i < 100000; i++ {
		f.Add(fphash.FromUint64(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Contains(fphash.FromUint64(uint64(i)))
	}
}
