package workload

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

// smallConfig keeps unit-test generation fast.
func smallConfig(seed int64) Config {
	return Config{Seed: seed, Backups: 4, TotalBytes: 2 << 20}
}

func TestListAndLookup(t *testing.T) {
	names := List()
	want := []string{"compressed", "database", "fileserver", "fsl", "media", "synthetic", "teamshare", "vm", "vmfarm"}
	if len(names) != len(want) {
		t.Fatalf("List() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("List() = %v, want %v (sorted)", names, want)
		}
	}
	for _, n := range names {
		if _, err := Lookup(n); err != nil {
			t.Fatalf("Lookup(%q): %v", n, err)
		}
	}
	_, err := Lookup("no-such-workload")
	if err == nil {
		t.Fatal("Lookup of an unknown workload succeeded")
	}
	for _, n := range want {
		if !strings.Contains(err.Error(), n) {
			t.Fatalf("unknown-workload error %q does not name available workload %q", err, n)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f Factory) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("Register(%q) did not panic", name)
			}
		}()
		Register(name, f)
	}
	mustPanic("", newFileserver)
	mustPanic("nil-factory", nil)
	mustPanic("fileserver", newFileserver) // duplicate
}

func TestConfigValidation(t *testing.T) {
	cfg, err := Config{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Backups != 6 || cfg.TotalBytes != 24<<20 || cfg.Users != 1 {
		t.Fatalf("zero Config defaulted to %+v", cfg)
	}
	bad := []Config{
		{Backups: -1},
		{TotalBytes: 100},
		{MeanObjectBytes: 10},
		{Users: 1000},
		{Chunk: trace.ChunkSizeModel{Min: 8192, Avg: 4096, Max: 16384, Quantum: 512}},
	}
	for _, c := range bad {
		if _, err := c.withDefaults(); err == nil {
			t.Fatalf("Config %+v validated", c)
		}
	}
}

// TestGenerateAllWorkloads runs every registered workload and checks the
// structural invariants every consumer relies on: the configured backup
// count, non-empty backups, a valid dataset, and real cross-generation
// deduplication (later backups share fingerprints with the first).
func TestGenerateAllWorkloads(t *testing.T) {
	for _, name := range List() {
		t.Run(name, func(t *testing.T) {
			cfg := smallConfig(7)
			d, err := Generate(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(d.Backups) != cfg.Backups {
				t.Fatalf("%d backups, want %d", len(d.Backups), cfg.Backups)
			}
			first := d.Backups[0].Frequencies()
			if len(first) == 0 {
				t.Fatal("first backup is empty")
			}
			for i, b := range d.Backups {
				if len(b.Chunks) == 0 {
					t.Fatalf("backup %d is empty", i)
				}
				if i == 0 {
					continue
				}
				var shared int
				for fp := range b.Frequencies() {
					if _, ok := first[fp]; ok {
						shared++
					}
				}
				if shared == 0 {
					t.Fatalf("backup %d shares no chunks with backup 0 — no cross-generation dedup", i)
				}
			}
			stats := d.Stats()
			if stats.Ratio() <= 1 {
				t.Fatalf("dedup ratio %.2f, want > 1", stats.Ratio())
			}
		})
	}
}

func TestGeneratorModifierNames(t *testing.T) {
	g, err := NewGenerator("x", Config{},
		func(st *State) { st.Fill(0, 1<<16, 0, 0, 1) },
		FileChurn{}, CompressRecut{TailFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	mods := g.Modifiers()
	if len(mods) != 2 || mods[0] != "file-churn" || mods[1] != "compress-recut" {
		t.Fatalf("Modifiers() = %v", mods)
	}
}

func TestGenerateUnknownName(t *testing.T) {
	if _, err := Generate("bogus", Config{}); err == nil {
		t.Fatal("Generate of an unknown workload succeeded")
	}
}

// TestDataReader checks the byte materializer: output length equals the
// summed chunk sizes, equal fingerprints expand to equal byte runs, and
// distinct fingerprints to distinct ones.
func TestDataReader(t *testing.T) {
	a := trace.ChunkRef{FP: fphash.FromUint64(1), Size: 8192}
	b := trace.ChunkRef{FP: fphash.FromUint64(2), Size: 8192}
	backup := &trace.Backup{Label: "x", Chunks: []trace.ChunkRef{a, b, a}}
	data, err := io.ReadAll(DataReader(backup))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 3*8192 {
		t.Fatalf("materialized %d bytes, want %d", len(data), 3*8192)
	}
	first, second, third := data[:8192], data[8192:2*8192], data[2*8192:]
	if !bytes.Equal(first, third) {
		t.Fatal("equal fingerprints expanded to different bytes")
	}
	if bytes.Equal(first, second) {
		t.Fatal("distinct fingerprints expanded to identical bytes")
	}

	// One-byte reads must produce the identical stream.
	var slow bytes.Buffer
	r := DataReader(backup)
	buf := make([]byte, 1)
	for {
		n, err := r.Read(buf)
		slow.Write(buf[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(slow.Bytes(), data) {
		t.Fatal("byte-at-a-time read differs from bulk read")
	}
}
