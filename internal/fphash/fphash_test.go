package fphash

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestFromBytesDeterministic(t *testing.T) {
	a := FromBytes([]byte("hello world"))
	b := FromBytes([]byte("hello world"))
	if a != b {
		t.Fatalf("same content produced different fingerprints: %v vs %v", a, b)
	}
}

func TestFromBytesDistinct(t *testing.T) {
	a := FromBytes([]byte("hello world"))
	b := FromBytes([]byte("hello worlD"))
	if a == b {
		t.Fatalf("distinct content produced equal fingerprints: %v", a)
	}
}

func TestFromBytesEmptyNotZero(t *testing.T) {
	if FromBytes(nil).IsZero() {
		t.Fatal("fingerprint of empty content must not be the zero sentinel")
	}
}

func TestUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		return FromUint64(v).Uint64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		fp := FromUint64(v)
		got, err := Parse(fp.String())
		return err == nil && got == fp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{"", "zz", "00", "0001020304050607ff"}
	for _, s := range cases {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

func TestTruncate(t *testing.T) {
	fp := FromUint64(0x0102030405060708)
	got := fp.Truncate(6)
	want := Fingerprint{1, 2, 3, 4, 5, 6, 0, 0}
	if got != want {
		t.Fatalf("Truncate(6) = %v, want %v", got, want)
	}
	if fp.Truncate(Size) != fp {
		t.Fatal("Truncate(Size) must be identity")
	}
}

func TestTruncatePanics(t *testing.T) {
	for _, n := range []int{0, -1, Size + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Truncate(%d) did not panic", n)
				}
			}()
			FromUint64(1).Truncate(n)
		}()
	}
}

func TestLessAgreesWithCompare(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := FromUint64(a), FromUint64(b)
		switch x.Compare(y) {
		case -1:
			return x.Less(y) && !y.Less(x) && a < b
		case 1:
			return y.Less(x) && !x.Less(y) && a > b
		default:
			return !x.Less(y) && !y.Less(x) && a == b
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLessIsTotalOrder(t *testing.T) {
	fps := []Fingerprint{
		FromUint64(5), FromUint64(1), FromUint64(0xffffffffffffffff),
		FromUint64(0), FromUint64(256), FromUint64(255),
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i].Less(fps[j]) })
	for i := 1; i < len(fps); i++ {
		if fps[i].Less(fps[i-1]) {
			t.Fatalf("sort not consistent at %d", i)
		}
		if fps[i-1].Uint64() > fps[i].Uint64() {
			t.Fatalf("lexicographic order disagrees with numeric order for big-endian encoding")
		}
	}
}

func TestMixDiffersBySalt(t *testing.T) {
	fp := FromBytes([]byte("chunk"))
	if fp.Mix(1) == fp.Mix(2) {
		t.Fatal("Mix with different salts should differ")
	}
}

func TestMixDistribution(t *testing.T) {
	// Consecutive counters should map to well-spread hash values: check that
	// low bits are roughly balanced.
	var ones int
	const n = 4096
	for i := uint64(0); i < n; i++ {
		if FromUint64(i).Mix(7)&1 == 1 {
			ones++
		}
	}
	if ones < n/3 || ones > 2*n/3 {
		t.Fatalf("Mix low bit badly skewed: %d/%d ones", ones, n)
	}
}

func BenchmarkFromBytes8K(b *testing.B) {
	buf := make([]byte, 8192)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FromBytes(buf)
	}
}

func TestShard(t *testing.T) {
	fp := FromUint64(0x0123456789abcdef)
	if got := fp.Shard(1); got != 0 {
		t.Fatalf("Shard(1) = %d, want 0", got)
	}
	if got := fp.Shard(256); got != int(fp[0]) {
		t.Fatalf("Shard(256) = %d, want leading byte %d", got, fp[0])
	}
	for _, bad := range []int{0, -1, 257} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Shard(%d) did not panic", bad)
				}
			}()
			fp.Shard(bad)
		}()
	}
}

func TestShardBalanced(t *testing.T) {
	// Hashed fingerprints spread near-uniformly over 16 shards.
	const n, shards = 1 << 14, 16
	var counts [shards]int
	buf := make([]byte, 8)
	for i := 0; i < n; i++ {
		buf[0], buf[4] = byte(i), byte(i>>8)
		counts[FromBytes(buf).Shard(shards)]++
	}
	want := n / shards
	for s, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("shard %d holds %d of %d fingerprints (want ~%d)", s, c, n, want)
		}
	}
}
