package attack

import (
	"fmt"
	"sync"
	"testing"

	"freqdedup/internal/trace"
)

var (
	benchOnce sync.Once
	benchC    *trace.Backup
	benchM    *trace.Backup
)

// benchStreams generates one locality-rich trace pair shared by every
// benchmark in the package.
func benchStreams() (c, m *trace.Backup) {
	benchOnce.Do(func() {
		p := trace.DefaultSyntheticParams()
		p.InitialBytes = 24 << 20
		p.NewDataBytes = 256 << 10
		p.Snapshots = 2
		d := trace.GenerateSynthetic(p)
		benchC = d.Backups[len(d.Backups)-1]
		benchM = d.Backups[0]
	})
	return benchC, benchM
}

// BenchmarkAttackStreaming measures the sharded two-pass counting core —
// the throughput floor of every attack — at increasing shard counts,
// with the worker fan-out matched to the shards (capped by GOMAXPROCS
// there is still one broadcast per batch, so single-core runs expose the
// sharding overhead rather than hiding it). bytes/op is the logical
// trace volume counted per run.
func BenchmarkAttackStreaming(b *testing.B) {
	c, m := benchStreams()
	logical := int64(c.LogicalSize() + m.LogicalSize())
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p, err := Params{Shards: shards, Workers: shards}.withDefaults()
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(logical)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := buildTablePair(BackupSource(c), BackupSource(m), p, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAttackStreamingLocality times the full streaming locality
// attack (counting + walk) at the default engine parallelism.
func BenchmarkAttackStreamingLocality(b *testing.B) {
	c, m := benchStreams()
	b.SetBytes(int64(c.LogicalSize() + m.LogicalSize()))
	b.ReportAllocs()
	a := NewLocality(DefaultConfig())
	for i := 0; i < b.N; i++ {
		if _, err := a.Run(BackupSource(c), BackupSource(m), Params{}); err != nil {
			b.Fatal(err)
		}
	}
}
