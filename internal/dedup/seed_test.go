package dedup

import (
	"bytes"
	"reflect"
	"testing"

	"freqdedup/internal/fphash"
)

// uploadOrder backs data up with the given config into a fresh one-shard
// store with a huge container, so the open container's entry sequence is
// exactly the upload order the store saw.
func uploadOrder(t *testing.T, cfg Config, data []byte) []fphash.Fingerprint {
	t.Helper()
	store := NewStoreWithShards(1<<30, 1)
	client, err := NewClient(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Backup(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	sh := store.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.containers.Current()
	if cur == nil {
		t.Fatal("no open container after backup")
	}
	out := make([]fphash.Fingerprint, len(cur.Entries))
	for i, e := range cur.Entries {
		out[i] = e.FP
	}
	return out
}

// TestScrambleSeedSemantics pins the Config.ScrambleSeed contract: a
// nonzero seed reproduces the scrambled upload order exactly; the zero
// value draws a fresh cryptographically random seed per client, so two
// zero-seed clients scramble differently (while producing identical
// recipes — scrambling reorders uploads, never recipe entries).
func TestScrambleSeedSemantics(t *testing.T) {
	data := randData(77, 1<<20)

	fixedA := uploadOrder(t, Config{Scramble: true, ScrambleSeed: 9, Workers: 1}, data)
	fixedB := uploadOrder(t, Config{Scramble: true, ScrambleSeed: 9, Workers: 1}, data)
	if !reflect.DeepEqual(fixedA, fixedB) {
		t.Fatal("nonzero ScrambleSeed did not reproduce the upload order")
	}

	autoA := uploadOrder(t, Config{Scramble: true, Workers: 1}, data)
	autoB := uploadOrder(t, Config{Scramble: true, Workers: 1}, data)
	if len(autoA) != len(autoB) {
		t.Fatalf("zero-seed backups uploaded %d vs %d chunks", len(autoA), len(autoB))
	}
	if reflect.DeepEqual(autoA, autoB) {
		t.Fatal("two zero-seed clients produced the same scrambled order; the seed is not being randomized")
	}
}
