package freqdedup

import (
	"context"
	"fmt"
	"os"

	"freqdedup/internal/eval"
	"freqdedup/internal/trace"
	"freqdedup/internal/workload"
)

// Workload registry (internal/workload): named scenario generators whose
// datasets feed both the trace-level figure runners and, through
// ReplayRepositoryTaps, the full storage stack.
type (
	// WorkloadConfig carries the scenario-independent generation knobs
	// (seed, backup count, size, users, chunk model); its zero value
	// selects laptop-scale defaults.
	WorkloadConfig = workload.Config
	// WorkloadSource generates one dataset.
	WorkloadSource = workload.Source
	// WorkloadFactory builds a WorkloadSource from a WorkloadConfig.
	WorkloadFactory = workload.Factory
)

var (
	// Workloads lists the registered workload names, sorted.
	Workloads = workload.List
	// GenerateWorkload generates the named workload's dataset.
	GenerateWorkload = workload.Generate
	// LookupWorkload resolves a registered workload factory; the error of
	// an unknown name lists every available workload.
	LookupWorkload = workload.Lookup
	// RegisterWorkload adds a named generator to the registry (panics on
	// duplicates — call it from an init function).
	RegisterWorkload = workload.Register
	// WorkloadDataReader streams a backup's deterministic byte image, for
	// feeding generated workloads to Repository.Backup: equal fingerprints
	// expand to equal byte runs, so the generated duplication and locality
	// survive the repository's content-defined re-chunking.
	WorkloadDataReader = workload.DataReader
)

// Scenario matrix: every workload through the full pipeline.
type (
	// ScenarioOptions configures RunScenario and ScenarioMatrix.
	ScenarioOptions = eval.ScenarioOptions
	// ScenarioResult is one workload's trip through the pipeline.
	ScenarioResult = eval.ScenarioResult
	// TapPipeline routes a generated dataset through a storage stack and
	// returns the adversary's replayed view.
	TapPipeline = eval.TapPipeline
)

// ReplayRepositoryTaps is the real-stack TapPipeline: it materializes each
// generated backup's byte stream, backs it up into a throwaway file-backed
// Repository with the adversary tap enabled, then closes, reopens, and
// replays the durable trace log (traces.fdt) — returning the dataset an
// adversary reconstructs from upload observations alone. The repository
// encrypts convergently, so the replayed stream is a deterministic 1-1
// relabeling of the (re-chunked) plaintext stream: frequencies, sizes,
// and locality survive, which is exactly the paper's threat model.
func ReplayRepositoryTaps(d *trace.Dataset) (*trace.Dataset, error) {
	dir, err := os.MkdirTemp("", "freqdedup-scenario-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	repo, err := CreateRepository(dir, WithUploadObserver(nil))
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	for i, b := range d.Backups {
		// Backup names must be unique within the repository; generated
		// labels need not be.
		name := snapshotName(i, b.Label)
		if _, err := repo.Backup(ctx, name, WorkloadDataReader(b)); err != nil {
			repo.Close()
			return nil, fmt.Errorf("freqdedup: backup %q: %w", name, err)
		}
	}
	if err := repo.Close(); err != nil {
		return nil, err
	}
	// Reopen cold: the adversary view must replay from traces.fdt alone.
	reopened, err := OpenRepository(dir)
	if err != nil {
		return nil, err
	}
	defer reopened.Close()
	log := reopened.TraceLog()
	if log == nil {
		return nil, fmt.Errorf("freqdedup: reopened repository %q lost its trace log", dir)
	}
	taps := log.Backups()
	if len(taps) != len(d.Backups) {
		return nil, fmt.Errorf("freqdedup: replayed %d taps, want %d", len(taps), len(d.Backups))
	}
	out := &trace.Dataset{Name: d.Name + "-tap"}
	for i, tap := range taps {
		b, err := tap.Materialize()
		if err != nil {
			return nil, err
		}
		// Restore the generator's label: consumers key figures on it.
		b.Label = d.Backups[i].Label
		out.Backups = append(out.Backups, b)
	}
	return out, nil
}

// snapshotName builds the unique snapshot name of generated backup i:
// generated labels may repeat across backups, repository names must not.
func snapshotName(i int, label string) string {
	return fmt.Sprintf("%03d-%s", i, label)
}

// RunScenario drives one workload through the full pipeline — generation,
// Repository backup, upload-tap replay, locality attack against each
// defense scheme — and returns its inference rates. A nil opt.Pipeline
// defaults to ReplayRepositoryTaps; set it explicitly (or use
// eval.RunScenario) to attack generated chunk streams directly.
func RunScenario(name string, opt ScenarioOptions) (ScenarioResult, error) {
	if opt.Pipeline == nil {
		opt.Pipeline = ReplayRepositoryTaps
	}
	return eval.RunScenario(name, opt)
}

// ScenarioMatrix runs every selected workload through RunScenario's
// pipeline and assembles the per-scenario inference-rate figure: one row
// per workload, one column per defense scheme. A nil opt.Pipeline
// defaults to ReplayRepositoryTaps.
func ScenarioMatrix(opt ScenarioOptions) (*Figure, error) {
	if opt.Pipeline == nil {
		opt.Pipeline = ReplayRepositoryTaps
	}
	return eval.ScenarioMatrix(opt)
}
