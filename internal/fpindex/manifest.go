package fpindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"freqdedup/internal/bloom"
	"freqdedup/internal/vfs"
)

// The manifest is one shard's committed index state: which runs exist,
// how many sealed containers they collectively cover (the watermark), and
// the shard's aggregate Bloom filter. It is rewritten whole on every
// flush, compaction, and rebuild, committed by temp-write + fsync +
// rename — the same atomic-replace discipline as the container shards'
// GC rewrite. Run files are fsynced before the manifest that references
// them, so a manifest never points at bytes a crash could have dropped;
// run files the manifest does not reference are strays from an
// interrupted flush or compaction and are removed on open.
const (
	manifestMagic   = 0x4644494d // "FDIM"
	manifestVersion = 1
	// manifestHeaderLen is magic + version + shard + runCount (u32 each)
	// + watermark + nextSeq (u64 each).
	manifestHeaderLen = 32
	// manifestRunLen is one run reference: u64 seq, u32 level, u64 count.
	manifestRunLen = 20
)

// manifestName returns one shard's manifest file name.
func manifestName(shard int) string { return fmt.Sprintf("shard-%04d.mf", shard) }

// markerName returns one shard's layout-change marker file name. The
// marker is created (durably) before a container layout change — GC
// compaction or repair, which renumber containers and invalidate every
// run's locations — and removed only after the shard's index has been
// rebuilt against the new layout. A marker found on open means the runs
// cannot be trusted; the shard rebuilds from its containers.
func markerName(shard int) string { return fmt.Sprintf("shard-%04d.rebuild", shard) }

// runRef is one manifest entry referencing a run file.
type runRef struct {
	seq   uint64
	level int
	count uint64
}

// manifest is one shard's decoded manifest.
type manifest struct {
	watermark int    // sealed containers fully covered by the runs
	nextSeq   uint64 // next run sequence number
	runs      []runRef
	agg       *bloom.Filter // aggregate filter over runs + memtable
}

// encode serializes the manifest.
func (m *manifest) encode(shard int) []byte {
	buf := make([]byte, 0, manifestHeaderLen+len(m.runs)*manifestRunLen+m.agg.MarshaledSize()+4)
	buf = binary.LittleEndian.AppendUint32(buf, manifestMagic)
	buf = binary.LittleEndian.AppendUint32(buf, manifestVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(shard))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.runs)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.watermark))
	buf = binary.LittleEndian.AppendUint64(buf, m.nextSeq)
	for _, r := range m.runs {
		buf = binary.LittleEndian.AppendUint64(buf, r.seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.level))
		buf = binary.LittleEndian.AppendUint64(buf, r.count)
	}
	buf = m.agg.AppendBinary(buf)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeManifest parses and validates one shard's manifest bytes.
func decodeManifest(data []byte, shard int) (*manifest, error) {
	if len(data) < manifestHeaderLen+4 {
		return nil, fmt.Errorf("%w: manifest truncated (%d bytes)", ErrCorrupt, len(data))
	}
	if crc := crc32.ChecksumIEEE(data[:len(data)-4]); crc != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	if m := binary.LittleEndian.Uint32(data); m != manifestMagic {
		return nil, fmt.Errorf("%w: manifest has bad magic %#x", ErrCorrupt, m)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != manifestVersion {
		return nil, fmt.Errorf("%w: manifest has unsupported version %d", ErrCorrupt, v)
	}
	if s := binary.LittleEndian.Uint32(data[8:]); int(s) != shard {
		return nil, fmt.Errorf("%w: manifest labeled shard %d, want %d", ErrCorrupt, s, shard)
	}
	runCount := int(binary.LittleEndian.Uint32(data[12:]))
	if runCount < 0 || manifestHeaderLen+runCount*manifestRunLen+4 > len(data) {
		return nil, fmt.Errorf("%w: manifest declares %d runs beyond its size", ErrCorrupt, runCount)
	}
	m := &manifest{
		watermark: int(binary.LittleEndian.Uint64(data[16:])),
		nextSeq:   binary.LittleEndian.Uint64(data[24:]),
		runs:      make([]runRef, runCount),
	}
	off := manifestHeaderLen
	for i := range m.runs {
		m.runs[i].seq = binary.LittleEndian.Uint64(data[off:])
		m.runs[i].level = int(binary.LittleEndian.Uint32(data[off+8:]))
		m.runs[i].count = binary.LittleEndian.Uint64(data[off+12:])
		off += manifestRunLen
	}
	agg, consumed, err := bloom.Unmarshal(data[off:])
	if err != nil {
		return nil, fmt.Errorf("%w: manifest aggregate filter: %v", ErrCorrupt, err)
	}
	if off+consumed != len(data)-4 {
		return nil, fmt.Errorf("%w: manifest has %d trailing bytes", ErrCorrupt, len(data)-4-off-consumed)
	}
	m.agg = agg
	return m, nil
}

// writeManifest commits the manifest atomically: temp file, fsync,
// rename, directory sync. Every run the manifest references must already
// be durable (writeRun fsyncs) before this is called.
func writeManifest(fsys vfs.FS, dir string, shard int, m *manifest) error {
	name := filepath.Join(dir, manifestName(shard))
	tmpName := name + ".tmp"
	f, err := fsys.OpenFile(tmpName, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("fpindex: create manifest: %w", err)
	}
	abort := func(err error) error {
		f.Close()
		fsys.Remove(tmpName)
		return err
	}
	if _, err := f.Write(m.encode(shard)); err != nil {
		return abort(fmt.Errorf("fpindex: write manifest: %w", err))
	}
	if err := f.Sync(); err != nil {
		return abort(fmt.Errorf("fpindex: sync manifest: %w", err))
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("fpindex: close manifest: %w", err)
	}
	if err := fsys.Rename(tmpName, name); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("fpindex: commit manifest: %w", err)
	}
	return vfs.SyncDir(fsys, dir)
}

// readManifest loads one shard's manifest; a missing file returns
// (nil, nil) — a fresh shard.
func readManifest(fsys vfs.FS, dir string, shard int) (*manifest, error) {
	name := filepath.Join(dir, manifestName(shard))
	f, err := fsys.Open(name)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("fpindex: open manifest: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data := make([]byte, st.Size())
	if _, err := f.ReadAt(data, 0); err != nil {
		return nil, fmt.Errorf("fpindex: read manifest: %w", err)
	}
	return decodeManifest(data, shard)
}

// writeMarker durably creates the shard's layout-change marker.
func writeMarker(fsys vfs.FS, dir string, shard int) error {
	name := filepath.Join(dir, markerName(shard))
	f, err := fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("fpindex: create layout marker: %w", err)
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("fpindex: sync layout marker: %w", err)
	}
	return vfs.SyncDir(fsys, dir)
}

// removeMarker removes the shard's layout-change marker, if present.
func removeMarker(fsys vfs.FS, dir string, shard int) error {
	err := fsys.Remove(filepath.Join(dir, markerName(shard)))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// hasMarker reports whether the shard's layout-change marker exists.
func hasMarker(fsys vfs.FS, dir string, shard int) bool {
	_, err := fsys.Stat(filepath.Join(dir, markerName(shard)))
	return err == nil
}
