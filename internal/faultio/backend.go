package faultio

import (
	"fmt"
	"math/rand"

	"freqdedup/internal/container"
)

// FaultBackend wraps a container.Backend with rule-driven fault
// injection at the backend-operation level (OpSeal, OpLoad, OpScan,
// OpRewrite) — the seam for testing store-level error handling without a
// file-backed stack underneath, and for modeling a network backend's
// failures (timeouts, flakes) that have no file-level analogue. The
// "path" a rule's PathGlob matches is "shard-N".
type FaultBackend struct {
	inner container.Backend
	inj   *Injector
}

// NewFaultBackend wraps inner with the fault plan.
func NewFaultBackend(inner container.Backend, plan Plan) *FaultBackend {
	return &FaultBackend{inner: inner, inj: NewInjector(plan)}
}

// Injector returns the backend's injector.
func (b *FaultBackend) Injector() *Injector { return b.inj }

func shardPath(shard int) string { return fmt.Sprintf("shard-%d", shard) }

func (b *FaultBackend) observe(op Op, shard int, mutating bool) error {
	f, matched, err := b.inj.observe(op, shardPath(shard), mutating)
	if err != nil {
		return err
	}
	if !matched {
		return nil
	}
	return b.inj.fire(f)
}

// Seal implements container.Backend.
func (b *FaultBackend) Seal(shard int, c *container.Container) error {
	if err := b.observe(OpSeal, shard, true); err != nil {
		return err
	}
	return b.inner.Seal(shard, c)
}

// Load implements container.Backend. A FlipBit rule on OpLoad corrupts
// one seeded-random bit of one entry's data in the loaded copy — silent
// read corruption, which only the store's checksums and fingerprint
// verification can catch.
func (b *FaultBackend) Load(shard, id int) (*container.Container, error) {
	f, matched, err := b.inj.observe(OpLoad, shardPath(shard), false)
	if err != nil {
		return nil, err
	}
	if matched {
		if err := b.inj.fire(f); err != nil {
			return nil, err
		}
	}
	c, err := b.inner.Load(shard, id)
	if err != nil {
		return nil, err
	}
	if matched && f.FlipBit {
		corruptContainer(b.inj, c)
	}
	return c, nil
}

// corruptContainer flips one bit in one non-empty entry's data.
func corruptContainer(inj *Injector, c *container.Container) {
	var candidates []int
	for i, e := range c.Entries {
		if len(e.Data) > 0 {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return
	}
	inj.random(func(rng *rand.Rand) {
		e := &c.Entries[candidates[rng.Intn(len(candidates))]]
		d := append([]byte(nil), e.Data...)
		d[rng.Intn(len(d))] ^= 1 << rng.Intn(8)
		e.Data = d
	})
}

// Scan implements container.Backend.
func (b *FaultBackend) Scan(shard int, withData bool, fn func(*container.Container) error) error {
	if err := b.observe(OpScan, shard, false); err != nil {
		return err
	}
	return b.inner.Scan(shard, withData, fn)
}

// Rewrite implements container.Backend.
func (b *FaultBackend) Rewrite(shard int, cs []*container.Container) error {
	if err := b.observe(OpRewrite, shard, true); err != nil {
		return err
	}
	return b.inner.Rewrite(shard, cs)
}

// Shards implements container.Backend.
func (b *FaultBackend) Shards() int { return b.inner.Shards() }

// Close implements container.Backend.
func (b *FaultBackend) Close() error { return b.inner.Close() }
