package freqdedup

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"freqdedup/internal/chunker"
	"freqdedup/internal/dedup"
	"freqdedup/internal/faultio"
)

// This file is the crash-point explorer: a scripted repository workload
// run on the deterministic in-memory fault filesystem (faultio.MemFS),
// crashed at every interesting point, reopened from the durable crash
// image, and checked against the durability contract. The explorer is
// exported so the CLI smoke stage and the full `make faults` sweep drive
// the same harness the tests do.
//
// The invariants checked after every simulated crash:
//
//  1. The repository reopens cleanly (torn tails are recovered, never
//     fatal).
//  2. The snapshot list equals exactly the acknowledged state: every
//     snapshot whose Backup returned nil (and whose Delete did not) is
//     present; nothing else is.
//  3. Every acknowledged snapshot restores byte-identically.
//  4. Verify passes: the store never holds wrong bytes silently.
//  5. Reference counts survived the crash: a GC pass reclaims only
//     garbage, after which every snapshot still restores byte-identically.
//  6. Every acknowledged snapshot has a committed adversary trace.
//  7. The reopened repository takes new backups (the probe backup
//     round-trips).
//  8. No pooled buffer leaks across the whole crash-and-recover cycle.

// CrashScenario parameterizes the scripted workload: a few backups with
// deduplication overlap, a delete, a GC pass (container compaction), and
// a final tapped backup. All data is derived from Seed, so a scenario is
// a pure function of its parameters — the determinism the sweep depends
// on.
type CrashScenario struct {
	// Seed drives the scenario's data generation and the fault plan.
	Seed int64
	// SnapshotBytes is the base snapshot's size (96 KiB if zero).
	SnapshotBytes int
	// ContainerBytes is the store's container capacity (8 KiB if zero,
	// so the scenario spans many containers).
	ContainerBytes int
	// Shards is the store's shard count (2 if zero).
	Shards int
	// GroupCommitWindow enables the catalog/trace-log group-commit
	// straggler window (WithGroupCommit). The scenario is serial, so the
	// window changes timing but not the operation sequence — the sweep
	// stays deterministic while every crash point exercises the batched
	// commit path, proving no Backup acks before its covering fsync even
	// when the fsync is a shared, delayed group commit.
	GroupCommitWindow time.Duration
	// GearChunking switches the scenario's backups to AlgoGear chunking,
	// covering the gear format's pooled-buffer and recipe paths under
	// crash injection.
	GearChunking bool
	// ChunkWorkers enables multi-stream chunking (WithChunkWorkers);
	// meaningful only with GearChunking.
	ChunkWorkers int
	// PersistentIndex runs the scenario on the bloom-fronted on-disk
	// fingerprint index (WithIndex(IndexPersistent)) with a deliberately
	// tiny memtable and synchronous compaction, so crash points land
	// inside run flushes, compactions, and the GC layout-change marker
	// protocol — not just the container and catalog paths.
	PersistentIndex bool
}

func (sc CrashScenario) withDefaults() CrashScenario {
	if sc.SnapshotBytes == 0 {
		sc.SnapshotBytes = 96 << 10
	}
	if sc.ContainerBytes == 0 {
		sc.ContainerBytes = 8 << 10
	}
	if sc.Shards == 0 {
		sc.Shards = 2
	}
	return sc
}

// crashData generates deterministic pseudo-random scenario data.
func crashData(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// crashExpect is the durable contract accumulated while the scenario
// runs: exactly what must be true of the crash image.
type crashExpect struct {
	// created is set once CreateRepository returned nil: from then on the
	// repository must reopen from any crash image.
	created bool
	// live maps acknowledged, undeleted snapshot names to their exact
	// bytes.
	live map[string][]byte
	// ackedEver lists every snapshot whose Backup was acknowledged,
	// deleted later or not — each must have a committed adversary trace.
	ackedEver []string
}

func (sc CrashScenario) repoKey() Key {
	var key Key
	copy(key[:], "crash explorer key")
	return key
}

func (sc CrashScenario) repoOptions(m *faultio.MemFS) []RepositoryOption {
	opts := []RepositoryOption{
		WithFileSystem(m),
		WithRepositoryKey(sc.repoKey()),
		WithShards(sc.Shards),
		WithContainerBytes(sc.ContainerBytes),
		WithWorkers(2),
		WithRestoreCache(2),
		WithUploadObserver(nil), // durable adversary tap on
	}
	if sc.GroupCommitWindow > 0 {
		opts = append(opts, WithGroupCommit(sc.GroupCommitWindow))
	}
	if sc.GearChunking {
		p := DefaultChunkingParams()
		p.Algorithm = AlgoGear
		opts = append(opts, WithChunking(p))
		if sc.ChunkWorkers > 1 {
			opts = append(opts, WithChunkWorkers(sc.ChunkWorkers))
		}
	}
	if sc.PersistentIndex {
		opts = append(opts,
			WithIndex(IndexPersistent),
			// An 8-entry memtable makes every backup cross many run
			// flushes and tiered compactions; synchronous compaction keeps
			// the op sequence deterministic for the crash clock.
			WithIndexTuning(IndexTuning{
				MemtableEntries: 8,
				CacheBytes:      1 << 20,
				ExpectedChunks:  1 << 12,
				SyncCompaction:  true,
			}))
	}
	return opts
}

// run drives the scripted workload against m until completion or the
// first error (normally the plan's crash). The returned expectation
// reflects only acknowledged operations, whatever the error.
func (sc CrashScenario) run(m *faultio.MemFS) (*crashExpect, error) {
	sc = sc.withDefaults()
	ctx := context.Background()
	expect := &crashExpect{live: make(map[string][]byte)}

	base := crashData(sc.Seed, sc.SnapshotBytes)
	edited := append([]byte(nil), base...)
	copy(edited[len(edited)/2:], crashData(sc.Seed+1, sc.SnapshotBytes/8))
	distinct := crashData(sc.Seed+2, sc.SnapshotBytes/2)
	final := crashData(sc.Seed+3, sc.SnapshotBytes/3)

	repo, err := CreateRepository("repo", sc.repoOptions(m)...)
	if err != nil {
		return expect, err
	}
	defer repo.Close()
	expect.created = true

	backup := func(name string, data []byte) error {
		if _, err := repo.Backup(ctx, name, bytes.NewReader(data)); err != nil {
			return err
		}
		expect.live[name] = data
		expect.ackedEver = append(expect.ackedEver, name)
		return nil
	}
	// Three backups with real dedup overlap, so containers are shared
	// across snapshots and the delete+GC below compacts shared storage.
	if err := backup("snap-base", base); err != nil {
		return expect, err
	}
	if err := backup("snap-edit", edited); err != nil {
		return expect, err
	}
	if err := backup("snap-distinct", distinct); err != nil {
		return expect, err
	}
	// Delete one snapshot; its durable effect must survive a crash the
	// moment Delete acknowledges.
	if err := repo.Delete(ctx, "snap-edit"); err != nil {
		return expect, err
	}
	delete(expect.live, "snap-edit")
	// GC compacts the containers the deleted snapshot referenced — the
	// shard-rewrite crash window.
	if _, err := repo.GC(ctx); err != nil {
		return expect, err
	}
	// A final tapped backup after the compaction.
	if err := backup("snap-final", final); err != nil {
		return expect, err
	}
	if err := repo.Close(); err != nil {
		return expect, err
	}
	return expect, nil
}

// verify opens the crash image and checks every invariant against the
// expectation. A nil return means the image honors the durability
// contract.
func (sc CrashScenario) verify(img *faultio.MemFS, expect *crashExpect) error {
	sc = sc.withDefaults()
	ctx := context.Background()
	repo, err := OpenRepository("repo", sc.repoOptions(img)...)
	if err != nil {
		if !expect.created {
			// The crash predates a completed create; a missing or partial
			// repository is acceptable as long as nothing was acknowledged.
			return nil
		}
		return fmt.Errorf("reopen after crash: %w", err)
	}
	defer repo.Close()

	// (2) The snapshot list is exactly the acknowledged state.
	listed := make(map[string]bool)
	for _, s := range repo.Snapshots() {
		listed[s.Name] = true
		if _, ok := expect.live[s.Name]; !ok {
			return fmt.Errorf("unacknowledged snapshot %q survived the crash", s.Name)
		}
	}
	for name := range expect.live {
		if !listed[name] {
			return fmt.Errorf("acknowledged snapshot %q missing after crash", name)
		}
	}

	// (3) Byte-identical restores; (4) Verify holds.
	restoreAll := func(stage string) error {
		for name, want := range expect.live {
			var out bytes.Buffer
			if err := repo.Restore(ctx, name, &out); err != nil {
				return fmt.Errorf("%s: restore %q: %w", stage, name, err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				return fmt.Errorf("%s: snapshot %q restored different bytes", stage, name)
			}
		}
		return nil
	}
	if err := restoreAll("post-crash"); err != nil {
		return err
	}
	if err := repo.Verify(ctx); err != nil {
		return fmt.Errorf("verify after crash: %w", err)
	}

	// (6) Every acknowledged backup has a committed adversary trace.
	if len(expect.ackedEver) > 0 {
		tl := repo.TraceLog()
		if tl == nil {
			return errors.New("trace log missing after crash")
		}
		traced := make(map[string]bool)
		for _, bt := range tl.Backups() {
			traced[bt.Label] = true
		}
		for _, name := range expect.ackedEver {
			if !traced[name] {
				return fmt.Errorf("acknowledged snapshot %q has no committed trace", name)
			}
		}
	}

	// (5) Refcounts survived: GC reclaims only garbage.
	if _, err := repo.GC(ctx); err != nil {
		return fmt.Errorf("gc after crash: %w", err)
	}
	if err := restoreAll("post-gc"); err != nil {
		return err
	}

	// (7) The repository is writable again.
	probe := crashData(sc.Seed+4, 32<<10)
	if _, err := repo.Backup(ctx, "recovery-probe", bytes.NewReader(probe)); err != nil {
		return fmt.Errorf("probe backup after crash: %w", err)
	}
	var out bytes.Buffer
	if err := repo.Restore(ctx, "recovery-probe", &out); err != nil {
		return fmt.Errorf("probe restore after crash: %w", err)
	}
	if !bytes.Equal(out.Bytes(), probe) {
		return errors.New("probe backup restored different bytes after crash")
	}
	return repo.Close()
}

// CrashSweepOptions selects which crash points a sweep explores.
type CrashSweepOptions struct {
	// Scenario is the workload; its Seed also seeds the fault plans.
	Scenario CrashScenario
	// SyncPointsOnly restricts the sweep to acknowledged-sync boundaries
	// (each sync point is explored twice: the sync failing, and the crash
	// landing right after the acknowledgment) instead of every mutating
	// operation. Sync points are where durability is promised, so this is
	// the high-value bounded sweep CI runs.
	SyncPointsOnly bool
	// Stride explores every Stride-th crash point (1 or 0 = all).
	Stride int
	// MaxPoints caps the number of points explored (0 = no cap); points
	// are sampled evenly when the cap bites.
	MaxPoints int
}

// CrashFailure is one crash point at which an invariant did not hold.
type CrashFailure struct {
	// Op is the mutating-operation number the machine crashed at.
	Op int64
	// Err describes the violated invariant.
	Err error
}

// CrashSweepResult reports a sweep.
type CrashSweepResult struct {
	// TotalOps is the scenario's mutating-operation count (the crash
	// clock's range).
	TotalOps int64
	// SyncPoints are the op numbers of acknowledged syncs in the clean
	// run.
	SyncPoints []int64
	// PointsTested lists the crash points explored, ascending.
	PointsTested []int64
	// Failures lists every point that violated an invariant; an empty
	// list is a passing sweep.
	Failures []CrashFailure
}

// ExploreCrashPoints runs the scenario once cleanly to map its mutating
// operations and sync points, then re-runs it crashing at each selected
// point, reopening the durable crash image and checking the full
// invariant set (see the file comment). The whole sweep is a
// deterministic function of the scenario: same parameters, same ops,
// same faults, same verdicts.
func ExploreCrashPoints(opts CrashSweepOptions) (CrashSweepResult, error) {
	sc := opts.Scenario.withDefaults()
	var res CrashSweepResult

	// Clean pass: the scenario itself must hold fault-free, and its op
	// count bounds the sweep.
	clean := faultio.NewMemFSPlan(faultio.Plan{Seed: sc.Seed})
	expect, err := sc.run(clean)
	if err != nil {
		return res, fmt.Errorf("clean scenario run failed: %w", err)
	}
	if err := sc.verify(clean.CrashImage(), expect); err != nil {
		return res, fmt.Errorf("clean scenario image failed verification: %w", err)
	}
	res.TotalOps = clean.Injector().OpCount()
	res.SyncPoints = clean.Injector().SyncPoints()

	var points []int64
	if opts.SyncPointsOnly {
		seen := make(map[int64]bool)
		for _, s := range res.SyncPoints {
			// Crash AT the sync (the fsync itself dies) and right AFTER it
			// (the ack is the last thing that happened).
			for _, p := range []int64{s, s + 1} {
				if p >= 1 && p <= res.TotalOps && !seen[p] {
					seen[p] = true
					points = append(points, p)
				}
			}
		}
		sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	} else {
		stride := int64(opts.Stride)
		if stride < 1 {
			stride = 1
		}
		for p := int64(1); p <= res.TotalOps; p += stride {
			points = append(points, p)
		}
	}
	if opts.MaxPoints > 0 && len(points) > opts.MaxPoints {
		sampled := make([]int64, 0, opts.MaxPoints)
		for i := 0; i < opts.MaxPoints; i++ {
			sampled = append(sampled, points[i*len(points)/opts.MaxPoints])
		}
		points = sampled
	}

	for _, p := range points {
		res.PointsTested = append(res.PointsTested, p)
		if err := sc.explorePoint(p); err != nil {
			res.Failures = append(res.Failures, CrashFailure{Op: p, Err: err})
		}
	}
	return res, nil
}

// explorePoint runs one crash-and-recover cycle and checks the pooled
// buffers drained on top of the image invariants.
func (sc CrashScenario) explorePoint(p int64) error {
	chunkBase := chunker.BufsOutstanding()
	restoreBase := dedup.RestoreBufsOutstanding()

	m := faultio.NewMemFSPlan(faultio.Plan{Seed: sc.Seed, CrashAtOp: p})
	expect, runErr := sc.run(m)
	if runErr != nil && !errors.Is(runErr, faultio.ErrCrashed) {
		// The crash may surface wrapped in layer-specific errors; anything
		// not carrying ErrCrashed is a scenario bug, not a crash.
		return fmt.Errorf("scenario failed without crashing: %w", runErr)
	}
	if err := sc.verify(m.CrashImage(), expect); err != nil {
		return err
	}
	// (8) Pooled buffers all came home, crashed pipelines included.
	if got := chunker.BufsOutstanding(); got != chunkBase {
		return fmt.Errorf("%d chunker buffers leaked", got-chunkBase)
	}
	if got := dedup.RestoreBufsOutstanding(); got != restoreBase {
		return fmt.Errorf("%d restore buffers leaked", got-restoreBase)
	}
	return nil
}
