package container

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"freqdedup/internal/fphash"
	"freqdedup/internal/vfs"
)

// ErrCorrupt is returned when a store file fails structural validation or
// a container record fails its checksum. It is distinct from ErrNotFound:
// the data is there but cannot be trusted.
var ErrCorrupt = errors.New("container: store file corrupt")

// ErrSalvaged is returned by Seal on a backend opened in salvage mode: a
// salvaged shard file may hold unparseable regions and renumbered
// containers, so appending to it would bury new data behind garbage.
// Repair (which rewrites every salvaged shard) clears the condition.
var ErrSalvaged = errors.New("container: store opened in salvage mode; repair before writing")

// On-disk layout constants. See doc.go for the full format description.
const (
	fileMagic   = 0x46444346 // "FDCF": freqdedup container file
	fileVersion = 1
	// fileHeaderLen is magic + version + shard + containerBytes, u32 each.
	fileHeaderLen = 16

	recordMagic = 0x46444331 // "FDC1": one sealed container record
	// recordHeaderLen is magic + id + entryCount + dataBytes, u32 each.
	recordHeaderLen = 16
	// entryMetaLen is one index-header entry: fingerprint + u32 size.
	entryMetaLen = fphash.Size + 4
	// recordTrailerLen is the CRC32 over the whole record.
	recordTrailerLen = 4
)

// QuarantineDir is the subdirectory of a store directory that Quarantine
// copies damaged container records into.
const QuarantineDir = "quarantine"

// shardFileName returns the file holding a shard's containers.
func shardFileName(shard int) string { return fmt.Sprintf("shard-%04d.fdc", shard) }

// shardFile is one shard's append-only container file plus its in-memory
// record index. mu serializes every file operation of the shard: appends
// are naturally serial, and reads ride the same lock so a GC Rewrite can
// swap the file handle without a reader holding the old one. Cross-shard
// operations run fully in parallel.
type shardFile struct {
	mu      sync.Mutex
	f       vfs.File
	offsets []int64 // byte offset of each sealed record, in ID order
	size    int64   // current end-of-file offset
	// dataBytes is the running total of chunk data bytes across the
	// shard's records, maintained from the record headers already parsed
	// at open and on every Seal/Rewrite — what lets SealedStats answer
	// without a scan.
	dataBytes int64
	scratch   []byte // record serialization buffer, reused across Seals

	// salvaged marks a shard opened by OpenFileBackendSalvage whose file
	// held structural damage: container IDs are renumbered in memory and
	// unparseable regions remain on disk, so Seal is refused until a
	// Rewrite produces a clean file.
	salvaged bool
}

// FileBackend persists sealed containers in per-shard append-only files
// under one directory. Each seal appends a self-contained record (a small
// index header of fingerprints and sizes, then the chunk data, then a
// CRC32) and fsyncs, so a container acknowledged as sealed survives a
// crash; a record torn by a crash mid-append is detected and discarded on
// Open. GC rewrites a shard by writing a fresh file and renaming it over
// the old one, so compaction is atomic too.
//
// All file operations go through the backend's vfs.FS (vfs.OS in
// production), so fault-injection harnesses (internal/faultio) exercise
// the exact production code paths.
type FileBackend struct {
	fsys           vfs.FS
	dir            string
	containerBytes int
	shards         []*shardFile
}

// CreateFileBackend initializes a new store directory with one empty
// container file per shard and returns the backend. It fails if the
// directory already holds a store.
func CreateFileBackend(dir string, shards, containerBytes int) (*FileBackend, error) {
	return CreateFileBackendFS(vfs.OS, dir, shards, containerBytes)
}

// CreateFileBackendFS is CreateFileBackend against an explicit
// filesystem.
func CreateFileBackendFS(fsys vfs.FS, dir string, shards, containerBytes int) (*FileBackend, error) {
	if shards < 1 {
		return nil, fmt.Errorf("container: backend shard count must be positive, got %d", shards)
	}
	if containerBytes <= 0 {
		return nil, fmt.Errorf("container: capacity must be positive, got %d", containerBytes)
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("container: create store dir: %w", err)
	}
	if _, err := fsys.Stat(filepath.Join(dir, shardFileName(0))); err == nil {
		return nil, fmt.Errorf("container: %s already holds a store (use OpenFileBackend)", dir)
	}
	b := &FileBackend{fsys: fsys, dir: dir, containerBytes: containerBytes, shards: make([]*shardFile, shards)}
	var hdr [fileHeaderLen]byte
	for i := range b.shards {
		binary.LittleEndian.PutUint32(hdr[0:], fileMagic)
		binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(i))
		binary.LittleEndian.PutUint32(hdr[12:], uint32(containerBytes))
		f, err := fsys.OpenFile(filepath.Join(dir, shardFileName(i)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			b.Close()
			return nil, fmt.Errorf("container: create shard file: %w", err)
		}
		_, err = f.Write(hdr[:])
		if err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			b.Close()
			return nil, fmt.Errorf("container: write shard header: %w", err)
		}
		b.shards[i] = &shardFile{f: f, size: fileHeaderLen}
	}
	if err := vfs.SyncDir(fsys, dir); err != nil {
		b.Close()
		return nil, err
	}
	return b, nil
}

// OpenFileBackend opens an existing store directory, validating every
// shard file's header and record chain. A record torn by a crash
// mid-append (an incomplete header or body at the end of a file) is
// discarded by truncating the file back to the last complete record —
// only containers whose Seal was acknowledged are durable. Structural
// damage anywhere else (bad magic, out-of-sequence IDs, a short file
// header, shards disagreeing on capacity) returns ErrCorrupt.
func OpenFileBackend(dir string) (*FileBackend, error) {
	return OpenFileBackendFS(vfs.OS, dir)
}

// OpenFileBackendFS is OpenFileBackend against an explicit filesystem.
func OpenFileBackendFS(fsys vfs.FS, dir string) (*FileBackend, error) {
	b, _, err := openFileBackend(fsys, dir, false)
	return b, err
}

// SalvageStats reports what a salvage open could not recover.
type SalvageStats struct {
	// ContainersLost is the number of container records skipped because
	// they could not be parsed (the record chain was broken and no
	// CRC-valid record could be re-synchronized onto before them).
	ContainersLost int
	// BytesSkipped is the total size of the unparseable regions.
	BytesSkipped int64
}

// Damaged reports whether the salvage pass had to skip anything.
func (s SalvageStats) Damaged() bool { return s.ContainersLost > 0 || s.BytesSkipped > 0 }

// OpenFileBackendSalvage opens a store directory whose shard files may be
// structurally damaged — the fsck path for stores OpenFileBackend rejects
// with ErrCorrupt. Instead of failing on a broken record chain, the
// salvage scan skips the unparseable region and re-synchronizes on the
// next record whose header parses and whose CRC verifies; surviving
// containers are renumbered densely in memory. Records reachable through
// an intact chain but failing their CRC are kept (Load and ScanTolerant
// surface their ErrCorrupt, so Repair can quarantine them).
//
// A salvaged backend is read-only until repaired: Seal returns
// ErrSalvaged for a shard whose file held damage, because appending would
// bury new records behind garbage. Rewrite (which Repair performs on
// every damaged shard) produces a clean file and clears the condition.
func OpenFileBackendSalvage(fsys vfs.FS, dir string) (*FileBackend, SalvageStats, error) {
	return openFileBackend(fsys, dir, true)
}

func openFileBackend(fsys vfs.FS, dir string, salvage bool) (*FileBackend, SalvageStats, error) {
	var stats SalvageStats
	names, err := fsys.Glob(filepath.Join(dir, "shard-*.fdc"))
	if err != nil {
		return nil, stats, err
	}
	if len(names) == 0 {
		return nil, stats, fmt.Errorf("container: %s holds no store (no shard files)", dir)
	}
	sort.Strings(names)
	b := &FileBackend{fsys: fsys, dir: dir, shards: make([]*shardFile, len(names))}
	for i, name := range names {
		if filepath.Base(name) != shardFileName(i) {
			b.Close()
			return nil, stats, fmt.Errorf("%w: shard files not dense at %s", ErrCorrupt, name)
		}
		sf, capacity, sst, err := openShardFile(fsys, name, i, salvage)
		if err != nil {
			b.Close()
			return nil, stats, err
		}
		stats.ContainersLost += sst.ContainersLost
		stats.BytesSkipped += sst.BytesSkipped
		if i == 0 {
			b.containerBytes = capacity
		} else if capacity != b.containerBytes {
			sf.f.Close()
			b.Close()
			return nil, stats, fmt.Errorf("%w: shard %d capacity %d, shard 0 has %d",
				ErrCorrupt, i, capacity, b.containerBytes)
		}
		b.shards[i] = sf
	}
	return b, stats, nil
}

// parseRecordHeader validates a record header's plausibility at pos and
// returns its fields and end offset. It does not verify the CRC.
func parseRecordHeader(hdr []byte, pos, size int64) (id int, end int64, ok bool) {
	if binary.LittleEndian.Uint32(hdr[0:]) != recordMagic {
		return 0, 0, false
	}
	id = int(binary.LittleEndian.Uint32(hdr[4:]))
	entries := int64(binary.LittleEndian.Uint32(hdr[8:]))
	dataBytes := int64(binary.LittleEndian.Uint32(hdr[12:]))
	end = pos + recordHeaderLen + entries*entryMetaLen + dataBytes + recordTrailerLen
	if end < pos || end > size {
		return 0, 0, false
	}
	return id, end, true
}

// openShardFile validates one shard file and builds its record index,
// truncating a torn tail record left by a crash. In salvage mode a broken
// record chain is skipped instead of failing the open; see
// OpenFileBackendSalvage.
func openShardFile(fsys vfs.FS, name string, shard int, salvage bool) (*shardFile, int, SalvageStats, error) {
	var sst SalvageStats
	flag := os.O_RDWR
	f, err := fsys.OpenFile(name, flag, 0)
	if err != nil {
		return nil, 0, sst, err
	}
	fail := func(err error) (*shardFile, int, SalvageStats, error) {
		f.Close()
		return nil, 0, sst, err
	}
	st, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	size := st.Size()
	var hdr [fileHeaderLen]byte
	if size < fileHeaderLen {
		return fail(fmt.Errorf("%w: %s shorter than its header", ErrCorrupt, name))
	}
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return fail(err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != fileMagic {
		return fail(fmt.Errorf("%w: %s has bad magic %#x", ErrCorrupt, name, m))
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != fileVersion {
		return fail(fmt.Errorf("%w: %s has unsupported version %d", ErrCorrupt, name, v))
	}
	if s := binary.LittleEndian.Uint32(hdr[8:]); int(s) != shard {
		return fail(fmt.Errorf("%w: %s labeled shard %d", ErrCorrupt, name, s))
	}
	capacity := int(binary.LittleEndian.Uint32(hdr[12:]))
	if capacity <= 0 {
		return fail(fmt.Errorf("%w: %s has capacity %d", ErrCorrupt, name, capacity))
	}

	sf := &shardFile{f: f}
	pos := int64(fileHeaderLen)
	lastDiskID := -1
	var rec [recordHeaderLen]byte
	for pos < size {
		if pos+recordHeaderLen > size {
			break // torn tail: header itself incomplete
		}
		if _, err := f.ReadAt(rec[:], pos); err != nil {
			return fail(err)
		}
		id, end, headerOK := parseRecordHeader(rec[:], pos, size)
		inSequence := headerOK && (salvage && id > lastDiskID || !salvage && id == len(sf.offsets))
		if headerOK && !inSequence && !salvage {
			return fail(fmt.Errorf("%w: %s: container %d at position %d", ErrCorrupt, name, id, len(sf.offsets)))
		}
		if !headerOK {
			if binary.LittleEndian.Uint32(rec[0:]) != recordMagic && !salvage {
				return fail(fmt.Errorf("%w: %s: bad record magic %#x at offset %d",
					ErrCorrupt, name, binary.LittleEndian.Uint32(rec[0:]), pos))
			}
			if !salvage {
				break // torn tail: body incomplete
			}
		}
		if salvage && (!headerOK || !inSequence) {
			// Broken chain: scan forward for the next CRC-valid record.
			next, nid, nend, ndb, found := resyncRecord(f, pos+1, size, lastDiskID)
			if !found {
				// Nothing parseable remains; everything from pos on is
				// lost. Whether that region held zero or many records is
				// unknowable — count bytes, not containers.
				sst.BytesSkipped += size - pos
				pos = size
				break
			}
			sst.BytesSkipped += next - pos
			sst.ContainersLost += nid - lastDiskID - 1
			sf.salvaged = true
			sf.offsets = append(sf.offsets, next)
			sf.dataBytes += ndb
			lastDiskID = nid
			pos = nend
			continue
		}
		if salvage && id != lastDiskID+1 {
			// Parsable record but IDs skipped: the records between were
			// overwritten or never made it. Renumber densely in memory.
			sst.ContainersLost += id - lastDiskID - 1
			sf.salvaged = true
		}
		sf.offsets = append(sf.offsets, pos)
		sf.dataBytes += int64(binary.LittleEndian.Uint32(rec[12:]))
		lastDiskID = id
		pos = end
	}
	if pos < size && !sf.salvaged {
		// Discard the torn tail so future appends start at a record
		// boundary.
		if err := f.Truncate(pos); err != nil {
			return fail(fmt.Errorf("container: truncate torn tail of %s: %w", name, err))
		}
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	}
	sf.size = pos
	return sf, capacity, sst, nil
}

// resyncRecord scans forward from pos for the next plausible container
// record: header parses, ID exceeds lastID, and the CRC verifies (a
// resync point must prove itself — the chain is already broken, so a
// merely plausible header could be chunk data that happens to contain the
// magic). It returns the record's offset, on-disk ID, and end.
func resyncRecord(f vfs.File, pos, size int64, lastID int) (at int64, id int, end int64, dataBytes int64, ok bool) {
	var hdr [recordHeaderLen]byte
	for ; pos+recordHeaderLen <= size; pos++ {
		if _, err := f.ReadAt(hdr[:], pos); err != nil {
			return 0, 0, 0, 0, false
		}
		id, end, headerOK := parseRecordHeader(hdr[:], pos, size)
		if !headerOK || id <= lastID {
			continue
		}
		body := make([]byte, end-pos-recordHeaderLen)
		if _, err := f.ReadAt(body, pos+recordHeaderLen); err != nil {
			continue
		}
		crc := crc32.ChecksumIEEE(hdr[:])
		crc = crc32.Update(crc, crc32.IEEETable, body[:len(body)-recordTrailerLen])
		if crc != binary.LittleEndian.Uint32(body[len(body)-recordTrailerLen:]) {
			continue
		}
		return pos, id, end, int64(binary.LittleEndian.Uint32(hdr[12:])), true
	}
	return 0, 0, 0, 0, false
}

// buildRecord serializes c into sf.scratch as one container record.
func (sf *shardFile) buildRecord(c *Container) ([]byte, error) {
	dataBytes := 0
	for _, e := range c.Entries {
		if len(e.Data) != int(e.Size) {
			return nil, fmt.Errorf("container: entry %v has %d data bytes, size says %d (metadata-only entries cannot be persisted)",
				e.FP, len(e.Data), e.Size)
		}
		dataBytes += int(e.Size)
	}
	n := recordHeaderLen + len(c.Entries)*entryMetaLen + dataBytes + recordTrailerLen
	if cap(sf.scratch) < n {
		sf.scratch = make([]byte, n)
	}
	buf := sf.scratch[:n]
	binary.LittleEndian.PutUint32(buf[0:], recordMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(c.ID))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(c.Entries)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(dataBytes))
	off := recordHeaderLen
	for _, e := range c.Entries {
		copy(buf[off:], e.FP[:])
		binary.LittleEndian.PutUint32(buf[off+fphash.Size:], e.Size)
		off += entryMetaLen
	}
	for _, e := range c.Entries {
		copy(buf[off:], e.Data)
		off += len(e.Data)
	}
	binary.LittleEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	return buf, nil
}

// Seal appends the container's record to the shard file and fsyncs;
// durability is acknowledged only by a nil return.
func (b *FileBackend) Seal(shard int, c *Container) error {
	sf := b.shards[shard]
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if sf.salvaged {
		return fmt.Errorf("%w (shard %d)", ErrSalvaged, shard)
	}
	if c.ID != len(sf.offsets) {
		return fmt.Errorf("container: seal of container %d on shard %d, want %d", c.ID, shard, len(sf.offsets))
	}
	buf, err := sf.buildRecord(c)
	if err != nil {
		return err
	}
	if _, err := sf.f.WriteAt(buf, sf.size); err != nil {
		sf.discardTail()
		return fmt.Errorf("container: append container %d: %w", c.ID, err)
	}
	if err := sf.f.Sync(); err != nil {
		sf.discardTail()
		return fmt.Errorf("container: sync container %d: %w", c.ID, err)
	}
	sf.offsets = append(sf.offsets, sf.size)
	sf.size += int64(len(buf))
	sf.dataBytes += int64(c.Bytes)
	return nil
}

// discardTail removes whatever a failed append left past the last good
// record, so a later successful Seal does not bury garbage mid-file
// (which Open would then reject as structural corruption instead of
// recovering as a torn tail). Best-effort: if the truncate fails too,
// Open's tail recovery still handles the case where nothing was
// appended afterwards.
func (sf *shardFile) discardTail() {
	if sf.f.Truncate(sf.size) == nil {
		_ = sf.f.Sync()
	}
}

// readRecord reads and validates the record at offset, returning the
// container. With withData false the data region is skipped and the CRC
// (which covers it) is not verified. id is the container's logical ID:
// equal to the on-disk ID for a normally opened shard, the dense renumber
// for a salvaged one.
func (sf *shardFile) readRecord(shard, id int, offset int64, withData bool) (*Container, error) {
	var hdr [recordHeaderLen]byte
	if _, err := sf.f.ReadAt(hdr[:], offset); err != nil {
		return nil, fmt.Errorf("container: read record header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != recordMagic {
		return nil, fmt.Errorf("%w: bad record magic %#x", ErrCorrupt, m)
	}
	entries := int(binary.LittleEndian.Uint32(hdr[8:]))
	dataBytes := int(binary.LittleEndian.Uint32(hdr[12:]))
	metaLen := entries * entryMetaLen
	bodyLen := metaLen + dataBytes + recordTrailerLen
	if !withData {
		bodyLen = metaLen
	}
	body := make([]byte, bodyLen)
	if _, err := sf.f.ReadAt(body, offset+recordHeaderLen); err != nil {
		return nil, fmt.Errorf("container: read record body: %w", err)
	}
	if withData {
		stored := binary.LittleEndian.Uint32(body[metaLen+dataBytes:])
		crc := crc32.ChecksumIEEE(hdr[:])
		crc = crc32.Update(crc, crc32.IEEETable, body[:metaLen+dataBytes])
		if crc != stored {
			return nil, fmt.Errorf("%w: container %d checksum mismatch (shard %d)", ErrCorrupt, id, shard)
		}
	}
	c := &Container{ID: id, Entries: make([]Entry, entries)}
	data := body[metaLen:]
	dataOff := 0
	for i := range c.Entries {
		var fp fphash.Fingerprint
		copy(fp[:], body[i*entryMetaLen:])
		size := binary.LittleEndian.Uint32(body[i*entryMetaLen+fphash.Size:])
		e := Entry{FP: fp, Size: size}
		if withData {
			if dataOff+int(size) > dataBytes {
				return nil, fmt.Errorf("%w: container %d entry sizes exceed data region", ErrCorrupt, id)
			}
			e.Data = data[dataOff : dataOff+int(size) : dataOff+int(size)]
		}
		dataOff += int(size)
		c.Bytes += int(size)
		c.Entries[i] = e
	}
	if withData && dataOff != dataBytes {
		return nil, fmt.Errorf("%w: container %d entry sizes sum to %d, data region is %d", ErrCorrupt, id, dataOff, dataBytes)
	}
	return c, nil
}

// Load reads a sealed container from the shard file, verifying its CRC.
func (b *FileBackend) Load(shard, id int) (*Container, error) {
	sf := b.shards[shard]
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if id < 0 || id >= len(sf.offsets) {
		return nil, ErrNotFound
	}
	return sf.readRecord(shard, id, sf.offsets[id], true)
}

// Scan visits the shard's sealed containers in ID order. With withData
// false only each record's index header is read (fingerprints and sizes;
// Entry.Data stays nil), which is how a reopened store rebuilds its
// fingerprint index without reading chunk data.
func (b *FileBackend) Scan(shard int, withData bool, fn func(*Container) error) error {
	sf := b.shards[shard]
	sf.mu.Lock()
	defer sf.mu.Unlock()
	for id, off := range sf.offsets {
		c, err := sf.readRecord(shard, id, off, withData)
		if err != nil {
			return err
		}
		if err := fn(c); err != nil {
			return err
		}
	}
	return nil
}

// ScanTolerant visits every container slot of the shard in ID order,
// damaged ones included: fn receives the slot's ID, its container (nil
// when the record is unreadable), and the read error. Records are read
// with data and CRC-verified, so a post-fsync bit flip surfaces here as a
// per-slot ErrCorrupt instead of aborting the whole scan — the substrate
// of the repair pass. A non-nil error from fn aborts the scan.
func (b *FileBackend) ScanTolerant(shard int, fn func(id int, c *Container, err error) error) error {
	sf := b.shards[shard]
	sf.mu.Lock()
	defer sf.mu.Unlock()
	for id, off := range sf.offsets {
		c, err := sf.readRecord(shard, id, off, true)
		if err != nil {
			c = nil
		}
		if ferr := fn(id, c, err); ferr != nil {
			return ferr
		}
	}
	return nil
}

// Quarantine copies the raw bytes of one container record into the
// store's quarantine directory (quarantine/shard-SSSS-container-CCCC.rec)
// for forensics, before a repair rewrite drops it from the shard. The
// copy is byte-exact, damage included. It returns the quarantine file's
// path.
func (b *FileBackend) Quarantine(shard, id int) (string, error) {
	sf := b.shards[shard]
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if id < 0 || id >= len(sf.offsets) {
		return "", ErrNotFound
	}
	start := sf.offsets[id]
	end := sf.size
	if id+1 < len(sf.offsets) {
		end = sf.offsets[id+1]
	}
	raw := make([]byte, end-start)
	if _, err := sf.f.ReadAt(raw, start); err != nil {
		return "", fmt.Errorf("container: quarantine read: %w", err)
	}
	qdir := filepath.Join(b.dir, QuarantineDir)
	if err := b.fsys.MkdirAll(qdir, 0o755); err != nil {
		return "", fmt.Errorf("container: quarantine dir: %w", err)
	}
	name := filepath.Join(qdir, fmt.Sprintf("shard-%04d-container-%04d.rec", shard, id))
	qf, err := b.fsys.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("container: quarantine file: %w", err)
	}
	_, err = qf.Write(raw)
	if err == nil {
		err = qf.Sync()
	}
	if cerr := qf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", fmt.Errorf("container: quarantine write: %w", err)
	}
	return name, nil
}

// Rewrite atomically replaces the shard's file with one holding cs: the
// new generation is written to a temporary file, fsynced, and renamed
// over the old file, so a crash mid-compaction leaves the previous
// generation intact. Rewriting a salvaged shard produces a clean file and
// clears its read-only (ErrSalvaged) condition.
func (b *FileBackend) Rewrite(shard int, cs []*Container) error {
	sf := b.shards[shard]
	sf.mu.Lock()
	defer sf.mu.Unlock()

	name := filepath.Join(b.dir, shardFileName(shard))
	tmpName := name + ".rewrite"
	tmp, err := b.fsys.OpenFile(tmpName, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("container: rewrite shard %d: %w", shard, err)
	}
	abort := func(err error) error {
		tmp.Close()
		b.fsys.Remove(tmpName)
		return err
	}
	var hdr [fileHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(shard))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(b.containerBytes))
	if _, err := tmp.Write(hdr[:]); err != nil {
		return abort(err)
	}
	offsets := make([]int64, 0, len(cs))
	size := int64(fileHeaderLen)
	var dataBytes int64
	for i, c := range cs {
		if c.ID != i {
			return abort(fmt.Errorf("container: rewrite container ID %d at position %d", c.ID, i))
		}
		buf, err := sf.buildRecord(c)
		if err != nil {
			return abort(err)
		}
		if _, err := tmp.Write(buf); err != nil {
			return abort(err)
		}
		offsets = append(offsets, size)
		size += int64(len(buf))
		for _, e := range c.Entries {
			dataBytes += int64(e.Size)
		}
	}
	if err := tmp.Sync(); err != nil {
		return abort(err)
	}
	if err := b.fsys.Rename(tmpName, name); err != nil {
		return abort(err)
	}
	// The rename is the commit point: from here the on-disk shard is the
	// new generation, so the in-memory state must follow unconditionally
	// — the renamed temp handle is the new shard file; retire the old
	// one. The directory sync afterwards is best-effort, like every
	// other directory sync here.
	sf.f.Close()
	sf.f = tmp
	sf.offsets = offsets
	sf.size = size
	sf.dataBytes = dataBytes
	sf.salvaged = false
	_ = vfs.SyncDir(b.fsys, b.dir)
	return nil
}

// SealedStats reports the shard's sealed-container count and total chunk
// data bytes from the in-memory record index — no file reads, which is
// what lets a persistent-index store recover its packer counters in
// O(metadata) on open.
func (b *FileBackend) SealedStats(shard int) (int, int64, error) {
	sf := b.shards[shard]
	sf.mu.Lock()
	defer sf.mu.Unlock()
	return len(sf.offsets), sf.dataBytes, nil
}

// ScanFrom visits the shard's sealed containers with ID >= from in ID
// order, reading only from the watermark forward — the tail rescan a
// persistent fingerprint index performs on open.
func (b *FileBackend) ScanFrom(shard, from int, withData bool, fn func(*Container) error) error {
	sf := b.shards[shard]
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if from < 0 {
		from = 0
	}
	for id := from; id < len(sf.offsets); id++ {
		c, err := sf.readRecord(shard, id, sf.offsets[id], withData)
		if err != nil {
			return err
		}
		if err := fn(c); err != nil {
			return err
		}
	}
	return nil
}

// Shards returns the shard count.
func (b *FileBackend) Shards() int { return len(b.shards) }

// ContainerBytes returns the container capacity recorded in the store's
// file headers, so a reopened store packs with the same geometry.
func (b *FileBackend) ContainerBytes() int { return b.containerBytes }

// Dir returns the store directory.
func (b *FileBackend) Dir() string { return b.dir }

// Salvaged reports whether any shard still carries salvage damage (and
// therefore refuses Seal until repaired).
func (b *FileBackend) Salvaged() bool {
	for _, sf := range b.shards {
		if sf == nil {
			continue
		}
		sf.mu.Lock()
		s := sf.salvaged
		sf.mu.Unlock()
		if s {
			return true
		}
	}
	return false
}

// Close closes every shard file. Sealed data is already durable; Close
// exists to release descriptors. Close is idempotent: a second call is a
// no-op returning nil.
func (b *FileBackend) Close() error {
	var first error
	for _, sf := range b.shards {
		if sf == nil {
			continue
		}
		sf.mu.Lock()
		if sf.f != nil {
			if err := sf.f.Close(); err != nil && first == nil {
				first = err
			}
			sf.f = nil
		}
		sf.mu.Unlock()
	}
	return first
}
