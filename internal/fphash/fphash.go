// Package fphash defines the chunk fingerprint type used throughout the
// system and helpers to compute fingerprints from chunk content.
//
// A fingerprint identifies a chunk by content: two chunks are considered
// identical if and only if their fingerprints are equal (Section 2.1 of the
// paper). Real deployments use a full cryptographic hash; the FSL traces the
// paper evaluates use 48-bit truncated fingerprints. We store fingerprints
// in a fixed 8-byte value, which is compact enough to keep tens of millions
// in memory and wide enough that collisions are negligible at our scales.
package fphash

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Size is the size of a Fingerprint in bytes.
const Size = 8

// Fingerprint is a compact content identifier for a chunk. It is comparable
// and can be used directly as a map key.
type Fingerprint [Size]byte

// Zero is the zero fingerprint. It is never produced by hashing and can be
// used as a sentinel.
var Zero Fingerprint

// FromBytes computes the fingerprint of a chunk's content using SHA-256
// truncated to 8 bytes.
func FromBytes(content []byte) Fingerprint {
	sum := sha256.Sum256(content)
	var fp Fingerprint
	copy(fp[:], sum[:Size])
	return fp
}

// FromUint64 builds a fingerprint from a 64-bit integer. Trace generators
// use it to mint synthetic fingerprints from counters and seeded PRNGs.
func FromUint64(v uint64) Fingerprint {
	var fp Fingerprint
	binary.BigEndian.PutUint64(fp[:], v)
	return fp
}

// Uint64 returns the fingerprint as a 64-bit integer. It is the inverse of
// FromUint64 and is also used to derive secondary hash values (e.g. by the
// Bloom filter and the segmenter).
func (fp Fingerprint) Uint64() uint64 {
	return binary.BigEndian.Uint64(fp[:])
}

// Truncate zeroes all but the first n bytes, emulating traces that identify
// chunks by truncated hashes (the FSL archive uses 48-bit fingerprints,
// n = 6). Truncate panics if n is out of range.
func (fp Fingerprint) Truncate(n int) Fingerprint {
	if n < 1 || n > Size {
		panic(fmt.Sprintf("fphash: invalid truncation length %d", n))
	}
	var out Fingerprint
	copy(out[:n], fp[:n])
	return out
}

// Less reports whether fp orders before other lexicographically. It defines
// the canonical total order used for deterministic tie-breaking in frequency
// ranking and for the MinHash minimum.
func (fp Fingerprint) Less(other Fingerprint) bool {
	for i := 0; i < Size; i++ {
		if fp[i] != other[i] {
			return fp[i] < other[i]
		}
	}
	return false
}

// Compare returns -1, 0, or +1 comparing fp to other lexicographically.
func (fp Fingerprint) Compare(other Fingerprint) int {
	for i := 0; i < Size; i++ {
		if fp[i] != other[i] {
			if fp[i] < other[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// IsZero reports whether fp is the zero fingerprint.
func (fp Fingerprint) IsZero() bool {
	return fp == Zero
}

// String returns the fingerprint as lowercase hex.
func (fp Fingerprint) String() string {
	return hex.EncodeToString(fp[:])
}

// Parse decodes a hex-encoded fingerprint produced by String.
func Parse(s string) (Fingerprint, error) {
	var fp Fingerprint
	b, err := hex.DecodeString(s)
	if err != nil {
		return Zero, fmt.Errorf("fphash: parse %q: %w", s, err)
	}
	if len(b) != Size {
		return Zero, fmt.Errorf("fphash: parse %q: got %d bytes, want %d", s, len(b), Size)
	}
	copy(fp[:], b)
	return fp, nil
}

// Shard maps the fingerprint to one of n shards using its leading byte,
// the lock-striping key of the sharded dedup store. Fingerprints are
// uniformly distributed (truncated SHA-256 or seeded PRNG output), so the
// prefix balances shards without further hashing, and the mapping depends
// only on the fingerprint itself — the same chunk always lands on the same
// shard, which is what makes per-shard dedup indexes exact. Shard panics
// if n is not in [1, 256].
func (fp Fingerprint) Shard(n int) int {
	if n < 1 || n > 256 {
		panic(fmt.Sprintf("fphash: shard count %d out of range [1, 256]", n))
	}
	return int(fp[0]) % n
}

// Mix returns a well-distributed 64-bit hash of the fingerprint combined
// with a salt. It implements a splitmix64-style finalizer and is used where
// independent hash functions over fingerprints are needed (Bloom filter
// double hashing, scrambling decisions, segment boundary tests).
func (fp Fingerprint) Mix(salt uint64) uint64 {
	z := fp.Uint64() + salt + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
