package workload

import (
	"fmt"

	"freqdedup/internal/trace"
)

// Builtin workloads. Six modifier-chain scenarios exercise distinct
// churn mechanics; three adapters expose the classic internal/trace
// generators (the paper's synthetic, FSL-like, and VM datasets) under the
// same registry so every consumer enumerates one namespace.
//
// Factories receive the caller's raw Config: a zero field means "not
// set", letting scenario factories supply their own defaults (user
// counts, chunk models) before NewGenerator validates the result.

func init() {
	Register("fileserver", newFileserver)
	Register("vmfarm", newVMFarm)
	Register("database", newDatabase)
	Register("media", newMedia)
	Register("compressed", newCompressed)
	Register("teamshare", newTeamshare)
	Register("synthetic", newSyntheticAdapter)
	Register("fsl", newFSLAdapter)
	Register("vm", newVMAdapter)
}

// fileserver: a general-purpose file server — shared-library duplication,
// a volatile working set modified in clustered regions, slow growth.
func newFileserver(cfg Config) (Source, error) {
	return NewGenerator("fileserver", cfg,
		func(st *State) {
			st.InitLibrary(6, 256, 48<<10)
			per := st.Cfg.TotalBytes / st.Cfg.Users
			for u := 0; u < st.Cfg.Users; u++ {
				st.Fill(u, per, 0.08, 0.45, 0.55)
			}
		},
		FileChurn{
			ModifyFrac:  0.08,
			ContentFrac: 0.35,
			DeleteFrac:  0.01,
			GrowFrac:    0.03,
			HotFrac:     0.08,
			ReuseFrac:   0.30,
		},
	)
}

// vmfarm: a cluster of VM images cloned from one base — heavy cross-image
// duplication, clustered churn in a volatile zone, local block
// relocation, and episodic layer installs. Each user is one image.
func newVMFarm(cfg Config) (Source, error) {
	if cfg.Users == 0 {
		cfg.Users = 4
	}
	return NewGenerator("vmfarm", cfg,
		func(st *State) {
			st.InitLibrary(6, 96, 32<<10)
			// The shared base image every VM is cloned from.
			per := st.Cfg.TotalBytes / st.Cfg.Users
			base := &Extent{vol: 1}
			for base.bytes() < per {
				e := st.newObject(st.Cfg.MeanObjectBytes, 0.06, 0.45)
				base.chunks = append(base.chunks, e.chunks...)
			}
			for _, s := range st.Users() {
				img := base.clone()
				st.rewriteRegion(img, 0.10, 0.35) // initial per-VM drift
				s.extents = []*Extent{img}
			}
		},
		VMLayer{
			ChurnFrac:        0.08,
			VolatileZoneFrac: 0.35,
			RelocateFrac:     0.15,
			LayerFrac:        0.06,
			LayerEvery:       2,
			HotFrac:          0.06,
			ReuseFrac:        0.30,
		},
	)
}

// database: one database file per user — fixed-size pages, a template-page
// frequency head (zero pages, catalog pages repeated across the file),
// in-place hot-zone updates, slow tail growth.
func newDatabase(cfg Config) (Source, error) {
	if cfg.Chunk == (trace.ChunkSizeModel{}) {
		// Database pages are fixed-size.
		cfg.Chunk = trace.ChunkSizeModel{Min: 8192, Avg: 8192, Max: 8192}
	}
	return NewGenerator("database", cfg,
		func(st *State) {
			st.InitLibrary(8, 0, 0) // hot singles double as template pages
			per := st.Cfg.TotalBytes / st.Cfg.Users
			for _, s := range st.Users() {
				file := &Extent{vol: 1}
				for file.bytes() < per {
					if st.Rng.Float64() < 0.12 {
						file.chunks = append(file.chunks, st.pickHot().chunks[0])
					} else {
						file.chunks = append(file.chunks, st.MintChunk())
					}
				}
				s.extents = []*Extent{file}
			}
		},
		DBPageUpdate{
			UpdateFrac:  0.10,
			HotZoneFrac: 0.20,
			HotProb:     0.80,
			GrowFrac:    0.01,
		},
	)
}

// media: an append-only media library — large immutable blobs, a fraction
// of arrivals duplicating stored assets, nothing modified or deleted.
func newMedia(cfg Config) (Source, error) {
	return NewGenerator("media", cfg,
		func(st *State) {
			st.InitLibrary(4, 64, 4*st.Cfg.MeanObjectBytes)
			per := st.Cfg.TotalBytes / st.Cfg.Users
			for u := 0; u < st.Cfg.Users; u++ {
				st.Fill(u, per, 0.05, 0.25, 1.0) // stableFrac 1: immutable
			}
		},
		MediaAppend{
			AppendFrac: 0.10,
			DupFrac:    0.15,
		},
	)
}

// compressed: compress-then-backup archives — light upstream churn whose
// effect is amplified by boundary re-cutting downstream of each edit, so
// only the leading portion of the stream deduplicates across generations.
func newCompressed(cfg Config) (Source, error) {
	return NewGenerator("compressed", cfg,
		func(st *State) {
			st.InitLibrary(6, 128, 48<<10)
			per := st.Cfg.TotalBytes / st.Cfg.Users
			for u := 0; u < st.Cfg.Users; u++ {
				st.Fill(u, per, 0.08, 0.40, 0.55)
			}
		},
		FileChurn{
			ModifyFrac:  0.02,
			ContentFrac: 0.10,
			GrowFrac:    0.02,
			HotFrac:     0.08,
			ReuseFrac:   0.30,
		},
		CompressRecut{TailFrac: 0.30},
	)
}

// teamshare: multi-user shared-team storage — per-user churn plus
// cross-user propagation of shared artifacts each generation.
func newTeamshare(cfg Config) (Source, error) {
	if cfg.Users == 0 {
		cfg.Users = 3
	}
	return NewGenerator("teamshare", cfg,
		func(st *State) {
			st.InitLibrary(6, 192, 48<<10)
			per := st.Cfg.TotalBytes / st.Cfg.Users
			for u := 0; u < st.Cfg.Users; u++ {
				st.Fill(u, per, 0.08, 0.45, 0.55)
			}
		},
		FileChurn{
			ModifyFrac:  0.06,
			ContentFrac: 0.30,
			DeleteFrac:  0.01,
			GrowFrac:    0.02,
			HotFrac:     0.08,
			ReuseFrac:   0.30,
		},
		UserOverlap{ShareFrac: 0.03, RecipientVol: 0.5},
	)
}

// newSyntheticAdapter exposes the paper's synthetic snapshot-chain
// generator (trace.GenerateSynthetic). Config knobs map onto the trace
// params only when set, so the zero Config reproduces the classic default
// dataset exactly (aside from seed).
func newSyntheticAdapter(cfg Config) (Source, error) {
	if _, err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	p := trace.DefaultSyntheticParams()
	// A zero seed keeps the classic default, so the registry reproduces
	// the historical dataset bit for bit with a zero Config.
	if cfg.Seed != 0 {
		p.Seed = cfg.Seed
	}
	p.Rng = cfg.Rng
	if cfg.Backups != 0 {
		p.Snapshots = cfg.Backups - 1
	}
	if cfg.TotalBytes != 0 {
		// Keep the paper's new-data ratio when rescaling the image.
		p.NewDataBytes = int(float64(p.NewDataBytes) * float64(cfg.TotalBytes) / float64(p.InitialBytes))
		p.InitialBytes = cfg.TotalBytes
	}
	if cfg.MeanObjectBytes != 0 {
		p.MeanFileBytes = cfg.MeanObjectBytes
	}
	if cfg.Chunk != (trace.ChunkSizeModel{}) {
		p.Chunk = cfg.Chunk
	}
	return sourceFunc(func() (*trace.Dataset, error) {
		return trace.GenerateSynthetic(p), nil
	}), nil
}

// newFSLAdapter exposes the FSL-like multi-user home-directory generator
// (trace.GenerateFSL).
func newFSLAdapter(cfg Config) (Source, error) {
	if _, err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	p := trace.DefaultFSLParams()
	if cfg.Seed != 0 {
		p.Seed = cfg.Seed
	}
	p.Rng = cfg.Rng
	if cfg.Users != 0 {
		p.Users = cfg.Users
	}
	if cfg.Backups != 0 {
		labels := make([]string, cfg.Backups)
		for i := range labels {
			labels[i] = fmt.Sprintf("%d", i)
		}
		p.Labels = labels
	}
	if cfg.TotalBytes != 0 {
		p.PerUserBytes = cfg.TotalBytes / p.Users
	}
	if cfg.MeanObjectBytes != 0 {
		p.MeanFileBytes = cfg.MeanObjectBytes
	}
	if cfg.Chunk != (trace.ChunkSizeModel{}) {
		p.Chunk = cfg.Chunk
	}
	return sourceFunc(func() (*trace.Dataset, error) {
		return trace.GenerateFSL(p), nil
	}), nil
}

// newVMAdapter exposes the VM-image weekly-snapshot generator
// (trace.GenerateVM). The trace generator uses fixed-size chunks; a
// Config chunk model contributes only its average.
func newVMAdapter(cfg Config) (Source, error) {
	if _, err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	p := trace.DefaultVMParams()
	if cfg.Seed != 0 {
		p.Seed = cfg.Seed
	}
	p.Rng = cfg.Rng
	if cfg.Users != 0 {
		p.Students = cfg.Users
	}
	if cfg.Backups != 0 {
		p.Weeks = cfg.Backups
	}
	if cfg.TotalBytes != 0 {
		p.BaseImageBytes = cfg.TotalBytes / p.Students
	}
	if cfg.Chunk != (trace.ChunkSizeModel{}) {
		p.ChunkSize = cfg.Chunk.Avg
	}
	return sourceFunc(func() (*trace.Dataset, error) {
		return trace.GenerateVM(p), nil
	}), nil
}
