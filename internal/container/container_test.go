package container

import (
	"testing"

	"freqdedup/internal/fphash"
)

func entry(id uint64, size uint32) Entry {
	return Entry{FP: fphash.FromUint64(id), Size: size}
}

func TestAppendAndGet(t *testing.T) {
	s := New(100)
	loc := s.Append(entry(1, 40))
	if loc.Container != 0 || loc.Index != 0 {
		t.Fatalf("first location = %+v", loc)
	}
	got, ok := s.Get(loc)
	if !ok || got.FP != fphash.FromUint64(1) {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
}

func TestSealOnCapacity(t *testing.T) {
	s := New(100)
	s.Append(entry(1, 60))
	loc := s.Append(entry(2, 60)) // does not fit: previous sealed
	if loc.Container != 1 {
		t.Fatalf("second chunk in container %d, want 1", loc.Container)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	c, ok := s.Container(0)
	if !ok || len(c.Entries) != 1 {
		t.Fatalf("sealed container wrong: %+v %v", c, ok)
	}
}

func TestOversizedEntryGetsOwnContainer(t *testing.T) {
	s := New(100)
	loc := s.Append(entry(1, 500)) // larger than capacity: stored alone
	if loc.Container != 0 {
		t.Fatalf("oversized chunk location %+v", loc)
	}
	loc2 := s.Append(entry(2, 10))
	if loc2.Container != 1 {
		t.Fatalf("chunk after oversized should start container 1, got %d", loc2.Container)
	}
}

func TestFlush(t *testing.T) {
	s := New(1000)
	if s.Flush() != nil {
		t.Fatal("flushing empty store should return nil")
	}
	s.Append(entry(1, 10))
	c := s.Flush()
	if c == nil || c.ID != 0 || len(c.Entries) != 1 {
		t.Fatalf("flushed container = %+v", c)
	}
	if s.Flush() != nil {
		t.Fatal("double flush should return nil")
	}
	// New appends go into a fresh container.
	loc := s.Append(entry(2, 10))
	if loc.Container != 1 {
		t.Fatalf("post-flush container = %d, want 1", loc.Container)
	}
}

func TestLocationsStable(t *testing.T) {
	s := New(256)
	locs := make([]Location, 0, 100)
	for i := uint64(0); i < 100; i++ {
		locs = append(locs, s.Append(entry(i, 32)))
	}
	for i, loc := range locs {
		got, ok := s.Get(loc)
		if !ok || got.FP != fphash.FromUint64(uint64(i)) {
			t.Fatalf("location %d no longer resolves", i)
		}
	}
}

func TestGetMissing(t *testing.T) {
	s := New(100)
	if _, ok := s.Get(Location{Container: 5, Index: 0}); ok {
		t.Fatal("Get of absent container succeeded")
	}
	s.Append(entry(1, 10))
	if _, ok := s.Get(Location{Container: 0, Index: 7}); ok {
		t.Fatal("Get of absent index succeeded")
	}
	if _, ok := s.Get(Location{Container: -1, Index: 0}); ok {
		t.Fatal("Get of negative container succeeded")
	}
}

func TestBytes(t *testing.T) {
	s := New(100)
	s.Append(entry(1, 60))
	s.Append(entry(2, 60))
	s.Append(entry(3, 10))
	if got := s.Bytes(); got != 130 {
		t.Fatalf("Bytes = %d, want 130", got)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}
