// Command tracegen generates backup workloads from the workload registry
// (internal/workload) and writes them as binary trace files consumable by
// cmd/attack and cmd/defend. The registry covers the paper's three
// evaluation datasets (fsl, synthetic, vm) and the modifier-chain
// scenarios (fileserver, vmfarm, database, media, compressed, teamshare).
//
// Usage:
//
//	tracegen -list
//	tracegen -workload fileserver -out fileserver.trace
//	tracegen -workload all -out traces/
//	tracegen -workload database -backups 8 -size $((64<<20)) -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"freqdedup/internal/trace"
	"freqdedup/internal/workload"
)

func main() {
	name := flag.String("workload", "all", `workload to generate (see -list), or "all"`)
	dataset := flag.String("dataset", "", "deprecated alias for -workload")
	list := flag.Bool("list", false, "list the registered workloads and exit")
	out := flag.String("out", ".", "output file (single workload) or directory (all)")
	seed := flag.Int64("seed", 0, "generator seed (0 = the workload's default)")
	backups := flag.Int("backups", 0, "backup generations (0 = the workload's default)")
	size := flag.Int("size", 0, "approximate initial logical size in bytes (0 = default)")
	users := flag.Int("users", 0, "parallel user streams (0 = the workload's default)")
	tiny := flag.Bool("tiny", false, "tiny smoke-test scale (3 backups, 2 MiB) unless overridden")
	flag.Parse()

	if *list {
		for _, n := range workload.List() {
			fmt.Println(n)
		}
		return
	}
	if *dataset != "" {
		*name = *dataset
	}

	cfg := workload.Config{Seed: *seed, Backups: *backups, TotalBytes: *size, Users: *users}
	if *tiny {
		if cfg.Backups == 0 {
			cfg.Backups = 3
		}
		if cfg.TotalBytes == 0 {
			cfg.TotalBytes = 2 << 20
		}
	}

	var names []string
	if *name == "all" {
		names = workload.List()
	} else {
		if _, err := workload.Lookup(*name); err != nil {
			// The lookup error names every available workload.
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(2)
		}
		names = []string{*name}
	}

	for _, n := range names {
		d, err := workload.Generate(n, cfg)
		if err != nil {
			fatal(err)
		}
		path := *out
		if *name == "all" || isDir(path) {
			if err := os.MkdirAll(path, 0o755); err != nil {
				fatal(err)
			}
			path = filepath.Join(path, n+".trace")
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(f, d); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st := d.Stats()
		fmt.Printf("%s: %d backups, %d chunks (%d unique), %.1fx dedup -> %s\n",
			n, len(d.Backups), st.LogicalChunks, st.UniqueChunks, st.Ratio(), path)
	}
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
