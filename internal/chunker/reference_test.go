package chunker

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"freqdedup/internal/fphash"
	"freqdedup/internal/rabin"
)

// referenceCDC is the seed implementation of content-defined chunking,
// kept verbatim as the golden oracle: it rolls the Rabin hash one byte at
// a time through rabin.Hash.Roll, double-copies chunks out of a growing
// lookahead buffer, and fingerprints inline. The optimized ContentDefined
// must emit byte-identical cut points and fingerprints.
type referenceCDC struct {
	r       io.Reader
	p       Params
	mask    uint64
	magic   uint64
	hash    *rabin.Hash
	readBuf []byte
	buf     []byte
	offset  int64
	eof     bool
}

func newReferenceCDC(r io.Reader, p Params) (*referenceCDC, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	window := p.Window
	if window == 0 {
		window = rabin.DefaultWindow
	}
	return &referenceCDC{
		r:       r,
		p:       p,
		mask:    uint64(p.Avg - 1),
		magic:   uint64(p.Avg - 1),
		hash:    rabin.New(window),
		readBuf: make([]byte, 64*1024),
	}, nil
}

func (c *referenceCDC) fill() (bool, error) {
	if c.eof {
		return len(c.buf) > 0, nil
	}
	n, err := c.r.Read(c.readBuf)
	if n > 0 {
		c.buf = append(c.buf, c.readBuf[:n]...)
	}
	if err != nil {
		if errors.Is(err, io.EOF) {
			c.eof = true
			return len(c.buf) > 0, nil
		}
		return false, err
	}
	return true, nil
}

func (c *referenceCDC) Next() (Chunk, error) {
	c.hash.Reset()
	cut := -1
	pos := 0
	for cut < 0 {
		for pos >= len(c.buf) {
			ok, err := c.fill()
			if err != nil {
				return Chunk{}, err
			}
			if !ok || (c.eof && pos >= len(c.buf)) {
				if pos == 0 {
					return Chunk{}, io.EOF
				}
				cut = pos
				break
			}
		}
		if cut >= 0 {
			break
		}
		fp := c.hash.Roll(c.buf[pos])
		pos++
		if pos >= c.p.Max {
			cut = pos
		} else if pos >= c.p.Min && fp&c.mask == c.magic {
			cut = pos
		}
	}
	data := make([]byte, cut)
	copy(data, c.buf[:cut])
	c.buf = c.buf[:copy(c.buf, c.buf[cut:])]
	ch := Chunk{Data: data, Offset: c.offset, Fingerprint: fphash.FromBytes(data)}
	c.offset += int64(cut)
	return ch, nil
}

// compareAgainstReference chunks data with both implementations and fails
// on the first divergence in offset, size, content, or fingerprint.
func compareAgainstReference(t *testing.T, data []byte, p Params) {
	t.Helper()
	ref, err := newReferenceCDC(bytes.NewReader(data), p)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewContentDefined(bytes.NewReader(data), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		want, wantErr := ref.Next()
		got, gotErr := opt.Next()
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("chunk %d: errors diverge: ref %v, opt %v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			if !errors.Is(wantErr, io.EOF) || !errors.Is(gotErr, io.EOF) {
				t.Fatalf("chunk %d: non-EOF termination: ref %v, opt %v", i, wantErr, gotErr)
			}
			return
		}
		if got.Offset != want.Offset {
			t.Fatalf("chunk %d: offset %d, reference %d", i, got.Offset, want.Offset)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("chunk %d (offset %d): content diverges from reference (len %d vs %d)",
				i, got.Offset, len(got.Data), len(want.Data))
		}
		if got.Fingerprint != want.Fingerprint {
			t.Fatalf("chunk %d: fingerprint %v, reference %v", i, got.Fingerprint, want.Fingerprint)
		}
	}
}

// TestCDCGoldenAgainstReference is the refactor's bit-for-bit guarantee at
// the chunker layer: across sizes, parameters, and window configurations,
// the optimized scanner cuts exactly where the seed implementation did.
func TestCDCGoldenAgainstReference(t *testing.T) {
	params := []Params{
		DefaultParams(),
		{Min: 512, Avg: 2048, Max: 4096},
		{Min: 2048, Avg: 2048, Max: 2048},              // degenerate fixed-size
		{Min: 16, Avg: 64, Max: 256},                   // Min smaller than the Rabin window
		{Min: 2048, Avg: 8192, Max: 16384, Window: 16}, // non-default window
	}
	sizes := []int{0, 1, 100, 2047, 2048, 2049, 16384, 16385, 1 << 20}
	for pi, p := range params {
		for _, n := range sizes {
			compareAgainstReference(t, randBytes(int64(100*pi+n%97+1), n), p)
		}
	}
	// Low-entropy inputs: long zero runs keep the fingerprint at zero and
	// exercise the Max-forced cut path.
	compareAgainstReference(t, make([]byte, 256*1024), DefaultParams())
	// Repeating pattern: periodic fingerprints, many identical boundaries.
	pat := bytes.Repeat([]byte("abcdefgh"), 64*1024)
	compareAgainstReference(t, pat, DefaultParams())
}

// TestCDCGoldenFragmentedReader runs the golden comparison with a reader
// that trickles bytes, so buffer refill and compaction paths are crossed
// mid-chunk.
func TestCDCGoldenFragmentedReader(t *testing.T) {
	data := randBytes(77, 512*1024)
	ref, err := newReferenceCDC(bytes.NewReader(data), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewContentDefined(iotest{r: bytes.NewReader(data), max: 1013}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want, err := All(ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := All(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fragmented reader: %d chunks, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Offset != want[i].Offset || got[i].Fingerprint != want[i].Fingerprint {
			t.Fatalf("fragmented reader: chunk %d diverges from reference", i)
		}
	}
}

// FuzzCDCMatchesReference fuzzes arbitrary inputs through both
// implementations. Run with `go test -fuzz=FuzzCDCMatchesReference`; under
// plain `go test` the seed corpus doubles as extra golden cases.
func FuzzCDCMatchesReference(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte("tiny"), uint8(1))
	f.Add(randBytes(21, 70000), uint8(0))
	f.Add(bytes.Repeat([]byte{0xAB, 0}, 9000), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, sel uint8) {
		params := []Params{
			DefaultParams(),
			{Min: 64, Avg: 256, Max: 1024},
			{Min: 16, Avg: 32, Max: 48, Window: 8},
		}
		p := params[int(sel)%len(params)]
		ref, err := newReferenceCDC(bytes.NewReader(data), p)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := NewContentDefined(bytes.NewReader(data), p)
		if err != nil {
			t.Fatal(err)
		}
		for {
			want, wantErr := ref.Next()
			got, gotErr := opt.Next()
			if (wantErr != nil) != (gotErr != nil) {
				t.Fatalf("errors diverge: ref %v, opt %v", wantErr, gotErr)
			}
			if wantErr != nil {
				return
			}
			if got.Offset != want.Offset || got.Fingerprint != want.Fingerprint ||
				!bytes.Equal(got.Data, want.Data) {
				t.Fatalf("chunk at offset %d diverges from reference", want.Offset)
			}
		}
	})
}

// TestChunkReleaseReuse: released buffers are handed out again, and the
// pooled path never corrupts chunk contents.
func TestChunkReleaseReuse(t *testing.T) {
	data := randBytes(31, 256*1024)
	c, err := NewContentDefined(bytes.NewReader(data), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var reassembled []byte
	for {
		ch, err := c.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ch.Fingerprint != fphash.FromBytes(ch.Data) {
			t.Fatal("fingerprint does not match data")
		}
		reassembled = append(reassembled, ch.Data...)
		ch.Release()
	}
	if !bytes.Equal(reassembled, data) {
		t.Fatal("reassembly with released chunks diverges from input")
	}
}

// TestDeferFingerprint: deferred mode leaves Fingerprint zero but cuts
// identically.
func TestDeferFingerprint(t *testing.T) {
	data := randBytes(32, 128*1024)
	p := DefaultParams()
	p.DeferFingerprint = true
	def, err := NewContentDefined(bytes.NewReader(data), p)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := NewContentDefined(bytes.NewReader(data), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	dc, err := All(def)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := All(eager)
	if err != nil {
		t.Fatal(err)
	}
	if len(dc) != len(ec) {
		t.Fatalf("deferred mode changed chunk count: %d vs %d", len(dc), len(ec))
	}
	for i := range dc {
		if !dc[i].Fingerprint.IsZero() {
			t.Fatalf("chunk %d: fingerprint computed despite DeferFingerprint", i)
		}
		if fphash.FromBytes(dc[i].Data) != ec[i].Fingerprint {
			t.Fatalf("chunk %d: deferred content diverges", i)
		}
	}
}
