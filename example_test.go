package freqdedup_test

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"

	"freqdedup"
)

// ExampleCreateRepository shows the repository lifecycle end to end:
// create a file-backed repository, back up two versions of the same data,
// list the snapshots, expire one, garbage-collect, and restore — all
// through the one front door.
func ExampleCreateRepository() {
	dir, err := os.MkdirTemp("", "freqdedup-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	var key freqdedup.Key
	copy(key[:], "the user's own secret key......")

	repo, err := freqdedup.CreateRepository(dir, freqdedup.WithRepositoryKey(key))
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()
	ctx := context.Background()

	// Two backups of the same primary data with a small edit: most chunks
	// deduplicate.
	v1 := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 40000)
	v2 := append(append([]byte(nil), v1...), []byte("one new tail block")...)
	if _, err := repo.Backup(ctx, "monday", bytes.NewReader(v1)); err != nil {
		log.Fatal(err)
	}
	if _, err := repo.Backup(ctx, "tuesday", bytes.NewReader(v2)); err != nil {
		log.Fatal(err)
	}

	for _, s := range repo.Snapshots() {
		fmt.Printf("%s: %d bytes\n", s.Name, s.LogicalBytes)
	}

	// Expire monday; GC reclaims only chunks no snapshot references.
	if err := repo.Delete(ctx, "monday"); err != nil {
		log.Fatal(err)
	}
	if _, err := repo.GC(ctx); err != nil {
		log.Fatal(err)
	}

	var out bytes.Buffer
	if err := repo.Restore(ctx, "tuesday", &out); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tuesday restored:", bytes.Equal(out.Bytes(), v2))
	// Output:
	// monday: 1800000 bytes
	// tuesday: 1800018 bytes
	// tuesday restored: true
}

// ExampleOpenRepository shows what the durable snapshot catalog buys: a
// repository reopened in a fresh process still knows every snapshot and
// its chunk references, so Verify passes and GC reclaims nothing that is
// still referenced.
func ExampleOpenRepository() {
	dir, err := os.MkdirTemp("", "freqdedup-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	repo, err := freqdedup.CreateRepository(dir)
	if err != nil {
		log.Fatal(err)
	}
	data := bytes.Repeat([]byte("backup data, day one. "), 50000)
	if _, err := repo.Backup(ctx, "day-1", bytes.NewReader(data)); err != nil {
		log.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		log.Fatal(err)
	}

	// A new process reopens the repository.
	reopened, err := freqdedup.OpenRepository(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	fmt.Println("snapshots after reopen:", len(reopened.Snapshots()))
	if err := reopened.Verify(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verify: ok")
	gc, err := reopened.GC(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("chunks reclaimed by GC:", gc.ChunksReclaimed)
	var out bytes.Buffer
	if err := reopened.Restore(ctx, "day-1", &out); err != nil {
		log.Fatal(err)
	}
	fmt.Println("day-1 restored:", bytes.Equal(out.Bytes(), data))
	// Output:
	// snapshots after reopen: 1
	// verify: ok
	// chunks reclaimed by GC: 0
	// day-1 restored: true
}

// ExampleRepository_Backup demonstrates cancellation: every data-path
// method takes a context, and a cancelled backup returns ctx.Err()
// without recording a snapshot.
func ExampleRepository_Backup() {
	repo, err := freqdedup.CreateRepository("") // in-memory repository
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the backup starts
	_, err = repo.Backup(ctx, "doomed", bytes.NewReader([]byte("data")))
	fmt.Println("cancelled backup error:", err)
	fmt.Println("snapshots recorded:", len(repo.Snapshots()))
	// Output:
	// cancelled backup error: context canceled
	// snapshots recorded: 0
}
