// Package mle implements message-locked encryption (MLE) schemes for
// encrypted deduplication (Section 2.2 of the paper):
//
//   - Convergent encryption: the chunk key is the hash of the chunk content
//     (Douceur et al.), the classical MLE instantiation.
//   - Server-aided MLE (DupLESS-style): the chunk key is derived by a key
//     manager from the chunk fingerprint and a system-wide secret, making
//     offline brute-force infeasible for the adversary.
//   - MinHash encryption: one key per segment, derived from the minimum
//     chunk fingerprint of the segment (Algorithm 4) — the paper's first
//     defense against frequency analysis.
//   - Random convergent encryption (RCE): per-chunk random keys with a
//     deterministic content tag. Included to demonstrate (Section 8) that
//     the deterministic tag still leaks the frequency distribution.
//
// All deterministic schemes encrypt with AES-256-CTR under a key- derived
// IV, so identical (key, plaintext) pairs produce identical ciphertexts —
// the property deduplication requires and frequency analysis exploits.
// Ciphertext length equals plaintext length, which is what the advanced
// locality-based attack's size classification assumes.
package mle

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"

	"freqdedup/internal/fphash"
)

// KeySize is the symmetric key size in bytes (AES-256).
const KeySize = 32

// Key is a chunk encryption key.
type Key [KeySize]byte

// ErrNoKeyDeriver is returned by schemes that require a key manager when
// none is configured.
var ErrNoKeyDeriver = errors.New("mle: no key deriver configured")

// KeyDeriver derives a chunk key from a chunk fingerprint. The server-aided
// key manager (package keymgr) implements this interface; tests use local
// implementations.
type KeyDeriver interface {
	DeriveKey(fp fphash.Fingerprint) (Key, error)
}

// KeyDeriverFunc adapts a function to the KeyDeriver interface.
type KeyDeriverFunc func(fp fphash.Fingerprint) (Key, error)

// DeriveKey implements KeyDeriver.
func (f KeyDeriverFunc) DeriveKey(fp fphash.Fingerprint) (Key, error) { return f(fp) }

// LocalDeriver derives keys as HMAC-SHA-256(secret, fingerprint) locally.
// It is the in-process equivalent of the key manager's derivation and is
// also what MinHash encryption uses to turn a minimum fingerprint into a
// segment key.
type LocalDeriver struct {
	secret []byte
}

var _ KeyDeriver = (*LocalDeriver)(nil)

// NewLocalDeriver returns a deriver keyed by secret. The secret plays the
// role of the key manager's system-wide secret.
func NewLocalDeriver(secret []byte) *LocalDeriver {
	s := make([]byte, len(secret))
	copy(s, secret)
	return &LocalDeriver{secret: s}
}

// DeriveKey implements KeyDeriver.
func (d *LocalDeriver) DeriveKey(fp fphash.Fingerprint) (Key, error) {
	mac := hmac.New(sha256.New, d.secret)
	mac.Write(fp[:])
	var k Key
	copy(k[:], mac.Sum(nil))
	return k, nil
}

// ConvergentKey returns the convergent-encryption key for a chunk: the
// SHA-256 hash of its content.
func ConvergentKey(chunk []byte) Key {
	return Key(sha256.Sum256(chunk))
}

// ivFor derives the deterministic CTR IV for a key. Because every distinct
// plaintext yields a distinct key under MLE, a key-derived IV is never
// reused across distinct plaintexts.
func ivFor(k Key) [aes.BlockSize]byte {
	// Fixed-size scratch keeps this allocation-free on the per-chunk
	// encrypt path; the hashed bytes are identical to key || label.
	const label = "freqdedup-iv"
	var buf [len(Key{}) + len(label)]byte
	copy(buf[:], k[:])
	copy(buf[len(Key{}):], label)
	sum := sha256.Sum256(buf[:])
	var iv [aes.BlockSize]byte
	copy(iv[:], sum[:aes.BlockSize])
	return iv
}

// EncryptDeterministic encrypts plaintext with AES-256-CTR under key k and
// a key-derived IV. The output has the same length as the input and is a
// deterministic function of (k, plaintext).
func EncryptDeterministic(k Key, plaintext []byte) []byte {
	block, err := aes.NewCipher(k[:])
	if err != nil {
		// aes.NewCipher only fails on invalid key sizes, which the Key type
		// makes impossible.
		panic(fmt.Sprintf("mle: aes: %v", err))
	}
	iv := ivFor(k)
	out := make([]byte, len(plaintext))
	cipher.NewCTR(block, iv[:]).XORKeyStream(out, plaintext)
	return out
}

// DecryptDeterministic inverts EncryptDeterministic.
func DecryptDeterministic(k Key, ciphertext []byte) []byte {
	// CTR mode is an involution under the same key stream.
	return EncryptDeterministic(k, ciphertext)
}

// DecryptDeterministicInto decrypts ciphertext into dst, which must be at
// least len(ciphertext) bytes; the plaintext occupies the first
// len(ciphertext) bytes of dst. It exists so the restore pipeline can
// decrypt into pooled buffers without a per-chunk allocation.
func DecryptDeterministicInto(k Key, ciphertext, dst []byte) {
	block, err := aes.NewCipher(k[:])
	if err != nil {
		panic(fmt.Sprintf("mle: aes: %v", err))
	}
	iv := ivFor(k)
	cipher.NewCTR(block, iv[:]).XORKeyStream(dst, ciphertext)
}

// Convergent is the classical MLE scheme: per-chunk key = hash of content.
type Convergent struct{}

// Encrypt encrypts one chunk, returning the ciphertext and the chunk key
// (to be stored in the user's key recipe).
func (Convergent) Encrypt(chunk []byte) (ciphertext []byte, key Key) {
	key = ConvergentKey(chunk)
	return EncryptDeterministic(key, chunk), key
}

// ServerAided is DupLESS-style MLE: per-chunk key derived by a key manager
// from the chunk fingerprint.
type ServerAided struct {
	deriver KeyDeriver
}

// NewServerAided returns a server-aided scheme using the given deriver
// (typically a keymgr.Client).
func NewServerAided(d KeyDeriver) *ServerAided {
	return &ServerAided{deriver: d}
}

// Encrypt encrypts one chunk via the key manager.
func (s *ServerAided) Encrypt(chunk []byte) ([]byte, Key, error) {
	if s.deriver == nil {
		return nil, Key{}, ErrNoKeyDeriver
	}
	key, err := s.deriver.DeriveKey(fphash.FromBytes(chunk))
	if err != nil {
		return nil, Key{}, fmt.Errorf("mle: derive key: %w", err)
	}
	return EncryptDeterministic(key, chunk), key, nil
}

// MinHash implements MinHash encryption (Algorithm 4): all chunks of a
// segment are encrypted under one key derived from the minimum chunk
// fingerprint of the segment. Highly similar segments share the same
// minimum fingerprint with high probability (Broder's theorem), so most
// duplicate chunks still deduplicate, while occasional key divergence
// perturbs the ciphertext frequency ranking.
type MinHash struct {
	deriver KeyDeriver
}

// NewMinHash returns a MinHash encryptor whose segment keys are derived by
// d from the segment's minimum fingerprint.
func NewMinHash(d KeyDeriver) *MinHash {
	return &MinHash{deriver: d}
}

// SegmentKey derives the key for a segment given the fingerprints of its
// chunks. It returns an error if the segment is empty.
func (m *MinHash) SegmentKey(fps []fphash.Fingerprint) (Key, error) {
	if m.deriver == nil {
		return Key{}, ErrNoKeyDeriver
	}
	if len(fps) == 0 {
		return Key{}, errors.New("mle: empty segment")
	}
	min := fps[0]
	for _, fp := range fps[1:] {
		if fp.Less(min) {
			min = fp
		}
	}
	key, err := m.deriver.DeriveKey(min)
	if err != nil {
		return Key{}, fmt.Errorf("mle: derive segment key: %w", err)
	}
	return key, nil
}

// EncryptSegment encrypts every chunk of a segment under the segment key.
// It returns the ciphertexts and the shared key.
func (m *MinHash) EncryptSegment(chunks [][]byte) ([][]byte, Key, error) {
	fps := make([]fphash.Fingerprint, len(chunks))
	for i, c := range chunks {
		fps[i] = fphash.FromBytes(c)
	}
	key, err := m.SegmentKey(fps)
	if err != nil {
		return nil, Key{}, err
	}
	out := make([][]byte, len(chunks))
	for i, c := range chunks {
		out[i] = EncryptDeterministic(key, c)
	}
	return out, key, nil
}

// RCECiphertext is a random-convergent-encryption ciphertext: a randomized
// body plus a deterministic tag. Deduplication matches on Tag, which is why
// RCE still leaks the chunk frequency distribution (Section 8).
type RCECiphertext struct {
	Body []byte
	// Tag is the deterministic duplicate-detection tag H(chunk).
	Tag fphash.Fingerprint
	// WrappedKey is the chunk's random key encrypted under the convergent
	// key of the chunk, so any holder of the plaintext can unwrap it.
	WrappedKey [KeySize]byte
}

// RCEEncrypt encrypts a chunk under a fresh random key and attaches the
// deterministic tag required for deduplication.
func RCEEncrypt(chunk []byte) (RCECiphertext, error) {
	var k Key
	if _, err := rand.Read(k[:]); err != nil {
		return RCECiphertext{}, fmt.Errorf("mle: rce: %w", err)
	}
	ck := ConvergentKey(chunk)
	var wrapped [KeySize]byte
	ks := EncryptDeterministic(ck, k[:])
	copy(wrapped[:], ks)
	return RCECiphertext{
		Body:       EncryptDeterministic(k, chunk),
		Tag:        fphash.FromBytes(chunk),
		WrappedKey: wrapped,
	}, nil
}

// RCEDecrypt recovers the plaintext given the convergent key of the chunk.
func RCEDecrypt(ct RCECiphertext, convergentKey Key) []byte {
	var k Key
	copy(k[:], DecryptDeterministic(convergentKey, ct.WrappedKey[:]))
	return DecryptDeterministic(k, ct.Body)
}
