package dedup

import (
	"freqdedup/internal/container"
	"freqdedup/internal/fphash"
	"freqdedup/internal/fpindex"
)

// shardIndex is the per-shard fingerprint-to-location mapping behind the
// store's shard seam. Two implementations: mapIndex, the original
// in-memory map rebuilt from container metadata on every open, and fpIdx,
// the persistent bloom-fronted run index (internal/fpindex) whose open
// cost is O(metadata written since the last flush). All methods are
// called with the owning shard's lock held, so implementations need no
// locking of their own beyond what fpindex does internally for its
// background compaction.
type shardIndex interface {
	// lookup resolves fp. A non-nil error means the index could not
	// answer (a corrupt run block); callers on the write path treat it
	// as a miss, callers on the read path surface it.
	lookup(fp fphash.Fingerprint) (container.Location, bool, error)
	// insert records fp at loc, overwriting any previous location.
	insert(fp fphash.Fingerprint, loc container.Location)
	// count returns the number of fingerprints indexed.
	count() int
	// maybeFlush lets a persistent index spill its memtable when full;
	// sealed is the shard's sealed-container count (only postings in
	// containers below it may be persisted). A no-op for mapIndex.
	maybeFlush(sealed int) error
	// flush unconditionally persists everything persistable, advancing
	// the index's durable watermark to sealed. A no-op for mapIndex.
	flush(sealed int) error
	// beginLayoutChange durably marks that container locations are about
	// to be invalidated (GC/repair rewrite); until the matching complete
	// or abort, a crash forces a full index rebuild on open.
	beginLayoutChange() error
	// abortLayoutChange clears the marker after a failed rewrite that
	// left the old layout intact.
	abortLayoutChange() error
	// completeLayoutChange replaces the index's entire contents with m,
	// the surviving fingerprints at their post-rewrite locations, and
	// clears the layout-change marker. The index takes ownership of m.
	completeLayoutChange(m map[fphash.Fingerprint]container.Location, sealed int) error
	// close releases index resources (flushing nothing — callers flush
	// explicitly first when they want durability).
	close() error
}

// mapIndex is the compatibility-mode index: a plain map, exactly the
// original engine's behavior bit-for-bit.
type mapIndex struct {
	m map[fphash.Fingerprint]container.Location
}

func newMapIndex() *mapIndex {
	return &mapIndex{m: make(map[fphash.Fingerprint]container.Location)}
}

func (x *mapIndex) lookup(fp fphash.Fingerprint) (container.Location, bool, error) {
	loc, ok := x.m[fp]
	return loc, ok, nil
}

func (x *mapIndex) insert(fp fphash.Fingerprint, loc container.Location) { x.m[fp] = loc }

func (x *mapIndex) count() int { return len(x.m) }

func (x *mapIndex) maybeFlush(int) error { return nil }

func (x *mapIndex) flush(int) error { return nil }

func (x *mapIndex) beginLayoutChange() error { return nil }

func (x *mapIndex) abortLayoutChange() error { return nil }

func (x *mapIndex) completeLayoutChange(m map[fphash.Fingerprint]container.Location, _ int) error {
	x.m = m
	return nil
}

func (x *mapIndex) close() error { return nil }

// fpIdx adapts one fpindex.Shard to the shardIndex seam.
type fpIdx struct {
	s *fpindex.Shard
}

func (x *fpIdx) lookup(fp fphash.Fingerprint) (container.Location, bool, error) {
	return x.s.Lookup(fp)
}

func (x *fpIdx) insert(fp fphash.Fingerprint, loc container.Location) { x.s.Insert(fp, loc) }

func (x *fpIdx) count() int { return x.s.Count() }

func (x *fpIdx) maybeFlush(sealed int) error {
	if !x.s.NeedsFlush() {
		return nil
	}
	return x.s.Flush(sealed)
}

func (x *fpIdx) flush(sealed int) error { return x.s.Flush(sealed) }

func (x *fpIdx) beginLayoutChange() error { return x.s.BeginLayoutChange() }

func (x *fpIdx) abortLayoutChange() error { return x.s.AbortLayoutChange() }

func (x *fpIdx) completeLayoutChange(m map[fphash.Fingerprint]container.Location, sealed int) error {
	ps := make([]fpindex.Posting, 0, len(m))
	for fp, loc := range m {
		ps = append(ps, fpindex.Posting{FP: fp, Loc: loc})
	}
	return x.s.CompleteLayoutChange(ps, sealed)
}

// close is per-shard a no-op: run files and the compaction worker belong
// to the store-level fpindex.Index, closed once by Store.Close.
func (x *fpIdx) close() error { return nil }
