// Package workload is the system's single source of backup workloads: a
// registry of named scenario generators whose output — a trace.Dataset of
// backup generations — feeds every consumer the same way, from trace-level
// figure runners to the full storage stack (materialized bytes through
// Repository backup, the adversary tap, and the streaming attack engine).
//
// # Architecture
//
//	Register(name, factory)            Lookup / List / Generate
//	        │                                   │
//	        ▼                                   ▼
//	registry ──► Factory(Config) ──► Source ──► *trace.Dataset
//	                                  │
//	            ┌─────────────────────┴───────────────┐
//	            │ *Generator (modifier chain)          │
//	            │   init(state)      → generation 0    │
//	            │   modifiers[0..n]  → generation i    │
//	            └──────────────────────────────────────┘
//
// A Config carries the scenario-independent knobs — seed (or an injected
// *rand.Rand), backup count, logical size, mean object size, user count,
// and the chunk-size model — validated and defaulted by withDefaults. A
// Factory turns a Config into a Source; most builtin factories build a
// *Generator: an initial state constructor plus an ordered list of
// composable Modifier instances applied, in order, between backup
// generations. Modifiers are small and scenario-agnostic (file churn,
// VM-image layering with relocation, database page updates, media-blob
// append, compress-then-backup re-cutting, multi-user overlap), so a new
// scenario is usually just a new composition, not new mechanics:
//
//	workload.Register("my-scenario", func(cfg workload.Config) (workload.Source, error) {
//		return workload.NewGenerator("my-scenario", cfg,
//			func(st *workload.State) { /* build generation 0 */ },
//			workload.FileChurn{ModifyFrac: 0.05, ContentFrac: 0.2},
//			workload.MediaAppend{AppendFrac: 0.02},
//		)
//	})
//
// # Modifier composition contract
//
// Modifiers run in registration order once per generation and communicate
// only through the *State they are handed: the per-user extent streams,
// the shared duplication library, and the fingerprint minter. A modifier
// must not retain state across Apply calls — everything a generation
// depends on lives in State, which is what makes compositions reorderable
// and datasets reproducible.
//
// # No global randomness
//
// Every random draw comes from the State's *rand.Rand, seeded from
// Config.Seed (or injected via Config.Rng, which takes precedence); the
// fingerprint minter is salted from the same stream, so distinct seeds
// yield disjoint fingerprint spaces. Nothing in this package touches the
// global math/rand generator or iterates a Go map, so concurrently
// running generators can never perturb each other and a (name, Config)
// pair identifies one exact dataset, byte for byte — the property the
// seed-determinism suite pins for every registered workload.
package workload
