// Package segment implements variable-size segmentation of chunk streams
// (Section 7.1, following the segmentation scheme of Sparse Indexing [45]):
// a segment boundary is placed at the end of a chunk when (i) the segment
// has reached the minimum segment size and the chunk's fingerprint modulo a
// divisor equals divisor-1, or (ii) including the next chunk would exceed
// the maximum segment size.
//
// Segmentation is content-defined at the chunk-fingerprint level, so
// similar backup streams produce aligned segments — the property MinHash
// encryption's effectiveness (Broder's theorem) depends on.
package segment

import (
	"errors"
	"fmt"

	"freqdedup/internal/trace"
)

// Params configures segmentation by byte sizes, as the paper does (minimum
// 512 KB, average 1 MB, maximum 2 MB).
type Params struct {
	MinBytes int
	AvgBytes int
	MaxBytes int
}

// DefaultParams returns the paper's segment configuration.
func DefaultParams() Params {
	return Params{MinBytes: 512 << 10, AvgBytes: 1 << 20, MaxBytes: 2 << 20}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.MinBytes <= 0 || p.AvgBytes <= 0 || p.MaxBytes <= 0 {
		return errors.New("segment: sizes must be positive")
	}
	if p.MinBytes > p.AvgBytes || p.AvgBytes > p.MaxBytes {
		return fmt.Errorf("segment: need Min <= Avg <= Max, got %d/%d/%d",
			p.MinBytes, p.AvgBytes, p.MaxBytes)
	}
	return nil
}

// Segment is one contiguous sub-sequence of the input stream, expressed as
// a half-open index range [Start, End) into the chunk slice.
type Segment struct {
	Start, End int
}

// Len returns the number of chunks in the segment.
func (s Segment) Len() int { return s.End - s.Start }

// Split partitions the chunk stream into segments. The divisor that
// realizes the average segment size is derived from the stream's mean
// chunk size; the boundary test itself depends only on chunk content
// (fingerprint), so identical sub-streams segment identically.
func Split(chunks []trace.ChunkRef, p Params) ([]Segment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(chunks) == 0 {
		return nil, nil
	}
	divisor := divisorFor(chunks, p)

	var segs []Segment
	start := 0
	var bytes int
	for i, c := range chunks {
		bytes += int(c.Size)
		boundary := false
		if bytes >= p.MinBytes && c.FP.Uint64()%divisor == divisor-1 {
			boundary = true
		}
		if i+1 < len(chunks) && bytes+int(chunks[i+1].Size) > p.MaxBytes {
			boundary = true
		}
		if boundary {
			segs = append(segs, Segment{Start: start, End: i + 1})
			start = i + 1
			bytes = 0
		}
	}
	if start < len(chunks) {
		segs = append(segs, Segment{Start: start, End: len(chunks)})
	}
	return segs, nil
}

// divisorFor computes the boundary divisor so that the expected segment
// size is p.AvgBytes: after MinBytes accumulate, each chunk ends the
// segment with probability 1/divisor, contributing divisor*meanChunk
// expected additional bytes.
func divisorFor(chunks []trace.ChunkRef, p Params) uint64 {
	var total uint64
	for _, c := range chunks {
		total += uint64(c.Size)
	}
	mean := total / uint64(len(chunks))
	if mean == 0 {
		mean = 1
	}
	d := uint64(p.AvgBytes-p.MinBytes) / mean
	if d < 1 {
		d = 1
	}
	return d
}

// MinFingerprint returns the minimum chunk fingerprint within the segment,
// the value MinHash encryption derives the segment key from (Algorithm 4).
// It panics on an empty segment.
func MinFingerprint(chunks []trace.ChunkRef, s Segment) trace.ChunkRef {
	if s.Len() <= 0 {
		panic("segment: MinFingerprint on empty segment")
	}
	min := chunks[s.Start]
	for _, c := range chunks[s.Start+1 : s.End] {
		if c.FP.Less(min.FP) {
			min = c
		}
	}
	return min
}
