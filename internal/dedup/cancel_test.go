package dedup

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"freqdedup/internal/chunker"
)

// waitForBufs polls until the chunker pool's outstanding-buffer count
// returns to want, failing the test if it does not settle: a cancelled
// pipeline's producer may still be releasing its final in-flight chunk
// for a moment after the consumer returned.
func waitForBufs(t *testing.T, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := chunker.BufsOutstanding()
		if got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d pooled chunk buffers outstanding, want %d (leaked by cancellation)", got, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// ctxCancellingReader cancels the context once cancelAt bytes have been
// delivered, then keeps delivering, so cancellation lands while the
// pipeline is genuinely mid-stream with chunks in flight.
type ctxCancellingReader struct {
	data     []byte
	off      int
	cancelAt int
	cancel   context.CancelFunc
}

func (c *ctxCancellingReader) Read(p []byte) (int, error) {
	if c.off >= c.cancelAt && c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
	if c.off >= len(c.data) {
		return 0, io.EOF
	}
	n := 64 << 10
	if n > len(p) {
		n = len(p)
	}
	if n > len(c.data)-c.off {
		n = len(c.data) - c.off
	}
	copy(p, c.data[c.off:c.off+n])
	c.off += n
	return n, nil
}

// TestBackupCancelDrainsPooledBuffers cancels mid-Backup on both pipeline
// paths — streaming (convergent) and planned (scramble) — at several
// worker counts, asserting a prompt ctx.Err() return and that every
// pooled chunk buffer comes back to the pool. Run under -race: the
// producer, the encrypt fan-out, and the cancellation all overlap.
func TestBackupCancelDrainsPooledBuffers(t *testing.T) {
	data := randData(41, 16<<20)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"streaming-1w", Config{Workers: 1}},
		{"streaming-4w", Config{Workers: 4}},
		{"planned-scramble-4w", Config{Workers: 4, Scramble: true, ScrambleSeed: 5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			baseline := chunker.BufsOutstanding()
			client, err := NewClient(NewStore(0), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			src := &ctxCancellingReader{data: data, cancelAt: 8 << 20, cancel: cancel}
			if _, err := client.BackupContext(ctx, src); !errors.Is(err, context.Canceled) {
				t.Fatalf("BackupContext err = %v, want context.Canceled", err)
			}
			waitForBufs(t, baseline)
		})
	}
}

// blockingReader parks Read until released, simulating a stalled source
// (a dead NFS mount, a wedged pipe).
type blockingReader struct {
	release chan struct{}
}

func (b *blockingReader) Read(p []byte) (int, error) {
	<-b.release
	return 0, io.EOF
}

// TestBackupCancelWhileReaderBlocked: cancellation must not wait for the
// stalled read — the consumer returns promptly while the producer is
// still parked, and once the reader finally returns, the producer drains
// without leaking its buffers.
func TestBackupCancelWhileReaderBlocked(t *testing.T) {
	baseline := chunker.BufsOutstanding()
	client, err := NewClient(NewStore(0), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := &blockingReader{release: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = client.BackupContext(ctx, src)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BackupContext err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled Backup took %v with a blocked reader; want a prompt return", elapsed)
	}
	close(src.release) // let the parked producer exit and drain
	waitForBufs(t, baseline)
}

// TestRestoreCancelDrainsPooledBuffers cancels mid-Restore and asserts
// ctx.Err() plus a fully drained restore-buffer pool. Run under -race.
func TestRestoreCancelDrainsPooledBuffers(t *testing.T) {
	data := randData(42, 4<<20)
	store := NewStoreWithShards(64<<10, DefaultShards)
	client, err := NewClient(store, Config{Workers: 4, RestoreCacheContainers: 8})
	if err != nil {
		t.Fatal(err)
	}
	recipe, err := client.Backup(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	baseline := restoreBufsOutstanding.Load()
	for _, cancelAt := range []int{0, 64 << 10, 1 << 20} {
		ctx, cancel := context.WithCancel(context.Background())
		w := &cancelAtWriter{n: cancelAt, cancel: cancel}
		err := client.RestoreContext(ctx, recipe, w)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelAt=%d: RestoreContext err = %v, want context.Canceled", cancelAt, err)
		}
		if got := restoreBufsOutstanding.Load(); got != baseline {
			t.Fatalf("cancelAt=%d: %d pooled restore buffers outstanding, want %d", cancelAt, got, baseline)
		}
	}
	// The pipeline still restores cleanly afterwards.
	var out bytes.Buffer
	if err := client.Restore(recipe, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("restore after cancellations mismatched")
	}
	if got := restoreBufsOutstanding.Load(); got != baseline {
		t.Fatalf("%d pooled restore buffers outstanding after clean restore", got)
	}
}

// cancelAtWriter cancels the context once n bytes have been written (n=0
// cancels on the first write).
type cancelAtWriter struct {
	n      int
	cancel context.CancelFunc
}

func (w *cancelAtWriter) Write(p []byte) (int, error) {
	w.n -= len(p)
	if w.n <= 0 && w.cancel != nil {
		w.cancel()
		w.cancel = nil
	}
	return len(p), nil
}

// TestCancelledBeforeStart: an already-cancelled context fails Backup,
// Restore, and GC immediately, before any work or side effect.
func TestCancelledBeforeStart(t *testing.T) {
	store := NewStore(0)
	client, err := NewClient(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.BackupContext(ctx, bytes.NewReader(randData(43, 1<<20))); !errors.Is(err, context.Canceled) {
		t.Fatalf("BackupContext err = %v", err)
	}
	if got := store.Stats().LogicalChunks; got != 0 {
		t.Fatalf("cancelled-before-start backup stored %d chunks", got)
	}
	recipe, err := client.Backup(bytes.NewReader(randData(43, 256<<10)))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := client.RestoreContext(ctx, recipe, &out); !errors.Is(err, context.Canceled) {
		t.Fatalf("RestoreContext err = %v", err)
	}
	if out.Len() != 0 {
		t.Fatalf("cancelled-before-start restore wrote %d bytes", out.Len())
	}
	if _, err := store.GCContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("GCContext err = %v", err)
	}
}

// TestGCCancelKeepsStoreConsistent: a GC cancelled between shards leaves
// a consistent store (partial sweeps are atomic per shard) and a re-run
// finishes the job.
func TestGCCancelKeepsStoreConsistent(t *testing.T) {
	store, client, _, r2 := setupTwoBackups(t)
	if err := store.DeleteBackup("b1"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := store.GCContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("GCContext err = %v", err)
	}
	// Finish the sweep and check the survivor.
	if _, err := store.GC(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := client.Restore(r2, &out); err != nil {
		t.Fatalf("surviving backup broken after cancelled+completed GC: %v", err)
	}
}
