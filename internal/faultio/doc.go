// Package faultio is the storage stack's fault-injection lab: a
// deterministic, seeded, scriptable fault layer that slides under the
// production code paths — never beside them — at two seams.
//
//   - The file seam: MemFS implements vfs.FS, the interface every durable
//     format (the .fdc container shards, the .fdr snapshot catalog, the
//     .fdt trace log) performs its file operations through. MemFS models
//     durability explicitly: writes land in a volatile view, Sync copies
//     it to a durable view, and CrashImage materializes only the durable
//     view — so "crash" means exactly what it means on real hardware:
//     everything not fsynced is gone.
//   - The backend seam: FaultBackend wraps any container.Backend,
//     injecting faults at the Seal/Load/Scan/Rewrite granularity — the
//     failure model of a future network backend.
//
// # The fault-plan contract
//
// A Plan is a pure value: a Seed, an optional CrashAtOp, and an ordered
// list of Rules. The contract is determinism: the same Plan applied to
// the same workload injects byte-identical faults — same torn-write
// lengths, same flipped bits, same crash state — because every random
// choice is drawn from the plan's private rand.Rand seeded with
// Plan.Seed, and nothing else. No global randomness, no wall clock, no
// dependence on goroutine scheduling for single-threaded workloads.
//
// Rules are evaluated in order against each observed operation; the
// first rule whose Op and PathGlob match fires (from its Nth matching
// operation on, Count times). A firing fault either fails the operation
// (Err, ShortWrite — always wrapping ErrInjected), corrupts silently
// (FlipBit: in-flight on a write, post-fsync on a sync), or merely
// delays it (Delay alone).
//
// The crash clock counts mutating operations only (create, write,
// truncate, sync, rename, remove at the file seam; seal and rewrite at
// the backend seam): reads cannot advance a machine toward a crash.
// When the clock reaches CrashAtOp, that operation and every later one
// fail with ErrCrashed. The workload's error handling runs exactly as it
// would on a dying machine; the harness then reopens the stack against
// CrashImage() and asserts the recovery invariants.
//
// Injector.SyncPoints records the clock value of every acknowledged
// sync. These are the interesting crash points — between two syncs the
// durable state does not change, so a sweep over sync points (plus the
// full-resolution sweep in `make faults`) covers every distinct
// post-crash disk image the workload can produce.
//
// # Retry policy
//
// RetryBackend wraps a container.Backend with exponential backoff and
// seeded full jitter, classifying errors as permanent (corrupt, not
// found, salvaged, crashed, or explicitly marked non-transient) versus
// transient (everything else). MarkTransient/IsTransient define the
// marking protocol; injected faults set it via Fault.Transient.
package faultio
