package tracelog

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

func testRefs(seed, n int) []trace.ChunkRef {
	refs := make([]trace.ChunkRef, n)
	for i := range refs {
		refs[i] = trace.ChunkRef{
			FP:   fphash.FromUint64(uint64(seed)<<32 | uint64(i+1)),
			Size: uint32(1024 + (seed*31+i)%4096),
		}
	}
	return refs
}

func logPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), LogName)
}

// writeTraces commits the given backups (one session each, windows of w
// refs) into a fresh log at path and returns the committed streams.
func writeTraces(t *testing.T, path string, w int, sizes ...int) [][]trace.ChunkRef {
	t.Helper()
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var out [][]trace.ChunkRef
	for i, n := range sizes {
		refs := testRefs(i+1, n)
		s, err := l.Begin(fmt.Sprintf("backup-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(refs); lo += w {
			hi := lo + w
			if hi > len(refs) {
				hi = len(refs)
			}
			if err := s.ObserveUpload(refs[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		out = append(out, refs)
	}
	return out
}

func materializeAll(t *testing.T, l *Log) [][]trace.ChunkRef {
	t.Helper()
	var out [][]trace.ChunkRef
	for _, bt := range l.Backups() {
		b, err := bt.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b.Chunks)
	}
	return out
}

func refsEqual(a, b []trace.ChunkRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	path := logPath(t)
	want := writeTraces(t, path, 100, 250, 1, 777)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := materializeAll(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d traces, want %d", len(got), len(want))
	}
	for i := range want {
		if !refsEqual(got[i], want[i]) {
			t.Fatalf("trace %d replayed differently", i)
		}
	}
	if bs := l.Backups(); bs[0].Label != "backup-0" || bs[2].Chunks != 777 {
		t.Fatalf("metadata wrong: %+v", bs)
	}
}

// TestTornTailEveryBoundary truncates the log at every byte position and
// reopens: at a record boundary the acknowledged prefix must replay
// exactly; inside a record the torn tail must be discarded down to the
// last acknowledged commit. No truncation position may corrupt the log.
func TestTornTailEveryBoundary(t *testing.T) {
	path := logPath(t)
	want := writeTraces(t, path, 7, 20, 15)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := int64(logHeaderLen); cut <= int64(len(full)); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(path)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		got := materializeAll(t, l)
		l.Close()
		// Every replayed trace must be a fully acknowledged one.
		if len(got) > len(want) {
			t.Fatalf("cut=%d: %d traces from a log that only committed %d", cut, len(got), len(want))
		}
		for i := range got {
			if !refsEqual(got[i], want[i]) {
				t.Fatalf("cut=%d: trace %d differs", cut, i)
			}
		}
		if cut == int64(len(full)) && len(got) != len(want) {
			t.Fatalf("uncut log replayed %d traces, want %d", len(got), len(want))
		}
	}
}

// TestBadCRCTailTruncated flips a byte in the final record: the reopened
// log must treat it as a torn tail and drop the affected trace, while a
// flip in an earlier record is structural corruption.
func TestBadCRCTailTruncated(t *testing.T) {
	path := logPath(t)
	writeTraces(t, path, 64, 100, 100)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the last byte (inside the final end record's CRC).
	mut := append([]byte(nil), full...)
	mut[len(mut)-1] ^= 0xFF
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path)
	if err != nil {
		t.Fatalf("bad-CRC tail must be recovered, got %v", err)
	}
	if got := len(l.Backups()); got != 1 {
		t.Fatalf("replayed %d traces after tail corruption, want 1", got)
	}
	l.Close()

	// The log must have been truncated back past the bad record, so a
	// fresh session appends at a clean boundary.
	l, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := l.Begin("after-crash")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveUpload(testRefs(9, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(l.Backups()); got != 2 {
		t.Fatalf("replayed %d traces after post-recovery append, want 2", got)
	}
	l.Close()

	// Mid-file corruption is damage, not a torn tail.
	mut = append([]byte(nil), full...)
	mut[logHeaderLen+recHeaderLen+3] ^= 0xFF
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-file corruption: err = %v, want ErrCorrupt", err)
	}
}

// TestUncommittedSessionDropped ensures a crash mid-backup (no end
// record) leaves no committed trace, while the other, committed session
// survives — including with interleaved concurrent sessions.
func TestUncommittedSessionDropped(t *testing.T) {
	path := logPath(t)
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	committed, errC := l.Begin("committed")
	if errC != nil {
		t.Fatal(errC)
	}
	crashed, errA := l.Begin("crashed")
	if errA != nil {
		t.Fatal(errA)
	}
	// Interleave the two sessions' windows.
	for i := 0; i < 4; i++ {
		if err := committed.ObserveUpload(testRefs(1, 10)); err != nil {
			t.Fatal(err)
		}
		if err := crashed.ObserveUpload(testRefs(2, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := committed.Commit(); err != nil {
		t.Fatal(err)
	}
	// "Crash": never commit the second session, drop the handle, reopen.
	l.Close()
	l, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	bs := l.Backups()
	if len(bs) != 1 || bs[0].Label != "committed" || bs[0].Chunks != 40 {
		t.Fatalf("replay = %+v, want only the committed session", bs)
	}
	b, err := bs[0].Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Chunks) != 40 {
		t.Fatalf("committed trace has %d chunks, want 40", len(b.Chunks))
	}
}

// TestReplayEquivalentToMemoryTap is the crash-replay acceptance check:
// feeding identical windows to a file log and a memory log, then
// reopening the file log cold (as after a crash plus restart), must
// replay streams identical to the in-memory tap's.
func TestReplayEquivalentToMemoryTap(t *testing.T) {
	path := logPath(t)
	file, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMem()

	for i, n := range []int{300, 42, 1000} {
		fs, err := file.Begin(fmt.Sprintf("b%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ms, err := mem.Begin(fmt.Sprintf("b%d", i))
		if err != nil {
			t.Fatal(err)
		}
		refs := testRefs(i+7, n)
		for lo := 0; lo < len(refs); lo += 128 {
			hi := lo + 128
			if hi > len(refs) {
				hi = len(refs)
			}
			if err := fs.ObserveUpload(refs[lo:hi]); err != nil {
				t.Fatal(err)
			}
			if err := ms.ObserveUpload(refs[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := ms.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Crash-restart the file log: no Close, fresh Open of the same path.
	reopened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	defer file.Close()

	fileTraces := materializeAll(t, reopened)
	memTraces := materializeAll(t, mem)
	if len(fileTraces) != len(memTraces) {
		t.Fatalf("file log replayed %d traces, memory tap has %d", len(fileTraces), len(memTraces))
	}
	for i := range memTraces {
		if !refsEqual(fileTraces[i], memTraces[i]) {
			t.Fatalf("trace %d: file replay differs from the in-memory tap", i)
		}
	}
}

// TestConcurrentSessionsAndReaders runs several committing sessions and
// replay readers at once (under -race) and checks every committed trace
// replays intact.
func TestConcurrentSessionsAndReaders(t *testing.T) {
	path := logPath(t)
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			refs := testRefs(w+1, 500)
			s, err := l.Begin(fmt.Sprintf("w%d", w))
			if err != nil {
				t.Error(err)
				return
			}
			for lo := 0; lo < len(refs); lo += 64 {
				hi := lo + 64
				if hi > len(refs) {
					hi = len(refs)
				}
				if err := s.ObserveUpload(refs[lo:hi]); err != nil {
					t.Error(err)
					return
				}
			}
			if err := s.Commit(); err != nil {
				t.Error(err)
			}
		}(w)
	}
	// Concurrent readers over whatever is committed so far.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, bt := range l.Backups() {
					if _, err := bt.Materialize(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	bs := l.Backups()
	if len(bs) != writers {
		t.Fatalf("%d committed traces, want %d", len(bs), writers)
	}
	for _, bt := range bs {
		b, err := bt.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		var w int
		if _, err := fmt.Sscanf(bt.Label, "w%d", &w); err != nil {
			t.Fatal(err)
		}
		if !refsEqual(b.Chunks, testRefs(w+1, 500)) {
			t.Fatalf("trace %s replayed differently", bt.Label)
		}
	}
}

// TestStreamingReaderAgainstMaterialize checks the streaming reader path
// (small destination buffers crossing record boundaries) agrees with
// Materialize.
func TestStreamingReaderAgainstMaterialize(t *testing.T) {
	path := logPath(t)
	want := writeTraces(t, path, 33, 500)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	r, err := l.Backups()[0].Open()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got []trace.ChunkRef
	buf := make([]trace.ChunkRef, 5)
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !refsEqual(got, want[0]) {
		t.Fatal("streaming read differs from the written trace")
	}
}

// TestOpenReadOnly pins the inspection contract: a read-only open
// replays the committed prefix without modifying the file (an
// incomplete tail may be another process's in-flight append), and
// refuses to start sessions.
func TestOpenReadOnly(t *testing.T) {
	path := logPath(t)
	want := writeTraces(t, path, 50, 120, 80)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a live writer's in-flight append: a torn record at the
	// tail.
	torn := append(append([]byte(nil), full...), 0xFD, 0x54, 0x31)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	l, err := OpenReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	got := materializeAll(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d traces, want %d", len(got), len(want))
	}
	for i := range want {
		if !refsEqual(got[i], want[i]) {
			t.Fatalf("trace %d differs", i)
		}
	}
	if _, err := l.Begin("nope"); err == nil {
		t.Fatal("Begin on a read-only log must fail")
	}
	l.Close()

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytesEqual(after, torn) {
		t.Fatal("read-only open modified the log file")
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
