package container

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNotFound is returned when a location or container does not exist.
var ErrNotFound = errors.New("container: not found")

// Backend is pluggable persistent storage for sealed containers. A Store
// packs chunks into its one open container in memory and hands each
// container to the backend the moment it seals; the backend is the
// durability boundary — a sealed container survives whatever the backend
// survives (process restarts for FileBackend, nothing for MemBackend).
//
// Per shard, containers are sealed in strictly increasing, dense ID order
// (0, 1, 2, ...); Rewrite renumbers them densely again. Entries handed to
// Seal and Rewrite are immutable from that point on, and every entry
// satisfies len(Entry.Data) == Entry.Size.
//
// Implementations must be safe for concurrent use across shards and for
// concurrent Load/Scan with Seal on the same shard (the parallel restore
// pipeline reads sealed containers while backups append).
type Backend interface {
	// Seal persists a freshly sealed container for a shard. The container's
	// ID must be exactly the number of containers already sealed for that
	// shard. When Seal returns nil the container is durable.
	Seal(shard int, c *Container) error

	// Load reads a sealed container, data included. It returns ErrNotFound
	// for an ID that was never sealed.
	Load(shard, id int) (*Container, error)

	// Scan calls fn for every sealed container of a shard in ID order.
	// With withData false the backend may leave Entry.Data nil (FP and
	// Size are always populated); fn must not retain the container past
	// the call. A non-nil error from fn aborts the scan and is returned.
	Scan(shard int, withData bool, fn func(*Container) error) error

	// Rewrite atomically replaces a shard's entire sealed-container
	// sequence with cs (the GC sweep's compacted survivors, densely
	// renumbered from 0). On error the previous sequence is still intact.
	Rewrite(shard int, cs []*Container) error

	// Shards returns the shard count the backend was created with.
	Shards() int

	// Close releases backend resources. The backend must not be used
	// afterwards.
	Close() error
}

// SealedStater is the optional backend capability of reporting a shard's
// sealed-container count and total data bytes without a metadata scan.
// It is what makes a persistent-index store open in O(metadata): the
// packer recovers its counters from here instead of re-reading every
// record's index header. FileBackend and MemBackend implement it.
type SealedStater interface {
	SealedStats(shard int) (containers int, bytes int64, err error)
}

// RangeScanner is the optional backend capability of scanning a suffix of
// a shard's sealed containers. The persistent fingerprint index uses it
// to rescan only the containers past its durable watermark on open.
type RangeScanner interface {
	ScanFrom(shard, from int, withData bool, fn func(*Container) error) error
}

// ScanFrom visits the shard's sealed containers with ID >= from in ID
// order, using the backend's RangeScanner when implemented and falling
// back to a full Scan that skips earlier containers otherwise (wrappers
// like fault-injection backends keep working, just without the seek).
func ScanFrom(b Backend, shard, from int, withData bool, fn func(*Container) error) error {
	if rs, ok := b.(RangeScanner); ok {
		return rs.ScanFrom(shard, from, withData, fn)
	}
	return b.Scan(shard, withData, func(c *Container) error {
		if c.ID < from {
			return nil
		}
		return fn(c)
	})
}

// TolerantScanner is the optional backend capability behind repair: a
// per-slot scan that surfaces damaged containers as per-slot errors
// instead of aborting. FileBackend implements it; for backends that do
// not, ScanShardTolerant falls back to per-container Loads.
//
// Unlike Backend.Scan, containers handed to fn are the callback's to
// keep (implementations allocate fresh records) — but fn itself may run
// under backend locks, so it must not call back into the backend.
type TolerantScanner interface {
	ScanTolerant(shard int, fn func(id int, c *Container, err error) error) error
}

// Quarantiner is the optional backend capability of preserving a damaged
// container's raw bytes for forensics before repair drops it.
// FileBackend implements it.
type Quarantiner interface {
	Quarantine(shard, id int) (path string, err error)
}

// ScanShardTolerant visits every container slot of a shard, reporting
// damaged slots through fn(id, nil, err) rather than aborting — the scan
// behind repair. It uses the backend's TolerantScanner when implemented
// and falls back to Load-by-ID otherwise (one call per container until
// ErrNotFound). A non-nil error from fn aborts the scan.
func ScanShardTolerant(b Backend, shard int, fn func(id int, c *Container, err error) error) error {
	if ts, ok := b.(TolerantScanner); ok {
		return ts.ScanTolerant(shard, fn)
	}
	for id := 0; ; id++ {
		c, err := b.Load(shard, id)
		if errors.Is(err, ErrNotFound) {
			return nil
		}
		if err != nil {
			c = nil
		}
		if ferr := fn(id, c, err); ferr != nil {
			return ferr
		}
	}
}

// MemBackend keeps sealed containers in memory: the original engine's
// behavior, now behind the Backend interface. It is the default backend of
// New and NewStoreWithShards-built dedup stores, and it never returns a
// non-nil error — callers that only ever use MemBackend (the ddfs
// metadata simulation) may treat backend errors as impossible.
type MemBackend struct {
	mu     sync.RWMutex
	shards [][]*Container
}

// NewMemBackend returns an in-memory backend for the given shard count.
func NewMemBackend(shards int) *MemBackend {
	if shards < 1 {
		panic(fmt.Sprintf("container: backend shard count must be positive, got %d", shards))
	}
	return &MemBackend{shards: make([][]*Container, shards)}
}

func (b *MemBackend) checkShard(shard int) {
	if shard < 0 || shard >= len(b.shards) {
		panic(fmt.Sprintf("container: shard %d out of range [0, %d)", shard, len(b.shards)))
	}
}

// Seal appends the sealed container to the shard's in-memory sequence.
func (b *MemBackend) Seal(shard int, c *Container) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.checkShard(shard)
	if c.ID != len(b.shards[shard]) {
		return fmt.Errorf("container: seal of container %d on shard %d, want %d",
			c.ID, shard, len(b.shards[shard]))
	}
	b.shards[shard] = append(b.shards[shard], c)
	return nil
}

// Load returns the sealed container; the caller must not mutate it.
func (b *MemBackend) Load(shard, id int) (*Container, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.checkShard(shard)
	if id < 0 || id >= len(b.shards[shard]) {
		return nil, ErrNotFound
	}
	return b.shards[shard][id], nil
}

// Scan visits the shard's sealed containers in ID order. Data is always
// populated (there is no cheaper metadata-only representation in memory).
func (b *MemBackend) Scan(shard int, withData bool, fn func(*Container) error) error {
	b.mu.RLock()
	b.checkShard(shard)
	cs := b.shards[shard]
	b.mu.RUnlock()
	for _, c := range cs {
		if err := fn(c); err != nil {
			return err
		}
	}
	return nil
}

// SealedStats reports the shard's sealed-container count and data bytes.
func (b *MemBackend) SealedStats(shard int) (int, int64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.checkShard(shard)
	var bytes int64
	for _, c := range b.shards[shard] {
		bytes += int64(c.Bytes)
	}
	return len(b.shards[shard]), bytes, nil
}

// ScanFrom visits the shard's sealed containers with ID >= from.
func (b *MemBackend) ScanFrom(shard, from int, withData bool, fn func(*Container) error) error {
	b.mu.RLock()
	b.checkShard(shard)
	cs := b.shards[shard]
	if from < 0 {
		from = 0
	}
	if from > len(cs) {
		from = len(cs)
	}
	cs = cs[from:]
	b.mu.RUnlock()
	for _, c := range cs {
		if err := fn(c); err != nil {
			return err
		}
	}
	return nil
}

// Rewrite replaces the shard's sealed sequence.
func (b *MemBackend) Rewrite(shard int, cs []*Container) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.checkShard(shard)
	for i, c := range cs {
		if c.ID != i {
			return fmt.Errorf("container: rewrite container ID %d at position %d", c.ID, i)
		}
	}
	b.shards[shard] = cs
	return nil
}

// Shards returns the shard count.
func (b *MemBackend) Shards() int { return len(b.shards) }

// Close is a no-op.
func (b *MemBackend) Close() error { return nil }
