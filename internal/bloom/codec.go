package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Serialized filter layout (little-endian), used by the persistent
// fingerprint index to store one filter per sorted run and the per-shard
// aggregate filter inside the index manifest:
//
//	u32 magic "FDBL"
//	u64 m      (bits)
//	u32 k      (hash functions)
//	u64 count  (Add calls)
//	ceil(m/64) x u64 bit words
//	u32 crc32  (IEEE, over everything above)
const (
	codecMagic     = 0x4644424c // "FDBL"
	codecHeaderLen = 4 + 8 + 4 + 8
	codecCRCLen    = 4
)

// ErrCodec is returned by Unmarshal for bytes that do not decode to a
// filter (truncation, bad magic, checksum failure).
var ErrCodec = errors.New("bloom: serialized filter corrupt")

// MarshaledSize returns the exact byte length AppendBinary will add.
func (f *Filter) MarshaledSize() int {
	return codecHeaderLen + len(f.bits)*8 + codecCRCLen
}

// AppendBinary appends the filter's serialized form to buf and returns the
// extended slice. The encoding is self-validating: Unmarshal verifies a
// trailing CRC32 over the whole record.
func (f *Filter) AppendBinary(buf []byte) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, codecMagic)
	buf = binary.LittleEndian.AppendUint64(buf, f.m)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.k))
	buf = binary.LittleEndian.AppendUint64(buf, f.count)
	for _, w := range f.bits {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// Unmarshal decodes one serialized filter from the beginning of data,
// returning the filter and how many bytes it consumed. It fails with
// ErrCodec (wrapped) on truncation, bad magic, implausible geometry, or a
// checksum mismatch — never with a silently wrong filter.
func Unmarshal(data []byte) (*Filter, int, error) {
	if len(data) < codecHeaderLen+codecCRCLen {
		return nil, 0, fmt.Errorf("%w: %d bytes, need at least %d", ErrCodec, len(data), codecHeaderLen+codecCRCLen)
	}
	if m := binary.LittleEndian.Uint32(data); m != codecMagic {
		return nil, 0, fmt.Errorf("%w: bad magic %#x", ErrCodec, m)
	}
	m := binary.LittleEndian.Uint64(data[4:])
	k := int(binary.LittleEndian.Uint32(data[12:]))
	count := binary.LittleEndian.Uint64(data[16:])
	if m == 0 || k <= 0 || k > 64 {
		return nil, 0, fmt.Errorf("%w: implausible geometry m=%d k=%d", ErrCodec, m, k)
	}
	words := (m + 63) / 64
	// Bound the allocation by what the input can actually hold before
	// trusting the declared size.
	n := codecHeaderLen + int(words)*8 + codecCRCLen
	if words > uint64(len(data))/8 || n > len(data) {
		return nil, 0, fmt.Errorf("%w: declared %d bit words exceed %d input bytes", ErrCodec, words, len(data))
	}
	if crc := crc32.ChecksumIEEE(data[:n-codecCRCLen]); crc != binary.LittleEndian.Uint32(data[n-codecCRCLen:]) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCodec)
	}
	f := &Filter{bits: make([]uint64, words), m: m, k: k, count: count}
	for i := range f.bits {
		f.bits[i] = binary.LittleEndian.Uint64(data[codecHeaderLen+i*8:])
	}
	return f, n, nil
}
