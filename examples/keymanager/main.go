// Keymanager example: server-aided MLE over a real TCP connection — a
// DupLESS-style key manager with rate limiting, an authenticated client,
// and duplicate-preserving encryption through the network (Section 2.2).
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"net"

	"freqdedup"
)

func main() {
	var token [32]byte
	copy(token[:], "demo-client-token")

	// Start the key manager on a loopback port with a tight rate limit so
	// the demo can show the online brute-force defense kicking in.
	server, err := freqdedup.NewKeyServer(freqdedup.KeyServerConfig{
		Secret:  []byte("system-wide secret held only by the key manager"),
		Token:   token,
		Limiter: freqdedup.NewTokenBucket(5, 4), // 5 keys/s, burst 4
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go server.Serve(ln) //nolint:errcheck // stops on Close
	defer server.Close()
	fmt.Printf("key manager listening on %s\n", ln.Addr())

	// An authenticated client derives chunk keys over the network.
	client, err := freqdedup.DialKeyManager(ln.Addr().String(), token)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	scheme := freqdedup.NewServerAidedMLE(client)
	ct1, key, err := scheme.Encrypt([]byte("a duplicate chunk"))
	if err != nil {
		log.Fatal(err)
	}
	ct2, _, err := scheme.Encrypt([]byte("a duplicate chunk"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identical chunks -> identical ciphertexts: %v (dedup works)\n",
		bytes.Equal(ct1, ct2))
	_ = key

	// Burn through the rate limit to demonstrate the brute-force defense.
	var limited int
	for i := 0; i < 20; i++ {
		if _, _, err := scheme.Encrypt([]byte{byte(i)}); errors.Is(err, freqdedup.ErrRateLimited) {
			limited++
		} else if err != nil {
			log.Fatal(err)
		}
	}
	derived, rejected := server.Stats()
	fmt.Printf("server stats: %d keys derived, %d requests rate-limited\n", derived, rejected)
	if limited > 0 {
		fmt.Println("the token bucket throttles online brute-force key queries")
	}
}
