package core

import (
	"slices"

	"freqdedup/internal/attack"
	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

// Mode selects how the locality-based attack initializes its inferred set
// (Section 3.3). It is the streaming engine's mode type; the two engines
// share one vocabulary.
type Mode = attack.Mode

const (
	// CiphertextOnly models an adversary with only the ciphertext stream
	// and the auxiliary prior backup: the inferred set is seeded by
	// frequency analysis.
	CiphertextOnly = attack.CiphertextOnly
	// KnownPlaintext models an adversary that additionally knows some
	// leaked ciphertext-plaintext pairs of the latest backup.
	KnownPlaintext = attack.KnownPlaintext
)

// LocalityConfig parameterizes the locality-based attack (Algorithm 2).
// It is the streaming engine's Config — the same value drives both
// engines, which is what the golden-equivalence suite exercises.
type LocalityConfig = attack.Config

// DefaultLocalityConfig returns the paper's default parameters (u=1, v=15,
// w=200,000, ciphertext-only).
func DefaultLocalityConfig() LocalityConfig {
	return LocalityConfig{U: 1, V: 15, W: 200000, Mode: CiphertextOnly}
}

// BasicAttack runs classical frequency analysis (Algorithm 1): it ranks
// the chunks of the ciphertext stream c and the plaintext stream m by
// frequency and pairs them rank-for-rank. The returned pairs cover
// min(|F_C|, |F_M|) chunks.
func BasicAttack(c, m *trace.Backup) []Pair {
	// The two frequency tables are independent; build them concurrently.
	var fm *freqTable
	done := make(chan struct{})
	go func() {
		defer close(done)
		fm = newFreqTable(len(m.Chunks))
		for i, ch := range m.Chunks {
			fm.bump(ch.FP, i, ch.Size)
		}
	}()
	fc := newFreqTable(len(c.Chunks))
	for i, ch := range c.Chunks {
		fc.bump(ch.FP, i, ch.Size)
	}
	<-done
	// Both tables are discarded after the analysis, so their arenas can be
	// ranked in place directly — no flat() copies.
	return freqAnalysis(fc.entries, fm.entries, 0, false, false)
}

// AttackStats reports the internals of one locality-attack run — the
// quantities behind the paper's Section 5.2 cost discussion (the inferred
// set G drives both memory use and running time). It is the streaming
// engine's Stats type.
type AttackStats = attack.Stats

// LocalityAttack runs the locality-based attack (Algorithm 2), or the
// advanced locality-based attack (Algorithm 3) when cfg.SizeAware is set.
// c is the ciphertext stream of the latest (target) backup; m is the
// plaintext stream of a prior backup (the auxiliary information). It
// returns all inferred ciphertext-plaintext pairs, including the seeds.
func LocalityAttack(c, m *trace.Backup, cfg LocalityConfig) []Pair {
	pairs, _ := LocalityAttackWithStats(c, m, cfg)
	return pairs
}

// LocalityAttackWithStats is LocalityAttack with run statistics.
func LocalityAttackWithStats(c, m *trace.Backup, cfg LocalityConfig) ([]Pair, AttackStats) {
	if cfg.Mode == 0 {
		cfg.Mode = CiphertextOnly
	}
	fc, lc, rc, fm, lm, rm := countStreams(c, m)

	// Initialize the inferred set G (FIFO queue) and the result set T.
	var g []Pair
	switch cfg.Mode {
	case KnownPlaintext:
		for _, p := range cfg.Leaked {
			if !fc.has(p.C) || !fm.has(p.M) {
				continue
			}
			g = append(g, p)
		}
	default:
		g = freqAnalysis(fc.flat(), fm.flat(), cfg.U, cfg.SizeAware, false)
	}

	stats := AttackStats{Seeds: len(g)}

	t := make(map[fphash.Fingerprint]fphash.Fingerprint, len(g))
	for _, p := range g {
		if _, ok := t[p.C]; !ok {
			t[p.C] = p.M
		}
	}

	// Main loop: pop a pair, infer through left and right neighbors.
	for head := 0; head < len(g); head++ {
		cur := g[head]
		stats.Iterations++
		tl := freqAnalysis(lc[cur.C].flat(fc), lm[cur.M].flat(fm), cfg.V, cfg.SizeAware, !cfg.ArbitraryTies)
		tr := freqAnalysis(rc[cur.C].flat(fc), rm[cur.M].flat(fm), cfg.V, cfg.SizeAware, !cfg.ArbitraryTies)
		for _, side := range [2][]Pair{tl, tr} {
			for _, p := range side {
				if _, seen := t[p.C]; seen {
					continue
				}
				t[p.C] = p.M
				if cfg.W <= 0 || len(g)-head <= cfg.W {
					g = append(g, p)
				} else {
					stats.DroppedByW++
				}
			}
		}
		if pending := len(g) - head - 1; pending > stats.PeakQueue {
			stats.PeakQueue = pending
		}
	}

	out := make([]Pair, 0, len(t))
	for cf, mf := range t {
		out = append(out, Pair{C: cf, M: mf})
	}
	slices.SortFunc(out, func(a, b Pair) int { return a.C.Compare(b.C) })
	stats.Inferred = len(out)
	return out, stats
}

// GroundTruth maps each ciphertext chunk fingerprint to the fingerprint of
// the plaintext chunk it encrypts. It is the streaming engine's type.
type GroundTruth = attack.GroundTruth

// InferenceRate computes the paper's severity metric: the number of unique
// ciphertext chunks of the target backup whose plaintext was inferred
// correctly, over the total number of unique ciphertext chunks in the
// target backup.
func InferenceRate(inferred []Pair, truth GroundTruth, target *trace.Backup) float64 {
	unique := make(map[fphash.Fingerprint]struct{}, len(target.Chunks))
	for _, ch := range target.Chunks {
		unique[ch.FP] = struct{}{}
	}
	if len(unique) == 0 {
		return 0
	}
	var correct int
	for _, p := range inferred {
		if _, inTarget := unique[p.C]; !inTarget {
			continue
		}
		if truth[p.C] == p.M {
			correct++
		}
	}
	return float64(correct) / float64(len(unique))
}

// SampleLeaked draws leaked ciphertext-plaintext pairs for known-plaintext
// mode. It is the streaming engine's sampler — same seeds, same samples,
// so leaked sets drawn here drive both engines identically.
var SampleLeaked = attack.SampleLeaked
