package trace

import (
	"math/rand"
	"testing"

	"freqdedup/internal/fphash"
)

func mkFS(rng *rand.Rand, m *minter, dirs, filesPerDir int, vol float64) *fileSystem {
	fs := &fileSystem{}
	sizes := ChunkSizeModel{Min: 4096, Avg: 4096, Max: 4096}
	for d := 0; d < dirs; d++ {
		dir := &genDir{vol: vol}
		for f := 0; f < filesPerDir; f++ {
			file := freshFile(rng, m, 16384, sizes)
			file.vol = vol
			dir.files = append(dir.files, file)
		}
		fs.dirs = append(fs.dirs, dir)
	}
	return fs
}

func multiset(b *Backup) map[fphash.Fingerprint]int {
	out := make(map[fphash.Fingerprint]int)
	for _, c := range b.Chunks {
		out[c.FP]++
	}
	return out
}

func TestShuffleFilesPreservesContent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := &minter{}
	fs := mkFS(rng, m, 4, 10, 1.0)
	before := multiset(fs.snapshot("a"))
	shuffleFiles(rng, fs, 0.5)
	after := multiset(fs.snapshot("b"))
	if len(before) != len(after) {
		t.Fatal("shuffle changed the chunk population")
	}
	for fp, n := range before {
		if after[fp] != n {
			t.Fatal("shuffle changed chunk multiplicities")
		}
	}
}

func TestShuffleFilesSkipsStableDirs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := &minter{}
	fs := mkFS(rng, m, 3, 8, 0) // all stable
	before := fs.snapshot("a")
	shuffleFiles(rng, fs, 1.0)
	after := fs.snapshot("b")
	for i := range before.Chunks {
		if before.Chunks[i] != after.Chunks[i] {
			t.Fatal("shuffle moved chunks in stable directories")
		}
	}
}

func TestDeleteFilesOnlyVolatile(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := &minter{}
	fs := mkFS(rng, m, 2, 5, 0)
	fs.dirs = append(fs.dirs, mkFS(rng, m, 1, 5, 2.0).dirs...)
	total := len(fs.allFiles())
	deleteFiles(rng, fs, 3)
	if got := len(fs.allFiles()); got != total-3 {
		t.Fatalf("deleted %d files, want 3", total-got)
	}
	// Stable dirs untouched.
	for _, d := range fs.dirs[:2] {
		if len(d.files) != 5 {
			t.Fatal("deletion touched a stable directory")
		}
	}
}

func TestDeleteFilesNoVolatile(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := &minter{}
	fs := mkFS(rng, m, 2, 5, 0)
	deleteFiles(rng, fs, 3) // must be a no-op, not a panic
	if len(fs.allFiles()) != 10 {
		t.Fatal("deletion removed files from an all-stable tree")
	}
}

func TestGrowVolatileAddsRequestedBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := &minter{}
	lib := newFileLibrary(rng, m, 2, 16, 32<<10, ChunkSizeModel{Min: 4096, Avg: 4096, Max: 4096})
	fs := mkFS(rng, m, 2, 4, 1.0)
	before := fs.snapshot("a").LogicalSize()
	added := growVolatile(rng, m, lib, fs, 256<<10, 32<<10, ChunkSizeModel{Min: 4096, Avg: 4096, Max: 4096}, 0.1, 0.3)
	after := fs.snapshot("b").LogicalSize()
	if uint64(added) != after-before {
		t.Fatalf("reported %d bytes added, snapshot grew by %d", added, after-before)
	}
	if added < 256<<10 {
		t.Fatalf("added %d bytes, want >= %d", added, 256<<10)
	}
}

func TestGrowVolatileCreatesDirWhenNoneVolatile(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := &minter{}
	fs := mkFS(rng, m, 2, 4, 0) // all stable
	growVolatile(rng, m, nil, fs, 64<<10, 32<<10, ChunkSizeModel{Min: 4096, Avg: 4096, Max: 4096}, 0, 0)
	if len(volatileDirs(fs)) == 0 {
		t.Fatal("growth into an all-stable tree must create a volatile directory")
	}
}

func TestWeightedSampleNeverPicksStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := &minter{}
	files := []*genFile{
		{vol: 0}, {vol: 1.5}, {vol: 0}, {vol: 0.2}, {vol: 0},
	}
	_ = m
	for trial := 0; trial < 200; trial++ {
		for _, idx := range weightedSample(rng, files, 2) {
			if files[idx].vol == 0 {
				t.Fatal("weightedSample picked a zero-weight file")
			}
		}
	}
	// Asking for more than available clamps.
	got := weightedSample(rng, files, 10)
	if len(got) != 2 {
		t.Fatalf("sampled %d files, want 2 (all volatile)", len(got))
	}
	if got[0] == got[1] {
		t.Fatal("weightedSample returned duplicates")
	}
}

func TestRelocatePreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := &minter{}
	img := freshFile(rng, m, 1<<20, ChunkSizeModel{Min: 4096, Avg: 4096, Max: 4096})
	before := make(map[fphash.Fingerprint]int)
	for _, c := range img.chunks {
		before[c.FP]++
	}
	orig := append([]ChunkRef{}, img.chunks...)
	relocate(rng, img, 0.2)
	after := make(map[fphash.Fingerprint]int)
	for _, c := range img.chunks {
		after[c.FP]++
	}
	if len(before) != len(after) {
		t.Fatal("relocate changed the chunk population")
	}
	for fp, n := range before {
		if after[fp] != n {
			t.Fatal("relocate changed chunk multiplicities")
		}
	}
	// ... and actually moved something.
	var moved int
	for i := range orig {
		if img.chunks[i] != orig[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("relocate(0.2) moved nothing")
	}
}

func TestFileLibraryHotHeadSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := &minter{}
	lib := newFileLibrary(rng, m, 4, 64, 32<<10, ChunkSizeModel{Min: 4096, Avg: 4096, Max: 4096})
	// Hot files are single-chunk.
	for i, h := range lib.hot {
		if len(h.chunks) != 1 {
			t.Fatalf("hot file %d has %d chunks, want 1", i, len(h.chunks))
		}
	}
	// Geometric rank separation: rank 0 picked about twice as often as 1.
	counts := make(map[fphash.Fingerprint]int)
	for i := 0; i < 20000; i++ {
		counts[lib.pickHot(rng).chunks[0].FP]++
	}
	c0 := counts[lib.hot[0].chunks[0].FP]
	c1 := counts[lib.hot[1].chunks[0].FP]
	if c0 < c1*3/2 {
		t.Fatalf("hot rank separation too weak: %d vs %d", c0, c1)
	}
}
