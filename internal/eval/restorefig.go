package eval

import (
	"fmt"

	"freqdedup/internal/ddfs"
	"freqdedup/internal/defense"
	"freqdedup/internal/trace"
)

// RestoreLocality tests Section 6.2's performance claim: because the
// container size (4 MB) exceeds the segment size, per-segment scrambling
// has "limited impact on the chunk layout across containers" and therefore
// on restore read performance. For each scheme, all FSL backups are stored
// through the DDFS-like prototype (unique chunks packed into containers in
// upload order), and each backup is then restored in recipe order,
// counting the container reads a restore with a small container cache
// performs.
func RestoreLocality(ds Datasets) (Figure, error) {
	d := ds.FSL
	const cacheContainers = 4

	fig := Figure{
		ID:     "Sec 6.2",
		Title:  fmt.Sprintf("restore locality: container reads per restore (cache = %d containers)", cacheContainers),
		XLabel: "backup",
	}
	for _, b := range d.Backups {
		fig.X = append(fig.X, b.Label)
	}

	for _, scheme := range []defense.Scheme{defense.SchemeMLE, defense.SchemeCombined} {
		var expected uint64
		for _, b := range d.Backups {
			expected += uint64(len(b.Chunks))
		}
		sys := ddfs.New(ddfs.Config{
			ContainerBytes:       4 << 20,
			ExpectedFingerprints: expected,
			BloomFPP:             0.01,
		})
		encs := make([]defense.Encrypted, len(d.Backups))
		for i, b := range d.Backups {
			enc, err := defense.Encrypt(b, scheme, int64(i+1))
			if err != nil {
				return Figure{}, err
			}
			encs[i] = enc
			sys.StoreBackup(enc.Backup)
		}
		ser := Series{Name: scheme.String()}
		for _, enc := range encs {
			restoreStream := &trace.Backup{Label: enc.Backup.Label, Chunks: enc.RecipeOrder}
			st := sys.ContainerSpread(restoreStream, cacheContainers)
			ser.Y = append(ser.Y, float64(st.ReadsWithCache))
		}
		fig.Series = append(fig.Series, ser)
	}

	// Overhead summary.
	mle, comb := fig.Series[0].Y, fig.Series[1].Y
	var mleTot, combTot float64
	for i := range mle {
		mleTot += mle[i]
		combTot += comb[i]
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"combined/MLE total read ratio: %.2fx (Section 6.2 predicts limited overhead because containers are larger than segments)",
		combTot/mleTot))
	return fig, nil
}
