// Package wire is the multi-tenant backup protocol's frame format: the
// length-prefixed, CRC-framed message layer spoken between
// freqdedup.RemoteClient and the internal/server session handler. It
// follows the same framing discipline as the on-disk .fdc/.fdr/.fdt
// formats — self-identifying magic, explicit lengths, a trailing CRC —
// so a torn, truncated, or corrupted stream surfaces as ErrCorruptFrame,
// never as silently wrong bytes.
//
// # Frame format
//
// Every frame is:
//
//	offset  size  field
//	0       4     magic   0x46445731 ("FDW1"), big-endian
//	4       4     type    frame type (T* constants)
//	8       4     len     payload length, <= MaxPayload (64 MiB)
//	12      len   payload type-specific (below)
//	12+len  4     crc     CRC-32 (IEEE) over header and payload
//
// All integers are big-endian. Strings (tenant, snapshot names, error
// messages) are u8-length-prefixed and at most MaxName bytes; chunk
// ciphertexts are u32-length-prefixed. A payload must parse exactly —
// trailing bytes are a framing error.
//
// # Session flow
//
// A session opens with THello {version u32, tenant str, token bytes} and
// is accepted with THelloOK {version u32, windowChunks u32, maxInflight
// u32, maxChunkBytes u32} — the server's advertised limits, which the
// client must respect — or rejected with TError {code u32, msg str}. The
// token authenticates the tenant (bearer token, constant-time compared);
// the transport itself is plaintext TCP, so production deployments put a
// TLS terminator or trusted network segment in front (see the README's
// threat-model note — the negotiation traffic is itself the side channel
// this package exists to measure).
//
// A backup is a chunk negotiation loop with bounded in-flight windows:
//
//	C: TBackupBegin {name str}
//	S: TBackupReady {}
//	C: TNegotiate {seq u32, n u32, n x (cfp [8]byte, ctSize u32)}
//	S: TNegotiateReply {seq u32, n u32, missBitmap ceil(n/8) bytes}
//	C: TChunkData {seq u32, m u32, m x (len u32, ciphertext)}
//	S: TWindowAck {seq u32}
//	... (windows pipeline: at most maxInflight unacknowledged seqs)
//	C: TBackupCommit {n u32, n x (cfp [8]byte, key [32]byte, size u32)}
//	S: TBackupDone {name str, createdUnix u64, logicalBytes u64, chunks u32}
//
// TNegotiate is the dedup query — "have you seen these fingerprints?" —
// and TNegotiateReply's bitmap (bit i set = chunk i missing, upload it)
// is the dedup answer. The pair is exactly the negotiation side channel:
// the query stream reveals the client's chunk sequence pre-acknowledgment
// and the miss bitmap reveals the shared store's cross-tenant dedup
// state. The server records both transcripts per session (see the root
// package's negotiation log). Window sequence numbers start at 0 and
// increase by 1 in stream order; TChunkData must carry exactly the
// negotiated window's missed chunks in bitmap order, each ciphertext
// fingerprint-verified by the server before it may enter the shared
// store (a tenant must not be able to poison another tenant's dedup
// hits). TBackupCommit's entries must match the negotiated stream
// fingerprint-for-fingerprint; the recipe crosses the session in
// plaintext and is sealed by the server under the repository key, so a
// reopened repository rebuilds refcounts without per-tenant keys (a
// deliberate deviation from client-sealed recipes, documented in the
// README). An acknowledged TBackupDone means the snapshot is durable:
// containers sealed and synced, catalog fsynced.
//
// A restore is a server-paced stream:
//
//	C: TRestoreReq {name str}
//	S: TRestoreData {bytes} ... repeated
//	S: TRestoreEnd {totalBytes u64}
//
// TSnapshotsReq {} / TSnapshotsReply {n u32, n x snapshotInfo},
// TDeleteReq {name str} / TDeleteOK {}, and TStatsReq {} / TStatsReply
// {tenantUsage} are simple request/response pairs. Snapshot names on the
// wire are tenant-relative; the server prefixes "tenant/" internally.
//
// TError mid-backup aborts the session; for protocol violations (bad
// state, limit violations, fingerprint mismatches) the server closes the
// connection after sending it.
package wire
