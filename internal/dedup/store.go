package dedup

import (
	"sync"

	"freqdedup/internal/container"
	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

// DefaultShards is the shard count used by NewStore. 16 stripes keep lock
// contention negligible for dozens of concurrent clients while the
// per-shard container working set stays large enough to preserve chunk
// locality within a shard.
const DefaultShards = 16

// maxShards bounds the shard count to the range addressable by the
// one-byte fingerprint prefix (fphash.Fingerprint.Shard).
const maxShards = 256

// shard is one lock stripe of the store: a fingerprint index over its own
// container packer, plus the shard's slice of the dedup statistics.
// Every field is guarded by mu. A fingerprint is owned by exactly one
// shard (fp.Shard), so per-shard indexes never disagree about whether a
// chunk is stored, and per-shard open containers make packing append-safe
// under concurrent writers without a global packer lock.
type shard struct {
	mu         sync.Mutex
	index      map[fphash.Fingerprint]container.Location
	containers *container.Store

	logicalBytes  uint64
	physicalBytes uint64
	logicalChunks int
}

// put is the single-shard Put body; the caller holds s.mu. When owned is
// true the store takes ownership of data and stores it without the
// defensive copy.
func (s *shard) put(fp fphash.Fingerprint, data []byte, owned bool) (duplicate bool) {
	s.logicalChunks++
	s.logicalBytes += uint64(len(data))
	if _, ok := s.index[fp]; ok {
		return true
	}
	buf := data
	if !owned {
		buf = make([]byte, len(data))
		copy(buf, data)
	}
	loc := s.containers.Append(container.Entry{FP: fp, Size: uint32(len(data)), Data: buf})
	s.index[fp] = loc
	s.physicalBytes += uint64(len(data))
	return false
}

// Store is a deduplicated ciphertext-chunk store: one physical copy per
// unique ciphertext chunk, packed into containers. The fingerprint index
// and the container packer are split into lock-striped shards keyed by
// fingerprint prefix, so concurrent clients (Figure 2's multi-client
// architecture) contend only when their chunks collide on a shard.
// Backups can be registered for retention management and reclaimed with
// GC (see gc.go). A Store is safe for concurrent use.
type Store struct {
	shards         []*shard
	containerBytes int

	// Retention state (per-backup chunk references and per-chunk counts),
	// guarded by retMu. It is store-level, not sharded: backups span
	// shards and registration is off the hot path.
	retMu   sync.Mutex
	backups map[string][]fphash.Fingerprint
	refs    map[fphash.Fingerprint]int
}

// NewStore returns an empty store with the given container capacity
// (container.DefaultBytes if zero) and DefaultShards index shards.
func NewStore(containerBytes int) *Store {
	return NewStoreWithShards(containerBytes, DefaultShards)
}

// NewStoreWithShards returns an empty store with the given container
// capacity (container.DefaultBytes if zero) and shard count. Shards must
// be in [1, 256]; zero selects DefaultShards. With shards == 1 the store
// degenerates to the original serial engine: a single index and a single
// container sequence, with chunk placement bit-for-bit identical to it.
func NewStoreWithShards(containerBytes, shards int) *Store {
	if containerBytes == 0 {
		containerBytes = container.DefaultBytes
	}
	if shards == 0 {
		shards = DefaultShards
	}
	if shards < 1 || shards > maxShards {
		panic("dedup: shard count out of range [1, 256]")
	}
	s := &Store{
		shards:         make([]*shard, shards),
		containerBytes: containerBytes,
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			index:      make(map[fphash.Fingerprint]container.Location),
			containers: container.New(containerBytes),
		}
	}
	return s
}

// ShardCount returns the number of index shards.
func (s *Store) ShardCount() int { return len(s.shards) }

// shardFor returns the shard owning fp.
func (s *Store) shardFor(fp fphash.Fingerprint) *shard {
	return s.shards[fp.Shard(len(s.shards))]
}

// Put stores a ciphertext chunk, deduplicating against previously stored
// chunks. It reports whether the chunk was a duplicate. Only the owning
// shard is locked, so Puts of chunks on different shards proceed in
// parallel.
func (s *Store) Put(fp fphash.Fingerprint, data []byte) (duplicate bool) {
	sh := s.shardFor(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.put(fp, data, false)
}

// PutChunk is one chunk of a PutBatch upload.
type PutChunk struct {
	// FP is the chunk's (ciphertext) fingerprint.
	FP fphash.Fingerprint
	// Data is the chunk content. The store copies it; the caller keeps
	// ownership.
	Data []byte
}

// PutBatch stores a batch of ciphertext chunks, deduplicating each, and
// reports per-chunk whether it was a duplicate (indexed like chunks).
// Chunks are grouped by shard so each shard is locked once per batch
// rather than once per chunk; within a shard, chunks are stored in batch
// order, so with a single shard the container layout is identical to
// issuing the Puts sequentially.
func (s *Store) PutBatch(chunks []PutChunk) []bool {
	return s.putBatch(chunks, false)
}

// PutBatchOwned is PutBatch with ownership transfer: the store keeps the
// Data slices of non-duplicate chunks instead of copying them, so the
// caller must not read or write any chunk's Data after the call. The
// backup pipeline uses it for freshly encrypted ciphertexts it never
// touches again; callers that reuse their buffers must use PutBatch.
func (s *Store) PutBatchOwned(chunks []PutChunk) []bool {
	return s.putBatch(chunks, true)
}

func (s *Store) putBatch(chunks []PutChunk, owned bool) []bool {
	dups := make([]bool, len(chunks))
	if len(chunks) == 0 {
		return dups
	}
	if len(s.shards) == 1 {
		sh := s.shards[0]
		sh.mu.Lock()
		for i, c := range chunks {
			dups[i] = sh.put(c.FP, c.Data, owned)
		}
		sh.mu.Unlock()
		return dups
	}
	// Group chunk indexes by shard, preserving batch order within each
	// group to keep per-shard placement deterministic.
	groups := make(map[int][]int)
	for i, c := range chunks {
		si := c.FP.Shard(len(s.shards))
		groups[si] = append(groups[si], i)
	}
	for si, idxs := range groups {
		sh := s.shards[si]
		sh.mu.Lock()
		for _, i := range idxs {
			dups[i] = sh.put(chunks[i].FP, chunks[i].Data, owned)
		}
		sh.mu.Unlock()
	}
	return dups
}

// Get retrieves a stored ciphertext chunk by fingerprint.
func (s *Store) Get(fp fphash.Fingerprint) ([]byte, bool) {
	sh := s.shardFor(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	loc, ok := sh.index[fp]
	if !ok {
		return nil, false
	}
	e, ok := sh.containers.Get(loc)
	if !ok {
		return nil, false
	}
	return e.Data, true
}

// Stats reports deduplication effectiveness of everything stored so far,
// aggregated across shards. Each shard is locked in turn, so the totals
// are a consistent per-shard snapshot (concurrent Puts may land between
// shard reads, as with any aggregate over a live store).
func (s *Store) Stats() trace.DedupStats {
	var st trace.DedupStats
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.LogicalBytes += sh.logicalBytes
		st.PhysicalBytes += sh.physicalBytes
		st.LogicalChunks += sh.logicalChunks
		st.UniqueChunks += len(sh.index)
		sh.mu.Unlock()
	}
	return st
}

// UniqueChunks returns the number of distinct ciphertext chunks stored.
func (s *Store) UniqueChunks() int {
	var n int
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.index)
		sh.mu.Unlock()
	}
	return n
}

// ContainerCount returns the number of containers across all shards,
// including in-progress ones.
func (s *Store) ContainerCount() int {
	var n int
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.containers.Count()
		sh.mu.Unlock()
	}
	return n
}

// lockAll acquires every shard lock in index order (the global lock order;
// GC and other whole-store operations use it to get a consistent view).
func (s *Store) lockAll() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

// unlockAll releases every shard lock.
func (s *Store) unlockAll() {
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}
