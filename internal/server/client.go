package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"freqdedup/internal/chunker"
	"freqdedup/internal/dedup"
	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
	"freqdedup/internal/trace"
	"freqdedup/internal/wire"
)

// DialConfig configures a Client session.
type DialConfig struct {
	// Tenant is the session's namespace; required.
	Tenant string
	// Token is the tenant's bearer token (ignored by open servers).
	Token []byte
	// Chunking sets the content-defined chunking parameters
	// (chunker.DefaultParams if zero). They must match the parameters the
	// repository's other clients use, or cross-client dedup degrades to
	// nothing — the server never sees plaintext, so it cannot check.
	Chunking chunker.Params
	// ChunkWorkers enables multi-stream chunking (gear only), exactly as
	// in the in-process pipeline.
	ChunkWorkers int
	// Workers is the encrypt+fingerprint fan-out (GOMAXPROCS if 0).
	Workers int
	// DialTimeout bounds connect + handshake (30s if zero).
	DialTimeout time.Duration
}

// Client is the network counterpart of the in-process backup client: it
// chunks and convergently encrypts locally, negotiates fingerprints with
// the server, uploads only the misses, and hands the recipe to the server
// to seal — the full Backup/Restore/Snapshots/Delete surface over one
// authenticated TCP session.
//
// A Client is NOT safe for concurrent use: it multiplexes one connection
// and runs one operation at a time (operations serialize internally).
// Run one Client per goroutine for concurrent sessions — that is the
// multi-tenant architecture the server is built for. Only convergent
// encryption (EncConvergent) is spoken on the wire; the server-aided and
// MinHash schemes remain in-process.
//
// After a transport or mid-pipeline failure the session state is
// unrecoverable and the Client marks itself broken: further operations
// fail and the caller re-dials. Clean server-side rejections (name
// exists, not found, auth) leave the session usable.
type Client struct {
	nc     net.Conn
	wc     *wire.Conn
	cfg    DialConfig
	limits wire.HelloOK

	mu     sync.Mutex
	broken bool
	closed bool
}

// Dial connects, authenticates, and negotiates limits with a server.
func Dial(addr string, cfg DialConfig) (*Client, error) {
	if err := validTenant(cfg.Tenant); err != nil {
		return nil, fmt.Errorf("server: dial: %w", err)
	}
	if cfg.Chunking == (chunker.Params{}) {
		cfg.Chunking = chunker.DefaultParams()
	}
	if err := cfg.Chunking.Validate(); err != nil {
		return nil, err
	}
	timeout := cfg.DialTimeout
	if timeout == 0 {
		timeout = handshakeTimeout
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{nc: nc, wc: wire.NewConn(nc), cfg: cfg}
	if err := nc.SetDeadline(time.Now().Add(timeout)); err != nil {
		nc.Close()
		return nil, err
	}
	hello, err := wire.AppendHello(nil, wire.Hello{Version: wire.Version, Tenant: cfg.Tenant, Token: cfg.Token})
	if err != nil {
		nc.Close()
		return nil, err
	}
	if err := c.wc.Send(wire.THello, hello); err != nil {
		nc.Close()
		return nil, err
	}
	p, err := c.expect(wire.THelloOK)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if c.limits, err = wire.ParseHelloOK(p); err != nil {
		nc.Close()
		return nil, err
	}
	if c.limits.Version != wire.Version {
		nc.Close()
		return nil, fmt.Errorf("server: protocol version %d, want %d", c.limits.Version, wire.Version)
	}
	if uint32(cfg.Chunking.Max) > c.limits.MaxChunkBytes {
		nc.Close()
		return nil, fmt.Errorf("server: chunking max %d exceeds the server's chunk limit %d",
			cfg.Chunking.Max, c.limits.MaxChunkBytes)
	}
	if err := nc.SetDeadline(time.Time{}); err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// Close releases the connection. Idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.nc.Close()
}

// begin claims the client for one operation.
func (c *Client) begin() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("server: client is closed")
	}
	if c.broken {
		return errors.New("server: session is broken after a previous failure; re-dial")
	}
	return nil
}

func (c *Client) markBroken() {
	c.mu.Lock()
	c.broken = true
	c.mu.Unlock()
	c.nc.Close()
}

// expect reads the next frame, surfacing TError as a Go error and any
// other type than want as a protocol error.
func (c *Client) expect(want uint32) ([]byte, error) {
	typ, p, err := c.wc.Recv()
	if err != nil {
		return nil, err
	}
	if typ == wire.TError {
		e, perr := wire.ParseError(p)
		if perr != nil {
			return nil, perr
		}
		return nil, remoteError(e)
	}
	if typ != want {
		return nil, fmt.Errorf("server: unexpected frame type %d, want %d", typ, want)
	}
	return p, nil
}

// remoteError maps a server-reported error to a client-side error that
// supports errors.Is against the repository sentinels.
func remoteError(e wire.ErrorInfo) error {
	switch e.Code {
	case wire.CodeNotFound:
		return fmt.Errorf("%w (%s)", dedup.ErrSnapshotNotFound, e.Msg)
	case wire.CodeExists:
		return fmt.Errorf("%w (%s)", dedup.ErrSnapshotExists, e.Msg)
	default:
		err := e
		return &err
	}
}

// watchCtx poisons the connection's deadlines when ctx fires, so blocking
// frame I/O unblocks promptly. The returned stop func must be called
// before the operation ends; it reports whether the ctx fired.
func (c *Client) watchCtx(ctx context.Context) func() bool {
	if ctx.Done() == nil {
		return func() bool { return false }
	}
	stopped := make(chan struct{})
	fired := make(chan bool, 1)
	go func() {
		select {
		case <-ctx.Done():
			fired <- true
			c.nc.SetDeadline(time.Unix(1, 0))
		case <-stopped:
			fired <- false
		}
	}()
	return func() bool {
		close(stopped)
		return <-fired
	}
}

// cwindow is one in-flight backup window on the client side.
type cwindow struct {
	refs []trace.ChunkRef
	cts  [][]byte // ciphertexts, freed once the data frame is written
}

// backupShared is the state the Backup sender and receiver goroutines
// share.
type backupShared struct {
	c       *Client
	mu      sync.Mutex
	pending map[uint32]*cwindow

	// slots bounds in-flight (unacknowledged) windows: the sender
	// acquires before TNegotiate, the receiver releases on TWindowAck.
	slots chan struct{}

	doneCh   chan wire.SnapshotInfo // TBackupDone payload
	recvDone chan struct{}          // receiver exited
	err      error                  // first receiver error, set before recvDone closes
}

// recvLoop is Backup's receiver: it answers negotiate replies with the
// missed ciphertexts, retires acknowledged windows, and terminates on
// TBackupDone or any error.
func (s *backupShared) recvLoop() {
	defer close(s.recvDone)
	var scratch []byte
	var miss []bool
	fail := func(err error) { s.err = err }
	for {
		typ, p, err := s.c.wc.Recv()
		if err != nil {
			fail(err)
			return
		}
		switch typ {
		case wire.TNegotiateReply:
			seq, m, err := wire.ParseNegotiateReply(p, miss)
			miss = m[:0]
			if err != nil {
				fail(err)
				return
			}
			s.mu.Lock()
			w := s.pending[seq]
			s.mu.Unlock()
			if w == nil || len(m) != len(w.refs) {
				fail(fmt.Errorf("server: negotiate reply for unknown window %d", seq))
				return
			}
			scratch = scratch[:0]
			var chunks [][]byte
			for i, missed := range m {
				if missed {
					chunks = append(chunks, w.cts[i])
				}
			}
			scratch = wire.AppendChunkData(scratch, seq, chunks)
			// The ciphertexts are dead after the frame is written: TCP
			// owns delivery, and a lost connection fails the whole backup.
			w.cts = nil
			if err := s.c.wc.Send(wire.TChunkData, scratch); err != nil {
				fail(err)
				return
			}
		case wire.TWindowAck:
			seq, err := wire.ParseSeq(p)
			if err != nil {
				fail(err)
				return
			}
			s.mu.Lock()
			_, ok := s.pending[seq]
			delete(s.pending, seq)
			s.mu.Unlock()
			if !ok {
				fail(fmt.Errorf("server: ack for unknown window %d", seq))
				return
			}
			<-s.slots
		case wire.TBackupDone:
			info, err := wire.ParseSnapshotInfo(p)
			if err != nil {
				fail(err)
				return
			}
			s.doneCh <- info
			return
		case wire.TError:
			e, perr := wire.ParseError(p)
			if perr != nil {
				fail(perr)
			} else {
				fail(remoteError(e))
			}
			return
		default:
			fail(fmt.Errorf("server: unexpected frame type %d during backup", typ))
			return
		}
	}
}

// Backup chunks and convergently encrypts src locally, negotiates each
// window's fingerprints with the server, uploads only the chunks the
// shared store is missing, and commits the recipe — returning once the
// server acknowledges the snapshot durable. Windows pipeline: up to the
// server-advertised in-flight limit of windows may be unacknowledged at
// once, so encryption, negotiation, and upload overlap.
//
// Cancelling ctx abandons the session (the connection is closed and the
// server aborts: no snapshot appears).
func (c *Client) Backup(ctx context.Context, name string, src io.Reader) (wire.SnapshotInfo, error) {
	if err := c.begin(); err != nil {
		return wire.SnapshotInfo{}, err
	}
	if _, err := wire.AppendName(nil, name); err != nil {
		return wire.SnapshotInfo{}, err
	}
	ctxFired := c.watchCtx(ctx)
	info, broken, err := c.backup(name, src)
	if ctxFired() {
		err = ctx.Err()
		broken = true
	} else if err == nil {
		// The deadline poison races the op only when ctx fired; clear any
		// leftover deadline state for the next operation.
		_ = c.nc.SetDeadline(time.Time{})
	}
	if broken && err != nil {
		c.markBroken()
	}
	return info, err
}

// backup is Backup's body; broken reports whether the session state is
// unrecoverable (mid-pipeline failure) as opposed to a clean rejection.
func (c *Client) backup(name string, src io.Reader) (info wire.SnapshotInfo, broken bool, err error) {
	payload, err := wire.AppendName(nil, name)
	if err != nil {
		return wire.SnapshotInfo{}, false, err
	}
	if err := c.wc.Send(wire.TBackupBegin, payload); err != nil {
		return wire.SnapshotInfo{}, true, err
	}
	if _, err := c.expect(wire.TBackupReady); err != nil {
		// A clean rejection (exists, shutdown) leaves the conn synced.
		var ei *wire.ErrorInfo
		clean := errors.Is(err, dedup.ErrSnapshotExists) || errors.As(err, &ei)
		return wire.SnapshotInfo{}, !clean, err
	}

	windowChunks := int(c.limits.WindowChunks)
	if windowChunks > DefaultWindowChunks {
		windowChunks = DefaultWindowChunks
	}
	shared := &backupShared{
		c:        c,
		pending:  make(map[uint32]*cwindow),
		slots:    make(chan struct{}, c.limits.MaxInflight),
		doneCh:   make(chan wire.SnapshotInfo, 1),
		recvDone: make(chan struct{}),
	}
	go shared.recvLoop()
	// From here on every failure is mid-pipeline: the receiver may have
	// frames in flight, so the session cannot be reused.
	info, err = c.runBackupPipeline(name, src, windowChunks, shared)
	if err != nil {
		// Unblock and collect the receiver before returning: markBroken
		// closes the conn, which ends it.
		c.nc.Close()
		<-shared.recvDone
		return wire.SnapshotInfo{}, true, err
	}
	return info, false, nil
}

// runBackupPipeline is the sender side: chunk, encrypt, negotiate,
// commit.
func (c *Client) runBackupPipeline(name string, src io.Reader, windowChunks int, shared *backupShared) (wire.SnapshotInfo, error) {
	params := c.cfg.Chunking
	params.DeferFingerprint = true
	var (
		cdc chunker.Chunker
		err error
	)
	if c.cfg.ChunkWorkers > 1 && params.Algorithm == chunker.AlgoGear {
		cdc, err = chunker.NewMultiGear(src, params, c.cfg.ChunkWorkers)
	} else {
		cdc, err = chunker.New(src, params)
	}
	if err != nil {
		return wire.SnapshotInfo{}, err
	}
	defer func() {
		if mc, ok := cdc.(interface{ Close() error }); ok {
			_ = mc.Close()
		}
	}()

	recvErr := func() error {
		if shared.err != nil {
			return shared.err
		}
		return errors.New("server: connection closed during backup")
	}

	var (
		entries []mle.RecipeEntry
		window  []chunker.Chunk
		seq     uint32
		negPay  []byte
	)
	flush := func() error {
		if len(window) == 0 {
			return nil
		}
		refs, cts, werr := c.encryptWindow(window)
		if werr != nil {
			return werr
		}
		for i, r := range refs {
			entries = append(entries, mle.RecipeEntry{Fingerprint: r.FP, Key: cts.keys[i], Size: r.Size})
		}
		select {
		case shared.slots <- struct{}{}:
		case <-shared.recvDone:
			return recvErr()
		}
		w := &cwindow{refs: refs, cts: cts.data}
		shared.mu.Lock()
		shared.pending[seq] = w
		shared.mu.Unlock()
		negPay = wire.AppendNegotiate(negPay[:0], seq, refs)
		seq++
		if serr := c.wc.Send(wire.TNegotiate, negPay); serr != nil {
			return serr
		}
		for i := range window {
			window[i].Release()
		}
		window = window[:0]
		return nil
	}
	for {
		ch, cerr := cdc.Next()
		if errors.Is(cerr, io.EOF) {
			break
		}
		if cerr != nil {
			for i := range window {
				window[i].Release()
			}
			return wire.SnapshotInfo{}, fmt.Errorf("server: chunking: %w", cerr)
		}
		window = append(window, ch)
		if len(window) == windowChunks {
			if err := flush(); err != nil {
				for i := range window {
					window[i].Release()
				}
				return wire.SnapshotInfo{}, err
			}
		}
	}
	if err := flush(); err != nil {
		for i := range window {
			window[i].Release()
		}
		return wire.SnapshotInfo{}, err
	}

	// Quiesce: once the sender holds every slot, every window is
	// acknowledged and the store holds all our chunks.
	for i := 0; i < cap(shared.slots); i++ {
		select {
		case shared.slots <- struct{}{}:
		case <-shared.recvDone:
			return wire.SnapshotInfo{}, recvErr()
		}
	}
	commit, err := wire.AppendCommit(nil, entries)
	if err != nil {
		return wire.SnapshotInfo{}, err
	}
	if err := c.wc.Send(wire.TBackupCommit, commit); err != nil {
		return wire.SnapshotInfo{}, err
	}
	select {
	case info := <-shared.doneCh:
		<-shared.recvDone
		return info, nil
	case <-shared.recvDone:
		return wire.SnapshotInfo{}, recvErr()
	}
}

// windowCiphertexts is encryptWindow's result: parallel slices in window
// order.
type windowCiphertexts struct {
	data [][]byte
	keys []mle.Key
}

// encryptWindow convergently encrypts one window with the worker fan-out:
// key from the plaintext, deterministic CTR encryption, ciphertext
// fingerprint — bit-identical to the in-process pipeline's EncConvergent
// path, which is what makes cross-client dedup work.
func (c *Client) encryptWindow(window []chunker.Chunk) ([]trace.ChunkRef, windowCiphertexts, error) {
	refs := make([]trace.ChunkRef, len(window))
	cts := windowCiphertexts{data: make([][]byte, len(window)), keys: make([]mle.Key, len(window))}
	err := parallelFor(c.cfg.Workers, len(window), func(i int) {
		key := mle.ConvergentKey(window[i].Data)
		ct := mle.EncryptDeterministic(key, window[i].Data)
		refs[i] = trace.ChunkRef{FP: fphash.FromBytes(ct), Size: uint32(len(ct))}
		cts.data[i] = ct
		cts.keys[i] = key
	})
	return refs, cts, err
}

// parallelFor runs fn(0..n-1) across workers goroutines (GOMAXPROCS if
// 0), inline when 1.
func parallelFor(workers, n int, fn func(i int)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return nil
}

// Restore streams the named snapshot's plaintext to w. Bytes written to w
// before a mid-stream error stay written (a strict prefix), matching the
// in-process Restore contract.
func (c *Client) Restore(ctx context.Context, name string, w io.Writer) error {
	if err := c.begin(); err != nil {
		return err
	}
	payload, err := wire.AppendName(nil, name)
	if err != nil {
		return err
	}
	ctxFired := c.watchCtx(ctx)
	broken, err := c.restore(payload, w)
	if ctxFired() {
		err = ctx.Err()
		broken = true
	} else if err == nil {
		_ = c.nc.SetDeadline(time.Time{})
	}
	if broken && err != nil {
		c.markBroken()
	}
	return err
}

func (c *Client) restore(reqPayload []byte, w io.Writer) (broken bool, err error) {
	if err := c.wc.Send(wire.TRestoreReq, reqPayload); err != nil {
		return true, err
	}
	var total uint64
	for {
		typ, p, rerr := c.wc.Recv()
		if rerr != nil {
			return true, rerr
		}
		switch typ {
		case wire.TRestoreData:
			total += uint64(len(p))
			if _, werr := w.Write(p); werr != nil {
				// The local sink failed mid-stream; the conn still has
				// frames in flight we will not consume.
				return true, werr
			}
		case wire.TRestoreEnd:
			want, perr := wire.ParseU64(p)
			if perr != nil {
				return true, perr
			}
			if want != total {
				return true, fmt.Errorf("server: restore length %d, server reported %d", total, want)
			}
			return false, nil
		case wire.TError:
			e, perr := wire.ParseError(p)
			if perr != nil {
				return true, perr
			}
			// The error frame terminates the stream cleanly; the session
			// stays usable.
			return false, remoteError(e)
		default:
			return true, fmt.Errorf("server: unexpected frame type %d during restore", typ)
		}
	}
}

// Snapshots lists the tenant's snapshots (tenant-relative names).
func (c *Client) Snapshots() ([]wire.SnapshotInfo, error) {
	if err := c.begin(); err != nil {
		return nil, err
	}
	if err := c.wc.Send(wire.TSnapshotsReq, nil); err != nil {
		c.markBroken()
		return nil, err
	}
	p, err := c.expect(wire.TSnapshotsReply)
	if err != nil {
		if !isRemote(err) {
			c.markBroken()
		}
		return nil, err
	}
	return wire.ParseSnapshotList(p)
}

// Delete removes the tenant's named snapshot durably.
func (c *Client) Delete(name string) error {
	if err := c.begin(); err != nil {
		return err
	}
	payload, err := wire.AppendName(nil, name)
	if err != nil {
		return err
	}
	if err := c.wc.Send(wire.TDeleteReq, payload); err != nil {
		c.markBroken()
		return err
	}
	if _, err := c.expect(wire.TDeleteOK); err != nil {
		if !isRemote(err) {
			c.markBroken()
		}
		return err
	}
	return nil
}

// Stats reports the tenant's server-side accounting.
func (c *Client) Stats() (wire.TenantUsage, error) {
	if err := c.begin(); err != nil {
		return wire.TenantUsage{}, err
	}
	if err := c.wc.Send(wire.TStatsReq, nil); err != nil {
		c.markBroken()
		return wire.TenantUsage{}, err
	}
	p, err := c.expect(wire.TStatsReply)
	if err != nil {
		if !isRemote(err) {
			c.markBroken()
		}
		return wire.TenantUsage{}, err
	}
	return wire.ParseTenantUsage(p)
}

// isRemote reports whether err is a server-reported (clean) error rather
// than a transport/protocol failure.
func isRemote(err error) bool {
	var ei *wire.ErrorInfo
	return errors.As(err, &ei) ||
		errors.Is(err, dedup.ErrSnapshotNotFound) ||
		errors.Is(err, dedup.ErrSnapshotExists)
}
