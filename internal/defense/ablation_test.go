package defense

import (
	"testing"

	"freqdedup/internal/core"
	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

func TestScrambleOnlyPreservesFrequenciesAndDedup(t *testing.T) {
	b := synthetic(t).Backups[0]
	enc, err := Encrypt(b, SchemeScrambleOnly, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Frequency distribution fully preserved: the mapping is per-chunk
	// deterministic, so the ciphertext multiset mirrors the plaintext one.
	pf := b.Frequencies()
	cf := enc.Backup.Frequencies()
	if len(pf) != len(cf) {
		t.Fatal("scramble-only changed the number of unique chunks")
	}
	for cfp, n := range cf {
		if pf[enc.Truth[cfp]] != n {
			t.Fatal("scramble-only perturbed a frequency")
		}
	}
	// ... but order is disturbed.
	mle := EncryptMLE(b)
	var moved int
	for i := range enc.Backup.Chunks {
		if enc.Truth[enc.Backup.Chunks[i].FP] != mle.Truth[mle.Backup.Chunks[i].FP] {
			moved++
		}
	}
	if frac := float64(moved) / float64(len(b.Chunks)); frac < 0.3 {
		t.Fatalf("scramble-only moved only %.2f of chunks", frac)
	}
}

func TestScrambleOnlyNoStorageCost(t *testing.T) {
	d := synthetic(t)
	mle, err := StorageSavings(d, SchemeMLE, 1)
	if err != nil {
		t.Fatal(err)
	}
	so, err := StorageSavings(d, SchemeScrambleOnly, 1)
	if err != nil {
		t.Fatal(err)
	}
	last := len(mle) - 1
	if diff := mle[last] - so[last]; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("scramble-only changed storage saving by %v; must be free", diff)
	}
}

func TestScrambleOnlySuppressesLocalityNotBasic(t *testing.T) {
	d := synthetic(t)
	aux := d.Backups[len(d.Backups)-2]
	target := d.Backups[len(d.Backups)-1]

	mle := EncryptMLE(target)
	so, err := Encrypt(target, SchemeScrambleOnly, 11)
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultLocalityConfig()
	cfg.W = 50000
	mleRate := core.InferenceRate(core.LocalityAttack(mle.Backup, aux, cfg), mle.Truth, mle.Backup)
	soRate := core.InferenceRate(core.LocalityAttack(so.Backup, aux, cfg), so.Truth, so.Backup)
	if mleRate < 0.02 {
		t.Skipf("baseline too weak on this reduced dataset: %.4f", mleRate)
	}
	if soRate > mleRate/2 {
		t.Fatalf("scrambling alone should hurt the locality attack: MLE %.4f vs scramble-only %.4f",
			mleRate, soRate)
	}

	// The basic attack sees identical frequency distributions either way.
	basicMLE := core.InferenceRate(core.BasicAttack(mle.Backup, aux), mle.Truth, mle.Backup)
	basicSO := core.InferenceRate(core.BasicAttack(so.Backup, aux), so.Truth, so.Backup)
	if diff := basicMLE - basicSO; diff > 0.01 || diff < -0.01 {
		t.Fatalf("scramble-only should not change the basic attack much: %.4f vs %.4f", basicMLE, basicSO)
	}
}

func TestRCEEquivalentToMLEForTheAdversary(t *testing.T) {
	d := synthetic(t)
	aux := d.Backups[len(d.Backups)-2]
	target := d.Backups[len(d.Backups)-1]

	mle := EncryptMLE(target)
	rce := EncryptRCE(target)

	// Tag namespace differs from MLE's ciphertext namespace...
	if mle.Backup.Chunks[0].FP == rce.Backup.Chunks[0].FP {
		t.Fatal("RCE tags should not collide with MLE ciphertext fingerprints")
	}
	// ...but the attack results are identical: same frequencies, same
	// neighbor structure, same sizes.
	cfg := core.DefaultLocalityConfig()
	mleRate := core.InferenceRate(core.LocalityAttack(mle.Backup, aux, cfg), mle.Truth, mle.Backup)
	rceRate := core.InferenceRate(core.LocalityAttack(rce.Backup, aux, cfg), rce.Truth, rce.Backup)
	if mleRate != rceRate {
		t.Fatalf("RCE tags must leak exactly like MLE: %.4f vs %.4f", mleRate, rceRate)
	}
}

func TestRCEStreamStructure(t *testing.T) {
	b := &trace.Backup{Label: "b", Chunks: []trace.ChunkRef{
		{FP: fphash.FromUint64(1), Size: 100},
		{FP: fphash.FromUint64(2), Size: 200},
		{FP: fphash.FromUint64(1), Size: 100},
	}}
	enc := EncryptRCE(b)
	if len(enc.Backup.Chunks) != 3 {
		t.Fatal("RCE changed chunk count")
	}
	if enc.Backup.Chunks[0].FP != enc.Backup.Chunks[2].FP {
		t.Fatal("duplicate chunks must share a deterministic tag")
	}
	if enc.Backup.Chunks[0].FP == enc.Backup.Chunks[1].FP {
		t.Fatal("distinct chunks must have distinct tags")
	}
	if enc.Backup.Chunks[1].Size != 200 {
		t.Fatal("RCE changed a size")
	}
}

func TestSchemeStringsForAblations(t *testing.T) {
	if SchemeScrambleOnly.String() != "ScrambleOnly" || SchemeRCE.String() != "RCE" {
		t.Fatal("ablation scheme strings wrong")
	}
}
