package freqdedup

import (
	"context"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"freqdedup/internal/dedup"
	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
	"freqdedup/internal/server"
	"freqdedup/internal/trace"
	"freqdedup/internal/tracelog"
	"freqdedup/internal/wire"
)

// Multi-tenant server facade: NewRepositoryServer wraps a *Repository in
// the wire-protocol server (internal/server over internal/wire), and
// DialServer returns the matching network client. See internal/wire's
// package documentation for the frame format and session flow.
type (
	// RemoteClient is the network backup client: it chunks and
	// convergently encrypts locally, negotiates fingerprints with the
	// server, uploads only the misses, and restores over the same
	// connection. One RemoteClient serves one tenant session; run one per
	// goroutine for concurrency.
	RemoteClient = server.Client
	// RemoteClientConfig configures DialServer (tenant, token, chunking,
	// worker fan-out).
	RemoteClientConfig = server.DialConfig
	// RemoteSnapshot describes one snapshot as reported over the wire.
	RemoteSnapshot = wire.SnapshotInfo
	// TenantUsage is one tenant's accounting: logical bytes backed up,
	// unique bytes occupied in the shared store, and the
	// exclusive-versus-shared chunk split — the cross-user dedup exposure
	// the paper's threat model turns on.
	TenantUsage = wire.TenantUsage
)

// DialServer connects and authenticates a RemoteClient to a repository
// server.
var DialServer = server.Dial

// NegotiationLogName is the negotiation transcript beside a served
// file-backed repository's catalog: the adversary view of the chunk
// negotiation rounds (see RepoServer).
const NegotiationLogName = "negotiation.fdt"

// NegotiationMissSuffix marks a negotiation-log trace as a session's miss
// stream (the chunks the server asked the client to upload); the trace
// labeled with the bare qualified snapshot name is the query stream.
const NegotiationMissSuffix = "?misses"

// ServerConfig configures NewRepositoryServer.
type ServerConfig struct {
	// Auth maps tenant names to bearer tokens (compared in constant
	// time). Nil runs an open server — any tenant name, no token; fine
	// for benchmarks and local experiments, not for deployment.
	Auth map[string]string
	// WindowChunks, MaxInflight, and MaxChunkBytes bound each session's
	// negotiation windows (server defaults if zero; see internal/server).
	WindowChunks  int
	MaxInflight   int
	MaxChunkBytes int
	// RateBytesPerSec shapes each connection's data plane (uploads and
	// restore streams) to this many bytes per second; 0 is unlimited.
	RateBytesPerSec float64
	// RateBurst is the shaping bucket capacity in bytes (rate-derived
	// default if zero).
	RateBurst int
	// Logf, when non-nil, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// RepoServer exposes one shared Repository to many concurrent network
// clients: per-tenant authentication, tenant-prefixed snapshot namespacing
// over the shared chunk store (so cross-tenant duplicates are stored
// once), the chunk-negotiation round, per-connection rate shaping, and
// graceful drain.
//
// Serving also records the negotiation transcript — the new adversary
// view this deployment model creates. Every session's fingerprint queries
// (in order, pre-acknowledgment) and the server's miss answers are
// appended to a trace log (negotiation.fdt beside the catalog on a
// file-backed repository; in memory otherwise), committed even when the
// session aborts: the adversary on the wire saw them regardless of
// whether a snapshot appeared. Feed it to the attack engine exactly like
// the upload tap — see NegotiationLog and cmd/defend's -view flag.
type RepoServer struct {
	repo *Repository
	neg  *tracelog.Log
	srv  *server.Server

	closeMu sync.Mutex
	closed  bool
}

// NewRepositoryServer wraps repo in a wire-protocol server. The caller
// keeps ownership of repo (Close the server first, then the repository).
func NewRepositoryServer(repo *Repository, cfg ServerConfig) (*RepoServer, error) {
	var neg *tracelog.Log
	var err error
	if repo.path == "" {
		neg = tracelog.NewMem()
	} else {
		negPath := filepath.Join(repo.path, NegotiationLogName)
		if _, statErr := repo.fsys.Stat(negPath); statErr == nil {
			neg, err = tracelog.OpenFS(repo.fsys, negPath)
		} else {
			neg, err = tracelog.CreateFS(repo.fsys, negPath)
		}
		if err != nil {
			return nil, err
		}
	}
	var auth func(tenant string, token []byte) bool
	if cfg.Auth != nil {
		auth = server.TokenAuth(cfg.Auth)
	}
	srv, err := server.New(server.Config{
		Backend:         &repoBackend{r: repo, neg: neg},
		Auth:            auth,
		WindowChunks:    cfg.WindowChunks,
		MaxInflight:     cfg.MaxInflight,
		MaxChunkBytes:   cfg.MaxChunkBytes,
		RateBytesPerSec: cfg.RateBytesPerSec,
		RateBurst:       cfg.RateBurst,
		Logf:            cfg.Logf,
	})
	if err != nil {
		neg.Close()
		return nil, err
	}
	return &RepoServer{repo: repo, neg: neg, srv: srv}, nil
}

// Serve accepts connections on ln until shutdown; it returns nil after
// Shutdown/Close, or the accept error that stopped it.
func (s *RepoServer) Serve(ln net.Listener) error { return s.srv.Serve(ln) }

// ListenAndServe listens on addr and serves until shutdown.
func (s *RepoServer) ListenAndServe(addr string) error { return s.srv.ListenAndServe(addr) }

// Addr returns the serving listener's address (nil before Serve).
func (s *RepoServer) Addr() net.Addr { return s.srv.Addr() }

// Shutdown drains the server gracefully: in-flight backup sessions and
// streams finish, idle connections close, new work is refused. When ctx
// expires first, the stragglers are cut and ctx.Err() returned. The
// negotiation log stays open for reading until Close.
func (s *RepoServer) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Close stops the server abruptly and closes the negotiation log. The
// wrapped Repository is the caller's to close. Idempotent.
func (s *RepoServer) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.srv.Close()
	if cerr := s.neg.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// NegotiationLog returns the server's negotiation transcript. Each
// session contributes two committed traces: the query stream under the
// qualified snapshot name (every fingerprint the client asked about, in
// order — committed even for aborted sessions) and the miss stream under
// name+NegotiationMissSuffix. Both implement the attack engine's source
// interface, so negotiation leakage is measured exactly like the upload
// tap. Valid until Close.
func (s *RepoServer) NegotiationLog() *TraceLog { return s.neg }

// repoBackend adapts *Repository to the server's storage interface.
type repoBackend struct {
	r   *Repository
	neg *tracelog.Log
}

func (b *repoBackend) BeginBackup(name string) (server.BackupSession, error) {
	r := b.r
	if _, ok := r.catalog.Get(name); ok {
		return nil, fmt.Errorf("%w: %q", ErrSnapshotExists, name)
	}
	// Hold the GC-exclusion read lock for the whole session, exactly like
	// an in-process Backup: until Commit registers the snapshot, its
	// chunks look unreferenced to a sweep.
	r.gcMu.RLock()
	s := &repoSession{r: r, name: name}
	fail := func(err error) (server.BackupSession, error) {
		s.abortTraces()
		r.gcMu.RUnlock()
		return nil, err
	}
	var err error
	if r.tapLog != nil {
		if s.tap, err = r.tapLog.Begin(name); err != nil {
			return fail(err)
		}
	}
	if s.negQ, err = b.neg.Begin(name); err != nil {
		return fail(err)
	}
	if s.negM, err = b.neg.Begin(name + NegotiationMissSuffix); err != nil {
		return fail(err)
	}
	return s, nil
}

func (b *repoBackend) Restore(ctx context.Context, name string, w io.Writer) error {
	return b.r.Restore(ctx, name, w)
}

func (b *repoBackend) Snapshots(prefix string) []wire.SnapshotInfo {
	var out []wire.SnapshotInfo
	for _, rec := range b.r.catalog.List() {
		if !strings.HasPrefix(rec.Name, prefix) {
			continue
		}
		out = append(out, wire.SnapshotInfo{
			Name:         rec.Name,
			CreatedUnix:  rec.CreatedUnix,
			LogicalBytes: rec.LogicalBytes,
			Chunks:       rec.Chunks,
		})
	}
	return out
}

func (b *repoBackend) Delete(ctx context.Context, name string) error {
	return b.r.Delete(ctx, name)
}

func (b *repoBackend) TenantUsage(tenant string) (wire.TenantUsage, error) {
	all, err := b.r.TenantStats()
	if err != nil {
		return wire.TenantUsage{}, err
	}
	for _, u := range all {
		if u.Tenant == tenant {
			return u, nil
		}
	}
	return wire.TenantUsage{Tenant: tenant}, nil
}

// repoSession is one network backup session against the repository. The
// connection handler drives it serially; concurrent sessions share the
// store, whose batch operations are what actually serialize.
type repoSession struct {
	r    *Repository
	name string
	tap  *tracelog.Session // upload-tap view (traces.fdt), nil when untapped
	negQ *tracelog.Session // negotiation query stream
	negM *tracelog.Session // negotiation miss stream
	done bool

	fps      []fphash.Fingerprint
	miss     []bool
	missRefs []trace.ChunkRef
}

func (s *repoSession) Negotiate(refs []trace.ChunkRef) ([]bool, error) {
	// Transcripts first: the wire adversary sees the query (and, for the
	// tap, the logical upload order) before the server answers. The query
	// stream in negotiation order equals the upload stream the in-process
	// tap records, so traces.fdt stays comparable across deployment
	// models.
	if s.tap != nil {
		if err := s.tap.ObserveUpload(refs); err != nil {
			return nil, err
		}
	}
	if err := s.negQ.ObserveUpload(refs); err != nil {
		return nil, err
	}
	s.fps = s.fps[:0]
	for _, r := range refs {
		s.fps = append(s.fps, r.FP)
	}
	s.miss = s.r.store.ContainsBatch(s.fps, s.miss)
	s.missRefs = s.missRefs[:0]
	for i, m := range s.miss {
		if m {
			s.missRefs = append(s.missRefs, refs[i])
		}
	}
	if len(s.missRefs) > 0 {
		if err := s.negM.ObserveUpload(s.missRefs); err != nil {
			return nil, err
		}
	}
	return s.miss, nil
}

func (s *repoSession) PutChunks(chunks []dedup.PutChunk) error {
	// PutBatch copies chunk data; the caller's buffers are only borrowed.
	_, err := s.r.store.PutBatch(chunks)
	return err
}

func (s *repoSession) Commit(entries []mle.RecipeEntry) (wire.SnapshotInfo, error) {
	defer s.finish()
	r := s.r
	recipe := &mle.Recipe{Entries: entries}
	// Same durability order as the in-process Backup: chunk data seals
	// and syncs before any trace commits or the snapshot is cataloged.
	if err := r.store.Sync(); err != nil {
		s.abortTraces()
		return wire.SnapshotInfo{}, err
	}
	// The negotiation transcript commits before we know whether the
	// snapshot registers — the adversary already saw those rounds — and
	// the tap commits under the in-process rule (durable data, no
	// snapshot yet; a later failure leaves a committed trace without a
	// snapshot, which is the correct adversary view: those windows did
	// cross the wire).
	if s.tap != nil {
		if err := s.tap.Commit(); err != nil {
			s.commitNegBestEffort()
			return wire.SnapshotInfo{}, err
		}
		s.tap = nil
	}
	if err := s.commitNeg(); err != nil {
		return wire.SnapshotInfo{}, err
	}
	sealed, err := recipe.Seal(r.key)
	if err != nil {
		return wire.SnapshotInfo{}, err
	}
	created := time.Unix(time.Now().Unix(), 0)
	rec := dedup.SnapshotRecord{
		Name:         s.name,
		CreatedUnix:  created.Unix(),
		LogicalBytes: recipe.TotalSize(),
		Chunks:       uint32(len(recipe.Entries)),
		SealedRecipe: sealed,
	}
	// Complete the deferred retention rebuild before registering: this
	// snapshot must not land in the once-guarded catalog sweep twice.
	if err := r.ensureRetention(); err != nil {
		return wire.SnapshotInfo{}, err
	}
	if err := r.catalog.Add(rec); err != nil {
		return wire.SnapshotInfo{}, err
	}
	if err := r.store.RegisterBackup(s.name, recipe); err != nil {
		_ = r.catalog.Delete(s.name)
		return wire.SnapshotInfo{}, err
	}
	return wire.SnapshotInfo{
		Name:         s.name,
		CreatedUnix:  rec.CreatedUnix,
		LogicalBytes: rec.LogicalBytes,
		Chunks:       rec.Chunks,
	}, nil
}

func (s *repoSession) Abort() {
	// The negotiation rounds happened on the wire whether or not a
	// snapshot appears, so the transcript commits; the tap mirrors the
	// in-process rule (no acknowledged snapshot, no committed trace).
	if s.tap != nil {
		s.tap.Abort()
		s.tap = nil
	}
	s.commitNegBestEffort()
	s.finish()
}

// commitNeg commits both negotiation streams, failing on the first error.
func (s *repoSession) commitNeg() error {
	if s.negQ != nil {
		if err := s.negQ.Commit(); err != nil {
			s.negQ = nil
			s.commitNegBestEffort()
			return err
		}
		s.negQ = nil
	}
	if s.negM != nil {
		err := s.negM.Commit()
		s.negM = nil
		return err
	}
	return nil
}

// commitNegBestEffort commits whatever negotiation streams remain,
// ignoring errors — used on paths that already have an error to report.
func (s *repoSession) commitNegBestEffort() {
	if s.negQ != nil {
		_ = s.negQ.Commit()
		s.negQ = nil
	}
	if s.negM != nil {
		_ = s.negM.Commit()
		s.negM = nil
	}
}

// abortTraces discards every open trace session (BeginBackup failure
// path, before anything crossed the wire).
func (s *repoSession) abortTraces() {
	if s.tap != nil {
		s.tap.Abort()
		s.tap = nil
	}
	if s.negQ != nil {
		s.negQ.Abort()
		s.negQ = nil
	}
	if s.negM != nil {
		s.negM.Abort()
		s.negM = nil
	}
}

// finish releases the GC-exclusion lock exactly once.
func (s *repoSession) finish() {
	if !s.done {
		s.done = true
		s.r.gcMu.RUnlock()
	}
}

// tenantOf splits a qualified snapshot name: everything before the first
// '/' is the tenant, "" for un-namespaced (in-process) snapshots.
func tenantOf(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return ""
}

// TenantStats reports per-tenant accounting over the whole repository,
// sorted by tenant: snapshot counts, logical (pre-dedup) bytes, the
// unique chunk footprint each tenant occupies in the shared store, and
// the exclusive-versus-shared split of that footprint. A snapshot's
// tenant is its name's prefix before the first '/' (the server's
// namespacing convention); snapshots without one — in-process backups —
// group under the "" tenant. Chunk sizes are ciphertext sizes, which the
// length-preserving CTR encryption makes equal to plaintext sizes.
//
// The shared/exclusive split is the deployment-facing face of the
// paper's threat model: a chunk shared across tenants is exactly one
// whose existence the negotiation round reveals to the other tenant.
func (r *Repository) TenantStats() ([]TenantUsage, error) {
	type chunkOwner struct {
		size   uint32
		tenant string
		shared bool
	}
	owners := make(map[Fingerprint]*chunkOwner)
	tenantFPs := make(map[string]map[Fingerprint]struct{})
	usage := make(map[string]*TenantUsage)
	for _, rec := range r.catalog.List() {
		t := tenantOf(rec.Name)
		u := usage[t]
		if u == nil {
			u = &TenantUsage{Tenant: t}
			usage[t] = u
			tenantFPs[t] = make(map[Fingerprint]struct{})
		}
		u.Snapshots++
		u.LogicalBytes += rec.LogicalBytes
		recipe, err := mle.OpenRecipe(rec.SealedRecipe, r.key)
		if err != nil {
			return nil, fmt.Errorf("freqdedup: tenant stats: open snapshot %q recipe: %w", rec.Name, err)
		}
		fps := tenantFPs[t]
		for _, e := range recipe.Entries {
			fps[e.Fingerprint] = struct{}{}
			o := owners[e.Fingerprint]
			if o == nil {
				owners[e.Fingerprint] = &chunkOwner{size: e.Size, tenant: t}
			} else if o.tenant != t {
				o.shared = true
			}
		}
	}
	out := make([]TenantUsage, 0, len(usage))
	for t, u := range usage {
		for fp := range tenantFPs[t] {
			o := owners[fp]
			if o.shared {
				u.SharedChunks++
				u.SharedBytes += uint64(o.size)
			} else {
				u.ExclusiveChunks++
				u.ExclusiveBytes += uint64(o.size)
			}
		}
		u.StoredBytes = u.ExclusiveBytes + u.SharedBytes
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out, nil
}
